package gobeagle

import (
	"math"
	"math/rand"
	"testing"

	"gobeagle/internal/device"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// TestEdgeDerivativesAgreeAcrossImplementations checks that
// UpdateTransitionDerivatives + CalculateEdgeDerivatives give the same
// answers on the CPU, on a simulated device, and on a multi-device instance.
func TestEdgeDerivativesAgreeAcrossImplementations(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(44))
	tr, err := tree.ParseNewick("(a:0.15,b:0.25);")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	rates, _ := substmodel.GammaRates(0.6, 2)
	align, err := seqgen.Simulate(rng, tr, m, rates, 500)
	if err != nil {
		t.Fatal(err)
	}
	ps := seqgen.CompressPatterns(align)

	cfg := instanceConfig(tr, 4, ps.PatternCount(), 2, 0, 0)
	cfg.MatrixBuffers = 6

	eval := func(inst *Instance) (float64, float64, float64) {
		t.Helper()
		ed, err := m.Eigen()
		if err != nil {
			t.Fatal(err)
		}
		steps := []error{
			inst.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
			inst.SetCategoryRates(rates.Rates),
			inst.SetCategoryWeights(rates.Weights),
			inst.SetStateFrequencies(m.Frequencies),
			inst.SetPatternWeights(ps.Weights),
			inst.SetTipPartials(0, ps.TipPartials(0)),
			inst.SetTipPartials(1, ps.TipPartials(1)),
			inst.UpdateTransitionMatrices(0, []int{3}, []float64{0.4}),
			inst.UpdateTransitionDerivatives(0, []int{4}, []int{5}, []float64{0.4}),
		}
		for _, err := range steps {
			if err != nil {
				t.Fatal(err)
			}
		}
		lnL, d1, d2, err := inst.CalculateEdgeDerivatives(0, 1, 3, 4, 5, None)
		if err != nil {
			t.Fatal(err)
		}
		return lnL, d1, d2
	}

	ref, err := NewInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Finalize()
	wantL, wantD1, wantD2 := eval(ref)
	if wantD1 == 0 || wantD2 >= 0 {
		t.Fatalf("suspicious reference derivatives %v %v", wantD1, wantD2)
	}

	amd, err := FindResource("Radeon R9 Nano", "OpenCL")
	if err != nil {
		t.Fatal(err)
	}
	devCfg := cfg
	devCfg.ResourceID = amd.ID
	devInst, err := NewInstance(devCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer devInst.Finalize()
	gotL, gotD1, gotD2 := eval(devInst)
	if math.Abs(gotL-wantL) > 1e-8*math.Abs(wantL) ||
		math.Abs(gotD1-wantD1) > 1e-8*(1+math.Abs(wantD1)) ||
		math.Abs(gotD2-wantD2) > 1e-8*(1+math.Abs(wantD2)) {
		t.Fatalf("device derivatives (%v %v %v) differ from CPU (%v %v %v)",
			gotL, gotD1, gotD2, wantL, wantD1, wantD2)
	}

	multi, err := NewMultiDeviceInstance(cfg, []int{0, amd.ID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Finalize()
	mL, mD1, mD2 := eval(multi)
	if math.Abs(mL-wantL) > 1e-8*math.Abs(wantL) ||
		math.Abs(mD1-wantD1) > 1e-8*(1+math.Abs(wantD1)) ||
		math.Abs(mD2-wantD2) > 1e-8*(1+math.Abs(wantD2)) {
		t.Fatalf("multi-device derivatives (%v %v %v) differ from CPU (%v %v %v)",
			mL, mD1, mD2, wantL, wantD1, wantD2)
	}
}
