package gobeagle

import (
	"math"
	"math/rand"
	"testing"

	"gobeagle/internal/device"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// TestThroughputSharePrecision pins the precision-aware default shares for
// a CPU + GPU resource pair: in double precision (the default) a GPU's
// share must be derated by its DP ratio, not weighted by its
// single-precision peak.
func TestThroughputSharePrecision(t *testing.T) {
	device.ResetPlatforms()
	host := ResourceList()[0]
	gpu, err := FindResource("Quadro P5000", "CUDA")
	if err != nil {
		t.Fatal(err)
	}

	gpuSP := throughputShare(gpu, true)
	gpuDP := throughputShare(gpu, false)
	if gpuSP != device.QuadroP5000.PeakSPGFLOPS {
		t.Fatalf("GPU SP share %v, want the SP peak %v", gpuSP, device.QuadroP5000.PeakSPGFLOPS)
	}
	if want := device.QuadroP5000.PeakSPGFLOPS * device.QuadroP5000.DPRatio; gpuDP != want {
		t.Fatalf("GPU DP share %v, want DP-derated peak %v", gpuDP, want)
	}

	hostSP := throughputShare(host, true)
	hostDP := throughputShare(host, false)
	if hostSP <= 0 || hostDP != hostSP/2 {
		t.Fatalf("host shares SP %v DP %v, want DP at half SP", hostSP, hostDP)
	}

	// The split itself: with a 1/32 DP ratio and the host only halving, the
	// GPU:host ratio must shrink 16x from single to double precision. This
	// is the precision-blind bug — the DP split used to equal the SP split.
	spRatio := gpuSP / hostSP
	dpRatio := gpuDP / hostDP
	if math.Abs(dpRatio-spRatio/16) > 1e-9*spRatio {
		t.Fatalf("GPU:host ratio SP %v DP %v, want DP = SP/16", spRatio, dpRatio)
	}
}

// TestMultiDeviceRebalanceInstance drives a rebalancing CPU + CUDA + OpenCL
// instance through repeated batches: results must stay correct across
// migrations and Stats must expose the per-backend utilization.
func TestMultiDeviceRebalanceInstance(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(31))
	tr, _ := tree.Random(rng, 8, 0.2)
	m, _ := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	rates, _ := substmodel.GammaRates(0.7, 4)
	align, _ := seqgen.Simulate(rng, tr, m, rates, 300)
	ps := seqgen.CompressPatterns(align)

	single, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Finalize()
	want := evaluateTree(t, single, tr, m, rates, ps)

	cuda, err := FindResource("Quadro P5000", "CUDA")
	if err != nil {
		t.Fatal(err)
	}
	amd, err := FindResource("Radeon R9 Nano", "OpenCL")
	if err != nil {
		t.Fatal(err)
	}
	cfg := instanceConfig(tr, 4, ps.PatternCount(), 4, 0, FlagRebalance|FlagTelemetry)
	cfg.RebalanceInterval = 2
	multi, err := NewMultiDeviceInstance(cfg, []int{0, cuda.ID, amd.ID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Finalize()
	got := evaluateTree(t, multi, tr, m, rates, ps)
	if math.Abs(got-want) > 1e-8*math.Abs(want) {
		t.Fatalf("multi-device lnL %v want %v", got, want)
	}

	sched := tr.FullSchedule()
	ops := make([]Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = Operation{
			Destination: op.Dest, DestScaleWrite: None, DestScaleRead: None,
			Child1: op.Child1, Child1Matrix: op.Child1Mat,
			Child2: op.Child2, Child2Matrix: op.Child2Mat,
		}
	}
	for b := 0; b < 12; b++ {
		if err := multi.UpdatePartials(ops); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	after, err := multi.CalculateRootLogLikelihoods(sched.Root, None)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after-want) > 1e-8*math.Abs(want) {
		t.Fatalf("lnL drifted to %v after rebalanced batches, want %v", after, want)
	}

	stats := multi.Stats()
	if len(stats.Backends) != 3 {
		t.Fatalf("Stats reports %d backends, want 3", len(stats.Backends))
	}
	total := 0
	for i, b := range stats.Backends {
		if b.Patterns != b.Hi-b.Lo || b.Patterns < 1 {
			t.Fatalf("backend %d slice [%d,%d) patterns %d inconsistent", i, b.Lo, b.Hi, b.Patterns)
		}
		if b.Throughput <= 0 {
			t.Fatalf("backend %d has no measured throughput", i)
		}
		total += b.Patterns
	}
	if total != ps.PatternCount() {
		t.Fatalf("backend slices cover %d patterns, want %d", total, ps.PatternCount())
	}
	if stats.PatternsMigrated > 0 && stats.Rebalances == 0 {
		t.Fatal("patterns migrated without a recorded rebalance")
	}
	if len(stats.RebalanceEvents) > 0 && stats.Rebalances == 0 {
		t.Fatal("rebalance events recorded without a rebalance count")
	}

	// Without FlagRebalance, telemetry stays unchanged: no backend section.
	static, err := NewMultiDeviceInstance(
		instanceConfig(tr, 4, ps.PatternCount(), 4, 0, FlagTelemetry),
		[]int{0, cuda.ID, amd.ID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer static.Finalize()
	evaluateTree(t, static, tr, m, rates, ps)
	ss := static.Stats()
	if len(ss.Backends) != 0 || ss.Rebalances != 0 || ss.PatternsMigrated != 0 || len(ss.RebalanceEvents) != 0 {
		t.Fatalf("static multi-device instance leaks rebalance telemetry: %+v", ss)
	}
}

// TestFlagRebalanceString pins the diagnostic rendering of the new flag.
func TestFlagRebalanceString(t *testing.T) {
	if s := (FlagRebalance | FlagTelemetry).String(); s != "TELEMETRY|REBALANCE" {
		t.Fatalf("flag string %q", s)
	}
}
