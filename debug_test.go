package gobeagle

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeDebugEndpoints exercises the live debug server over a real TCP
// listener: metrics in the Prometheus text format, the expvar-style variable
// dump and the trace summary must all reflect a traced, telemetered
// evaluation.
func TestServeDebugEndpoints(t *testing.T) {
	tr, m, rates, ps := statsProblem(t)
	inst, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0,
		FlagTelemetry|FlagTrace|FlagThreadingThreadPoolHybrid))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	evaluateTree(t, inst, tr, m, rates, ps)

	srv, err := inst.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE gobeagle_batches_total counter",
		"gobeagle_batches_total 1",
		"gobeagle_telemetry_enabled 1",
		"gobeagle_trace_enabled 1",
		`gobeagle_kernel_ops_total{kernel="partials"}`,
		"gobeagle_effective_gflops",
		"gobeagle_trace_spans",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	var vars map[string]any
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars["batches"].(float64) != 1 || vars["trace_enabled"] != true {
		t.Errorf("/debug/vars = %v", vars)
	}
	if vars["implementation"] != inst.Implementation() {
		t.Errorf("implementation %v, want %v", vars["implementation"], inst.Implementation())
	}

	var sum []TraceKindSummary
	if err := json.Unmarshal([]byte(get("/debug/trace")), &sum); err != nil {
		t.Fatalf("/debug/trace not JSON: %v", err)
	}
	kinds := map[string]bool{}
	for _, s := range sum {
		if s.Count <= 0 {
			t.Errorf("summary kind %q has count %d", s.Kind, s.Count)
		}
		kinds[s.Kind] = true
	}
	for _, want := range []string{"partials batch", "root likelihood", "transition matrices"} {
		if !kinds[want] {
			t.Errorf("/debug/trace missing kind %q (got %v)", want, kinds)
		}
	}

	// Single-device instance: no rebalance history.
	if body := strings.TrimSpace(get("/debug/rebalance")); body != "null" {
		t.Errorf("/debug/rebalance = %q, want null", body)
	}
}

// TestServeDebugShutdown is the regression test for debug-server teardown:
// Close and Shutdown must wait for the serve goroutine to exit (so nothing
// touches the instance afterwards), a graceful Shutdown must let an in-flight
// request finish, and both must leave the port closed.
func TestServeDebugShutdown(t *testing.T) {
	tr, m, rates, ps := statsProblem(t)
	inst, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0, FlagTelemetry))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	evaluateTree(t, inst, tr, m, rates, ps)

	srv, err := inst.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	// A request in flight when Shutdown starts must complete with 200.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The serve goroutine has exited and the listener is closed: new
	// connections must fail immediately.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatalf("GET after Shutdown succeeded; listener still open")
	}
	// Second teardown is safe.
	if err := srv.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("Close after Shutdown: %v", err)
	}

	// Close (abrupt path) on a fresh server also closes the port and waits.
	srv2, err := inst.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr2 := srv2.Addr()
	if err := srv2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr2 + "/metrics"); err == nil {
		t.Fatalf("GET after Close succeeded; listener still open")
	}
}

// TestServeDebugRebalanceEndpoint checks the rebalance history endpoint on a
// multi-device rebalancing instance.
func TestServeDebugRebalanceEndpoint(t *testing.T) {
	tr, m, rates, ps := statsProblem(t)
	inst, err := NewMultiDeviceInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0,
		FlagTelemetry|FlagRebalance|FlagPrecisionSingle), []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	evaluateTree(t, inst, tr, m, rates, ps)

	srv, err := inst.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`gobeagle_backend_patterns{backend="0"}`,
		`gobeagle_backend_patterns{backend="1"}`,
		"gobeagle_rebalances_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, string(body))
		}
	}
}
