package gobeagle

import (
	"math"
	"testing"

	"gobeagle/internal/device"
)

// maxAbsDiff returns the largest absolute element difference.
func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// runScaleReadRoundTrip exercises the DestScaleRead semantics on one
// instance:
//
//  1. evaluate the tree plainly and snapshot the raw root partials;
//  2. re-run the root operation with DestScaleWrite=s — the destination is
//     rescaled and the factors land in s;
//  3. re-run the root operation with DestScaleRead=s — the fresh combine is
//     divided by exp(s), which must reproduce the rescaled destination of
//     step 2, not the raw partials of step 1.
//
// Step 3 is the regression: an implementation that silently ignores
// DestScaleRead (the old behavior) leaves the raw partials in place and
// fails the comparison.
func runScaleReadRoundTrip(t *testing.T, pr *reuseProblem, inst *Instance) {
	t.Helper()
	pr.setup(t, inst)
	plain := pr.evalFull(t, inst)

	sched := pr.tr.FullSchedule()
	last := sched.Ops[len(sched.Ops)-1]
	if last.Dest != sched.Root {
		t.Fatalf("schedule does not end at the root (%d != %d)", last.Dest, sched.Root)
	}
	raw, err := inst.GetPartials(sched.Root)
	if err != nil {
		t.Fatal(err)
	}

	rootOp := Operation{
		Destination: last.Dest, DestScaleWrite: 0, DestScaleRead: None,
		Child1: last.Child1, Child1Matrix: last.Child1Mat,
		Child2: last.Child2, Child2Matrix: last.Child2Mat,
	}
	if err := inst.UpdatePartials([]Operation{rootOp}); err != nil {
		t.Fatal(err)
	}
	scaled, err := inst.GetPartials(sched.Root)
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(raw, scaled) == 0 {
		t.Fatal("rescaling left the root partials unchanged; the round trip has no teeth")
	}

	rootOp.DestScaleWrite = None
	rootOp.DestScaleRead = 0
	if err := inst.UpdatePartials([]Operation{rootOp}); err != nil {
		t.Fatal(err)
	}
	got, err := inst.GetPartials(sched.Root)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, scaled); d > 1e-12 {
		t.Fatalf("DestScaleRead did not reproduce the rescaled partials (max diff %v vs scaled, %v vs raw)",
			d, maxAbsDiff(got, raw))
	}
	// The likelihood must come out right too: destination divided by exp(s),
	// cumulative buffer s adding the factors back.
	lnL, err := inst.CalculateRootLogLikelihoods(sched.Root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lnL-plain) > 1e-10*math.Abs(plain) {
		t.Fatalf("read-scaled lnL %v, want plain %v", lnL, plain)
	}

	// Read and write together: the read factors are applied first, the
	// rescale captures the residual into a second buffer, and accumulating
	// both buffers restores the total.
	rootOp.DestScaleWrite = 1
	if err := inst.UpdatePartials([]Operation{rootOp}); err != nil {
		t.Fatal(err)
	}
	cum := 2
	if err := inst.ResetScaleFactors(cum); err != nil {
		t.Fatal(err)
	}
	if err := inst.AccumulateScaleFactors([]int{0, 1}, cum); err != nil {
		t.Fatal(err)
	}
	lnL2, err := inst.CalculateRootLogLikelihoods(sched.Root, cum)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lnL2-plain) > 1e-10*math.Abs(plain) {
		t.Fatalf("read+write scaled lnL %v, want plain %v", lnL2, plain)
	}
}

// TestDestScaleReadSemantics pins the read-scale semantics on the CPU and on
// every modeled accelerator backend.
func TestDestScaleReadSemantics(t *testing.T) {
	device.ResetPlatforms()
	pr := newReuseProblem(t, 111, 8, 150)
	resources := []struct {
		name      string
		framework string
	}{
		{"", ""}, // host CPU
		{"Quadro P5000", "CUDA"},
		{"Radeon R9 Nano", "OpenCL"},
		{"Xeon E5-2680v4 x2", "OpenCL"},
	}
	for _, r := range resources {
		name := r.name
		if name == "" {
			name = "CPU"
		}
		t.Run(name, func(t *testing.T) {
			id := 0
			if r.name != "" {
				rsc, err := FindResource(r.name, r.framework)
				if err != nil {
					t.Fatal(err)
				}
				id = rsc.ID
			}
			inst, err := NewInstance(pr.config(id, 0))
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Finalize()
			runScaleReadRoundTrip(t, pr, inst)
		})
	}
}

// TestDestScaleReadMultiDevice checks that the multi-device engine forwards
// read scaling per pattern slice: the round trip must hold on a partitioned
// CPU + GPU instance.
func TestDestScaleReadMultiDevice(t *testing.T) {
	device.ResetPlatforms()
	pr := newReuseProblem(t, 113, 8, 150)
	gpu, err := FindResource("Quadro P5000", "CUDA")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewMultiDeviceInstance(pr.config(0, 0), []int{0, gpu.ID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	runScaleReadRoundTrip(t, pr, inst)
}

// TestDestScaleReadWithReuse: the reuse signature includes the read buffer
// and its version, so changing only DestScaleRead on an otherwise identical
// operation must recompute, and accumulating into a read buffer must dirty
// its dependents.
func TestDestScaleReadWithReuse(t *testing.T) {
	device.ResetPlatforms()
	pr := newReuseProblem(t, 115, 8, 150)
	inst, err := NewInstance(pr.config(0, FlagReuse))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	runScaleReadRoundTrip(t, pr, inst)

	// Re-accumulating into buffer 0 (the read source) must invalidate the
	// root operation's cached result: the next read resubmission recomputes
	// instead of skipping stale state.
	before := inst.ReuseStats()
	if err := inst.ResetScaleFactors(0); err != nil {
		t.Fatal(err)
	}
	sched := pr.tr.FullSchedule()
	last := sched.Ops[len(sched.Ops)-1]
	rootOp := Operation{
		Destination: last.Dest, DestScaleWrite: None, DestScaleRead: 0,
		Child1: last.Child1, Child1Matrix: last.Child1Mat,
		Child2: last.Child2, Child2Matrix: last.Child2Mat,
	}
	if err := inst.UpdatePartials([]Operation{rootOp}); err != nil {
		t.Fatal(err)
	}
	after := inst.ReuseStats()
	if after.OpMisses != before.OpMisses+1 {
		t.Fatalf("dirty read buffer did not force a recompute: misses %d -> %d", before.OpMisses, after.OpMisses)
	}
	// Buffer 0 is now zeroed, so the read is a no-op and the destination
	// holds the raw combine again.
	lnL, err := inst.CalculateRootLogLikelihoods(sched.Root, None)
	if err != nil {
		t.Fatal(err)
	}
	plainInst, err := NewInstance(pr.config(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer plainInst.Finalize()
	pr.setup(t, plainInst)
	plain := pr.evalFull(t, plainInst)
	if lnL != plain {
		t.Fatalf("zeroed read buffer lnL %v, want plain %v", lnL, plain)
	}
}
