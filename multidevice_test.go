package gobeagle

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"gobeagle/internal/device"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func TestMultiDeviceInstanceMatchesSingle(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(21))
	tr, _ := tree.Random(rng, 8, 0.2)
	m, _ := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	rates, _ := substmodel.GammaRates(0.7, 4)
	align, _ := seqgen.Simulate(rng, tr, m, rates, 300)
	ps := seqgen.CompressPatterns(align)

	single, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Finalize()
	want := evaluateTree(t, single, tr, m, rates, ps)

	// Host CPU + the CUDA GPU + an OpenCL GPU, one logical instance.
	cuda, err := FindResource("Quadro P5000", "CUDA")
	if err != nil {
		t.Fatal(err)
	}
	amd, err := FindResource("Radeon R9 Nano", "OpenCL")
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewMultiDeviceInstance(
		instanceConfig(tr, 4, ps.PatternCount(), 4, 0, 0),
		[]int{0, cuda.ID, amd.ID}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Finalize()
	if !strings.HasPrefix(multi.Implementation(), "Multi[") {
		t.Fatalf("implementation %q", multi.Implementation())
	}
	got := evaluateTree(t, multi, tr, m, rates, ps)
	if math.Abs(got-want) > 1e-8*math.Abs(want) {
		t.Fatalf("multi-device lnL %v want %v", got, want)
	}
	// Default shares favor the GPUs heavily over the 1-40-core host.
	if !strings.Contains(multi.Implementation(), "CUDA") {
		t.Fatal("CUDA backend missing from implementation name")
	}
}

func TestMultiDeviceInstanceErrors(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(22))
	tr, _ := tree.Random(rng, 4, 0.1)
	cfg := instanceConfig(tr, 4, 50, 1, 0, 0)
	if _, err := NewMultiDeviceInstance(cfg, nil, nil); err == nil {
		t.Fatal("no resources must error")
	}
	if _, err := NewMultiDeviceInstance(cfg, []int{99}, nil); err == nil {
		t.Fatal("bad resource id must error")
	}
	inst, err := NewMultiDeviceInstance(cfg, []int{0}, nil)
	if err != nil {
		t.Fatalf("single-resource multi instance should work: %v", err)
	}
	inst.Finalize()
	bad := cfg
	bad.Flags = FlagThreadingFutures | FlagThreadingThreadPool
	if _, err := NewMultiDeviceInstance(bad, []int{0}, nil); err == nil {
		t.Fatal("conflicting threading flags must error")
	}
}
