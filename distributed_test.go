package gobeagle

import (
	"context"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/engine"
	"gobeagle/internal/remoteimpl"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/trace"
	"gobeagle/internal/tree"
)

// startTestWorker boots an in-process beagleworker on loopback and returns
// its address and a stop function (idempotent, joins the server).
func startTestWorker(t *testing.T) (string, func()) {
	t.Helper()
	worker, err := remoteimpl.NewWorker(remoteimpl.WorkerOptions{
		Builder: func(g remoteimpl.Geometry, tr *trace.Tracer) (engine.Engine, error) {
			cfg := g.Config()
			cfg.Trace = tr
			return cpuimpl.New(cfg, cpuimpl.Serial)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		worker.Serve(ctx, ln)
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(stop)
	return ln.Addr().String(), stop
}

func distributedProblem(t *testing.T, seed int64) (*tree.Tree, *substmodel.Model, *substmodel.SiteRates, *seqgen.PatternSet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr, err := tree.Random(rng, 10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	rates, _ := substmodel.GammaRates(0.7, 4)
	align, err := seqgen.Simulate(rng, tr, m, rates, 400)
	if err != nil {
		t.Fatal(err)
	}
	return tr, m, rates, seqgen.CompressPatterns(align)
}

func TestDistributedInstanceBitIdenticalToSingle(t *testing.T) {
	tr, m, rates, ps := distributedProblem(t, 31)

	single, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Finalize()
	want := evaluateTree(t, single, tr, m, rates, ps)

	addr1, _ := startTestWorker(t)
	addr2, _ := startTestWorker(t)
	dist, err := NewDistributedInstance(
		instanceConfig(tr, 4, ps.PatternCount(), 4, 0, 0),
		[]string{addr1, addr2}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dist.Finalize()
	if !strings.HasPrefix(dist.Implementation(), "Multi[") ||
		!strings.Contains(dist.Implementation(), "Remote[") {
		t.Fatalf("implementation %q", dist.Implementation())
	}
	got := evaluateTree(t, dist, tr, m, rates, ps)
	if got != want {
		t.Fatalf("distributed root lnL %v != single %v (must be bit-identical)", got, want)
	}
	wantSite, err := single.SiteLogLikelihoods(tr.Root.Index, None)
	if err != nil {
		t.Fatal(err)
	}
	gotSite, err := dist.SiteLogLikelihoods(tr.Root.Index, None)
	if err != nil {
		t.Fatal(err)
	}
	for p := range wantSite {
		if gotSite[p] != wantSite[p] {
			t.Fatalf("site %d lnL differs", p)
		}
	}

	stats := dist.RemoteStats()
	if len(stats) != 2 {
		t.Fatalf("RemoteStats returned %d entries, want 2", len(stats))
	}
	for i, ws := range stats {
		if ws.Addr != []string{addr1, addr2}[i] {
			t.Fatalf("stats[%d].Addr = %q", i, ws.Addr)
		}
		if ws.RPCs == 0 || ws.BytesSent == 0 || ws.BytesReceived == 0 {
			t.Fatalf("stats[%d] shows no traffic: %+v", i, ws)
		}
		if ws.FailedOver {
			t.Fatalf("stats[%d] failed over in a healthy run", i)
		}
	}
}

// TestDistributedInstanceSurvivesWorkerDeath kills one of the two workers
// after the state is set up, then re-evaluates: the dead worker's client must
// fail over to its journal-replayed local fallback and the results must stay
// bit-identical.
func TestDistributedInstanceSurvivesWorkerDeath(t *testing.T) {
	tr, m, rates, ps := distributedProblem(t, 32)

	single, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Finalize()
	want := evaluateTree(t, single, tr, m, rates, ps)

	addr1, stop1 := startTestWorker(t)
	addr2, _ := startTestWorker(t)
	dist, err := NewDistributedInstance(
		instanceConfig(tr, 4, ps.PatternCount(), 4, 0, 0),
		[]string{addr1, addr2}, nil, nil) // no local shard: patterns live only on workers
	if err != nil {
		t.Fatal(err)
	}
	defer dist.Finalize()
	got := evaluateTree(t, dist, tr, m, rates, ps)
	if got != want {
		t.Fatalf("distributed root lnL %v != single %v before the kill", got, want)
	}

	stop1() // worker 1 dies for good; its listener is closed, re-dial cannot succeed

	got, err = dist.CalculateRootLogLikelihoods(tr.Root.Index, None)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("root lnL %v != single %v after worker death", got, want)
	}
	gotSite, err := dist.SiteLogLikelihoods(tr.Root.Index, None)
	if err != nil {
		t.Fatal(err)
	}
	wantSite, _ := single.SiteLogLikelihoods(tr.Root.Index, None)
	for p := range wantSite {
		if gotSite[p] != wantSite[p] {
			t.Fatalf("site %d lnL differs after worker death", p)
		}
	}
	stats := dist.RemoteStats()
	if !stats[0].FailedOver {
		t.Fatalf("worker 1 did not fail over: %+v", stats[0])
	}
	if stats[1].FailedOver {
		t.Fatalf("healthy worker 2 failed over: %+v", stats[1])
	}
}

func TestDistributedInstanceErrors(t *testing.T) {
	tr, _, _, _ := distributedProblem(t, 33)
	cfg := instanceConfig(tr, 4, 100, 4, 0, 0)
	if _, err := NewDistributedInstance(cfg, nil, []int{0}, nil); err == nil {
		t.Fatal("no workers must error")
	}
	addr, _ := startTestWorker(t)
	if _, err := NewDistributedInstance(cfg, []string{addr}, []int{99}, nil); err == nil {
		t.Fatal("bad local resource id must error")
	}
	if _, err := NewDistributedInstance(cfg, []string{addr}, []int{0}, []float64{1}); err == nil {
		t.Fatal("shares length mismatch must error")
	}
	if _, err := NewDistributedInstance(cfg, []string{"127.0.0.1:1"}, nil, nil); err == nil {
		t.Fatal("unreachable worker must fail the creation probe")
	}
	bad := cfg
	bad.Flags = FlagThreadingFutures | FlagThreadingThreadPool
	if _, err := NewDistributedInstance(bad, []string{addr}, nil, nil); err == nil {
		t.Fatal("conflicting threading flags must error")
	}
}
