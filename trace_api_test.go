package gobeagle

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// traceLayers parses a Chrome trace-event document and returns the set of
// process (layer) names plus the number of complete ("X") events.
func traceLayers(t *testing.T, doc []byte) (map[string]bool, int) {
	t.Helper()
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	layers := map[string]bool{}
	spans := 0
	for _, ev := range parsed.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "process_name" {
				layers[ev["args"].(map[string]any)["name"].(string)] = true
			}
		case "X":
			spans++
		}
	}
	return layers, spans
}

func TestTraceThroughPublicAPI(t *testing.T) {
	tr, m, rates, ps := statsProblem(t)
	inst, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0,
		FlagTrace|FlagThreadingThreadPoolHybrid))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	if !inst.TraceEnabled() {
		t.Fatal("FlagTrace did not enable tracing")
	}
	evaluateTree(t, inst, tr, m, rates, ps)

	var buf bytes.Buffer
	if err := inst.TraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	layers, spans := traceLayers(t, buf.Bytes())
	if spans == 0 || inst.TraceSpanCount() == 0 {
		t.Fatal("traced evaluation produced no spans")
	}
	for _, want := range []string{"scheduler", "storage"} {
		if !layers[want] {
			t.Errorf("trace missing layer %q (got %v)", want, layers)
		}
	}

	inst.ResetTrace()
	if inst.TraceSpanCount() != 0 {
		t.Error("ResetTrace retained spans")
	}
	if !inst.TraceEnabled() {
		t.Error("ResetTrace disabled tracing")
	}
}

func TestTraceRuntimeToggle(t *testing.T) {
	tr, m, rates, ps := statsProblem(t)
	inst, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	if inst.TraceEnabled() {
		t.Fatal("tracing enabled without FlagTrace")
	}
	evaluateTree(t, inst, tr, m, rates, ps)
	if n := inst.TraceSpanCount(); n != 0 {
		t.Fatalf("disabled tracer retained %d spans", n)
	}
	inst.EnableTrace(true)
	evaluateTree(t, inst, tr, m, rates, ps)
	if inst.TraceSpanCount() == 0 {
		t.Fatal("runtime-enabled tracer recorded nothing")
	}
	inst.EnableTrace(false)
	n := inst.TraceSpanCount()
	evaluateTree(t, inst, tr, m, rates, ps)
	if inst.TraceSpanCount() != n {
		t.Fatal("recording continued after EnableTrace(false)")
	}
}

// TestTraceMultiDeviceLayers is the acceptance shape of the tracer: a
// multi-device instance spanning the host CPU and an accelerator must export
// spans from at least three layers — multi-device coordination, the CPU
// scheduler, and the modeled device clock.
func TestTraceMultiDeviceLayers(t *testing.T) {
	tr, m, rates, ps := statsProblem(t)
	inst, err := NewMultiDeviceInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0,
		FlagTrace|FlagPrecisionSingle|FlagThreadingThreadPoolHybrid), []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	evaluateTree(t, inst, tr, m, rates, ps)

	var buf bytes.Buffer
	if err := inst.TraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	layers, spans := traceLayers(t, buf.Bytes())
	if spans == 0 {
		t.Fatal("multi-device trace is empty")
	}
	for _, want := range []string{"multi-device", "scheduler", "device (modeled clock)"} {
		if !layers[want] {
			t.Errorf("multi-device trace missing layer %q (got %v)", want, layers)
		}
	}
}

// TestStatsSnapshotUnderConcurrentRecording drives evaluations from one
// goroutine while another snapshots Stats, asserting each observed batch
// counter is monotonically non-decreasing. Run under -race this also proves
// the snapshot path touches no unsynchronized state.
func TestStatsSnapshotUnderConcurrentRecording(t *testing.T) {
	tr, m, rates, ps := statsProblem(t)
	inst, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0,
		FlagTelemetry|FlagTrace|FlagThreadingThreadPool))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()

	const rounds = 20
	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < rounds; i++ {
			evaluateTree(t, inst, tr, m, rates, ps)
		}
	}()
	var last uint64
	for {
		s := inst.Stats()
		if s.Batches < last {
			t.Errorf("batch counter went backwards: %d after %d", s.Batches, last)
			break
		}
		last = s.Batches
		inst.TraceSpanCount() // concurrent snapshot of the span rings too
		select {
		case <-done:
			wg.Wait()
			if final := inst.Stats(); final.Batches != rounds {
				t.Fatalf("final batches = %d, want %d", final.Batches, rounds)
			}
			return
		default:
		}
	}
	wg.Wait()
}
