package gobeagle

import (
	"encoding/json"
	"math/rand"
	"testing"

	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// statsProblem builds a small shared problem for the Stats API tests.
func statsProblem(t *testing.T) (*tree.Tree, *substmodel.Model, *substmodel.SiteRates, *seqgen.PatternSet) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	tr, err := tree.Random(rng, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m := substmodel.NewJC69()
	rates, err := substmodel.GammaRates(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	align, err := seqgen.Simulate(rng, tr, m, rates, 150)
	if err != nil {
		t.Fatal(err)
	}
	return tr, m, rates, seqgen.CompressPatterns(align)
}

func TestStatsThroughPublicAPI(t *testing.T) {
	tr, m, rates, ps := statsProblem(t)
	inst, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0,
		FlagTelemetry|FlagThreadingThreadPoolHybrid))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	if !inst.TelemetryEnabled() {
		t.Fatal("FlagTelemetry did not enable collection")
	}
	evaluateTree(t, inst, tr, m, rates, ps)

	s := inst.Stats()
	if !s.Enabled {
		t.Error("snapshot should report enabled")
	}
	if s.Implementation == "" || s.Strategy != "thread-pool-hybrid" {
		t.Errorf("labels = %q/%q, want implementation and thread-pool-hybrid", s.Implementation, s.Strategy)
	}
	if s.Batches != 1 {
		t.Errorf("batches = %d, want 1", s.Batches)
	}
	p := s.Kernel("partials")
	if p.Ops != uint64(tr.TipCount-1) || p.Calls != 1 {
		t.Errorf("partials ops/calls = %d/%d, want %d/1", p.Ops, p.Calls, tr.TipCount-1)
	}
	if s.Kernel("root").Calls != 1 {
		t.Error("root kernel not recorded")
	}
	if s.Kernel("matrices").Ops == 0 {
		t.Error("matrices kernel not recorded")
	}
	if s.TotalFlops <= 0 || s.EffectiveGFLOPS < 0 {
		t.Errorf("flop accounting wrong: %v flops, %v GFLOPS", s.TotalFlops, s.EffectiveGFLOPS)
	}
	if len(s.Levels) == 0 {
		t.Error("hybrid strategy traced no dependency levels")
	}
	// The snapshot is plain data: it must serialize cleanly to JSON.
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("Stats not JSON-serializable: %v", err)
	}

	inst.ResetStats()
	if after := inst.Stats(); after.Batches != 0 || len(after.Kernels) != 0 {
		t.Errorf("ResetStats left state: %+v", after)
	}
}

func TestKernelStatsZeroGuards(t *testing.T) {
	var empty KernelStats
	if empty.MeanPerOp() != 0 || empty.MeanPerCall() != 0 {
		t.Errorf("zero KernelStats means = %v/%v, want 0/0", empty.MeanPerOp(), empty.MeanPerCall())
	}
	k := KernelStats{Ops: 5, Calls: 0, Total: 500}
	if k.MeanPerCall() != 0 {
		t.Errorf("MeanPerCall with zero calls = %v, want 0", k.MeanPerCall())
	}
	if k.MeanPerOp() != 100 {
		t.Errorf("MeanPerOp = %v, want 100", k.MeanPerOp())
	}
	// A freshly created instance must report finite, zero GFLOPS.
	if s := (Stats{}); s.EffectiveGFLOPS != 0 {
		t.Errorf("zero Stats EffectiveGFLOPS = %v", s.EffectiveGFLOPS)
	}
}

func TestTelemetryRuntimeToggle(t *testing.T) {
	tr, m, rates, ps := statsProblem(t)
	inst, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	if inst.TelemetryEnabled() {
		t.Fatal("telemetry enabled without FlagTelemetry")
	}
	evaluateTree(t, inst, tr, m, rates, ps)
	if s := inst.Stats(); s.Enabled || s.Batches != 0 || len(s.Kernels) != 0 {
		t.Fatalf("disabled instance recorded: %+v", s)
	}

	inst.EnableTelemetry(true)
	evaluateTree(t, inst, tr, m, rates, ps)
	s := inst.Stats()
	if s.Batches != 1 || s.Kernel("partials").Calls != 1 {
		t.Fatalf("runtime-enabled telemetry missed the evaluation: %+v", s)
	}
	inst.EnableTelemetry(false)
	evaluateTree(t, inst, tr, m, rates, ps)
	if after := inst.Stats(); after.Batches != s.Batches {
		t.Fatal("recording continued after EnableTelemetry(false)")
	}
}

func TestStatsOnDeviceAndMultiDevice(t *testing.T) {
	tr, m, rates, ps := statsProblem(t)
	// Accelerator-backed instance: strategy must report "device" and the
	// rescale-free kernels must be counted.
	dev, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 1,
		FlagTelemetry|FlagPrecisionSingle))
	if err != nil {
		t.Fatal(err)
	}
	evaluateTree(t, dev, tr, m, rates, ps)
	ds := dev.Stats()
	dev.Finalize()
	if ds.Strategy != "device" {
		t.Errorf("device strategy = %q", ds.Strategy)
	}
	if ds.Kernel("partials").Ops != uint64(tr.TipCount-1) || ds.Kernel("root").Calls != 1 {
		t.Errorf("device kernels not recorded: %+v", ds.Kernels)
	}

	// Multi-device: the parent collector records; FlagTelemetry propagates.
	multi, err := NewMultiDeviceInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, 0,
		FlagTelemetry|FlagPrecisionSingle), []int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	evaluateTree(t, multi, tr, m, rates, ps)
	ms := multi.Stats()
	multi.Finalize()
	if ms.Strategy != "multi-device" {
		t.Errorf("multi-device strategy = %q", ms.Strategy)
	}
	if p := ms.Kernel("partials"); p.Ops != uint64(tr.TipCount-1) {
		t.Errorf("multi-device partials ops = %d, want %d (no double counting)", p.Ops, tr.TipCount-1)
	}
}
