package gobeagle

import (
	"context"
	"net"
	"net/http"
	"sort"
	"strconv"

	"gobeagle/internal/metricsx"
	"gobeagle/internal/trace"
)

// DebugServer is an instance's live debug HTTP server, started by
// Instance.ServeDebug. Close it when done; it does not outlive the process
// on its own. DebugServer implements io.Closer.
type DebugServer struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{} // closed when the Serve goroutine has returned
}

// Addr returns the server's bound address, useful with ":0" listeners.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately, dropping in-flight requests, and
// waits for the serve goroutine to exit so no handler touches the instance
// after Close returns.
func (s *DebugServer) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// Shutdown gracefully stops the server: the listener closes immediately, but
// in-flight requests are allowed to finish until the context is cancelled.
// Like Close, it waits for the serve goroutine to exit.
func (s *DebugServer) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// DebugOption customizes the server started by ServeDebug.
type DebugOption func(*debugConfig)

type debugConfig struct {
	pprof bool
}

// WithPprof exposes the net/http/pprof handlers (/debug/pprof/...) on the
// debug server. Off by default: the profiling endpoints reveal runtime
// internals and a CPU profile pauses are not free, so they are strictly
// opt-in.
func WithPprof() DebugOption {
	return func(c *debugConfig) { c.pprof = true }
}

// ServeDebug starts an opt-in debug HTTP server for this instance on addr
// (e.g. "localhost:6060", or "127.0.0.1:0" to pick a free port — read it
// back from Addr). It serves:
//
//	/metrics          live telemetry in the Prometheus text format
//	/debug/vars       expvar-style JSON snapshot of the same counters
//	/debug/rebalance  the multi-device repartition history (JSON)
//	/debug/trace      per-kind span counts and durations from the tracer
//	/debug/pprof/     runtime profiling (only with WithPprof)
//
// The handlers read the instance's telemetry and trace snapshots, which are
// safe against concurrent recording; enable FlagTelemetry and FlagTrace (or
// their runtime toggles) for the endpoints to show live data. The server is
// for diagnostics on trusted networks — it has no authentication.
func (in *Instance) ServeDebug(addr string, opts ...DebugOption) (*DebugServer, error) {
	var cfg debugConfig
	for _, o := range opts {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	var muxOpts []metricsx.MuxOption
	if cfg.pprof {
		muxOpts = append(muxOpts, metricsx.WithPprof())
	}
	srv := &http.Server{Handler: metricsx.NewMux(instanceSource{in}, muxOpts...)}
	s := &DebugServer{srv: srv, ln: ln, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		srv.Serve(ln)
	}()
	return s, nil
}

// instanceSource adapts an Instance to the metricsx.Source views.
type instanceSource struct{ in *Instance }

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (s instanceSource) Metrics() []metricsx.Sample {
	st := s.in.Stats()
	samples := []metricsx.Sample{
		{Name: "gobeagle_info", Help: "instance identity", Type: "gauge",
			Labels: map[string]string{"implementation": st.Implementation, "strategy": st.Strategy},
			Value:  1},
		{Name: "gobeagle_telemetry_enabled", Help: "1 when telemetry collection is on", Type: "gauge",
			Value: boolGauge(st.Enabled)},
		{Name: "gobeagle_trace_enabled", Help: "1 when span tracing is on", Type: "gauge",
			Value: boolGauge(s.in.TraceEnabled())},
		{Name: "gobeagle_batches_total", Help: "UpdatePartials batches recorded", Type: "counter",
			Value: float64(st.Batches)},
		{Name: "gobeagle_flops_total", Help: "accumulated effective floating-point operations", Type: "counter",
			Value: st.TotalFlops},
		{Name: "gobeagle_effective_gflops", Help: "effective GFLOPS over the partials kernel wall time", Type: "gauge",
			Value: st.EffectiveGFLOPS},
		{Name: "gobeagle_trace_spans", Help: "spans currently retained by the tracer", Type: "gauge",
			Value: float64(s.in.TraceSpanCount())},
	}
	for _, k := range st.Kernels {
		labels := map[string]string{"kernel": k.Kernel}
		samples = append(samples,
			metricsx.Sample{Name: "gobeagle_kernel_ops_total", Help: "logical operations per kernel family",
				Type: "counter", Labels: labels, Value: float64(k.Ops)},
			metricsx.Sample{Name: "gobeagle_kernel_calls_total", Help: "timed invocations per kernel family",
				Type: "counter", Labels: labels, Value: float64(k.Calls)},
			metricsx.Sample{Name: "gobeagle_kernel_seconds_total", Help: "total wall time per kernel family",
				Type: "counter", Labels: labels, Value: k.Total.Seconds()},
		)
	}
	if len(st.Backends) > 0 {
		for i, b := range st.Backends {
			labels := map[string]string{"backend": strconv.Itoa(i)}
			samples = append(samples,
				metricsx.Sample{Name: "gobeagle_backend_patterns", Help: "patterns assigned to each backend",
					Type: "gauge", Labels: labels, Value: float64(b.Patterns)},
				metricsx.Sample{Name: "gobeagle_backend_throughput_pattern_ops", Help: "measured backend throughput in pattern-operations per second",
					Type: "gauge", Labels: labels, Value: b.Throughput},
			)
		}
		samples = append(samples,
			metricsx.Sample{Name: "gobeagle_rebalances_total", Help: "executed adaptive repartitions",
				Type: "counter", Value: float64(st.Rebalances)},
			metricsx.Sample{Name: "gobeagle_patterns_migrated_total", Help: "patterns moved by repartitions",
				Type: "counter", Value: float64(st.PatternsMigrated)},
		)
	}
	return samples
}

func (s instanceSource) Vars() map[string]any {
	st := s.in.Stats()
	return map[string]any{
		"implementation":    st.Implementation,
		"strategy":          st.Strategy,
		"telemetry_enabled": st.Enabled,
		"trace_enabled":     s.in.TraceEnabled(),
		"batches":           st.Batches,
		"total_flops":       st.TotalFlops,
		"effective_gflops":  st.EffectiveGFLOPS,
		"kernels":           st.Kernels,
		"backends":          st.Backends,
		"rebalances":        st.Rebalances,
		"patterns_migrated": st.PatternsMigrated,
		"trace_spans":       s.in.TraceSpanCount(),
		"trace_capacity":    trace.TraceCapacity,
	}
}

func (s instanceSource) RebalanceEvents() any {
	return s.in.Stats().RebalanceEvents
}

// TraceKindSummary aggregates the retained spans of one kind for the
// /debug/trace endpoint.
type TraceKindSummary struct {
	Kind    string `json:"kind"`
	Layer   string `json:"layer"`
	Count   int    `json:"count"`
	TotalNs int64  `json:"total_ns"`
}

func (s instanceSource) TraceSummary() any { return s.in.TraceSummary() }

// TraceSummary aggregates the tracer's retained spans per kind: how many
// spans of each kind exist and their summed duration, grouped under the
// layer names the exported timeline uses. Empty when tracing never ran.
func (in *Instance) TraceSummary() []TraceKindSummary {
	byKind := map[trace.Kind]*TraceKindSummary{}
	for _, sp := range in.tr.Snapshot() {
		sum := byKind[sp.Kind]
		if sum == nil {
			sum = &TraceKindSummary{Kind: sp.Kind.String(), Layer: sp.Kind.Layer().String()}
			byKind[sp.Kind] = sum
		}
		sum.Count++
		sum.TotalNs += sp.Dur
	}
	out := make([]TraceKindSummary, 0, len(byKind))
	for _, sum := range byKind {
		out = append(out, *sum)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Layer != out[j].Layer {
			return out[i].Layer < out[j].Layer
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
