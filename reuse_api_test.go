package gobeagle

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"gobeagle/internal/device"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// reuseProblem is a shared dataset for the incremental re-evaluation tests.
type reuseProblem struct {
	tr    *tree.Tree
	m     *substmodel.Model
	rates *substmodel.SiteRates
	ps    *seqgen.PatternSet
}

func newReuseProblem(t *testing.T, seed int64, tips, sites int) *reuseProblem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr, err := tree.Random(rng, tips, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	rates, _ := substmodel.GammaRates(0.7, 4)
	align, err := seqgen.Simulate(rng, tr, m, rates, sites)
	if err != nil {
		t.Fatal(err)
	}
	return &reuseProblem{tr: tr, m: m, rates: rates, ps: seqgen.CompressPatterns(align)}
}

func (pr *reuseProblem) config(resourceID int, flags Flags) Config {
	cfg := instanceConfig(pr.tr, 4, pr.ps.PatternCount(), 4, resourceID, flags)
	// Two extra matrix buffers for the derivative comparisons.
	cfg.MatrixBuffers = pr.tr.NodeCount() + 2
	return cfg
}

// setup applies the model and data setters once, as an MCMC chain would at
// creation.
func (pr *reuseProblem) setup(t *testing.T, inst *Instance) {
	t.Helper()
	ed, err := pr.m.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	steps := []error{
		inst.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		inst.SetCategoryRates(pr.rates.Rates),
		inst.SetCategoryWeights(pr.rates.Weights),
		inst.SetStateFrequencies(pr.m.Frequencies),
		inst.SetPatternWeights(pr.ps.Weights),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < pr.tr.TipCount; i++ {
		if err := inst.SetTipStates(i, pr.ps.TipStates(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// evalFull submits the complete schedule — matrices and partials for the
// whole tree — exactly as the MCMC engine does every proposal, and returns
// the root log likelihood.
func (pr *reuseProblem) evalFull(t *testing.T, inst *Instance) float64 {
	t.Helper()
	sched := pr.tr.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
		t.Fatal(err)
	}
	ops := make([]Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = Operation{
			Destination: op.Dest, DestScaleWrite: None, DestScaleRead: None,
			Child1: op.Child1, Child1Matrix: op.Child1Mat,
			Child2: op.Child2, Child2Matrix: op.Child2Mat,
		}
	}
	if err := inst.UpdatePartials(ops); err != nil {
		t.Fatal(err)
	}
	lnL, err := inst.CalculateRootLogLikelihoods(sched.Root, None)
	if err != nil {
		t.Fatal(err)
	}
	return lnL
}

// perturb changes one non-root branch length deterministically, simulating
// an accepted branch-length proposal.
func (pr *reuseProblem) perturb(rng *rand.Rand) {
	nodes := pr.tr.Nodes()
	for {
		n := nodes[rng.Intn(len(nodes))]
		if n == pr.tr.Root {
			continue
		}
		n.Length = 0.01 + rng.Float64()*0.5
		return
	}
}

// compareRounds drives both instances through identical proposal rounds and
// requires bit-identical root and site log likelihoods every round. Both
// instances evaluate the same shared tree, so any divergence is the reuse
// cache returning stale or non-identical state.
func compareRounds(t *testing.T, pr *reuseProblem, off, on *Instance, rounds int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < rounds; r++ {
		if r > 0 {
			pr.perturb(rng)
		}
		want := pr.evalFull(t, off)
		got := pr.evalFull(t, on)
		if got != want {
			t.Fatalf("round %d: reuse-on lnL %v, reuse-off %v (must be bit-identical)", r, got, want)
		}
		wantSite, err := off.SiteLogLikelihoods(pr.tr.Root.Index, None)
		if err != nil {
			t.Fatal(err)
		}
		gotSite, err := on.SiteLogLikelihoods(pr.tr.Root.Index, None)
		if err != nil {
			t.Fatal(err)
		}
		for p := range wantSite {
			if gotSite[p] != wantSite[p] {
				t.Fatalf("round %d pattern %d: site lnL %v, want %v", r, p, gotSite[p], wantSite[p])
			}
		}
	}
}

// compareDerivatives evaluates branch derivatives on the root's left edge
// through both instances and requires identical results.
func compareDerivatives(t *testing.T, pr *reuseProblem, off, on *Instance) {
	t.Helper()
	nd := pr.tr.NodeCount()
	// The child must be an internal node: the accelerator edge kernel reads
	// expanded partials, and the tips here are set as compact states.
	child := pr.tr.Root.Left
	if child.IsTip() {
		child = pr.tr.Root.Right
	}
	if child.IsTip() {
		t.Fatal("both root children are tips; grow the test tree")
	}
	each := func(inst *Instance) (float64, float64, float64) {
		if err := inst.UpdateTransitionDerivatives(0, []int{nd}, []int{nd + 1}, []float64{child.Length}); err != nil {
			t.Fatal(err)
		}
		lnL, d1, d2, err := inst.CalculateEdgeDerivatives(pr.tr.Root.Index, child.Index, child.Index, nd, nd+1, None)
		if err != nil {
			t.Fatal(err)
		}
		return lnL, d1, d2
	}
	wantL, wantD1, wantD2 := each(off)
	gotL, gotD1, gotD2 := each(on)
	if gotL != wantL || gotD1 != wantD1 || gotD2 != wantD2 {
		t.Fatalf("derivatives reuse-on (%v, %v, %v), reuse-off (%v, %v, %v)",
			gotL, gotD1, gotD2, wantL, wantD1, wantD2)
	}
}

// TestReuseEquivalenceAcrossCPUStrategies: with FlagReuse, repeated
// full-schedule submissions over a sequence of branch-length proposals must
// yield bit-identical root likelihoods, site likelihoods and derivatives to
// a reuse-off instance, on every CPU scheduling strategy.
func TestReuseEquivalenceAcrossCPUStrategies(t *testing.T) {
	device.ResetPlatforms()
	strategies := []struct {
		name  string
		flags Flags
	}{
		{"serial", 0},
		{"sse", FlagVectorSSE},
		{"futures", FlagThreadingFutures},
		{"threadcreate", FlagThreadingThreadCreate},
		{"threadpool", FlagThreadingThreadPool},
		{"hybrid", FlagThreadingThreadPoolHybrid},
	}
	pr := newReuseProblem(t, 101, 10, 300)
	for _, s := range strategies {
		t.Run(s.name, func(t *testing.T) {
			off, err := NewInstance(pr.config(0, s.flags))
			if err != nil {
				t.Fatal(err)
			}
			defer off.Finalize()
			on, err := NewInstance(pr.config(0, s.flags|FlagReuse))
			if err != nil {
				t.Fatal(err)
			}
			defer on.Finalize()
			pr.setup(t, off)
			pr.setup(t, on)
			compareRounds(t, pr, off, on, 8, 202)
			compareDerivatives(t, pr, off, on)

			rs := on.ReuseStats()
			if !rs.Enabled || rs.OpHits == 0 || rs.MatrixHits == 0 {
				t.Fatalf("reuse instance never hit: %+v", rs)
			}
			if offRS := off.ReuseStats(); offRS.Enabled {
				t.Fatalf("reuse-off instance reports enabled stats: %+v", offRS)
			}
		})
	}
}

// TestReuseEquivalenceOnAccelerators runs the same equivalence check on the
// modeled CUDA and OpenCL backends.
func TestReuseEquivalenceOnAccelerators(t *testing.T) {
	device.ResetPlatforms()
	resources := []struct {
		name      string
		framework string
	}{
		{"Quadro P5000", "CUDA"},
		{"Radeon R9 Nano", "OpenCL"},
		{"Xeon E5-2680v4 x2", "OpenCL"},
	}
	pr := newReuseProblem(t, 103, 8, 200)
	for _, r := range resources {
		t.Run(r.framework+"/"+r.name, func(t *testing.T) {
			rsc, err := FindResource(r.name, r.framework)
			if err != nil {
				t.Fatal(err)
			}
			off, err := NewInstance(pr.config(rsc.ID, 0))
			if err != nil {
				t.Fatal(err)
			}
			defer off.Finalize()
			on, err := NewInstance(pr.config(rsc.ID, FlagReuse))
			if err != nil {
				t.Fatal(err)
			}
			defer on.Finalize()
			pr.setup(t, off)
			pr.setup(t, on)
			compareRounds(t, pr, off, on, 6, 204)
			compareDerivatives(t, pr, off, on)
			if rs := on.ReuseStats(); !rs.Enabled || rs.OpHits == 0 {
				t.Fatalf("accelerator reuse never hit: %+v", rs)
			}
		})
	}
}

// TestReuseMultiDeviceRebalance drives a rebalancing CPU + CUDA + OpenCL
// instance with FlagReuse through repeated proposals: migrations move
// per-pattern state between backends mid-stream and must carry the reuse
// cache validly. Rebalance decisions are timing-driven and may differ
// between the two instances (regrouping the per-backend partial sums), so
// the comparison is against a serial reference within float tolerance
// rather than bit-identical.
func TestReuseMultiDeviceRebalance(t *testing.T) {
	device.ResetPlatforms()
	pr := newReuseProblem(t, 105, 8, 400)
	ids := []int{0}
	for _, name := range []string{"Quadro P5000", "Radeon R9 Nano"} {
		r, err := FindResource(name, "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID)
	}

	ref, err := NewInstance(pr.config(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Finalize()
	cfg := pr.config(0, FlagRebalance|FlagReuse)
	cfg.RebalanceInterval = 2
	multi, err := NewMultiDeviceInstance(cfg, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Finalize()
	pr.setup(t, ref)
	pr.setup(t, multi)

	rng := rand.New(rand.NewSource(206))
	for r := 0; r < 12; r++ {
		if r > 0 {
			pr.perturb(rng)
		}
		want := pr.evalFull(t, ref)
		got := pr.evalFull(t, multi)
		if math.Abs(got-want) > 1e-8*math.Abs(want) {
			t.Fatalf("round %d: multi-device reuse lnL %v, serial reference %v", r, got, want)
		}
	}
	if rs := multi.ReuseStats(); !rs.Enabled || rs.OpHits == 0 {
		t.Fatalf("multi-device reuse never hit: %+v", rs)
	}
}

// TestReuseConcurrentInstances exercises independent FlagReuse instances
// from concurrent goroutines (one instance per goroutine, the library's
// concurrency contract) under the race detector.
func TestReuseConcurrentInstances(t *testing.T) {
	device.ResetPlatforms()
	pr := newReuseProblem(t, 107, 8, 120)
	want := func() float64 {
		inst, err := NewInstance(pr.config(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		defer inst.Finalize()
		pr.setup(t, inst)
		return pr.evalFull(t, inst)
	}()

	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		inst, err := NewInstance(pr.config(0, FlagReuse|FlagThreadingThreadPool))
		if err != nil {
			t.Fatal(err)
		}
		defer inst.Finalize()
		pr.setup(t, inst)
		wg.Add(1)
		go func(w int, inst *Instance) {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				got := 0.0
				sched := pr.tr.FullSchedule()
				mats := make([]int, len(sched.Matrices))
				lens := make([]float64, len(sched.Matrices))
				for i, mu := range sched.Matrices {
					mats[i], lens[i] = mu.Matrix, mu.Length
				}
				if errs[w] = inst.UpdateTransitionMatrices(0, mats, lens); errs[w] != nil {
					return
				}
				ops := make([]Operation, len(sched.Ops))
				for i, op := range sched.Ops {
					ops[i] = Operation{
						Destination: op.Dest, DestScaleWrite: None, DestScaleRead: None,
						Child1: op.Child1, Child1Matrix: op.Child1Mat,
						Child2: op.Child2, Child2Matrix: op.Child2Mat,
					}
				}
				if errs[w] = inst.UpdatePartials(ops); errs[w] != nil {
					return
				}
				got, errs[w] = inst.CalculateRootLogLikelihoods(sched.Root, None)
				if errs[w] != nil {
					return
				}
				if got != want {
					panic("concurrent reuse instance diverged")
				}
			}
		}(w, inst)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestUpdatePartialsDoesNotAllocate pins the //beagle:noalloc contract of
// the public submission path at runtime: once warmed up, resubmitting a
// schedule (here fully clean, so every operation is skipped) must not
// allocate. The allocguard analyzer fails the build if this reference to
// UpdatePartials disappears.
func TestUpdatePartialsDoesNotAllocate(t *testing.T) {
	device.ResetPlatforms()
	pr := newReuseProblem(t, 109, 8, 100)
	inst, err := NewInstance(pr.config(0, FlagReuse))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	pr.setup(t, inst)
	pr.evalFull(t, inst) // warm up: compute everything once

	sched := pr.tr.FullSchedule()
	ops := make([]Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = Operation{
			Destination: op.Dest, DestScaleWrite: None, DestScaleRead: None,
			Child1: op.Child1, Child1Matrix: op.Child1Mat,
			Child2: op.Child2, Child2Matrix: op.Child2Mat,
		}
	}
	var sink error
	allocs := testing.AllocsPerRun(50, func() {
		sink = inst.UpdatePartials(ops)
	})
	if sink != nil {
		t.Fatal(sink)
	}
	if allocs != 0 {
		t.Errorf("UpdatePartials allocates %.1f times per clean resubmission, want 0", allocs)
	}
}
