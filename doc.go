// Package gobeagle is a high-performance computing library for statistical
// phylogenetics: a Go reproduction of the BEAGLE library as extended for
// heterogeneous hardware by Ayres & Cummings (ICPP Workshops 2017,
// DOI 10.1109/ICPPW.2017.17).
//
// The library accelerates the dominant bottleneck of maximum-likelihood and
// Bayesian phylogenetic inference: evaluating the likelihood of a tree under
// a continuous-time Markov model of sequence evolution. Following the BEAGLE
// design, the API deliberately has no tree data structure — clients drive
// flexibly indexed buffers of partial likelihoods, transition matrices,
// eigendecompositions and scale factors through operation lists, which keeps
// data resident on the compute device across the whole analysis.
//
// # Implementations
//
// A single shared kernel set serves every implementation. The available
// implementations mirror the paper:
//
//   - CPU serial, the baseline;
//   - CPU SSE-style, with 4-state unrolled kernels for nucleotide models;
//   - CPU futures / thread-create / thread-pool threading models (§VI);
//   - CUDA and OpenCL-GPU accelerator implementations with GPU-style
//     one-thread-per-entry kernels, FMA builds, and local-memory-limited
//     work groups (§VII-B1), running on a simulated device framework with
//     the published characteristics of the paper's GPUs;
//   - OpenCL-x86 with loop-over-states kernels and large pattern
//     work-groups (§VII-B2).
//
// # Quick start
//
//	rsrc := gobeagle.ResourceList()[0] // host CPU
//	inst, err := gobeagle.NewInstance(gobeagle.Config{
//		TipCount: 3, PartialsBuffers: 5, MatrixBuffers: 5,
//		EigenBuffers: 1, StateCount: 4, PatternCount: 100,
//		CategoryCount: 1, ResourceID: rsrc.ID,
//		Flags: gobeagle.FlagThreadingThreadPool,
//	})
//	// set tips, eigendecomposition, rates/weights/frequencies ...
//	// inst.UpdateTransitionMatrices, inst.UpdatePartials ...
//	lnL, err := inst.CalculateRootLogLikelihoods(root, gobeagle.None)
//
// See examples/ for complete programs, and DESIGN.md / EXPERIMENTS.md for
// the mapping between this repository and the paper's evaluation.
package gobeagle
