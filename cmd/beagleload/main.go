// Command beagleload load-tests a running beagled daemon: closed-loop
// workers hammer POST /v1/evaluate with deterministic generated problems and
// the run reports throughput and the latency distribution. With -verify, the
// served log likelihood of every distinct problem is first recomputed on a
// local dedicated instance via the same serving code path, and any response
// that is not bit-identical fails the run — this is the assertion the CI
// serve-smoke job relies on.
//
// Every request carries a unique X-Beagle-Request-Id; the daemon must echo
// it verbatim on every response, success or rejection, and any mismatch
// fails the run. The ids double as trace correlators: a request slow in the
// report can be looked up in the daemon's /debug/slow sampler and its spans
// found in the stitched /debug/trace.json export by the same id.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"gobeagle/internal/loadgen"
	"gobeagle/internal/serve"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8380", "beagled base URL")
		concurrency = flag.Int("concurrency", 32, "closed-loop workers")
		requests    = flag.Int("requests", 512, "total measured requests")
		warmup      = flag.Int("warmup", 64, "discarded warmup requests")
		tips        = flag.Int("tips", 8, "tips per generated tree")
		sites       = flag.Int("sites", 200, "alignment length")
		shapes      = flag.Int("shapes", 4, "distinct generated problems cycled through the run")
		seed        = flag.Int64("seed", 42, "problem generator seed")
		tenant      = flag.String("tenant", "loadgen", "X-Beagle-Tenant header value")
		verify      = flag.Bool("verify", false, "verify every response is bit-identical to direct local evaluation")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON")
		logJSON     = flag.Bool("log-json", false, "emit JSON structured logs instead of text")
	)
	flag.Parse()

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler).With("component", "beagleload")
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	problems := make([][]byte, *shapes)
	want := make([]float64, *shapes)
	for i := range problems {
		req := generateRequest(*tips, *sites, *seed+int64(i))
		body, err := json.Marshal(req)
		if err != nil {
			fatal("marshal", "err", err.Error())
		}
		problems[i] = body
		if *verify {
			want[i] = directLogLikelihood(logger, req)
		}
	}

	// Interrupting the run (Ctrl-C, or the harness' SIGTERM) cancels the
	// in-flight workers and still flushes the report over what completed,
	// instead of dying with the measurements lost.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := &http.Client{Timeout: 60 * time.Second}
	base := strings.TrimRight(*url, "/")
	runID := time.Now().UnixNano()
	var verifyFailures, echoMismatches atomic.Int64
	rep := loadgen.Run(ctx, loadgen.Options{
		Concurrency:    *concurrency,
		Requests:       *requests,
		WarmupRequests: *warmup,
	}, func(ctx context.Context, worker, seq int) loadgen.Result {
		shape := (worker + seq) % len(problems)
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/v1/evaluate", bytes.NewReader(problems[shape]))
		if err != nil {
			return loadgen.Result{Err: err}
		}
		// One unique id per attempt: the daemon must echo it on every
		// response path, rejections included.
		reqID := fmt.Sprintf("load-%x-%d-%d", runID, worker, seq)
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("X-Beagle-Tenant", *tenant)
		hreq.Header.Set(serve.RequestIDHeader, reqID)
		start := time.Now()
		resp, err := client.Do(hreq)
		if err != nil {
			return loadgen.Result{Err: err}
		}
		defer resp.Body.Close()
		if echoed := resp.Header.Get(serve.RequestIDHeader); echoed != reqID {
			echoMismatches.Add(1)
			return loadgen.Result{Err: fmt.Errorf("request id not echoed: sent %q, got %q (HTTP %d)",
				reqID, echoed, resp.StatusCode)}
		}
		var body serve.EvaluateResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				return loadgen.Result{Err: err}
			}
			if body.RequestID != reqID {
				echoMismatches.Add(1)
				return loadgen.Result{Err: fmt.Errorf("request id not echoed in body: sent %q, got %q",
					reqID, body.RequestID)}
			}
			if *verify && body.LogLikelihood != want[shape] {
				verifyFailures.Add(1)
				return loadgen.Result{Err: fmt.Errorf("shape %d: served lnL %v != direct %v",
					shape, body.LogLikelihood, want[shape])}
			}
		}
		return loadgen.Result{Code: resp.StatusCode, Latency: time.Since(start)}
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Printf("beagleload: %d requests in %v (%.1f req/s), %d errors\n",
			rep.Requests, rep.Elapsed.Round(time.Millisecond), rep.RPS, rep.Errors)
		// Report status codes in ascending order; map order would make
		// successive runs print the histogram differently.
		codes := make([]int, 0, len(rep.Codes))
		for code := range rep.Codes {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Printf("  HTTP %d: %d\n", code, rep.Codes[code])
		}
		fmt.Printf("  latency p50 %v  p95 %v  p99 %v  mean %v  max %v\n",
			rep.P50.Round(time.Microsecond), rep.P95.Round(time.Microsecond),
			rep.P99.Round(time.Microsecond), rep.Mean.Round(time.Microsecond),
			rep.Max.Round(time.Microsecond))
	}

	if n := echoMismatches.Load(); n > 0 {
		fatal("request ids were not echoed verbatim", "mismatches", n)
	}
	fmt.Printf("beagleload: all request ids echoed verbatim\n")
	if *verify {
		if n := verifyFailures.Load(); n > 0 {
			fatal("responses were NOT bit-identical to direct evaluation", "failures", n)
		}
		fmt.Printf("beagleload: all %d OK responses bit-identical to direct evaluation\n", rep.Codes[http.StatusOK])
	}
	if ctx.Err() != nil {
		fmt.Println("beagleload: interrupted; report covers the completed requests only")
		os.Exit(130)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
	if rep.Codes[http.StatusOK] == 0 {
		fatal("no successful responses")
	}
}

// generateRequest builds a deterministic random problem: a random tree over
// `tips` taxa with HKY85+Γ4 and a mutated star alignment.
func generateRequest(tips, sites int, seed int64) *serve.EvaluateRequest {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, tips)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	newick := randomNewick(rng, names)
	const bases = "ACGT"
	root := make([]byte, sites)
	for i := range root {
		root[i] = bases[rng.Intn(4)]
	}
	seqs := map[string]string{}
	for _, name := range names {
		leaf := append([]byte(nil), root...)
		for i := range leaf {
			if rng.Float64() < 0.15 {
				leaf[i] = bases[rng.Intn(4)]
			}
		}
		seqs[name] = string(leaf)
	}
	return &serve.EvaluateRequest{
		Newick:    newick,
		Model:     serve.ModelSpec{Type: "HKY85", Kappa: 2 + rng.Float64(), Frequencies: []float64{0.3, 0.2, 0.2, 0.3}},
		Gamma:     &serve.GammaSpec{Alpha: 0.5 + rng.Float64(), Categories: 4},
		Sequences: seqs,
	}
}

// randomNewick builds a random rooted binary topology by repeatedly joining
// two subtrees.
func randomNewick(rng *rand.Rand, names []string) string {
	nodes := make([]string, len(names))
	for i, n := range names {
		nodes[i] = fmt.Sprintf("%s:%.4f", n, 0.02+0.2*rng.Float64())
	}
	for len(nodes) > 1 {
		i := rng.Intn(len(nodes))
		a := nodes[i]
		nodes = append(nodes[:i], nodes[i+1:]...)
		j := rng.Intn(len(nodes))
		b := nodes[j]
		joined := fmt.Sprintf("(%s,%s):%.4f", a, b, 0.02+0.1*rng.Float64())
		nodes[j] = joined
	}
	root := nodes[0]
	// Strip the root's branch length.
	if i := strings.LastIndex(root, ")"); i >= 0 {
		root = root[:i+1]
	}
	return root + ";"
}

// directLogLikelihood evaluates one request on the one-instance-per-request
// path, the bit-identity reference.
func directLogLikelihood(logger *slog.Logger, req *serve.EvaluateRequest) float64 {
	opts := serve.DefaultOptions()
	opts.DisablePool = true
	s := serve.NewServer(opts)
	defer s.Close()
	resp, code, err := s.Evaluate(context.Background(), req)
	if err != nil {
		logger.Error("direct reference evaluation failed", "status", code, "err", err.Error())
		os.Exit(1)
	}
	return resp.LogLikelihood
}
