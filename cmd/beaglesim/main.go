// Command beaglesim simulates molecular sequence alignments down a
// phylogenetic tree (a seq-gen-style tool): Newick tree + substitution model
// → FASTA or PHYLIP alignment. Together with beagleml and beaglemcmc it
// completes the simulate → infer toolchain, and is how the repository's own
// test datasets are produced.
//
// Example:
//
//	beaglesim -tree tree.nwk -sites 1000 -model hky -kappa 2.5 \
//	          -gamma 0.5 -out data.fasta
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func main() {
	var (
		treePath  = flag.String("tree", "", "Newick tree file (required)")
		sites     = flag.Int("sites", 1000, "alignment length in sites")
		modelName = flag.String("model", "jc", "substitution model: jc, k80, hky")
		kappa     = flag.Float64("kappa", 2.0, "transition/transversion ratio (k80, hky)")
		freqsSpec = flag.String("freqs", "0.25,0.25,0.25,0.25", "base frequencies A,C,G,T (hky)")
		gamma     = flag.Float64("gamma", 0, "discrete-gamma shape alpha (0 = no rate variation)")
		cats      = flag.Int("categories", 4, "gamma rate categories")
		seed      = flag.Int64("seed", 1, "random seed")
		outPath   = flag.String("out", "", "output file (default stdout)")
		phylip    = flag.Bool("phylip", false, "write PHYLIP instead of FASTA")
		stats     = flag.Bool("stats", false, "print simulation timing and throughput")
	)
	flag.Parse()
	if *treePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	text, err := os.ReadFile(*treePath)
	if err != nil {
		fatal(err)
	}
	tr, err := tree.ParseNewick(strings.TrimSpace(string(text)))
	if err != nil {
		fatal(err)
	}

	var model *substmodel.Model
	switch *modelName {
	case "jc":
		model = substmodel.NewJC69()
	case "k80":
		model, err = substmodel.NewK80(*kappa)
	case "hky":
		var freqs []float64
		for _, p := range strings.Split(*freqsSpec, ",") {
			var v float64
			if _, err := fmt.Sscan(strings.TrimSpace(p), &v); err != nil {
				fatal(fmt.Errorf("bad frequency %q: %v", p, err))
			}
			freqs = append(freqs, v)
		}
		model, err = substmodel.NewHKY85(*kappa, freqs)
	default:
		fatal(fmt.Errorf("unknown model %q", *modelName))
	}
	if err != nil {
		fatal(err)
	}
	rates := substmodel.SingleRate()
	if *gamma > 0 {
		if rates, err = substmodel.GammaRates(*gamma, *cats); err != nil {
			fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	simStart := time.Now()
	align, err := seqgen.Simulate(rng, tr, model, rates, *sites)
	simElapsed := time.Since(simStart)
	if err != nil {
		fatal(err)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if *phylip {
		err = seqgen.WritePHYLIP(out, align)
	} else {
		err = seqgen.WriteFASTA(out, align)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "beaglesim: %d taxa x %d sites under %s (%d rate categories)\n",
		tr.TipCount, *sites, model.Name, len(rates.Rates))
	if *stats {
		cells := float64(tr.TipCount) * float64(*sites)
		fmt.Fprintf(os.Stderr, "beaglesim: simulated in %v (%.0f sites/s, %.0f tip-sites/s)\n",
			simElapsed.Round(time.Microsecond),
			float64(*sites)/simElapsed.Seconds(), cells/simElapsed.Seconds())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "beaglesim:", err)
	os.Exit(1)
}
