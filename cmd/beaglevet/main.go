// Command beaglevet is the library's static-analysis multichecker: it runs
// the stock `go vet` suite followed by the repo-specific analyzers in
// internal/analysis (noalloc, nopanic, flagexcl, hazardcapture, allocguard)
// over the module. scripts/run_checks.sh and the CI beaglevet job gate every
// change on a clean run:
//
//	go run ./cmd/beaglevet ./...
//
// Flags:
//
//	-stock=false   skip the go vet pass (custom analyzers only)
//	-list          print the custom analyzers and exit
//	-C dir         analyze the module rooted at dir (default: the module
//	               containing the working directory)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"gobeagle/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("beaglevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	stock := fs.Bool("stock", true, "also run the stock `go vet` analyzers")
	list := fs.Bool("list", false, "list the custom analyzers and exit")
	dir := fs.String("C", "", "module directory to analyze (default: module of the working directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	moduleDir := *dir
	if moduleDir == "" {
		var err error
		moduleDir, err = findModuleDir()
		if err != nil {
			fmt.Fprintln(stderr, "beaglevet:", err)
			return 2
		}
	}

	failed := false
	if *stock {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Dir = moduleDir
		vet.Stdout = stdout
		vet.Stderr = stderr
		if err := vet.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := analysis.Load(moduleDir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "beaglevet:", err)
		return 2
	}
	// cmd/beaglevet and the analysis layer are tooling, not the library's
	// hot path; they are still analyzed like everything else.
	var lines []string
	for _, pkg := range pkgs {
		for _, a := range analysis.All() {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(stderr, "beaglevet:", err)
				return 2
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				name := pos.Filename
				if r, err := filepath.Rel(moduleDir, name); err == nil && !strings.HasPrefix(r, "..") {
					name = r
				}
				lines = append(lines, fmt.Sprintf("%s:%d:%d: %s: %s", name, pos.Line, pos.Column, d.Analyzer, d.Message))
			}
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(stdout, l)
	}
	if len(lines) > 0 || failed {
		return 1
	}
	return 0
}

// findModuleDir locates the root of the module containing the working
// directory via `go env GOMOD`.
func findModuleDir() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := string(bytes.TrimSpace(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
