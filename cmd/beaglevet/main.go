// Command beaglevet is the library's static-analysis multichecker: it runs
// the stock `go vet` suite followed by the repo-specific analyzers in
// internal/analysis (noalloc, nopanic, flagexcl, hazardcapture, allocguard,
// lockorder, atomicmix, goroleak, mapdeterminism, ctxhttp) over the module. scripts/run_checks.sh and the CI beaglevet job gate every
// change on a clean run:
//
//	go run ./cmd/beaglevet ./...
//
// Flags:
//
//	-stock=false   skip the go vet pass (custom analyzers only)
//	-list          print the custom analyzers and exit
//	-json          emit diagnostics as a JSON array (machine-readable; CI
//	               uploads it as an artifact)
//	-C dir         analyze the module rooted at dir (default: the module
//	               containing the working directory)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"gobeagle/internal/analysis"
)

// jsonDiag is one diagnostic in -json output. The array is sorted the same
// way the text output is, so successive runs diff cleanly.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("beaglevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	stock := fs.Bool("stock", true, "also run the stock `go vet` analyzers")
	list := fs.Bool("list", false, "list the custom analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	dir := fs.String("C", "", "module directory to analyze (default: module of the working directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	moduleDir := *dir
	if moduleDir == "" {
		var err error
		moduleDir, err = findModuleDir()
		if err != nil {
			fmt.Fprintln(stderr, "beaglevet:", err)
			return 2
		}
	}

	failed := false
	if *stock {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Dir = moduleDir
		// With -json, stdout must stay a single well-formed JSON document,
		// so the stock pass reports on stderr only.
		if *jsonOut {
			vet.Stdout = stderr
		} else {
			vet.Stdout = stdout
		}
		vet.Stderr = stderr
		if err := vet.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := analysis.Load(moduleDir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "beaglevet:", err)
		return 2
	}
	// cmd/beaglevet and the analysis layer are tooling, not the library's
	// hot path; they are still analyzed like everything else.
	var found []jsonDiag
	for _, pkg := range pkgs {
		for _, a := range analysis.All() {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(stderr, "beaglevet:", err)
				return 2
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				name := pos.Filename
				if r, err := filepath.Rel(moduleDir, name); err == nil && !strings.HasPrefix(r, "..") {
					name = r
				}
				found = append(found, jsonDiag{
					File: name, Line: pos.Line, Column: pos.Column,
					Analyzer: d.Analyzer, Message: d.Message,
				})
			}
		}
	}
	sort.Slice(found, func(i, j int) bool {
		a, b := found[i], found[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if *jsonOut {
		if found == nil {
			found = []jsonDiag{} // render `[]`, not `null`
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(found); err != nil {
			fmt.Fprintln(stderr, "beaglevet:", err)
			return 2
		}
	} else {
		for _, d := range found {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Column, d.Analyzer, d.Message)
		}
	}
	if len(found) > 0 || failed {
		return 1
	}
	return 0
}

// findModuleDir locates the root of the module containing the working
// directory via `go env GOMOD`.
func findModuleDir() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := string(bytes.TrimSpace(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
