package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// runCapture invokes run with stdout redirected to a temp file and returns
// the exit code and captured output.
func runCapture(t *testing.T, args []string) (int, []byte) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, out, os.Stderr)
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, raw
}

// TestJSONOutput pins the -json contract: stdout is one JSON array of
// diagnostics (empty array on a clean run, records sorted by position on a
// dirty one) and the exit code matches the text mode.
func TestJSONOutput(t *testing.T) {
	mod := t.TempDir()
	writeFile := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(mod, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module jsontest\n\ngo 1.22\n")
	writeFile("clean.go", "package jsontest\n\nfunc Add(a, b int) int { return a + b }\n")

	code, raw := runCapture(t, []string{"-stock=false", "-json", "-C", mod, "./..."})
	if code != 0 {
		t.Fatalf("clean module: exit %d, output %s", code, raw)
	}
	var diags []map[string]any
	if err := json.Unmarshal(raw, &diags); err != nil {
		t.Fatalf("clean module output is not JSON: %v\n%s", err, raw)
	}
	if len(diags) != 0 {
		t.Fatalf("clean module reported %d diagnostics: %s", len(diags), raw)
	}

	writeFile("dirty.go", `package jsontest

import "fmt"

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`)
	code, raw = runCapture(t, []string{"-stock=false", "-json", "-C", mod, "./..."})
	if code != 1 {
		t.Fatalf("dirty module: exit %d, want 1; output %s", code, raw)
	}
	if err := json.Unmarshal(raw, &diags); err != nil {
		t.Fatalf("dirty module output is not JSON: %v\n%s", err, raw)
	}
	if len(diags) == 0 {
		t.Fatalf("dirty module reported no diagnostics")
	}
	d := diags[0]
	if d["file"] != "dirty.go" || d["analyzer"] != "mapdeterminism" {
		t.Fatalf("unexpected first diagnostic: %v", d)
	}
	for _, key := range []string{"file", "line", "column", "analyzer", "message"} {
		if _, ok := d[key]; !ok {
			t.Fatalf("diagnostic missing %q: %v", key, d)
		}
	}
}
