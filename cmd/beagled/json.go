package main

import (
	"encoding/json"
	"io"
	"strings"
)

func jsonDecode(s string, v any) error {
	return json.NewDecoder(strings.NewReader(s)).Decode(v)
}

func jsonDecodeReader(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
