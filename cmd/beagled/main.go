// Command beagled is the likelihood-as-a-service daemon: it serves the
// library's phylogenetic likelihood evaluation over a JSON HTTP API, backed
// by a pool of warm, slot-carved instances that micro-batch compatible
// requests into wide scheduler submissions.
//
//	POST /v1/evaluate      evaluate a tree+model+alignment (JSON in/out)
//	GET  /v1/health        liveness, uptime and pool summary
//	GET  /metrics          Prometheus text metrics (beagled_* families)
//	GET  /cluster/metrics  federated metrics: self plus every -workers scrape
//	GET  /debug/vars       expvar-style JSON variables
//	GET  /debug/trace      serve-layer span summary
//	GET  /debug/trace.json stitched Chrome trace (with -trace: serve + engines + workers)
//	GET  /debug/slow       slowest retained requests with phase timings
//	GET  /debug/pprof/     runtime profiling (only with -pprof)
//
// Every /v1/evaluate response echoes X-Beagle-Request-Id, honoring a
// client-supplied value and generating one otherwise, on rejections too.
//
// The daemon exits gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests drain, and every pooled instance is finalized.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"gobeagle/internal/serve"
)

func main() {
	def := serve.DefaultOptions()
	var (
		addr         = flag.String("addr", "127.0.0.1:8380", "listen address (use :0 for an ephemeral port)")
		portFile     = flag.String("port-file", "", "write the bound address to this file once listening (for test harnesses)")
		window       = flag.Duration("window", def.Window, "micro-batch coalescing window (0 disables the wait)")
		maxBatch     = flag.Int("max-batch", def.MaxBatch, "maximum requests merged into one scheduler submission")
		initialSlots = flag.Int("initial-slots", def.InitialSlots, "slot capacity a fresh warm instance starts with")
		queue        = flag.Int("queue", def.QueueDepth, "admission queue depth per warm instance (full queue answers 429)")
		maxInst      = flag.Int("max-instances", def.MaxCalculators, "warm instance pool cap (LRU eviction beyond it)")
		maxTips      = flag.Int("max-tips", def.MaxTips, "largest accepted tree (tips)")
		maxPatterns  = flag.Int("max-patterns", def.MaxPatterns, "largest accepted compressed alignment (patterns)")
		rps          = flag.Float64("rps", 0, "per-tenant request quota in requests/second (0 disables)")
		burst        = flag.Int("burst", def.QuotaBurst, "per-tenant quota burst")
		threads      = flag.Int("threads", 0, "worker threads per pooled instance (0 = all cores)")
		noPool       = flag.Bool("no-pool", false, "ablation: evaluate every request on a fresh instance")
		workersArg   = flag.String("workers", "", "comma-separated beagleworker addresses; pooled instances shard patterns across the local host and these workers")
		traceOn      = flag.Bool("trace", false, "propagate span tracing into pooled instances and worker processes (stitched /debug/trace.json export)")
		pprofOn      = flag.Bool("pprof", false, "expose /debug/pprof/ runtime profiling endpoints")
		slowN        = flag.Int("slow", 0, "slowest requests retained for /debug/slow (0 = default)")
		logJSON      = flag.Bool("log-json", false, "emit JSON structured logs instead of text")
		selfcheck    = flag.Bool("selfcheck", false, "boot in-process, verify a served request against direct evaluation, exit")
	)
	flag.Parse()

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler).With("component", "beagled")

	opts := serve.DefaultOptions()
	opts.Window = *window
	opts.MaxBatch = *maxBatch
	opts.InitialSlots = *initialSlots
	opts.QueueDepth = *queue
	opts.MaxCalculators = *maxInst
	opts.MaxTips = *maxTips
	opts.MaxPatterns = *maxPatterns
	opts.QuotaRPS = *rps
	opts.QuotaBurst = *burst
	opts.Threads = *threads
	opts.DisablePool = *noPool
	opts.Trace = *traceOn
	opts.Pprof = *pprofOn
	opts.SlowN = *slowN
	opts.Logger = logger
	if *workersArg != "" {
		opts.Workers = strings.Split(*workersArg, ",")
	}

	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err.Error())
		os.Exit(1)
	}

	if *selfcheck {
		if err := runSelfcheck(opts); err != nil {
			fatal("selfcheck failed", err)
		}
		fmt.Println("beagled: selfcheck ok")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := serve.NewServer(opts)
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe(ctx, *addr, ready) }()

	select {
	case bound := <-ready:
		logger.Info("serving", "url", "http://"+bound.String(),
			"window", opts.Window.String(), "max_batch", opts.MaxBatch,
			"pool", opts.MaxCalculators, "workers", len(opts.Workers),
			"trace", opts.Trace, "pprof", opts.Pprof)
		if *portFile != "" {
			if err := os.WriteFile(*portFile, []byte(bound.String()+"\n"), 0o644); err != nil {
				fatal("write port file", err)
			}
		}
	case err := <-errc:
		fatal("listen", err)
	}

	if err := <-errc; err != nil {
		fatal("serve", err)
	}
	logger.Info("drained and shut down")
}

// selfcheckRequest is a small fixed problem exercised by -selfcheck.
const selfcheckRequest = `{
  "newick": "((human:0.1,chimp:0.12):0.05,(mouse:0.3,rat:0.25):0.1);",
  "model": {"type": "HKY85", "kappa": 2.5, "frequencies": [0.3, 0.2, 0.2, 0.3]},
  "gamma": {"alpha": 0.5, "categories": 4},
  "sequences": {
    "human": "ACGTACGTACGGTACGTTACGATA",
    "chimp": "ACGTACGTACGGTACGCTACGATA",
    "mouse": "ACGTTCGTACGGTACGTTAAGATA",
    "rat":   "ACGTTCGAACGGTACGTTACGATA"
  },
  "site_log_likelihoods": true
}`

// runSelfcheck boots the pooled server in-process, evaluates a fixed problem
// through it twice (cold and warm) and against the one-instance-per-request
// path, and requires bit-identical log likelihoods.
func runSelfcheck(opts serve.Options) error {
	pooled := serve.NewServer(opts)
	defer pooled.Close()
	directOpts := opts
	directOpts.DisablePool = true
	direct := serve.NewServer(directOpts)
	defer direct.Close()

	eval := func(s *serve.Server) (*serve.EvaluateResponse, error) {
		var req serve.EvaluateRequest
		if err := jsonDecode(selfcheckRequest, &req); err != nil {
			return nil, err
		}
		resp, code, err := s.Evaluate(context.Background(), &req)
		if err != nil {
			return nil, fmt.Errorf("evaluate (HTTP %d): %w", code, err)
		}
		return resp, nil
	}

	want, err := eval(direct)
	if err != nil {
		return fmt.Errorf("direct path: %w", err)
	}
	for pass, label := range []string{"cold", "warm"} {
		got, err := eval(pooled)
		if err != nil {
			return fmt.Errorf("pooled path (%s): %w", label, err)
		}
		if got.LogLikelihood != want.LogLikelihood {
			return fmt.Errorf("%s pooled lnL %v != direct %v (must be bit-identical)",
				label, got.LogLikelihood, want.LogLikelihood)
		}
		if pass == 1 && !got.Pool.Hit {
			return fmt.Errorf("warm pass missed the instance pool")
		}
	}

	// The HTTP surface must round-trip too.
	ready := make(chan net.Addr, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	httpSrv := serve.NewServer(opts)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe(ctx, "127.0.0.1:0", ready) }()
	var bound net.Addr
	select {
	case bound = <-ready:
	case err := <-errc:
		return fmt.Errorf("listen: %v", err)
	}
	resp, err := http.Post("http://"+bound.String()+"/v1/evaluate", "application/json",
		strings.NewReader(selfcheckRequest))
	if err != nil {
		return fmt.Errorf("POST /v1/evaluate: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/evaluate: status %d", resp.StatusCode)
	}
	var wire serve.EvaluateResponse
	if err := jsonDecodeReader(resp.Body, &wire); err != nil {
		return err
	}
	if wire.LogLikelihood != want.LogLikelihood {
		return fmt.Errorf("wire lnL %v != direct %v", wire.LogLikelihood, want.LogLikelihood)
	}
	mresp, err := http.Get("http://" + bound.String() + "/metrics")
	if err != nil {
		return fmt.Errorf("GET /metrics: %w", err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", mresp.StatusCode)
	}
	cancel()
	if err := <-errc; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Printf("beagled: selfcheck lnL %.6f over %d sites (%d patterns), pooled==direct bit-identical\n",
		want.LogLikelihood, want.Sites, want.Patterns)
	return nil
}
