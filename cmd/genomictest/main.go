// Command genomictest is the library's synthetic benchmark and correctness
// program, the Go counterpart of the genomictest tool the paper extends in
// §V-A: it generates random synthetic datasets of arbitrary size, evaluates
// the phylogenetic likelihood through any available implementation, reports
// throughput in effective GFLOPS, and can cross-check every resource against
// the serial CPU reference.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"gobeagle"
	"gobeagle/internal/benchmarks"
	"gobeagle/internal/flops"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available resources and exit")
		recommend = flag.Bool("recommend", false, "rank implementations by expected throughput for this problem shape and exit")
		check     = flag.Bool("check", false, "verify every resource against the CPU serial reference")
		taxa      = flag.Int("taxa", 16, "number of taxa (tree tips)")
		states    = flag.Int("states", 4, "character states: 4 nucleotide, 20 amino acid, 61 codon")
		patterns  = flag.Int("patterns", 10000, "unique site patterns")
		cats      = flag.Int("categories", 4, "rate categories (discrete gamma)")
		reps      = flag.Int("reps", 5, "benchmark repetitions")
		seed      = flag.Int64("seed", 42, "random seed")
		resource  = flag.String("resource", "CPU (host)", "resource name (see -list)")
		framework = flag.String("framework", "", "restrict resource lookup to CUDA or OpenCL")
		precision = flag.String("precision", "double", "single or double")
		threading = flag.String("threading", "none", "CPU threading: none, futures, threadcreate, threadpool, hybrid")
		sse       = flag.Bool("sse", false, "use the SSE-style 4-state kernels (CPU resource)")
		noFMA     = flag.Bool("no-fma", false, "build accelerator kernels without fused multiply-add")
		workGroup = flag.Int("workgroup", 0, "accelerator work-group size in patterns (0 = default)")
		threads   = flag.Int("threads", 0, "CPU worker threads (0 = all)")
		stats     = flag.Bool("stats", false, "enable telemetry and print per-kernel op counts and timings")
		tracePath = flag.String("trace", "", "enable span tracing and write a Chrome trace-event JSON timeline to this file")
	)
	flag.Parse()

	if *list {
		for _, r := range gobeagle.ResourceList() {
			fmt.Println(r)
			fmt.Printf("    implementations: %s\n", strings.Join(r.Implementations(), ", "))
		}
		return
	}

	if *recommend {
		recs, err := benchmarks.Recommend(*taxa, *states, *patterns, *cats, *precision == "single")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("expected throughput ranking for %d taxa, %d states, %d patterns, %d categories (%s):\n",
			*taxa, *states, *patterns, *cats, *precision)
		for i, r := range recs {
			fmt.Printf("  %d. %-38s %8.1f GFLOPS\n", i+1, r.Setup, r.GFLOPS)
		}
		return
	}

	flags, err := buildFlags(*precision, *threading, *sse, *noFMA)
	if err != nil {
		fatal(err)
	}
	if *stats {
		flags |= gobeagle.FlagTelemetry
	}
	if *tracePath != "" {
		flags |= gobeagle.FlagTrace
	}
	p, err := benchmarks.NewProblem(*seed, *taxa, *states, *patterns, *cats)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("genomictest: %d taxa, %d states, %d patterns, %d categories, %s precision\n",
		*taxa, *states, *patterns, *cats, *precision)

	if *check {
		if err := crossCheck(p, flags); err != nil {
			fatal(err)
		}
		fmt.Println("all resources agree with the CPU serial reference")
		return
	}

	rsc, err := gobeagle.FindResource(*resource, *framework)
	if err != nil {
		fatal(err)
	}
	cfg := p.InstanceConfig(rsc.ID, flags)
	cfg.WorkGroupSize = *workGroup
	cfg.Threads = *threads
	inst, err := gobeagle.NewInstance(cfg)
	if err != nil {
		fatal(err)
	}
	defer inst.Finalize()
	fmt.Printf("implementation: %s\n", inst.Implementation())

	if err := p.Load(inst); err != nil {
		fatal(err)
	}
	mats, lens, ops, root := p.Schedule()
	if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
		fatal(err)
	}
	best := time.Duration(math.MaxInt64)
	var lnL float64
	for r := 0; r < *reps; r++ {
		start := time.Now()
		if err := inst.UpdatePartials(ops); err != nil {
			fatal(err)
		}
		lnL, err = inst.CalculateRootLogLikelihoods(root, gobeagle.None)
		if err != nil {
			fatal(err)
		}
		if e := time.Since(start); e < best {
			best = e
		}
	}
	fmt.Printf("log likelihood: %.6f\n", lnL)
	fmt.Printf("best evaluation: %v\n", best)
	fmt.Printf("measured throughput: %.2f GFLOPS (effective)\n",
		flops.GFLOPS(p.FlopsPerEval(), best))
	if q := inst.DeviceQueue(); q != nil {
		fmt.Printf("device: %d kernel launches, %d bytes transferred, modeled device time %v\n",
			q.Launches(), q.BytesTransferred(), q.ModeledTime())
	}
	if *stats {
		printStats(inst.Stats())
	}
	if *tracePath != "" {
		if err := writeTrace(inst, *tracePath); err != nil {
			fatal(err)
		}
	}
}

// writeTrace exports the instance's span timeline as Chrome trace-event JSON.
func writeTrace(inst *gobeagle.Instance, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = inst.TraceJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d spans to %s — load in ui.perfetto.dev\n", inst.TraceSpanCount(), path)
	return nil
}

// printStats renders the telemetry snapshot: per-kernel op counts and
// timings, cumulative effective GFLOPS, and the most recent scheduler
// dependency-level traces for the leveled strategies.
func printStats(s gobeagle.Stats) {
	fmt.Printf("telemetry: %s (%s), %d batches, %.3g effective flops, %.2f GFLOPS cumulative\n",
		s.Implementation, s.Strategy, s.Batches, s.TotalFlops, s.EffectiveGFLOPS)
	fmt.Printf("  %-12s %10s %8s %12s %12s %12s %12s\n",
		"kernel", "ops", "calls", "total", "mean/op", "min", "max")
	for _, k := range s.Kernels {
		fmt.Printf("  %-12s %10d %8d %12v %12v %12v %12v\n",
			k.Kernel, k.Ops, k.Calls, k.Total.Round(time.Microsecond),
			k.MeanPerOp().Round(time.Nanosecond), k.Min.Round(time.Nanosecond),
			k.Max.Round(time.Nanosecond))
	}
	if n := len(s.Levels); n > 0 {
		show := s.Levels
		const maxShown = 8
		if n > maxShown {
			show = show[n-maxShown:]
		}
		fmt.Printf("  last %d scheduler levels (of %d retained):\n", len(show), n)
		for _, l := range show {
			fmt.Printf("    batch %d level %d: %d ops as %d tasks in %v\n",
				l.Batch, l.Level, l.Ops, l.Tasks, l.Wall.Round(time.Microsecond))
		}
	}
}

func buildFlags(precision, threading string, sse, noFMA bool) (gobeagle.Flags, error) {
	var f gobeagle.Flags
	switch precision {
	case "single":
		f |= gobeagle.FlagPrecisionSingle
	case "double":
	default:
		return 0, fmt.Errorf("unknown precision %q", precision)
	}
	switch threading {
	case "none", "":
	case "futures":
		f |= gobeagle.FlagThreadingFutures
	case "threadcreate":
		f |= gobeagle.FlagThreadingThreadCreate
	case "threadpool":
		f |= gobeagle.FlagThreadingThreadPool
	case "hybrid", "threadpoolhybrid":
		f |= gobeagle.FlagThreadingThreadPoolHybrid
	default:
		return 0, fmt.Errorf("unknown threading %q", threading)
	}
	if sse {
		f |= gobeagle.FlagVectorSSE
	}
	if noFMA {
		f |= gobeagle.FlagDisableFMA
	}
	return f, nil
}

// crossCheck evaluates the problem on every resource, and on every CPU
// threading strategy of the host resource, comparing everything against the
// serial CPU reference.
func crossCheck(p *benchmarks.Problem, flags gobeagle.Flags) error {
	tol := 1e-8
	if flags&gobeagle.FlagPrecisionSingle != 0 {
		tol = 1e-3
	}
	var want float64
	eval := func(resourceID int, f gobeagle.Flags, where string, first bool) error {
		inst, err := gobeagle.NewInstance(p.InstanceConfig(resourceID, f))
		if err != nil {
			return fmt.Errorf("%s: %w", where, err)
		}
		if err := p.Load(inst); err != nil {
			inst.Finalize()
			return err
		}
		mats, lens, ops, root := p.Schedule()
		if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
			inst.Finalize()
			return err
		}
		if err := inst.UpdatePartials(ops); err != nil {
			inst.Finalize()
			return err
		}
		lnL, err := inst.CalculateRootLogLikelihoods(root, gobeagle.None)
		name := inst.Implementation()
		inst.Finalize()
		if err != nil {
			return err
		}
		if first {
			want = lnL
		} else if math.Abs(lnL-want) > tol*math.Abs(want) {
			return fmt.Errorf("%s on %s: lnL %v differs from reference %v",
				name, where, lnL, want)
		}
		fmt.Printf("  %-45s lnL = %.6f  ok\n", fmt.Sprintf("%s (%s)", name, where), lnL)
		return nil
	}
	for i, r := range gobeagle.ResourceList() {
		where := strings.TrimSpace(r.Framework + " " + r.Name)
		if err := eval(r.ID, flags, where, i == 0); err != nil {
			return err
		}
	}
	// Every CPU threading strategy on the host resource, whatever threading
	// the command line selected, so the check scripts exercise the futures,
	// thread-pool and hybrid schedulers on each model configuration.
	base := flags &^ (gobeagle.FlagThreadingFutures | gobeagle.FlagThreadingThreadCreate |
		gobeagle.FlagThreadingThreadPool | gobeagle.FlagThreadingThreadPoolHybrid)
	for _, tf := range []gobeagle.Flags{
		gobeagle.FlagThreadingFutures,
		gobeagle.FlagThreadingThreadCreate,
		gobeagle.FlagThreadingThreadPool,
		gobeagle.FlagThreadingThreadPoolHybrid,
	} {
		if err := eval(0, base|tf, "CPU (host)", false); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genomictest:", err)
	os.Exit(1)
}
