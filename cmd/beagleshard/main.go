// Command beagleshard drives a distributed pattern-sharded instance against
// a set of beagleworker processes and verifies, iteration by iteration, that
// its root and per-site log-likelihoods are BIT-IDENTICAL to a single-node
// serial instance evaluating the same problem. It is the distributed
// correctness smoke test: CI boots two workers on loopback, runs it, kills a
// worker mid-run and requires the comparison to keep holding through the
// journal-replay failover.
//
//	beagleshard -workers 127.0.0.1:8381,127.0.0.1:8382 -iters 50
//	beagleshard -workers $A,$B -expect-failover -pause 100ms -trace shard.json
//
// Exit status 0 means every iteration matched exactly (and, with
// -expect-failover, that at least one worker failed over to its local
// fallback mid-run).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"gobeagle"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "beagleshard:", err)
	os.Exit(1)
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func main() {
	var (
		workersArg = flag.String("workers", "", "comma-separated beagleworker addresses (required)")
		tips       = flag.Int("tips", 24, "taxa in the simulated tree")
		sites      = flag.Int("sites", 2000, "simulated alignment length before pattern compression")
		cats       = flag.Int("categories", 4, "gamma rate categories")
		iters      = flag.Int("iters", 50, "evaluation iterations (each rescales every branch and re-peels)")
		seed       = flag.Int64("seed", 42, "random seed")
		local      = flag.Bool("local", true, "keep a local host-CPU shard beside the workers")
		rebalance  = flag.Bool("rebalance", false, "enable the hierarchical EWMA rebalancer")
		pause      = flag.Duration("pause", 0, "sleep between iterations (stretches the run so a harness can kill a worker mid-flight)")
		expectFail = flag.Bool("expect-failover", false, "require at least one worker to have failed over by the end")
		tracePath  = flag.String("trace", "", "write the distributed instance's Chrome trace-event JSON to this file")
	)
	flag.Parse()
	if *workersArg == "" {
		flag.Usage()
		os.Exit(2)
	}
	workers := strings.Split(*workersArg, ",")

	rng := rand.New(rand.NewSource(*seed))
	tr, err := tree.Random(rng, *tips, 0.15)
	check(err)
	m, err := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	check(err)
	rates, err := substmodel.GammaRates(0.6, *cats)
	check(err)
	align, err := seqgen.Simulate(rng, tr, m, rates, *sites)
	check(err)
	ps := seqgen.CompressPatterns(align)
	fmt.Printf("problem: %d tips, %d sites, %d unique patterns, %d categories\n",
		*tips, *sites, ps.PatternCount(), *cats)

	cfg := gobeagle.Config{
		TipCount:        tr.TipCount,
		PartialsBuffers: tr.NodeCount(),
		MatrixBuffers:   tr.NodeCount(),
		EigenBuffers:    1,
		ScaleBuffers:    tr.NodeCount() + 1,
		StateCount:      4,
		PatternCount:    ps.PatternCount(),
		CategoryCount:   *cats,
	}
	single, err := gobeagle.NewInstance(cfg)
	check(err)
	defer single.Finalize()

	dcfg := cfg
	if *rebalance {
		dcfg.Flags |= gobeagle.FlagRebalance
		dcfg.RebalanceInterval = 4
	}
	if *tracePath != "" {
		dcfg.Flags |= gobeagle.FlagTrace
	}
	var localIDs []int
	if *local {
		localIDs = []int{0}
	}
	dist, err := gobeagle.NewDistributedInstance(dcfg, workers, localIDs, nil)
	check(err)
	defer dist.Finalize()
	fmt.Printf("distributed: %s\n", dist.Implementation())

	ed, err := m.Eigen()
	check(err)
	sched := tr.FullSchedule()
	matrices := make([]int, len(sched.Matrices))
	baseLens := make([]float64, len(sched.Matrices))
	for i, bm := range sched.Matrices {
		matrices[i] = bm.Matrix
		baseLens[i] = bm.Length
	}
	ops := make([]gobeagle.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = gobeagle.Operation{
			Destination: op.Dest, DestScaleWrite: gobeagle.None, DestScaleRead: gobeagle.None,
			Child1: op.Child1, Child1Matrix: op.Child1Mat,
			Child2: op.Child2, Child2Matrix: op.Child2Mat,
		}
	}

	for _, in := range []*gobeagle.Instance{single, dist} {
		check(in.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data))
		check(in.SetCategoryRates(rates.Rates))
		check(in.SetCategoryWeights(rates.Weights))
		check(in.SetStateFrequencies(m.Frequencies))
		check(in.SetPatternWeights(ps.Weights))
		for tip := 0; tip < tr.TipCount; tip++ {
			check(in.SetTipStates(tip, ps.TipStates(tip)))
		}
	}

	lens := make([]float64, len(baseLens))
	start := time.Now()
	for it := 0; it < *iters; it++ {
		// Rescale every branch each iteration, as a sampler perturbing the
		// tree would, so every matrix and partial recomputes.
		scale := 0.5 + 0.05*float64(it%20)
		for j, l := range baseLens {
			lens[j] = l * scale
		}
		for _, in := range []*gobeagle.Instance{single, dist} {
			check(in.UpdateTransitionMatrices(0, matrices, lens))
			check(in.UpdatePartials(ops))
		}
		wantRoot, err := single.CalculateRootLogLikelihoods(sched.Root, gobeagle.None)
		check(err)
		gotRoot, err := dist.CalculateRootLogLikelihoods(sched.Root, gobeagle.None)
		check(err)
		if gotRoot != wantRoot {
			fatal(fmt.Errorf("iteration %d: distributed root lnL %v != single-node %v (must be bit-identical)",
				it, gotRoot, wantRoot))
		}
		wantSite, err := single.SiteLogLikelihoods(sched.Root, gobeagle.None)
		check(err)
		gotSite, err := dist.SiteLogLikelihoods(sched.Root, gobeagle.None)
		check(err)
		for p := range wantSite {
			if gotSite[p] != wantSite[p] {
				fatal(fmt.Errorf("iteration %d: site %d lnL %v != single-node %v (must be bit-identical)",
					it, p, gotSite[p], wantSite[p]))
			}
		}
		if *pause > 0 {
			time.Sleep(*pause)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d iterations verified bit-identical in %s (%.1f ms/iteration)\n",
		*iters, elapsed.Round(time.Millisecond), float64(elapsed.Milliseconds())/float64(*iters))

	failedOver := 0
	for _, ws := range dist.RemoteStats() {
		status := "live"
		if ws.FailedOver {
			status = "FAILED OVER to local fallback"
			failedOver++
		}
		bw := "unmeasured"
		if ws.LinkBandwidth > 0 {
			bw = fmt.Sprintf("%.1f MB/s", ws.LinkBandwidth/1e6)
		}
		fmt.Printf("worker %s: %d RPCs, %d retries, %d redials, %d KiB sent, %d KiB received, link %s, %s\n",
			ws.Addr, ws.RPCs, ws.Retries, ws.Redials,
			ws.BytesSent/1024, ws.BytesReceived/1024, bw, status)
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		check(err)
		check(dist.TraceJSON(f))
		check(f.Close())
		fmt.Printf("trace written to %s\n", *tracePath)
	}

	if *expectFail && failedOver == 0 {
		fatal(fmt.Errorf("-expect-failover: no worker failed over (the harness kill did not land mid-run?)"))
	}
}
