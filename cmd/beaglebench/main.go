// Command beaglebench regenerates every table and figure of the paper's
// evaluation. Each experiment executes the relevant implementations
// end-to-end (verifying likelihood correctness) and reports throughput;
// parallel-hardware timings come from the calibrated device and CPU
// performance models documented in DESIGN.md, since neither the paper's
// GPUs nor its 56-thread Xeon host are available to the build machine.
//
// With -json DIR each experiment also writes a machine-readable
// BENCH_<experiment>.json report (effective GFLOPS per device, strategy and
// problem shape) for the CI benchmark artifacts.
//
// With -compare PATH each experiment's fresh report is gated against its
// committed baseline (PATH is a baseline directory holding
// BENCH_<experiment>.json files, or a single baseline file): per-record
// throughput drops beyond -tolerance fail the run with a nonzero exit, the
// CI benchmark regression gate. With -trace FILE a small traced multi-device
// evaluation additionally writes a Chrome trace-event JSON timeline.
//
// Usage:
//
//	beaglebench -experiment table3|table3hybrid|table4|table5|fig4|fig4smoke|fig5|fig6|rebalance|distshard|mcmcreuse|all
//	            [-json DIR] [-compare PATH [-tolerance FRAC]] [-trace FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"gobeagle/internal/benchmarks"
)

func main() {
	experiment := flag.String("experiment", "all", "table3, table3hybrid, table4, table5, fig4, fig4smoke, fig5, fig6, rebalance, distshard, mcmcreuse, serve, or all")
	jsonDir := flag.String("json", "", "directory to also write machine-readable BENCH_<experiment>.json reports")
	compare := flag.String("compare", "", "baseline directory (or single BENCH_<experiment>.json) to gate each experiment against")
	tolerance := flag.Float64("tolerance", benchmarks.DefaultTolerance, "relative regression tolerance for -compare")
	tracePath := flag.String("trace", "", "also capture a traced multi-device evaluation to this Chrome trace-event JSON file")
	flag.Parse()

	runners := map[string]func(io.Writer) (benchmarks.Report, error){
		"table3":       runTable3,
		"table3hybrid": runTable3Hybrid,
		"table4":       runTable4,
		"table5":       runTable5,
		"fig4":         runFig4,
		"fig4smoke":    runFig4Smoke,
		"fig5":         runFig5,
		"fig6":         runFig6,
		"rebalance":    runRebalance,
		"distshard":    runDistShard,
		"mcmcreuse":    runMcmcReuse,
		"serve":        runServe,
	}
	// fig4smoke is a reduced sweep for CI smoke runs; "all" keeps the paper's
	// full experiment set plus the §IX rebalance demonstration, the
	// incremental re-evaluation experiment and the serving-layer load test.
	order := []string{"table3", "table3hybrid", "table4", "table5", "fig4", "fig5", "fig6", "rebalance", "distshard", "mcmcreuse", "serve"}

	selected := []string{}
	if *experiment == "all" {
		selected = order
	} else if _, ok := runners[*experiment]; ok {
		selected = []string{*experiment}
	} else {
		fmt.Fprintf(os.Stderr, "beaglebench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "beaglebench: %v\n", err)
			os.Exit(1)
		}
	}

	gateFailed := false
	for _, name := range selected {
		start := time.Now()
		rep, err := runners[name](os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "beaglebench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *jsonDir != "" {
			path, err := benchmarks.WriteReport(*jsonDir, rep)
			if err != nil {
				fmt.Fprintf(os.Stderr, "beaglebench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("[wrote %s]\n", path)
		}
		if *compare != "" {
			if gateExperiment(*compare, rep, *tolerance) {
				gateFailed = true
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "beaglebench: %v\n", err)
			os.Exit(1)
		}
		spans, err := benchmarks.CaptureTrace(f, 3)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "beaglebench: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %d spans to %s — load in ui.perfetto.dev]\n", spans, *tracePath)
	}

	if gateFailed {
		fmt.Fprintln(os.Stderr, "beaglebench: benchmark regression gate failed")
		os.Exit(1)
	}
}

// gateExperiment compares one fresh report against its baseline and prints
// the result; returns true when the gate failed. A missing baseline file is
// a hard error: the gate must not silently pass ungated experiments.
func gateExperiment(path string, rep benchmarks.Report, tolerance float64) bool {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, "BENCH_"+rep.Experiment+".json")
	}
	baseline, err := benchmarks.ReadReport(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "beaglebench: %s: baseline: %v\n", rep.Experiment, err)
		return true
	}
	cmp, err := benchmarks.Compare(baseline, rep, tolerance)
	if err != nil {
		fmt.Fprintf(os.Stderr, "beaglebench: %s: %v\n", rep.Experiment, err)
		return true
	}
	benchmarks.PrintComparison(os.Stdout, cmp)
	return cmp.Failed()
}

func runTable3(w io.Writer) (benchmarks.Report, error) {
	rows, err := benchmarks.Table3(600)
	if err != nil {
		return benchmarks.Report{}, err
	}
	benchmarks.PrintTable3(w, rows)
	return benchmarks.Table3Report(rows), nil
}

func runTable3Hybrid(w io.Writer) (benchmarks.Report, error) {
	rows, err := benchmarks.Table3Hybrid(true)
	if err != nil {
		return benchmarks.Report{}, err
	}
	benchmarks.PrintTable3Hybrid(w, rows)
	return benchmarks.Table3HybridReport(rows), nil
}

func runTable4(w io.Writer) (benchmarks.Report, error) {
	rows, err := benchmarks.Table4()
	if err != nil {
		return benchmarks.Report{}, err
	}
	benchmarks.PrintTable4(w, rows)
	return benchmarks.Table4Report(rows), nil
}

func runTable5(w io.Writer) (benchmarks.Report, error) {
	rows, err := benchmarks.Table5()
	if err != nil {
		return benchmarks.Report{}, err
	}
	benchmarks.PrintTable5(w, rows)
	return benchmarks.Table5Report(rows), nil
}

func runFig4(w io.Writer) (benchmarks.Report, error) {
	panels, err := benchmarks.Fig4()
	if err != nil {
		return benchmarks.Report{}, err
	}
	benchmarks.PrintFig4(w, panels)
	return benchmarks.Fig4Report("fig4", panels), nil
}

// runFig4Smoke runs the Fig. 4 sweep at a handful of pattern counts so CI can
// produce a BENCH JSON artifact in seconds rather than minutes.
func runFig4Smoke(w io.Writer) (benchmarks.Report, error) {
	panels, err := benchmarks.Fig4With([]int{100, 1000, 10000}, []int{100, 1000})
	if err != nil {
		return benchmarks.Report{}, err
	}
	benchmarks.PrintFig4(w, panels)
	return benchmarks.Fig4Report("fig4smoke", panels), nil
}

func runFig5(w io.Writer) (benchmarks.Report, error) {
	points, err := benchmarks.Fig5()
	if err != nil {
		return benchmarks.Report{}, err
	}
	benchmarks.PrintFig5(w, points)
	return benchmarks.Fig5Report(points), nil
}

func runFig6(w io.Writer) (benchmarks.Report, error) {
	rows, err := benchmarks.Fig6()
	if err != nil {
		return benchmarks.Report{}, err
	}
	benchmarks.PrintFig6(w, rows)
	return benchmarks.Fig6Report(rows), nil
}

// runRebalance demonstrates adaptive multi-device rebalancing (§IX) against
// a synthetically 4x-slowed backend.
func runRebalance(w io.Writer) (benchmarks.Report, error) {
	rows, err := benchmarks.Rebalance()
	if err != nil {
		return benchmarks.Report{}, err
	}
	benchmarks.PrintRebalance(w, rows)
	return benchmarks.RebalanceReport(rows), nil
}

// runDistShard measures distributed pattern sharding over loopback worker
// processes against the local multi-device and single-engine baselines,
// verifying bit-identical roots across all three.
func runDistShard(w io.Writer) (benchmarks.Report, error) {
	rows, err := benchmarks.DistShard()
	if err != nil {
		return benchmarks.Report{}, err
	}
	benchmarks.PrintDistShard(w, rows)
	return benchmarks.DistShardReport(rows), nil
}

// runMcmcReuse measures the accepted-move cost of an MCMC proposal stream
// with and without incremental re-evaluation, against a dirty-schedule
// oracle.
func runMcmcReuse(w io.Writer) (benchmarks.Report, error) {
	const tips, patterns, moves = 64, 1024, 30
	rows, err := benchmarks.McmcReuse(tips, patterns, moves)
	if err != nil {
		return benchmarks.Report{}, err
	}
	benchmarks.PrintMcmcReuse(w, rows)
	return benchmarks.McmcReuseReport(rows, tips, patterns), nil
}

// runServe load-tests the beagled serving layer: 256 concurrent clients
// against the warm-instance micro-batching pool and against the naive
// one-instance-per-request design, gating the p99 tail-latency ratio.
func runServe(w io.Writer) (benchmarks.Report, error) {
	const clients, requests = 256, 4096
	rows, ratio, err := benchmarks.Serve(clients, requests)
	if err != nil {
		return benchmarks.Report{}, err
	}
	benchmarks.PrintServe(w, rows, ratio)
	return benchmarks.ServeReport(rows, ratio), nil
}
