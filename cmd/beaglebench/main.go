// Command beaglebench regenerates every table and figure of the paper's
// evaluation. Each experiment executes the relevant implementations
// end-to-end (verifying likelihood correctness) and reports throughput;
// parallel-hardware timings come from the calibrated device and CPU
// performance models documented in DESIGN.md, since neither the paper's
// GPUs nor its 56-thread Xeon host are available to the build machine.
//
// Usage:
//
//	beaglebench -experiment table3|table3hybrid|table4|table5|fig4|fig5|fig6|all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"gobeagle/internal/benchmarks"
)

func main() {
	experiment := flag.String("experiment", "all", "table3, table3hybrid, table4, table5, fig4, fig5, fig6, or all")
	flag.Parse()

	runners := map[string]func(io.Writer) error{
		"table3":       runTable3,
		"table3hybrid": runTable3Hybrid,
		"table4":       runTable4,
		"table5":       runTable5,
		"fig4":         runFig4,
		"fig5":         runFig5,
		"fig6":         runFig6,
	}
	order := []string{"table3", "table3hybrid", "table4", "table5", "fig4", "fig5", "fig6"}

	selected := []string{}
	if *experiment == "all" {
		selected = order
	} else if _, ok := runners[*experiment]; ok {
		selected = []string{*experiment}
	} else {
		fmt.Fprintf(os.Stderr, "beaglebench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	for _, name := range selected {
		start := time.Now()
		if err := runners[name](os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "beaglebench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func runTable3(w io.Writer) error {
	rows, err := benchmarks.Table3(600)
	if err != nil {
		return err
	}
	benchmarks.PrintTable3(w, rows)
	return nil
}

func runTable3Hybrid(w io.Writer) error {
	rows, err := benchmarks.Table3Hybrid(true)
	if err != nil {
		return err
	}
	benchmarks.PrintTable3Hybrid(w, rows)
	return nil
}

func runTable4(w io.Writer) error {
	rows, err := benchmarks.Table4()
	if err != nil {
		return err
	}
	benchmarks.PrintTable4(w, rows)
	return nil
}

func runTable5(w io.Writer) error {
	rows, err := benchmarks.Table5()
	if err != nil {
		return err
	}
	benchmarks.PrintTable5(w, rows)
	return nil
}

func runFig4(w io.Writer) error {
	panels, err := benchmarks.Fig4()
	if err != nil {
		return err
	}
	benchmarks.PrintFig4(w, panels)
	return nil
}

func runFig5(w io.Writer) error {
	points, err := benchmarks.Fig5()
	if err != nil {
		return err
	}
	benchmarks.PrintFig5(w, points)
	return nil
}

func runFig6(w io.Writer) error {
	rows, err := benchmarks.Fig6()
	if err != nil {
		return err
	}
	benchmarks.PrintFig6(w, rows)
	return nil
}
