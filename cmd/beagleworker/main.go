// Command beagleworker hosts likelihood engines for a distributed gobeagle
// coordinator. It listens on a TCP address, speaks the remoteimpl wire
// protocol and builds one CPU engine per coordinator backend session; a
// coordinator created with NewDistributedInstance (or the beagled -workers
// flag) shards its site patterns across a set of these processes.
//
//	beagleworker -addr 127.0.0.1:8381
//	beagleworker -addr 127.0.0.1:0 -port-file /tmp/worker.addr -threading threadpool
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/engine"
	"gobeagle/internal/remoteimpl"
)

func parseMode(s string) (cpuimpl.Mode, error) {
	switch s {
	case "serial":
		return cpuimpl.Serial, nil
	case "sse":
		return cpuimpl.SSE, nil
	case "futures":
		return cpuimpl.Futures, nil
	case "threadcreate":
		return cpuimpl.ThreadCreate, nil
	case "threadpool":
		return cpuimpl.ThreadPool, nil
	case "hybrid":
		return cpuimpl.ThreadPoolHybrid, nil
	}
	return 0, fmt.Errorf("unknown threading mode %q (serial|sse|futures|threadcreate|threadpool|hybrid)", s)
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8381", "listen address (use :0 for an ephemeral port)")
		portFile   = flag.String("port-file", "", "write the bound address to this file once listening (for test harnesses)")
		threads    = flag.Int("threads", 0, "worker threads per hosted engine (0 = all cores)")
		threading  = flag.String("threading", "serial", "CPU execution strategy: serial|sse|futures|threadcreate|threadpool|hybrid")
		sessionTTL = flag.Duration("session-ttl", 10*time.Minute, "how long a detached session survives for coordinator re-dial")
		quiet      = flag.Bool("quiet", false, "suppress connection lifecycle logging")
	)
	flag.Parse()
	log.SetPrefix("beagleworker: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	mode, err := parseMode(*threading)
	if err != nil {
		log.Fatal(err)
	}
	logf := log.Printf
	if *quiet {
		logf = nil
	}
	worker, err := remoteimpl.NewWorker(remoteimpl.WorkerOptions{
		Builder: func(g remoteimpl.Geometry) (engine.Engine, error) {
			cfg := g.Config()
			if *threads > 0 {
				cfg.Threads = *threads
			}
			return cpuimpl.New(cfg, mode)
		},
		SessionTTL: *sessionTTL,
		Logf:       logf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("listening on %s (%s engines, session TTL %s)", ln.Addr(), mode, *sessionTTL)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := worker.Serve(ctx, ln); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	log.Printf("shut down")
}
