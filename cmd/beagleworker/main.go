// Command beagleworker hosts likelihood engines for a distributed gobeagle
// coordinator. It listens on a TCP address, speaks the remoteimpl wire
// protocol and builds one CPU engine per coordinator backend session; a
// coordinator created with NewDistributedInstance (or the beagled -workers
// flag) shards its site patterns across a set of these processes.
//
// Observability: -debug-addr serves /metrics (Prometheus text) and
// /debug/vars for the coordinator's cluster federation endpoint — the
// worker advertises this address in its wire hello — and -pprof adds the
// net/http/pprof handlers to it. Traced coordinator requests record
// engine-side spans into per-session tracers that the coordinator drains
// for cross-process trace stitching; no flag is needed here, the trace
// context rides the wire protocol.
//
//	beagleworker -addr 127.0.0.1:8381
//	beagleworker -addr 127.0.0.1:0 -port-file /tmp/worker.addr -threading threadpool
//	beagleworker -addr 127.0.0.1:8381 -debug-addr 127.0.0.1:9501 -pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/engine"
	"gobeagle/internal/metricsx"
	"gobeagle/internal/remoteimpl"
	"gobeagle/internal/trace"
)

func parseMode(s string) (cpuimpl.Mode, error) {
	switch s {
	case "serial":
		return cpuimpl.Serial, nil
	case "sse":
		return cpuimpl.SSE, nil
	case "futures":
		return cpuimpl.Futures, nil
	case "threadcreate":
		return cpuimpl.ThreadCreate, nil
	case "threadpool":
		return cpuimpl.ThreadPool, nil
	case "hybrid":
		return cpuimpl.ThreadPoolHybrid, nil
	}
	return 0, fmt.Errorf("unknown threading mode %q (serial|sse|futures|threadcreate|threadpool|hybrid)", s)
}

// workerSource adapts the worker's counters to the debug mux.
type workerSource struct {
	worker *remoteimpl.Worker
	start  time.Time
}

func (s *workerSource) Metrics() []metricsx.Sample {
	return []metricsx.Sample{
		{Name: "beagleworker_sessions", Help: "Live coordinator sessions.",
			Type: "gauge", Value: float64(s.worker.SessionCount())},
		{Name: "beagleworker_sessions_accepted_total", Help: "Sessions ever created.",
			Type: "counter", Value: float64(s.worker.AcceptedSessions())},
		{Name: "beagleworker_connections", Help: "Live coordinator connections.",
			Type: "gauge", Value: float64(s.worker.ConnCount())},
		{Name: "beagleworker_requests_total", Help: "Engine requests dispatched across all sessions.",
			Type: "counter", Value: float64(s.worker.RequestCount())},
		{Name: "beagleworker_uptime_seconds", Help: "Seconds since the worker started.",
			Type: "gauge", Value: time.Since(s.start).Seconds()},
	}
}

func (s *workerSource) Vars() map[string]any {
	return map[string]any{
		"sessions":          s.worker.SessionCount(),
		"sessions_accepted": s.worker.AcceptedSessions(),
		"connections":       s.worker.ConnCount(),
		"requests":          s.worker.RequestCount(),
	}
}

func (s *workerSource) RebalanceEvents() any { return nil }
func (s *workerSource) TraceSummary() any    { return nil }

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "beagleworker:", err)
		os.Exit(1)
	}
}

// run is the whole worker process behind a testable seam: flags in args,
// structured logs on logw, lifetime bound to ctx (the signal context in
// main). It returns only after the wire server has drained and every
// side effect — the port file above all — has been cleaned up.
func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("beagleworker", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr       = fs.String("addr", "127.0.0.1:8381", "listen address (use :0 for an ephemeral port)")
		portFile   = fs.String("port-file", "", "write the bound address to this file once listening (for test harnesses)")
		threads    = fs.Int("threads", 0, "worker threads per hosted engine (0 = all cores)")
		threading  = fs.String("threading", "serial", "CPU execution strategy: serial|sse|futures|threadcreate|threadpool|hybrid")
		sessionTTL = fs.Duration("session-ttl", 10*time.Minute, "how long a detached session survives for coordinator re-dial")
		debugAddr  = fs.String("debug-addr", "", "serve /metrics and /debug/vars on this address (advertised to coordinators for federation)")
		pprofOn    = fs.Bool("pprof", false, "expose /debug/pprof/ on the debug address (requires -debug-addr)")
		logJSON    = fs.Bool("log-json", false, "emit JSON structured logs instead of text")
		quiet      = fs.Bool("quiet", false, "suppress connection lifecycle logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(logw, nil)
	} else {
		handler = slog.NewTextHandler(logw, nil)
	}
	logger := slog.New(handler).With("component", "beagleworker")

	mode, err := parseMode(*threading)
	if err != nil {
		return err
	}
	var logf func(format string, args ...any)
	if !*quiet {
		logf = func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		}
	}

	// Bind the debug listener before building the worker so the hello reply
	// can advertise the resolved address (":0" resolves on bind).
	var debugLn net.Listener
	if *debugAddr != "" {
		debugLn, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer debugLn.Close()
	} else if *pprofOn {
		return fmt.Errorf("-pprof requires -debug-addr")
	}

	opts := remoteimpl.WorkerOptions{
		Builder: func(g remoteimpl.Geometry, tr *trace.Tracer) (engine.Engine, error) {
			cfg := g.Config()
			cfg.Trace = tr
			if *threads > 0 {
				cfg.Threads = *threads
			}
			return cpuimpl.New(cfg, mode)
		},
		SessionTTL: *sessionTTL,
		Logf:       logf,
	}
	if debugLn != nil {
		opts.DebugAddr = debugLn.Addr().String()
	}
	worker, err := remoteimpl.NewWorker(opts)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return err
		}
		defer os.Remove(*portFile)
	}

	var debugDone chan struct{}
	if debugLn != nil {
		muxOpts := []metricsx.MuxOption{}
		if *pprofOn {
			muxOpts = append(muxOpts, metricsx.WithPprof())
		}
		srv := &http.Server{
			Handler:           metricsx.NewMux(&workerSource{worker: worker, start: time.Now()}, muxOpts...),
			ReadHeaderTimeout: 5 * time.Second,
		}
		debugDone = make(chan struct{})
		go func() {
			defer close(debugDone)
			srv.Serve(debugLn)
		}()
		defer func() {
			srv.Close()
			<-debugDone
		}()
		logger.Info("debug server listening", "debug_addr", debugLn.Addr().String(), "pprof", *pprofOn)
	}

	logger.Info("listening",
		"addr", ln.Addr().String(), "threading", mode.String(), "session_ttl", sessionTTL.String())

	err = worker.Serve(ctx, ln)
	if err != nil && ctx.Err() == nil {
		return err
	}
	logger.Info("drained",
		"sessions_accepted", worker.AcceptedSessions(),
		"sessions_live", worker.SessionCount(),
		"requests", worker.RequestCount())
	return nil
}
