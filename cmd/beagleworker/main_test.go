package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gobeagle/internal/remoteimpl"
)

// syncBuffer is a goroutine-safe log sink: run's server goroutines may log
// while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startRun boots run() in a goroutine against an ephemeral port and waits
// for the port file to appear, returning the bound address, the cancel that
// simulates SIGTERM, and the channel run's error arrives on.
func startRun(t *testing.T, logs *syncBuffer, extraArgs ...string) (addr, portFile string, cancel context.CancelFunc, errc chan error) {
	t.Helper()
	portFile = filepath.Join(t.TempDir(), "worker.addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-port-file", portFile}, extraArgs...)
	ctx, cancel := context.WithCancel(context.Background())
	errc = make(chan error, 1)
	go func() { errc <- run(ctx, args, logs) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(portFile); err == nil && len(data) > 0 {
			return string(data), portFile, cancel, errc
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("port file %s never appeared; logs:\n%s", portFile, logs.String())
		}
		select {
		case err := <-errc:
			t.Fatalf("run exited early: %v; logs:\n%s", err, logs.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestRunRemovesPortFileAndLogsDrainOnShutdown is the regression test for
// graceful shutdown: the port file a test harness waits on must not outlive
// the process, and the drain log must report how many sessions the worker
// accepted over its lifetime.
func TestRunRemovesPortFileAndLogsDrainOnShutdown(t *testing.T) {
	logs := &syncBuffer{}
	addr, portFile, cancel, errc := startRun(t, logs)
	defer cancel()

	// Touch the worker with a real session so the drain count is non-zero.
	hello, err := remoteimpl.Probe(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if hello.Cores <= 0 {
		t.Fatalf("probe returned %d cores", hello.Cores)
	}

	cancel() // SIGTERM equivalent: the signal context main() hands to run
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancel")
	}

	if _, err := os.Stat(portFile); !os.IsNotExist(err) {
		t.Errorf("port file %s survived graceful shutdown (stat err %v)", portFile, err)
	}
	out := logs.String()
	if !strings.Contains(out, "drained") || !strings.Contains(out, "sessions_accepted") {
		t.Errorf("drain log missing sessions_accepted count; logs:\n%s", out)
	}
}

// TestRunDebugAddrServesMetrics asserts the -debug-addr surface: /metrics
// renders beagleworker_* families and the wire hello advertises the
// resolved debug address for coordinator federation.
func TestRunDebugAddrServesMetrics(t *testing.T) {
	logs := &syncBuffer{}
	addr, _, cancel, errc := startRun(t, logs, "-debug-addr", "127.0.0.1:0")
	defer func() {
		cancel()
		<-errc
	}()

	hello, err := remoteimpl.Probe(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if hello.DebugAddr == "" {
		t.Fatal("hello does not advertise the debug address")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", hello.DebugAddr))
	if err != nil {
		t.Fatalf("scrape advertised debug address: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "beagleworker_sessions_accepted_total") {
		t.Errorf("worker /metrics missing beagleworker_sessions_accepted_total:\n%s", buf.String())
	}
}

// TestRunPprofRequiresDebugAddr asserts the flag dependency is enforced.
func TestRunPprofRequiresDebugAddr(t *testing.T) {
	logs := &syncBuffer{}
	err := run(context.Background(), []string{"-pprof"}, logs)
	if err == nil || !strings.Contains(err.Error(), "-debug-addr") {
		t.Fatalf("run(-pprof) = %v, want the -debug-addr requirement error", err)
	}
}
