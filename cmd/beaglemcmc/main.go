// Command beaglemcmc runs a Bayesian phylogenetic analysis in the style of
// MrBayes (§VIII-C): Metropolis-coupled MCMC with four incrementally heated
// chains over a FASTA or PHYLIP alignment, likelihoods evaluated through the
// library on any available compute resource, reporting the posterior
// log-likelihood trace summary, clade supports and the majority-rule
// consensus tree.
//
// Example:
//
//	beaglemcmc -seqs data.fasta -generations 5000 -model hky -gamma 0.5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"gobeagle"
	"gobeagle/internal/mcmc"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func main() {
	var (
		seqsPath  = flag.String("seqs", "", "alignment file (FASTA or PHYLIP; required)")
		modelName = flag.String("model", "jc", "substitution model: jc, k80, hky")
		kappa     = flag.Float64("kappa", 2.0, "transition/transversion ratio (k80, hky)")
		gamma     = flag.Float64("gamma", 0, "discrete-gamma shape alpha (0 = no rate variation)")
		cats      = flag.Int("categories", 4, "gamma rate categories")
		gens      = flag.Int("generations", 2000, "MCMC generations")
		chains    = flag.Int("chains", 4, "Metropolis-coupled chains")
		sample    = flag.Int("sample", 10, "sample interval (generations)")
		seed      = flag.Int64("seed", 1, "random seed")
		resource  = flag.String("resource", "CPU (host)", "compute resource name")
		framework = flag.String("framework", "", "restrict resource lookup to CUDA or OpenCL")
		stats     = flag.Bool("stats", false, "enable telemetry and print per-chain kernel op counts and timings")
		reuse     = flag.Bool("reuse", false, "enable incremental re-evaluation: skip partials and matrix updates whose inputs are unchanged since the previous proposal")
		tracePath = flag.String("trace", "", "enable span tracing on the cold chain and write its Chrome trace-event JSON timeline to this file")
	)
	flag.Parse()
	if *seqsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	align, err := readAlignment(*seqsPath)
	if err != nil {
		fatal(err)
	}
	ps := seqgen.CompressPatterns(align)
	fmt.Printf("alignment: %d taxa, %d sites, %d unique patterns\n",
		len(align.Sequences), align.SiteCount(), ps.PatternCount())

	model, err := buildModel(*modelName, *kappa, align)
	if err != nil {
		fatal(err)
	}
	rates := substmodel.SingleRate()
	if *gamma > 0 {
		if rates, err = substmodel.GammaRates(*gamma, *cats); err != nil {
			fatal(err)
		}
	}

	// Random starting tree whose tip names match the alignment rows by
	// index (the library's buffers are keyed by tip index).
	rng := rand.New(rand.NewSource(*seed))
	start, err := tree.Random(rng, len(align.Sequences), 0.1)
	if err != nil {
		fatal(err)
	}
	for i, tip := range start.Tips() {
		tip.Name = align.TipNames[i]
	}

	rsc, err := gobeagle.FindResource(*resource, *framework)
	if err != nil {
		fatal(err)
	}
	flags := gobeagle.FlagThreadingThreadPool
	if *stats {
		flags |= gobeagle.FlagTelemetry
	}
	if *reuse {
		flags |= gobeagle.FlagReuse
	}
	engines := make([]mcmc.LikelihoodEngine, *chains)
	beagles := make([]*mcmc.BeagleEngine, *chains)
	for i := range engines {
		// Only chain 0 (the cold chain) is traced: one timeline is enough to
		// see the evaluation structure, and tracing every heated chain would
		// multiply the span volume without adding information.
		cf := flags
		if *tracePath != "" && i == 0 {
			cf |= gobeagle.FlagTrace
		}
		eng, err := mcmc.NewBeagleEngine(model, rates, ps, start, rsc.ID, cf)
		if err != nil {
			fatal(err)
		}
		defer eng.Close()
		engines[i] = eng
		beagles[i] = eng
	}
	fmt.Printf("model: %s, %d rate categories; %d chains on %s\n",
		model.Name, len(rates.Rates), *chains, *resource)

	res, err := mcmc.Run(mcmc.Config{
		Tree:           start,
		Engines:        engines,
		Generations:    *gens,
		HeatLambda:     0.1,
		NNIProbability: 0.3,
		SampleInterval: *sample,
		SampleSplits:   true,
		Seed:           *seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("moves accepted: %.1f%%; swaps accepted: %.1f%%\n",
		100*float64(res.AcceptedMoves)/float64(res.ProposedMoves),
		100*float64(res.AcceptedSwaps)/float64(max(1, res.ProposedSwaps)))
	if sum, err := mcmc.Summarize(res.Trace, len(res.Trace)/4); err == nil {
		fmt.Printf("post-burn-in lnL: mean %.3f ± %.3f (ESS %.0f of %d)\n",
			sum.Mean, sum.StdDev, sum.ESS, sum.N)
	}

	// Clade supports, strongest first.
	type sup struct {
		split string
		freq  float64
	}
	var sups []sup
	for s, f := range res.SplitSupport {
		if f >= 0.5 {
			sups = append(sups, sup{s, f})
		}
	}
	sort.Slice(sups, func(i, j int) bool { return sups[i].freq > sups[j].freq })
	fmt.Printf("majority clades (%d topology samples):\n", res.SplitSampleCount)
	for _, s := range sups {
		fmt.Printf("  %5.1f%%  {%s}\n", 100*s.freq, s.split)
	}

	consensus, err := tree.MajorityRuleConsensus(align.TipNames, res.SplitSupport, 0.5)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("majority-rule consensus tree:\n%s\n", consensus)

	if *stats {
		printStats(beagles)
	}
	if *tracePath != "" {
		if err := writeTrace(beagles[0].Instance(), *tracePath); err != nil {
			fatal(err)
		}
	}
}

// writeTrace exports the cold chain's span timeline as Chrome trace-event
// JSON.
func writeTrace(inst *gobeagle.Instance, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = inst.TraceJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d spans to %s — load in ui.perfetto.dev\n", inst.TraceSpanCount(), path)
	return nil
}

// printStats summarizes the telemetry of every chain's instance: per-chain
// batch counts and effective GFLOPS, and the partials kernel totals summed
// across chains (the MCMC run's dominant cost).
func printStats(beagles []*mcmc.BeagleEngine) {
	var totalOps, totalCalls uint64
	var totalTime time.Duration
	for i, b := range beagles {
		s := b.Instance().Stats()
		fmt.Printf("telemetry chain %d: %s (%s), %d batches, %.2f GFLOPS effective\n",
			i, s.Implementation, s.Strategy, s.Batches, s.EffectiveGFLOPS)
		for _, k := range s.Kernels {
			fmt.Printf("  %-12s %8d ops %6d calls  total %v  mean/op %v\n",
				k.Kernel, k.Ops, k.Calls, k.Total.Round(time.Microsecond),
				k.MeanPerOp().Round(time.Nanosecond))
		}
		if r := b.Instance().ReuseStats(); r.Enabled {
			fmt.Printf("  reuse: partials %d/%d skipped (%.1f%%), matrices %d/%d skipped (%.1f%%), %d invalidations\n",
				r.OpHits, r.OpHits+r.OpMisses, 100*r.OpHitRate(),
				r.MatrixHits, r.MatrixHits+r.MatrixMisses, 100*r.MatrixHitRate(),
				r.Invalidations)
		}
		p := s.Kernel("partials")
		totalOps += p.Ops
		totalCalls += p.Calls
		totalTime += p.Total
	}
	fmt.Printf("telemetry all chains: partials %d ops in %d calls, %v total\n",
		totalOps, totalCalls, totalTime.Round(time.Microsecond))
}

func readAlignment(path string) (*seqgen.Alignment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trimmed, ">") {
		return seqgen.ReadFASTA(strings.NewReader(string(data)), 4)
	}
	return seqgen.ReadPHYLIP(strings.NewReader(string(data)), 4)
}

func buildModel(name string, kappa float64, a *seqgen.Alignment) (*substmodel.Model, error) {
	switch name {
	case "jc":
		return substmodel.NewJC69(), nil
	case "k80":
		return substmodel.NewK80(kappa)
	case "hky":
		counts := make([]float64, 4)
		var total float64
		for _, seq := range a.Sequences {
			for _, s := range seq {
				if s < 4 {
					counts[s]++
					total++
				}
			}
		}
		freqs := make([]float64, 4)
		for i := range freqs {
			freqs[i] = (counts[i] + 1) / (total + 4)
		}
		return substmodel.NewHKY85(kappa, freqs)
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "beaglemcmc:", err)
	os.Exit(1)
}
