// Command beagleml evaluates (and optionally optimizes) the likelihood of a
// phylogenetic tree for a real alignment: FASTA or PHYLIP sequences plus a
// Newick tree, under JC69/K80/HKY85/GTR (+Γ), on any available compute
// resource. It is the kind of thin maximum-likelihood client that programs
// like GARLI or PhyML represent in the paper's domain overview (§III).
//
// Example:
//
//	beagleml -seqs data.fasta -tree tree.nwk -model hky -kappa 2.5 \
//	         -gamma 0.5 -categories 4 -optimize
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gobeagle"
	"gobeagle/internal/mcmc"
	"gobeagle/internal/mle"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func main() {
	var (
		seqsPath  = flag.String("seqs", "", "alignment file (FASTA or PHYLIP; required)")
		treePath  = flag.String("tree", "", "Newick tree file (required)")
		modelName = flag.String("model", "jc", "substitution model: jc, k80, hky, gtr")
		kappa     = flag.Float64("kappa", 2.0, "transition/transversion ratio (k80, hky)")
		gtrRates  = flag.String("gtr-rates", "1,1,1,1,1,1", "GTR exchangeabilities AC,AG,AT,CG,CT,GT")
		gamma     = flag.Float64("gamma", 0, "discrete-gamma shape alpha (0 = no rate variation)")
		cats      = flag.Int("categories", 4, "gamma rate categories")
		empirical = flag.Bool("empirical-freqs", true, "use observed base frequencies (hky, gtr)")
		resource  = flag.String("resource", "CPU (host)", "compute resource name")
		framework = flag.String("framework", "", "restrict resource lookup to CUDA or OpenCL")
		threading = flag.String("threading", "threadpool", "CPU threading: none, futures, threadcreate, threadpool, hybrid")
		optimize  = flag.Bool("optimize", false, "optimize branch lengths by maximum likelihood")
		stats     = flag.Bool("stats", false, "enable telemetry and print per-kernel op counts and timings")
	)
	flag.Parse()
	if *seqsPath == "" || *treePath == "" {
		flag.Usage()
		os.Exit(2)
	}

	align, err := readAlignment(*seqsPath)
	if err != nil {
		fatal(err)
	}
	ps := seqgen.CompressPatterns(align)
	fmt.Printf("alignment: %d taxa, %d sites, %d unique patterns\n",
		len(align.Sequences), align.SiteCount(), ps.PatternCount())

	treeText, err := os.ReadFile(*treePath)
	if err != nil {
		fatal(err)
	}
	tr, err := tree.ParseNewick(strings.TrimSpace(string(treeText)))
	if err != nil {
		fatal(err)
	}
	if err := matchTipsToAlignment(tr, align); err != nil {
		fatal(err)
	}

	model, err := buildModel(*modelName, *kappa, *gtrRates, *empirical, align)
	if err != nil {
		fatal(err)
	}
	rates := substmodel.SingleRate()
	if *gamma > 0 {
		if rates, err = substmodel.GammaRates(*gamma, *cats); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("model: %s, %d rate categories\n", model.Name, len(rates.Rates))

	rsc, err := gobeagle.FindResource(*resource, *framework)
	if err != nil {
		fatal(err)
	}
	var flags gobeagle.Flags
	switch *threading {
	case "none":
	case "futures":
		flags |= gobeagle.FlagThreadingFutures
	case "threadcreate":
		flags |= gobeagle.FlagThreadingThreadCreate
	case "threadpool":
		flags |= gobeagle.FlagThreadingThreadPool
	case "hybrid", "threadpoolhybrid":
		flags |= gobeagle.FlagThreadingThreadPoolHybrid
	default:
		fatal(fmt.Errorf("unknown threading %q", *threading))
	}
	if *stats {
		flags |= gobeagle.FlagTelemetry
	}
	eng, err := mcmc.NewBeagleEngine(model, rates, ps, tr, rsc.ID, flags)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	fmt.Printf("implementation: %s\n", eng.Instance().Implementation())

	lnL, err := eng.LogLikelihood(tr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("log likelihood: %.6f\n", lnL)

	if *optimize {
		opt, sweeps, err := mle.OptimizeBranchLengths(tr,
			func(t *tree.Tree) (float64, error) { return eng.LogLikelihood(t) },
			1e-6, 10, 1e-6, 30)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("optimized log likelihood: %.6f (%d sweeps)\n", opt, sweeps)
		fmt.Printf("optimized tree:\n%s\n", tr.Newick())
	}

	if *stats {
		printStats(eng.Instance().Stats())
	}
}

// printStats renders the telemetry snapshot accumulated across every
// likelihood evaluation of the run.
func printStats(s gobeagle.Stats) {
	fmt.Printf("telemetry: %s (%s), %d batches, %.2f GFLOPS effective\n",
		s.Implementation, s.Strategy, s.Batches, s.EffectiveGFLOPS)
	for _, k := range s.Kernels {
		fmt.Printf("  %-12s %8d ops %6d calls  total %v  mean/op %v\n",
			k.Kernel, k.Ops, k.Calls, k.Total.Round(time.Microsecond),
			k.MeanPerOp().Round(time.Nanosecond))
	}
}

// readAlignment sniffs FASTA vs PHYLIP by the first non-blank byte.
func readAlignment(path string) (*seqgen.Alignment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trimmed, ">") {
		return seqgen.ReadFASTA(strings.NewReader(string(data)), 4)
	}
	return seqgen.ReadPHYLIP(strings.NewReader(string(data)), 4)
}

// matchTipsToAlignment reorders alignment rows to the tree's tip indices.
func matchTipsToAlignment(tr *tree.Tree, a *seqgen.Alignment) error {
	byName := make(map[string]int, len(a.TipNames))
	for i, n := range a.TipNames {
		byName[n] = i
	}
	if len(a.Sequences) != tr.TipCount {
		return fmt.Errorf("alignment has %d sequences but the tree has %d tips", len(a.Sequences), tr.TipCount)
	}
	seqs := make([][]int, tr.TipCount)
	names := make([]string, tr.TipCount)
	for _, tip := range tr.Tips() {
		row, ok := byName[tip.Name]
		if !ok {
			return fmt.Errorf("tree tip %q not found in the alignment", tip.Name)
		}
		seqs[tip.Index] = a.Sequences[row]
		names[tip.Index] = tip.Name
	}
	a.Sequences = seqs
	a.TipNames = names
	return nil
}

// buildModel constructs the requested nucleotide model.
func buildModel(name string, kappa float64, gtrSpec string, empirical bool, a *seqgen.Alignment) (*substmodel.Model, error) {
	freqs := []float64{0.25, 0.25, 0.25, 0.25}
	if empirical {
		counts := make([]float64, 4)
		var total float64
		for _, seq := range a.Sequences {
			for _, s := range seq {
				if s < 4 {
					counts[s]++
					total++
				}
			}
		}
		if total > 0 {
			for i := range freqs {
				freqs[i] = (counts[i] + 1) / (total + 4) // add-one smoothing
			}
		}
	}
	switch name {
	case "jc":
		return substmodel.NewJC69(), nil
	case "k80":
		return substmodel.NewK80(kappa)
	case "hky":
		return substmodel.NewHKY85(kappa, freqs)
	case "gtr":
		parts := strings.Split(gtrSpec, ",")
		if len(parts) != 6 {
			return nil, fmt.Errorf("gtr-rates needs 6 comma-separated values")
		}
		rates := make([]float64, 6)
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad GTR rate %q: %v", p, err)
			}
			rates[i] = v
		}
		return substmodel.NewGTR(rates, freqs)
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "beagleml:", err)
	os.Exit(1)
}
