// Command beagletrace validates a Chrome trace-event JSON file produced by
// the library's span tracer (Instance.TraceJSON, beagled's /debug/trace.json,
// or the -trace flag of beaglebench, beaglemcmc and genomictest). It checks
// the document's schema — a traceEvents array of complete "X" events with
// name/ts/dur/pid/tid and "M" metadata naming every process — and prints a
// per-layer span summary. CI's trace-smoke and distributed-smoke steps use it
// to assert a captured trace really contains spans from the expected layers.
//
// A layer name in -require-layers ending in '*' matches any process whose
// name starts with the prefix — "remote worker*" asserts that at least one
// stitched worker process track is present without pinning its address.
// -require-stitch N asserts that at least N distinct request ids (the
// args.req span field) have spans in two or more processes, i.e. that
// requests were actually followed across process boundaries.
//
// Usage:
//
//	beagletrace [-require-layers "scheduler,device (modeled clock)"] [-min-spans N] [-require-stitch N] trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// rawEvent mirrors the exported trace-event schema loosely enough to surface
// malformed fields as validation errors rather than decode failures.
type rawEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Cat  string         `json:"cat"`
	Args map[string]any `json:"args"`
}

type traceDoc struct {
	TraceEvents []rawEvent `json:"traceEvents"`
}

func main() {
	requireLayers := flag.String("require-layers", "", "comma-separated process (layer) names that must have at least one span; a trailing '*' prefix-matches")
	minSpans := flag.Int("min-spans", 1, "minimum number of complete (ph \"X\") span events")
	requireStitch := flag.Int("require-stitch", 0, "minimum distinct request ids (args.req) that must have spans in at least two processes")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(fmt.Errorf("%s: not valid trace-event JSON: %w", path, err))
	}
	if doc.TraceEvents == nil {
		fatal(fmt.Errorf("%s: no traceEvents array", path))
	}

	layerByPid, errs := checkMetadata(doc.TraceEvents)
	spansPerLayer, spanCount, spanErrs := checkSpans(doc.TraceEvents, layerByPid)
	errs = append(errs, spanErrs...)

	if spanCount < *minSpans {
		errs = append(errs, fmt.Sprintf("only %d span events, need at least %d", spanCount, *minSpans))
	}
	if *requireLayers != "" {
		for _, want := range strings.Split(*requireLayers, ",") {
			want = strings.TrimSpace(want)
			if want == "" {
				continue
			}
			if !layerPresent(spansPerLayer, want) {
				errs = append(errs, fmt.Sprintf("required layer %q has no spans", want))
			}
		}
	}
	if *requireStitch > 0 {
		stitched := countStitched(doc.TraceEvents)
		if stitched < *requireStitch {
			errs = append(errs, fmt.Sprintf("only %d request ids span multiple processes, need at least %d", stitched, *requireStitch))
		} else {
			fmt.Printf("  %d request ids stitched across processes\n", stitched)
		}
	}

	layers := make([]string, 0, len(spansPerLayer))
	for l := range spansPerLayer {
		layers = append(layers, l)
	}
	sort.Strings(layers)
	fmt.Printf("%s: %d spans across %d layers\n", path, spanCount, len(layers))
	for _, l := range layers {
		fmt.Printf("  %-24s %6d spans\n", l, spansPerLayer[l])
	}

	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "beagletrace: %s: %s\n", path, e)
		}
		os.Exit(1)
	}
	fmt.Println("trace OK")
}

// checkMetadata validates the "M" events and returns the pid → process-name
// mapping the span check resolves layers through.
func checkMetadata(events []rawEvent) (map[int]string, []string) {
	layerByPid := map[int]string{}
	var errs []string
	for i, e := range events {
		if e.Ph != "M" {
			continue
		}
		if e.Pid == nil {
			errs = append(errs, fmt.Sprintf("metadata event %d has no pid", i))
			continue
		}
		if e.Name != "process_name" {
			continue
		}
		name, ok := e.Args["name"].(string)
		if !ok || name == "" {
			errs = append(errs, fmt.Sprintf("process_name metadata for pid %d has no name arg", *e.Pid))
			continue
		}
		layerByPid[*e.Pid] = name
	}
	return layerByPid, errs
}

// checkSpans validates every complete event and tallies spans per layer.
// Error reporting caps at a handful per class so a systematically broken
// trace doesn't flood the output.
func checkSpans(events []rawEvent, layerByPid map[int]string) (map[string]int, int, []string) {
	spansPerLayer := map[string]int{}
	var errs []string
	count := 0
	addErr := func(s string) {
		const maxErrs = 10
		if len(errs) < maxErrs {
			errs = append(errs, s)
		} else if len(errs) == maxErrs {
			errs = append(errs, "further span errors suppressed")
		}
	}
	for i, e := range events {
		if e.Ph != "X" {
			continue
		}
		count++
		if e.Name == "" {
			addErr(fmt.Sprintf("span event %d has no name", i))
		}
		if e.Ts == nil {
			addErr(fmt.Sprintf("span event %d (%s) has no ts", i, e.Name))
		}
		if e.Dur != nil && *e.Dur < 0 {
			addErr(fmt.Sprintf("span event %d (%s) has negative dur", i, e.Name))
		}
		if e.Pid == nil || e.Tid == nil {
			addErr(fmt.Sprintf("span event %d (%s) missing pid or tid", i, e.Name))
			continue
		}
		layer, ok := layerByPid[*e.Pid]
		if !ok {
			addErr(fmt.Sprintf("span event %d (%s) references pid %d with no process_name metadata", i, e.Name, *e.Pid))
			continue
		}
		spansPerLayer[layer]++
	}
	return spansPerLayer, count, errs
}

// layerPresent reports whether a required layer name — exact, or a prefix
// when it ends in '*' — has at least one span.
func layerPresent(spansPerLayer map[string]int, want string) bool {
	if prefix, ok := strings.CutSuffix(want, "*"); ok {
		for layer, n := range spansPerLayer {
			if n > 0 && strings.HasPrefix(layer, prefix) {
				return true
			}
		}
		return false
	}
	return spansPerLayer[want] > 0
}

// countStitched counts distinct request ids (the args.req field request-
// scoped spans carry) that appear in spans of two or more processes — the
// definition of a successfully stitched request.
func countStitched(events []rawEvent) int {
	pidsByReq := map[float64]map[int]bool{}
	for _, e := range events {
		if e.Ph != "X" || e.Pid == nil || e.Args == nil {
			continue
		}
		req, ok := e.Args["req"].(float64)
		if !ok || req == 0 {
			continue
		}
		if pidsByReq[req] == nil {
			pidsByReq[req] = map[int]bool{}
		}
		pidsByReq[req][*e.Pid] = true
	}
	n := 0
	for _, pids := range pidsByReq {
		if len(pids) >= 2 {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "beagletrace:", err)
	os.Exit(1)
}
