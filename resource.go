package gobeagle

import (
	"fmt"
	"runtime"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/device"
)

// ResourceKind classifies a compute resource.
type ResourceKind int

// Resource kinds.
const (
	ResourceCPU ResourceKind = iota
	ResourceGPU
	ResourceAccelerator
)

// String returns a human-readable resource kind.
func (k ResourceKind) String() string {
	switch k {
	case ResourceCPU:
		return "CPU"
	case ResourceGPU:
		return "GPU"
	case ResourceAccelerator:
		return "Accelerator"
	default:
		return fmt.Sprintf("ResourceKind(%d)", int(k))
	}
}

// Resource describes one compute resource an instance can be created on,
// the analogue of BEAGLE's beagleGetResourceList entries. Resource 0 is
// always the host CPU (driven by the CPU implementations); further entries
// are devices exposed by the installed CUDA and OpenCL drivers, including
// the same hardware under multiple drivers (§VII-B3).
type Resource struct {
	ID        int
	Name      string
	Kind      ResourceKind
	Framework string // "", "CUDA" or "OpenCL"
	Vendor    string
	Cores     int
	// dev is nil for the host CPU resource.
	dev *device.Device
}

// Device exposes the underlying simulated device, or nil for the host CPU
// resource; benchmark harnesses use it to read the modeled device clock.
func (r *Resource) Device() *device.Device { return r.dev }

// Implementations lists the implementation names selectable on this
// resource: every CPU execution strategy for the host resource (including
// the hybrid op×pattern scheduler), or the kernel variants a device's
// framework and kind admit.
func (r *Resource) Implementations() []string {
	if r.dev == nil {
		modes := cpuimpl.Modes()
		out := make([]string, len(modes))
		for i, m := range modes {
			out[i] = m.String()
		}
		return out
	}
	switch {
	case r.dev.Framework == device.CUDA:
		return []string{"CUDA"}
	case r.dev.Desc.Kind == device.KindGPU:
		return []string{"OpenCL-GPU"}
	default:
		return []string{"OpenCL-x86", "OpenCL-GPU"}
	}
}

// String renders the resource for listings.
func (r *Resource) String() string {
	if r.Framework == "" {
		return fmt.Sprintf("#%d %s [%s, %d threads]", r.ID, r.Name, r.Kind, r.Cores)
	}
	return fmt.Sprintf("#%d %s [%s, %s, %s, %d cores]", r.ID, r.Name, r.Kind, r.Framework, r.Vendor, r.Cores)
}

// ResourceList enumerates all available compute resources: the host CPU
// first, then every device of every installed driver platform.
func ResourceList() []*Resource {
	out := []*Resource{{
		ID:    0,
		Name:  "CPU (host)",
		Kind:  ResourceCPU,
		Cores: runtime.GOMAXPROCS(0),
	}}
	for _, d := range device.AllDevices() {
		kind := ResourceGPU
		switch d.Desc.Kind {
		case device.KindCPU:
			kind = ResourceCPU
		case device.KindAccelerator:
			kind = ResourceAccelerator
		}
		out = append(out, &Resource{
			ID:        len(out),
			Name:      d.Desc.Name,
			Kind:      kind,
			Framework: string(d.Framework),
			Vendor:    d.Desc.Vendor,
			Cores:     d.Desc.Cores,
			dev:       d,
		})
	}
	return out
}

// FindResource returns the first resource whose name and framework match;
// framework "" matches any.
func FindResource(name, framework string) (*Resource, error) {
	for _, r := range ResourceList() {
		if r.Name == name && (framework == "" || r.Framework == framework) {
			return r, nil
		}
	}
	return nil, fmt.Errorf("gobeagle: no resource named %q under framework %q", name, framework)
}
