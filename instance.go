package gobeagle

import (
	"errors"
	"fmt"

	"gobeagle/internal/device"
	"gobeagle/internal/engine"
	"gobeagle/internal/kernels"
	"gobeagle/internal/telemetry"
	"gobeagle/internal/trace"
)

// None marks an unused index argument (no rescaling, for example), matching
// BEAGLE_OP_NONE.
const None = engine.None

// Operation describes one partial-likelihoods update in buffer indices,
// mirroring the BEAGLE operation structure. Destination partials are
// computed from the two children's partials (or compact tip states)
// combined through their branch transition matrices. DestScaleWrite names a
// scale buffer to rescale the fresh destination into (or None).
// DestScaleRead names a previously written scale buffer whose factors are
// applied to the fresh destination (each pattern's partials divided by
// exp(scale[p]), BEAGLE's fixed-scaling read mode), or None; when both are
// set the read factors are applied first and the rescale then captures the
// residual magnitude.
type Operation struct {
	Destination    int
	DestScaleWrite int
	DestScaleRead  int
	Child1         int
	Child1Matrix   int
	Child2         int
	Child2Matrix   int
}

// Config fixes the geometry and implementation of an instance, following
// beagleCreateInstance.
type Config struct {
	// TipCount is the number of tips; buffers 0..TipCount-1 hold tip data
	// (compact states or partials).
	TipCount int
	// PartialsBuffers is the total number of partials buffers, at least
	// TipCount; a post-order evaluation needs one per node.
	PartialsBuffers int
	// MatrixBuffers is the number of transition matrix buffers.
	MatrixBuffers int
	// EigenBuffers is the number of eigendecomposition slots.
	EigenBuffers int
	// ScaleBuffers is the number of per-pattern scale-factor buffers
	// (0 disables rescaling support).
	ScaleBuffers int
	// StateCount is the character state space: 4 nucleotide, 20 amino
	// acid, 61 codon.
	StateCount int
	// PatternCount is the number of unique site patterns.
	PatternCount int
	// CategoryCount is the number of among-site rate categories.
	CategoryCount int
	// ResourceID selects an entry of ResourceList; 0 is the host CPU.
	ResourceID int
	// Flags select precision, vectorization, threading and kernel options.
	// At most one FlagThreading* flag may be set; FlagThreadingThreadPoolHybrid
	// selects the op×pattern hybrid scheduler on the persistent pool.
	Flags Flags
	// Threads bounds CPU worker threads (0 = all hardware threads).
	Threads int
	// WorkGroupSize overrides the accelerator work-group size in patterns
	// (0 = implementation default; Table V explores this parameter).
	WorkGroupSize int
	// MinPatternsForThreading overrides the minimum pattern count for
	// pattern-level CPU threading (0 = the paper's 512).
	MinPatternsForThreading int
	// RebalanceInterval is the number of UpdatePartials batches between
	// adaptive rebalance checks on multi-device instances created with
	// FlagRebalance (0 = the default interval). Ignored otherwise.
	RebalanceInterval int
}

// Instance is a likelihood-computation instance bound to one resource and
// implementation. Instances are not safe for concurrent use; create one
// instance per goroutine (as client programs create one per data partition).
type Instance struct {
	cfg Config
	eng engine.Engine
	rsc *Resource
	tel *telemetry.Collector
	tr  *trace.Tracer

	// scratch is the UpdatePartials conversion buffer, reused across calls
	// so the submission hot path performs no per-call allocation (MCMC
	// samplers resubmit the peel schedule every proposal).
	scratch []engine.Operation
}

// NewInstance creates an instance on the selected resource. The
// implementation is chosen from the resource and flags through the
// implementation registry, and the instance is handed to it for its
// lifetime, as in BEAGLE's implementation-management layer.
func NewInstance(cfg Config) (*Instance, error) {
	resources := ResourceList()
	if cfg.ResourceID < 0 || cfg.ResourceID >= len(resources) {
		return nil, fmt.Errorf("gobeagle: resource %d out of range [0,%d)", cfg.ResourceID, len(resources))
	}
	rsc := resources[cfg.ResourceID]
	if t := cfg.Flags & threadingFlags; t&(t-1) != 0 {
		return nil, errors.New("gobeagle: at most one threading flag may be set")
	}
	ecfg := engine.Config{
		TipCount:        cfg.TipCount,
		PartialsBuffers: cfg.PartialsBuffers,
		MatrixBuffers:   cfg.MatrixBuffers,
		EigenBuffers:    cfg.EigenBuffers,
		ScaleBuffers:    cfg.ScaleBuffers,
		Dims: kernels.Dims{
			StateCount:    cfg.StateCount,
			PatternCount:  cfg.PatternCount,
			CategoryCount: cfg.CategoryCount,
		},
		SinglePrecision: cfg.Flags&FlagPrecisionSingle != 0,
		Threads:         cfg.Threads,
		MinPatternsWork: cfg.MinPatternsForThreading,
		WorkGroupSize:   cfg.WorkGroupSize,
		DisableFMA:      cfg.Flags&FlagDisableFMA != 0,
		Reuse:           cfg.Flags&FlagReuse != 0,
	}
	tel := newInstanceCollector(cfg.Flags)
	ecfg.Telemetry = tel
	tr := newInstanceTracer(cfg.Flags)
	ecfg.Trace = tr
	eng, err := buildEngine(ecfg, rsc, cfg.Flags)
	if err != nil {
		return nil, err
	}
	strategy := strategyName(cfg.Flags)
	if rsc.Device() != nil {
		strategy = "device"
	}
	tel.SetLabels(eng.Name(), strategy)
	return &Instance{cfg: cfg, eng: eng, rsc: rsc, tel: tel, tr: tr}, nil
}

// Implementation returns the name of the selected implementation, e.g.
// "CPU-threadpool" or "OpenCL-GPU: Radeon R9 Nano".
func (in *Instance) Implementation() string { return in.eng.Name() }

// Resource returns the resource the instance runs on.
func (in *Instance) Resource() *Resource { return in.rsc }

// Config returns the instance's creation configuration.
func (in *Instance) Config() Config { return in.cfg }

// Finalize releases the instance's resources (worker pools, device
// buffers). Finalize is idempotent; computation methods called afterwards
// return an error instead of panicking.
func (in *Instance) Finalize() error { return in.eng.Close() }

// DeviceQueue returns the command queue of an accelerator-backed instance
// (exposing launch counts, transfer volumes and the modeled device clock for
// benchmark instrumentation), or nil for host-CPU implementations.
func (in *Instance) DeviceQueue() *device.Queue {
	type queueHolder interface{ Queue() *device.Queue }
	if qh, ok := in.eng.(queueHolder); ok {
		return qh.Queue()
	}
	return nil
}

// SetTipStates stores compact states for tip buffer buf (values ≥
// StateCount denote full ambiguity).
func (in *Instance) SetTipStates(buf int, states []int) error {
	return in.eng.SetTipStates(buf, states)
}

// SetTipPartials stores per-pattern partial likelihoods for a tip
// (PatternCount·StateCount values), for ambiguous or uncertain data.
func (in *Instance) SetTipPartials(buf int, partials []float64) error {
	return in.eng.SetTipPartials(buf, partials)
}

// SetPartials stores a full partials buffer
// (CategoryCount·PatternCount·StateCount values).
func (in *Instance) SetPartials(buf int, partials []float64) error {
	return in.eng.SetPartials(buf, partials)
}

// GetPartials retrieves a partials buffer.
func (in *Instance) GetPartials(buf int) ([]float64, error) {
	return in.eng.GetPartials(buf)
}

// SetEigenDecomposition stores a rate-matrix decomposition
// Q = V·diag(values)·V⁻¹ in an eigen slot; vectors and inverseVectors are
// row-major StateCount×StateCount.
func (in *Instance) SetEigenDecomposition(slot int, values, vectors, inverseVectors []float64) error {
	return in.eng.SetEigenDecomposition(slot, values, vectors, inverseVectors)
}

// SetCategoryRates sets the relative substitution rate of each category.
func (in *Instance) SetCategoryRates(rates []float64) error {
	return in.eng.SetCategoryRates(rates)
}

// SetCategoryWeights sets the mixture weight of each rate category.
func (in *Instance) SetCategoryWeights(weights []float64) error {
	return in.eng.SetCategoryWeights(weights)
}

// SetStateFrequencies sets the stationary state frequencies π.
func (in *Instance) SetStateFrequencies(freqs []float64) error {
	return in.eng.SetStateFrequencies(freqs)
}

// SetPatternWeights sets per-pattern multiplicities (site counts).
func (in *Instance) SetPatternWeights(weights []float64) error {
	return in.eng.SetPatternWeights(weights)
}

// SetTransitionMatrix stores an explicit transition matrix
// (CategoryCount·StateCount·StateCount values).
func (in *Instance) SetTransitionMatrix(matrix int, values []float64) error {
	return in.eng.SetTransitionMatrix(matrix, values)
}

// GetTransitionMatrix retrieves a transition matrix buffer.
func (in *Instance) GetTransitionMatrix(matrix int) ([]float64, error) {
	return in.eng.GetTransitionMatrix(matrix)
}

// UpdateTransitionMatrices computes P(rate_c·edgeLength) for each listed
// matrix buffer from the decomposition in eigenSlot.
func (in *Instance) UpdateTransitionMatrices(eigenSlot int, matrices []int, edgeLengths []float64) error {
	return in.eng.UpdateTransitionMatrices(eigenSlot, matrices, edgeLengths)
}

// UpdatePartials executes a list of partial-likelihoods operations in
// order; operations whose children are destinations of earlier operations
// in the same list see the updated values. On instances created with
// FlagReuse, operations whose inputs are unchanged since they last produced
// their destination are skipped (see ReuseStats).
//
//beagle:noalloc
func (in *Instance) UpdatePartials(ops []Operation) error {
	eops := in.opScratch(len(ops))
	for i, op := range ops {
		eops[i] = engine.Operation{
			Dest:           op.Destination,
			DestScaleWrite: op.DestScaleWrite,
			DestScaleRead:  op.DestScaleRead,
			Child1:         op.Child1,
			Child1Mat:      op.Child1Matrix,
			Child2:         op.Child2,
			Child2Mat:      op.Child2Matrix,
		}
	}
	return in.eng.UpdatePartials(eops)
}

// opScratch returns the instance's conversion buffer with length n, growing
// the backing array only when a larger batch than ever before is submitted;
// steady-state resubmissions reuse the previous array.
func (in *Instance) opScratch(n int) []engine.Operation {
	if cap(in.scratch) < n {
		in.scratch = make([]engine.Operation, n)
	}
	return in.scratch[:n]
}

// ResetScaleFactors zeroes a scale buffer.
func (in *Instance) ResetScaleFactors(scaleBuf int) error {
	return in.eng.ResetScaleFactors(scaleBuf)
}

// AccumulateScaleFactors sums the listed scale buffers into cumBuf, for use
// at likelihood integration.
func (in *Instance) AccumulateScaleFactors(scaleBufs []int, cumBuf int) error {
	return in.eng.AccumulateScaleFactors(scaleBufs, cumBuf)
}

// CalculateRootLogLikelihoods integrates the root partials buffer over
// states, categories and patterns into the total log likelihood;
// cumScaleBuf is a scale buffer holding accumulated log scale factors, or
// None.
func (in *Instance) CalculateRootLogLikelihoods(rootBuf, cumScaleBuf int) (float64, error) {
	return in.eng.CalculateRootLogLikelihoods(rootBuf, cumScaleBuf)
}

// CalculateEdgeLogLikelihoods integrates across a single branch between a
// parent-side and a child-side partials buffer with the given transition
// matrix.
func (in *Instance) CalculateEdgeLogLikelihoods(parentBuf, childBuf, matrix, cumScaleBuf int) (float64, error) {
	return in.eng.CalculateEdgeLogLikelihoods(parentBuf, childBuf, matrix, cumScaleBuf)
}

// SiteLogLikelihoods returns the per-pattern log likelihoods at the root.
func (in *Instance) SiteLogLikelihoods(rootBuf, cumScaleBuf int) ([]float64, error) {
	return in.eng.SiteLogLikelihoods(rootBuf, cumScaleBuf)
}

// UpdateTransitionDerivatives computes first-derivative transition matrices
// dP/dt into d1Matrices and, when d2Matrices is non-nil, second derivatives
// into d2Matrices, mirroring beagleUpdateTransitionMatrices' derivative
// outputs.
func (in *Instance) UpdateTransitionDerivatives(eigenSlot int, d1Matrices, d2Matrices []int, edgeLengths []float64) error {
	return in.eng.UpdateTransitionDerivatives(eigenSlot, d1Matrices, d2Matrices, edgeLengths)
}

// CalculateEdgeDerivatives integrates across one branch and returns the log
// likelihood with its first and second derivatives with respect to the
// branch length — the inputs to Newton-style branch-length optimization.
// d2Matrix may be None to skip the second derivative.
func (in *Instance) CalculateEdgeDerivatives(parentBuf, childBuf, matrix, d1Matrix, d2Matrix, cumScaleBuf int) (lnL, d1, d2 float64, err error) {
	return in.eng.CalculateEdgeDerivatives(parentBuf, childBuf, matrix, d1Matrix, d2Matrix, cumScaleBuf)
}
