// partitioned: a partitioned analysis with one library instance per data
// subset, the pattern §IV-F describes for exploiting multiple CPU cores and
// multiple devices — "application programs running partitioned analyses can
// invoke multiple library instances, one for each data subset". Here a
// three-gene dataset evolves under different models per gene (a common
// biological setup), each partition is evaluated on its own instance — on
// different resources — and the joint log likelihood is the sum.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"gobeagle"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

type partition struct {
	name     string
	model    *substmodel.Model
	rates    *substmodel.SiteRates
	patterns *seqgen.PatternSet
	resource string // resource name; "" for host CPU
	flags    gobeagle.Flags
}

func main() {
	rng := rand.New(rand.NewSource(11))
	tr, err := tree.Random(rng, 12, 0.1)
	if err != nil {
		log.Fatal(err)
	}

	// Three genes under three different models, as a partitioned analysis
	// would configure them.
	gtr, err := substmodel.NewGTR(
		[]float64{1.2, 3.1, 0.8, 0.9, 3.5, 1.0},
		[]float64{0.32, 0.18, 0.22, 0.28})
	if err != nil {
		log.Fatal(err)
	}
	hky, err := substmodel.NewHKY85(2.4, []float64{0.25, 0.25, 0.3, 0.2})
	if err != nil {
		log.Fatal(err)
	}
	gamma, err := substmodel.GammaRates(0.4, 4)
	if err != nil {
		log.Fatal(err)
	}
	parts := []partition{
		{name: "gene1 (GTR+G)", model: gtr, rates: gamma,
			resource: "", flags: gobeagle.FlagThreadingThreadPool},
		{name: "gene2 (HKY85)", model: hky, rates: substmodel.SingleRate(),
			resource: "Radeon R9 Nano", flags: 0},
		{name: "gene3 (JC69)", model: substmodel.NewJC69(), rates: substmodel.SingleRate(),
			resource: "Xeon E5-2680v4 x2", flags: 0},
	}
	lengths := []int{1200, 800, 1500}
	for i := range parts {
		align, err := seqgen.Simulate(rng, tr, parts[i].model, parts[i].rates, lengths[i])
		if err != nil {
			log.Fatal(err)
		}
		parts[i].patterns = seqgen.CompressPatterns(align)
	}

	// Evaluate every partition concurrently, each on its own instance.
	type result struct {
		lnL  float64
		impl string
		err  error
	}
	results := make([]result, len(parts))
	var wg sync.WaitGroup
	for i, pt := range parts {
		wg.Add(1)
		go func(i int, pt partition) {
			defer wg.Done()
			lnL, impl, err := evaluatePartition(tr, pt)
			results[i] = result{lnL, impl, err}
		}(i, pt)
	}
	wg.Wait()

	var total float64
	for i, pt := range parts {
		r := results[i]
		if r.err != nil {
			log.Fatalf("%s: %v", pt.name, r.err)
		}
		fmt.Printf("%-14s %5d sites %5d patterns  lnL %12.4f   [%s]\n",
			pt.name, lengths[i], pt.patterns.PatternCount(), r.lnL, r.impl)
		total += r.lnL
	}
	fmt.Printf("\njoint log likelihood: %.4f\n", total)
}

// evaluatePartition computes one partition's log likelihood on its own
// instance and resource.
func evaluatePartition(tr *tree.Tree, pt partition) (float64, string, error) {
	resourceID := 0
	if pt.resource != "" {
		rsc, err := gobeagle.FindResource(pt.resource, "OpenCL")
		if err != nil {
			return 0, "", err
		}
		resourceID = rsc.ID
	}
	inst, err := gobeagle.NewInstance(gobeagle.Config{
		TipCount:        tr.TipCount,
		PartialsBuffers: tr.NodeCount(),
		MatrixBuffers:   tr.NodeCount(),
		EigenBuffers:    1,
		StateCount:      pt.model.StateCount,
		PatternCount:    pt.patterns.PatternCount(),
		CategoryCount:   len(pt.rates.Rates),
		ResourceID:      resourceID,
		Flags:           pt.flags,
	})
	if err != nil {
		return 0, "", err
	}
	defer inst.Finalize()

	ed, err := pt.model.Eigen()
	if err != nil {
		return 0, "", err
	}
	steps := []error{
		inst.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		inst.SetCategoryRates(pt.rates.Rates),
		inst.SetCategoryWeights(pt.rates.Weights),
		inst.SetStateFrequencies(pt.model.Frequencies),
		inst.SetPatternWeights(pt.patterns.Weights),
	}
	for _, err := range steps {
		if err != nil {
			return 0, "", err
		}
	}
	for tip := 0; tip < tr.TipCount; tip++ {
		if err := inst.SetTipStates(tip, pt.patterns.TipStates(tip)); err != nil {
			return 0, "", err
		}
	}
	sched := tr.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
		return 0, "", err
	}
	ops := make([]gobeagle.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = gobeagle.Operation{
			Destination: op.Dest, DestScaleWrite: gobeagle.None, DestScaleRead: gobeagle.None,
			Child1: op.Child1, Child1Matrix: op.Child1Mat,
			Child2: op.Child2, Child2Matrix: op.Child2Mat,
		}
	}
	if err := inst.UpdatePartials(ops); err != nil {
		return 0, "", err
	}
	lnL, err := inst.CalculateRootLogLikelihoods(sched.Root, gobeagle.None)
	return lnL, inst.Implementation(), err
}
