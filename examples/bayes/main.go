// bayes: a Bayesian phylogenetic analysis with Metropolis-coupled MCMC in
// the style of MrBayes (§VIII-C) — four incrementally heated chains, branch
// length and topology (NNI) moves, and chain-swap proposals — with every
// chain's likelihood evaluated through its own library instance, exactly how
// MrBayes integrates BEAGLE.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"gobeagle"
	"gobeagle/internal/mcmc"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func main() {
	rng := rand.New(rand.NewSource(2026))

	// Simulate data on a known 8-taxon tree under HKY85.
	truth, err := tree.Random(rng, 8, 0.12)
	if err != nil {
		log.Fatal(err)
	}
	model, err := substmodel.NewHKY85(2.0, []float64{0.3, 0.2, 0.25, 0.25})
	if err != nil {
		log.Fatal(err)
	}
	rates := substmodel.SingleRate()
	align, err := seqgen.Simulate(rng, truth, model, rates, 2000)
	if err != nil {
		log.Fatal(err)
	}
	ps := seqgen.CompressPatterns(align)
	fmt.Printf("data: %d taxa, %d sites, %d unique patterns\n",
		truth.TipCount, align.SiteCount(), ps.PatternCount())

	// One library instance per chain (the paper's partitioning of work:
	// MPI-level concurrency across chains, library parallelism within).
	const chains = 4
	engines := make([]mcmc.LikelihoodEngine, chains)
	for i := range engines {
		eng, err := mcmc.NewBeagleEngine(model, rates, ps, truth, 0,
			gobeagle.FlagThreadingThreadPool)
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		engines[i] = eng
	}

	// Start from a random tree: the sampler must find its way back. The
	// library's buffers are keyed by tip *index*, so the starting tree's
	// names must map to the same indices the data rows were loaded under.
	start, err := tree.Random(rng, 8, 0.12)
	if err != nil {
		log.Fatal(err)
	}
	for i, tip := range start.Tips() {
		tip.Name = truth.Tips()[i].Name
	}
	res, err := mcmc.Run(mcmc.Config{
		Tree:            start,
		Engines:         engines,
		Generations:     1500,
		HeatLambda:      0.1,
		NNIProbability:  0.3,
		BranchPriorMean: 0.1,
		SampleInterval:  10,
		SampleSplits:    true,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generations: 1500 (4 chains, MC3)\n")
	fmt.Printf("move acceptance: %.1f%% (%d/%d)\n",
		100*float64(res.AcceptedMoves)/float64(res.ProposedMoves),
		res.AcceptedMoves, res.ProposedMoves)
	fmt.Printf("swap acceptance: %.1f%% (%d/%d)\n",
		100*float64(res.AcceptedSwaps)/float64(res.ProposedSwaps),
		res.AcceptedSwaps, res.ProposedSwaps)
	fmt.Printf("cold-chain lnL: start %.2f -> final %.2f\n",
		res.Trace[0], res.Trace[len(res.Trace)-1])

	// Convergence diagnostics on the post-burn-in trace.
	if sum, err := mcmc.Summarize(res.Trace, len(res.Trace)/4); err == nil {
		fmt.Printf("post-burn-in lnL: mean %.2f ± %.2f, ESS %.0f of %d samples\n",
			sum.Mean, sum.StdDev, sum.ESS, sum.N)
	}

	// Compare against the likelihood and topology of the generating tree.
	genLnL, err := engines[0].LogLikelihood(truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lnL of generating tree: %.2f\n", genLnL)
	if rf, err := tree.RobinsonFoulds(truth, res.FinalTree); err == nil {
		fmt.Printf("Robinson–Foulds distance to the generating topology: %d (max %d)\n",
			rf, tree.MaxRobinsonFoulds(truth.TipCount))
	}

	// Posterior clade supports: how often each generating-tree split
	// appears in the post-burn-in samples.
	if trueSplits, err := truth.Splits(); err == nil && res.SplitSupport != nil {
		fmt.Printf("posterior support of the generating tree's splits (%d samples):\n",
			res.SplitSampleCount)
		// Print in sorted split order: map iteration would shuffle the
		// report between runs of the same seeded analysis.
		splits := make([]string, 0, len(trueSplits))
		for s := range trueSplits {
			splits = append(splits, s)
		}
		sort.Strings(splits)
		for _, s := range splits {
			fmt.Printf("  {%s}: %.0f%%\n", s, 100*res.SplitSupport[s])
		}
	}
	fmt.Printf("final sampled tree: %s\n", res.FinalTree.Newick())
}
