// multidevice: a single library instance whose likelihood computation is
// load-balanced across several compute resources at once — the extension the
// paper's conclusion plans as future work (§IX). Site patterns are split
// proportionally to each resource's expected throughput; every API call
// works transparently on the combined instance, and the result is bitwise
// comparable to a single-resource evaluation.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"gobeagle"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	tr, err := tree.Random(rng, 10, 0.12)
	if err != nil {
		log.Fatal(err)
	}
	model, err := substmodel.NewGTR(
		[]float64{1.1, 2.9, 0.9, 1.0, 3.2, 1.0},
		[]float64{0.3, 0.2, 0.25, 0.25})
	if err != nil {
		log.Fatal(err)
	}
	rates, err := substmodel.GammaRates(0.5, 4)
	if err != nil {
		log.Fatal(err)
	}
	align, err := seqgen.Simulate(rng, tr, model, rates, 4000)
	if err != nil {
		log.Fatal(err)
	}
	ps := seqgen.CompressPatterns(align)
	fmt.Printf("data: %d taxa, %d unique patterns\n", tr.TipCount, ps.PatternCount())

	cfg := gobeagle.Config{
		TipCount:        tr.TipCount,
		PartialsBuffers: tr.NodeCount(),
		MatrixBuffers:   tr.NodeCount(),
		EigenBuffers:    1,
		StateCount:      4,
		PatternCount:    ps.PatternCount(),
		CategoryCount:   4,
	}

	// Reference: a single-resource instance on the host CPU.
	single, err := gobeagle.NewInstance(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer single.Finalize()
	refLnL := evaluate(single, tr, model, rates, ps)
	fmt.Printf("single resource  [%s]\n  lnL = %.6f\n", single.Implementation(), refLnL)

	// One logical instance spanning the host CPU and two GPUs; shares are
	// derived from each resource's peak throughput by default.
	gpu1, err := gobeagle.FindResource("Radeon R9 Nano", "OpenCL")
	if err != nil {
		log.Fatal(err)
	}
	gpu2, err := gobeagle.FindResource("Quadro P5000", "CUDA")
	if err != nil {
		log.Fatal(err)
	}
	multi, err := gobeagle.NewMultiDeviceInstance(cfg, []int{0, gpu1.ID, gpu2.ID}, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer multi.Finalize()
	multiLnL := evaluate(multi, tr, model, rates, ps)
	fmt.Printf("multi-device     [%s]\n  lnL = %.6f\n", multi.Implementation(), multiLnL)

	if math.Abs(multiLnL-refLnL) > 1e-8*math.Abs(refLnL) {
		log.Fatalf("results disagree: %v vs %v", multiLnL, refLnL)
	}
	fmt.Println("single-resource and multi-device results agree")

	// Adaptive rebalancing: FlagRebalance makes the instance time every
	// backend and migrate pattern ranges toward the measured throughput
	// optimum. Repeated batches (an MCMC or ML search workload) let the
	// split converge; Stats exposes per-backend slices and the events.
	rcfg := cfg
	rcfg.Flags |= gobeagle.FlagRebalance | gobeagle.FlagTelemetry
	rcfg.RebalanceInterval = 3
	adaptive, err := gobeagle.NewMultiDeviceInstance(rcfg, []int{0, gpu1.ID, gpu2.ID}, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer adaptive.Finalize()
	adaptiveLnL := evaluate(adaptive, tr, model, rates, ps)
	sched := tr.FullSchedule()
	ops := operations(sched.Ops)
	for batch := 0; batch < 12; batch++ {
		if err := adaptive.UpdatePartials(ops); err != nil {
			log.Fatal(err)
		}
	}
	finalLnL, err := adaptive.CalculateRootLogLikelihoods(sched.Root, gobeagle.None)
	if err != nil {
		log.Fatal(err)
	}
	if math.Abs(finalLnL-adaptiveLnL) > 1e-9*math.Abs(adaptiveLnL) {
		log.Fatalf("rebalancing changed the result: %v vs %v", finalLnL, adaptiveLnL)
	}

	stats := adaptive.Stats()
	fmt.Printf("adaptive         [%s]\n  lnL = %.6f (unchanged across %d rebalances, %d patterns migrated)\n",
		adaptive.Implementation(), finalLnL, stats.Rebalances, stats.PatternsMigrated)
	for i, b := range stats.Backends {
		fmt.Printf("  backend %d: patterns [%d,%d) — %.0f pattern-ops/s measured\n",
			i, b.Lo, b.Hi, b.Throughput)
	}
}

// operations converts a tree schedule to the public operation list.
func operations(scheduled []tree.Op) []gobeagle.Operation {
	ops := make([]gobeagle.Operation, len(scheduled))
	for i, op := range scheduled {
		ops[i] = gobeagle.Operation{
			Destination: op.Dest, DestScaleWrite: gobeagle.None, DestScaleRead: gobeagle.None,
			Child1: op.Child1, Child1Matrix: op.Child1Mat,
			Child2: op.Child2, Child2Matrix: op.Child2Mat,
		}
	}
	return ops
}

// evaluate performs one complete likelihood evaluation on an instance.
func evaluate(inst *gobeagle.Instance, tr *tree.Tree, model *substmodel.Model,
	rates *substmodel.SiteRates, ps *seqgen.PatternSet) float64 {
	ed, err := model.Eigen()
	if err != nil {
		log.Fatal(err)
	}
	steps := []error{
		inst.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		inst.SetCategoryRates(rates.Rates),
		inst.SetCategoryWeights(rates.Weights),
		inst.SetStateFrequencies(model.Frequencies),
		inst.SetPatternWeights(ps.Weights),
	}
	for _, err := range steps {
		if err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < tr.TipCount; i++ {
		if err := inst.SetTipStates(i, ps.TipStates(i)); err != nil {
			log.Fatal(err)
		}
	}
	sched := tr.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
		log.Fatal(err)
	}
	if err := inst.UpdatePartials(operations(sched.Ops)); err != nil {
		log.Fatal(err)
	}
	lnL, err := inst.CalculateRootLogLikelihoods(sched.Root, gobeagle.None)
	if err != nil {
		log.Fatal(err)
	}
	return lnL
}
