// mlsearch: maximum-likelihood branch-length estimation in the style of a
// GARLI-class program (§III-A). An alignment is simulated on a known tree,
// the branch lengths are deliberately perturbed, and coordinate-ascent Brent
// optimization — with every likelihood evaluated through the library —
// recovers them.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gobeagle"
	"gobeagle/internal/mcmc"
	"gobeagle/internal/mle"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	truth, err := tree.ParseNewick(
		"(((a:0.10,b:0.15):0.05,c:0.20):0.08,(d:0.12,e:0.25):0.10);")
	if err != nil {
		log.Fatal(err)
	}
	model := substmodel.NewJC69()
	rates := substmodel.SingleRate()

	// Simulate 5,000 sites on the true tree and compress to patterns.
	align, err := seqgen.Simulate(rng, truth, model, rates, 5000)
	if err != nil {
		log.Fatal(err)
	}
	ps := seqgen.CompressPatterns(align)
	fmt.Printf("simulated %d sites -> %d unique patterns\n", align.SiteCount(), ps.PatternCount())

	// The likelihood engine: a library instance on the host CPU with the
	// thread-pool implementation.
	eng, err := mcmc.NewBeagleEngine(model, rates, ps, truth, 0, gobeagle.FlagThreadingThreadPool)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	truthLnL, err := eng.LogLikelihood(truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lnL at the generating branch lengths: %.4f\n", truthLnL)

	// Start from badly perturbed lengths.
	work := truth.Clone()
	for _, n := range work.Nodes() {
		if n != work.Root {
			n.Length = 0.5
		}
	}
	startLnL, err := eng.LogLikelihood(work)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lnL at the perturbed start:           %.4f\n", startLnL)

	optLnL, sweeps, err := mle.OptimizeBranchLengths(work,
		func(t *tree.Tree) (float64, error) { return eng.LogLikelihood(t) },
		1e-6, 3.0, 1e-6, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lnL after %d optimization sweeps:      %.4f\n", sweeps, optLnL)
	fmt.Println("\nrecovered branch lengths (tips):")
	for _, tip := range work.Tips() {
		var gen float64
		for _, t := range truth.Tips() {
			if t.Name == tip.Name {
				gen = t.Length
			}
		}
		fmt.Printf("  %-2s estimated %.4f  (generating value %.2f)\n", tip.Name, tip.Length, gen)
	}
	fmt.Printf("\noptimized tree: %s\n", work.Newick())
}
