// Quickstart: compute the log likelihood of a small phylogenetic tree under
// an HKY85+Γ nucleotide model, driving the library exactly as a client
// program would — build the model, translate the tree into buffer indices
// and an operation list, and integrate at the root.
package main

import (
	"fmt"
	"log"

	"gobeagle"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func main() {
	// A four-taxon tree with branch lengths in expected substitutions/site.
	tr, err := tree.ParseNewick("((human:0.1,chimp:0.08):0.05,(mouse:0.3,rat:0.28):0.12);")
	if err != nil {
		log.Fatal(err)
	}

	// An HKY85 model with transition/transversion ratio 2.5 and empirical
	// base frequencies, plus 4 discrete-gamma rate categories (alpha=0.5).
	model, err := substmodel.NewHKY85(2.5, []float64{0.30, 0.20, 0.25, 0.25})
	if err != nil {
		log.Fatal(err)
	}
	rates, err := substmodel.GammaRates(0.5, 4)
	if err != nil {
		log.Fatal(err)
	}

	// A tiny alignment over the 4 tips (A=0, C=1, G=2, T=3), one column
	// per site; identical columns would normally be compressed into
	// patterns with weights.
	sites := [][]int{
		// human  chimp  mouse  rat
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{2, 2, 0, 0},
		{3, 3, 3, 1},
		{0, 2, 0, 2},
		{1, 1, 3, 3},
		{2, 2, 2, 2},
		{0, 0, 1, 1},
	}

	// Create an instance on the host CPU with the thread-pool model — the
	// best-performing CPU configuration in the paper.
	inst, err := gobeagle.NewInstance(gobeagle.Config{
		TipCount:        tr.TipCount,
		PartialsBuffers: tr.NodeCount(),
		MatrixBuffers:   tr.NodeCount(),
		EigenBuffers:    1,
		StateCount:      4,
		PatternCount:    len(sites),
		CategoryCount:   4,
		ResourceID:      0,
		Flags:           gobeagle.FlagThreadingThreadPool,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Finalize()
	fmt.Println("implementation:", inst.Implementation())

	// Load the model: eigendecomposition, rates, weights, frequencies.
	ed, err := model.Eigen()
	if err != nil {
		log.Fatal(err)
	}
	must(inst.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data))
	must(inst.SetCategoryRates(rates.Rates))
	must(inst.SetCategoryWeights(rates.Weights))
	must(inst.SetStateFrequencies(model.Frequencies))

	// Load the data: compact states per tip, pattern weights all 1.
	for tip := 0; tip < tr.TipCount; tip++ {
		states := make([]int, len(sites))
		for s, col := range sites {
			states[s] = col[tip]
		}
		must(inst.SetTipStates(tip, states))
	}
	w := make([]float64, len(sites))
	for i := range w {
		w[i] = 1
	}
	must(inst.SetPatternWeights(w))

	// Translate the tree: one transition matrix per branch, one operation
	// per internal node in post-order.
	sched := tr.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	must(inst.UpdateTransitionMatrices(0, mats, lens))
	ops := make([]gobeagle.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = gobeagle.Operation{
			Destination: op.Dest, DestScaleWrite: gobeagle.None, DestScaleRead: gobeagle.None,
			Child1: op.Child1, Child1Matrix: op.Child1Mat,
			Child2: op.Child2, Child2Matrix: op.Child2Mat,
		}
	}
	must(inst.UpdatePartials(ops))

	lnL, err := inst.CalculateRootLogLikelihoods(sched.Root, gobeagle.None)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree: %s\n", tr.Newick())
	fmt.Printf("log likelihood: %.6f\n", lnL)

	site, err := inst.SiteLogLikelihoods(sched.Root, gobeagle.None)
	if err != nil {
		log.Fatal(err)
	}
	for i, l := range site {
		fmt.Printf("  site %d: %.6f\n", i, l)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
