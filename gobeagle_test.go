package gobeagle

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"gobeagle/internal/device"
	"gobeagle/internal/engine"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// evaluateTree drives a full tree evaluation through the public API and
// returns the root log likelihood.
func evaluateTree(t *testing.T, inst *Instance, tr *tree.Tree, m *substmodel.Model,
	rates *substmodel.SiteRates, ps *seqgen.PatternSet) float64 {
	t.Helper()
	ed, err := m.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	steps := []error{
		inst.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		inst.SetCategoryRates(rates.Rates),
		inst.SetCategoryWeights(rates.Weights),
		inst.SetStateFrequencies(m.Frequencies),
		inst.SetPatternWeights(ps.Weights),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < tr.TipCount; i++ {
		if err := inst.SetTipStates(i, ps.TipStates(i)); err != nil {
			t.Fatal(err)
		}
	}
	sched := tr.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
		t.Fatal(err)
	}
	ops := make([]Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = Operation{
			Destination: op.Dest, DestScaleWrite: None, DestScaleRead: None,
			Child1: op.Child1, Child1Matrix: op.Child1Mat,
			Child2: op.Child2, Child2Matrix: op.Child2Mat,
		}
	}
	if err := inst.UpdatePartials(ops); err != nil {
		t.Fatal(err)
	}
	lnL, err := inst.CalculateRootLogLikelihoods(sched.Root, None)
	if err != nil {
		t.Fatal(err)
	}
	return lnL
}

func instanceConfig(tr *tree.Tree, stateCount, patterns, cats, resourceID int, flags Flags) Config {
	return Config{
		TipCount:        tr.TipCount,
		PartialsBuffers: tr.NodeCount(),
		MatrixBuffers:   tr.NodeCount(),
		EigenBuffers:    1,
		ScaleBuffers:    tr.NodeCount() + 1,
		StateCount:      stateCount,
		PatternCount:    patterns,
		CategoryCount:   cats,
		ResourceID:      resourceID,
		Flags:           flags,
	}
}

func TestResourceList(t *testing.T) {
	device.ResetPlatforms()
	rs := ResourceList()
	if len(rs) != 7 {
		t.Fatalf("resource count %d, want 7 (host + 6 devices)", len(rs))
	}
	if rs[0].Kind != ResourceCPU || rs[0].Framework != "" || rs[0].Device() != nil {
		t.Fatalf("resource 0 must be the host CPU: %+v", rs[0])
	}
	for i, r := range rs {
		if r.ID != i {
			t.Fatalf("resource %d has ID %d", i, r.ID)
		}
		if r.String() == "" {
			t.Fatal("empty resource string")
		}
	}
	// The Quadro P5000 must be visible under both frameworks.
	if _, err := FindResource("Quadro P5000", "CUDA"); err != nil {
		t.Error(err)
	}
	if _, err := FindResource("Quadro P5000", "OpenCL"); err != nil {
		t.Error(err)
	}
	if _, err := FindResource("nonexistent", ""); err == nil {
		t.Error("expected error for unknown resource")
	}
}

func TestInstanceAcrossAllResourcesAgree(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(1))
	tr, _ := tree.Random(rng, 8, 0.2)
	m, _ := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	rates, _ := substmodel.GammaRates(0.7, 4)
	align, _ := seqgen.Simulate(rng, tr, m, rates, 250)
	ps := seqgen.CompressPatterns(align)

	var want float64
	for _, r := range ResourceList() {
		inst, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 4, r.ID, 0))
		if err != nil {
			t.Fatalf("resource %s: %v", r.Name, err)
		}
		got := evaluateTree(t, inst, tr, m, rates, ps)
		if err := inst.Finalize(); err != nil {
			t.Fatal(err)
		}
		if r.ID == 0 {
			want = got
			continue
		}
		if math.Abs(got-want) > 1e-8*math.Abs(want) {
			t.Errorf("resource %s (%s): lnL %v want %v", r.Name, r.Framework, got, want)
		}
	}
}

func TestImplementationSelection(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(2))
	tr, _ := tree.Random(rng, 4, 0.1)

	cases := []struct {
		resourceName string
		framework    string
		flags        Flags
		wantSub      string
	}{
		{"", "", 0, "CPU-serial"},
		{"", "", FlagVectorSSE, "CPU-SSE"},
		{"", "", FlagThreadingFutures, "CPU-futures"},
		{"", "", FlagThreadingThreadCreate, "CPU-threadcreate"},
		{"", "", FlagThreadingThreadPool, "CPU-threadpool"},
		{"", "", FlagThreadingThreadPoolHybrid, "threadpool-hybrid"},
		{"Quadro P5000", "CUDA", 0, "CUDA"},
		{"Radeon R9 Nano", "OpenCL", 0, "OpenCL-GPU"},
		{"Xeon E5-2680v4 x2", "OpenCL", 0, "OpenCL-x86"},
		{"Xeon E5-2680v4 x2", "OpenCL", FlagKernelGPU, "OpenCL-GPU"},
		{"Xeon Phi 7210", "OpenCL", 0, "OpenCL-x86"},
	}
	for _, c := range cases {
		id := 0
		if c.resourceName != "" {
			r, err := FindResource(c.resourceName, c.framework)
			if err != nil {
				t.Fatal(err)
			}
			id = r.ID
		}
		inst, err := NewInstance(instanceConfig(tr, 4, 50, 1, id, c.flags))
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if got := inst.Implementation(); !strings.Contains(got, c.wantSub) {
			t.Errorf("resource %q flags %v: implementation %q, want containing %q",
				c.resourceName, c.flags, got, c.wantSub)
		}
		inst.Finalize()
	}
}

func TestNewInstanceErrors(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(3))
	tr, _ := tree.Random(rng, 4, 0.1)

	if _, err := NewInstance(instanceConfig(tr, 4, 50, 1, 999, 0)); err == nil {
		t.Error("expected error for out-of-range resource")
	}
	if _, err := NewInstance(instanceConfig(tr, 4, 50, 1, 0, FlagThreadingFutures|FlagThreadingThreadPool)); err == nil {
		t.Error("expected error for conflicting threading flags")
	}
	bad := instanceConfig(tr, 4, 50, 1, 0, 0)
	bad.TipCount = 1
	if _, err := NewInstance(bad); err == nil {
		t.Error("expected error for too few tips")
	}
	bad2 := instanceConfig(tr, 4, 0, 1, 0, 0)
	if _, err := NewInstance(bad2); err == nil {
		t.Error("expected error for zero patterns")
	}
}

func TestSinglePrecisionFlag(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(4))
	tr, _ := tree.Random(rng, 6, 0.1)
	m := substmodel.NewJC69()
	rates := substmodel.SingleRate()
	align, _ := seqgen.Simulate(rng, tr, m, rates, 150)
	ps := seqgen.CompressPatterns(align)

	iD, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer iD.Finalize()
	iS, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 1, 0, FlagPrecisionSingle))
	if err != nil {
		t.Fatal(err)
	}
	defer iS.Finalize()
	d := evaluateTree(t, iD, tr, m, rates, ps)
	s := evaluateTree(t, iS, tr, m, rates, ps)
	if rel := math.Abs(d-s) / math.Abs(d); rel > 1e-4 {
		t.Fatalf("precision divergence %v", rel)
	}
}

func TestScalingThroughPublicAPI(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(5))
	tr, _ := tree.Random(rng, 20, 0.3)
	m := substmodel.NewJC69()
	rates := substmodel.SingleRate()
	align, _ := seqgen.Simulate(rng, tr, m, rates, 80)
	ps := seqgen.CompressPatterns(align)

	inst, err := NewInstance(instanceConfig(tr, 4, ps.PatternCount(), 1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	plain := evaluateTree(t, inst, tr, m, rates, ps)

	// Re-run with per-operation rescaling.
	sched := tr.FullSchedule()
	ops := make([]Operation, len(sched.Ops))
	scaleBufs := make([]int, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = Operation{
			Destination: op.Dest, DestScaleWrite: i, DestScaleRead: None,
			Child1: op.Child1, Child1Matrix: op.Child1Mat,
			Child2: op.Child2, Child2Matrix: op.Child2Mat,
		}
		scaleBufs[i] = i
	}
	if err := inst.UpdatePartials(ops); err != nil {
		t.Fatal(err)
	}
	cum := len(sched.Ops)
	if err := inst.ResetScaleFactors(cum); err != nil {
		t.Fatal(err)
	}
	if err := inst.AccumulateScaleFactors(scaleBufs, cum); err != nil {
		t.Fatal(err)
	}
	scaled, err := inst.CalculateRootLogLikelihoods(sched.Root, cum)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain-scaled) > 1e-8*math.Abs(plain) {
		t.Fatalf("scaled %v plain %v", scaled, plain)
	}
}

func TestFlagsString(t *testing.T) {
	if Flags(0).String() != "none" {
		t.Fatal("zero flags must render as none")
	}
	s := (FlagPrecisionSingle | FlagThreadingThreadPool).String()
	if !strings.Contains(s, "PRECISION_SINGLE") || !strings.Contains(s, "THREAD_POOL") {
		t.Fatalf("flags string %q", s)
	}
}

func TestCustomFactoryPlugin(t *testing.T) {
	device.ResetPlatforms()
	// A plugin factory can intercept instance creation for a resource — the
	// paper's runtime plugin system (§IV-C).
	called := false
	RegisterFactory(&Factory{
		Name:     "test-plugin",
		Priority: 100,
		Build: func(cfg engine.Config, rsc *Resource, flags Flags) (engine.Engine, error) {
			called = true
			return nil, nil // decline; fall through to the built-ins
		},
	})
	rng := rand.New(rand.NewSource(6))
	tr, _ := tree.Random(rng, 4, 0.1)
	inst, err := NewInstance(instanceConfig(tr, 4, 10, 1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	inst.Finalize()
	if !called {
		t.Fatal("custom factory was not consulted")
	}
	if len(Factories()) < 3 {
		t.Fatal("factories missing from registry")
	}
	if Factories()[0].Name != "test-plugin" {
		t.Fatal("priority ordering broken")
	}
}

func TestResourceKindString(t *testing.T) {
	if ResourceCPU.String() != "CPU" || ResourceGPU.String() != "GPU" || ResourceAccelerator.String() != "Accelerator" {
		t.Fatal("kind names wrong")
	}
	if ResourceKind(9).String() == "" {
		t.Fatal("unknown kind must render")
	}
}

func TestThreadsRestrictionOnOpenCLCPU(t *testing.T) {
	device.ResetPlatforms()
	rng := rand.New(rand.NewSource(7))
	tr, _ := tree.Random(rng, 4, 0.1)
	r, err := FindResource("Xeon E5-2680v4 x2", "OpenCL")
	if err != nil {
		t.Fatal(err)
	}
	cfg := instanceConfig(tr, 4, 50, 1, r.ID, 0)
	cfg.Threads = 4
	inst, err := NewInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	// Device fission renames the device with its compute-unit count.
	if !strings.Contains(inst.Implementation(), "(4 CU)") {
		t.Fatalf("expected fissioned device, got %q", inst.Implementation())
	}
}
