package gobeagle

import "strings"

// Flags select implementation preferences when creating an instance,
// following the spirit of the BEAGLE_FLAG_* constants: precision, CPU
// vectorization, the CPU threading model, and accelerator kernel options.
type Flags uint64

// Instance creation flags.
const (
	// FlagPrecisionSingle computes in float32; the default is float64.
	FlagPrecisionSingle Flags = 1 << iota
	// FlagVectorSSE uses the 4-state unrolled (SSE-style) kernels on the
	// CPU resource. Ignored for non-nucleotide state counts.
	FlagVectorSSE
	// FlagThreadingFutures uses per-operation asynchronous tasks (§VI-A).
	FlagThreadingFutures
	// FlagThreadingThreadCreate creates threads per call across site
	// patterns (§VI-B).
	FlagThreadingThreadCreate
	// FlagThreadingThreadPool uses a persistent worker pool (§VI-C); the
	// best-performing CPU threading model in the paper.
	FlagThreadingThreadPool
	// FlagThreadingThreadPoolHybrid combines operation-level concurrency
	// with pattern chunking on the persistent pool: every (operation,
	// pattern-chunk) pair of a dependency level is dispatched as one pool
	// task, so small-pattern problems with independent operations still
	// parallelize instead of degrading to serial.
	FlagThreadingThreadPoolHybrid
	// FlagDisableFMA builds accelerator kernels without fused multiply–add,
	// the Table IV ablation.
	FlagDisableFMA
	// FlagKernelGPU forces the GPU-style one-work-item-per-entry kernels on
	// a CPU-class OpenCL device (the "OpenCL-GPU on Xeon" row of Table V).
	FlagKernelGPU
	// FlagKernelX86 forces the loop-over-states x86 kernels on a GPU
	// device; chiefly for experimentation.
	FlagKernelX86
	// FlagTelemetry enables the observability layer at creation: per-kernel
	// operation counters and duration histograms, effective-GFLOPS
	// accounting, and scheduler level traces, read through Instance.Stats.
	// Collection can also be toggled later with Instance.EnableTelemetry.
	FlagTelemetry
	// FlagRebalance enables adaptive load rebalancing on multi-device
	// instances: per-backend throughput is measured every UpdatePartials
	// batch and the pattern partition is migrated between backends when the
	// measured split has drifted past a hysteresis threshold (§IX). Ignored
	// by single-resource instances.
	FlagRebalance
	// FlagTrace enables the span tracer at creation: timeline spans from the
	// scheduler (batches, dependency levels), workers, the modeled device
	// clock (kernel launches, transfers) and multi-device coordination
	// (barriers, rebalances, migrations), exported as Chrome trace-event
	// JSON through Instance.TraceJSON. Collection can also be toggled later
	// with Instance.EnableTrace.
	FlagTrace
	// FlagReuse enables incremental re-evaluation: the engine tracks, per
	// destination buffer, the operation signature and input versions of the
	// last computation, and UpdatePartials / UpdateTransitionMatrices skip
	// work whose inputs are unchanged since the last identical request.
	// Clients resubmit full peel lists every iteration; only the dirtied
	// path from a mutated buffer, matrix or model parameter to the root is
	// recomputed. Results are bit-identical to reuse-off because every
	// kernel is deterministic. Counters are read through
	// Instance.ReuseStats.
	FlagReuse
)

// threadingFlags lists the mutually exclusive CPU threading selections.
const threadingFlags = FlagThreadingFutures | FlagThreadingThreadCreate |
	FlagThreadingThreadPool | FlagThreadingThreadPoolHybrid

// String renders the set flags for diagnostics.
func (f Flags) String() string {
	if f == 0 {
		return "none"
	}
	names := []struct {
		bit  Flags
		name string
	}{
		{FlagPrecisionSingle, "PRECISION_SINGLE"},
		{FlagVectorSSE, "VECTOR_SSE"},
		{FlagThreadingFutures, "THREADING_FUTURES"},
		{FlagThreadingThreadCreate, "THREADING_THREAD_CREATE"},
		{FlagThreadingThreadPool, "THREADING_THREAD_POOL"},
		{FlagThreadingThreadPoolHybrid, "THREADING_THREAD_POOL_HYBRID"},
		{FlagDisableFMA, "NO_FMA"},
		{FlagKernelGPU, "KERNEL_GPU"},
		{FlagKernelX86, "KERNEL_X86"},
		{FlagTelemetry, "TELEMETRY"},
		{FlagRebalance, "REBALANCE"},
		{FlagTrace, "TRACE"},
		{FlagReuse, "REUSE"},
	}
	var out []string
	for _, n := range names {
		if f&n.bit != 0 {
			out = append(out, n.name)
		}
	}
	return strings.Join(out, "|")
}
