module gobeagle

go 1.22
