package gobeagle

import (
	"errors"

	"gobeagle/internal/engine"
	"gobeagle/internal/kernels"
	"gobeagle/internal/multiimpl"
)

// NewMultiDeviceInstance creates a single instance whose computation is
// partitioned across several resources — the multi-device load balancing the
// paper's conclusion plans as future work (§IX): "computation can be
// dynamically load balanced across multiple devices from within a single
// library instance".
//
// Site patterns are split into contiguous slices proportional to shares
// (one entry per resource; nil for throughput-derived shares) and each
// slice is computed by an implementation chosen for its resource with the
// given flags, concurrently. All Instance methods work transparently.
func NewMultiDeviceInstance(cfg Config, resourceIDs []int, shares []float64) (*Instance, error) {
	if len(resourceIDs) == 0 {
		return nil, errors.New("gobeagle: need at least one resource")
	}
	resources := ResourceList()
	if t := cfg.Flags & threadingFlags; t&(t-1) != 0 {
		return nil, errors.New("gobeagle: at most one threading flag may be set")
	}
	selected := make([]*Resource, len(resourceIDs))
	for i, id := range resourceIDs {
		if id < 0 || id >= len(resources) {
			return nil, errors.New("gobeagle: resource id out of range")
		}
		selected[i] = resources[id]
	}
	single := cfg.Flags&FlagPrecisionSingle != 0
	if shares == nil {
		shares = make([]float64, len(selected))
		for i, r := range selected {
			shares[i] = throughputShare(r, single)
		}
	}

	ecfg := engine.Config{
		TipCount:        cfg.TipCount,
		PartialsBuffers: cfg.PartialsBuffers,
		MatrixBuffers:   cfg.MatrixBuffers,
		EigenBuffers:    cfg.EigenBuffers,
		ScaleBuffers:    cfg.ScaleBuffers,
		Dims: kernels.Dims{
			StateCount:    cfg.StateCount,
			PatternCount:  cfg.PatternCount,
			CategoryCount: cfg.CategoryCount,
		},
		SinglePrecision: cfg.Flags&FlagPrecisionSingle != 0,
		Threads:         cfg.Threads,
		MinPatternsWork: cfg.MinPatternsForThreading,
		WorkGroupSize:   cfg.WorkGroupSize,
		DisableFMA:      cfg.Flags&FlagDisableFMA != 0,
		Reuse:           cfg.Flags&FlagReuse != 0,
	}
	tel := newInstanceCollector(cfg.Flags)
	ecfg.Telemetry = tel
	tr := newInstanceTracer(cfg.Flags)
	ecfg.Trace = tr
	builders := make([]multiimpl.Builder, len(selected))
	for i, rsc := range selected {
		rsc := rsc
		builders[i] = func(sub engine.Config) (engine.Engine, error) {
			return buildEngine(sub, rsc, cfg.Flags)
		}
	}
	eng, err := multiimpl.NewBalanced(ecfg, builders, shares, multiimpl.Options{
		Rebalance: cfg.Flags&FlagRebalance != 0,
		Interval:  cfg.RebalanceInterval,
	})
	if err != nil {
		return nil, err
	}
	tel.SetLabels(eng.Name(), "multi-device")
	return &Instance{cfg: cfg, eng: eng, rsc: selected[0], tel: tel, tr: tr}, nil
}

// throughputShare estimates a resource's relative likelihood throughput at
// the instance's compute precision for default load balancing: the roofline
// peak for devices (derated by the device's DP ratio in double precision —
// a consumer GPU with a 1/32 ratio must not be weighted by its
// single-precision figure), a per-core estimate for the host.
func throughputShare(r *Resource, single bool) float64 {
	if d := r.Device(); d != nil {
		return d.Desc.PeakGFLOPS(single)
	}
	peak := 40 * float64(r.Cores) // host CPU: ≈ per-thread effective SP peak
	if !single {
		peak /= 2 // host FP64 vector width is half the FP32 width
	}
	return peak
}
