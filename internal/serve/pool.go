package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gobeagle"
	"gobeagle/internal/trace"
)

// PoolKey identifies one warm-instance calculator: requests with the same
// key are compatible enough to share an instance and be micro-batched into
// one scheduler submission. Patterns and Tips are bucketed (rounded up to a
// power of two) so near-miss shapes hit the same warm instance; the padding
// is weight-zero and bit-invisible.
type PoolKey struct {
	States     int
	Patterns   int // pattern-count bucket (instance PatternCount)
	Tips       int // tip-count bucket (slot geometry)
	Categories int
	Single     bool
	Flags      gobeagle.Flags
}

// String renders the key for metrics labels and responses.
func (k PoolKey) String() string {
	prec := "d"
	if k.Single {
		prec = "s"
	}
	return fmt.Sprintf("s%d/p%d/t%d/c%d/%s", k.States, k.Patterns, k.Tips, k.Categories, prec)
}

// minPatternBucket and minTipBucket floor the buckets so tiny requests share
// one warm shape instead of fragmenting the pool.
const (
	minPatternBucket = 64
	minTipBucket     = 8
)

// bucketPatterns rounds a pattern count up to the next power of two, at
// least minPatternBucket.
func bucketPatterns(p int) int { return nextPow2(p, minPatternBucket) }

// bucketTips rounds a tip count up to the next power of two, at least
// minTipBucket.
func bucketTips(t int) int { return nextPow2(t, minTipBucket) }

func nextPow2(v, floor int) int {
	b := floor
	for b < v {
		b *= 2
	}
	return b
}

// Pool is the warm-instance pool: one calculator per key, bounded by
// MaxCalculators with least-recently-used eviction (an evicted calculator
// drains its queue and finalizes its instance in the background).
type Pool struct {
	opts Options
	tr   *trace.Tracer

	mu    sync.Mutex
	calcs map[PoolKey]*Calculator
	order []PoolKey // LRU order: least recently used first

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// NewPool builds an empty pool. tr may be nil (tracing off).
func NewPool(opts Options, tr *trace.Tracer) *Pool {
	return &Pool{opts: opts, tr: tr, calcs: map[PoolKey]*Calculator{}}
}

// Get returns the warm calculator for a key, creating it (and evicting the
// least recently used one beyond the cap) on a miss.
func (p *Pool) Get(key PoolKey) (*Calculator, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.calcs[key]; ok {
		p.touch(key)
		p.hits.Add(1)
		return c, true
	}
	p.misses.Add(1)
	c := newCalculator(key, p.opts, p.tr)
	p.calcs[key] = c
	p.order = append(p.order, key)
	for p.opts.MaxCalculators > 0 && len(p.calcs) > p.opts.MaxCalculators {
		victim := p.order[0]
		p.order = p.order[1:]
		if v, ok := p.calcs[victim]; ok {
			delete(p.calcs, victim)
			v.close()
			p.evictions.Add(1)
		}
	}
	return c, false
}

// touch moves a key to the most-recently-used end.
func (p *Pool) touch(key PoolKey) {
	for i, k := range p.order {
		if k == key {
			p.order = append(append(p.order[:i:i], p.order[i+1:]...), key)
			return
		}
	}
}

// Close tears down every calculator and waits for their instances to
// finalize.
func (p *Pool) Close() {
	p.mu.Lock()
	// Tear down in LRU order rather than map order: close order is
	// observable through finalization traces and span timestamps, and the
	// daemon's shutdown must be reproducible run to run.
	calcs := make([]*Calculator, 0, len(p.calcs))
	for _, key := range p.order {
		if c, ok := p.calcs[key]; ok {
			calcs = append(calcs, c)
		}
	}
	p.calcs = map[PoolKey]*Calculator{}
	p.order = nil
	p.mu.Unlock()
	for _, c := range calcs {
		c.close()
	}
	for _, c := range calcs {
		c.wait()
	}
}

// PoolInstance pairs a live pooled instance with its key for the stitched
// trace export.
type PoolInstance struct {
	Key  PoolKey
	Inst *gobeagle.Instance
}

// Instances snapshots the pool's live instances, sorted by key so exports
// are stable run to run. An instance may be concurrently finalized by its
// executor after the snapshot; its span buffers stay readable, and wire
// drains against a closed worker connection simply report an error the
// caller skips.
func (p *Pool) Instances() []PoolInstance {
	p.mu.Lock()
	out := make([]PoolInstance, 0, len(p.calcs))
	for key, c := range p.calcs {
		if inst := c.instPub.Load(); inst != nil {
			out = append(out, PoolInstance{Key: key, Inst: inst})
		}
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// PoolStats is a point-in-time snapshot of the pool for metrics and the
// health endpoint.
type PoolStats struct {
	Calculators int              `json:"calculators"`
	Hits        uint64           `json:"hits"`
	Misses      uint64           `json:"misses"`
	Evictions   uint64           `json:"evictions"`
	PerKey      []CalculatorStat `json:"per_key,omitempty"`
}

// CalculatorStat summarizes one warm calculator.
type CalculatorStat struct {
	Key       string  `json:"key"`
	Slots     int     `json:"slots"`
	Batches   uint64  `json:"batches"`
	Requests  uint64  `json:"requests"`
	BatchFill float64 `json:"batch_fill"`
	Grows     uint64  `json:"grows"`
	Rebuilds  uint64  `json:"rebuilds"`
	Errors    uint64  `json:"errors"`
	QueueLen  int     `json:"queue_len"`
}

// Stats snapshots the pool.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{
		Calculators: len(p.calcs),
		Hits:        p.hits.Load(),
		Misses:      p.misses.Load(),
		Evictions:   p.evictions.Load(),
	}
	for _, key := range p.order {
		c, ok := p.calcs[key]
		if !ok {
			continue
		}
		batches := c.batches.Load()
		fill := 0.0
		if batches > 0 {
			fill = float64(c.batchFill.Load()) / float64(batches)
		}
		st.PerKey = append(st.PerKey, CalculatorStat{
			Key:       key.String(),
			Slots:     int(c.slotCap.Load()),
			Batches:   batches,
			Requests:  c.requests.Load(),
			BatchFill: fill,
			Grows:     c.grows.Load(),
			Rebuilds:  c.rebuilds.Load(),
			Errors:    c.errors.Load(),
			QueueLen:  len(c.queue),
		})
	}
	// Sort per-calculator rows by key: p.order is LRU order, which traffic
	// reshuffles between scrapes, and /metrics output must diff cleanly.
	sort.Slice(st.PerKey, func(i, j int) bool { return st.PerKey[i].Key < st.PerKey[j].Key })
	return st
}
