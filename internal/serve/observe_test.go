package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gobeagle/internal/metricsx"
)

func postEvaluate(t *testing.T, ts *httptest.Server, req *EvaluateRequest, header string) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/evaluate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if header != "" {
		hreq.Header.Set(RequestIDHeader, header)
	}
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRequestIDEchoedOnEveryPath pins the echo contract: whatever answer the
// server gives — success, method error, parse error, quota rejection — the
// response names the request via X-Beagle-Request-Id, honoring a
// client-supplied id verbatim and minting one otherwise.
func TestRequestIDEchoedOnEveryPath(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Method rejection echoes the supplied id.
	hreq, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/evaluate", nil)
	hreq.Header.Set(RequestIDHeader, "id-405")
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "id-405" {
		t.Errorf("405 echo = %q, want id-405", got)
	}

	// Parse failure without a supplied id mints one.
	resp, err = http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); !strings.HasPrefix(got, "beagle-") {
		t.Errorf("400 echo = %q, want a minted beagle-* id", got)
	}

	// Success echoes the supplied id in both header and body.
	resp = postEvaluate(t, ts, testRequest(4, 20, 1, false), "id-ok")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "id-ok" {
		t.Errorf("200 header echo = %q, want id-ok", got)
	}
	var out EvaluateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.RequestID != "id-ok" {
		t.Errorf("200 body request_id = %q, want id-ok", out.RequestID)
	}

	// A body-carried id works for header-less clients.
	req := testRequest(4, 20, 2, false)
	req.RequestID = "id-body"
	resp = postEvaluate(t, ts, req, "")
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "id-body" {
		t.Errorf("body-id echo = %q, want id-body", got)
	}

	// Two header-less requests mint distinct ids.
	r1 := postEvaluate(t, ts, testRequest(4, 20, 3, false), "")
	r1.Body.Close()
	r2 := postEvaluate(t, ts, testRequest(4, 20, 4, false), "")
	r2.Body.Close()
	a, b := r1.Header.Get(RequestIDHeader), r2.Header.Get(RequestIDHeader)
	if a == "" || a == b {
		t.Errorf("minted ids not unique: %q vs %q", a, b)
	}
}

// TestRequestIDEchoedOnQuotaReject covers the 429 path separately: a bucket
// with burst 1 and a negligible refill rejects the second request, and the
// rejection still echoes the id.
func TestRequestIDEchoedOnQuotaReject(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.QuotaRPS = 0.0001
		o.QuotaBurst = 1
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postEvaluate(t, ts, testRequest(4, 20, 1, false), "id-first")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", resp.StatusCode)
	}
	resp = postEvaluate(t, ts, testRequest(4, 20, 2, false), "id-429")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "id-429" {
		t.Errorf("429 echo = %q, want id-429", got)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
}

// TestSlowSamplerRetainsPhases asserts /debug/slow: after traffic, the
// sampler holds entries ordered slowest-first whose phase trees cover the
// request's life (compile at minimum; queue/run when the pooled path ran).
func TestSlowSamplerRetainsPhases(t *testing.T) {
	s := newTestServer(t, func(o *Options) { o.SlowN = 4 })
	ts := httptest.NewServer(s)
	defer ts.Close()

	for i := 0; i < 6; i++ {
		resp := postEvaluate(t, ts, testRequest(4, 20+i, int64(i), false), "")
		resp.Body.Close()
	}

	resp, err := ts.Client().Get(ts.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []SlowEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatalf("decode /debug/slow: %v", err)
	}
	if len(entries) == 0 || len(entries) > 4 {
		t.Fatalf("retained %d entries, want 1..4", len(entries))
	}
	for i, e := range entries {
		if e.RequestID == "" || e.TraceID == 0 {
			t.Errorf("entry %d lacks identity: %+v", i, e)
		}
		if e.TotalUs <= 0 {
			t.Errorf("entry %d TotalUs = %d", i, e.TotalUs)
		}
		if i > 0 && entries[i-1].TotalUs < e.TotalUs {
			t.Errorf("entries not slowest-first at %d: %d then %d", i, entries[i-1].TotalUs, e.TotalUs)
		}
		names := map[string]bool{}
		for _, p := range e.Phases {
			names[p.Name] = true
			for _, c := range p.Children {
				names[c.Name] = true
			}
		}
		if !names["compile"] {
			t.Errorf("entry %d phases %v missing compile", i, e.Phases)
		}
		if e.Status == 200 && e.Batched > 0 && (!names["pool"] || !names["queue"] || !names["run"]) {
			t.Errorf("batched entry %d phases lack pool/queue/run: %+v", i, e.Phases)
		}
	}
}

// TestTraceJSONHasServeProcessAndRequestArgs asserts the stitched trace
// export end to end on a single process: the serve layer renders as a named
// process track and request-tagged spans expose args.req so the Chrome trace
// can be filtered by request.
func TestTraceJSONHasServeProcessAndRequestArgs(t *testing.T) {
	s := newTestServer(t, func(o *Options) { o.Trace = true })
	ts := httptest.NewServer(s)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp := postEvaluate(t, ts, testRequest(4, 30, int64(i), false), "")
		resp.Body.Close()
	}
	// The batch executor records spans after answering; give it a beat.
	time.Sleep(20 * time.Millisecond)

	resp, err := ts.Client().Get(ts.URL + "/debug/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace.json is not valid JSON: %v", err)
	}

	haveServeProc := false
	reqTagged := 0
	serveRequestSpans := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			if args, ok := ev["args"].(map[string]any); ok && args["name"] == "serve" {
				haveServeProc = true
			}
		}
		if ev["ph"] != "X" {
			continue
		}
		if ev["name"] == "serve request" {
			serveRequestSpans++
		}
		if args, ok := ev["args"].(map[string]any); ok {
			if req, ok := args["req"].(float64); ok && req != 0 {
				reqTagged++
			}
		}
	}
	if !haveServeProc {
		t.Error("trace.json has no serve process track")
	}
	if serveRequestSpans < 3 {
		t.Errorf("trace.json has %d request spans, want >= 3", serveRequestSpans)
	}
	if reqTagged < 3 {
		t.Errorf("trace.json has %d request-tagged spans, want >= 3", reqTagged)
	}
}

// TestLiveMetricsScrapesAreLintClean is the promlint-style gate over the
// real exposition: both the plain scrape and the federated cluster view of a
// live server (after traffic, so counters and histograms are populated) must
// pass the structural lint.
func TestLiveMetricsScrapesAreLintClean(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp := postEvaluate(t, ts, testRequest(4, 20, int64(i), false), "")
		resp.Body.Close()
	}

	for _, path := range []string{"/metrics", "/cluster/metrics"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if problems := metricsx.LintProm(bytes.NewReader(buf.Bytes())); len(problems) > 0 {
			t.Errorf("%s fails lint:\n%s", path, strings.Join(problems, "\n"))
		}
		if path == "/cluster/metrics" && !strings.Contains(buf.String(), `worker="beagled"`) {
			t.Errorf("cluster view lacks the self worker label:\n%s", truncate(buf.String(), 400))
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
