package serve

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testNewick builds a balanced rooted binary tree over tips t0..t{n-1} with
// deterministic branch lengths.
func testNewick(tips int) string {
	var build func(lo, hi int, depth int) string
	build = func(lo, hi, depth int) string {
		if hi-lo == 1 {
			return fmt.Sprintf("t%d:%.3f", lo, 0.05+0.01*float64(lo%7))
		}
		mid := (lo + hi) / 2
		return fmt.Sprintf("(%s,%s):%.3f", build(lo, mid, depth+1), build(mid, hi, depth+1), 0.02+0.015*float64(depth%5))
	}
	// The root has no branch length: strip the trailing ":len".
	s := build(0, tips, 0)
	if i := strings.LastIndex(s, ")"); i >= 0 {
		s = s[:i+1]
	}
	return s + ";"
}

// testRequest builds a deterministic nucleotide request.
func testRequest(tips, sites int, seed int64, gamma bool) *EvaluateRequest {
	rng := rand.New(rand.NewSource(seed))
	const alphabet = "ACGT-"
	seqs := map[string]string{}
	for t := 0; t < tips; t++ {
		var sb strings.Builder
		for s := 0; s < sites; s++ {
			// Mostly real bases with occasional gaps.
			idx := rng.Intn(len(alphabet) + 15)
			if idx >= len(alphabet) {
				idx = idx % 4
			}
			sb.WriteByte(alphabet[idx])
		}
		seqs[fmt.Sprintf("t%d", t)] = sb.String()
	}
	req := &EvaluateRequest{
		Newick:    testNewick(tips),
		Model:     ModelSpec{Type: "HKY85", Kappa: 2.5, Frequencies: []float64{0.3, 0.2, 0.2, 0.3}},
		Sequences: seqs,
	}
	if gamma {
		req.Gamma = &GammaSpec{Alpha: 0.7, Categories: 4}
	}
	return req
}

func newTestServer(t *testing.T, mutate func(*Options)) *Server {
	t.Helper()
	opts := DefaultOptions()
	opts.Window = time.Millisecond
	opts.Threads = 1
	if mutate != nil {
		mutate(&opts)
	}
	s := NewServer(opts)
	t.Cleanup(s.Close)
	return s
}

func evaluate(t *testing.T, s *Server, req *EvaluateRequest) *EvaluateResponse {
	t.Helper()
	resp, code, err := s.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatalf("Evaluate: %v (code %d)", err, code)
	}
	return resp
}

// TestServedMatchesDirect is the core correctness property of the serving
// layer: a request evaluated through the pooled, slot-carved, micro-batched
// path returns bit-identical results to a dedicated one-request instance.
func TestServedMatchesDirect(t *testing.T) {
	pooled := newTestServer(t, nil)
	direct := newTestServer(t, func(o *Options) { o.DisablePool = true })

	for _, tc := range []struct {
		tips, sites int
		gamma       bool
		deriv       bool
		site        bool
	}{
		{4, 40, false, false, false},
		{7, 100, true, false, true},  // odd tip count exercises bucket padding
		{12, 300, true, true, true},  // pattern padding + derivatives
		{16, 64, false, true, false}, // exact tip bucket
		{5, 1, true, false, true},    // single site
	} {
		req := testRequest(tc.tips, tc.sites, int64(tc.tips*1000+tc.sites), tc.gamma)
		req.SiteLogLikelihoods = tc.site
		req.EdgeDerivatives = tc.deriv

		got := evaluate(t, pooled, req)
		want := evaluate(t, direct, req)

		if got.LogLikelihood != want.LogLikelihood {
			t.Errorf("tips=%d sites=%d: pooled lnL = %v, direct = %v (must be bit-identical)",
				tc.tips, tc.sites, got.LogLikelihood, want.LogLikelihood)
		}
		if got.Patterns != want.Patterns || got.Sites != tc.sites {
			t.Errorf("tips=%d sites=%d: patterns/sites mismatch: %+v vs %+v", tc.tips, tc.sites, got, want)
		}
		if tc.site {
			if len(got.SiteLogLikelihoods) != tc.sites {
				t.Fatalf("site lnLs: got %d, want %d", len(got.SiteLogLikelihoods), tc.sites)
			}
			for i := range got.SiteLogLikelihoods {
				if got.SiteLogLikelihoods[i] != want.SiteLogLikelihoods[i] {
					t.Errorf("site %d lnL = %v, direct = %v", i, got.SiteLogLikelihoods[i], want.SiteLogLikelihoods[i])
					break
				}
			}
		}
		if tc.deriv {
			if got.D1 != want.D1 || got.D2 != want.D2 || got.RootBranch != want.RootBranch {
				t.Errorf("derivatives: pooled (%v,%v,%v), direct (%v,%v,%v)",
					got.D1, got.D2, got.RootBranch, want.D1, want.D2, want.RootBranch)
			}
		}
	}
}

// TestSinglePrecisionServed exercises the single-precision pool key.
func TestSinglePrecisionServed(t *testing.T) {
	pooled := newTestServer(t, nil)
	direct := newTestServer(t, func(o *Options) { o.DisablePool = true })
	req := testRequest(6, 80, 99, true)
	req.Precision = "single"
	got := evaluate(t, pooled, req)
	want := evaluate(t, direct, req)
	if got.LogLikelihood != want.LogLikelihood {
		t.Fatalf("single-precision pooled lnL = %v, direct = %v", got.LogLikelihood, want.LogLikelihood)
	}
	if !strings.HasSuffix(got.Pool.Key, "/s") {
		t.Fatalf("pool key %q should carry the single-precision suffix", got.Pool.Key)
	}
}

// TestPoolWarmHit verifies the second request of a shape hits the warm
// calculator.
func TestPoolWarmHit(t *testing.T) {
	s := newTestServer(t, nil)
	req := testRequest(8, 120, 7, true)
	first := evaluate(t, s, req)
	if first.Pool.Hit {
		t.Fatalf("first request reported a pool hit")
	}
	second := evaluate(t, s, req)
	if !second.Pool.Hit {
		t.Fatalf("second request of the same shape missed the warm pool")
	}
	if first.LogLikelihood != second.LogLikelihood {
		t.Fatalf("repeat evaluation drifted: %v vs %v", first.LogLikelihood, second.LogLikelihood)
	}
	st := s.pool.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("pool stats = %d hits / %d misses, want 1/1", st.Hits, st.Misses)
	}
}

// TestPoolLRUEviction verifies the calculator cap evicts the least recently
// used shape and that an evicted shape still evaluates correctly when it
// returns.
func TestPoolLRUEviction(t *testing.T) {
	s := newTestServer(t, func(o *Options) { o.MaxCalculators = 2 })
	reqA := testRequest(4, 30, 1, false)  // t4/p64
	reqB := testRequest(12, 30, 2, false) // t16/p64
	reqC := testRequest(4, 300, 3, false) // t4/p256 (distinct pattern bucket)

	lnlA := evaluate(t, s, reqA).LogLikelihood
	evaluate(t, s, reqB)
	evaluate(t, s, reqC) // evicts A's calculator

	st := s.pool.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Calculators != 2 {
		t.Fatalf("calculators = %d, want 2", st.Calculators)
	}

	// A's shape was evicted: re-requesting it must miss, rebuild and agree.
	again := evaluate(t, s, reqA)
	if again.Pool.Hit {
		t.Fatalf("evicted shape reported a warm hit")
	}
	if again.LogLikelihood != lnlA {
		t.Fatalf("post-eviction lnL = %v, want %v", again.LogLikelihood, lnlA)
	}
}

// TestConcurrentServedBitIdentical hammers the pooled server from many
// goroutines with a mix of shapes and verifies — under the race detector —
// that every response is bit-identical to a dedicated instance. This is the
// micro-batching soundness test: coalesced requests must not contaminate each
// other through the shared instance's global state.
func TestConcurrentServedBitIdentical(t *testing.T) {
	pooled := newTestServer(t, func(o *Options) {
		o.Window = 2 * time.Millisecond
		o.InitialSlots = 2 // force golden-ratio growth under load
	})
	direct := newTestServer(t, func(o *Options) { o.DisablePool = true })

	type variant struct {
		req  *EvaluateRequest
		want float64
	}
	var variants []variant
	for i := 0; i < 4; i++ {
		req := testRequest(4+3*i, 50+40*i, int64(i), i%2 == 0)
		variants = append(variants, variant{req, evaluate(t, direct, req).LogLikelihood})
	}

	const workers = 16
	const perWorker = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v := variants[(w+i)%len(variants)]
				resp, code, err := pooled.Evaluate(context.Background(), v.req)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v (code %d)", w, err, code)
					return
				}
				if resp.LogLikelihood != v.want {
					errs <- fmt.Errorf("worker %d: lnL %v, want %v (batched=%d slot=%d)",
						w, resp.LogLikelihood, v.want, resp.Pool.Batched, resp.Pool.Slot)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Under concurrency at least some requests must have shared a batch,
	// otherwise this test exercises nothing.
	st := pooled.pool.Stats()
	var batched uint64
	for _, c := range st.PerKey {
		if c.Requests > c.Batches {
			batched++
		}
	}
	t.Logf("pool after load: %+v", st)
}

// TestQuotaRejects verifies per-tenant token buckets reject over-quota
// tenants with a retry hint while leaving other tenants untouched.
func TestQuotaRejects(t *testing.T) {
	tb := NewTokenBuckets(1, 2)
	now := time.Now()
	for i := 0; i < 2; i++ {
		if ok, _ := tb.Allow("a", now); !ok {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	ok, retry := tb.Allow("a", now)
	if ok {
		t.Fatalf("over-burst request admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retry)
	}
	if ok, _ := tb.Allow("b", now); !ok {
		t.Fatalf("tenant b throttled by tenant a's quota")
	}
	// A refilled bucket admits again.
	if ok, _ := tb.Allow("a", now.Add(1100*time.Millisecond)); !ok {
		t.Fatalf("refilled bucket still rejecting")
	}
}

// TestSubmitAdmissionControl verifies the bounded queue fails fast (mapped to
// 429 by the handler) and a closed calculator rejects with errClosed.
func TestSubmitAdmissionControl(t *testing.T) {
	c := &Calculator{
		queue:   make(chan *job, 1),
		closing: make(chan struct{}),
		closed:  make(chan struct{}),
	}
	if err := c.submit(&job{done: make(chan struct{})}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if err := c.submit(&job{done: make(chan struct{})}); err != errQueueFull {
		t.Fatalf("full-queue submit = %v, want errQueueFull", err)
	}
	c.once.Do(func() { close(c.closing) })
	if err := c.submit(&job{done: make(chan struct{})}); err != errClosed {
		t.Fatalf("closed submit = %v, want errClosed", err)
	}
}

// TestHTTPEndpoints exercises the wire surface: evaluate round-trip, health,
// metrics exposition, quota 429 and malformed-request 400.
func TestHTTPEndpoints(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.QuotaRPS = 0.001 // one token refills every ~17 minutes
		o.QuotaBurst = 2
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := `{"newick":"((a:0.1,b:0.2):0.1,(c:0.15,d:0.05):0.2);",` +
		`"model":{"type":"JC69"},` +
		`"sequences":{"a":"ACGTAC","b":"ACGTTC","c":"AGGTAC","d":"ACCTAC"}}`
	post := func(tenant string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/evaluate", strings.NewReader(body))
		req.Header.Set("X-Beagle-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		return resp
	}

	for i := 0; i < 2; i++ {
		resp := post("alice")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("evaluate %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := post("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
	resp.Body.Close()
	if resp = post("bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant bob status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatalf("POST garbage: %v", err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	for _, path := range []string{"/v1/health", "/metrics", "/debug/vars", "/debug/trace"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The metrics exposition must carry the beagled_ families.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	mresp.Body.Close()
	for _, want := range []string{"beagled_requests_total", "beagled_pool_hits_total", "beagled_rejected_total"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestValidationErrors verifies malformed evaluates map to 422.
func TestValidationErrors(t *testing.T) {
	s := newTestServer(t, func(o *Options) { o.MaxTips = 8 })
	for name, req := range map[string]*EvaluateRequest{
		"bad newick":    {Newick: "((a:0.1,", Model: ModelSpec{Type: "JC69"}},
		"no sequences":  {Newick: "(a:0.1,b:0.2);", Model: ModelSpec{Type: "JC69"}},
		"bad model":     {Newick: "(a:0.1,b:0.2);", Model: ModelSpec{Type: "nope"}, Sequences: map[string]string{"a": "A", "b": "C"}},
		"ragged":        {Newick: "(a:0.1,b:0.2);", Model: ModelSpec{Type: "JC69"}, Sequences: map[string]string{"a": "AC", "b": "C"}},
		"too many tips": testRequest(9, 10, 1, false),
		"bad precision": {Newick: "(a:0.1,b:0.2);", Model: ModelSpec{Type: "JC69"}, Precision: "half", Sequences: map[string]string{"a": "A", "b": "C"}},
	} {
		_, code, err := s.Evaluate(context.Background(), req)
		if err == nil {
			t.Errorf("%s: no error", name)
			continue
		}
		if code != http.StatusUnprocessableEntity {
			t.Errorf("%s: code = %d, want 422", name, code)
		}
	}
}

// TestPoolKeyBucketing pins the bucketing rules the pool relies on.
func TestPoolKeyBucketing(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 64}, {64, 64}, {65, 128}, {1000, 1024},
	} {
		if got := bucketPatterns(tc.in); got != tc.want {
			t.Errorf("bucketPatterns(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, tc := range []struct{ in, want int }{
		{2, 8}, {8, 8}, {9, 16}, {100, 128},
	} {
		if got := bucketTips(tc.in); got != tc.want {
			t.Errorf("bucketTips(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
