package serve

import (
	"sort"

	"gobeagle/internal/metricsx"
	"gobeagle/internal/trace"
)

// serveSource adapts a Server to the metricsx.Source views, so the daemon's
// /metrics and /debug endpoints render through the same exporter the
// per-instance debug server uses.
type serveSource struct{ s *Server }

func (src serveSource) Metrics() []metricsx.Sample {
	s := src.s
	pool := s.pool.Stats()
	samples := []metricsx.Sample{
		{Name: "beagled_requests_total", Help: "evaluate requests admitted", Type: "counter",
			Value: float64(s.requests.Load())},
		{Name: "beagled_rejected_total", Help: "evaluate requests rejected before execution", Type: "counter",
			Labels: map[string]string{"reason": "queue_full"}, Value: float64(s.rejectQueue.Load())},
		{Name: "beagled_rejected_total", Type: "counter",
			Labels: map[string]string{"reason": "quota"}, Value: float64(s.rejectQuota.Load())},
		{Name: "beagled_rejected_total", Type: "counter",
			Labels: map[string]string{"reason": "bad_request"}, Value: float64(s.badRequests.Load())},
		{Name: "beagled_errors_total", Help: "evaluate requests failed during execution", Type: "counter",
			Value: float64(s.evalErrors.Load())},
		{Name: "beagled_inflight", Help: "requests currently being served", Type: "gauge",
			Value: float64(s.inflight.Load())},
		{Name: "beagled_pool_calculators", Help: "warm calculators currently pooled", Type: "gauge",
			Value: float64(pool.Calculators)},
		{Name: "beagled_pool_hits_total", Help: "pool lookups served by a warm calculator", Type: "counter",
			Value: float64(pool.Hits)},
		{Name: "beagled_pool_misses_total", Help: "pool lookups that built a calculator", Type: "counter",
			Value: float64(pool.Misses)},
		{Name: "beagled_pool_evictions_total", Help: "calculators evicted by the LRU cap", Type: "counter",
			Value: float64(pool.Evictions)},
		{Name: "beagled_eigen_cache_hits_total", Help: "eigendecompositions served from the model cache", Type: "counter",
			Value: float64(s.eigenHits.Load())},
		{Name: "beagled_eigen_cache_misses_total", Help: "eigendecompositions computed on cache miss", Type: "counter",
			Value: float64(s.eigenMisses.Load())},
		{Name: "beagled_slow_retained", Help: "requests retained by the tail-latency sampler", Type: "gauge",
			Value: float64(len(s.slow.Snapshot()))},
		{Name: "beagled_trace_spans", Help: "spans currently retained by the serve-layer tracer", Type: "gauge",
			Value: float64(len(s.tracer.Snapshot()))},
	}
	for _, c := range pool.PerKey {
		labels := map[string]string{"key": c.Key}
		samples = append(samples,
			metricsx.Sample{Name: "beagled_calc_slots", Help: "slot capacity per warm calculator",
				Type: "gauge", Labels: labels, Value: float64(c.Slots)},
			metricsx.Sample{Name: "beagled_calc_batches_total", Help: "merged scheduler submissions per calculator",
				Type: "counter", Labels: labels, Value: float64(c.Batches)},
			metricsx.Sample{Name: "beagled_calc_requests_total", Help: "requests served per calculator",
				Type: "counter", Labels: labels, Value: float64(c.Requests)},
			metricsx.Sample{Name: "beagled_calc_batch_fill", Help: "mean requests coalesced per batch",
				Type: "gauge", Labels: labels, Value: c.BatchFill},
			metricsx.Sample{Name: "beagled_calc_grows_total", Help: "golden-ratio slot growths per calculator",
				Type: "counter", Labels: labels, Value: float64(c.Grows)},
			metricsx.Sample{Name: "beagled_calc_rebuilds_total", Help: "instance rebuilds per calculator",
				Type: "counter", Labels: labels, Value: float64(c.Rebuilds)},
			metricsx.Sample{Name: "beagled_calc_errors_total", Help: "failed requests per calculator",
				Type: "counter", Labels: labels, Value: float64(c.Errors)},
			metricsx.Sample{Name: "beagled_calc_queue_depth", Help: "requests waiting in the admission queue",
				Type: "gauge", Labels: labels, Value: float64(c.QueueLen)},
		)
	}
	return samples
}

func (src serveSource) Vars() map[string]any {
	s := src.s
	return map[string]any{
		"requests":           s.requests.Load(),
		"rejected_queue":     s.rejectQueue.Load(),
		"rejected_quota":     s.rejectQuota.Load(),
		"bad_requests":       s.badRequests.Load(),
		"eval_errors":        s.evalErrors.Load(),
		"inflight":           s.inflight.Load(),
		"eigen_cache_hits":   s.eigenHits.Load(),
		"eigen_cache_misses": s.eigenMisses.Load(),
		"pool":               s.pool.Stats(),
		"window_us":          s.opts.Window.Microseconds(),
		"max_batch":          s.opts.MaxBatch,
		"quota_rps":          s.opts.QuotaRPS,
		"pool_disabled":      s.opts.DisablePool,
	}
}

// RebalanceEvents is per-instance state; the serving layer has none.
func (src serveSource) RebalanceEvents() any { return nil }

// traceKindSummary mirrors the shape of the instance debug server's
// /debug/trace rows for the serve-layer tracer.
type traceKindSummary struct {
	Kind    string `json:"kind"`
	Layer   string `json:"layer"`
	Count   int    `json:"count"`
	TotalNs int64  `json:"total_ns"`
}

func (src serveSource) TraceSummary() any {
	byKind := map[trace.Kind]*traceKindSummary{}
	for _, sp := range src.s.tracer.Snapshot() {
		sum := byKind[sp.Kind]
		if sum == nil {
			sum = &traceKindSummary{Kind: sp.Kind.String(), Layer: sp.Kind.Layer().String()}
			byKind[sp.Kind] = sum
		}
		sum.Count++
		sum.TotalNs += sp.Dur
	}
	out := make([]traceKindSummary, 0, len(byKind))
	for _, sum := range byKind {
		out = append(out, *sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}
