package serve

import (
	"fmt"
	"testing"
	"time"
)

// TestQuotaMapHardBound hammers the bucket table with far more distinct,
// permanently-active tenants than maxTenants and requires the map to stay
// at the cap. This is the regression test for the unbounded-growth bug:
// prune only deletes buckets idle back to full burst, so under sustained
// unique-tenant traffic it deleted nothing while every new tenant was still
// inserted.
func TestQuotaMapHardBound(t *testing.T) {
	// Burst 1 and a near-zero refill rate: one request drains each bucket
	// and no bucket ever refills within the test, so prune can never delete
	// anything — exactly the adversarial case that used to grow unboundedly.
	tb := NewTokenBuckets(0.001, 1)
	now := time.Unix(0, 0)
	for i := 0; i < 3*maxTenants; i++ {
		now = now.Add(time.Millisecond)
		tb.Allow(fmt.Sprintf("tenant-%d", i), now)
		if n := len(tb.m); n > maxTenants {
			t.Fatalf("after %d distinct tenants the map holds %d entries (cap %d)", i+1, n, maxTenants)
		}
	}
	if n := len(tb.m); n != maxTenants {
		t.Fatalf("map holds %d entries, want exactly the cap %d", n, maxTenants)
	}
}

// TestQuotaEvictionPrefersStalest pins which bucket the hard bound sacrifices:
// the one untouched the longest.
func TestQuotaEvictionPrefersStalest(t *testing.T) {
	tb := NewTokenBuckets(0.001, 1) // refill too slow for prune to act; only eviction can make room
	base := time.Unix(0, 0)
	// Fill to the cap with drained buckets, each touched one ms after the
	// previous, so tenant-0 is the stalest.
	for i := 0; i < maxTenants; i++ {
		tb.Allow(fmt.Sprintf("tenant-%d", i), base.Add(time.Duration(i)*time.Millisecond))
	}
	tb.Allow("newcomer", base.Add(time.Duration(maxTenants)*time.Millisecond))
	if _, ok := tb.m["tenant-0"]; ok {
		t.Fatal("stalest tenant survived the eviction")
	}
	if _, ok := tb.m["newcomer"]; !ok {
		t.Fatal("newcomer was not inserted")
	}
	if _, ok := tb.m["tenant-1"]; !ok {
		t.Fatal("eviction removed more than the stalest bucket")
	}
}

// TestQuotaPruneAtCap pins prune's intended semantics: buckets that have
// refilled to full burst are dropped (losslessly — a fresh bucket is
// identical), active ones survive.
func TestQuotaPruneAtCap(t *testing.T) {
	tb := NewTokenBuckets(10, 5)
	base := time.Unix(0, 0)
	for i := 0; i < maxTenants; i++ {
		tb.Allow(fmt.Sprintf("tenant-%d", i), base)
	}
	// An hour later every bucket has long refilled to burst; the next new
	// tenant triggers prune, which must clear them all rather than evict.
	later := base.Add(time.Hour)
	tb.Allow("fresh", later)
	if n := len(tb.m); n != 1 {
		t.Fatalf("prune left %d buckets; refilled buckets must all be dropped", n)
	}
	if _, ok := tb.m["fresh"]; !ok {
		t.Fatal("new tenant missing after prune")
	}
}

// TestQuotaRetryAfterBounds pins the 429 Retry-After contract: a rejection
// never reports a zero wait, and deeper token deficits report monotonically
// longer waits.
func TestQuotaRetryAfterBounds(t *testing.T) {
	tb := NewTokenBuckets(2, 3) // 2 tokens/sec, burst 3
	now := time.Unix(100, 0)
	for i := 0; i < 3; i++ {
		ok, retry := tb.Allow("t", now)
		if !ok || retry != 0 {
			t.Fatalf("burst request %d: ok=%v retry=%v", i, ok, retry)
		}
	}
	var prev time.Duration
	for i := 0; i < 5; i++ {
		ok, retry := tb.Allow("t", now)
		if ok {
			t.Fatalf("rejection %d admitted", i)
		}
		if retry <= 0 {
			t.Fatalf("rejection %d: Retry-After %v must be positive — a 0 tells the client to retry immediately and busy-loop", i, retry)
		}
		if retry < prev {
			t.Fatalf("rejection %d: Retry-After %v shrank from %v despite a deeper deficit", i, retry, prev)
		}
		prev = retry
	}
	// First rejection at exactly zero tokens needs 1/rate seconds.
	tb2 := NewTokenBuckets(2, 1)
	tb2.Allow("u", now)
	_, retry := tb2.Allow("u", now)
	if want := 500 * time.Millisecond; retry != want {
		t.Fatalf("Retry-After %v, want %v at a one-token deficit and 2 tokens/sec", retry, want)
	}
	// After waiting the advertised time, the request must be admitted.
	ok, _ := tb2.Allow("u", now.Add(retry))
	if !ok {
		t.Fatal("request rejected after waiting the advertised Retry-After")
	}
}
