package serve

import (
	"context"
	"net"
	"testing"
	"time"
)

// TestHTTPTimeoutDefaults pins that NewServer fills the anti-slowloris
// timeouts: a zero-valued Options must not produce an http.Server that waits
// on client headers forever.
func TestHTTPTimeoutDefaults(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	o := s.Options()
	if o.ReadHeaderTimeout <= 0 {
		t.Fatalf("ReadHeaderTimeout = %v, must default to a positive bound", o.ReadHeaderTimeout)
	}
	if o.IdleTimeout <= 0 {
		t.Fatalf("IdleTimeout = %v, must default to a positive bound", o.IdleTimeout)
	}
	s2 := NewServer(Options{ReadHeaderTimeout: time.Second, IdleTimeout: 3 * time.Second})
	defer s2.Close()
	if o2 := s2.Options(); o2.ReadHeaderTimeout != time.Second || o2.IdleTimeout != 3*time.Second {
		t.Fatalf("explicit timeouts not honored: %+v", o2)
	}
}

// TestSlowlorisConnectionDropped is the regression test for the untimeouted
// http.Server: a client that opens a connection, trickles a partial request
// line and then stalls must be disconnected once ReadHeaderTimeout elapses,
// instead of pinning a connection and goroutine forever.
func TestSlowlorisConnectionDropped(t *testing.T) {
	s := NewServer(Options{ReadHeaderTimeout: 200 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe(ctx, "127.0.0.1:0", ready) }()
	addr := <-ready

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /v1/evaluate HTTP/1.1\r\nHost: x\r\nX-Slow:")); err != nil {
		t.Fatal(err)
	}
	// Stall mid-header. The server must hang up on its own; the read
	// deadline here is only the test's failure bound, far above the
	// configured 200 ms header timeout.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("stalled-header connection produced a response body")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never dropped the stalled-header connection (slowloris regression)")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("connection dropped only after %v", waited)
	}

	cancel()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
