package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/engine"
	"gobeagle/internal/remoteimpl"
	"gobeagle/internal/trace"
)

// TestServedDistributedBitIdentical wires Options.Workers (the beagled
// -workers flag) end to end: pooled calculators shard their patterns across
// an in-process beagleworker and the served log likelihood must stay
// bit-identical to the local-only pooled path.
func TestServedDistributedBitIdentical(t *testing.T) {
	worker, err := remoteimpl.NewWorker(remoteimpl.WorkerOptions{
		Builder: func(g remoteimpl.Geometry, tr *trace.Tracer) (engine.Engine, error) {
			cfg := g.Config()
			cfg.Trace = tr
			return cpuimpl.New(cfg, cpuimpl.Serial)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		worker.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})

	local := newTestServer(t, nil)
	dist := newTestServer(t, func(o *Options) { o.Workers = []string{ln.Addr().String()} })

	for seed := int64(0); seed < 3; seed++ {
		req := testRequest(6, 120, 40+seed, seed%2 == 0)
		req.SiteLogLikelihoods = true
		want := evaluate(t, local, req)
		got := evaluate(t, dist, req)
		if got.LogLikelihood != want.LogLikelihood {
			t.Fatalf("seed %d: distributed served lnL %v != local %v (must be bit-identical)",
				seed, got.LogLikelihood, want.LogLikelihood)
		}
		for i := range want.SiteLogLikelihoods {
			if got.SiteLogLikelihoods[i] != want.SiteLogLikelihoods[i] {
				t.Fatalf("seed %d: site %d differs", seed, i)
			}
		}
	}
}

// TestServedDistributedTraceStitched runs the traced distributed path in
// process: served requests shard onto a real (in-process) beagleworker, and
// /debug/trace.json must render ONE document where the worker's engine spans
// appear on their own "remote worker" process track and share request ids
// with the serve-side spans.
func TestServedDistributedTraceStitched(t *testing.T) {
	worker, err := remoteimpl.NewWorker(remoteimpl.WorkerOptions{
		Builder: func(g remoteimpl.Geometry, tr *trace.Tracer) (engine.Engine, error) {
			cfg := g.Config()
			cfg.Trace = tr
			return cpuimpl.New(cfg, cpuimpl.Serial)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		worker.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})

	s := newTestServer(t, func(o *Options) {
		o.Trace = true
		o.Workers = []string{ln.Addr().String()}
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for seed := int64(0); seed < 3; seed++ {
		req := testRequest(6, 120, 60+seed, false)
		req.RequestID = fmt.Sprintf("dist-%d", seed)
		resp := postEvaluate(t, ts, req, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
	}
	time.Sleep(20 * time.Millisecond)

	hresp, err := ts.Client().Get(ts.URL + "/debug/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace.json: %v", err)
	}

	workerPids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			if args, ok := ev["args"].(map[string]any); ok {
				if name, _ := args["name"].(string); strings.HasPrefix(name, "remote worker") {
					workerPids[int(ev["pid"].(float64))] = true
				}
			}
		}
	}
	if len(workerPids) == 0 {
		t.Fatal("trace.json has no remote worker process track")
	}

	// At least one request id must appear both on a worker pid and a
	// non-worker (serve/engine) pid — the stitch the whole feature exists for.
	pidsByReq := map[float64]map[bool]bool{} // req -> {onWorker} set
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			continue
		}
		args, ok := ev["args"].(map[string]any)
		if !ok {
			continue
		}
		req, ok := args["req"].(float64)
		if !ok || req == 0 {
			continue
		}
		if pidsByReq[req] == nil {
			pidsByReq[req] = map[bool]bool{}
		}
		pidsByReq[req][workerPids[int(ev["pid"].(float64))]] = true
	}
	stitched := 0
	for _, sides := range pidsByReq {
		if sides[true] && sides[false] {
			stitched++
		}
	}
	if stitched == 0 {
		t.Fatalf("no request id spans both serve and worker processes (reqs seen: %d)", len(pidsByReq))
	}
}
