package serve

import (
	"context"
	"net"
	"testing"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/engine"
	"gobeagle/internal/remoteimpl"
)

// TestServedDistributedBitIdentical wires Options.Workers (the beagled
// -workers flag) end to end: pooled calculators shard their patterns across
// an in-process beagleworker and the served log likelihood must stay
// bit-identical to the local-only pooled path.
func TestServedDistributedBitIdentical(t *testing.T) {
	worker, err := remoteimpl.NewWorker(remoteimpl.WorkerOptions{
		Builder: func(g remoteimpl.Geometry) (engine.Engine, error) {
			return cpuimpl.New(g.Config(), cpuimpl.Serial)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		worker.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})

	local := newTestServer(t, nil)
	dist := newTestServer(t, func(o *Options) { o.Workers = []string{ln.Addr().String()} })

	for seed := int64(0); seed < 3; seed++ {
		req := testRequest(6, 120, 40+seed, seed%2 == 0)
		req.SiteLogLikelihoods = true
		want := evaluate(t, local, req)
		got := evaluate(t, dist, req)
		if got.LogLikelihood != want.LogLikelihood {
			t.Fatalf("seed %d: distributed served lnL %v != local %v (must be bit-identical)",
				seed, got.LogLikelihood, want.LogLikelihood)
		}
		for i := range want.SiteLogLikelihoods {
			if got.SiteLogLikelihoods[i] != want.SiteLogLikelihoods[i] {
				t.Fatalf("seed %d: site %d differs", seed, i)
			}
		}
	}
}
