package serve

// SlotAllocator hands out slot ids within a warm calculator instance,
// following the OnlineCalculator pattern from sts: freed ids are recycled
// LIFO before fresh ids are minted, and when the id space is exhausted the
// caller grows it by the golden ratio. Each id names one contiguous region
// of the shared instance's partials, matrix and eigen buffer spaces.
//
// The allocator is plain data; the owning calculator serializes access.
type SlotAllocator struct {
	capacity int
	next     int
	free     []int // LIFO stack of recycled ids
}

// GoldenRatio is the growth factor applied when the slot space is exhausted,
// as the sts exemplar grows its partials-buffer space.
const GoldenRatio = 1.61803398875

// NewSlotAllocator returns an allocator over ids [0, capacity).
func NewSlotAllocator(capacity int) *SlotAllocator {
	if capacity < 1 {
		capacity = 1
	}
	return &SlotAllocator{capacity: capacity}
}

// Capacity returns the current id-space size.
func (a *SlotAllocator) Capacity() int { return a.capacity }

// InUse returns the number of ids currently handed out.
func (a *SlotAllocator) InUse() int { return a.next - len(a.free) }

// Get returns a slot id, preferring the most recently freed id (LIFO — the
// warmest buffers), or -1 when the id space is exhausted; the caller then
// either waits for a Free or Grows the allocator.
func (a *SlotAllocator) Get() int {
	if n := len(a.free); n > 0 {
		id := a.free[n-1]
		a.free = a.free[:n-1]
		return id
	}
	if a.next == a.capacity {
		return -1
	}
	id := a.next
	a.next++
	return id
}

// Free returns an id to the recycle stack. Freeing an id that was never
// handed out corrupts the allocator; callers own that invariant.
func (a *SlotAllocator) Free(id int) {
	a.free = append(a.free, id)
}

// Grow expands the id space by the golden ratio (at least one id) and
// returns the new capacity. The caller rebuilds the backing instance to
// match before handing out the new ids.
func (a *SlotAllocator) Grow() int {
	grown := int(float64(a.capacity) * GoldenRatio)
	if grown <= a.capacity {
		grown = a.capacity + 1
	}
	a.capacity = grown
	return a.capacity
}
