package serve

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsExpositionStable pins the /metrics Prometheus exposition to be
// byte-identical across two scrapes of an idle daemon. Every map in the path
// from pool snapshot to text rendering (per-key calculator stats, sample
// labels) must therefore be emitted in a sorted order; any reintroduced map
// iteration shows up here as a flaky diff long before it confuses a scrape
// differ in production.
func TestMetricsExpositionStable(t *testing.T) {
	s := newTestServer(t, nil)

	// Evaluate a couple of distinct shapes first so the exposition carries
	// several per-calculator label sets — the part of the output that came
	// from map-ordered state before Pool.Stats sorted it.
	evaluate(t, s, testRequest(4, 12, 1, false))
	evaluate(t, s, testRequest(8, 40, 2, true))

	scrape := func() string {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("GET /metrics: status %d", rec.Code)
		}
		return rec.Body.String()
	}

	first := scrape()
	if !strings.Contains(first, "beagled_calc_requests_total") {
		t.Fatalf("exposition carries no per-calculator rows; scrape:\n%s", first)
	}
	for i := 0; i < 8; i++ {
		if next := scrape(); !bytes.Equal([]byte(first), []byte(next)) {
			t.Fatalf("scrape %d differs from first on an idle daemon:\n--- first\n%s\n--- scrape %d\n%s",
				i+2, first, i+2, next)
		}
	}
}
