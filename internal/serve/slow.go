package serve

import (
	"sort"
	"sync"
	"time"
)

// SlowPhase is one timed phase of a retained slow request, offsets relative
// to the request's admission. Nested children decompose a phase further, so
// /debug/slow renders a small span tree per request without needing the full
// tracer export.
type SlowPhase struct {
	Name     string      `json:"name"`
	StartUs  int64       `json:"start_us"`
	DurUs    int64       `json:"dur_us"`
	Children []SlowPhase `json:"children,omitempty"`
}

// SlowEntry is one retained request in the tail-latency sampler.
type SlowEntry struct {
	// RequestID is the wire id echoed to the client; TraceID is the uint64
	// the request's spans carry in args.req of the exported trace.
	RequestID string `json:"request_id"`
	TraceID   uint64 `json:"trace_id"`
	Tenant    string `json:"tenant,omitempty"`
	Key       string `json:"key,omitempty"`
	Status    int    `json:"status"`
	// Batched is how many requests shared the scheduler submission; Batch is
	// the serve-layer batch id linking this entry to KindServeBatch spans.
	Batched int    `json:"batched,omitempty"`
	Batch   uint64 `json:"batch,omitempty"`
	// Start is the wall-clock admission instant; TotalUs the end-to-end
	// latency the entry ranked by.
	Start   time.Time   `json:"start"`
	TotalUs int64       `json:"total_us"`
	Phases  []SlowPhase `json:"phases,omitempty"`
}

// SlowSampler retains the N slowest observed requests by total latency — the
// tail a latency histogram can only count. Observation is O(N) under one
// mutex with N small (default 16), off every fast path until a request has
// already finished.
type SlowSampler struct {
	mu      sync.Mutex
	n       int
	entries []SlowEntry
}

// NewSlowSampler builds a sampler retaining the n slowest requests.
func NewSlowSampler(n int) *SlowSampler {
	if n <= 0 {
		n = 1
	}
	return &SlowSampler{n: n}
}

// Observe offers one finished request to the sampler.
func (s *SlowSampler) Observe(e SlowEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) < s.n {
		s.entries = append(s.entries, e)
		return
	}
	min := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].TotalUs < s.entries[min].TotalUs {
			min = i
		}
	}
	if e.TotalUs > s.entries[min].TotalUs {
		s.entries[min] = e
	}
}

// Snapshot returns the retained requests, slowest first.
func (s *SlowSampler) Snapshot() []SlowEntry {
	s.mu.Lock()
	out := append([]SlowEntry(nil), s.entries...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalUs != out[j].TotalUs {
			return out[i].TotalUs > out[j].TotalUs
		}
		return out[i].RequestID < out[j].RequestID
	})
	return out
}
