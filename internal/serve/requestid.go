package serve

import (
	"fmt"
	"hash/fnv"
)

// RequestIDHeader is the HTTP header carrying a request's identity. Clients
// may supply their own value; the server generates one otherwise, and echoes
// the effective value on every response — including rejections — so a client
// can correlate any answer, even a 429, with the request that caused it.
const RequestIDHeader = "X-Beagle-Request-Id"

// resolveRequestID maps a client-supplied request id (possibly empty) to the
// effective wire id and the uint64 trace id spans are tagged with. The trace
// id is always the FNV-1a hash of the wire string, so the id printed in logs,
// the header echoed to the client and the args.req field in an exported trace
// all name the same request; it is never zero (zero means "untagged" to the
// tracer).
func (s *Server) resolveRequestID(id string) (string, uint64) {
	if id == "" {
		id = fmt.Sprintf("beagle-%016x", s.reqSeq.Add(1))
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	n := h.Sum64()
	if n == 0 {
		n = 1
	}
	return id, n
}
