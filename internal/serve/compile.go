package serve

import (
	"fmt"
	"hash/fnv"
	"strings"

	"gobeagle/internal/linalg"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// ModelSpec selects a substitution model on the wire. Type is one of JC69,
// K80, HKY85, GTR, GY94, PoissonAA, GTRAA or general; parameters that do not
// apply to a type are ignored.
type ModelSpec struct {
	Type        string    `json:"type"`
	Kappa       float64   `json:"kappa,omitempty"`
	Omega       float64   `json:"omega,omitempty"`
	Rates       []float64 `json:"rates,omitempty"`
	Frequencies []float64 `json:"frequencies,omitempty"`
}

// GammaSpec selects discrete-gamma among-site rate variation.
type GammaSpec struct {
	Alpha      float64 `json:"alpha"`
	Categories int     `json:"categories"`
}

// EvaluateRequest is the POST /v1/evaluate body: one tree, one model, one
// alignment, evaluated to the root log likelihood (optionally per-site log
// likelihoods and the root-branch derivatives).
type EvaluateRequest struct {
	// RequestID names the request for tracing and log correlation; the
	// X-Beagle-Request-Id header takes precedence, and the server generates
	// an id when both are empty. The effective id is echoed in the
	// response header and body.
	RequestID string `json:"request_id,omitempty"`
	// Tenant attributes the request to a quota bucket; the X-Beagle-Tenant
	// header takes precedence. Empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// Newick is the rooted binary tree with branch lengths; tip names must
	// match the sequence keys.
	Newick string    `json:"newick"`
	Model  ModelSpec `json:"model"`
	// Gamma adds discrete-gamma rate categories; nil evaluates a single rate.
	Gamma *GammaSpec `json:"gamma,omitempty"`
	// Sequences maps tip name to an aligned character sequence (IUPAC
	// nucleotide for 4-state models, one-letter amino acid for 20-state).
	Sequences map[string]string `json:"sequences,omitempty"`
	// States maps tip name to raw per-site state indices, for alphabets
	// without a character encoding (codon models). Values ≥ the model's
	// state count denote full ambiguity.
	States map[string][]int `json:"states,omitempty"`
	// Precision is "double" (default) or "single".
	Precision string `json:"precision,omitempty"`
	// SiteLogLikelihoods returns per-site (not per-pattern) root log
	// likelihoods alongside the total.
	SiteLogLikelihoods bool `json:"site_log_likelihoods,omitempty"`
	// EdgeDerivatives also returns d lnL/dt and d² lnL/dt² with respect to
	// the root branch (the summed branch between the root's two children).
	EdgeDerivatives bool `json:"edge_derivatives,omitempty"`
}

// PoolInfo reports how the serving layer executed a request.
type PoolInfo struct {
	// Key is the warm-instance pool key the request mapped to.
	Key string `json:"key"`
	// Hit is true when a warm calculator existed for the key.
	Hit bool `json:"hit"`
	// Batched is the number of requests coalesced into the same scheduler
	// submission (1 = the request ran alone).
	Batched int `json:"batched"`
	// Slot is the calculator slot id the request evaluated in.
	Slot int `json:"slot"`
	// WaitMicros is the queueing delay from admission to batch start.
	WaitMicros int64 `json:"wait_us"`
}

// EvaluateResponse is the POST /v1/evaluate reply.
type EvaluateResponse struct {
	// RequestID is the effective request id (client-supplied or generated),
	// matching the X-Beagle-Request-Id response header.
	RequestID          string    `json:"request_id,omitempty"`
	LogLikelihood      float64   `json:"log_likelihood"`
	SiteLogLikelihoods []float64 `json:"site_log_likelihoods,omitempty"`
	// D1 and D2 are the root-branch log-likelihood derivatives when
	// edge_derivatives was requested; RootBranch is the branch length they
	// were evaluated at (the sum of the root's two child branches).
	D1         float64 `json:"d1,omitempty"`
	D2         float64 `json:"d2,omitempty"`
	RootBranch float64 `json:"root_branch,omitempty"`

	Tips     int      `json:"tips"`
	Sites    int      `json:"sites"`
	Patterns int      `json:"patterns"`
	Pool     PoolInfo `json:"pool"`
}

// compiled is a fully validated, instance-ready form of one request: the
// tree schedule, eigendecomposition, rate mixture and compressed patterns.
type compiled struct {
	key        PoolKey
	tips       int
	patterns   int // exact pattern count before bucket padding
	sites      int
	eigen      *linalg.EigenDecomposition
	freqs      []float64
	rates      []float64
	catWeights []float64
	tipStates  [][]int // [tip][pattern], exact length patterns
	weights    []float64
	sched      *tree.Schedule
	rootLeft   int
	rootRight  int
	rootLen    float64
	siteOf     []int // site -> pattern index
	wantSite   bool
	wantDeriv  bool
}

// buildModel constructs the substitution model named by the spec.
func buildModel(spec ModelSpec) (*substmodel.Model, error) {
	switch strings.ToUpper(spec.Type) {
	case "JC69":
		return substmodel.NewJC69(), nil
	case "K80":
		return substmodel.NewK80(spec.Kappa)
	case "HKY85", "":
		freqs := spec.Frequencies
		if freqs == nil {
			freqs = []float64{0.25, 0.25, 0.25, 0.25}
		}
		kappa := spec.Kappa
		if kappa == 0 {
			kappa = 2
		}
		return substmodel.NewHKY85(kappa, freqs)
	case "GTR":
		return substmodel.NewGTR(spec.Rates, spec.Frequencies)
	case "GY94":
		return substmodel.NewGY94(spec.Kappa, spec.Omega, spec.Frequencies)
	case "POISSONAA":
		return substmodel.NewPoissonAA(spec.Frequencies)
	case "GTRAA":
		return substmodel.NewGTRAA(spec.Rates, spec.Frequencies)
	case "GENERAL":
		return substmodel.NewGeneralReversible("general", spec.Rates, spec.Frequencies)
	default:
		return nil, fmt.Errorf("serve: unknown model type %q", spec.Type)
	}
}

// modelHash content-addresses a model spec for the eigen cache: identical
// parameters hash identically across requests (rate categories scale branch
// lengths, not the decomposition, so they stay out of the key).
func modelHash(spec ModelSpec) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%g|%g|%v|%v", strings.ToUpper(spec.Type), spec.Kappa, spec.Omega, spec.Rates, spec.Frequencies)
	return fmt.Sprintf("%016x", h.Sum64())
}

// compressColumns collapses identical alignment columns into unique patterns
// (ordered by first appearance) with multiplicities, returning the
// site-to-pattern mapping used to expand per-pattern results back to sites.
func compressColumns(seqs [][]int, sites int) (patterns [][]int, weights []float64, siteOf []int) {
	tips := len(seqs)
	index := make(map[string]int)
	siteOf = make([]int, sites)
	var sb strings.Builder
	col := make([]int, tips)
	for site := 0; site < sites; site++ {
		sb.Reset()
		for tip := 0; tip < tips; tip++ {
			col[tip] = seqs[tip][site]
			fmt.Fprintf(&sb, "%d,", col[tip])
		}
		k := sb.String()
		p, seen := index[k]
		if !seen {
			p = len(patterns)
			index[k] = p
			patterns = append(patterns, append([]int(nil), col...))
			weights = append(weights, 0)
		}
		weights[p]++
		siteOf[site] = p
	}
	return patterns, weights, siteOf
}

// compile validates a request against the server's limits and produces its
// instance-ready form. The eigendecomposition is served from the content-
// addressed cache when an identical model was compiled before.
func (s *Server) compile(req *EvaluateRequest) (*compiled, error) {
	tr, err := tree.ParseNewick(req.Newick)
	if err != nil {
		return nil, fmt.Errorf("newick: %w", err)
	}
	if tr.TipCount > s.opts.MaxTips {
		return nil, fmt.Errorf("tree has %d tips, server limit is %d", tr.TipCount, s.opts.MaxTips)
	}
	model, err := buildModel(req.Model)
	if err != nil {
		return nil, err
	}

	var rates *substmodel.SiteRates
	if req.Gamma != nil {
		rates, err = substmodel.GammaRates(req.Gamma.Alpha, req.Gamma.Categories)
		if err != nil {
			return nil, err
		}
	} else {
		rates = substmodel.SingleRate()
	}

	seqs, sites, err := decodeSequences(req, tr, model.StateCount)
	if err != nil {
		return nil, err
	}
	patterns, weights, siteOf := compressColumns(seqs, sites)
	if len(patterns) > s.opts.MaxPatterns {
		return nil, fmt.Errorf("alignment compresses to %d patterns, server limit is %d", len(patterns), s.opts.MaxPatterns)
	}

	eigen, err := s.eigenFor(modelHash(req.Model), model)
	if err != nil {
		return nil, err
	}

	single := false
	switch strings.ToLower(req.Precision) {
	case "", "double":
	case "single":
		single = true
	default:
		return nil, fmt.Errorf("precision must be \"double\" or \"single\", got %q", req.Precision)
	}

	tipStates := make([][]int, tr.TipCount)
	for tip := 0; tip < tr.TipCount; tip++ {
		states := make([]int, len(patterns))
		for p, pat := range patterns {
			states[p] = pat[tip]
		}
		tipStates[tip] = states
	}

	c := &compiled{
		key: PoolKey{
			States:     model.StateCount,
			Patterns:   bucketPatterns(len(patterns)),
			Tips:       bucketTips(tr.TipCount),
			Categories: len(rates.Rates),
			Single:     single,
			Flags:      s.opts.Flags,
		},
		tips:       tr.TipCount,
		patterns:   len(patterns),
		sites:      sites,
		eigen:      eigen,
		freqs:      model.Frequencies,
		rates:      rates.Rates,
		catWeights: rates.Weights,
		tipStates:  tipStates,
		weights:    weights,
		sched:      tr.FullSchedule(),
		rootLeft:   tr.Root.Left.Index,
		rootRight:  tr.Root.Right.Index,
		rootLen:    tr.Root.Left.Length + tr.Root.Right.Length,
		siteOf:     siteOf,
		wantSite:   req.SiteLogLikelihoods,
		wantDeriv:  req.EdgeDerivatives,
	}
	return c, nil
}

// decodeSequences turns the request's character sequences or raw state
// indices into per-tip state sequences in tree tip order.
func decodeSequences(req *EvaluateRequest, tr *tree.Tree, stateCount int) ([][]int, int, error) {
	if len(req.Sequences) == 0 && len(req.States) == 0 {
		return nil, 0, fmt.Errorf("request has neither sequences nor states")
	}
	seqs := make([][]int, tr.TipCount)
	sites := -1
	for _, tip := range tr.Tips() {
		name := tip.Name
		var states []int
		if raw, ok := req.States[name]; ok {
			states = make([]int, len(raw))
			for i, v := range raw {
				if v < 0 {
					return nil, 0, fmt.Errorf("tip %q: negative state %d at site %d", name, v, i)
				}
				states[i] = v
			}
		} else if chars, ok := req.Sequences[name]; ok {
			decoded, err := decodeCharacters(chars, stateCount)
			if err != nil {
				return nil, 0, fmt.Errorf("tip %q: %w", name, err)
			}
			states = decoded
		} else {
			return nil, 0, fmt.Errorf("no sequence for tip %q", name)
		}
		if sites == -1 {
			sites = len(states)
		} else if len(states) != sites {
			return nil, 0, fmt.Errorf("tip %q has %d sites, want %d (alignment must be rectangular)", name, len(states), sites)
		}
		seqs[tip.Index] = states
	}
	if sites <= 0 {
		return nil, 0, fmt.Errorf("alignment has no sites")
	}
	return seqs, sites, nil
}

// decodeCharacters maps an aligned character string to state indices via the
// library's FASTA alphabet tables (4 = IUPAC nucleotide, 20 = amino acid).
func decodeCharacters(chars string, stateCount int) ([]int, error) {
	return seqgen.DecodeSequence(chars, stateCount)
}
