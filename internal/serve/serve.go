// Package serve is the likelihood-as-a-service layer: it exposes the
// library's evaluation pipeline over a small JSON wire API, backed by a pool
// of warm instances keyed on problem shape with get/free slot recycling and
// golden-ratio growth (the sts OnlineCalculator pattern), cross-request
// micro-batching that coalesces compatible small queries into the wide
// scheduler submissions the CPU strategies are good at, admission control
// (bounded queues answering 429 on overload) and per-tenant token-bucket
// quotas. cmd/beagled wraps this package in a daemon; internal/benchmarks'
// serve experiment load-tests it against a one-instance-per-request
// baseline.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gobeagle"
	"gobeagle/internal/linalg"
	"gobeagle/internal/metricsx"
	"gobeagle/internal/remoteimpl"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/trace"
)

// Options configures a Server. The zero value is unusable; start from
// DefaultOptions.
type Options struct {
	// Window is how long the micro-batcher holds the first request of a
	// batch open for compatible arrivals; 0 disables the wait (queued
	// requests still coalesce).
	Window time.Duration
	// MaxBatch caps the requests merged into one scheduler submission.
	MaxBatch int
	// InitialSlots is the slot capacity a fresh calculator starts with;
	// bursts grow it by the golden ratio up to MaxBatch.
	InitialSlots int
	// QueueDepth bounds each calculator's admission queue; a full queue
	// answers 429.
	QueueDepth int
	// MaxCalculators bounds the warm pool; beyond it the least recently
	// used calculator is evicted and finalized.
	MaxCalculators int
	// MaxTips and MaxPatterns reject oversized requests with 422 before
	// they reach the pool.
	MaxTips     int
	MaxPatterns int
	// Flags are the instance flags pooled calculators run with (threading
	// strategy etc.); FlagTelemetry is always added.
	Flags gobeagle.Flags
	// Threads bounds each pooled instance's worker threads (0 = all).
	Threads int
	// QuotaRPS and QuotaBurst configure per-tenant token buckets;
	// QuotaRPS ≤ 0 disables quotas.
	QuotaRPS   float64
	QuotaBurst int
	// RequestTimeout bounds how long a request may wait for its batch
	// before answering 503.
	RequestTimeout time.Duration
	// ReadHeaderTimeout bounds how long a client may take to finish sending
	// request headers before the connection is dropped; without it a
	// slowloris client trickling one header byte at a time pins a
	// connection (and its goroutine) forever.
	ReadHeaderTimeout time.Duration
	// IdleTimeout closes keep-alive connections that have sat idle this
	// long, bounding the connection table under churny clients.
	IdleTimeout time.Duration
	// DisablePool evaluates every request on a freshly created, immediately
	// finalized instance — the one-instance-per-request ablation the serve
	// benchmark compares against. Admission control and quotas still apply.
	DisablePool bool
	// Workers lists beagleworker addresses. When non-empty, pooled
	// calculators evaluate on a distributed instance whose site patterns
	// are sharded across the local host and these worker processes (the
	// beagled -workers flag). The workers must be reachable when the first
	// batch builds its instance.
	Workers []string
	// Trace propagates span tracing into pooled instances — and across the
	// wire into worker processes — so /debug/trace.json exports one
	// stitched timeline from HTTP admission down to engine kernels. The
	// serve layer's own spans are always recorded; this switch only
	// controls the engine-side layers, whose disabled path stays one
	// atomic load per instrumented site.
	Trace bool
	// Pprof exposes net/http/pprof under /debug/pprof/ on the server's
	// debug mux (the beagled -pprof flag). Off by default: profiling
	// endpoints are strictly opt-in.
	Pprof bool
	// SlowN is how many slowest requests the tail-latency sampler retains
	// for /debug/slow; 0 means the default (16).
	SlowN int
	// Logger receives structured lifecycle and request-failure logs; nil
	// discards them.
	Logger *slog.Logger
}

// DefaultOptions returns the daemon's default tuning.
func DefaultOptions() Options {
	return Options{
		Window:            2 * time.Millisecond,
		MaxBatch:          32,
		InitialSlots:      4,
		QueueDepth:        1024,
		MaxCalculators:    8,
		MaxTips:           256,
		MaxPatterns:       8192,
		Flags:             gobeagle.FlagThreadingThreadPoolHybrid,
		QuotaRPS:          0,
		QuotaBurst:        64,
		RequestTimeout:    30 * time.Second,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Server is the serving layer: an http.Handler exposing /v1/evaluate and
// /v1/health plus the debug surface (/metrics, /debug/*) through the
// library's metricsx exporter.
type Server struct {
	opts   Options
	pool   *Pool
	quota  *TokenBuckets
	tracer *trace.Tracer
	mux    *http.ServeMux
	start  time.Time
	slow   *SlowSampler
	logger *slog.Logger
	reqSeq atomic.Uint64 // generated request-id sequence

	// fedTargets caches worker address → resolved debug-scrape URL for the
	// /cluster/metrics federation endpoint; failed probes are not cached so
	// a worker whose debug server starts late is still found.
	fedMu      sync.Mutex
	fedTargets map[string]string

	eigenMu     sync.Mutex
	eigenCache  map[string]*linalg.EigenDecomposition
	eigenHits   atomic.Uint64
	eigenMisses atomic.Uint64

	requests    atomic.Uint64 // admitted evaluate requests
	rejectQueue atomic.Uint64 // 429: queue full
	rejectQuota atomic.Uint64 // 429: tenant quota
	badRequests atomic.Uint64 // 4xx parse/validation failures
	evalErrors  atomic.Uint64 // 5xx evaluation failures
	inflight    atomic.Int64
}

// NewServer builds the serving layer. Zero-valued option fields are filled
// from DefaultOptions.
func NewServer(opts Options) *Server {
	def := DefaultOptions()
	if opts.Window < 0 {
		opts.Window = 0
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = def.MaxBatch
	}
	if opts.InitialSlots <= 0 {
		opts.InitialSlots = def.InitialSlots
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = def.QueueDepth
	}
	if opts.MaxCalculators <= 0 {
		opts.MaxCalculators = def.MaxCalculators
	}
	if opts.MaxTips <= 0 {
		opts.MaxTips = def.MaxTips
	}
	if opts.MaxPatterns <= 0 {
		opts.MaxPatterns = def.MaxPatterns
	}
	if opts.QuotaBurst <= 0 {
		opts.QuotaBurst = def.QuotaBurst
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = def.RequestTimeout
	}
	if opts.ReadHeaderTimeout <= 0 {
		opts.ReadHeaderTimeout = def.ReadHeaderTimeout
	}
	if opts.IdleTimeout <= 0 {
		opts.IdleTimeout = def.IdleTimeout
	}
	if opts.SlowN <= 0 {
		opts.SlowN = 16
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	tr := trace.New()
	tr.SetEnabled(true)
	s := &Server{
		opts:       opts,
		tracer:     tr,
		quota:      NewTokenBuckets(opts.QuotaRPS, opts.QuotaBurst),
		start:      time.Now(),
		slow:       NewSlowSampler(opts.SlowN),
		logger:     logger,
		fedTargets: map[string]string{},
		eigenCache: map[string]*linalg.EigenDecomposition{},
	}
	s.pool = NewPool(opts, tr)
	s.mux = s.buildMux()
	return s
}

// Options returns the server's effective (defaulted) options.
func (s *Server) Options() Options { return s.opts }

// Close tears down the pool, finalizing every warm instance.
func (s *Server) Close() { s.pool.Close() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	var muxOpts []metricsx.MuxOption
	if s.opts.Pprof {
		muxOpts = append(muxOpts, metricsx.WithPprof())
	}
	debug := metricsx.NewMux(serveSource{s}, muxOpts...)
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/", debug)
	mux.HandleFunc("/debug/slow", s.handleSlow)
	mux.HandleFunc("/debug/trace.json", s.handleTraceJSON)
	mux.HandleFunc("/cluster/metrics", s.handleClusterMetrics)
	mux.HandleFunc("/v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("/v1/health", s.handleHealth)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "beagled — likelihood-as-a-service")
		fmt.Fprintln(w, "  POST /v1/evaluate      evaluate a tree (JSON)")
		fmt.Fprintln(w, "  GET  /v1/health        liveness and pool summary")
		fmt.Fprintln(w, "  GET  /metrics          Prometheus text metrics")
		fmt.Fprintln(w, "  GET  /cluster/metrics  federated cluster metrics (self + workers)")
		fmt.Fprintln(w, "  GET  /debug/vars       expvar-style JSON variables")
		fmt.Fprintln(w, "  GET  /debug/trace      serve-layer span summary")
		fmt.Fprintln(w, "  GET  /debug/trace.json stitched Chrome trace (serve + engines + workers)")
		fmt.Fprintln(w, "  GET  /debug/slow       slowest retained requests with phase timings")
	})
	return mux
}

// maxBodyBytes bounds an evaluate request body.
const maxBodyBytes = 16 << 20

// errorReply is the JSON error body.
type errorReply struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	// The effective request id is echoed on every response — rejections
	// included — so any answer the client sees, even a 429, names the
	// request that caused it.
	rid := r.Header.Get(RequestIDHeader)
	echo := func() string {
		id, _ := s.resolveRequestID(rid)
		w.Header().Set(RequestIDHeader, id)
		return id
	}
	if r.Method != http.MethodPost {
		echo()
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorReply{"POST only"})
		return
	}
	var req EvaluateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		echo()
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorReply{fmt.Sprintf("decode: %v", err)})
		return
	}
	if rid == "" {
		rid = req.RequestID // body-carried id, for header-less clients
	}
	// Resolve (possibly mint) the effective id up front so the handler owns
	// it for headers and logs; Evaluate maps the same wire string to the
	// same trace id.
	rid, _ = s.resolveRequestID(rid)
	req.RequestID = rid
	tenant := r.Header.Get("X-Beagle-Tenant")
	if tenant == "" {
		tenant = req.Tenant
	}
	if tenant == "" {
		tenant = "default"
	}
	req.Tenant = tenant
	if ok, retry := s.quota.Allow(tenant, time.Now()); !ok {
		id := echo()
		s.rejectQuota.Add(1)
		secs := int(retry/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		s.logger.Debug("request over quota", "request", id, "tenant", tenant)
		writeJSON(w, http.StatusTooManyRequests, errorReply{fmt.Sprintf("tenant %q over quota", tenant)})
		return
	}
	resp, code, err := s.Evaluate(r.Context(), &req)
	w.Header().Set(RequestIDHeader, rid)
	if err != nil {
		s.logger.Warn("evaluate failed",
			"request", rid, "tenant", tenant, "status", code, "err", err.Error())
		writeJSON(w, code, errorReply{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Evaluate runs one request through compilation, admission and the pool (or
// the per-request ablation path), returning the response or an HTTP status
// and error. Exported so in-process clients (benchmarks, tests) can bypass
// HTTP. The request's (possibly empty) RequestID is resolved to the
// effective wire id, returned in the response; every span recorded on the
// request's behalf — down to worker-process kernels when Options.Trace is
// on — carries its trace id. The request struct is never written, so
// callers may share one across concurrent calls.
func (s *Server) Evaluate(ctx context.Context, req *EvaluateRequest) (*EvaluateResponse, int, error) {
	start := time.Now()
	tstart := s.tracer.Now()
	rid, traceID := s.resolveRequestID(req.RequestID)

	// The whole-lifetime span and slow-sampler entry are emitted however the
	// request leaves; the named fields below are filled in along the way.
	status := http.StatusOK
	var j *job
	var key string
	var compileNs int64
	defer func() {
		s.tracer.Record(trace.Span{Kind: trace.KindServeRequest, Lane: -1,
			Start: tstart, Dur: s.tracer.Now() - tstart,
			Arg0: int64(status), Arg1: batchedOf(j), Batch: batchOf(j), Req: traceID})
		entry := SlowEntry{
			RequestID: rid, TraceID: traceID, Tenant: req.Tenant, Key: key,
			Status: status, Batched: int(batchedOf(j)), Batch: batchOf(j),
			Start: start, TotalUs: time.Since(start).Microseconds(),
			Phases: []SlowPhase{{Name: "compile", DurUs: compileNs / 1e3}},
		}
		if jobFinished(j) {
			entry.Phases = append(entry.Phases, SlowPhase{
				Name: "pool", StartUs: compileNs / 1e3,
				DurUs: (j.waitNs + j.runNs) / 1e3,
				Children: []SlowPhase{
					{Name: "queue", StartUs: compileNs / 1e3, DurUs: j.waitNs / 1e3},
					{Name: "run", StartUs: (compileNs + j.waitNs) / 1e3, DurUs: j.runNs / 1e3},
				},
			})
		}
		s.slow.Observe(entry)
	}()

	c, err := s.compile(req)
	compileNs = time.Since(start).Nanoseconds()
	s.tracer.Record(trace.Span{Kind: trace.KindServeCompile, Lane: -1,
		Start: tstart, Dur: compileNs, Req: traceID})
	if err != nil {
		s.badRequests.Add(1)
		status = http.StatusUnprocessableEntity
		return nil, status, err
	}
	key = c.key.String()
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	if s.opts.DisablePool {
		resp, err := s.evaluateDirect(c)
		if err != nil {
			s.evalErrors.Add(1)
			status = http.StatusInternalServerError
			return nil, status, err
		}
		resp.RequestID = rid
		return resp, http.StatusOK, nil
	}

	j = &job{c: c, reqID: traceID, enq: time.Now(), done: make(chan struct{})}
	hit := false
	submitted := false
	// An evicted calculator rejects new jobs while draining; re-resolving
	// the key builds a fresh one, so one retry suffices.
	for attempt := 0; attempt < 2; attempt++ {
		calc, wasHit := s.pool.Get(c.key)
		err = calc.submit(j)
		if err == nil {
			hit = wasHit
			submitted = true
			break
		}
		if errors.Is(err, errQueueFull) {
			s.rejectQueue.Add(1)
			status = http.StatusTooManyRequests
			return nil, status, fmt.Errorf("serve: overloaded (queue full for %s)", c.key)
		}
	}
	if !submitted {
		s.evalErrors.Add(1)
		status = http.StatusServiceUnavailable
		return nil, status, fmt.Errorf("serve: calculator unavailable for %s", c.key)
	}

	timeout := time.NewTimer(s.opts.RequestTimeout)
	defer timeout.Stop()
	select {
	case <-j.done:
	case <-ctx.Done():
		// The batch may still execute; the response is simply dropped.
		status = statusClientClosed
		return nil, status, ctx.Err()
	case <-timeout.C:
		s.evalErrors.Add(1)
		status = http.StatusServiceUnavailable
		return nil, status, fmt.Errorf("serve: request timed out after %v", s.opts.RequestTimeout)
	}
	if j.err != nil {
		s.evalErrors.Add(1)
		status = http.StatusInternalServerError
		return nil, status, j.err
	}
	j.resp.Pool.Hit = hit
	j.resp.RequestID = rid
	return j.resp, http.StatusOK, nil
}

// jobFinished reports whether a job's executor handoff completed, i.e. its
// executor-written fields are safe to read. Nil jobs (rejections, the
// ablation mode) and jobs abandoned by timeout or client cancel — which the
// executor may still be writing — report false.
func jobFinished(j *job) bool {
	if j == nil {
		return false
	}
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// batchedOf and batchOf read a finished job's batch linkage, zero whenever
// the job never (observably) ran.
func batchedOf(j *job) int64 {
	if !jobFinished(j) {
		return 0
	}
	return int64(j.batched)
}

func batchOf(j *job) uint64 {
	if !jobFinished(j) {
		return 0
	}
	return j.batchID
}

// statusClientClosed is nginx's 499, the conventional "client closed
// request" status.
const statusClientClosed = 499

// evaluateDirect is the one-instance-per-request path: build, load,
// evaluate, finalize. This is both the ablation baseline for the serve
// benchmark and the fallback mode for debugging pooled execution.
func (s *Server) evaluateDirect(c *compiled) (*EvaluateResponse, error) {
	flags := s.opts.Flags
	if c.key.Single {
		flags |= gobeagle.FlagPrecisionSingle
	}
	nodes := 2*c.tips - 1
	inst, err := gobeagle.NewInstance(gobeagle.Config{
		TipCount:        c.tips,
		PartialsBuffers: nodes,
		MatrixBuffers:   nodes + derivSlots,
		EigenBuffers:    1,
		StateCount:      c.key.States,
		PatternCount:    c.patterns,
		CategoryCount:   c.key.Categories,
		ResourceID:      0,
		Flags:           flags,
		Threads:         s.opts.Threads,
	})
	if err != nil {
		return nil, err
	}
	defer inst.Finalize()
	return evaluateOn(inst, c, nodes)
}

// evaluateOn drives one compiled request on a dedicated instance laid out
// with tree-native buffer indices — the reference execution pooled serving
// must match bit-for-bit.
func evaluateOn(inst *gobeagle.Instance, c *compiled, nodes int) (*EvaluateResponse, error) {
	for tip := 0; tip < c.tips; tip++ {
		if err := inst.SetTipStates(tip, c.tipStates[tip]); err != nil {
			return nil, err
		}
	}
	steps := []error{
		inst.SetEigenDecomposition(0, c.eigen.Values, c.eigen.Vectors.Data, c.eigen.InverseVectors.Data),
		inst.SetCategoryRates(c.rates),
		inst.SetCategoryWeights(c.catWeights),
		inst.SetStateFrequencies(c.freqs),
		inst.SetPatternWeights(c.weights),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	mats := make([]int, len(c.sched.Matrices))
	lens := make([]float64, len(c.sched.Matrices))
	for i, mu := range c.sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	if err := inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
		return nil, err
	}
	ops := make([]gobeagle.Operation, len(c.sched.Ops))
	for i, op := range c.sched.Ops {
		ops[i] = gobeagle.Operation{
			Destination: op.Dest, DestScaleWrite: gobeagle.None, DestScaleRead: gobeagle.None,
			Child1: op.Child1, Child1Matrix: op.Child1Mat,
			Child2: op.Child2, Child2Matrix: op.Child2Mat,
		}
	}
	if err := inst.UpdatePartials(ops); err != nil {
		return nil, err
	}
	lnL, err := inst.CalculateRootLogLikelihoods(c.sched.Root, gobeagle.None)
	if err != nil {
		return nil, err
	}
	resp := &EvaluateResponse{
		LogLikelihood: lnL,
		Tips:          c.tips, Sites: c.sites, Patterns: c.patterns,
		Pool: PoolInfo{Key: c.key.String(), Batched: 1},
	}
	if c.wantSite {
		perPattern, err := inst.SiteLogLikelihoods(c.sched.Root, gobeagle.None)
		if err != nil {
			return nil, err
		}
		out := make([]float64, c.sites)
		for site, p := range c.siteOf {
			out[site] = perPattern[p]
		}
		resp.SiteLogLikelihoods = out
	}
	if c.wantDeriv {
		d1m, d2m, sum := nodes, nodes+1, nodes+2
		if err := inst.UpdateTransitionMatrices(0, []int{sum}, []float64{c.rootLen}); err != nil {
			return nil, err
		}
		if err := inst.UpdateTransitionDerivatives(0, []int{d1m}, []int{d2m}, []float64{c.rootLen}); err != nil {
			return nil, err
		}
		_, d1, d2, err := inst.CalculateEdgeDerivatives(c.rootLeft, c.rootRight, sum, d1m, d2m, gobeagle.None)
		if err != nil {
			return nil, err
		}
		resp.D1, resp.D2, resp.RootBranch = d1, d2, c.rootLen
	}
	return resp, nil
}

// eigenFor serves an eigendecomposition from the content-addressed model
// cache, decomposing on miss. The cache is bounded; a full cache drops all
// entries (decompositions are cheap enough to rebuild, and steady-state
// serving uses a handful of models).
const maxEigenCache = 256

func (s *Server) eigenFor(hash string, model *substmodel.Model) (*linalg.EigenDecomposition, error) {
	s.eigenMu.Lock()
	if ed, ok := s.eigenCache[hash]; ok {
		s.eigenMu.Unlock()
		s.eigenHits.Add(1)
		return ed, nil
	}
	s.eigenMu.Unlock()
	s.eigenMisses.Add(1)
	ed, err := model.Eigen()
	if err != nil {
		return nil, err
	}
	s.eigenMu.Lock()
	if len(s.eigenCache) >= maxEigenCache {
		s.eigenCache = map[string]*linalg.EigenDecomposition{}
	}
	s.eigenCache[hash] = ed
	s.eigenMu.Unlock()
	return ed, nil
}

// healthReply is the GET /v1/health body.
type healthReply struct {
	Status   string    `json:"status"`
	UptimeS  float64   `json:"uptime_s"`
	Inflight int64     `json:"inflight"`
	Pool     PoolStats `json:"pool"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthReply{
		Status:   "ok",
		UptimeS:  time.Since(s.start).Seconds(),
		Inflight: s.inflight.Load(),
		Pool:     s.pool.Stats(),
	})
}

// handleSlow serves the tail-latency sampler: the N slowest requests seen so
// far, slowest first, each with its phase tree.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slow.Snapshot())
}

// handleTraceJSON exports one stitched Chrome trace: the serve layer's own
// spans, every pooled instance's engine spans rebased onto the serve
// timeline, and — for distributed pools — each worker process's spans
// drained over the wire, as separate process tracks. Loading the result in
// Perfetto shows a request travel from HTTP admission through queueing and
// batching into scheduler levels and, across the wire-time gap, into worker
// kernels, all sharing args.req.
func (s *Server) handleTraceJSON(w http.ResponseWriter, r *http.Request) {
	local := s.tracer.Snapshot()
	var procs []trace.Process
	serveEpoch := s.tracer.EpochNanos()
	for _, pi := range s.pool.Instances() {
		// Each instance's tracer started its clock at a different wall
		// instant; the epoch difference rebases its spans onto the serve
		// tracer's timeline. Device-layer spans stay on the modeled device
		// clock, as TraceJSON documents.
		delta := pi.Inst.TraceEpochNanos() - serveEpoch
		for _, sp := range pi.Inst.TraceSpans() {
			if sp.Kind.Layer() != trace.LayerDevice {
				sp.Start += delta
			}
			local = append(local, sp)
		}
		for _, p := range pi.Inst.RemoteTraceProcesses() {
			for i := range p.Spans {
				if p.Spans[i].Kind.Layer() != trace.LayerDevice {
					p.Spans[i].Start += delta
				}
			}
			procs = append(procs, p)
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := trace.WriteStitched(w, local, procs); err != nil {
		s.logger.Warn("trace export failed", "err", err.Error())
	}
}

// handleClusterMetrics federates the daemon's own metrics with a live scrape
// of every configured worker's debug endpoint, each series labeled with its
// origin — one scrape for the whole cluster.
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	fed := &metricsx.Federator{UpMetric: "beagled_cluster_scrape_up"}
	if err := fed.WriteCluster(w, serveSource{s}.Metrics(), "beagled", s.workerTargets()); err != nil {
		s.logger.Warn("cluster metrics federation failed", "err", err.Error())
	}
}

// workerTargets resolves the configured worker addresses to scrape targets.
// A worker advertises its debug address in its wire hello; the stateless
// probe that reads it runs once per worker and is cached on success. Workers
// without a debug server (or unreachable ones) stay in the target list with
// an empty URL, which the federator reports as scrape-up 0.
func (s *Server) workerTargets() []metricsx.Target {
	s.fedMu.Lock()
	defer s.fedMu.Unlock()
	targets := make([]metricsx.Target, 0, len(s.opts.Workers))
	for _, addr := range s.opts.Workers {
		url, ok := s.fedTargets[addr]
		if !ok {
			if hello, err := remoteimpl.Probe(addr, 3*time.Second); err == nil && hello.DebugAddr != "" {
				url = "http://" + hello.DebugAddr + "/metrics"
				s.fedTargets[addr] = url
			}
		}
		targets = append(targets, metricsx.Target{Label: addr, URL: url})
	}
	return targets
}

// ListenAndServe binds addr, optionally reports the bound address through
// ready, and serves until the context is cancelled, then drains in-flight
// requests and finalizes the pool.
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	s.logger.Info("serving",
		"addr", ln.Addr().String(), "window", s.opts.Window.String(),
		"max_batch", s.opts.MaxBatch, "workers", len(s.opts.Workers), "trace", s.opts.Trace)
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: s.opts.ReadHeaderTimeout,
		IdleTimeout:       s.opts.IdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err = srv.Shutdown(shutCtx)
		<-errc
	case err = <-errc:
	}
	s.Close()
	s.logger.Info("drained",
		"requests", s.requests.Load(), "rejected_queue", s.rejectQueue.Load(),
		"rejected_quota", s.rejectQuota.Load(), "errors", s.evalErrors.Load())
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}
