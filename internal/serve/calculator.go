package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gobeagle"
	"gobeagle/internal/trace"
)

// derivSlots is the number of extra matrix buffers reserved per slot beyond
// the 2·maxTips−1 branch matrices: the root-branch first- and second-
// derivative matrices and the summed root-branch transition matrix.
const derivSlots = 3

// job is one admitted request travelling through a calculator's batcher.
// reqID tags the spans recorded on the job's behalf; batchID, batched and
// the wait/run durations are written by the executor before done closes and
// feed the whole-request span and the tail-latency sampler.
type job struct {
	c     *compiled
	reqID uint64
	enq   time.Time
	resp  *EvaluateResponse
	err   error
	done  chan struct{}

	batchID uint64
	batched int
	waitNs  int64
	runNs   int64
}

// Calculator owns one warm, wide instance shared by every request of a pool
// key, carved into slots: slot s holds a private range of tip, internal-
// partials, matrix and eigen buffers sized for the key's tip bucket, so
// compatible requests evaluate side by side in one scheduler submission.
// Slots are recycled through a SlotAllocator (get/free LIFO, golden-ratio
// growth) exactly as the sts OnlineCalculator recycles buffer ids.
//
// A single executor goroutine drains the queue, coalescing up to MaxBatch
// requests arriving within the batch window into one merged UpdatePartials
// submission; per-request state (tips, model, matrices, pattern weights) is
// loaded around it. All instance access happens on the executor, so the
// instance's single-goroutine contract holds.
type Calculator struct {
	key   PoolKey
	opts  Options
	tr    *trace.Tracer
	queue chan *job

	closing chan struct{} // signals the executor to drain and finalize
	closed  chan struct{} // closed when the executor has finalized
	once    sync.Once

	// Executor-owned state. instPub mirrors inst for concurrent readers
	// (the stitched trace export walks live instances' span buffers, which
	// are safe against concurrent recording); it is cleared before the
	// executor finalizes an instance.
	inst    *gobeagle.Instance
	instPub atomic.Pointer[gobeagle.Instance]
	slots   *SlotAllocator
	built   int // slot capacity the current instance was built for

	// Counters read concurrently by the metrics endpoints.
	batches   atomic.Uint64 // merged submissions executed
	requests  atomic.Uint64 // requests served
	grows     atomic.Uint64 // golden-ratio instance rebuilds
	rebuilds  atomic.Uint64 // total instance (re)builds
	batchFill atomic.Uint64 // sum of batch sizes (fill = batchFill/batches)
	errors    atomic.Uint64
	lastUsed  atomic.Int64 // unix nanos of the last completed batch
	slotCap   atomic.Int64 // slots.Capacity() mirrored for concurrent readers
}

// newCalculator builds a cold calculator for one pool key and starts its
// executor. The instance itself is built lazily on the first batch.
func newCalculator(key PoolKey, opts Options, tr *trace.Tracer) *Calculator {
	c := &Calculator{
		key:     key,
		opts:    opts,
		tr:      tr,
		queue:   make(chan *job, opts.QueueDepth),
		closing: make(chan struct{}),
		closed:  make(chan struct{}),
		slots:   NewSlotAllocator(opts.InitialSlots),
	}
	c.lastUsed.Store(time.Now().UnixNano())
	c.slotCap.Store(int64(c.slots.Capacity()))
	go c.run()
	return c
}

// submit enqueues a job, failing fast when the queue is full (admission
// control: the caller maps errQueueFull to 429) or the calculator is being
// torn down (the caller re-resolves the pool key).
var (
	errQueueFull = fmt.Errorf("serve: calculator queue full")
	errClosed    = fmt.Errorf("serve: calculator closed")
)

func (c *Calculator) submit(j *job) error {
	select {
	case <-c.closing:
		return errClosed
	default:
	}
	select {
	case c.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

// close asks the executor to drain queued jobs and finalize the instance;
// it does not wait. Jobs already queued are still served.
func (c *Calculator) close() {
	c.once.Do(func() { close(c.closing) })
}

// wait blocks until the executor has finalized the instance.
func (c *Calculator) wait() { <-c.closed }

// run is the executor loop: wait for one job, then hold the batch window
// open to coalesce compatible arrivals up to MaxBatch.
func (c *Calculator) run() {
	defer close(c.closed)
	for {
		var first *job
		select {
		case first = <-c.queue:
		case <-c.closing:
			c.drain()
			return
		}
		batch := []*job{first}
		if c.opts.MaxBatch > 1 && c.opts.Window > 0 {
			timer := time.NewTimer(c.opts.Window)
		collect:
			for len(batch) < c.opts.MaxBatch {
				select {
				case j := <-c.queue:
					batch = append(batch, j)
				case <-timer.C:
					break collect
				case <-c.closing:
					break collect
				}
			}
			timer.Stop()
		} else {
			// No window: still sweep up whatever is already queued.
			sweeping := true
			for sweeping && len(batch) < c.opts.MaxBatch {
				select {
				case j := <-c.queue:
					batch = append(batch, j)
				default:
					sweeping = false
				}
			}
		}
		c.runBatch(batch)
	}
}

// drain serves whatever was queued before close, then finalizes.
func (c *Calculator) drain() {
	for {
		select {
		case j := <-c.queue:
			c.runBatch([]*job{j})
		default:
			if c.inst != nil {
				c.instPub.Store(nil)
				c.inst.Finalize()
				c.inst = nil
			}
			return
		}
	}
}

// Slot buffer layout within the shared instance. The tip region of the
// engine is [0, built·maxTips); slot s owns tips [s·maxTips, (s+1)·maxTips),
// internal partials built·maxTips + s·(maxTips−1) + k, matrices
// s·matStride + m, and eigen slot s.
func (c *Calculator) matStride() int { return 2*c.key.Tips - 1 + derivSlots }

func (c *Calculator) mapPartials(slot, idx, tips int) int {
	if idx < tips {
		return slot*c.key.Tips + idx
	}
	return c.built*c.key.Tips + slot*(c.key.Tips-1) + (idx - tips)
}

func (c *Calculator) mapMatrix(slot, m int) int { return slot*c.matStride() + m }

// derivMats returns the slot's (d1, d2, summed-branch) matrix buffer ids.
func (c *Calculator) derivMats(slot int) (d1, d2, sum int) {
	base := slot*c.matStride() + 2*c.key.Tips - 1
	return base, base + 1, base + 2
}

// rebuild replaces the instance with one sized for the current slot
// capacity. No partials survive a rebuild — slots hold no cross-request
// state, unlike the sts exemplar's persistent ids, so nothing is copied.
func (c *Calculator) rebuild() error {
	if c.inst != nil {
		c.instPub.Store(nil)
		c.inst.Finalize()
		c.inst = nil
	}
	n := c.slots.Capacity()
	flags := c.key.Flags | gobeagle.FlagTelemetry
	if c.opts.Trace {
		flags |= gobeagle.FlagTrace
	}
	if c.key.Single {
		flags |= gobeagle.FlagPrecisionSingle
	}
	cfg := gobeagle.Config{
		TipCount:        n * c.key.Tips,
		PartialsBuffers: n*c.key.Tips + n*(c.key.Tips-1),
		MatrixBuffers:   n * c.matStride(),
		EigenBuffers:    n,
		ScaleBuffers:    0,
		StateCount:      c.key.States,
		PatternCount:    c.key.Patterns,
		CategoryCount:   c.key.Categories,
		ResourceID:      0,
		Flags:           flags,
		Threads:         c.opts.Threads,
	}
	var inst *gobeagle.Instance
	var err error
	if len(c.opts.Workers) > 0 {
		inst, err = gobeagle.NewDistributedInstance(cfg, c.opts.Workers, []int{0}, nil)
	} else {
		inst, err = gobeagle.NewInstance(cfg)
	}
	if err != nil {
		return err
	}
	c.inst = inst
	c.instPub.Store(inst)
	c.built = n
	c.rebuilds.Add(1)
	return nil
}

// runBatch executes one micro-batch: grow the slot space to fit, load every
// request into its slot, submit the merged operation list as one scheduler
// batch, then integrate each request's root separately.
func (c *Calculator) runBatch(batch []*job) {
	var tstart int64
	var batchID uint64
	bstart := time.Now()
	traceOn := c.tr != nil && c.tr.Enabled()
	if traceOn {
		tstart = c.tr.Now()
		batchID = c.tr.NextBatch()
	}

	grew := false
	for c.slots.Capacity() < len(batch) {
		c.slots.Grow()
		grew = true
	}
	c.slotCap.Store(int64(c.slots.Capacity()))
	if c.inst == nil || grew || c.built != c.slots.Capacity() {
		if grew {
			c.grows.Add(1)
		}
		if err := c.rebuild(); err != nil {
			c.failBatch(batch, err)
			return
		}
	}

	var merged []gobeagle.Operation
	live := batch[:0:0]
	var liveSlots []int
	for i, j := range batch {
		j.batchID = batchID
		j.batched = len(batch)
		j.waitNs = bstart.Sub(j.enq).Nanoseconds()
		if traceOn {
			now := c.tr.Now()
			wait := time.Since(j.enq).Nanoseconds()
			c.tr.Record(trace.Span{Kind: trace.KindServeWait, Lane: int32(i),
				Start: now - wait, Dur: wait, Arg0: int64(j.c.patterns),
				Batch: batchID, Req: j.reqID})
		}
		slot := c.slots.Get()
		if slot < 0 {
			// Unreachable: capacity was grown to len(batch) above and every
			// slot is free between batches.
			j.err = fmt.Errorf("serve: slot space exhausted")
			close(j.done)
			continue
		}
		// Tag the engine-side spans this job's slot loads record — and, over
		// the wire, the worker-side spans — with the job's request identity.
		c.inst.SetTraceRequest(j.reqID)
		if err := c.loadJob(slot, j.c); err != nil {
			j.err = err
			c.errors.Add(1)
			c.slots.Free(slot)
			j.runNs = time.Since(bstart).Nanoseconds()
			close(j.done)
			continue
		}
		for _, op := range j.c.sched.Ops {
			merged = append(merged, gobeagle.Operation{
				Destination:    c.mapPartials(slot, op.Dest, j.c.tips),
				DestScaleWrite: gobeagle.None,
				DestScaleRead:  gobeagle.None,
				Child1:         c.mapPartials(slot, op.Child1, j.c.tips),
				Child1Matrix:   c.mapMatrix(slot, op.Child1Mat),
				Child2:         c.mapPartials(slot, op.Child2, j.c.tips),
				Child2Matrix:   c.mapMatrix(slot, op.Child2Mat),
			})
		}
		j.resp = &EvaluateResponse{
			Tips: j.c.tips, Sites: j.c.sites, Patterns: j.c.patterns,
			Pool: PoolInfo{
				Key:        c.key.String(),
				Batched:    len(batch),
				Slot:       slot,
				WaitMicros: time.Since(j.enq).Microseconds(),
			},
		}
		live = append(live, j)
		liveSlots = append(liveSlots, slot)
	}

	if len(live) > 0 {
		// The merged submission computes every job at once; attribute its
		// engine spans to the batch leader (the oldest request).
		c.inst.SetTraceRequest(live[0].reqID)
		if err := c.inst.UpdatePartials(merged); err != nil {
			for _, j := range live {
				j.err = err
				j.runNs = time.Since(bstart).Nanoseconds()
				close(j.done)
			}
			c.errors.Add(uint64(len(live)))
			live = live[:0]
		}
	}

	for i, j := range live {
		c.inst.SetTraceRequest(j.reqID)
		if err := c.integrate(liveSlots[i], j); err != nil {
			j.err = err
			c.errors.Add(1)
		} else {
			c.requests.Add(1)
		}
		c.slots.Free(liveSlots[i])
		j.runNs = time.Since(bstart).Nanoseconds()
		close(j.done)
	}
	c.inst.SetTraceRequest(0)

	c.batches.Add(1)
	c.batchFill.Add(uint64(len(batch)))
	c.lastUsed.Store(time.Now().UnixNano())
	if traceOn {
		c.tr.Record(trace.Span{Kind: trace.KindServeBatch, Lane: -1,
			Start: tstart, Dur: c.tr.Now() - tstart, Batch: batchID,
			Arg0: int64(len(batch)), Arg1: int64(c.slots.Capacity())})
	}
}

// failBatch fails every job of a batch with the same error.
func (c *Calculator) failBatch(batch []*job, err error) {
	for _, j := range batch {
		j.err = err
		close(j.done)
	}
	c.errors.Add(uint64(len(batch)))
}

// loadJob pushes one request's data into its slot: padded tip states, the
// eigendecomposition, category rates and the per-branch transition matrices
// (plus the root-branch derivative matrices when requested). Pattern
// positions beyond the request's count are padded with the gap state, whose
// weight-zero contribution leaves the integrated likelihood bit-identical
// to a dedicated instance.
func (c *Calculator) loadJob(slot int, req *compiled) error {
	inst := c.inst
	pad := c.key.Patterns
	// SetTipStates copies, so one scratch serves every tip: the request's
	// patterns fill the prefix, the bucket-padding suffix stays on the gap
	// state (fully ambiguous).
	scratch := make([]int, pad)
	for p := req.patterns; p < pad; p++ {
		scratch[p] = c.key.States
	}
	for tip := 0; tip < req.tips; tip++ {
		copy(scratch, req.tipStates[tip])
		if err := inst.SetTipStates(slot*c.key.Tips+tip, scratch); err != nil {
			return err
		}
	}
	if err := inst.SetEigenDecomposition(slot, req.eigen.Values, req.eigen.Vectors.Data, req.eigen.InverseVectors.Data); err != nil {
		return err
	}
	// Category rates are engine-global but only read while building this
	// slot's matrices, which happens right here; the merged partials batch
	// reads the finished matrices only.
	if err := inst.SetCategoryRates(req.rates); err != nil {
		return err
	}
	mats := make([]int, len(req.sched.Matrices))
	lens := make([]float64, len(req.sched.Matrices))
	for i, mu := range req.sched.Matrices {
		mats[i] = c.mapMatrix(slot, mu.Matrix)
		lens[i] = mu.Length
	}
	if err := inst.UpdateTransitionMatrices(slot, mats, lens); err != nil {
		return err
	}
	if req.wantDeriv {
		d1, d2, sum := c.derivMats(slot)
		if err := inst.UpdateTransitionMatrices(slot, []int{sum}, []float64{req.rootLen}); err != nil {
			return err
		}
		if err := inst.UpdateTransitionDerivatives(slot, []int{d1}, []int{d2}, []float64{req.rootLen}); err != nil {
			return err
		}
	}
	return nil
}

// integrate finishes one request after the merged partials batch: the
// engine-global integration inputs (category weights, frequencies, padded
// pattern weights) are set for this request, then the slot's root buffer is
// reduced. Padding weights are zero, so the reduction is bit-identical to a
// dedicated instance evaluating the exact pattern set.
func (c *Calculator) integrate(slot int, j *job) error {
	inst := c.inst
	req := j.c
	if err := inst.SetCategoryWeights(req.catWeights); err != nil {
		return err
	}
	if err := inst.SetStateFrequencies(req.freqs); err != nil {
		return err
	}
	weights := make([]float64, c.key.Patterns)
	copy(weights, req.weights)
	if err := inst.SetPatternWeights(weights); err != nil {
		return err
	}
	root := c.mapPartials(slot, req.sched.Root, req.tips)
	lnL, err := inst.CalculateRootLogLikelihoods(root, gobeagle.None)
	if err != nil {
		return err
	}
	j.resp.LogLikelihood = lnL
	if req.wantSite {
		perPattern, err := inst.SiteLogLikelihoods(root, gobeagle.None)
		if err != nil {
			return err
		}
		out := make([]float64, req.sites)
		for site, p := range req.siteOf {
			out[site] = perPattern[p]
		}
		j.resp.SiteLogLikelihoods = out
	}
	if req.wantDeriv {
		d1m, d2m, sum := c.derivMats(slot)
		parent := c.mapPartials(slot, req.rootLeft, req.tips)
		child := c.mapPartials(slot, req.rootRight, req.tips)
		_, d1, d2, err := inst.CalculateEdgeDerivatives(parent, child, sum, d1m, d2m, gobeagle.None)
		if err != nil {
			return err
		}
		j.resp.D1, j.resp.D2, j.resp.RootBranch = d1, d2, req.rootLen
	}
	return nil
}
