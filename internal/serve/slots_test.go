package serve

import "testing"

// TestSlotRecyclingLIFO verifies the sts OnlineCalculator recycling contract:
// freed ids are reused before new ids are minted, in last-in-first-out order.
func TestSlotRecyclingLIFO(t *testing.T) {
	a := NewSlotAllocator(4)
	ids := make([]int, 4)
	for i := range ids {
		ids[i] = a.Get()
		if ids[i] != i {
			t.Fatalf("Get() = %d, want %d (fresh ids mint in order)", ids[i], i)
		}
	}
	if got := a.Get(); got != -1 {
		t.Fatalf("Get() beyond capacity = %d, want -1", got)
	}
	a.Free(1)
	a.Free(3)
	if got := a.Get(); got != 3 {
		t.Fatalf("Get() after Free(1),Free(3) = %d, want 3 (LIFO)", got)
	}
	if got := a.Get(); got != 1 {
		t.Fatalf("second Get() = %d, want 1", got)
	}
	if got := a.Get(); got != -1 {
		t.Fatalf("Get() with all slots live = %d, want -1", got)
	}
	if a.InUse() != 4 {
		t.Fatalf("InUse() = %d, want 4", a.InUse())
	}
}

// TestSlotGoldenRatioGrowth verifies growth multiplies capacity by the golden
// ratio (floor), with a minimum step of one.
func TestSlotGoldenRatioGrowth(t *testing.T) {
	a := NewSlotAllocator(1)
	want := []int{1, 2, 3, 4, 6, 9, 14, 22, 35, 56}
	for i, w := range want {
		if a.Capacity() != w {
			t.Fatalf("capacity after %d grows = %d, want %d", i, a.Capacity(), w)
		}
		a.Grow()
	}
	// Growth never invalidates live ids: mint everything, grow, and the new
	// range extends past the old.
	b := NewSlotAllocator(2)
	id0, id1 := b.Get(), b.Get()
	b.Grow()
	id2 := b.Get()
	if id0 != 0 || id1 != 1 || id2 != 2 {
		t.Fatalf("ids across growth = %d,%d,%d, want 0,1,2", id0, id1, id2)
	}
}
