package serve

import (
	"sync"
	"time"
)

// TokenBuckets enforces per-tenant request quotas: each tenant owns a token
// bucket refilled at Rate tokens per second up to Burst. A request takes one
// token; an empty bucket rejects (the server maps that to 429 with a
// Retry-After hint).
type TokenBuckets struct {
	rate  float64
	burst float64

	mu sync.Mutex
	m  map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxTenants bounds the tenant map; beyond it, buckets idle at full burst
// are pruned (forgetting a full bucket is lossless).
const maxTenants = 4096

// NewTokenBuckets builds the quota table. rate ≤ 0 disables quotas
// entirely (Allow always succeeds).
func NewTokenBuckets(rate float64, burst int) *TokenBuckets {
	if burst < 1 {
		burst = 1
	}
	return &TokenBuckets{rate: rate, burst: float64(burst), m: map[string]*bucket{}}
}

// Allow takes one token from the tenant's bucket, reporting whether the
// request is admitted and, when it is not, how long until a token refills.
func (t *TokenBuckets) Allow(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if t.rate <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b, exists := t.m[tenant]
	if !exists {
		if len(t.m) >= maxTenants {
			t.prune(now)
			// prune is best-effort: under sustained traffic from more than
			// maxTenants distinct tenants no bucket is at full burst and
			// nothing was deleted. The cap is a hard bound, not a hint —
			// evict the stalest buckets until the new tenant fits.
			for len(t.m) >= maxTenants {
				t.evictStalest()
			}
		}
		b = &bucket{tokens: t.burst, last: now}
		t.m[tenant] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * t.rate
		if b.tokens > t.burst {
			b.tokens = t.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / t.rate
	return false, time.Duration(need * float64(time.Second))
}

// prune drops buckets that have refilled to full burst; they carry no state
// a fresh bucket would not. Called with the lock held.
func (t *TokenBuckets) prune(now time.Time) {
	for k, b := range t.m {
		tokens := b.tokens + now.Sub(b.last).Seconds()*t.rate
		if tokens >= t.burst {
			delete(t.m, k)
		}
	}
}

// evictStalest removes the least recently touched bucket (ties broken by
// key, so the choice does not depend on map iteration order). Forgetting a
// drained bucket regrants that tenant its burst, which is the acceptable
// cost of a hard memory bound. Called with the lock held on a non-empty map.
func (t *TokenBuckets) evictStalest() {
	var victim string
	var found bool
	for k, b := range t.m {
		if !found || b.last.Before(t.m[victim].last) ||
			(b.last.Equal(t.m[victim].last) && k < victim) {
			victim, found = k, true
		}
	}
	if found {
		delete(t.m, victim)
	}
}
