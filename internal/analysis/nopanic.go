package analysis

import (
	"go/ast"
	"go/types"
)

// The call-graph construction that originally lived here is now the shared
// interprocedural layer in callgraph.go, used by lockorder, goroleak and
// ctxhttp as well.

// NoPanic enforces the library's error-flow contract: no panic may be
// reachable from an exported entry point. BEAGLE's reliability across
// heterogeneous hardware rests on a uniform error-code discipline at the
// kernel boundary — a Go panic escaping from UpdatePartials on a worker
// goroutine kills the whole process, so validation failures must travel as
// returned errors instead.
//
// The analyzer builds the package's static call graph (any reference to a
// same-package function counts as an edge, so function values passed to
// sort.Slice and friends are included) and reports every panic call that is
// lexically inside, or transitively reachable from, an exported function or
// method, or from a package-level variable initializer. A site can be waived
// with a trailing or immediately-preceding comment
//
//	//beagle:allow panic <reason>
//
// and the reason is mandatory: a waiver without one is itself reported.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "no panic reachable from exported entry points; errors must be returned",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) error {
	info := pass.TypesInfo

	// Entry points (exported functions and methods, plus anything referenced
	// from a package-level variable initializer, which runs unconditionally
	// at import time) and reachability come from the shared call graph.
	cg := NewCallGraph(pass)
	reachable := cg.Reachable(cg.EntryPoints()...)

	// Report reachable panic sites without a reasoned waiver.
	for _, f := range pass.Files {
		allows := fileAllowances(pass.Fset, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil || !reachable[obj] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
					return true
				}
				line := pass.Fset.Position(call.Pos()).Line
				waived, hasReason := allowedAt(allows, "panic", line)
				switch {
				case !waived:
					pass.Reportf(call.Pos(), "panic in %s is reachable from the package's exported API; return an error instead or waive with %s panic <reason>", obj.Name(), AllowDirective)
				case !hasReason:
					pass.Reportf(call.Pos(), "%s panic waiver needs a reason", AllowDirective)
				}
				return true
			})
		}
	}
	return nil
}
