package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the package-level interprocedural layer shared by the
// analyzers that reason across function boundaries (nopanic, lockorder,
// goroleak, ctxhttp). It maps every function and method declared in the
// package to its syntax and records the static reference graph between
// them: an edge f -> g exists when f's body mentions g at all, so function
// values handed to sort.Slice, pool dispatchers or goroutines count as
// calls. That over-approximation is deliberate — the suite's contracts
// (no reachable panic, acyclic lock order, joined goroutines) must hold on
// every path the runtime could take, including indirect ones.
type CallGraph struct {
	// Decls maps each function object declared in the package to its
	// declaration. Bodiless declarations (assembly stubs) map to a decl
	// with a nil Body.
	Decls map[*types.Func]*ast.FuncDecl
	// Edges is the static same-package reference graph described above.
	Edges map[*types.Func][]*types.Func

	pass *Pass
}

// NewCallGraph builds the call graph for the pass's package.
func NewCallGraph(pass *Pass) *CallGraph {
	info := pass.TypesInfo
	g := &CallGraph{
		Decls: map[*types.Func]*ast.FuncDecl{},
		Edges: map[*types.Func][]*types.Func{},
		pass:  pass,
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
					g.Decls[obj] = fd
				}
			}
		}
	}
	for obj, fd := range g.Decls {
		if fd.Body == nil {
			continue
		}
		from := obj
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if to, ok := info.Uses[id].(*types.Func); ok {
				if _, local := g.Decls[to]; local && to != from {
					g.Edges[from] = append(g.Edges[from], to)
				}
			}
			return true
		})
	}
	return g
}

// Functions returns the declared functions sorted by source position, so
// analyzers iterating the graph report in deterministic order (the suite
// must satisfy its own mapdeterminism check).
func (g *CallGraph) Functions() []*types.Func {
	out := make([]*types.Func, 0, len(g.Decls))
	for fn := range g.Decls {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// EntryPoints returns the functions the outside world can run directly:
// exported functions and methods, plus anything referenced from a
// package-level variable initializer (which executes unconditionally at
// import time). The result is sorted by name so analyzer output is stable.
func (g *CallGraph) EntryPoints() []*types.Func {
	seen := map[*types.Func]bool{}
	for obj := range g.Decls {
		if obj.Exported() {
			seen[obj] = true
		}
	}
	info := g.pass.TypesInfo
	for _, f := range g.pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if to, ok := info.Uses[id].(*types.Func); ok {
					if _, local := g.Decls[to]; local {
						seen[to] = true
					}
				}
				return true
			})
		}
	}
	out := make([]*types.Func, 0, len(seen))
	for fn := range seen {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// Reachable returns the set of package functions reachable from roots by
// following Edges, including the roots themselves.
func (g *CallGraph) Reachable(roots ...*types.Func) map[*types.Func]bool {
	reachable := map[*types.Func]bool{}
	var mark func(fn *types.Func)
	mark = func(fn *types.Func) {
		if reachable[fn] {
			return
		}
		reachable[fn] = true
		for _, to := range g.Edges[fn] {
			mark(to)
		}
	}
	for _, fn := range roots {
		mark(fn)
	}
	return reachable
}

// sortedFuncs orders a function set by source position for deterministic
// reporting.
func sortedFuncs(set map[*types.Func]bool) []*types.Func {
	out := make([]*types.Func, 0, len(set))
	for fn := range set {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// Fixpoint propagates a per-function fact set bottom-up over the call
// graph until it stabilizes: each function's set grows to include every
// callee's set. seed maps functions to their locally-established facts and
// is extended in place; the extended map is returned for convenience. It
// is the workhorse behind transitive summaries ("which locks can f end up
// holding", "which channels can f close").
func Fixpoint[T comparable](g *CallGraph, seed map[*types.Func]map[T]bool) map[*types.Func]map[T]bool {
	for changed := true; changed; {
		changed = false
		for fn := range g.Decls {
			for _, callee := range g.Edges[fn] {
				for fact := range seed[callee] {
					if seed[fn] == nil {
						seed[fn] = map[T]bool{}
					}
					if !seed[fn][fact] {
						seed[fn][fact] = true
						changed = true
					}
				}
			}
		}
	}
	return seed
}
