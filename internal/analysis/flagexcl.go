package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FlagExcl enforces the two structural invariants of the public Flags
// bitfield:
//
//  1. The CPU threading selections (FlagThreadingFutures, ...ThreadCreate,
//     ...ThreadPool, ...ThreadPoolHybrid) are mutually exclusive — the
//     resource layer can honor only one. Any expression that ORs two of
//     them together is a latent creation-time error and is reported at the
//     call site. Mask contexts are exempt: the right-hand side of &^ or &
//     clears or tests bits, it does not select two models, and the
//     threadingFlags mask constant itself is the definition of the set.
//
//  2. Every Flag* constant must be rendered by Flags.String — an invisible
//     flag silently vanishes from resource listings, logs and the
//     benchmark reports that Table III/V reproduction depends on.
//
// The analyzer is structural, not name-bound: any package defining an
// unsigned named type with a String method and a threadingFlags constant of
// that type gets the same treatment, which is how its own fixtures are
// checked.
var FlagExcl = &Analyzer{
	Name: "flagexcl",
	Doc:  "threading flags are mutually exclusive and every flag prints in String",
	Run:  runFlagExcl,
}

func runFlagExcl(pass *Pass) error {
	// Positions exempt from the OR check: subtrees defining a threadingFlags
	// mask, and right operands of & / &^ (mask clears and tests).
	exempt := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for _, name := range n.Names {
					if name.Name == "threadingFlags" {
						exempt[n] = true
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.AND_NOT || n.Op == token.AND {
					exempt[n.X] = true
					exempt[n.Y] = true
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		checkThreadingOrs(pass, f, exempt)
	}
	checkStringCoverage(pass)
	return nil
}

// threadingMask returns the value of the package-scoped threadingFlags
// constant for the named type t, or 0 if t's package declares none.
func threadingMask(t types.Type) (uint64, bool) {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return 0, false
	}
	obj := named.Obj().Pkg().Scope().Lookup("threadingFlags")
	c, ok := obj.(*types.Const)
	if !ok || !types.Identical(c.Type(), t) {
		return 0, false
	}
	v, ok := constant.Uint64Val(constant.ToInt(c.Val()))
	return v, ok
}

// checkThreadingOrs reports | expressions whose two operands both carry
// threading-mask bits. Subtrees rooted at exempt nodes (mask definitions
// and mask operands of & / &^) are not reported.
func checkThreadingOrs(pass *Pass, f *ast.File, exempt map[ast.Node]bool) {
	info := pass.TypesInfo
	// exemptRanges: position spans under which OR is a mask expression.
	type span struct{ lo, hi token.Pos }
	var spans []span
	ast.Inspect(f, func(n ast.Node) bool {
		if n != nil && exempt[n] {
			spans = append(spans, span{n.Pos(), n.End()})
		}
		return true
	})
	inMask := func(pos token.Pos) bool {
		for _, s := range spans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}
	ast.Inspect(f, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.OR || inMask(be.Pos()) {
			return true
		}
		xv := constBits(info, be.X)
		yv := constBits(info, be.Y)
		if xv == 0 || yv == 0 {
			return true
		}
		if mask, ok := threadingMask(info.TypeOf(be)); ok && mask != 0 && xv&mask != 0 && yv&mask != 0 {
			pass.Reportf(be.OpPos, "combines two mutually exclusive threading flags; select exactly one threading model")
		}
		return true
	})
}

// constBits returns the constant integer value of e, or 0 when e is not
// constant.
func constBits(info *types.Info, e ast.Expr) uint64 {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0
	}
	v, ok := constant.Uint64Val(constant.ToInt(tv.Value))
	if !ok {
		return 0
	}
	return v
}

// checkStringCoverage verifies, for every named unsigned type T in the
// package with both Flag*-prefixed constants and a String method, that each
// Flag* constant is referenced inside the String method body.
func checkStringCoverage(pass *Pass) {
	info := pass.TypesInfo
	scope := pass.Pkg.Scope()

	// Collect flag constants grouped by their named type.
	flagConsts := map[*types.Named][]*types.Const{}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Flag") {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok {
			continue
		}
		b, ok := named.Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsUnsigned == 0 {
			continue
		}
		flagConsts[named] = append(flagConsts[named], c)
	}

	for named, consts := range flagConsts {
		body := stringMethodBody(pass, named)
		if body == nil {
			pass.Reportf(named.Obj().Pos(), "flag type %s has Flag* constants but no String method to render them", named.Obj().Name())
			continue
		}
		referenced := map[types.Object]bool{}
		ast.Inspect(body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					referenced[obj] = true
				}
			}
			return true
		})
		for _, c := range consts {
			if !referenced[c] {
				pass.Reportf(c.Pos(), "%s is not rendered by %s.String; add it to the name table", c.Name(), named.Obj().Name())
			}
		}
	}
}

// stringMethodBody returns the body of named's String method when it is
// declared in this package.
func stringMethodBody(pass *Pass, named *types.Named) *ast.BlockStmt {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "String" {
			continue
		}
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name.Name != "String" || fd.Recv == nil {
					continue
				}
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && obj == m {
					return fd.Body
				}
			}
		}
	}
	return nil
}
