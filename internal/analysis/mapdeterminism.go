package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapDeterminism turns the library's bit-identity invariant into a static
// check: Go map iteration order is deliberately randomized, so a `range`
// over a map must not feed anything order-sensitive. Four sinks are flagged
// inside map-range bodies:
//
//   - appends to a slice declared outside the loop (op schedules, close
//     lists, exposition rows) — unless the slice is sorted afterwards in the
//     same function, which is the repo's collect-then-sort idiom;
//   - compound accumulation into a float (sum += v): float addition does
//     not commute bitwise, so the result depends on iteration order;
//   - writes through an index not derived from the range key or value into
//     a slice or array declared outside the loop;
//   - output calls (fmt.Print/Fprint family, Write/WriteString methods on
//     an outside writer): whatever is printed appears in random order.
//
// Keyed writes (out[k] = v) and integer counters are order-insensitive and
// are not flagged. Waive a genuinely order-insensitive site with
// //beagle:allow maprange <reason>; the reason must say why order cannot
// matter (or where the sort happens).
var MapDeterminism = &Analyzer{
	Name: "mapdeterminism",
	Doc:  "map iteration must not feed order-sensitive state (bit-identity)",
	Run:  runMapDeterminism,
}

func runMapDeterminism(pass *Pass) error {
	info := pass.TypesInfo

	terminalVar := func(e ast.Expr) *types.Var {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[e].(*types.Var)
			return v
		case *ast.SelectorExpr:
			v, _ := info.Uses[e.Sel].(*types.Var)
			return v
		}
		return nil
	}

	isFloat := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
	}

	for _, f := range pass.Files {
		allows := fileAllowances(pass.Fset, f)
		report := func(pos token.Pos, format string, args ...any) {
			line := pass.Fset.Position(pos).Line
			waived, hasReason := allowedAt(allows, "maprange", line)
			switch {
			case !waived:
				pass.Reportf(pos, format, args...)
			case !hasReason:
				pass.Reportf(pos, "%s maprange waiver needs a reason", AllowDirective)
			}
		}

		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fd, rs, terminalVar, isFloat, report)
				return true
			})
		}
	}
	return nil
}

// checkMapRange inspects one map-range body for order-sensitive sinks.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt,
	terminalVar func(ast.Expr) *types.Var, isFloat func(types.Type) bool,
	report func(token.Pos, string, ...any)) {

	info := pass.TypesInfo

	// The range key and value variables: indexes derived from them are
	// keyed writes, which iteration order cannot affect.
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	derivedFromLoop := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && loopVars[obj] {
					found = true
				}
			}
			return true
		})
		return found
	}
	declaredOutside := func(v *types.Var) bool {
		return v != nil && (v.Pos() < rs.Pos() || v.Pos() > rs.End())
	}
	// sortedAfter reports the collect-then-sort idiom: v is handed to a
	// sort.* or slices.* call after the range in the same function.
	sortedAfter := func(v *types.Var) bool {
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() < rs.End() {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			if p := pn.Imported().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ok := false
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, isID := m.(*ast.Ident); isID {
						if u, _ := info.Uses[id].(*types.Var); u == v {
							ok = true
						}
					}
					return true
				})
				if ok {
					found = true
				}
			}
			return true
		})
		return found
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			lhs := ast.Unparen(n.Lhs[0])

			// x = append(x, ...) into a slice that outlives the loop.
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if bi, ok := info.Uses[id].(*types.Builtin); ok && bi.Name() == "append" {
						if _, isIdx := lhs.(*ast.IndexExpr); !isIdx {
							if v := terminalVar(lhs); declaredOutside(v) && !sortedAfter(v) {
								report(n.Pos(), "append to %s inside a map range is order-nondeterministic; sort the keys (or the result) or waive with %s maprange <reason>", v.Name(), AllowDirective)
							}
						}
						return true
					}
				}
			}

			// sum += v on floats: bitwise result depends on order.
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if t := info.TypeOf(n.Lhs[0]); t != nil && isFloat(t) {
					var v *types.Var
					if idx, ok := lhs.(*ast.IndexExpr); ok {
						if derivedFromLoop(idx.Index) {
							return true
						}
						v = terminalVar(idx.X)
					} else {
						v = terminalVar(lhs)
					}
					if declaredOutside(v) {
						report(n.Pos(), "float accumulation into %s inside a map range is order-dependent (bit-identity); iterate sorted keys or waive with %s maprange <reason>", v.Name(), AllowDirective)
					}
				}
				return true
			}

			// buf[i] = x through a loop-independent index.
			if idx, ok := lhs.(*ast.IndexExpr); ok && n.Tok == token.ASSIGN {
				bt := info.TypeOf(idx.X)
				if bt == nil {
					return true
				}
				switch bt.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Pointer:
				default:
					return true // keyed map writes are order-insensitive
				}
				if derivedFromLoop(idx.Index) {
					return true
				}
				if v := terminalVar(idx.X); declaredOutside(v) {
					report(n.Pos(), "indexed write to %s inside a map range depends on iteration order; iterate sorted keys or waive with %s maprange <reason>", v.Name(), AllowDirective)
				}
			}

		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// fmt.Print/Fprint family.
			if pkgID, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if pn, ok := info.Uses[pkgID].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
					name := sel.Sel.Name
					if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
						report(n.Pos(), "printing inside a map range emits lines in nondeterministic order; iterate sorted keys or waive with %s maprange <reason>", AllowDirective)
					}
					return true
				}
			}
			// Writer methods on something that outlives the loop.
			switch sel.Sel.Name {
			case "Write", "WriteString", "WriteByte", "WriteRune":
				if v := terminalVar(sel.X); declaredOutside(v) {
					report(n.Pos(), "writing to %s inside a map range emits bytes in nondeterministic order; iterate sorted keys or waive with %s maprange <reason>", v.Name(), AllowDirective)
				}
			}
		}
		return true
	})
}
