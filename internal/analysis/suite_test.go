package analysis_test

import (
	"testing"

	"gobeagle/internal/analysis"
	"gobeagle/internal/analysis/analysistest"
)

// Each analyzer runs over its fixture package under testdata/src/, which
// seeds every violation class the analyzer must catch alongside the clean
// patterns it must accept; the // want comments in the fixtures are the
// expected-diagnostic oracle.

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, analysis.NoAlloc, "testdata/src/noalloc")
}

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, analysis.NoPanic, "testdata/src/nopanic")
}

func TestFlagExcl(t *testing.T) {
	analysistest.Run(t, analysis.FlagExcl, "testdata/src/flagexcl")
}

func TestHazardCapture(t *testing.T) {
	analysistest.Run(t, analysis.HazardCapture, "testdata/src/hazardcapture")
}

func TestAllocGuard(t *testing.T) {
	analysistest.Run(t, analysis.AllocGuard, "testdata/src/allocguard")
}
