package analysis_test

import (
	"testing"

	"gobeagle/internal/analysis"
	"gobeagle/internal/analysis/analysistest"
)

// Each analyzer runs over its fixture package under testdata/src/, which
// seeds every violation class the analyzer must catch alongside the clean
// patterns it must accept; the // want comments in the fixtures are the
// expected-diagnostic oracle.

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, analysis.NoAlloc, "testdata/src/noalloc")
}

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, analysis.NoPanic, "testdata/src/nopanic")
}

func TestFlagExcl(t *testing.T) {
	analysistest.Run(t, analysis.FlagExcl, "testdata/src/flagexcl")
}

func TestHazardCapture(t *testing.T) {
	analysistest.Run(t, analysis.HazardCapture, "testdata/src/hazardcapture")
}

func TestAllocGuard(t *testing.T) {
	analysistest.Run(t, analysis.AllocGuard, "testdata/src/allocguard")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysis.LockOrder, "testdata/src/lockorder")
}

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysis.AtomicMix, "testdata/src/atomicmix")
}

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, analysis.GoroLeak, "testdata/src/goroleak")
}

func TestMapDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.MapDeterminism, "testdata/src/mapdeterminism")
}

func TestCtxHTTP(t *testing.T) {
	analysistest.Run(t, analysis.CtxHTTP, "testdata/src/ctxhttp")
}
