package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gobeagle/internal/analysis"
)

// TestWaiverRequiresReason pins the waiver grammar across every analyzer
// that supports //beagle:allow: a waiver with no reason must itself be
// reported, for each check name, so an unexplained suppression can never
// slip into the tree.
func TestWaiverRequiresReason(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		check    string // the waiver's check name
		src      string // minimal package with one waived-without-reason site
	}{
		{
			analyzer: analysis.NoPanic,
			check:    "panic",
			src: `package p

func Exported() {
	//beagle:allow panic
	panic("x")
}
`,
		},
		{
			analyzer: analysis.LockOrder,
			check:    "lockorder",
			src: `package p

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func F(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	//beagle:allow lockorder
	b.mu.Lock()
	b.mu.Unlock()
}

func G(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//beagle:allow lockorder opposite order is boot-only
	a.mu.Lock()
	a.mu.Unlock()
}
`,
		},
		{
			analyzer: analysis.AtomicMix,
			check:    "atomicmix",
			src: `package p

import "sync/atomic"

var n int64

func Inc() { atomic.AddInt64(&n, 1) }

func Peek() int64 {
	//beagle:allow atomicmix
	return n
}
`,
		},
		{
			analyzer: analysis.GoroLeak,
			check:    "goroleak",
			src: `package p

func work() {}

func Fire() {
	//beagle:allow goroleak
	go work()
}
`,
		},
		{
			analyzer: analysis.MapDeterminism,
			check:    "maprange",
			src: `package p

func F(m map[string]int) []int {
	var out []int
	for _, v := range m {
		//beagle:allow maprange
		out = append(out, v)
	}
	return out
}
`,
		},
		{
			analyzer: analysis.CtxHTTP,
			check:    "ctxhttp",
			src: `package p

type ResponseWriter interface {
	Write([]byte) (int, error)
	WriteHeader(statusCode int)
}

type Request struct{}

func H(w ResponseWriter, r *Request) {
	w.WriteHeader(200)
	//beagle:allow ctxhttp
	w.WriteHeader(200)
}
`,
		},
	}

	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(tc.src), 0o644); err != nil {
				t.Fatal(err)
			}
			pkg, err := analysis.LoadDir(dir)
			if err != nil {
				t.Fatalf("loading synthetic package: %v", err)
			}
			diags, err := analysis.Run(tc.analyzer, pkg)
			if err != nil {
				t.Fatalf("running %s: %v", tc.analyzer.Name, err)
			}
			want := analysis.AllowDirective + " " + tc.check + " waiver needs a reason"
			found := false
			for _, d := range diags {
				if strings.Contains(d.Message, want) {
					found = true
				}
				if strings.Contains(d.Message, "waiver needs a reason") && !strings.Contains(d.Message, tc.check) {
					t.Errorf("diagnostic names the wrong check: %s", d.Message)
				}
			}
			if !found {
				t.Errorf("%s: reasonless //beagle:allow %s was not reported; diagnostics: %v",
					tc.analyzer.Name, tc.check, diags)
			}
		})
	}
}
