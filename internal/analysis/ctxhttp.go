package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// CtxHTTP checks the serve-layer handler contract. The daemon's HTTP
// surface is the one place where an internal mistake becomes an external
// protocol violation: a panic kills every in-flight request, a second
// WriteHeader is dropped by net/http with only a log line, and a body
// written after an error status corrupts the error reply the client parses.
// Handlers are detected structurally — a function whose first parameter is
// an interface with a WriteHeader(int) method and whose second is a
// pointer to a Request struct — so the check covers http.HandlerFunc
// declarations and mux closures alike without importing net/http here.
//
// Three rules are enforced on every handler:
//
//   - no panic may be lexically inside or reachable through same-package
//     calls from the handler body;
//   - along any sequential path, the response status is written at most
//     once (WriteHeader, http.Error/NotFound/Redirect, or a local helper
//     that transitively writes the status);
//   - after a status known to be an error (a constant >= 400 anywhere in
//     the writing call), the handler must not write body bytes.
//
// Waive with //beagle:allow ctxhttp <reason>.
var CtxHTTP = &Analyzer{
	Name: "ctxhttp",
	Doc:  "HTTP handlers: no panic, status written at most once, no body after an error status",
	Run:  runCtxHTTP,
}

// isHandlerSig reports whether ft is a handler signature as described above.
func isHandlerSig(ft *types.Signature) bool {
	if ft.Params().Len() != 2 {
		return false
	}
	iface, ok := ft.Params().At(0).Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	hasWriteHeader := false
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		if m.Name() != "WriteHeader" {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() == 1 {
			if b, ok := sig.Params().At(0).Type().(*types.Basic); ok && b.Kind() == types.Int {
				hasWriteHeader = true
			}
		}
	}
	if !hasWriteHeader {
		return false
	}
	ptr, ok := types.Unalias(ft.Params().At(1).Type()).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Request"
}

// httpStatus classifies a call's effect on the response status line.
type httpStatus int

const (
	statusNone  httpStatus = iota
	statusOK               // writes a status, not provably an error
	statusError            // writes a status with a constant >= 400
)

func runCtxHTTP(pass *Pass) error {
	info := pass.TypesInfo
	cg := NewCallGraph(pass)

	// statusWriters: local functions that (transitively) write the response
	// status. Seeded with direct WriteHeader / http.Error-family callers and
	// closed over the call graph.
	seed := map[*types.Func]map[string]bool{}
	for fn, fd := range cg.Decls {
		if fd.Body == nil {
			continue
		}
		direct := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if cls := directStatusCall(info, call); cls != statusNone {
					direct = true
				}
			}
			return true
		})
		if direct {
			seed[fn] = map[string]bool{"status": true}
		}
	}
	Fixpoint(cg, seed)
	writesStatus := func(fn *types.Func) bool { return seed[fn]["status"] }

	// classify returns what a call does to the status line: a direct write,
	// or a call into a local status-writing helper. Error-ness is decided by
	// any constant argument >= 400 (http.StatusBadRequest and up), plus the
	// always-error http helpers.
	classify := func(call *ast.CallExpr) httpStatus {
		if cls := directStatusCall(info, call); cls != statusNone {
			if cls == statusOK && hasErrorConstArg(info, call) {
				return statusError
			}
			return cls
		}
		if callee := calleeFunc(info, call); callee != nil && writesStatus(callee) {
			if hasErrorConstArg(info, call) {
				return statusError
			}
			return statusOK
		}
		return statusNone
	}

	// Enumerate handlers: declarations and literals with the handler shape.
	for _, f := range pass.Files {
		allows := fileAllowances(pass.Fset, f)
		report := func(pos token.Pos, format string, args ...any) {
			line := pass.Fset.Position(pos).Line
			waived, hasReason := allowedAt(allows, "ctxhttp", line)
			switch {
			case !waived:
				pass.Reportf(pos, format, args...)
			case !hasReason:
				pass.Reportf(pos, "%s ctxhttp waiver needs a reason", AllowDirective)
			}
		}
		check := func(name string, pos token.Pos, body *ast.BlockStmt, w *types.Var) {
			checkHandlerPanics(pass, cg, name, pos, body, report)
			st := handlerState{pass: pass, info: info, classify: classify, w: w, report: report}
			st.block(body, pathState{})
		}

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				obj, _ := info.Defs[n.Name].(*types.Func)
				if obj == nil {
					return true
				}
				sig := obj.Type().(*types.Signature)
				if isHandlerSig(sig) {
					check(n.Name.Name, n.Pos(), n.Body, sig.Params().At(0))
				}
			case *ast.FuncLit:
				sig, ok := info.TypeOf(n).(*types.Signature)
				if ok && isHandlerSig(sig) {
					check("handler literal", n.Pos(), n.Body, sig.Params().At(0))
				}
			}
			return true
		})
	}
	return nil
}

// directStatusCall classifies calls that write the status themselves:
// anything.WriteHeader(code), and net/http's Error, NotFound and Redirect.
func directStatusCall(info *types.Info, call *ast.CallExpr) httpStatus {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return statusNone
	}
	if sel.Sel.Name == "WriteHeader" && len(call.Args) == 1 {
		return statusOK
	}
	if pkgID, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := info.Uses[pkgID].(*types.PkgName); ok && pn.Imported().Path() == "net/http" {
			switch sel.Sel.Name {
			case "Error", "NotFound":
				return statusError
			case "Redirect", "ServeFile", "ServeContent":
				return statusOK
			}
		}
	}
	return statusNone
}

// hasErrorConstArg reports whether any argument is an integer constant in
// the 4xx/5xx range.
func hasErrorConstArg(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
			if v, exact := constant.Int64Val(tv.Value); exact && v >= 400 && v < 600 {
				return true
			}
		}
	}
	return false
}

// checkHandlerPanics reports panics lexically inside the handler or
// reachable from it through same-package calls.
func checkHandlerPanics(pass *Pass, cg *CallGraph, name string, hpos token.Pos, body *ast.BlockStmt,
	report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	// Direct panics report at the panic site; reachable ones at the handler.
	var callees []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					report(n.Pos(), "handler %s panics; a panic tears down every in-flight request — return an error status or waive with %s ctxhttp <reason>", name, AllowDirective)
					return true
				}
			}
		case *ast.Ident:
			if fn, ok := info.Uses[n].(*types.Func); ok {
				if _, local := cg.Decls[fn]; local {
					callees = append(callees, fn)
				}
			}
		}
		return true
	})
	for _, fn := range sortedFuncs(cg.Reachable(callees...)) {
		fd := cg.Decls[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					report(hpos, "handler %s can reach a panic in %s; a panic tears down every in-flight request — return an error status or waive with %s ctxhttp <reason>", name, fn.Name(), AllowDirective)
				}
			}
			return true
		})
	}
}

// pathState is the abstract response state along one sequential path.
type pathState struct {
	wrote    bool // status line written
	errState bool // ... with a constant error code
	returned bool // path ended
}

// handlerState walks a handler body tracking pathState per sequential path.
type handlerState struct {
	pass     *Pass
	info     *types.Info
	classify func(*ast.CallExpr) httpStatus
	w        *types.Var // the handler's ResponseWriter parameter
	report   func(token.Pos, string, ...any)
}

// block analyzes a statement block starting from st and returns the state
// at its end.
func (h *handlerState) block(b *ast.BlockStmt, st pathState) pathState {
	if b == nil {
		return st
	}
	return h.stmts(b.List, st)
}

func (h *handlerState) stmts(list []ast.Stmt, st pathState) pathState {
	for _, s := range list {
		st = h.stmt(s, st)
		if st.returned {
			break
		}
	}
	return st
}

func (h *handlerState) stmt(s ast.Stmt, st pathState) pathState {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		st.returned = true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			st = h.call(call, st)
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				st = h.call(call, st)
			}
		}
	case *ast.IfStmt:
		thenSt := h.block(s.Body, st)
		elseSt := st
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseSt = h.block(e, st)
		case *ast.IfStmt:
			elseSt = h.stmt(e, st)
		}
		st = mergePaths(thenSt, elseSt)
	case *ast.BlockStmt:
		st = h.block(s, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var bodies []*ast.BlockStmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			bodies = clauseBodies(sw.Body)
		case *ast.TypeSwitchStmt:
			bodies = clauseBodies(sw.Body)
		case *ast.SelectStmt:
			bodies = clauseBodies(sw.Body)
		}
		merged := st
		for _, b := range bodies {
			merged = mergePaths(merged, h.block(b, st))
		}
		st = merged
		st.returned = false
	case *ast.ForStmt:
		st = mergePaths(st, h.block(s.Body, st))
		st.returned = false
	case *ast.RangeStmt:
		st = mergePaths(st, h.block(s.Body, st))
		st.returned = false
	}
	return st
}

// call folds one call into the path state, reporting contract violations.
func (h *handlerState) call(call *ast.CallExpr, st pathState) pathState {
	switch h.classify(call) {
	case statusOK, statusError:
		if st.wrote {
			h.report(call.Pos(), "response status is written a second time on this path (net/http drops it with a log line); write it exactly once or waive with %s ctxhttp <reason>", AllowDirective)
		}
		st.wrote = true
		if h.classify(call) == statusError {
			st.errState = true
		}
		return st
	}
	if st.errState && h.isBodyWrite(call) {
		h.report(call.Pos(), "body bytes are written after an error status on this path, corrupting the error reply; return after writing the error or waive with %s ctxhttp <reason>", AllowDirective)
	}
	return st
}

// isBodyWrite recognizes writes of body bytes through the handler's
// ResponseWriter: w.Write/WriteString, or fmt.Fprint* with w as the
// destination.
func (h *handlerState) isBodyWrite(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	usesW := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		v, _ := h.info.Uses[id].(*types.Var)
		return v == h.w
	}
	switch sel.Sel.Name {
	case "Write", "WriteString":
		return usesW(sel.X)
	case "Fprint", "Fprintf", "Fprintln":
		if pkgID, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if pn, ok := h.info.Uses[pkgID].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				return len(call.Args) > 0 && usesW(call.Args[0])
			}
		}
	}
	return false
}

// mergePaths joins two path states conservatively: a violation on either
// path is real, so "wrote"/"errState" are OR'd over paths that continue.
func mergePaths(a, b pathState) pathState {
	switch {
	case a.returned && b.returned:
		return pathState{returned: true}
	case a.returned:
		return b
	case b.returned:
		return a
	}
	return pathState{wrote: a.wrote || b.wrote, errState: a.errState || b.errState}
}

func clauseBodies(b *ast.BlockStmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, s := range b.List {
		switch c := s.(type) {
		case *ast.CaseClause:
			out = append(out, &ast.BlockStmt{List: c.Body})
		case *ast.CommClause:
			out = append(out, &ast.BlockStmt{List: c.Body})
		}
	}
	return out
}
