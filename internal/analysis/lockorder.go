package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder enforces an acyclic lock-acquisition order across the package's
// sync.Mutex and sync.RWMutex values. The serving layer alone holds three
// mutexes (pool, quota, per-calculator state) and the multi-device engine a
// fourth; a deadlock needs only two code paths that nest any pair of them in
// opposite orders, and no test reliably provokes that interleaving.
//
// The analyzer identifies each lock by the declared variable or struct field
// that holds it (so p.mu on two different Pool values is one lock class —
// exactly the granularity at which ordering rules are stated), records which
// locks every function can end up acquiring (transitively, via the shared
// call graph), and adds an edge A -> B whenever B is acquired — directly or
// through a call — while A is held. Any cycle in that graph is reported at
// the acquisition sites on it. Re-acquiring a plain Mutex already held on
// the same path is reported as an unconditional self-deadlock.
//
// A site can be waived with //beagle:allow lockorder <reason>; the reason
// must state why the interleaving cannot happen (e.g. one side runs only
// during single-threaded setup).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition must follow a global acyclic order (deadlock freedom)",
	Run:  runLockOrder,
}

// mutexKind classifies how a lock value is declared.
func mutexKind(t types.Type) (plain bool, ok bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return true, true
	case "RWMutex":
		return false, true
	}
	return false, false
}

// lockVarOf resolves the receiver expression of a Lock/Unlock call to the
// declared variable or field holding the mutex, or nil.
func lockVarOf(info *types.Info, recv ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(recv).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	t := v.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if _, ok := mutexKind(t); !ok {
		return nil
	}
	return v
}

// lockNames builds human-readable names for lock variables: struct fields
// are qualified with their struct type ("Pool.mu"), free variables keep
// their own name.
func lockNames(pass *Pass) map[*types.Var]string {
	names := map[*types.Var]string{}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						names[v] = ts.Name.Name + "." + name.Name
					}
				}
			}
			return true
		})
	}
	return names
}

func runLockOrder(pass *Pass) error {
	info := pass.TypesInfo
	cg := NewCallGraph(pass)
	names := lockNames(pass)
	nameOf := func(v *types.Var) string {
		if n, ok := names[v]; ok {
			return n
		}
		return v.Name()
	}

	// Per-function facts, gathered in one source-order walk per function:
	//   - acquired: locks the function itself locks;
	//   - edges:    lock held -> lock acquired, at the inner acquisition;
	//   - calls:    same-package calls made while holding locks.
	type heldCall struct {
		callee *types.Func
		held   []*types.Var
		pos    token.Pos
	}
	type acqEdge struct {
		from, to *types.Var
		pos      token.Pos
		self     bool // re-acquiring a lock already held
	}
	acquired := map[*types.Func]map[*types.Var]bool{}
	var edges []acqEdge
	var calls []heldCall

	for _, fn := range cg.Functions() {
		fd := cg.Decls[fn]
		if fd.Body == nil {
			continue
		}
		// Unlocks registered by defer release only when the function
		// returns, so for ordering purposes the lock stays held for the
		// rest of the walk.
		deferred := map[*ast.CallExpr]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if ds, ok := n.(*ast.DeferStmt); ok {
				deferred[ds.Call] = true
			}
			return true
		})

		var held []*types.Var
		holds := func(v *types.Var) bool {
			for _, h := range held {
				if h == v {
					return true
				}
			}
			return false
		}
		acq := map[*types.Var]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if v := lockVarOf(info, sel.X); v != nil {
						if holds(v) {
							plain, _ := mutexKind(derefType(v.Type()))
							if plain && sel.Sel.Name == "Lock" {
								edges = append(edges, acqEdge{from: v, to: v, pos: call.Pos(), self: true})
							}
						} else {
							for _, h := range held {
								edges = append(edges, acqEdge{from: h, to: v, pos: call.Pos()})
							}
							held = append(held, v)
						}
						acq[v] = true
						return true
					}
				case "Unlock", "RUnlock":
					if v := lockVarOf(info, sel.X); v != nil {
						if !deferred[call] {
							for i := len(held) - 1; i >= 0; i-- {
								if held[i] == v {
									held = append(held[:i], held[i+1:]...)
									break
								}
							}
						}
						return true
					}
				}
			}
			if len(held) > 0 {
				if callee := calleeFunc(info, call); callee != nil {
					if _, local := cg.Decls[callee]; local {
						calls = append(calls, heldCall{callee: callee, held: append([]*types.Var(nil), held...), pos: call.Pos()})
					}
				}
			}
			return true
		})
		if len(acq) > 0 {
			acquired[fn] = acq
		}
	}

	// Transitive summaries: every lock a function can end up acquiring
	// through calls, then held -> acquired edges at call sites.
	trans := Fixpoint(cg, acquired)
	for _, hc := range calls {
		var acq []*types.Var
		for v := range trans[hc.callee] {
			acq = append(acq, v)
		}
		sort.Slice(acq, func(i, j int) bool { return acq[i].Pos() < acq[j].Pos() })
		for _, v := range acq {
			for _, h := range hc.held {
				// A callee re-acquiring a plain Mutex the caller holds is an
				// unconditional deadlock; recursive RLock is merely an edge.
				plain, _ := mutexKind(derefType(v.Type()))
				edges = append(edges, acqEdge{from: h, to: v, pos: hc.pos, self: h == v && plain})
			}
		}
	}

	// An edge participates in a deadlock when its endpoints lie on a cycle:
	// either it is a self-edge, or `to` reaches back to `from`.
	adj := map[*types.Var]map[*types.Var]bool{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[*types.Var]bool{}
		}
		adj[e.from][e.to] = true
	}
	reaches := func(from, to *types.Var) bool {
		seen := map[*types.Var]bool{}
		stack := []*types.Var{from}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v == to {
				return true
			}
			if seen[v] {
				continue
			}
			seen[v] = true
			for w := range adj[v] {
				//beagle:allow maprange DFS worklist; only the reachability boolean is read, so visit order cannot matter
				stack = append(stack, w)
			}
		}
		return false
	}

	type finding struct {
		pos token.Pos
		msg string
	}
	var findings []finding
	reported := map[string]bool{}
	for _, e := range edges {
		var msg string
		switch {
		case e.self && e.from == e.to:
			msg = "lock " + nameOf(e.from) + " is re-acquired while already held on this path (self-deadlock)"
		case e.from != e.to && reaches(e.to, e.from):
			msg = "lock-order cycle: " + nameOf(e.to) + " is acquired while holding " + nameOf(e.from) +
				", but the opposite order also occurs; establish a global lock order"
		default:
			continue
		}
		key := pass.Fset.Position(e.pos).String() + "|" + msg
		if reported[key] {
			continue
		}
		reported[key] = true
		findings = append(findings, finding{pos: e.pos, msg: msg})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })

	allowsByFile := map[*token.File][]allowance{}
	for _, f := range pass.Files {
		allowsByFile[pass.Fset.File(f.Pos())] = fileAllowances(pass.Fset, f)
	}
	for _, fnd := range findings {
		allows := allowsByFile[pass.Fset.File(fnd.pos)]
		line := pass.Fset.Position(fnd.pos).Line
		waived, hasReason := allowedAt(allows, "lockorder", line)
		switch {
		case !waived:
			pass.Reportf(fnd.pos, "%s; or waive with %s lockorder <reason>", fnd.msg, AllowDirective)
		case !hasReason:
			pass.Reportf(fnd.pos, "%s lockorder waiver needs a reason", AllowDirective)
		}
	}
	return nil
}

// derefType unwraps one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
