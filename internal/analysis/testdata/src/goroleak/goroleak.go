// Package goroleak is the analyzer fixture: goroutines with no completion
// signal, or whose signal nothing awaits, must be reported; channel, select
// and WaitGroup joins — local or through struct fields — must not. The
// Leaky type reproduces the PR 7 DebugServer bug shape.
package goroleak

import "sync"

func work() {}

// Leaky is the DebugServer bug: the goroutine closes done on exit, but
// Close forgets to receive, so "Close returned" never means "goroutine
// exited".
type Leaky struct {
	done chan struct{}
}

func NewLeaky() *Leaky {
	s := &Leaky{done: make(chan struct{})}
	go func() { // want `signals completion on done but nothing in the package awaits it`
		defer close(s.done)
		work()
	}()
	return s
}

func (s *Leaky) Close() {
	// Forgot <-s.done: the goroutine may still be running.
}

// Joined is the fixed shape: Close receives the completion signal.
type Joined struct {
	done chan struct{}
}

func NewJoined() *Joined {
	s := &Joined{done: make(chan struct{})}
	go func() {
		defer close(s.done)
		work()
	}()
	return s
}

func (s *Joined) Close() { <-s.done }

// Fire has no completion signal at all.
func Fire() {
	go work() // want `no completion signal`
}

// Fan joins through a local WaitGroup.
func Fan(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// Exec spawns a method value whose body signals a field channel joined by
// Wait (the serve-layer calculator executor shape).
type Exec struct {
	closed chan struct{}
}

func NewExec() *Exec {
	e := &Exec{closed: make(chan struct{})}
	go e.run()
	return e
}

func (e *Exec) run() {
	defer close(e.closed)
	work()
}

func (e *Exec) Wait() { <-e.closed }

// Deep signals one call level below the goroutine body.
type Deep struct {
	done chan struct{}
}

func NewDeep() *Deep {
	s := &Deep{done: make(chan struct{})}
	go func() { s.loop() }()
	return s
}

func (s *Deep) loop() {
	defer close(s.done)
	work()
}

func (s *Deep) Close() { <-s.done }

// Worker passes its body as a function-literal argument (the pprof.Do
// labeling pattern); the WaitGroup signal inside it is joined by stop.
type Worker struct {
	jobs chan func()
	done sync.WaitGroup
}

func (p *Worker) start() {
	p.done.Add(1)
	go runWith(func() {
		defer p.done.Done()
		for job := range p.jobs {
			job()
		}
	})
}

func runWith(f func()) { f() }

func (p *Worker) stop() {
	close(p.jobs)
	p.done.Wait()
}

// Serve joins an error channel through a select receive (the daemon's
// ListenAndServe shape).
func Serve() error {
	errc := make(chan error, 1)
	go func() { errc <- run() }()
	select {
	case err := <-errc:
		return err
	}
}

func run() error { return nil }

// Detached is sanctioned with a reasoned waiver.
func Detached() {
	//beagle:allow goroleak fire-and-forget cache warmer; process lifetime by design
	go work()
}

// DetachedBare has a waiver without a reason: itself an error.
func DetachedBare() {
	//beagle:allow goroleak
	go work() // want `goroleak waiver needs a reason`
}
