// Package mapdeterminism is the analyzer fixture: map ranges feeding
// order-sensitive sinks (outer appends, float accumulation, cursor-indexed
// writes, output) must be reported; keyed writes, integer counters, the
// collect-then-sort idiom and reasoned waivers must not.
package mapdeterminism

import (
	"fmt"
	"sort"
	"strings"
)

// Schedule appends ops in map order: every run produces a different
// schedule.
func Schedule(ops map[string]int) []int {
	var out []int
	for _, op := range ops {
		out = append(out, op) // want `append to out inside a map range`
	}
	return out
}

// Keys is the sanctioned idiom: collect, then sort before use.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortedSlice also suppresses: sort.Slice counts as a sort of the result.
func SortedSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Total accumulates floats in map order: the bitwise result differs run to
// run even though the mathematical sum does not.
func Total(w map[string]float64) float64 {
	var sum float64
	for _, v := range w {
		sum += v // want `float accumulation into sum`
	}
	return sum
}

// Count uses an integer accumulator, which commutes exactly.
func Count(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes keyed by loop variables: order-insensitive.
func Invert(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Place indexes by the range value: still keyed, still deterministic.
func Place(idx map[string]int, names []string) {
	for name, i := range idx {
		names[i] = name
	}
}

// Pack writes through an independent cursor: slot assignment follows map
// order.
func Pack(m map[string]int, buf []int) {
	i := 0
	for _, v := range m {
		buf[i] = v // want `indexed write to buf inside a map range`
		i++
	}
}

// Dump prints lines in map order.
func Dump(m map[string]bool) {
	for k := range m {
		fmt.Println(k) // want `printing inside a map range`
	}
}

// Expo streams exposition rows in map order.
func Expo(sb *strings.Builder, m map[string]string) {
	for k := range m {
		sb.WriteString(k) // want `writing to sb inside a map range`
	}
}

// Waived accumulates into a set-like result with a reasoned waiver.
func Waived(m map[string]int) []int {
	var out []int
	for _, v := range m {
		//beagle:allow maprange feeds a histogram; only the multiset of values matters
		out = append(out, v)
	}
	return out
}

// WaivedBare carries a waiver without a reason: itself an error.
func WaivedBare(m map[string]int) []int {
	var out []int
	for _, v := range m {
		//beagle:allow maprange
		out = append(out, v) // want `maprange waiver needs a reason`
	}
	return out
}
