// Package lockorder is the analyzer fixture: opposite-order lock nesting
// (direct and through calls) and re-acquisition of a held Mutex must be
// reported; sequential locking, the unlock/relock idiom and consistently
// ordered nesting must not.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// AB and BA nest the same two locks in opposite orders: the classic
// two-path deadlock. Both inner acquisitions are on the cycle.
func AB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle`
	defer b.mu.Unlock()
}

func BA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock-order cycle`
	defer a.mu.Unlock()
}

// The same inversion hidden behind calls: P holds its lock and calls into
// C, which locks its own; elsewhere C holds its lock and calls back into P.
type P struct{ mu sync.Mutex }

type C struct{ mu sync.Mutex }

func (p *P) LockChild(c *C) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c.lockSelf() // want `lock-order cycle`
}

func (c *C) lockSelf() {
	c.mu.Lock()
	defer c.mu.Unlock()
}

func (c *C) LockParent(p *P) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p.lockSelf() // want `lock-order cycle`
}

func (p *P) lockSelf() {
	p.mu.Lock()
	defer p.mu.Unlock()
}

// Re-acquiring a plain Mutex already held is an unconditional deadlock.
type R struct{ mu sync.Mutex }

func (r *R) Double() {
	r.mu.Lock()
	r.mu.Lock() // want `self-deadlock`
	r.mu.Unlock()
	r.mu.Unlock()
}

// ...including through a call.
type S struct{ mu sync.Mutex }

func (s *S) Outer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner() // want `self-deadlock`
}

func (s *S) inner() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// Clean: sequential lock/unlock over shards never holds two locks at once.
type Sharded struct {
	shards [4]struct {
		mu sync.Mutex
		n  int
	}
}

func (t *Sharded) Total() int {
	sum := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		sum += sh.n
		sh.mu.Unlock()
	}
	return sum
}

// Clean: drop the lock, compute, re-take it (the eigenFor idiom).
type Cache struct {
	mu sync.Mutex
	v  int
}

func (c *Cache) Fill() int {
	c.mu.Lock()
	if c.v != 0 {
		defer c.mu.Unlock()
		return c.v
	}
	c.mu.Unlock()
	v := compute()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v = v
	return v
}

func compute() int { return 42 }

// Clean: two paths that nest X then Y in the same order are a partial
// order, not a cycle.
type X struct{ mu sync.Mutex }

type Y struct{ mu sync.Mutex }

func First(x *X, y *Y) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
}

func Second(x *X, y *Y) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
}

// Waivers: a reasoned waiver silences the site; a bare one is an error.
type W1 struct{ mu sync.Mutex }

type W2 struct{ mu sync.Mutex }

func WaivedSide(a *W1, b *W2) {
	a.mu.Lock()
	defer a.mu.Unlock()
	//beagle:allow lockorder boot-time only; the opposite order runs after serving starts
	b.mu.Lock()
	defer b.mu.Unlock()
}

func BareWaiver(a *W1, b *W2) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//beagle:allow lockorder
	a.mu.Lock() // want `lockorder waiver needs a reason`
	defer a.mu.Unlock()
}
