// Package ctxhttp is the analyzer fixture: handlers (detected structurally,
// so net/http is not imported here) must not panic, must write the status
// at most once per path, and must not write body bytes after an error
// status. Helper-mediated status writes are found through the call graph.
package ctxhttp

import "fmt"

type header map[string][]string

// ResponseWriter mirrors net/http's interface shape; the analyzer detects
// handlers by the WriteHeader(int) method, not by import path.
type ResponseWriter interface {
	Header() header
	Write([]byte) (int, error)
	WriteHeader(statusCode int)
}

type Request struct {
	Method string
	Path   string
}

const (
	statusOK         = 200
	statusBadRequest = 400
	statusNotFound   = 404
)

// writeError writes the status through a helper; the analyzer's call-graph
// summary marks it a status writer.
func writeError(w ResponseWriter, code int, msg string) {
	w.WriteHeader(code)
	fmt.Fprintln(w, msg)
}

// handleGood writes exactly once on every path.
func handleGood(w ResponseWriter, r *Request) {
	if r.Method != "POST" {
		writeError(w, statusBadRequest, "POST only")
		return
	}
	w.WriteHeader(statusOK)
	fmt.Fprintln(w, "ok")
}

// handleDouble writes the status line twice on the same path.
func handleDouble(w ResponseWriter, r *Request) {
	w.WriteHeader(statusOK)
	w.WriteHeader(statusOK) // want `status is written a second time`
}

// handleFallthrough writes an error in a branch that forgets to return,
// then writes again.
func handleFallthrough(w ResponseWriter, r *Request) {
	if r.Path == "" {
		writeError(w, statusNotFound, "not found")
	}
	w.WriteHeader(statusOK) // want `status is written a second time`
}

// handleTrailer appends body bytes to an error reply.
func handleTrailer(w ResponseWriter, r *Request) {
	writeError(w, statusBadRequest, "bad request")
	fmt.Fprintln(w, "details follow") // want `body bytes are written after an error status`
}

// handlePanic panics on bad input instead of returning a status.
func handlePanic(w ResponseWriter, r *Request) {
	if r.Path == "" {
		panic("empty path") // want `handler handlePanic panics`
	}
	w.WriteHeader(statusOK)
}

// handleDeepPanic reaches a panic through a helper.
func handleDeepPanic(w ResponseWriter, r *Request) { // want `handler handleDeepPanic can reach a panic in mustParse`
	mustParse(r.Path)
	w.WriteHeader(statusOK)
}

func mustParse(p string) {
	if p == "" {
		panic("bad path")
	}
}

// Handler literals are checked too; this one is clean.
var routes = map[string]func(ResponseWriter, *Request){}

func register() {
	routes["/"] = func(w ResponseWriter, r *Request) {
		if r.Path != "/" {
			writeError(w, statusNotFound, "no such route")
			return
		}
		fmt.Fprintln(w, "index")
	}
}

// handleWaived documents a double write with a reason.
func handleWaived(w ResponseWriter, r *Request) {
	w.WriteHeader(statusOK)
	//beagle:allow ctxhttp legacy retry shim; second write is dropped by the recorder on purpose
	w.WriteHeader(statusOK)
}

// handleWaivedBare has a waiver without a reason: itself an error.
func handleWaivedBare(w ResponseWriter, r *Request) {
	w.WriteHeader(statusOK)
	//beagle:allow ctxhttp
	w.WriteHeader(statusOK) // want `ctxhttp waiver needs a reason`
}
