// Package flagexcl is the analyzer fixture: a miniature of the library's
// Flags bitfield with a threading-selection subset, a String method that
// forgets one constant, and construction sites that do and do not combine
// mutually exclusive threading flags.
package flagexcl

import "strings"

// Flags mirrors the shape of the library's public bitfield.
type Flags uint64

const (
	FlagFutures Flags = 1 << iota
	FlagThreadCreate
	FlagThreadPool
	FlagScalers
	FlagHidden // want `FlagHidden is not rendered by Flags.String`
)

// threadingFlags is the mutual-exclusion set; its own definition ORs members
// and must be exempt.
const threadingFlags = FlagFutures | FlagThreadCreate | FlagThreadPool

// String's name table deliberately omits FlagHidden.
func (f Flags) String() string {
	names := []struct {
		bit  Flags
		name string
	}{
		{FlagFutures, "FUTURES"},
		{FlagThreadCreate, "THREAD_CREATE"},
		{FlagThreadPool, "THREAD_POOL"},
		{FlagScalers, "SCALERS"},
	}
	var parts []string
	for _, fn := range names {
		if f&fn.bit != 0 {
			parts = append(parts, fn.name)
		}
	}
	return strings.Join(parts, "|")
}

// BadSelect ORs two members of the threading set at a construction site.
func BadSelect() Flags {
	return FlagFutures | FlagThreadPool // want `combines two mutually exclusive threading flags`
}

// BadSelectVar seeds the same bug through an intermediate constant expression.
func BadSelectVar() Flags {
	f := FlagThreadCreate | FlagThreadPool | FlagScalers // want `combines two mutually exclusive threading flags`
	return f
}

// GoodSelect combines one threading flag with orthogonal options.
func GoodSelect() Flags {
	return FlagThreadPool | FlagScalers
}

// ClearAll clears the whole threading set; the OR on the right of &^ is a
// mask expression, not a selection, and must be exempt.
func ClearAll(f Flags) Flags {
	return f &^ (FlagFutures | FlagThreadCreate | FlagThreadPool)
}

// TestAny tests membership with &; also exempt.
func TestAny(f Flags) bool {
	return f&(FlagFutures|FlagThreadPool) != 0
}

// Mode has Flag* constants but no String method at all.
type Mode uint8 // want `flag type Mode has Flag\* constants but no String method`

const (
	FlagModeRaw Mode = 1 << iota
	FlagModeCooked
)
