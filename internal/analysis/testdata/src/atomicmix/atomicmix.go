// Package atomicmix is the analyzer fixture: any plain load or store of a
// variable that is elsewhere accessed through sync/atomic must be reported;
// consistently-plain fields, composite-literal initialization and reasoned
// waivers must not.
package atomicmix

import "sync/atomic"

type Counter struct {
	// hits is maintained atomically by the fast path.
	hits int64
	// cold is guarded by external synchronization and never touched
	// atomically, so plain access is consistent.
	cold int64
}

func (c *Counter) Inc() { atomic.AddInt64(&c.hits, 1) }

func (c *Counter) Load() int64 { return atomic.LoadInt64(&c.hits) }

// Peek reads the atomic field plainly: a data race.
func (c *Counter) Peek() int64 {
	return c.hits // want `hits is accessed via sync/atomic elsewhere but plainly here`
}

// Reset stores plainly over concurrent atomic adds: lost updates.
func (c *Counter) Reset() {
	c.hits = 0 // want `hits is accessed via sync/atomic`
}

// Bump touches only the consistently-plain field.
func (c *Counter) Bump() { c.cold++ }

// New initializes through a composite literal, which names the field but
// happens before the value is shared; not a mixed access.
func New() *Counter {
	return &Counter{hits: 0, cold: 0}
}

// Package-level variables mix the same way fields do.
var generation int64

func Advance() { atomic.AddInt64(&generation, 1) }

func Stale() int64 {
	return generation // want `generation is accessed via sync/atomic`
}

// Waived with a reason: allowed.
func (c *Counter) Approx() int64 {
	//beagle:allow atomicmix approximate stats read; torn values are acceptable here
	return c.hits
}

// A bare waiver is itself an error.
func (c *Counter) ApproxBare() int64 {
	//beagle:allow atomicmix
	return c.hits // want `atomicmix waiver needs a reason`
}
