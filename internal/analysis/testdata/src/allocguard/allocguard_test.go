package allocguard

import "testing"

func TestGuardedAllocs(t *testing.T) {
	xs := []float64{1, 2, 3}
	if n := testing.AllocsPerRun(100, func() { Guarded(xs) }); n != 0 {
		t.Fatalf("Guarded allocated %v times per run", n)
	}
}
