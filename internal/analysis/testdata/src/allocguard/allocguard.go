// Package allocguard is the analyzer fixture: every exported
// //beagle:noalloc function needs a testing.AllocsPerRun guard in the
// package's tests. Guarded has one (see allocguard_test.go), Unguarded does
// not, and the unexported helper is exempt.
package allocguard

//beagle:noalloc
func Guarded(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

//beagle:noalloc
func Unguarded(xs []float64) float64 { // want `Unguarded is //beagle:noalloc but no testing.AllocsPerRun guard`
	var s float64
	for _, v := range xs {
		s += v * v
	}
	return s
}

// hidden is unexported: only reachable through annotated exported callers,
// whose guards cover it.
//
//beagle:noalloc
func hidden(a, b float64) float64 { return a*b + b }
