// Package hazardcapture is the analyzer fixture: closures handed to `go` or
// to pool submit-style calls must not capture shared mutable locals. The
// positive cases seed the two hazard classes; the negatives pin down the Go
// 1.22 per-iteration and per-task-slot patterns the analyzer must accept.
package hazardcapture

import "sync"

type pool struct{}

func (p *pool) submit(task func()) { go task() }

func sink(n int) { _ = n }

// LoopShared dispatches a closure in a loop capturing a variable declared
// outside the loop that the loop body writes: every dispatched goroutine
// races the next iteration's write.
func LoopShared(p *pool, items []int) int {
	var last int
	for _, it := range items {
		last = it
		p.submit(func() { // want `captures last, which the loop writes`
			sink(last)
		})
	}
	return last
}

// GoShared is the same hazard through a bare go statement.
func GoShared(items []int) {
	var wg sync.WaitGroup
	var cur int
	for _, it := range items {
		cur = it
		wg.Add(1)
		go func() { // want `captures cur, which the loop writes`
			defer wg.Done()
			sink(cur)
		}()
	}
	wg.Wait()
}

// WriteAfterDispatch captures a variable the function writes after the
// dispatch point; the goroutine races that write with no loop involved.
func WriteAfterDispatch(p *pool) int {
	x := 1
	p.submit(func() { // want `captures x, which is written after the dispatch`
		sink(x)
	})
	x = 2
	return x
}

// PerIteration captures the Go 1.22 per-iteration loop variable: each
// dispatched closure owns its copy, which is safe.
func PerIteration(p *pool, items []int) {
	for _, it := range items {
		p.submit(func() { sink(it) })
	}
}

// PerSlot writes results through a per-task element, never assigning the
// captured slice variable itself: safe.
func PerSlot(p *pool, items []int) []int {
	out := make([]int, len(items))
	for i, it := range items {
		p.submit(func() { out[i] = it * 2 })
	}
	return out
}

// ArgumentPassing hands the loop value over as a call argument instead of a
// capture: safe even though the variable is declared outside the loop.
func ArgumentPassing(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			sink(v)
		}(it)
	}
	wg.Wait()
}
