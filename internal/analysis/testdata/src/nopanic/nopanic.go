// Package nopanic is the analyzer fixture: panics reachable from the
// exported API must be reported, panics in dead code must not, and waivers
// must carry a reason.
package nopanic

// Exported panics directly: reachable by definition.
func Exported(n int) int {
	if n < 0 {
		panic("negative input") // want `panic in Exported is reachable`
	}
	return n
}

// Outer reaches a panic transitively through an unexported helper.
func Outer(n int) int { return inner(n) }

func inner(n int) int {
	if n == 0 {
		panic("zero") // want `panic in inner is reachable`
	}
	return 1 / n
}

// unreached is referenced by nothing exported: its panic is not reported.
func unreached() {
	panic("dead code")
}

// table is a package-level initializer, which runs unconditionally at import
// time, so the function it references is an entry point.
var table = buildTable()

func buildTable() []int {
	panic("unimplemented") // want `panic in buildTable is reachable`
}

// NewThing shows the sanctioned escape hatch: a reasoned waiver.
func NewThing(n int) int {
	if n <= 0 {
		//beagle:allow panic constructor invariant; all callers pass positive literals
		panic("bad n")
	}
	return n
}

// Reasonless has a waiver with no justification, which is itself an error.
func Reasonless() {
	//beagle:allow panic
	panic("unexplained") // want `waiver needs a reason`
}

// Trailing shows the same-line waiver form.
func Trailing(err error) {
	if err != nil {
		panic(err) //beagle:allow panic test-only assertion helper; callers opt in to process death
	}
}
