// Package noalloc is the analyzer fixture: each annotated function seeds one
// class of allocating construct the analyzer must reject, and the clean
// functions at the bottom pin down what it must accept.
package noalloc

import (
	"fmt"
	"time"
)

type point struct{ x, y int }

//beagle:noalloc
func UsesMake(n int) int {
	xs := make([]int, n) // want `make allocates`
	return len(xs)
}

//beagle:noalloc
func UsesNew() int {
	p := new(int) // want `new allocates`
	return *p
}

//beagle:noalloc
func UsesAppend(xs []int) []int {
	xs = append(xs, 1) // want `append may grow and reallocate`
	return xs
}

//beagle:noalloc
func SliceLiteral() int {
	xs := []int{1, 2, 3} // want `slice literal allocates`
	return xs[0]
}

//beagle:noalloc
func MapLiteral() int {
	m := map[string]int{} // want `map literal allocates`
	return len(m)
}

//beagle:noalloc
func CompositeAddress() *point {
	return &point{1, 2} // want `address of composite literal escapes`
}

//beagle:noalloc
func Captures(n int) func() int {
	return func() int { return n } // want `closure captures n and escapes`
}

//beagle:noalloc
func Spawns() {
	go cleanHelper() // want `go statement allocates a goroutine`
}

//beagle:noalloc
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//beagle:noalloc
func ConcatAssign(s string) string {
	s += "!" // want `string concatenation allocates`
	return s
}

//beagle:noalloc
func StringToBytes(s string) int {
	b := []byte(s) // want `conversion allocates`
	return len(b)
}

//beagle:noalloc
func BytesToString(b []byte) int {
	s := string(b) // want `conversion allocates`
	return len(s)
}

//beagle:noalloc
func ConvertsToInterface(n int) int {
	v := any(n) // want `conversion to interface type any boxes its operand`
	_, _ = v.(int)
	return n
}

//beagle:noalloc
func AssignsToInterface(n int) {
	var x any
	x = n // want `assignment boxes a concrete value into an interface`
	_ = x
}

//beagle:noalloc
func ReturnsInterface(n int) any {
	return n // want `return boxes a concrete value into an interface result`
}

//beagle:noalloc
func ArgBoxes(n int) {
	takesAny(n) // want `argument boxes int into interface any`
}

//beagle:noalloc
func CallsFmt() {
	fmt.Println() // want `call to fmt.Println allocates`
}

//beagle:noalloc
func CallsTimeNow() int64 {
	return time.Now().UnixNano() // want `time.Now is forbidden`
}

//beagle:noalloc
func CallsUnannotated() {
	helper() // want `calls same-package helper, which is not`
}

// helper is deliberately not annotated.
func helper() {}

//beagle:noalloc
func takesAny(v any) { _ = v }

//beagle:noalloc
func cleanHelper() {}

// Clean exercises the constructs the analyzer must tolerate: arithmetic,
// indexing, range over a parameter slice, element writes, nil interface
// assignment, and calls to annotated same-package functions.
//
//beagle:noalloc
func Clean(xs []float64, out []float64) float64 {
	var sum float64
	for i, v := range xs {
		out[i] = v * 2
		sum += v
	}
	cleanHelper()
	var err error
	err = nil
	_ = err
	return sum
}

// NotAnnotated may allocate freely; the analyzer must ignore it.
func NotAnnotated(n int) []int {
	return make([]int, n)
}

// --- span-tracer record-path patterns ------------------------------------
// The span tracer (internal/trace) annotates its Record path
// //beagle:noalloc; these fixtures seed the mistakes that would silently
// break it — taking timestamps inside the record path, heap-building spans,
// growing a span slice, boxing span fields — and pin down the ring-store
// shape the real path must keep.

type span struct {
	kind  uint8
	lane  int32
	start int64
	dur   int64
}

type ring struct {
	count uint64
	slots [4]span
}

//beagle:noalloc
func RecordTakesTimestamp(r *ring, s span) {
	s.start = time.Now().UnixNano() // want `time.Now is forbidden`
	r.slots[r.count%4] = s
	r.count++
}

//beagle:noalloc
func RecordHeapBuildsSpan() *span {
	return &span{kind: 1} // want `address of composite literal escapes`
}

//beagle:noalloc
func RecordGrowsSlice(spans []span, s span) []span {
	return append(spans, s) // want `append may grow and reallocate`
}

//beagle:noalloc
func RecordBoxesField(s span) {
	takesAny(s.lane) // want `argument boxes int32 into interface any`
}

// CleanRecord is the shape the real record path must keep: a value struct
// (built inline, no pointer) stored into a fixed ring slot behind a
// modular index, counters bumped in place, no timestamps and no boxing.
//
//beagle:noalloc
func CleanRecord(r *ring, lane int32, start, dur int64) {
	r.slots[r.count%4] = span{kind: 2, lane: lane, start: start, dur: dur}
	r.count++
}

// --- cache hit-path patterns ---------------------------------------------
// The reuse tracker (internal/reuse) annotates its per-operation decision
// path //beagle:noalloc: it runs once per submitted op on every proposal, so
// a single allocation there erodes the very speedup it exists to buy. These
// fixtures seed the tempting shortcuts — string signature keys, a per-call
// map of seen destinations, growing a kept-ops slice, boxing buffer indices
// into an any-keyed lookup — and pin down the version-counter compare the
// real decision path must keep.

type opKey struct {
	dest, c1, c2 int
	c1Ver, c2Ver uint64
}

type cache struct {
	vers []uint64
	sigs []opKey
	hits uint64
}

//beagle:noalloc
func DecideWithStringKey(dest int, sigs []string) bool {
	return sigs[dest] == fmt.Sprintf("op") // want `call to fmt.Sprintf allocates`
}

//beagle:noalloc
func DecideWithSeenMap(ops []opKey) int {
	seen := map[int]bool{} // want `map literal allocates`
	for _, op := range ops {
		seen[op.dest] = true
	}
	return len(seen)
}

//beagle:noalloc
func DecideGrowsKeptOps(kept []opKey, op opKey) []opKey {
	return append(kept, op) // want `append may grow and reallocate`
}

//beagle:noalloc
func DecideBoxesIndex(dest int) {
	takesAny(dest) // want `argument boxes int into interface any`
}

//beagle:noalloc
func DecideHeapBuildsKey(dest int) *opKey {
	return &opKey{dest: dest} // want `address of composite literal escapes`
}

// CleanDecide is the shape the real decision path must keep: compare the
// stored signature's input versions against the live counters, overwrite the
// signature slot in place on a miss (a value struct literal, not a pointer),
// and bump counters without formatting, maps, or boxing.
//
//beagle:noalloc
func CleanDecide(c *cache, dest, c1, c2 int) bool {
	sig := c.sigs[dest]
	if sig.c1 == c1 && sig.c2 == c2 && sig.c1Ver == c.vers[c1] && sig.c2Ver == c.vers[c2] {
		c.hits++
		return false
	}
	c.sigs[dest] = opKey{dest: dest, c1: c1, c2: c2, c1Ver: c.vers[c1], c2Ver: c.vers[c2]}
	c.vers[dest]++
	return true
}
