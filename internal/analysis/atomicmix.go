package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// AtomicMix flags variables and struct fields that are accessed both through
// sync/atomic and through plain loads or stores. The telemetry, trace and
// reuse layers all keep "disabled path is one atomic load" fast paths; a
// plain read slipped in next to the atomic ones is a data race the race
// detector only catches if a test happens to hit the interleaving, and on
// weakly-ordered hardware it can observe torn or stale values. The fix is to
// access such fields through sync/atomic everywhere (or migrate to the typed
// atomic.Int64 and friends, which make mixing impossible).
//
// The analyzer collects every address handed to a sync/atomic function
// (atomic.AddInt64(&x.f, 1) marks x.f) and then reports each remaining plain
// use of the same variable. Struct-literal keys are not uses of the value
// and initialization before publication is the one legitimate plain write,
// so composite-literal keys are skipped. A site can be waived with
// //beagle:allow atomicmix <reason> (e.g. "read under mu, writers hold mu").
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "no mixing of sync/atomic and plain access on the same variable",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	info := pass.TypesInfo

	// terminalVar resolves an expression like x.f, (&x).f or f to the
	// declared variable or field it names.
	terminalVar := func(e ast.Expr) *types.Var {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[e].(*types.Var)
			return v
		case *ast.SelectorExpr:
			v, _ := info.Uses[e.Sel].(*types.Var)
			return v
		}
		return nil
	}

	// Pass 1: addresses taken for sync/atomic calls. atomicIdents records
	// the identifier nodes inside those arguments so pass 2 does not count
	// them as plain uses.
	atomicVars := map[*types.Var]bool{}
	atomicIdents := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[pkgID].(*types.PkgName)
			if !ok || pn.Imported().Path() != "sync/atomic" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op.String() != "&" {
				return true
			}
			if v := terminalVar(addr.X); v != nil {
				atomicVars[v] = true
				ast.Inspect(call.Args[0], func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						atomicIdents[id] = true
					}
					return true
				})
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Composite-literal keys name the field, not its value.
	litKeys := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, el := range cl.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						litKeys[id] = true
					}
				}
			}
			return true
		})
	}

	// Pass 2: every remaining use of an atomically-accessed variable is a
	// plain load or store.
	type plainUse struct {
		id *ast.Ident
		v  *types.Var
		f  *ast.File
	}
	var uses []plainUse
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || atomicIdents[id] || litKeys[id] {
				return true
			}
			if v, ok := info.Uses[id].(*types.Var); ok && atomicVars[v] {
				uses = append(uses, plainUse{id: id, v: v, f: f})
			}
			return true
		})
	}
	sort.Slice(uses, func(i, j int) bool { return uses[i].id.Pos() < uses[j].id.Pos() })

	for _, u := range uses {
		allows := fileAllowances(pass.Fset, u.f)
		line := pass.Fset.Position(u.id.Pos()).Line
		waived, hasReason := allowedAt(allows, "atomicmix", line)
		switch {
		case !waived:
			pass.Reportf(u.id.Pos(), "%s is accessed via sync/atomic elsewhere but plainly here; mixed access races — use sync/atomic consistently or waive with %s atomicmix <reason>", u.v.Name(), AllowDirective)
		case !hasReason:
			pass.Reportf(u.id.Pos(), "%s atomicmix waiver needs a reason", AllowDirective)
		}
	}
	return nil
}
