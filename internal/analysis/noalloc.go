package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc rejects allocating constructs in functions annotated
// //beagle:noalloc: the pruning kernels, the telemetry fast path and the
// worker-pool dispatch primitive. The paper's throughput figures (Fig. 4,
// Table III) assume these bodies execute no allocations — a silently
// introduced make, boxed interface value or fmt call erases exactly the
// margin the evaluation measures, and a time.Now on the telemetry disabled
// path breaks its single-atomic-load budget.
//
// Flagged constructs:
//
//   - make, new, append (growth can reallocate), and slice/map composite
//     literals;
//   - taking the address of a composite literal;
//   - closures that capture outer variables (captured closures escape), and
//     go statements;
//   - implicit or explicit conversions of concrete values to interface
//     types (boxing), including variadic ...any arguments;
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - any call into the fmt package, and time.Now;
//   - calls to same-package functions that are not themselves annotated
//     //beagle:noalloc (the contract is verified per function, so it must
//     cover the whole same-package call tree).
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "reject allocating constructs in //beagle:noalloc functions",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	// Pre-pass: which functions in this package carry the annotation?
	annotated := map[*types.Func]bool{}
	var marked []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, NoAllocDirective) {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				annotated[obj] = true
			}
			marked = append(marked, fd)
		}
	}
	for _, fd := range marked {
		if fd.Body == nil {
			continue
		}
		checkNoAllocBody(pass, fd, annotated)
	}
	return nil
}

func checkNoAllocBody(pass *Pass, fd *ast.FuncDecl, annotated map[*types.Func]bool) {
	info := pass.TypesInfo
	name := fd.Name.Name
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, "%s is //beagle:noalloc: "+format, append([]any{name}, args...)...)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNoAllocCall(pass, report, n, annotated)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			if caps := capturedVars(info, n); len(caps) > 0 {
				report(n.Pos(), "closure captures %s and escapes", caps[0].Name())
				return false // inner body is the closure's problem once flagged
			}
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				report(n.Pos(), "string concatenation allocates")
			}
			checkInterfaceAssign(info, report, n)
		case *ast.ReturnStmt:
			checkInterfaceReturn(pass, report, fd, n)
		}
		return true
	})
}

// checkNoAllocCall vets one call expression inside a noalloc body: builtins,
// conversions, deny-listed stdlib calls, interface-boxing arguments, and the
// same-package noalloc closure property.
func checkNoAllocCall(pass *Pass, report func(token.Pos, string, ...any), call *ast.CallExpr, annotated map[*types.Func]bool) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow and reallocate its backing array")
			}
			return
		}
	}
	// Type conversions: interface boxing and string<->byte-slice copies.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			switch {
			case isInterface(to) && from != nil && !isInterface(from):
				report(call.Pos(), "conversion to interface type %s boxes its operand", types.TypeString(to, types.RelativeTo(pass.Pkg)))
			case isStringType(to) && isByteOrRuneSlice(from):
				report(call.Pos(), "[]byte/[]rune to string conversion allocates")
			case isByteOrRuneSlice(to) && isStringType(from):
				report(call.Pos(), "string to []byte/[]rune conversion allocates")
			}
		}
		return
	}
	// Deny-listed packages/functions, and same-package contract coverage.
	if fn := calleeFunc(info, call); fn != nil {
		if fn.Pkg() != nil {
			switch {
			case fn.Pkg().Path() == "fmt":
				report(call.Pos(), "call to %s.%s allocates", fn.Pkg().Name(), fn.Name())
			case fn.Pkg().Path() == "time" && fn.Name() == "Now":
				report(call.Pos(), "time.Now is forbidden on the telemetry fast path")
			case fn.Pkg() == pass.Pkg && !annotated[fn] && fn.Name() != "" && !isAccessorMethod(fn):
				report(call.Pos(), "calls same-package %s, which is not //beagle:noalloc", fn.Name())
			}
		}
	}
	// Arguments implicitly converted to interface parameters (boxing).
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		} else if i < sig.Params().Len() {
			param = sig.Params().At(i).Type()
		}
		at := info.TypeOf(arg)
		if isInterface(param) && at != nil && !isInterface(at) && !isUntypedNil(info, arg) {
			report(arg.Pos(), "argument boxes %s into interface %s", types.TypeString(at, types.RelativeTo(pass.Pkg)), types.TypeString(param, types.RelativeTo(pass.Pkg)))
		}
	}
}

// checkInterfaceAssign flags assignments that box a concrete value into an
// interface-typed variable.
func checkInterfaceAssign(info *types.Info, report func(token.Pos, string, ...any), n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		lt := info.TypeOf(lhs)
		rt := info.TypeOf(n.Rhs[i])
		if isInterface(lt) && rt != nil && !isInterface(rt) && !isUntypedNil(info, n.Rhs[i]) {
			report(n.Rhs[i].Pos(), "assignment boxes a concrete value into an interface")
		}
	}
}

// checkInterfaceReturn flags return statements that box concrete values into
// interface-typed results.
func checkInterfaceReturn(pass *Pass, report func(token.Pos, string, ...any), fd *ast.FuncDecl, n *ast.ReturnStmt) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if len(n.Results) != results.Len() {
		return // naked return or multi-value call; nothing new is boxed here
	}
	for i, res := range n.Results {
		rt := pass.TypesInfo.TypeOf(res)
		if isInterface(results.At(i).Type()) && rt != nil && !isInterface(rt) && !isUntypedNil(pass.TypesInfo, res) {
			report(res.Pos(), "return boxes a concrete value into an interface result")
		}
	}
}

// capturedVars returns the variables a function literal references that are
// declared outside it (its free variables), in source order.
func capturedVars(info *types.Info, fn *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Package-level variables are shared state, not captures.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < fn.Pos() || v.Pos() > fn.End() {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

// isAccessorMethod reports whether fn is a method; method calls on
// already-annotated receivers are vetted at their own declaration, and
// flagging every unannotated method would force annotations onto tiny
// generated accessors (atomic.Load/Store-style wrappers). Same-package
// *functions* must be annotated; same-package *methods* are only vetted if
// they carry the annotation themselves.
func isAccessorMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}
