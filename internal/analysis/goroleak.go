package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak enforces joined goroutine lifecycles: every goroutine the package
// launches must publish a completion signal — closing a channel, sending on
// one, or calling WaitGroup.Done — and some function in the package must
// await that signal (receive, range, or Wait). PR 7 shipped exactly the bug
// this catches: DebugServer spawned its accept loop with a done channel that
// Close never received from, so "Close returned" did not mean "goroutine
// exited", and tests raced instance finalization against a live server.
//
// The analyzer resolves each go statement's body (function literal, a
// same-package method value like go c.run(), and function-literal arguments
// such as the closure handed to pprof.Do), scans it — transitively through
// same-package calls if need be — for completion signals, and then searches
// the rest of the package for a matching join. A goroutine with no signal at
// all, or whose signal no one awaits, is reported at the go statement. Waive
// with //beagle:allow goroleak <reason> for genuinely detached goroutines.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every spawned goroutine must signal completion and be joined",
	Run:  runGoroLeak,
}

// goroSignal is one completion signal a goroutine body performs.
type goroSignal struct {
	v    *types.Var // the channel or WaitGroup variable
	kind string     // "close", "send" or "Done"
}

func runGoroLeak(pass *Pass) error {
	info := pass.TypesInfo
	cg := NewCallGraph(pass)

	terminalVar := func(e ast.Expr) *types.Var {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[e].(*types.Var)
			return v
		case *ast.SelectorExpr:
			v, _ := info.Uses[e.Sel].(*types.Var)
			return v
		}
		return nil
	}
	isChanVar := func(v *types.Var) bool {
		_, ok := v.Type().Underlying().(*types.Chan)
		return ok
	}
	isWaitGroupVar := func(v *types.Var) bool {
		t := derefType(v.Type())
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
	}

	// collectSignals scans goroutine bodies for completion signals.
	collectSignals := func(bodies []ast.Node) []goroSignal {
		var sigs []goroSignal
		for _, b := range bodies {
			ast.Inspect(b, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					if v := terminalVar(n.Chan); v != nil && isChanVar(v) {
						sigs = append(sigs, goroSignal{v: v, kind: "send"})
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
						if bi, ok := info.Uses[id].(*types.Builtin); ok && bi.Name() == "close" && len(n.Args) == 1 {
							if v := terminalVar(n.Args[0]); v != nil && isChanVar(v) {
								sigs = append(sigs, goroSignal{v: v, kind: "close"})
							}
						}
					}
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
						if v := terminalVar(sel.X); v != nil && isWaitGroupVar(v) {
							sigs = append(sigs, goroSignal{v: v, kind: "Done"})
						}
					}
				}
				return true
			})
		}
		return sigs
	}

	// localFuncsIn returns the same-package functions a body references.
	localFuncsIn := func(bodies []ast.Node) []*types.Func {
		var out []*types.Func
		for _, b := range bodies {
			ast.Inspect(b, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if fn, ok := info.Uses[id].(*types.Func); ok {
						if _, local := cg.Decls[fn]; local {
							out = append(out, fn)
						}
					}
				}
				return true
			})
		}
		return out
	}

	inBodies := func(pos token.Pos, bodies []ast.Node) bool {
		for _, b := range bodies {
			if b.Pos() <= pos && pos <= b.End() {
				return true
			}
		}
		return false
	}

	// joined reports whether any function in the package awaits the signal
	// variable — a receive, a range, or a Wait call — outside the goroutine
	// bodies themselves.
	joined := func(sig goroSignal, exclude []ast.Node) bool {
		found := false
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if found {
					return false
				}
				switch n := n.(type) {
				case *ast.UnaryExpr:
					if n.Op == token.ARROW && terminalVar(n.X) == sig.v && !inBodies(n.Pos(), exclude) {
						found = true
					}
				case *ast.RangeStmt:
					if v := terminalVar(n.X); v == sig.v && !inBodies(n.Pos(), exclude) {
						found = true
					}
				case *ast.CallExpr:
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
						if terminalVar(sel.X) == sig.v && !inBodies(n.Pos(), exclude) {
							found = true
						}
					}
				}
				return true
			})
			if found {
				return true
			}
		}
		return false
	}

	for _, f := range pass.Files {
		allows := fileAllowances(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			call := gs.Call

			// The code the goroutine runs: a literal body, a same-package
			// callee's body, and literal arguments (the pprof.Do pattern).
			var bodies []ast.Node
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				bodies = append(bodies, lit.Body)
			} else if callee := calleeFunc(info, call); callee != nil {
				if fd, local := cg.Decls[callee]; local && fd.Body != nil {
					bodies = append(bodies, fd.Body)
				}
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					bodies = append(bodies, lit.Body)
				}
			}
			if len(bodies) == 0 {
				// Dynamic spawn of an external function: nothing to prove.
				return true
			}

			sigs := collectSignals(bodies)
			if len(sigs) == 0 {
				// Look one level deeper: the signal may live in a helper the
				// goroutine calls. Extending the exclusion region lazily
				// keeps join sites in unrelated callers visible.
				for _, fn := range sortedFuncs(cg.Reachable(localFuncsIn(bodies)...)) {
					if fd := cg.Decls[fn]; fd != nil && fd.Body != nil {
						bodies = append(bodies, fd.Body)
					}
				}
				sigs = collectSignals(bodies)
			}

			line := pass.Fset.Position(gs.Pos()).Line
			waived, hasReason := allowedAt(allows, "goroleak", line)
			report := func(format string, args ...any) {
				switch {
				case !waived:
					pass.Reportf(gs.Pos(), format, args...)
				case !hasReason:
					pass.Reportf(gs.Pos(), "%s goroleak waiver needs a reason", AllowDirective)
				}
			}

			if len(sigs) == 0 {
				report("goroutine has no completion signal (close, send or WaitGroup.Done); shutdown cannot join it — add one or waive with %s goroleak <reason>", AllowDirective)
				return true
			}
			for _, sig := range sigs {
				if joined(sig, bodies) {
					return true
				}
			}
			report("goroutine signals completion on %s but nothing in the package awaits it; join it in Close/Shutdown or waive with %s goroleak <reason>", sigs[0].v.Name(), AllowDirective)
			return true
		})
	}
	return nil
}
