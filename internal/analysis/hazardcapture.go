package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// HazardCapture is a capture checker for asynchronously dispatched closures,
// specialized to the scheduler dispatch loops in internal/cpuimpl and
// stricter than vet's loopclosure. The hazard-leveled schedulers guarantee
// that operations within a dependency level share no buffers; that guarantee
// is void if the dispatch closure itself smuggles shared mutable locals
// across goroutines. Go 1.22 made loop variables per-iteration, so the
// classic loopclosure bug is gone — the races that remain are exactly the
// ones vet no longer looks for:
//
//   - a closure handed to `go` or to a pool submit/dispatch call inside a
//     loop captures a variable declared outside the loop that the loop body
//     also writes (every dispatched goroutine races the next iteration's
//     write);
//   - a closure dispatched asynchronously captures a variable that is
//     written later in the enclosing function (the goroutine races the
//     write behind the dispatch point).
//
// Fixes are mechanical: pass the value as a call argument, or write through
// a per-task slot (errs[i]) instead of the shared variable.
var HazardCapture = &Analyzer{
	Name: "hazardcapture",
	Doc:  "async-dispatched closures must not capture shared mutable locals",
	Run:  runHazardCapture,
}

// dispatchCallees matches pool-style asynchronous dispatch entry points.
var dispatchCallees = regexp.MustCompile(`^(?i)(submit|dispatch|spawn)$`)

func runHazardCapture(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDispatches(pass, fd)
		}
	}
	return nil
}

// dispatchSite is one async hand-off of a closure.
type dispatchSite struct {
	node    ast.Node     // the go statement or dispatch call
	closure *ast.FuncLit // the closure being dispatched
}

func checkDispatches(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	var sites []dispatchSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			for _, lit := range closureOperands(n.Call) {
				sites = append(sites, dispatchSite{node: n, closure: lit})
			}
		case *ast.CallExpr:
			if name := calleeName(n); name != "" && dispatchCallees.MatchString(name) {
				for _, lit := range closureOperands(n) {
					sites = append(sites, dispatchSite{node: n, closure: lit})
				}
			}
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	// All writes to local variables in the function, excluding writes inside
	// the dispatched closures themselves (a closure may freely mutate what
	// it owns; the hazard is the *other* goroutine writing).
	writes := collectWrites(info, fd.Body)

	for _, s := range sites {
		enclosing := enclosingLoops(fd.Body, s.node)
	vars:
		for _, v := range capturedVars(info, s.closure) {
			for _, w := range writes {
				if w.obj != v || within(w.pos, s.closure.Pos(), s.closure.End()) {
					continue
				}
				// Hazard 1: dispatch inside a loop, variable declared
				// outside that loop, write anywhere inside the loop.
				for _, loop := range enclosing {
					if !within(v.Pos(), loop.Pos(), loop.End()) && within(w.pos, loop.Pos(), loop.End()) {
						pass.Reportf(s.closure.Pos(), "closure dispatched asynchronously in a loop captures %s, which the loop writes (%s); pass it as an argument or use a per-task slot", v.Name(), pass.Fset.Position(w.pos))
						continue vars
					}
				}
				// Hazard 2: write after the dispatch point races the
				// goroutine regardless of loops.
				if w.pos > s.node.End() {
					pass.Reportf(s.closure.Pos(), "closure dispatched asynchronously captures %s, which is written after the dispatch (%s); the goroutine races that write", v.Name(), pass.Fset.Position(w.pos))
					continue vars
				}
			}
		}
	}
}

// closureOperands returns function literals dispatched by call: a direct
// `func(){...}()` callee or literals passed as arguments.
func closureOperands(call *ast.CallExpr) []*ast.FuncLit {
	var out []*ast.FuncLit
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		out = append(out, lit)
	}
	for _, a := range call.Args {
		if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			out = append(out, lit)
		}
	}
	return out
}

// calleeName returns the bare name of the called function or method.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// write records one assignment to a local variable.
type write struct {
	obj *types.Var
	pos token.Pos
}

// collectWrites finds assignments and ++/-- statements targeting plain
// identifiers (element and field writes do not alias the variable itself).
func collectWrites(info *types.Info, body *ast.BlockStmt) []write {
	var out []write
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				out = append(out, write{obj: v, pos: id.Pos()})
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // := declares, it does not race an earlier capture
			}
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		}
		return true
	})
	return out
}

// enclosingLoops returns the for/range statements containing target, from
// outermost to innermost.
func enclosingLoops(body *ast.BlockStmt, target ast.Node) []ast.Node {
	var loops []ast.Node
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
			return true
		}
		stack = append(stack, n)
		if n == target {
			for _, s := range stack[:len(stack)-1] {
				if isLoop(s) {
					loops = append(loops, s)
				}
			}
		}
		return true
	})
	return loops
}

func isLoop(n ast.Node) bool {
	switch n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return true
	}
	return false
}

func within(pos, lo, hi token.Pos) bool { return pos >= lo && pos < hi }
