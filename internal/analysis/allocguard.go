package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// AllocGuard closes the loop between the static //beagle:noalloc contract
// and the runtime: every exported annotated function must also have a
// testing.AllocsPerRun guard somewhere in its package's tests. The static
// analyzer proves the absence of allocating *syntax*; the runtime guard
// catches what escape analysis decides behind the syntax (a captured slice
// header spilling to the heap, a devirtualization regression). Before this
// analyzer the telemetry overhead benchmark was the only such defense, and
// nothing noticed when a kernel silently lost its guard.
//
// Unexported annotated helpers (kernel fma, the telemetry record method)
// are exempt: they are only reachable through annotated exported functions,
// whose guards cover them.
var AllocGuard = &Analyzer{
	Name: "allocguard",
	Doc:  "every exported //beagle:noalloc function needs a testing.AllocsPerRun guard",
	Run:  runAllocGuard,
}

func runAllocGuard(pass *Pass) error {
	type target struct {
		name string
		pos  token.Pos
	}
	var targets []target
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, NoAllocDirective) || !fd.Name.IsExported() {
				continue
			}
			targets = append(targets, target{name: fd.Name.Name, pos: fd.Name.Pos()})
		}
	}
	if len(targets) == 0 {
		return nil
	}

	guarded, err := allocsPerRunReferences(pass.Dir)
	if err != nil {
		return err
	}
	for _, t := range targets {
		if !guarded[t.name] {
			pass.Reportf(t.pos, "%s is //beagle:noalloc but no testing.AllocsPerRun guard in this package's tests references it", t.name)
		}
	}
	return nil
}

// allocsPerRunReferences parses the package directory's _test.go files and
// returns the set of function/method names referenced inside the body of
// any closure passed to testing.AllocsPerRun.
func allocsPerRunReferences(dir string) (map[string]bool, error) {
	refs := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			return nil, err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleeName(call) != "AllocsPerRun" || len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.Ident:
					refs[m.Name] = true
				case *ast.SelectorExpr:
					refs[m.Sel.Name] = true
				}
				return true
			})
			return true
		})
	}
	return refs, nil
}
