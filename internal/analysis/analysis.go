// Package analysis is the library's static-analysis layer: a minimal,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// driver model, plus the repo-specific analyzers that turn the paper's
// hot-path and concurrency contracts into compile-time checks.
//
// The library's performance claims rest on invariants that unit tests can
// only probe by sampling: the pruning kernels must be allocation-free, the
// telemetry disabled path must stay one atomic load, CPU threading flags are
// mutually exclusive, and the hazard-leveled schedulers must not smuggle
// shared mutable state into pool-dispatched closures. The analyzers in this
// package (noalloc, nopanic, flagexcl, hazardcapture, allocguard) enforce
// those contracts over the whole module; cmd/beaglevet is the multichecker
// driver and scripts/run_checks.sh plus CI run it on every change.
//
// The framework mirrors the x/tools API shape (Analyzer, Pass, Diagnostic)
// so analyzers read idiomatically and could migrate to the upstream driver
// verbatim, but it is built only on the standard library's go/ast, go/types
// and go/importer, because this module deliberately carries no external
// dependencies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check. It is run once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test output.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with everything it may inspect about a
// single type-checked package, and collects the diagnostics it reports.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package directory on disk. Analyzers that need artifacts
	// outside the compiled package (e.g. allocguard reading _test.go files)
	// resolve them against it.
	Dir string

	diagnostics []Diagnostic
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run applies one analyzer to one loaded package and returns its findings.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Dir:       pkg.Dir,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	return pass.diagnostics, nil
}

// All returns the repo-specific analyzer suite in presentation order: the
// intraprocedural hot-path contracts first (PR 3), then the interprocedural
// concurrency, determinism and lifecycle analyzers built on the shared call
// graph (see callgraph.go).
func All() []*Analyzer {
	return []*Analyzer{
		NoAlloc,
		NoPanic,
		FlagExcl,
		HazardCapture,
		AllocGuard,
		LockOrder,
		AtomicMix,
		GoroLeak,
		MapDeterminism,
		CtxHTTP,
	}
}

// Annotation directives. They live in doc comments (for function contracts)
// or on the offending line (for waivers), in the style of go:build
// directives: no space after the slashes.
const (
	// NoAllocDirective marks a function whose body must contain no
	// allocating constructs; see the noalloc analyzer.
	NoAllocDirective = "//beagle:noalloc"
	// AllowDirective waives a check at one site: "//beagle:allow <check>
	// <reason>". The reason is mandatory; an unexplained waiver is itself a
	// diagnostic.
	AllowDirective = "//beagle:allow"
)

// hasDirective reports whether a comment group contains the given directive
// as a full word on any line.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// allowance describes one //beagle:allow waiver found in a file.
type allowance struct {
	check  string // the waived check, e.g. "panic"
	reason string // free text after the check name
	line   int    // line the waiver applies to
}

// fileAllowances collects every //beagle:allow waiver in a file, keyed by the
// line it covers: the waiver's own line, so it applies both to trailing
// comments on the offending line and to a comment on the line directly
// above (callers should check both).
func fileAllowances(fset *token.FileSet, f *ast.File) []allowance {
	var out []allowance
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, AllowDirective) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, AllowDirective)
			fields := strings.Fields(rest)
			a := allowance{line: fset.Position(c.Pos()).Line}
			if len(fields) > 0 {
				a.check = fields[0]
				a.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
			}
			out = append(out, a)
		}
	}
	return out
}

// allowedAt reports whether a waiver for check covers the given line (same
// line or the line directly above), and whether that waiver carries a
// reason.
func allowedAt(allows []allowance, check string, line int) (waived, hasReason bool) {
	for _, a := range allows {
		if a.check == check && (a.line == line || a.line == line-1) {
			return true, a.reason != ""
		}
	}
	return false, false
}

// isTypeParam reports whether t is a type parameter. Conversions to type
// parameters look like interface conversions to the type checker (the
// constraint is an interface) but instantiate to concrete types, so
// interface-boxing checks must skip them.
func isTypeParam(t types.Type) bool {
	_, ok := t.(*types.TypeParam)
	return ok
}

// isInterface reports whether t is a genuine (non-type-parameter) interface
// type.
func isInterface(t types.Type) bool {
	if t == nil || isTypeParam(t) {
		return false
	}
	return types.IsInterface(t)
}

// funcDeclFor returns the *types.Func object a call expression statically
// resolves to, or nil for dynamic calls, builtins and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
