package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis. Only non-test files are loaded: the contracts the suite
// enforces are production invariants, and test files deliberately violate
// several of them (seeded invalid flag combinations, panicking helpers).
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to moduleDir,
// e.g. "./...") with the go command, parses their non-test files, and
// type-checks them from source. It needs no compiled export data and no
// external dependencies: imports — including the module's own packages —
// are resolved by the standard library's source importer, steered at the
// module root.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	fset := token.NewFileSet()
	// The source importer resolves module-local import paths by invoking
	// `go list`, which runs in the build context's Dir — it must point at
	// the module being analyzed, not the process working directory.
	// go/importer offers no per-importer context hook, so steer the shared
	// default context; the analysis driver is a short-lived single-purpose
	// process, so mutating it is safe.
	build.Default.Dir = moduleDir
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		tpkg, info, err := typecheck(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// typecheck runs the go/types checker over one package's parsed files with
// the full set of result maps analyzers rely on.
func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}

// LoadDir loads the single package rooted at dir (used by analysistest for
// fixture packages, which import at most the standard library).
func LoadDir(dir string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range matches {
		if strings.HasSuffix(name, "_test.go") {
			continue // mirrors Load: production files only
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	imp := importer.ForCompiler(fset, "source", nil)
	name := files[0].Name.Name
	tpkg, info, err := typecheck(fset, name, files, imp)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: name,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
