// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against // want comments, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest on the standard library only.
//
// A fixture is one directory under testdata/src/<name>/ containing a small
// package seeded with violations. Expected diagnostics are written on the
// offending line:
//
//	x := make([]int, 8) // want `make allocates`
//
// The backquoted text is a regular expression matched against the
// diagnostic message; every reported diagnostic must match a want on its
// line, and every want must be hit by a report.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"gobeagle/internal/analysis"
)

// wantRx extracts `// want `regexp“ expectations. Both backquotes and
// double quotes delimit the pattern.
var wantRx = regexp.MustCompile("// want (`([^`]+)`|\"([^\"]+)\")")

// expectation is one // want comment.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

// Run loads the fixture package rooted at dir, applies the analyzer, and
// reports mismatches between its diagnostics and the fixture's // want
// comments through t.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[2]
				if pat == "" {
					pat = m[3]
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
			}
		}
	}

	diags, err := analysis.Run(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if exp := match(wants, pos, d.Message); exp != nil {
			exp.hit = true
		} else {
			t.Errorf("%s: unexpected diagnostic: %s", rel(pos), d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// match finds an unhit expectation on the diagnostic's line whose pattern
// matches the message.
func match(wants []*expectation, pos token.Position, msg string) *expectation {
	for _, w := range wants {
		if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(msg) {
			return w
		}
	}
	return nil
}

func rel(pos token.Position) string {
	parts := strings.Split(pos.Filename, "testdata/")
	name := pos.Filename
	if len(parts) > 1 {
		name = parts[len(parts)-1]
	}
	return fmt.Sprintf("%s:%d", name, pos.Line)
}
