// Package mcmc is the application substrate for the paper's Fig. 6
// benchmark: a Metropolis-coupled Markov chain Monte Carlo (MC3) Bayesian
// phylogenetic sampler in the style of MrBayes 3.2, with two interchangeable
// likelihood engines:
//
//   - Native: a self-contained pruning implementation standing in for
//     MrBayes's built-in likelihood code, with an SSE-style 4-state unrolled
//     single-precision path and chain-level ("MPI") parallelism only;
//   - Beagle: likelihood evaluation delegated to a library instance, adding
//     the library's fine-grained parallelism within each chain.
//
// The sampler itself (moves, heating, swaps) is engine-independent, so
// total-runtime comparisons between engines measure exactly what the paper's
// application-level benchmark measures.
package mcmc

import (
	"errors"
	"fmt"
	"math"

	"gobeagle"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// LikelihoodEngine evaluates the log likelihood of a tree for a fixed
// dataset and model. Engines are stateful and not safe for concurrent use;
// each MCMC chain owns one engine.
type LikelihoodEngine interface {
	LogLikelihood(t *tree.Tree) (float64, error)
	Close() error
}

// NativeEngine is the built-in likelihood implementation: direct Felsenstein
// pruning with no library support, the stand-in for the MrBayes MPI-SSE
// baseline. Single precision uses 4-state unrolled arithmetic on float32 for
// nucleotide data, mirroring MrBayes's SSE path.
type NativeEngine struct {
	model  *substmodel.Model
	rates  *substmodel.SiteRates
	ps     *seqgen.PatternSet
	eigen  *eigenCache
	single bool

	// scratch, sized once
	probs    [][]float64 // per (node, category) transition matrices
	partials [][]float64 // per node partials, double path
	f32parts [][]float32 // per node partials, single path
	p32      [][]float32 // single-precision matrices
}

type eigenCache struct {
	values   []float64
	vectors  []float64
	inverse  []float64
	n        int
	tmpExp   []float64
	tmpProbs []float64
}

// NewNativeEngine builds the baseline engine for a dataset, model and rate
// mixture; single selects the float32 SSE-style arithmetic (nucleotide data
// only, as in MrBayes).
func NewNativeEngine(m *substmodel.Model, rates *substmodel.SiteRates, ps *seqgen.PatternSet, single bool) (*NativeEngine, error) {
	if ps.StateCount != m.StateCount {
		return nil, fmt.Errorf("mcmc: pattern state count %d does not match model %d", ps.StateCount, m.StateCount)
	}
	if single && m.StateCount != 4 {
		return nil, errors.New("mcmc: the native SSE single-precision path supports nucleotide data only")
	}
	ed, err := m.Eigen()
	if err != nil {
		return nil, err
	}
	n := m.StateCount
	return &NativeEngine{
		model:  m,
		rates:  rates,
		ps:     ps,
		single: single,
		eigen: &eigenCache{
			values:  ed.Values,
			vectors: ed.Vectors.Data,
			inverse: ed.InverseVectors.Data,
			n:       n,
			tmpExp:  make([]float64, n),
		},
	}, nil
}

// Close releases nothing; the native engine holds only host memory.
func (e *NativeEngine) Close() error { return nil }

// transitionMatrix fills p with P(t) from the cached decomposition.
func (ec *eigenCache) transitionMatrix(t float64, p []float64) {
	n := ec.n
	for k := 0; k < n; k++ {
		ec.tmpExp[k] = math.Exp(ec.values[k] * t)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += ec.vectors[i*n+k] * ec.tmpExp[k] * ec.inverse[k*n+j]
			}
			if s < 0 {
				s = 0
			}
			p[i*n+j] = s
		}
	}
}

// LogLikelihood evaluates the tree by direct pruning.
func (e *NativeEngine) LogLikelihood(t *tree.Tree) (float64, error) {
	if e.single {
		return e.logLikelihoodSingle(t)
	}
	return e.logLikelihoodDouble(t)
}

func (e *NativeEngine) logLikelihoodDouble(t *tree.Tree) (float64, error) {
	n := e.model.StateCount
	nc := len(e.rates.Rates)
	np := e.ps.PatternCount()
	nodes := t.NodeCount()
	if e.probs == nil {
		e.probs = make([][]float64, nodes*nc)
		for i := range e.probs {
			e.probs[i] = make([]float64, n*n)
		}
		e.partials = make([][]float64, nodes)
		for i := range e.partials {
			e.partials[i] = make([]float64, nc*np*n)
		}
	}
	for _, node := range t.Nodes() {
		if node == t.Root {
			continue
		}
		for c, r := range e.rates.Rates {
			e.eigen.transitionMatrix(node.Length*r, e.probs[node.Index*nc+c])
		}
	}
	var post func(node *tree.Node)
	post = func(node *tree.Node) {
		if node.IsTip() {
			return
		}
		post(node.Left)
		post(node.Right)
		dst := e.partials[node.Index]
		for c := 0; c < nc; c++ {
			pl := e.probs[node.Left.Index*nc+c]
			pr := e.probs[node.Right.Index*nc+c]
			for p := 0; p < np; p++ {
				off := (c*np + p) * n
				for i := 0; i < n; i++ {
					a := e.childSumDouble(node.Left, pl, c, p, i)
					b := e.childSumDouble(node.Right, pr, c, p, i)
					dst[off+i] = a * b
				}
			}
		}
	}
	post(t.Root)

	var lnL float64
	root := e.partials[t.Root.Index]
	for p := 0; p < np; p++ {
		var site float64
		for c := 0; c < nc; c++ {
			off := (c*np + p) * n
			var cat float64
			for i := 0; i < n; i++ {
				cat += e.model.Frequencies[i] * root[off+i]
			}
			site += e.rates.Weights[c] * cat
		}
		lnL += e.ps.Weights[p] * math.Log(site)
	}
	if math.IsNaN(lnL) {
		return 0, errors.New("mcmc: native likelihood is NaN (underflow?)")
	}
	return lnL, nil
}

func (e *NativeEngine) childSumDouble(child *tree.Node, prob []float64, c, p, i int) float64 {
	n := e.model.StateCount
	if child.IsTip() {
		st := e.ps.Patterns[p][child.Index]
		if st >= n {
			return 1
		}
		return prob[i*n+st]
	}
	cp := e.partials[child.Index]
	off := (c*e.ps.PatternCount() + p) * n
	var s float64
	for j := 0; j < n; j++ {
		s += prob[i*n+j] * cp[off+j]
	}
	return s
}

// logLikelihoodSingle is the float32 SSE-style path for nucleotide data:
// fully unrolled over the 4 states, accumulating the final site likelihood
// in double precision as MrBayes does.
func (e *NativeEngine) logLikelihoodSingle(t *tree.Tree) (float64, error) {
	const n = 4
	nc := len(e.rates.Rates)
	np := e.ps.PatternCount()
	nodes := t.NodeCount()
	if e.p32 == nil {
		e.p32 = make([][]float32, nodes*nc)
		for i := range e.p32 {
			e.p32[i] = make([]float32, n*n)
		}
		e.f32parts = make([][]float32, nodes)
		for i := range e.f32parts {
			e.f32parts[i] = make([]float32, nc*np*n)
		}
	}
	tmp := make([]float64, n*n)
	for _, node := range t.Nodes() {
		if node == t.Root {
			continue
		}
		for c, r := range e.rates.Rates {
			e.eigen.transitionMatrix(node.Length*r, tmp)
			dst := e.p32[node.Index*nc+c]
			for i, v := range tmp {
				dst[i] = float32(v)
			}
		}
	}
	var post func(node *tree.Node)
	post = func(node *tree.Node) {
		if node.IsTip() {
			return
		}
		post(node.Left)
		post(node.Right)
		dst := e.f32parts[node.Index]
		for c := 0; c < nc; c++ {
			pl := e.p32[node.Left.Index*nc+c]
			pr := e.p32[node.Right.Index*nc+c]
			for p := 0; p < np; p++ {
				off := (c*np + p) * n
				l0, l1, l2, l3 := e.childVecSingle(node.Left, pl, c, p)
				r0, r1, r2, r3 := e.childVecSingle(node.Right, pr, c, p)
				dst[off+0] = l0 * r0
				dst[off+1] = l1 * r1
				dst[off+2] = l2 * r2
				dst[off+3] = l3 * r3
			}
		}
	}
	post(t.Root)

	var lnL float64
	root := e.f32parts[t.Root.Index]
	f := e.model.Frequencies
	for p := 0; p < np; p++ {
		var site float64
		for c := 0; c < nc; c++ {
			off := (c*np + p) * n
			cat := f[0]*float64(root[off]) + f[1]*float64(root[off+1]) +
				f[2]*float64(root[off+2]) + f[3]*float64(root[off+3])
			site += e.rates.Weights[c] * cat
		}
		lnL += e.ps.Weights[p] * math.Log(site)
	}
	if math.IsNaN(lnL) {
		return 0, errors.New("mcmc: native likelihood is NaN (underflow?)")
	}
	return lnL, nil
}

// childVecSingle returns the 4-wide per-parent-state factor for one child,
// one pattern: the SSE lane computation.
func (e *NativeEngine) childVecSingle(child *tree.Node, prob []float32, c, p int) (v0, v1, v2, v3 float32) {
	if child.IsTip() {
		st := e.ps.Patterns[p][child.Index]
		if st >= 4 {
			return 1, 1, 1, 1
		}
		return prob[st], prob[4+st], prob[8+st], prob[12+st]
	}
	cp := e.f32parts[child.Index]
	off := (c*e.ps.PatternCount() + p) * 4
	a0, a1, a2, a3 := cp[off], cp[off+1], cp[off+2], cp[off+3]
	v0 = prob[0]*a0 + prob[1]*a1 + prob[2]*a2 + prob[3]*a3
	v1 = prob[4]*a0 + prob[5]*a1 + prob[6]*a2 + prob[7]*a3
	v2 = prob[8]*a0 + prob[9]*a1 + prob[10]*a2 + prob[11]*a3
	v3 = prob[12]*a0 + prob[13]*a1 + prob[14]*a2 + prob[15]*a3
	return
}

// BeagleEngine evaluates likelihoods through a library instance. Each chain
// owns one instance, matching how MrBayes creates one BEAGLE instance per
// chain.
type BeagleEngine struct {
	inst  *gobeagle.Instance
	model *substmodel.Model
	rates *substmodel.SiteRates
	ps    *seqgen.PatternSet

	// scratch, sized to the first schedule and reused every proposal so the
	// per-evaluation submission path allocates nothing in steady state.
	mats []int
	lens []float64
	ops  []gobeagle.Operation
}

// NewBeagleEngine creates a library-backed engine for the dataset on the
// given resource with the given flags.
func NewBeagleEngine(m *substmodel.Model, rates *substmodel.SiteRates, ps *seqgen.PatternSet,
	t *tree.Tree, resourceID int, flags gobeagle.Flags) (*BeagleEngine, error) {
	inst, err := gobeagle.NewInstance(gobeagle.Config{
		TipCount:        t.TipCount,
		PartialsBuffers: t.NodeCount(),
		MatrixBuffers:   t.NodeCount(),
		EigenBuffers:    1,
		ScaleBuffers:    0,
		StateCount:      m.StateCount,
		PatternCount:    ps.PatternCount(),
		CategoryCount:   len(rates.Rates),
		ResourceID:      resourceID,
		Flags:           flags,
	})
	if err != nil {
		return nil, err
	}
	ed, err := m.Eigen()
	if err != nil {
		inst.Finalize()
		return nil, err
	}
	steps := []error{
		inst.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		inst.SetCategoryRates(rates.Rates),
		inst.SetCategoryWeights(rates.Weights),
		inst.SetStateFrequencies(m.Frequencies),
		inst.SetPatternWeights(ps.Weights),
	}
	for _, err := range steps {
		if err != nil {
			inst.Finalize()
			return nil, err
		}
	}
	for i := 0; i < t.TipCount; i++ {
		if err := inst.SetTipStates(i, ps.TipStates(i)); err != nil {
			inst.Finalize()
			return nil, err
		}
	}
	return &BeagleEngine{inst: inst, model: m, rates: rates, ps: ps}, nil
}

// Instance exposes the underlying library instance (for benchmark
// instrumentation).
func (e *BeagleEngine) Instance() *gobeagle.Instance { return e.inst }

// Close finalizes the library instance.
func (e *BeagleEngine) Close() error { return e.inst.Finalize() }

// LogLikelihood evaluates the tree through the library. The full evaluation
// schedule is submitted every call: on instances created without FlagReuse
// that recomputes everything, and on instances with it the library's
// dirty-tracking skips every matrix and partials operation whose inputs are
// unchanged since the previous proposal, so the sampler needs no dirty-node
// bookkeeping of its own.
func (e *BeagleEngine) LogLikelihood(t *tree.Tree) (float64, error) {
	sched := t.FullSchedule()
	if cap(e.mats) < len(sched.Matrices) {
		e.mats = make([]int, len(sched.Matrices))
		e.lens = make([]float64, len(sched.Matrices))
	}
	mats, lens := e.mats[:len(sched.Matrices)], e.lens[:len(sched.Matrices)]
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	if err := e.inst.UpdateTransitionMatrices(0, mats, lens); err != nil {
		return 0, err
	}
	if cap(e.ops) < len(sched.Ops) {
		e.ops = make([]gobeagle.Operation, len(sched.Ops))
	}
	ops := e.ops[:len(sched.Ops)]
	for i, op := range sched.Ops {
		ops[i] = gobeagle.Operation{
			Destination: op.Dest, DestScaleWrite: gobeagle.None, DestScaleRead: gobeagle.None,
			Child1: op.Child1, Child1Matrix: op.Child1Mat,
			Child2: op.Child2, Child2Matrix: op.Child2Mat,
		}
	}
	if err := e.inst.UpdatePartials(ops); err != nil {
		return 0, err
	}
	return e.inst.CalculateRootLogLikelihoods(sched.Root, gobeagle.None)
}
