package mcmc

import (
	"math"
	"math/rand"
	"testing"

	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func TestPartitionedEngineSumsPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr, err := tree.Random(rng, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Two genes under different models on the same tree.
	m1, _ := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	m2 := substmodel.NewJC69()
	a1, _ := seqgen.Simulate(rng, tr, m1, substmodel.SingleRate(), 300)
	a2, _ := seqgen.Simulate(rng, tr, m2, substmodel.SingleRate(), 200)
	ps1 := seqgen.CompressPatterns(a1)
	ps2 := seqgen.CompressPatterns(a2)

	e1, err := NewNativeEngine(m1, substmodel.SingleRate(), ps1, false)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewNativeEngine(m2, substmodel.SingleRate(), ps2, false)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := NewPartitionedEngine(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	defer joint.Close()

	l1, _ := e1.LogLikelihood(tr)
	l2, _ := e2.LogLikelihood(tr)
	lj, err := joint.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lj-(l1+l2)) > 1e-10*math.Abs(l1+l2) {
		t.Fatalf("joint %v want %v", lj, l1+l2)
	}
}

func TestPartitionedEngineInMC3(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	tr, _ := tree.Random(rng, 5, 0.1)
	m := substmodel.NewJC69()
	a1, _ := seqgen.Simulate(rng, tr, m, substmodel.SingleRate(), 150)
	a2, _ := seqgen.Simulate(rng, tr, m, substmodel.SingleRate(), 150)

	mkJoint := func() LikelihoodEngine {
		e1, err := NewNativeEngine(m, substmodel.SingleRate(), seqgen.CompressPatterns(a1), false)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := NewNativeEngine(m, substmodel.SingleRate(), seqgen.CompressPatterns(a2), false)
		if err != nil {
			t.Fatal(err)
		}
		j, err := NewPartitionedEngine(e1, e2)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	res, err := Run(Config{
		Tree:        tr,
		Engines:     []LikelihoodEngine{mkJoint(), mkJoint()},
		Generations: 60,
		HeatLambda:  0.1,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 60 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
}

func TestPartitionedEngineErrors(t *testing.T) {
	if _, err := NewPartitionedEngine(); err == nil {
		t.Fatal("empty partition list must error")
	}
}
