package mcmc

import (
	"errors"
	"math"
)

// TraceSummary holds convergence diagnostics for a sampled scalar trace
// (typically the cold chain's log likelihood).
type TraceSummary struct {
	N        int
	Mean     float64
	StdDev   float64
	ESS      float64 // effective sample size
	AutoCorr float64 // lag-1 autocorrelation
}

// Summarize computes mean, standard deviation, lag-1 autocorrelation and the
// effective sample size of a trace, discarding the first burnIn samples.
// The ESS uses Geyer's initial positive sequence estimator: autocovariances
// are summed in lag pairs until a pair sum turns non-positive.
func Summarize(trace []float64, burnIn int) (*TraceSummary, error) {
	if burnIn < 0 || burnIn >= len(trace) {
		return nil, errors.New("mcmc: burn-in outside the trace")
	}
	x := trace[burnIn:]
	n := len(x)
	if n < 4 {
		return nil, errors.New("mcmc: trace too short to summarize")
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)

	gamma := func(lag int) float64 {
		var s float64
		for i := 0; i+lag < n; i++ {
			s += (x[i] - mean) * (x[i+lag] - mean)
		}
		return s / float64(n)
	}
	g0 := gamma(0)
	if g0 <= 0 {
		// A constant trace: every sample is independent (and identical).
		return &TraceSummary{N: n, Mean: mean, StdDev: 0, ESS: float64(n)}, nil
	}

	// Geyer initial positive sequence: Σ over lag pairs (2t, 2t+1) while the
	// pair sum stays positive.
	var tau float64 = g0
	for lag := 1; lag+1 < n; lag += 2 {
		pair := gamma(lag) + gamma(lag+1)
		if pair <= 0 {
			break
		}
		tau += 2 * pair
	}
	ess := float64(n) * g0 / tau
	if ess > float64(n) {
		ess = float64(n)
	}
	return &TraceSummary{
		N:        n,
		Mean:     mean,
		StdDev:   math.Sqrt(g0),
		ESS:      ess,
		AutoCorr: gamma(1) / g0,
	}, nil
}
