package mcmc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"gobeagle/internal/tree"
)

// Config parameterizes an MC3 run in the style of MrBayes: several
// incrementally heated chains, Metropolis–Hastings moves on branch lengths
// and topology, and periodic state-swap proposals between chains.
type Config struct {
	// Tree is the starting topology; each chain works on its own clone.
	Tree *tree.Tree
	// Engines holds one likelihood engine per chain; len(Engines) is the
	// chain count (MrBayes and the paper use 4).
	Engines []LikelihoodEngine
	// Generations is the number of MCMC generations.
	Generations int
	// SwapInterval proposes a chain swap every this many generations
	// (0 = every generation).
	SwapInterval int
	// HeatLambda is the incremental heating parameter: chain i runs at
	// temperature 1/(1+λ·i). MrBayes defaults to 0.1.
	HeatLambda float64
	// BranchPriorMean is the mean of the exponential branch-length prior.
	BranchPriorMean float64
	// NNIProbability is the probability a move proposes a topology change
	// rather than a branch-length change.
	NNIProbability float64
	// SampleInterval records the cold chain's log likelihood every this
	// many generations (0 = every generation).
	SampleInterval int
	// SampleSplits additionally records the cold chain's topology at every
	// sample, accumulating posterior split (clade) frequencies — the key
	// quantity MrBayes-style analyses report.
	SampleSplits bool
	// BurnInFraction discards this leading fraction of samples from the
	// split frequencies (default 0.25 when SampleSplits is set).
	BurnInFraction float64
	// Seed seeds the sampler's random number generator.
	Seed int64
	// Sequential disables chain-level parallelism (for deterministic
	// tests); the default runs chains concurrently, as MrBayes-MPI does.
	Sequential bool
}

// Result reports an MC3 run.
type Result struct {
	// Trace is the cold chain's sampled log-likelihood trajectory.
	Trace []float64
	// FinalTree is the cold chain's final state.
	FinalTree *tree.Tree
	// AcceptedMoves / ProposedMoves count within-chain proposals across all
	// chains.
	AcceptedMoves, ProposedMoves int
	// AcceptedSwaps / ProposedSwaps count between-chain swap proposals.
	AcceptedSwaps, ProposedSwaps int
	// SplitSupport holds posterior split frequencies over the post-burn-in
	// cold-chain samples (split key → fraction of samples containing it),
	// when Config.SampleSplits is set.
	SplitSupport map[string]float64
	// SplitSampleCount is the number of topology samples behind
	// SplitSupport.
	SplitSampleCount int
}

// chainState is the per-chain MCMC state.
type chainState struct {
	tree *tree.Tree
	lnL  float64
	heat float64
	rng  *rand.Rand
	eng  LikelihoodEngine
}

// logPrior is the joint log prior: independent exponential branch lengths.
func logPrior(t *tree.Tree, mean float64) float64 {
	var lp float64
	for _, n := range t.Nodes() {
		if n == t.Root {
			continue
		}
		lp += -n.Length/mean - math.Log(mean)
	}
	return lp
}

// Run executes the MC3 sampler and returns the run summary.
func Run(cfg Config) (*Result, error) {
	if cfg.Tree == nil {
		return nil, errors.New("mcmc: nil starting tree")
	}
	if len(cfg.Engines) == 0 {
		return nil, errors.New("mcmc: need at least one chain engine")
	}
	if cfg.Generations <= 0 {
		return nil, errors.New("mcmc: generations must be positive")
	}
	if cfg.HeatLambda < 0 {
		return nil, errors.New("mcmc: negative heating parameter")
	}
	if cfg.BranchPriorMean <= 0 {
		cfg.BranchPriorMean = 0.1
	}
	if cfg.SwapInterval <= 0 {
		cfg.SwapInterval = 1
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 1
	}
	if cfg.NNIProbability < 0 || cfg.NNIProbability > 1 {
		return nil, errors.New("mcmc: NNI probability outside [0,1]")
	}
	if cfg.BurnInFraction < 0 || cfg.BurnInFraction >= 1 {
		return nil, errors.New("mcmc: burn-in fraction outside [0,1)")
	}
	if cfg.SampleSplits && cfg.BurnInFraction == 0 {
		cfg.BurnInFraction = 0.25
	}

	root := rand.New(rand.NewSource(cfg.Seed))
	chains := make([]*chainState, len(cfg.Engines))
	for i, eng := range cfg.Engines {
		ct := cfg.Tree.Clone()
		lnL, err := eng.LogLikelihood(ct)
		if err != nil {
			return nil, fmt.Errorf("mcmc: initial likelihood of chain %d: %w", i, err)
		}
		chains[i] = &chainState{
			tree: ct,
			lnL:  lnL,
			heat: 1 / (1 + cfg.HeatLambda*float64(i)),
			rng:  rand.New(rand.NewSource(cfg.Seed + int64(i) + 1)),
			eng:  eng,
		}
	}

	res := &Result{}
	var splitCounts map[string]int
	moveResults := make([]moveOutcome, len(chains))
	for gen := 0; gen < cfg.Generations; gen++ {
		// One move per chain per generation; chains advance concurrently
		// (the MPI-level concurrency of MrBayes, §VIII-C).
		if cfg.Sequential {
			for i, ch := range chains {
				moveResults[i] = ch.step(cfg)
			}
		} else {
			var wg sync.WaitGroup
			wg.Add(len(chains))
			for i, ch := range chains {
				go func(i int, ch *chainState) {
					defer wg.Done()
					moveResults[i] = ch.step(cfg)
				}(i, ch)
			}
			wg.Wait()
		}
		for _, mo := range moveResults {
			res.ProposedMoves++
			if mo.err != nil {
				return nil, mo.err
			}
			if mo.accepted {
				res.AcceptedMoves++
			}
		}

		// Swap proposal between two random distinct chains.
		if len(chains) > 1 && gen%cfg.SwapInterval == 0 {
			i := root.Intn(len(chains))
			j := root.Intn(len(chains) - 1)
			if j >= i {
				j++
			}
			res.ProposedSwaps++
			a, b := chains[i], chains[j]
			logR := (a.heat-b.heat)*b.lnL + (b.heat-a.heat)*a.lnL
			if logR >= 0 || root.Float64() < math.Exp(logR) {
				a.tree, b.tree = b.tree, a.tree
				a.lnL, b.lnL = b.lnL, a.lnL
				res.AcceptedSwaps++
			}
		}
		if gen%cfg.SampleInterval == 0 {
			res.Trace = append(res.Trace, chains[0].lnL)
			if cfg.SampleSplits && float64(gen) >= cfg.BurnInFraction*float64(cfg.Generations) {
				splits, err := chains[0].tree.Splits()
				if err != nil {
					return nil, fmt.Errorf("mcmc: sampling splits: %w", err)
				}
				if splitCounts == nil {
					splitCounts = make(map[string]int)
				}
				for s := range splits {
					splitCounts[s]++
				}
				res.SplitSampleCount++
			}
		}
	}
	if cfg.SampleSplits && res.SplitSampleCount > 0 {
		res.SplitSupport = make(map[string]float64, len(splitCounts))
		for s, c := range splitCounts {
			res.SplitSupport[s] = float64(c) / float64(res.SplitSampleCount)
		}
	}
	res.FinalTree = chains[0].tree
	return res, nil
}

type moveOutcome struct {
	accepted bool
	err      error
}

// step proposes and (maybe) accepts one move on the chain.
func (ch *chainState) step(cfg Config) moveOutcome {
	proposal := ch.tree.Clone()
	var logHastings float64
	if ch.rng.Float64() < cfg.NNIProbability && proposal.TipCount > 2 {
		if _, _, err := proposal.NNI(ch.rng); err != nil {
			return moveOutcome{err: err}
		}
	} else {
		_, lh := proposal.ScaleBranch(ch.rng, 2*math.Ln2)
		logHastings = lh
	}
	lnL, err := ch.eng.LogLikelihood(proposal)
	if err != nil {
		return moveOutcome{err: err}
	}
	logR := ch.heat*(lnL-ch.lnL) +
		(logPrior(proposal, cfg.BranchPriorMean) - logPrior(ch.tree, cfg.BranchPriorMean)) +
		logHastings
	if logR >= 0 || ch.rng.Float64() < math.Exp(logR) {
		ch.tree = proposal
		ch.lnL = lnL
		return moveOutcome{accepted: true}
	}
	return moveOutcome{}
}
