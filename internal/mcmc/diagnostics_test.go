package mcmc

import (
	"math"
	"math/rand"
	"testing"
)

func TestSummarizeIndependentSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 4000)
	for i := range x {
		x[i] = 5 + rng.NormFloat64()*2
	}
	s, err := Summarize(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean-5) > 0.15 {
		t.Fatalf("mean %v", s.Mean)
	}
	if math.Abs(s.StdDev-2) > 0.15 {
		t.Fatalf("stddev %v", s.StdDev)
	}
	// Independent samples: ESS close to N.
	if s.ESS < 0.7*float64(s.N) {
		t.Fatalf("ESS %v for %d independent samples", s.ESS, s.N)
	}
	if math.Abs(s.AutoCorr) > 0.1 {
		t.Fatalf("lag-1 autocorrelation %v", s.AutoCorr)
	}
}

func TestSummarizeCorrelatedSamples(t *testing.T) {
	// AR(1) with φ=0.95: ESS ≈ N·(1−φ)/(1+φ) ≈ N/39.
	rng := rand.New(rand.NewSource(2))
	const n = 8000
	x := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = 0.95*x[i-1] + rng.NormFloat64()
	}
	s, err := Summarize(x, 500)
	if err != nil {
		t.Fatal(err)
	}
	if s.AutoCorr < 0.85 {
		t.Fatalf("lag-1 autocorrelation %v for a strongly correlated chain", s.AutoCorr)
	}
	if s.ESS > float64(s.N)/10 {
		t.Fatalf("ESS %v too high for AR(0.95) with N=%d", s.ESS, s.N)
	}
	if s.ESS < 20 {
		t.Fatalf("ESS %v suspiciously low", s.ESS)
	}
}

func TestSummarizeConstantTrace(t *testing.T) {
	x := []float64{3, 3, 3, 3, 3, 3}
	s, err := Summarize(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.StdDev != 0 || s.ESS != float64(len(x)) {
		t.Fatalf("constant trace summary %+v", s)
	}
}

func TestSummarizeBurnIn(t *testing.T) {
	// A huge initial transient must not poison the post-burn-in summary.
	x := make([]float64, 1000)
	for i := range x {
		if i < 100 {
			x[i] = -1e6
		} else {
			x[i] = 10
		}
	}
	s, err := Summarize(x, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 10 || s.N != 900 {
		t.Fatalf("burn-in not applied: %+v", s)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize([]float64{1, 2}, 0); err == nil {
		t.Fatal("short trace must error")
	}
	if _, err := Summarize(make([]float64, 10), 10); err == nil {
		t.Fatal("burn-in beyond trace must error")
	}
	if _, err := Summarize(make([]float64, 10), -1); err == nil {
		t.Fatal("negative burn-in must error")
	}
}
