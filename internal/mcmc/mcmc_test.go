package mcmc

import (
	"math"
	"math/rand"
	"testing"

	"gobeagle"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func testProblem(t *testing.T, seed int64, tips, sites int) (*tree.Tree, *substmodel.Model, *substmodel.SiteRates, *seqgen.PatternSet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr, err := tree.Random(rng, tips, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rates := substmodel.SingleRate()
	align, err := seqgen.Simulate(rng, tr, m, rates, sites)
	if err != nil {
		t.Fatal(err)
	}
	return tr, m, rates, seqgen.CompressPatterns(align)
}

func TestNativeMatchesBeagle(t *testing.T) {
	tr, m, rates, ps := testProblem(t, 1, 8, 300)
	native, err := NewNativeEngine(m, rates, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	defer native.Close()
	bg, err := NewBeagleEngine(m, rates, ps, tr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bg.Close()

	a, err := native.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bg.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-8*math.Abs(a) {
		t.Fatalf("native %v beagle %v", a, b)
	}
	// Re-evaluation after a branch change must track.
	tr2 := tr.Clone()
	tr2.Node(0).Length *= 2
	a2, _ := native.LogLikelihood(tr2)
	b2, _ := bg.LogLikelihood(tr2)
	if a2 == a {
		t.Fatal("branch change did not affect native likelihood")
	}
	if math.Abs(a2-b2) > 1e-8*math.Abs(a2) {
		t.Fatalf("after change: native %v beagle %v", a2, b2)
	}
}

func TestNativeSinglePrecisionTracksDouble(t *testing.T) {
	tr, m, rates, ps := testProblem(t, 2, 10, 400)
	d, err := NewNativeEngine(m, rates, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewNativeEngine(m, rates, ps, true)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.LogLikelihood(tr)
	b, _ := s.LogLikelihood(tr)
	if rel := math.Abs(a-b) / math.Abs(a); rel > 1e-4 {
		t.Fatalf("single %v double %v rel %v", b, a, rel)
	}
}

func TestNativeEngineErrors(t *testing.T) {
	_, m, rates, ps := testProblem(t, 3, 4, 50)
	codon, _ := substmodel.NewGY94(2, 0.5, nil)
	if _, err := NewNativeEngine(codon, rates, ps, false); err == nil {
		t.Fatal("expected error for state-count mismatch")
	}
	rngPs, _ := seqgen.RandomPatterns(rand.New(rand.NewSource(1)), 4, 61, 10)
	if _, err := NewNativeEngine(codon, rates, rngPs, true); err == nil {
		t.Fatal("expected error for single precision on codon data")
	}
	_ = m
}

func TestMC3RunImprovesFromPerturbedStart(t *testing.T) {
	tr, m, rates, ps := testProblem(t, 4, 6, 400)
	// Perturb branch lengths badly so the sampler has something to find.
	start := tr.Clone()
	for _, n := range start.Nodes() {
		if n != start.Root {
			n.Length = 1.0
		}
	}
	engines := make([]LikelihoodEngine, 2)
	for i := range engines {
		e, err := NewNativeEngine(m, rates, ps, false)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	res, err := Run(Config{
		Tree:        start,
		Engines:     engines,
		Generations: 400,
		HeatLambda:  0.1,
		// Branch-length moves only, for a deterministic improvement test.
		NNIProbability: 0,
		Seed:           99,
		Sequential:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 400 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
	first := res.Trace[0]
	last := res.Trace[len(res.Trace)-1]
	if last <= first {
		t.Fatalf("no improvement: first %v last %v", first, last)
	}
	if res.ProposedMoves != 800 {
		t.Fatalf("proposed moves %d want 800", res.ProposedMoves)
	}
	if res.AcceptedMoves == 0 {
		t.Fatal("no accepted moves")
	}
	if res.ProposedSwaps == 0 {
		t.Fatal("no swaps proposed")
	}
	if res.FinalTree == nil || res.FinalTree.Validate() != nil {
		t.Fatal("final tree invalid")
	}
}

func TestMC3WithTopologyMovesStaysValid(t *testing.T) {
	tr, m, rates, ps := testProblem(t, 5, 8, 200)
	engines := []LikelihoodEngine{}
	for i := 0; i < 2; i++ {
		e, err := NewNativeEngine(m, rates, ps, false)
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, e)
	}
	res, err := Run(Config{
		Tree:           tr,
		Engines:        engines,
		Generations:    150,
		HeatLambda:     0.2,
		NNIProbability: 0.4,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FinalTree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMC3WithBeagleEngines(t *testing.T) {
	tr, m, rates, ps := testProblem(t, 6, 6, 150)
	engines := []LikelihoodEngine{}
	for i := 0; i < 2; i++ {
		e, err := NewBeagleEngine(m, rates, ps, tr, 0, gobeagle.FlagThreadingThreadPool)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		engines = append(engines, e)
	}
	res, err := Run(Config{
		Tree:        tr,
		Engines:     engines,
		Generations: 50,
		HeatLambda:  0.1,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 50 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
}

func TestMC3DeterministicWhenSequential(t *testing.T) {
	tr, m, rates, ps := testProblem(t, 8, 5, 100)
	run := func() []float64 {
		e, err := NewNativeEngine(m, rates, ps, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Tree: tr, Engines: []LikelihoodEngine{e},
			Generations: 60, Seed: 42, Sequential: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic trace at %d", i)
		}
	}
}

func TestRunConfigErrors(t *testing.T) {
	tr, m, rates, ps := testProblem(t, 9, 4, 50)
	e, _ := NewNativeEngine(m, rates, ps, false)
	if _, err := Run(Config{Engines: []LikelihoodEngine{e}, Generations: 10}); err == nil {
		t.Error("expected error for nil tree")
	}
	if _, err := Run(Config{Tree: tr, Generations: 10}); err == nil {
		t.Error("expected error for no engines")
	}
	if _, err := Run(Config{Tree: tr, Engines: []LikelihoodEngine{e}}); err == nil {
		t.Error("expected error for zero generations")
	}
	if _, err := Run(Config{Tree: tr, Engines: []LikelihoodEngine{e}, Generations: 5, HeatLambda: -1}); err == nil {
		t.Error("expected error for negative lambda")
	}
	if _, err := Run(Config{Tree: tr, Engines: []LikelihoodEngine{e}, Generations: 5, NNIProbability: 2}); err == nil {
		t.Error("expected error for bad NNI probability")
	}
}

func TestLogPrior(t *testing.T) {
	tr, _ := tree.ParseNewick("(a:0.1,b:0.2);")
	// Exponential(mean 0.1): logpdf = -x/0.1 - log(0.1) per branch.
	want := (-0.1/0.1 - math.Log(0.1)) + (-0.2/0.1 - math.Log(0.1))
	if got := logPrior(tr, 0.1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("logPrior %v want %v", got, want)
	}
}

func TestSplitSupportRecoversTrueClades(t *testing.T) {
	// With long, strongly informative data, the generating tree's splits
	// should dominate the posterior split frequencies.
	tr, m, rates, ps := testProblem(t, 10, 6, 3000)
	engines := []LikelihoodEngine{}
	for i := 0; i < 2; i++ {
		e, err := NewNativeEngine(m, rates, ps, false)
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, e)
	}
	res, err := Run(Config{
		Tree:           tr, // start at the truth so a short run suffices
		Engines:        engines,
		Generations:    300,
		HeatLambda:     0.1,
		NNIProbability: 0.3,
		SampleInterval: 2,
		SampleSplits:   true,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitSampleCount == 0 || len(res.SplitSupport) == 0 {
		t.Fatal("no split samples collected")
	}
	for s, f := range res.SplitSupport {
		if f <= 0 || f > 1 {
			t.Fatalf("split %q support %v outside (0,1]", s, f)
		}
	}
	// The true splits should be strongly supported.
	trueSplits, err := tr.Splits()
	if err != nil {
		t.Fatal(err)
	}
	for s := range trueSplits {
		if res.SplitSupport[s] < 0.5 {
			t.Errorf("true split %q has support %v", s, res.SplitSupport[s])
		}
	}
}

func TestSplitSupportConfigErrors(t *testing.T) {
	tr, m, rates, ps := testProblem(t, 11, 4, 50)
	e, _ := NewNativeEngine(m, rates, ps, false)
	if _, err := Run(Config{
		Tree: tr, Engines: []LikelihoodEngine{e},
		Generations: 10, BurnInFraction: 1.5,
	}); err == nil {
		t.Fatal("bad burn-in fraction must error")
	}
}
