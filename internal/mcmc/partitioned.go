package mcmc

import (
	"errors"
	"sync"

	"gobeagle/internal/tree"
)

// PartitionedEngine evaluates a partitioned analysis: one likelihood engine
// per data subset (each typically its own library instance, possibly on a
// different resource), all sharing the tree. The joint log likelihood is
// the sum over partitions, evaluated concurrently — exactly the structure
// §IV-F describes for partitioned datasets: "application programs running
// partitioned analyses can invoke multiple library instances, one for each
// data subset".
type PartitionedEngine struct {
	parts []LikelihoodEngine
}

// NewPartitionedEngine combines per-partition engines into one joint
// engine.
func NewPartitionedEngine(parts ...LikelihoodEngine) (*PartitionedEngine, error) {
	if len(parts) == 0 {
		return nil, errors.New("mcmc: need at least one partition engine")
	}
	return &PartitionedEngine{parts: parts}, nil
}

// LogLikelihood evaluates every partition concurrently and sums.
func (e *PartitionedEngine) LogLikelihood(t *tree.Tree) (float64, error) {
	lnLs := make([]float64, len(e.parts))
	errs := make([]error, len(e.parts))
	var wg sync.WaitGroup
	wg.Add(len(e.parts))
	for i, p := range e.parts {
		go func(i int, p LikelihoodEngine) {
			defer wg.Done()
			lnLs[i], errs[i] = p.LogLikelihood(t)
		}(i, p)
	}
	wg.Wait()
	var total float64
	for i := range lnLs {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += lnLs[i]
	}
	return total, nil
}

// Close closes every partition engine, returning the first error.
func (e *PartitionedEngine) Close() error {
	var first error
	for _, p := range e.parts {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var _ LikelihoodEngine = (*PartitionedEngine)(nil)
