package multiimpl

import (
	"math"
	"math/rand"
	"testing"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/engine"
)

// TestMultiRemainingSurface covers tip partials, explicit matrices, edge
// likelihoods and edge derivatives on a pattern-partitioned engine against a
// single-backend reference.
func TestMultiRemainingSurface(t *testing.T) {
	tr, m, rates, ps := problem(t, 10, 4, 300)
	cfg := multiConfig(tr, ps.PatternCount())
	cfg.MatrixBuffers = 12

	single, err := cpuimpl.New(cfg, cpuimpl.Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	multi, err := New(cfg, []Builder{cpuBuilder(cpuimpl.Serial), cpuBuilder(cpuimpl.SSE)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()

	// Expanded tips (SetTipPartials path) on both engines.
	drive := func(e engine.Engine) {
		t.Helper()
		ed, err := m.Eigen()
		if err != nil {
			t.Fatal(err)
		}
		steps := []error{
			e.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
			e.SetCategoryRates(rates.Rates),
			e.SetCategoryWeights(rates.Weights),
			e.SetStateFrequencies(m.Frequencies),
			e.SetPatternWeights(ps.Weights),
		}
		for _, err := range steps {
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < tr.TipCount; i++ {
			if err := e.SetTipPartials(i, ps.TipPartials(i)); err != nil {
				t.Fatal(err)
			}
		}
		sched := tr.FullSchedule()
		mats := make([]int, len(sched.Matrices))
		lens := make([]float64, len(sched.Matrices))
		for i, mu := range sched.Matrices {
			mats[i], lens[i] = mu.Matrix, mu.Length
		}
		if err := e.UpdateTransitionMatrices(0, mats, lens); err != nil {
			t.Fatal(err)
		}
		ops := make([]engine.Operation, len(sched.Ops))
		for i, op := range sched.Ops {
			ops[i] = engine.Operation{
				Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
				Child1: op.Child1, Child1Mat: op.Child1Mat,
				Child2: op.Child2, Child2Mat: op.Child2Mat,
			}
		}
		if err := e.UpdatePartials(ops); err != nil {
			t.Fatal(err)
		}
	}
	drive(single)
	drive(multi)

	// Explicit transition matrix broadcast + read-back.
	mat := make([]float64, cfg.Dims.MatrixLen())
	rng := rand.New(rand.NewSource(7))
	for i := range mat {
		mat[i] = rng.Float64()
	}
	if err := multi.SetTransitionMatrix(11, mat); err != nil {
		t.Fatal(err)
	}
	got, err := multi.GetTransitionMatrix(11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mat {
		if mat[i] != got[i] {
			t.Fatalf("matrix round trip mismatch at %d", i)
		}
	}

	// Edge likelihood and derivatives across the root's joined branch.
	joined := tr.Root.Left.Length + tr.Root.Right.Length
	for _, e := range []engine.Engine{single, multi} {
		if err := e.UpdateTransitionMatrices(0, []int{9}, []float64{joined}); err != nil {
			t.Fatal(err)
		}
		if err := e.UpdateTransitionDerivatives(0, []int{10}, []int{8}, []float64{joined}); err != nil {
			t.Fatal(err)
		}
	}
	p1, p2 := tr.Root.Left.Index, tr.Root.Right.Index
	wantEdge, err := single.CalculateEdgeLogLikelihoods(p1, p2, 9, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	gotEdge, err := multi.CalculateEdgeLogLikelihoods(p1, p2, 9, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wantEdge-gotEdge) > 1e-10*math.Abs(wantEdge) {
		t.Fatalf("edge lnL %v want %v", gotEdge, wantEdge)
	}
	wL, wD1, wD2, err := single.CalculateEdgeDerivatives(p1, p2, 9, 10, 8, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	gL, gD1, gD2, err := multi.CalculateEdgeDerivatives(p1, p2, 9, 10, 8, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wL-gL) > 1e-10*math.Abs(wL) ||
		math.Abs(wD1-gD1) > 1e-9*(1+math.Abs(wD1)) ||
		math.Abs(wD2-gD2) > 1e-9*(1+math.Abs(wD2)) {
		t.Fatalf("derivatives (%v %v %v) want (%v %v %v)", gL, gD1, gD2, wL, wD1, wD2)
	}
}

func TestMultiInputLengthErrors(t *testing.T) {
	tr, _, _, _ := problem(t, 11, 4, 60)
	multi, err := New(multiConfig(tr, 60),
		[]Builder{cpuBuilder(cpuimpl.Serial), cpuBuilder(cpuimpl.Serial)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	if err := multi.SetTipStates(0, make([]int, 10)); err == nil {
		t.Error("short tip states must error")
	}
	if err := multi.SetTipPartials(0, make([]float64, 10)); err == nil {
		t.Error("short tip partials must error")
	}
	if err := multi.SetPartials(0, make([]float64, 10)); err == nil {
		t.Error("short partials must error")
	}
	if err := multi.SetPatternWeights(make([]float64, 10)); err == nil {
		t.Error("short pattern weights must error")
	}
}
