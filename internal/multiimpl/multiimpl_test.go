package multiimpl

import (
	"math"
	"math/rand"
	"testing"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/engine"
	"gobeagle/internal/kernels"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func multiConfig(tr *tree.Tree, patterns int) engine.Config {
	return engine.Config{
		TipCount:        tr.TipCount,
		PartialsBuffers: tr.NodeCount(),
		MatrixBuffers:   tr.NodeCount(),
		EigenBuffers:    1,
		ScaleBuffers:    tr.NodeCount() + 1,
		Dims:            kernels.Dims{StateCount: 4, PatternCount: patterns, CategoryCount: 2},
	}
}

func cpuBuilder(mode cpuimpl.Mode) Builder {
	return func(sub engine.Config) (engine.Engine, error) { return cpuimpl.New(sub, mode) }
}

// evaluate drives a complete tree likelihood through any engine.
func evaluate(t *testing.T, e engine.Engine, tr *tree.Tree, m *substmodel.Model,
	rates *substmodel.SiteRates, ps *seqgen.PatternSet) float64 {
	t.Helper()
	ed, err := m.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	steps := []error{
		e.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		e.SetCategoryRates(rates.Rates),
		e.SetCategoryWeights(rates.Weights),
		e.SetStateFrequencies(m.Frequencies),
		e.SetPatternWeights(ps.Weights),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < tr.TipCount; i++ {
		if err := e.SetTipStates(i, ps.TipStates(i)); err != nil {
			t.Fatal(err)
		}
	}
	sched := tr.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	if err := e.UpdateTransitionMatrices(0, mats, lens); err != nil {
		t.Fatal(err)
	}
	ops := make([]engine.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = engine.Operation{
			Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
			Child1: op.Child1, Child1Mat: op.Child1Mat,
			Child2: op.Child2, Child2Mat: op.Child2Mat,
		}
	}
	if err := e.UpdatePartials(ops); err != nil {
		t.Fatal(err)
	}
	lnL, err := e.CalculateRootLogLikelihoods(sched.Root, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	return lnL
}

func problem(t *testing.T, seed int64, tips, sites int) (*tree.Tree, *substmodel.Model, *substmodel.SiteRates, *seqgen.PatternSet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr, err := tree.Random(rng, tips, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	m, err := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rates, err := substmodel.GammaRates(0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	align, err := seqgen.Simulate(rng, tr, m, rates, sites)
	if err != nil {
		t.Fatal(err)
	}
	return tr, m, rates, seqgen.CompressPatterns(align)
}

func TestMultiMatchesSingleEngine(t *testing.T) {
	tr, m, rates, ps := problem(t, 1, 8, 400)
	single, err := cpuimpl.New(multiConfig(tr, ps.PatternCount()), cpuimpl.Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	want := evaluate(t, single, tr, m, rates, ps)

	for _, backends := range [][]Builder{
		{cpuBuilder(cpuimpl.Serial), cpuBuilder(cpuimpl.Serial)},
		{cpuBuilder(cpuimpl.Serial), cpuBuilder(cpuimpl.SSE), cpuBuilder(cpuimpl.ThreadPool)},
		{cpuBuilder(cpuimpl.ThreadPoolHybrid), cpuBuilder(cpuimpl.Futures)},
	} {
		multi, err := New(multiConfig(tr, ps.PatternCount()), backends, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := evaluate(t, multi, tr, m, rates, ps)
		multi.Close()
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Fatalf("%d backends: lnL %v want %v", len(backends), got, want)
		}
	}
}

func TestMultiProportionalShares(t *testing.T) {
	tr, _, _, _ := problem(t, 2, 4, 50)
	multi, err := New(multiConfig(tr, 100),
		[]Builder{cpuBuilder(cpuimpl.Serial), cpuBuilder(cpuimpl.Serial)},
		[]float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	lo, hi := multi.Ranges()
	if lo[0] != 0 || hi[1] != 100 {
		t.Fatalf("ranges %v %v do not cover the patterns", lo, hi)
	}
	if span := hi[0] - lo[0]; span != 75 {
		t.Fatalf("3:1 shares gave first slice %d patterns", span)
	}
}

func TestMultiSiteLogLikelihoodsOrder(t *testing.T) {
	tr, m, rates, ps := problem(t, 3, 6, 300)
	single, err := cpuimpl.New(multiConfig(tr, ps.PatternCount()), cpuimpl.Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	evaluate(t, single, tr, m, rates, ps)
	want, err := single.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := New(multiConfig(tr, ps.PatternCount()),
		[]Builder{cpuBuilder(cpuimpl.Serial), cpuBuilder(cpuimpl.ThreadPool)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	evaluate(t, multi, tr, m, rates, ps)
	got, err := multi.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("site %d: %v want %v", i, got[i], want[i])
		}
	}
}

func TestMultiGetPartialsGathers(t *testing.T) {
	tr, m, rates, ps := problem(t, 4, 6, 200)
	single, err := cpuimpl.New(multiConfig(tr, ps.PatternCount()), cpuimpl.Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	evaluate(t, single, tr, m, rates, ps)
	want, err := single.GetPartials(tr.Root.Index)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := New(multiConfig(tr, ps.PatternCount()),
		[]Builder{cpuBuilder(cpuimpl.Serial), cpuBuilder(cpuimpl.Serial)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	evaluate(t, multi, tr, m, rates, ps)
	got, err := multi.GetPartials(tr.Root.Index)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("partials gather mismatch at %d", i)
		}
	}
}

func TestMultiSetPartialsRoundTrip(t *testing.T) {
	tr, _, _, _ := problem(t, 5, 4, 50)
	multi, err := New(multiConfig(tr, 64),
		[]Builder{cpuBuilder(cpuimpl.Serial), cpuBuilder(cpuimpl.Serial)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	rng := rand.New(rand.NewSource(9))
	in := make([]float64, 2*64*4)
	for i := range in {
		in[i] = rng.Float64()
	}
	if err := multi.SetPartials(5, in); err != nil {
		t.Fatal(err)
	}
	out, err := multi.GetPartials(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestMultiScalingAgrees(t *testing.T) {
	tr, m, rates, ps := problem(t, 6, 12, 200)
	multi, err := New(multiConfig(tr, ps.PatternCount()),
		[]Builder{cpuBuilder(cpuimpl.Serial), cpuBuilder(cpuimpl.Serial)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	plain := evaluate(t, multi, tr, m, rates, ps)

	// Re-run with rescaling on every operation.
	sched := tr.FullSchedule()
	ops := make([]engine.Operation, len(sched.Ops))
	scaleBufs := make([]int, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = engine.Operation{
			Dest: op.Dest, DestScaleWrite: i, DestScaleRead: engine.None,
			Child1: op.Child1, Child1Mat: op.Child1Mat,
			Child2: op.Child2, Child2Mat: op.Child2Mat,
		}
		scaleBufs[i] = i
	}
	if err := multi.UpdatePartials(ops); err != nil {
		t.Fatal(err)
	}
	cum := len(sched.Ops)
	if err := multi.ResetScaleFactors(cum); err != nil {
		t.Fatal(err)
	}
	if err := multi.AccumulateScaleFactors(scaleBufs, cum); err != nil {
		t.Fatal(err)
	}
	scaled, err := multi.CalculateRootLogLikelihoods(sched.Root, cum)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain-scaled) > 1e-9*math.Abs(plain) {
		t.Fatalf("scaled %v plain %v", scaled, plain)
	}
}

func TestMultiErrors(t *testing.T) {
	tr, _, _, _ := problem(t, 7, 4, 50)
	cfg := multiConfig(tr, 10)
	if _, err := New(cfg, nil, nil); err == nil {
		t.Fatal("no backends must error")
	}
	if _, err := New(cfg, []Builder{cpuBuilder(cpuimpl.Serial)}, []float64{1, 2}); err == nil {
		t.Fatal("share count mismatch must error")
	}
	if _, err := New(cfg, []Builder{cpuBuilder(cpuimpl.Serial)}, []float64{-1}); err == nil {
		t.Fatal("negative share must error")
	}
	small := cfg
	small.Dims.PatternCount = 1
	builders := []Builder{cpuBuilder(cpuimpl.Serial), cpuBuilder(cpuimpl.Serial)}
	if _, err := New(small, builders, nil); err == nil {
		t.Fatal("fewer patterns than backends must error")
	}
	bad := cfg
	bad.TipCount = 0
	if _, err := New(bad, builders, nil); err == nil {
		t.Fatal("invalid config must error")
	}
	// Builder failure cleans up.
	failing := []Builder{
		cpuBuilder(cpuimpl.Serial),
		func(engine.Config) (engine.Engine, error) { return nil, errTest },
	}
	if _, err := New(cfg, failing, nil); err == nil {
		t.Fatal("builder failure must propagate")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test failure" }

func TestMultiName(t *testing.T) {
	tr, _, _, _ := problem(t, 8, 4, 50)
	multi, err := New(multiConfig(tr, 20),
		[]Builder{cpuBuilder(cpuimpl.Serial), cpuBuilder(cpuimpl.SSE)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	name := multi.Name()
	if name == "" || name[:6] != "Multi[" {
		t.Fatalf("name %q", name)
	}
}
