package multiimpl

import (
	"testing"
	"time"

	"gobeagle/internal/engine"
)

// linkedEngine is a slowEngine that also reports a fixed link bandwidth,
// standing in for a remote backend in hierarchy tests.
type linkedEngine struct {
	*slowEngine
	bw float64
}

func (l *linkedEngine) LinkBandwidth() float64 { return l.bw }

func linkedBuilder(perOp time.Duration, bw float64) Builder {
	inner := slowBuilder(perOp)
	return func(sub engine.Config) (engine.Engine, error) {
		e, err := inner(sub)
		if err != nil {
			return nil, err
		}
		return &linkedEngine{slowEngine: e.(*slowEngine), bw: bw}, nil
	}
}

// TestRootBitIdenticalToSingle pins the deterministic root reduction: the
// multi-device root must equal the single-engine root EXACTLY (not within a
// tolerance), whatever the partition, because the site-gather reduction
// reproduces the single-node kernel's term order.
func TestRootBitIdenticalToSingle(t *testing.T) {
	tr, m, rates, ps := problem(t, 20, 8, 300)
	cfg := multiConfig(tr, ps.PatternCount())
	single, err := cpuBuilder(0)(cfg) // cpuimpl.Serial
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	want := evaluate(t, single, tr, m, rates, ps)

	for _, shares := range [][]float64{nil, {1, 1}, {3, 1}, {1, 2, 5}} {
		builders := make([]Builder, 2)
		if len(shares) == 3 {
			builders = make([]Builder, 3)
		}
		for i := range builders {
			builders[i] = cpuBuilder(0)
		}
		multi, err := New(cfg, builders, shares)
		if err != nil {
			t.Fatal(err)
		}
		got := evaluate(t, multi, tr, m, rates, ps)
		multi.Close()
		if got != want {
			t.Fatalf("shares %v: multi root %v differs from single root %v (must be bit-identical)",
				shares, got, want)
		}
	}
}

// TestHierarchyBlocksUnpayableCrossNodeMoves pins the cost gate: with one
// backend per node and a link so slow a migration could never amortize, the
// imbalance must be tolerated — the intra-node tier has nothing to move and
// the cross-node tier refuses to pay.
func TestHierarchyBlocksUnpayableCrossNodeMoves(t *testing.T) {
	tr, _, _, ps := problem(t, 21, 6, 200)
	cfg := multiConfig(tr, ps.PatternCount())
	const unit = 2 * time.Microsecond
	multi, err := NewBalanced(cfg,
		[]Builder{linkedBuilder(unit, 1), linkedBuilder(4*unit, 1)}, // 1 byte/sec: absurdly slow link
		nil,
		Options{Rebalance: true, Interval: 2, Nodes: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()

	_, m, rates, _ := problem(t, 21, 6, 200)
	evaluate(t, multi, tr, m, rates, ps)
	sched := tr.FullSchedule()
	ops := make([]engine.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = engine.Operation{
			Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
			Child1: op.Child1, Child1Mat: op.Child1Mat,
			Child2: op.Child2, Child2Mat: op.Child2Mat,
		}
	}
	loBefore, hiBefore := multi.Ranges()
	for b := 0; b < 12; b++ {
		if err := multi.UpdatePartials(ops); err != nil {
			t.Fatal(err)
		}
	}
	stats, _ := multi.RebalanceStats()
	if stats.Rebalances != 0 || stats.CrossNodeRebalances != 0 {
		t.Fatalf("unpayable cross-node move executed anyway: %+v", stats)
	}
	loAfter, hiAfter := multi.Ranges()
	for i := range loBefore {
		if loBefore[i] != loAfter[i] || hiBefore[i] != hiAfter[i] {
			t.Fatalf("partition moved from %v/%v to %v/%v despite the cost gate",
				loBefore, hiBefore, loAfter, hiAfter)
		}
	}
}

// TestHierarchyCrossNodeMovesWhenWorthIt is the complementary case: a fast
// link makes the same imbalance worth fixing, the global target is adopted,
// the event is marked cross-node, and results stay bit-identical to a
// single engine.
func TestHierarchyCrossNodeMovesWhenWorthIt(t *testing.T) {
	tr, m, rates, ps := problem(t, 22, 8, 200)
	cfg := multiConfig(tr, ps.PatternCount())
	const unit = 5 * time.Microsecond

	single, err := cpuBuilder(0)(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	wantRoot := evaluate(t, single, tr, m, rates, ps)
	wantSite, err := single.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}

	multi, err := NewBalanced(cfg,
		[]Builder{linkedBuilder(unit, 1e12), linkedBuilder(4*unit, 1e12)},
		nil,
		Options{Rebalance: true, Interval: 2, Nodes: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	evaluate(t, multi, tr, m, rates, ps)
	sched := tr.FullSchedule()
	ops := make([]engine.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = engine.Operation{
			Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
			Child1: op.Child1, Child1Mat: op.Child1Mat,
			Child2: op.Child2, Child2Mat: op.Child2Mat,
		}
	}
	for b := 0; b < 12; b++ {
		if err := multi.UpdatePartials(ops); err != nil {
			t.Fatal(err)
		}
	}
	stats, _ := multi.RebalanceStats()
	if stats.CrossNodeRebalances == 0 {
		t.Fatalf("fast link, 4x imbalance: expected a cross-node rebalance, stats %+v", stats)
	}
	var sawCross bool
	for _, ev := range stats.Events {
		if ev.CrossNode {
			sawCross = true
			if ev.CostSeconds < 0 {
				t.Fatalf("negative migration cost in event %+v", ev)
			}
		}
	}
	if !sawCross {
		t.Fatal("no event marked CrossNode")
	}
	lo, hi := multi.Ranges()
	if span0, span1 := hi[0]-lo[0], hi[1]-lo[1]; span0 <= span1 {
		t.Fatalf("split %d:%d has not moved toward the fast backend", span0, span1)
	}

	gotSite, err := multi.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantSite {
		if gotSite[i] != wantSite[i] {
			t.Fatalf("site %d differs from single engine after cross-node migration", i)
		}
	}
	gotRoot, err := multi.CalculateRootLogLikelihoods(sched.Root, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	if gotRoot != wantRoot {
		t.Fatalf("root %v differs from single %v after cross-node migration", gotRoot, wantRoot)
	}
}

// TestHierarchyIntraNodeTier pins the cheap tier: an imbalance entirely
// inside one node rebalances without any cross-node event, and the node
// boundary itself stays put.
func TestHierarchyIntraNodeTier(t *testing.T) {
	tr, m, rates, ps := problem(t, 23, 8, 240)
	cfg := multiConfig(tr, ps.PatternCount())
	const unit = 5 * time.Microsecond

	// Node 0: fast and slow device (total rate 3+... in 1/unit terms);
	// node 1: two equal devices whose combined throughput matches node 0's,
	// so the global target leaves the node boundary (nearly) unmoved and the
	// imbalance is intra-node by construction. The 1 byte/sec link slams the
	// cross-node gate shut so only the intra tier can act.
	multi, err := NewBalanced(cfg,
		[]Builder{
			linkedBuilder(unit, 1), linkedBuilder(3*unit, 1),
			linkedBuilder(unit+unit/2, 1), linkedBuilder(unit+unit/2, 1),
		},
		nil,
		Options{Rebalance: true, Interval: 2, Nodes: []int{0, 0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	evaluate(t, multi, tr, m, rates, ps)
	sched := tr.FullSchedule()
	ops := make([]engine.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = engine.Operation{
			Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
			Child1: op.Child1, Child1Mat: op.Child1Mat,
			Child2: op.Child2, Child2Mat: op.Child2Mat,
		}
	}
	_, hiBefore := multi.Ranges()
	for b := 0; b < 12; b++ {
		if err := multi.UpdatePartials(ops); err != nil {
			t.Fatal(err)
		}
	}
	stats, _ := multi.RebalanceStats()
	if stats.Rebalances == 0 {
		t.Fatalf("intra-node imbalance never rebalanced: %+v", stats)
	}
	if stats.CrossNodeRebalances != 0 {
		t.Fatalf("intra-node imbalance triggered cross-node moves: %+v", stats)
	}
	_, hiAfter := multi.Ranges()
	if hiBefore[1] != hiAfter[1] {
		t.Fatalf("node boundary moved from %d to %d under intra-node-only rebalancing",
			hiBefore[1], hiAfter[1])
	}
	if span0, span1 := hiAfter[0], hiAfter[1]-hiAfter[0]; span0 <= span1 {
		t.Fatalf("node 0 split %d:%d has not moved toward its fast device", span0, span1)
	}
}

func TestValidateNodes(t *testing.T) {
	tr, _, _, _ := problem(t, 24, 4, 50)
	cfg := multiConfig(tr, 40)
	builders := []Builder{slowBuilder(time.Microsecond), slowBuilder(time.Microsecond)}
	cases := [][]int{
		{0},       // wrong length
		{0, -1},   // negative id
		{1, 0},    // decreasing
		{0, 1, 1}, // wrong length (too long)
	}
	for _, nodes := range cases {
		if _, err := NewBalanced(cfg, builders, nil, Options{Rebalance: true, Nodes: nodes}); err == nil {
			t.Fatalf("nodes %v accepted", nodes)
		}
	}
	ok, err := NewBalanced(cfg, builders, nil, Options{Rebalance: true, Nodes: []int{0, 2}})
	if err != nil {
		t.Fatalf("nodes with gaps must be accepted: %v", err)
	}
	ok.Close()
}
