// Package multiimpl implements the load-balancing extension the paper's
// conclusion plans as future work (§IX): computation dynamically balanced
// across multiple devices *within a single library instance*, instead of
// requiring the client program to partition the problem and manage one
// instance per device.
//
// The engine partitions the site patterns into contiguous slices — sized
// proportionally to each backend's expected throughput — and drives one
// sub-engine per slice. Setters scatter their per-pattern data, operations
// execute on all backends concurrently, and likelihood reductions gather
// partial results. Because patterns are independent in the likelihood
// function, the partitioned computation is exact.
//
// When rebalancing is enabled the engine additionally measures each
// backend's realized throughput and migrates boundary pattern spans between
// neighbors whenever the measured split has drifted far enough from the
// configured one (see rebalance.go).
package multiimpl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gobeagle/internal/engine"
	"gobeagle/internal/flops"
	"gobeagle/internal/reuse"
	"gobeagle/internal/telemetry"
	"gobeagle/internal/trace"
)

// Builder constructs a backend engine for one pattern slice. The passed
// configuration equals the parent configuration except for its pattern
// count.
type Builder func(sub engine.Config) (engine.Engine, error)

// Engine is a single logical instance spanning multiple backends.
type Engine struct {
	cfg  engine.Config
	subs []engine.Engine

	// mu serializes every engine call. The library contract already forbids
	// concurrent mutation of one instance, but the rebalancer moves pattern
	// spans between sub-engines mid-stream, so the engine enforces the
	// serialization itself: the end of an UpdatePartials batch under mu is
	// the safe barrier at which repartitioning happens.
	mu     sync.Mutex
	lo, hi []int // pattern range per backend
	reb    *rebalancer

	// patWts is the full pattern-weight vector in global pattern order. The
	// root reduction needs it: summing per-backend partial root sums would
	// tie the result's floating-point association to the current partition,
	// so the engine instead gathers per-pattern site log likelihoods (bit-
	// identical under any partition) and reduces Σ_p w_p·site_p in global
	// pattern order — the exact arithmetic of the single-node root kernel,
	// regardless of how many backends the patterns are spread over or where
	// the rebalancer has moved the boundaries.
	patWts []float64
}

// partition splits p patterns into contiguous per-backend ranges sized
// proportionally to shares, with a 1-pattern floor per backend. It requires
// len(shares) >= 1, every share > 0 and p >= len(shares); the returned
// ranges exactly cover [0, p).
func partition(p int, shares []float64) (lo, hi []int) {
	n := len(shares)
	var total float64
	for _, s := range shares {
		total += s
	}
	lo = make([]int, n)
	hi = make([]int, n)
	var acc float64
	prev := 0
	for i := 0; i < n; i++ {
		acc += shares[i]
		h := int(float64(p)*acc/total + 0.5)
		if i == n-1 {
			h = p
		}
		if h <= prev {
			h = prev + 1
		}
		if h > p-(n-1-i) {
			h = p - (n - 1 - i)
		}
		lo[i], hi[i] = prev, h
		prev = h
	}
	return lo, hi
}

// New creates a multi-device engine. shares give the relative throughput of
// each backend (nil for equal shares); patterns are partitioned
// proportionally, each backend receiving at least one pattern.
func New(cfg engine.Config, builders []Builder, shares []float64) (*Engine, error) {
	return NewBalanced(cfg, builders, shares, Options{})
}

// NewBalanced creates a multi-device engine with adaptive rebalancing
// options. With opts.Rebalance set, every backend must support pattern
// migration (engine.PatternMigrator).
func NewBalanced(cfg engine.Config, builders []Builder, shares []float64, opts Options) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(builders)
	if n == 0 {
		return nil, errors.New("multiimpl: need at least one backend")
	}
	if shares == nil {
		shares = make([]float64, n)
		for i := range shares {
			shares[i] = 1
		}
	}
	if len(shares) != n {
		return nil, fmt.Errorf("multiimpl: %d shares for %d backends", len(shares), n)
	}
	for _, s := range shares {
		if s <= 0 {
			return nil, errors.New("multiimpl: shares must be positive")
		}
	}
	p := cfg.Dims.PatternCount
	if p < n {
		return nil, fmt.Errorf("multiimpl: %d patterns cannot be split across %d backends", p, n)
	}

	if err := validateNodes(opts.Nodes, n); err != nil {
		return nil, err
	}

	e := &Engine{cfg: cfg}
	e.patWts = make([]float64, p)
	for i := range e.patWts {
		e.patWts[i] = 1
	}
	e.lo, e.hi = partition(p, shares)
	for i, b := range builders {
		sub := cfg
		sub.Dims.PatternCount = e.hi[i] - e.lo[i]
		// The parent engine records batch wall times spanning all backends;
		// letting sub-engines also record into the same collector would double
		// count concurrent work, so sub-configurations get no telemetry. The
		// span tracer is different: spans carry lanes, so sub-engines share
		// the parent's tracer and each backend gets its index as its lane —
		// the exported timeline shows the backends side by side.
		sub.Telemetry = nil
		sub.TraceLane = i
		eng, err := b(sub)
		if err != nil {
			for _, s := range e.subs {
				s.Close()
			}
			return nil, fmt.Errorf("multiimpl: backend %d: %w", i, err)
		}
		e.subs = append(e.subs, eng)
	}
	if opts.Rebalance {
		for i, sub := range e.subs {
			if _, ok := sub.(engine.PatternMigrator); !ok {
				e.Close()
				return nil, fmt.Errorf("multiimpl: backend %d (%s) does not support pattern migration", i, sub.Name())
			}
		}
		e.reb = newRebalancer(n, opts)
	}
	return e, nil
}

// Name lists the backend implementations.
func (e *Engine) Name() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := "Multi["
	for i, sub := range e.subs {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%s(%d)", sub.Name(), e.hi[i]-e.lo[i])
	}
	return s + "]"
}

// Ranges returns each backend's pattern range, for tests and diagnostics.
func (e *Engine) Ranges() (lo, hi []int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.lo...), append([]int(nil), e.hi...)
}

// Backends returns the sub-engines in partition order, for diagnostics that
// need to reach through the coordinator (e.g. gathering per-backend
// transport statistics from remote engines). Callers must not drive the
// returned engines directly while the multi-engine is in use.
func (e *Engine) Backends() []engine.Engine {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]engine.Engine(nil), e.subs...)
}

// ReuseStats reports the incremental re-evaluation counters when the
// backends were built with engine.Config.Reuse (zero-value Stats with
// Enabled=false otherwise).
//
// Every backend holds an identical reuse tracker: setters broadcast (or
// scatter per-pattern slices of the same buffer) and operation lists are
// forwarded wholesale, so each sub-engine's tracker observes the same
// invalidation and decision stream and makes the same skip/compute choices.
// Pattern migration under rebalancing moves per-pattern state bit-identically
// between neighbors without changing any buffer's logical contents, so it
// validly carries cache state — no invalidation is needed at a migration
// boundary. The first backend's counters therefore represent the whole
// instance.
func (e *Engine) ReuseStats() reuse.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.subs[0].(interface{ ReuseStats() reuse.Stats }); ok {
		return r.ReuseStats()
	}
	return reuse.Stats{}
}

// Close closes every backend, joining all errors.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	errs := make([]error, len(e.subs))
	for i, s := range e.subs {
		errs[i] = s.Close()
	}
	return errors.Join(errs...)
}

// parallel runs f for every backend concurrently and joins the errors. The
// caller must hold e.mu.
func (e *Engine) parallel(f func(i int, sub engine.Engine) error) error {
	errs := make([]error, len(e.subs))
	var wg sync.WaitGroup
	wg.Add(len(e.subs))
	for i, sub := range e.subs {
		go func(i int, sub engine.Engine) {
			defer wg.Done()
			errs[i] = f(i, sub)
		}(i, sub)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// SetTipStates scatters compact states across backends.
func (e *Engine) SetTipStates(buf int, states []int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(states) != e.cfg.Dims.PatternCount {
		return fmt.Errorf("multiimpl: tip states length %d, want %d", len(states), e.cfg.Dims.PatternCount)
	}
	return e.parallel(func(i int, sub engine.Engine) error {
		return sub.SetTipStates(buf, states[e.lo[i]:e.hi[i]])
	})
}

// SetTipPartials scatters per-pattern tip partials.
func (e *Engine) SetTipPartials(buf int, partials []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.cfg.Dims.StateCount
	if len(partials) != e.cfg.Dims.PatternCount*s {
		return fmt.Errorf("multiimpl: tip partials length %d, want %d", len(partials), e.cfg.Dims.PatternCount*s)
	}
	return e.parallel(func(i int, sub engine.Engine) error {
		return sub.SetTipPartials(buf, partials[e.lo[i]*s:e.hi[i]*s])
	})
}

// SetPartials scatters a full partials buffer (slicing every category
// block).
func (e *Engine) SetPartials(buf int, partials []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := e.cfg.Dims
	if len(partials) != d.PartialsLen() {
		return fmt.Errorf("multiimpl: partials length %d, want %d", len(partials), d.PartialsLen())
	}
	return e.parallel(func(i int, sub engine.Engine) error {
		span := e.hi[i] - e.lo[i]
		out := make([]float64, d.CategoryCount*span*d.StateCount)
		for c := 0; c < d.CategoryCount; c++ {
			src := partials[(c*d.PatternCount+e.lo[i])*d.StateCount : (c*d.PatternCount+e.hi[i])*d.StateCount]
			copy(out[c*span*d.StateCount:], src)
		}
		return sub.SetPartials(buf, out)
	})
}

// GetPartials gathers a partials buffer from the backends.
func (e *Engine) GetPartials(buf int) ([]float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := e.cfg.Dims
	out := make([]float64, d.PartialsLen())
	err := e.parallel(func(i int, sub engine.Engine) error {
		part, err := sub.GetPartials(buf)
		if err != nil {
			return err
		}
		span := e.hi[i] - e.lo[i]
		for c := 0; c < d.CategoryCount; c++ {
			dst := out[(c*d.PatternCount+e.lo[i])*d.StateCount : (c*d.PatternCount+e.hi[i])*d.StateCount]
			copy(dst, part[c*span*d.StateCount:(c*span+span)*d.StateCount])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SetEigenDecomposition broadcasts to every backend.
func (e *Engine) SetEigenDecomposition(slot int, values, vectors, inverseVectors []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallel(func(_ int, sub engine.Engine) error {
		return sub.SetEigenDecomposition(slot, values, vectors, inverseVectors)
	})
}

// SetCategoryRates broadcasts to every backend.
func (e *Engine) SetCategoryRates(rates []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallel(func(_ int, sub engine.Engine) error {
		return sub.SetCategoryRates(rates)
	})
}

// SetCategoryWeights broadcasts to every backend.
func (e *Engine) SetCategoryWeights(weights []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallel(func(_ int, sub engine.Engine) error {
		return sub.SetCategoryWeights(weights)
	})
}

// SetStateFrequencies broadcasts to every backend.
func (e *Engine) SetStateFrequencies(freqs []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallel(func(_ int, sub engine.Engine) error {
		return sub.SetStateFrequencies(freqs)
	})
}

// SetPatternWeights scatters per-pattern weights.
func (e *Engine) SetPatternWeights(weights []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(weights) != e.cfg.Dims.PatternCount {
		return fmt.Errorf("multiimpl: %d pattern weights, want %d", len(weights), e.cfg.Dims.PatternCount)
	}
	copy(e.patWts, weights) // full copy for the deterministic root reduction
	return e.parallel(func(i int, sub engine.Engine) error {
		return sub.SetPatternWeights(weights[e.lo[i]:e.hi[i]])
	})
}

// SetTransitionMatrix broadcasts an explicit matrix.
func (e *Engine) SetTransitionMatrix(matrix int, values []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallel(func(_ int, sub engine.Engine) error {
		return sub.SetTransitionMatrix(matrix, values)
	})
}

// GetTransitionMatrix reads from the first backend (matrices are
// replicated).
func (e *Engine) GetTransitionMatrix(matrix int) ([]float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.subs[0].GetTransitionMatrix(matrix)
}

// UpdateTransitionMatrices broadcasts; every backend computes the same
// matrices (data parallelism is across patterns, not branches).
func (e *Engine) UpdateTransitionMatrices(eigenSlot int, matrices []int, edgeLengths []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var start time.Time
	if e.cfg.Telemetry.Enabled() {
		start = time.Now()
	}
	err := e.parallel(func(_ int, sub engine.Engine) error {
		return sub.UpdateTransitionMatrices(eigenSlot, matrices, edgeLengths)
	})
	if err == nil && !start.IsZero() {
		e.cfg.Telemetry.Record(telemetry.KernelMatrices, len(matrices), time.Since(start))
	}
	return err
}

// UpdatePartials executes the operation list on every backend concurrently
// — each over its own pattern slice. This is the load-balanced execution of
// §IX. With rebalancing enabled it also times each backend and, at interval
// boundaries, repartitions the patterns to match measured throughput.
//
// Scaling — including DestScaleRead — is per pattern, so forwarding the ops
// unchanged is exact: each backend applies read and write scale factors to
// its own pattern slice of the shared scale buffer indices.
func (e *Engine) UpdatePartials(ops []engine.Operation) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	tel := e.cfg.Telemetry
	var start time.Time
	if tel.Enabled() {
		tel.NextBatch()
		start = time.Now()
	}
	tr := e.cfg.Trace
	traceOn := tr.Enabled()
	var tstart int64
	var tbatch uint64
	if traceOn {
		tbatch = tr.NextBatch()
		tstart = tr.Now()
	}
	var err error
	if e.reb != nil {
		elapsed := make([]time.Duration, len(e.subs))
		err = e.parallel(func(i int, sub engine.Engine) error {
			t0 := time.Now()
			var ts int64
			if traceOn {
				ts = tr.Now()
			}
			err := sub.UpdatePartials(ops)
			elapsed[i] = time.Since(t0)
			if traceOn {
				tr.Record(trace.Span{Kind: trace.KindBackend, Lane: int32(i), Batch: tbatch,
					Start: ts, Dur: tr.Now() - ts, Arg0: int64(len(ops)), Arg1: int64(e.hi[i] - e.lo[i])})
			}
			return err
		})
		if err == nil {
			e.reb.noteBatch(len(ops))
			for i := range e.subs {
				e.reb.Observe(i, (e.hi[i]-e.lo[i])*len(ops), elapsed[i].Seconds())
			}
			err = e.maybeRebalance()
		}
	} else {
		err = e.parallel(func(i int, sub engine.Engine) error {
			var ts int64
			if traceOn {
				ts = tr.Now()
			}
			err := sub.UpdatePartials(ops)
			if traceOn {
				tr.Record(trace.Span{Kind: trace.KindBackend, Lane: int32(i), Batch: tbatch,
					Start: ts, Dur: tr.Now() - ts, Arg0: int64(len(ops)), Arg1: int64(e.hi[i] - e.lo[i])})
			}
			return err
		})
	}
	if err == nil && !start.IsZero() {
		tel.Record(telemetry.KernelPartials, len(ops), time.Since(start))
		tel.AddFlops(flops.PartialsOp(e.cfg.Dims) * float64(len(ops)))
	}
	if err == nil && traceOn {
		tr.Record(trace.Span{Kind: trace.KindBarrier, Lane: -1, Batch: tbatch,
			Start: tstart, Dur: tr.Now() - tstart, Arg0: int64(len(e.subs)), Arg1: int64(len(ops))})
	}
	return err
}

// ResetScaleFactors broadcasts.
func (e *Engine) ResetScaleFactors(scaleBuf int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallel(func(_ int, sub engine.Engine) error {
		return sub.ResetScaleFactors(scaleBuf)
	})
}

// AccumulateScaleFactors broadcasts; each backend accumulates its own
// pattern slice.
func (e *Engine) AccumulateScaleFactors(scaleBufs []int, cumBuf int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallel(func(_ int, sub engine.Engine) error {
		return sub.AccumulateScaleFactors(scaleBufs, cumBuf)
	})
}

// CalculateRootLogLikelihoods gathers per-pattern site log likelihoods from
// the backends and reduces Σ_p w_p·site_p in global pattern order. Patterns
// are independent, so the partition is exact; reducing in global order
// additionally makes the result bit-identical to the single-node root kernel
// (which accumulates the same terms left to right) — summing per-backend
// partial sums instead would tie the floating-point association to wherever
// the partition boundaries happen to sit.
func (e *Engine) CalculateRootLogLikelihoods(rootBuf, cumScaleBuf int) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var start time.Time
	if e.cfg.Telemetry.Enabled() {
		start = time.Now()
	}
	sites := make([]float64, e.cfg.Dims.PatternCount)
	err := e.parallel(func(i int, sub engine.Engine) error {
		site, err := sub.SiteLogLikelihoods(rootBuf, cumScaleBuf)
		if err != nil {
			return err
		}
		copy(sites[e.lo[i]:e.hi[i]], site)
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total float64
	for p, site := range sites {
		total += e.patWts[p] * site
	}
	if !start.IsZero() {
		e.cfg.Telemetry.Record(telemetry.KernelRoot, 1, time.Since(start))
	}
	return total, nil
}

// CalculateEdgeLogLikelihoods sums across backends.
func (e *Engine) CalculateEdgeLogLikelihoods(parentBuf, childBuf, matrix, cumScaleBuf int) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var start time.Time
	if e.cfg.Telemetry.Enabled() {
		start = time.Now()
	}
	parts := make([]float64, len(e.subs))
	err := e.parallel(func(i int, sub engine.Engine) error {
		lnL, err := sub.CalculateEdgeLogLikelihoods(parentBuf, childBuf, matrix, cumScaleBuf)
		parts[i] = lnL
		return err
	})
	if err != nil {
		return 0, err
	}
	var total float64
	for _, p := range parts {
		total += p
	}
	if !start.IsZero() {
		e.cfg.Telemetry.Record(telemetry.KernelEdge, 1, time.Since(start))
	}
	return total, nil
}

// UpdateTransitionDerivatives broadcasts to every backend.
func (e *Engine) UpdateTransitionDerivatives(eigenSlot int, d1Matrices, d2Matrices []int, edgeLengths []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallel(func(_ int, sub engine.Engine) error {
		return sub.UpdateTransitionDerivatives(eigenSlot, d1Matrices, d2Matrices, edgeLengths)
	})
}

// CalculateEdgeDerivatives sums the backends' pattern-slice contributions:
// the log likelihood and both derivatives are sums over patterns.
func (e *Engine) CalculateEdgeDerivatives(parentBuf, childBuf, matrix, d1Matrix, d2Matrix, cumScaleBuf int) (float64, float64, float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	lnLs := make([]float64, len(e.subs))
	d1s := make([]float64, len(e.subs))
	d2s := make([]float64, len(e.subs))
	err := e.parallel(func(i int, sub engine.Engine) error {
		lnL, d1, d2, err := sub.CalculateEdgeDerivatives(parentBuf, childBuf, matrix, d1Matrix, d2Matrix, cumScaleBuf)
		lnLs[i], d1s[i], d2s[i] = lnL, d1, d2
		return err
	})
	if err != nil {
		return 0, 0, 0, err
	}
	var lnL, d1, d2 float64
	for i := range lnLs {
		lnL += lnLs[i]
		d1 += d1s[i]
		d2 += d2s[i]
	}
	return lnL, d1, d2, nil
}

// SiteLogLikelihoods gathers per-pattern log likelihoods in pattern order.
func (e *Engine) SiteLogLikelihoods(rootBuf, cumScaleBuf int) ([]float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]float64, e.cfg.Dims.PatternCount)
	err := e.parallel(func(i int, sub engine.Engine) error {
		site, err := sub.SiteLogLikelihoods(rootBuf, cumScaleBuf)
		if err != nil {
			return err
		}
		copy(out[e.lo[i]:e.hi[i]], site)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

var _ engine.Engine = (*Engine)(nil)
