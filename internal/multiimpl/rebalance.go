package multiimpl

import (
	"errors"
	"fmt"

	"gobeagle/internal/engine"
	"gobeagle/internal/trace"
)

// This file implements the adaptive rebalancer: the step from the paper's
// statically partitioned multi-device execution to the dynamically load
// balanced execution its conclusion (§IX) calls for. The multi-device engine
// times every backend's share of each UpdatePartials batch and folds the
// measurements into per-backend EWMA throughput estimates
// (pattern-operations per second). Every Interval batches it derives the
// throughput-proportional target partition; when the predicted batch-time
// speedup of moving to that partition clears the hysteresis Threshold, it
// migrates the boundary pattern spans between neighboring sub-engines via
// the engines' PatternMigrator capability and adopts the new partition. The
// batch boundary — under the engine mutex, with every backend quiescent — is
// the safe barrier the migration requires.
//
// With Options.Nodes set the rebalancer becomes hierarchical, for
// coordinators whose backends span machines (remote engines beside local
// devices). Moving a pattern between two local devices costs a memcpy;
// moving it across nodes serializes every buffer's slice over a network
// link, so the two must not be weighed alike. Each decision therefore
// computes two candidate targets: the intra-node target, which
// redistributes each node's current span among that node's own backends
// (node boundaries fixed, migrations stay on-host), and the global target,
// which also moves patterns across node boundaries. The global target is
// adopted only when it beats the intra-node one AND its predicted per-batch
// saving amortizes the estimated cross-node transfer time within
// CrossNodeHorizon batches — transfer time charged from the remote
// backends' measured link bandwidth (LinkReporter). Otherwise the decision
// falls back to the intra-node target, so local devices keep rebalancing
// freely while patterns cross the network only when the imbalance is
// persistent enough to pay for the trip.

// Defaults for Options fields left zero.
const (
	// DefaultInterval is the number of UpdatePartials batches between
	// rebalance checks.
	DefaultInterval = 10
	// DefaultThreshold is the predicted batch-time speedup a repartition
	// must clear before any patterns move (hysteresis: small drifts are
	// never worth the migration traffic).
	DefaultThreshold = 1.05
	// DefaultAlpha is the EWMA smoothing factor for throughput estimates.
	DefaultAlpha = 0.3
	// DefaultCrossNodeHorizon is the number of future batches over which a
	// cross-node migration's transfer cost must amortize.
	DefaultCrossNodeHorizon = 50

	// maxEvents bounds the retained rebalance event history.
	maxEvents = 32

	// assumedLinkBandwidth (bytes/sec) prices cross-node moves before any
	// payload-sized transfer has measured the real link (~fast ethernet,
	// deliberately conservative so unmeasured links discourage migration).
	assumedLinkBandwidth = 100e6
)

// LinkReporter is implemented by backends that measure their transport
// bandwidth (remote engines); the rebalancer charges cross-node migration
// bytes against it.
type LinkReporter interface {
	// LinkBandwidth returns the measured payload bandwidth in bytes/sec;
	// 0 means unmeasured.
	LinkBandwidth() float64
}

// Options configures adaptive rebalancing for NewBalanced.
type Options struct {
	// Rebalance enables measurement and repartitioning. Off, the engine
	// behaves exactly like the statically partitioned one.
	Rebalance bool
	// Interval is the number of batches between rebalance checks
	// (default DefaultInterval).
	Interval int
	// Threshold is the predicted speedup required before repartitioning
	// (default DefaultThreshold).
	Threshold float64
	// Alpha is the EWMA smoothing factor in (0, 1] (default DefaultAlpha).
	Alpha float64
	// Nodes assigns each backend to a node (machine). Backends of one node
	// must be contiguous and ids non-decreasing, matching the contiguous
	// pattern partition. Nil means all backends share one node, which makes
	// the hierarchical rebalancer behave exactly like the flat one.
	Nodes []int
	// CrossNodeHorizon is the number of future batches over which a
	// cross-node migration must pay for its transfer time (default
	// DefaultCrossNodeHorizon).
	CrossNodeHorizon int
}

// validateNodes checks a Nodes assignment against the backend count.
func validateNodes(nodes []int, n int) error {
	if nodes == nil {
		return nil
	}
	if len(nodes) != n {
		return fmt.Errorf("multiimpl: %d node ids for %d backends", len(nodes), n)
	}
	for i, id := range nodes {
		if id < 0 {
			return fmt.Errorf("multiimpl: negative node id %d", id)
		}
		if i > 0 && id < nodes[i-1] {
			return errors.New("multiimpl: node ids must be non-decreasing (node groups contiguous)")
		}
	}
	return nil
}

// RebalanceEvent records one executed repartition.
type RebalanceEvent struct {
	// Batch is the 1-based UpdatePartials batch after which the
	// repartition ran.
	Batch int
	// OldHi and NewHi are the partition boundaries before and after.
	OldHi, NewHi []int
	// Migrated is the total number of patterns that moved.
	Migrated int
	// PredictedSpeedup is the modeled batch-time ratio that justified the
	// move.
	PredictedSpeedup float64
	// CrossNode reports whether the repartition moved patterns across node
	// boundaries (hierarchical mode only).
	CrossNode bool
	// CostSeconds is the estimated cross-node transfer time charged when
	// CrossNode is set.
	CostSeconds float64
}

// RebalanceStats is a snapshot of the rebalancer's state for telemetry.
type RebalanceStats struct {
	// Batches is the number of UpdatePartials batches observed.
	Batches int
	// Rebalances is the number of executed repartitions.
	Rebalances int
	// CrossNodeRebalances counts the repartitions that moved patterns
	// across node boundaries.
	CrossNodeRebalances int
	// PatternsMigrated is the total number of patterns moved across all
	// repartitions.
	PatternsMigrated int
	// Throughput is the current EWMA estimate per backend, in
	// pattern-operations per second.
	Throughput []float64
	// Lo and Hi are the current partition boundaries, taken atomically with
	// the rest of the snapshot.
	Lo, Hi []int
	// Events is the retained repartition history (most recent last,
	// bounded).
	Events []RebalanceEvent
}

// rebalancer holds the measurement and decision state. All access happens
// under the owning Engine's mutex.
type rebalancer struct {
	interval  int
	threshold float64
	alpha     float64
	nodes     []int // node id per backend; uniform when hierarchy is off
	horizon   int   // batches a cross-node move must amortize over

	batch      int
	lastOps    int       // operations in the most recent batch (cost model)
	ewma       []float64 // pattern-ops per second, per backend
	seeded     []bool
	rebalances int
	crossNode  int
	migrated   int
	events     []RebalanceEvent
}

func newRebalancer(n int, opts Options) *rebalancer {
	r := &rebalancer{
		interval:  opts.Interval,
		threshold: opts.Threshold,
		alpha:     opts.Alpha,
		horizon:   opts.CrossNodeHorizon,
		ewma:      make([]float64, n),
		seeded:    make([]bool, n),
	}
	if r.interval <= 0 {
		r.interval = DefaultInterval
	}
	if r.threshold <= 1 {
		r.threshold = DefaultThreshold
	}
	if r.alpha <= 0 || r.alpha > 1 {
		r.alpha = DefaultAlpha
	}
	if r.horizon <= 0 {
		r.horizon = DefaultCrossNodeHorizon
	}
	r.nodes = make([]int, n)
	if opts.Nodes != nil {
		copy(r.nodes, opts.Nodes)
	}
	return r
}

// multiNode reports whether the backends span more than one node.
func (r *rebalancer) multiNode() bool {
	for _, id := range r.nodes {
		if id != r.nodes[0] {
			return true
		}
	}
	return false
}

// noteBatch records the size of the batch just executed; the cross-node
// cost model needs it to turn per-operation spans into seconds per batch.
//
//beagle:noalloc
func (r *rebalancer) noteBatch(ops int) {
	r.lastOps = ops
}

// Observe folds one backend's batch measurement into its EWMA throughput
// estimate. It runs once per backend per UpdatePartials batch on the hot
// path, so it must stay pure arithmetic.
//
//beagle:noalloc
func (r *rebalancer) Observe(i, patternOps int, seconds float64) {
	if patternOps <= 0 || seconds <= 0 {
		return
	}
	rate := float64(patternOps) / seconds
	if !r.seeded[i] {
		r.ewma[i] = rate
		r.seeded[i] = true
		return
	}
	r.ewma[i] += r.alpha * (rate - r.ewma[i])
}

// due reports whether a rebalance check should run after the current batch,
// advancing the batch counter.
func (r *rebalancer) due() bool {
	r.batch++
	if r.batch%r.interval != 0 {
		return false
	}
	for _, s := range r.seeded {
		if !s {
			return false
		}
	}
	return true
}

// predictSpeedup models batch wall time as the slowest backend's span/rate
// and returns oldTime/newTime for a move from the current to the target
// boundaries.
func (r *rebalancer) predictSpeedup(lo, hi, newLo, newHi []int) float64 {
	var cur, next float64
	for i := range r.ewma {
		if t := float64(hi[i]-lo[i]) / r.ewma[i]; t > cur {
			cur = t
		}
		if t := float64(newHi[i]-newLo[i]) / r.ewma[i]; t > next {
			next = t
		}
	}
	if next <= 0 {
		return 1
	}
	return cur / next
}

// savedSecondsPerBatch converts the modeled wall-time improvement of a move
// into seconds per batch, using the most recent batch's operation count:
// span/rate is seconds per single operation sweep, so batch time is that
// times the operations in the batch.
func (r *rebalancer) savedSecondsPerBatch(lo, hi, newLo, newHi []int) float64 {
	var cur, next float64
	for i := range r.ewma {
		if t := float64(hi[i]-lo[i]) / r.ewma[i]; t > cur {
			cur = t
		}
		if t := float64(newHi[i]-newLo[i]) / r.ewma[i]; t > next {
			next = t
		}
	}
	saved := (cur - next) * float64(r.lastOps)
	if saved < 0 {
		return 0
	}
	return saved
}

// intraNodeTarget computes the partition that redistributes each node's
// current pattern span among that node's own backends by EWMA throughput,
// leaving the node boundaries where they are — the cheap tier of the
// hierarchy, whose migrations never touch the network.
func (r *rebalancer) intraNodeTarget(lo, hi []int) (newLo, newHi []int) {
	n := len(r.ewma)
	newLo = make([]int, n)
	newHi = make([]int, n)
	for b := 0; b < n; {
		end := b
		for end+1 < n && r.nodes[end+1] == r.nodes[b] {
			end++
		}
		span := hi[end] - lo[b]
		glo, ghi := partition(span, r.ewma[b:end+1])
		for i := b; i <= end; i++ {
			newLo[i] = lo[b] + glo[i-b]
			newHi[i] = lo[b] + ghi[i-b]
		}
		b = end + 1
	}
	return newLo, newHi
}

// bytesPerPattern estimates the serialized size of one pattern's migrating
// state: every partials buffer's category×state block, plus its scale and
// tip-state entries, at 8 bytes a value.
func (e *Engine) bytesPerPattern() float64 {
	d := e.cfg.Dims
	return 8 * float64(e.cfg.PartialsBuffers*d.CategoryCount*d.StateCount+
		e.cfg.ScaleBuffers+e.cfg.TipCount)
}

// migrationCostSeconds estimates the wall time of moving from the current
// boundaries to newHi: patterns crossing a boundary between different nodes
// are charged against the measured link bandwidth of the remote side
// (assumedLinkBandwidth when unmeasured). On-host moves are free at this
// model's resolution.
func (e *Engine) migrationCostSeconds(newHi []int) float64 {
	r := e.reb
	bpp := e.bytesPerPattern()
	var cost float64
	for b := 0; b < len(e.subs)-1; b++ {
		if r.nodes[b] == r.nodes[b+1] {
			continue
		}
		moved := newHi[b] - e.hi[b]
		if moved < 0 {
			moved = -moved
		}
		if moved == 0 {
			continue
		}
		bw := 0.0
		if lr, ok := e.subs[b].(LinkReporter); ok && lr.LinkBandwidth() > 0 {
			bw = lr.LinkBandwidth()
		}
		if lr, ok := e.subs[b+1].(LinkReporter); ok && lr.LinkBandwidth() > 0 {
			bw = lr.LinkBandwidth()
		}
		if bw <= 0 {
			bw = assumedLinkBandwidth
		}
		cost += float64(moved) * bpp / bw
	}
	return cost
}

// maybeRebalance runs after a successful UpdatePartials batch with e.mu
// held. At interval boundaries it computes the candidate target partitions
// — intra-node always, global only when its extra speedup amortizes the
// cross-node transfer cost — and, when the chosen target's predicted
// speedup clears the hysteresis threshold, migrates the boundary spans and
// adopts the new partition. With all backends on one node the intra-node
// target IS the global partition, so the flat behavior is unchanged.
func (e *Engine) maybeRebalance() error {
	r := e.reb
	if !r.due() {
		return nil
	}
	tr := e.cfg.Trace
	traceOn := tr.Enabled()
	var tstart int64
	if traceOn {
		tstart = tr.Now()
	}
	p := e.cfg.Dims.PatternCount
	newLo, newHi := r.intraNodeTarget(e.lo, e.hi)
	speedup := r.predictSpeedup(e.lo, e.hi, newLo, newHi)
	cross := false
	var cost float64
	if r.multiNode() {
		gLo, gHi := partition(p, r.ewma)
		if gSpeed := r.predictSpeedup(e.lo, e.hi, gLo, gHi); gSpeed > speedup && gSpeed >= r.threshold {
			c := e.migrationCostSeconds(gHi)
			saved := r.savedSecondsPerBatch(e.lo, e.hi, gLo, gHi) -
				r.savedSecondsPerBatch(e.lo, e.hi, newLo, newHi)
			if saved*float64(r.horizon) > c {
				newLo, newHi, speedup = gLo, gHi, gSpeed
				cross, cost = true, c
			}
		}
	}
	if speedup < r.threshold {
		return nil
	}
	oldHi := append([]int(nil), e.hi...)
	moved, err := e.migrate(newHi)
	if err != nil {
		return fmt.Errorf("multiimpl: rebalance migration: %w", err)
	}
	if traceOn {
		// Speedup ×1000 rides in Arg1 so the integer span args can carry it.
		tr.Record(trace.Span{Kind: trace.KindRebalance, Lane: -1,
			Start: tstart, Dur: tr.Now() - tstart,
			Arg0: int64(moved), Arg1: int64(speedup * 1000)})
	}
	if moved == 0 {
		return nil
	}
	r.rebalances++
	if cross {
		r.crossNode++
	}
	r.migrated += moved
	r.events = append(r.events, RebalanceEvent{
		Batch:            r.batch,
		OldHi:            oldHi,
		NewHi:            append([]int(nil), newHi...),
		Migrated:         moved,
		PredictedSpeedup: speedup,
		CrossNode:        cross,
		CostSeconds:      cost,
	})
	if len(r.events) > maxEvents {
		r.events = r.events[len(r.events)-maxEvents:]
	}
	return nil
}

// migrate moves boundary pattern spans between neighboring sub-engines
// until the partition boundaries equal newHi, returning the number of
// patterns moved.
//
// The move runs in two phases. Phase 1 walks boundaries right to left and
// handles every boundary that moves up (backend b grows into b+1's low
// end); phase 2 walks left to right and handles every boundary that moves
// down (backend b donates its high end to b+1). Ordering each phase this
// way guarantees the donor always holds more patterns than it gives up:
// when boundary b moves up, boundary b+1 has already reached its final
// position, so backend b+1 still spans at least its final (non-empty)
// range plus the span being detached; symmetrically for phase 2. Engines
// therefore never pass through an empty state, which DetachPatterns
// forbids.
func (e *Engine) migrate(newHi []int) (int, error) {
	n := len(e.subs)
	moved := 0
	tr := e.cfg.Trace
	traceOn := tr.Enabled()
	// step performs one boundary move and traces it: the span lands on the
	// receiving backend's lane, Arg0 carries patterns moved, Arg1 the donor.
	step := func(from, to, span int, move func() error) error {
		var ts int64
		if traceOn {
			ts = tr.Now()
		}
		if err := move(); err != nil {
			return err
		}
		if traceOn {
			tr.Record(trace.Span{Kind: trace.KindMigrate, Lane: int32(to),
				Start: ts, Dur: tr.Now() - ts, Arg0: int64(span), Arg1: int64(from)})
		}
		return nil
	}
	// Phase 1: boundaries moving up, right to left.
	for b := n - 2; b >= 0; b-- {
		if newHi[b] <= e.hi[b] {
			continue
		}
		span := newHi[b] - e.hi[b]
		if err := step(b+1, b, span, func() error {
			blk, err := e.subs[b+1].(engine.PatternMigrator).DetachPatterns(false, span)
			if err != nil {
				return err
			}
			return e.subs[b].(engine.PatternMigrator).AttachPatterns(true, blk)
		}); err != nil {
			return moved, err
		}
		e.hi[b] = newHi[b]
		e.lo[b+1] = newHi[b]
		moved += span
	}
	// Phase 2: boundaries moving down, left to right.
	for b := 0; b < n-1; b++ {
		if newHi[b] >= e.hi[b] {
			continue
		}
		span := e.hi[b] - newHi[b]
		if err := step(b, b+1, span, func() error {
			blk, err := e.subs[b].(engine.PatternMigrator).DetachPatterns(true, span)
			if err != nil {
				return err
			}
			return e.subs[b+1].(engine.PatternMigrator).AttachPatterns(false, blk)
		}); err != nil {
			return moved, err
		}
		e.hi[b] = newHi[b]
		e.lo[b+1] = newHi[b]
		moved += span
	}
	return moved, nil
}

// RebalanceStats returns a snapshot of the rebalancer state and whether
// rebalancing is enabled at all.
func (e *Engine) RebalanceStats() (RebalanceStats, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.reb == nil {
		return RebalanceStats{}, false
	}
	r := e.reb
	return RebalanceStats{
		Batches:             r.batch,
		Rebalances:          r.rebalances,
		CrossNodeRebalances: r.crossNode,
		PatternsMigrated:    r.migrated,
		Throughput:          append([]float64(nil), r.ewma...),
		Lo:                  append([]int(nil), e.lo...),
		Hi:                  append([]int(nil), e.hi...),
		Events:              append([]RebalanceEvent(nil), r.events...),
	}, true
}
