package multiimpl

import (
	"fmt"

	"gobeagle/internal/engine"
	"gobeagle/internal/trace"
)

// This file implements the adaptive rebalancer: the step from the paper's
// statically partitioned multi-device execution to the dynamically load
// balanced execution its conclusion (§IX) calls for. The multi-device engine
// times every backend's share of each UpdatePartials batch and folds the
// measurements into per-backend EWMA throughput estimates
// (pattern-operations per second). Every Interval batches it derives the
// throughput-proportional target partition; when the predicted batch-time
// speedup of moving to that partition clears the hysteresis Threshold, it
// migrates the boundary pattern spans between neighboring sub-engines via
// the engines' PatternMigrator capability and adopts the new partition. The
// batch boundary — under the engine mutex, with every backend quiescent — is
// the safe barrier the migration requires.

// Defaults for Options fields left zero.
const (
	// DefaultInterval is the number of UpdatePartials batches between
	// rebalance checks.
	DefaultInterval = 10
	// DefaultThreshold is the predicted batch-time speedup a repartition
	// must clear before any patterns move (hysteresis: small drifts are
	// never worth the migration traffic).
	DefaultThreshold = 1.05
	// DefaultAlpha is the EWMA smoothing factor for throughput estimates.
	DefaultAlpha = 0.3

	// maxEvents bounds the retained rebalance event history.
	maxEvents = 32
)

// Options configures adaptive rebalancing for NewBalanced.
type Options struct {
	// Rebalance enables measurement and repartitioning. Off, the engine
	// behaves exactly like the statically partitioned one.
	Rebalance bool
	// Interval is the number of batches between rebalance checks
	// (default DefaultInterval).
	Interval int
	// Threshold is the predicted speedup required before repartitioning
	// (default DefaultThreshold).
	Threshold float64
	// Alpha is the EWMA smoothing factor in (0, 1] (default DefaultAlpha).
	Alpha float64
}

// RebalanceEvent records one executed repartition.
type RebalanceEvent struct {
	// Batch is the 1-based UpdatePartials batch after which the
	// repartition ran.
	Batch int
	// OldHi and NewHi are the partition boundaries before and after.
	OldHi, NewHi []int
	// Migrated is the total number of patterns that moved.
	Migrated int
	// PredictedSpeedup is the modeled batch-time ratio that justified the
	// move.
	PredictedSpeedup float64
}

// RebalanceStats is a snapshot of the rebalancer's state for telemetry.
type RebalanceStats struct {
	// Batches is the number of UpdatePartials batches observed.
	Batches int
	// Rebalances is the number of executed repartitions.
	Rebalances int
	// PatternsMigrated is the total number of patterns moved across all
	// repartitions.
	PatternsMigrated int
	// Throughput is the current EWMA estimate per backend, in
	// pattern-operations per second.
	Throughput []float64
	// Lo and Hi are the current partition boundaries, taken atomically with
	// the rest of the snapshot.
	Lo, Hi []int
	// Events is the retained repartition history (most recent last,
	// bounded).
	Events []RebalanceEvent
}

// rebalancer holds the measurement and decision state. All access happens
// under the owning Engine's mutex.
type rebalancer struct {
	interval  int
	threshold float64
	alpha     float64

	batch      int
	ewma       []float64 // pattern-ops per second, per backend
	seeded     []bool
	rebalances int
	migrated   int
	events     []RebalanceEvent
}

func newRebalancer(n int, opts Options) *rebalancer {
	r := &rebalancer{
		interval:  opts.Interval,
		threshold: opts.Threshold,
		alpha:     opts.Alpha,
		ewma:      make([]float64, n),
		seeded:    make([]bool, n),
	}
	if r.interval <= 0 {
		r.interval = DefaultInterval
	}
	if r.threshold <= 1 {
		r.threshold = DefaultThreshold
	}
	if r.alpha <= 0 || r.alpha > 1 {
		r.alpha = DefaultAlpha
	}
	return r
}

// Observe folds one backend's batch measurement into its EWMA throughput
// estimate. It runs once per backend per UpdatePartials batch on the hot
// path, so it must stay pure arithmetic.
//
//beagle:noalloc
func (r *rebalancer) Observe(i, patternOps int, seconds float64) {
	if patternOps <= 0 || seconds <= 0 {
		return
	}
	rate := float64(patternOps) / seconds
	if !r.seeded[i] {
		r.ewma[i] = rate
		r.seeded[i] = true
		return
	}
	r.ewma[i] += r.alpha * (rate - r.ewma[i])
}

// due reports whether a rebalance check should run after the current batch,
// advancing the batch counter.
func (r *rebalancer) due() bool {
	r.batch++
	if r.batch%r.interval != 0 {
		return false
	}
	for _, s := range r.seeded {
		if !s {
			return false
		}
	}
	return true
}

// predictSpeedup models batch wall time as the slowest backend's span/rate
// and returns oldTime/newTime for a move from the current to the target
// boundaries.
func (r *rebalancer) predictSpeedup(lo, hi, newLo, newHi []int) float64 {
	var cur, next float64
	for i := range r.ewma {
		if t := float64(hi[i]-lo[i]) / r.ewma[i]; t > cur {
			cur = t
		}
		if t := float64(newHi[i]-newLo[i]) / r.ewma[i]; t > next {
			next = t
		}
	}
	if next <= 0 {
		return 1
	}
	return cur / next
}

// maybeRebalance runs after a successful UpdatePartials batch with e.mu
// held. At interval boundaries it computes the throughput-proportional
// target partition and, when the predicted speedup clears the hysteresis
// threshold, migrates the boundary spans and adopts the new partition.
func (e *Engine) maybeRebalance() error {
	r := e.reb
	if !r.due() {
		return nil
	}
	tr := e.cfg.Trace
	traceOn := tr.Enabled()
	var tstart int64
	if traceOn {
		tstart = tr.Now()
	}
	p := e.cfg.Dims.PatternCount
	newLo, newHi := partition(p, r.ewma)
	speedup := r.predictSpeedup(e.lo, e.hi, newLo, newHi)
	if speedup < r.threshold {
		return nil
	}
	oldHi := append([]int(nil), e.hi...)
	moved, err := e.migrate(newHi)
	if err != nil {
		return fmt.Errorf("multiimpl: rebalance migration: %w", err)
	}
	if traceOn {
		// Speedup ×1000 rides in Arg1 so the integer span args can carry it.
		tr.Record(trace.Span{Kind: trace.KindRebalance, Lane: -1,
			Start: tstart, Dur: tr.Now() - tstart,
			Arg0: int64(moved), Arg1: int64(speedup * 1000)})
	}
	if moved == 0 {
		return nil
	}
	r.rebalances++
	r.migrated += moved
	r.events = append(r.events, RebalanceEvent{
		Batch:            r.batch,
		OldHi:            oldHi,
		NewHi:            append([]int(nil), newHi...),
		Migrated:         moved,
		PredictedSpeedup: speedup,
	})
	if len(r.events) > maxEvents {
		r.events = r.events[len(r.events)-maxEvents:]
	}
	return nil
}

// migrate moves boundary pattern spans between neighboring sub-engines
// until the partition boundaries equal newHi, returning the number of
// patterns moved.
//
// The move runs in two phases. Phase 1 walks boundaries right to left and
// handles every boundary that moves up (backend b grows into b+1's low
// end); phase 2 walks left to right and handles every boundary that moves
// down (backend b donates its high end to b+1). Ordering each phase this
// way guarantees the donor always holds more patterns than it gives up:
// when boundary b moves up, boundary b+1 has already reached its final
// position, so backend b+1 still spans at least its final (non-empty)
// range plus the span being detached; symmetrically for phase 2. Engines
// therefore never pass through an empty state, which DetachPatterns
// forbids.
func (e *Engine) migrate(newHi []int) (int, error) {
	n := len(e.subs)
	moved := 0
	tr := e.cfg.Trace
	traceOn := tr.Enabled()
	// step performs one boundary move and traces it: the span lands on the
	// receiving backend's lane, Arg0 carries patterns moved, Arg1 the donor.
	step := func(from, to, span int, move func() error) error {
		var ts int64
		if traceOn {
			ts = tr.Now()
		}
		if err := move(); err != nil {
			return err
		}
		if traceOn {
			tr.Record(trace.Span{Kind: trace.KindMigrate, Lane: int32(to),
				Start: ts, Dur: tr.Now() - ts, Arg0: int64(span), Arg1: int64(from)})
		}
		return nil
	}
	// Phase 1: boundaries moving up, right to left.
	for b := n - 2; b >= 0; b-- {
		if newHi[b] <= e.hi[b] {
			continue
		}
		span := newHi[b] - e.hi[b]
		if err := step(b+1, b, span, func() error {
			blk, err := e.subs[b+1].(engine.PatternMigrator).DetachPatterns(false, span)
			if err != nil {
				return err
			}
			return e.subs[b].(engine.PatternMigrator).AttachPatterns(true, blk)
		}); err != nil {
			return moved, err
		}
		e.hi[b] = newHi[b]
		e.lo[b+1] = newHi[b]
		moved += span
	}
	// Phase 2: boundaries moving down, left to right.
	for b := 0; b < n-1; b++ {
		if newHi[b] >= e.hi[b] {
			continue
		}
		span := e.hi[b] - newHi[b]
		if err := step(b, b+1, span, func() error {
			blk, err := e.subs[b].(engine.PatternMigrator).DetachPatterns(true, span)
			if err != nil {
				return err
			}
			return e.subs[b+1].(engine.PatternMigrator).AttachPatterns(false, blk)
		}); err != nil {
			return moved, err
		}
		e.hi[b] = newHi[b]
		e.lo[b+1] = newHi[b]
		moved += span
	}
	return moved, nil
}

// RebalanceStats returns a snapshot of the rebalancer state and whether
// rebalancing is enabled at all.
func (e *Engine) RebalanceStats() (RebalanceStats, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.reb == nil {
		return RebalanceStats{}, false
	}
	r := e.reb
	return RebalanceStats{
		Batches:          r.batch,
		Rebalances:       r.rebalances,
		PatternsMigrated: r.migrated,
		Throughput:       append([]float64(nil), r.ewma...),
		Lo:               append([]int(nil), e.lo...),
		Hi:               append([]int(nil), e.hi...),
		Events:           append([]RebalanceEvent(nil), r.events...),
	}, true
}
