package multiimpl

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/engine"
)

// TestPartitionProperty drives the partition helper with random pattern
// counts, backend counts and heavily skewed shares: the result must always
// be contiguous, non-empty slices exactly covering [0, PatternCount).
func TestPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 2000; iter++ {
		n := 1 + rng.Intn(8)
		p := n + rng.Intn(500)
		shares := make([]float64, n)
		for i := range shares {
			// Skew across ~9 orders of magnitude, the worst realistic case
			// being a 1/32-DP-ratio GPU against a full-rate one.
			shares[i] = rng.Float64() * pow10(rng.Intn(9))
			if shares[i] <= 0 {
				shares[i] = 1e-9
			}
		}
		lo, hi := partition(p, shares)
		if len(lo) != n || len(hi) != n {
			t.Fatalf("iter %d: %d ranges for %d backends", iter, len(lo), n)
		}
		if lo[0] != 0 {
			t.Fatalf("iter %d: first slice starts at %d", iter, lo[0])
		}
		if hi[n-1] != p {
			t.Fatalf("iter %d: last slice ends at %d, want %d", iter, hi[n-1], p)
		}
		for i := 0; i < n; i++ {
			if hi[i] <= lo[i] {
				t.Fatalf("iter %d: empty slice %d: [%d,%d) of p=%d shares=%v", iter, i, lo[i], hi[i], p, shares)
			}
			if i > 0 && lo[i] != hi[i-1] {
				t.Fatalf("iter %d: gap between slice %d and %d: %v %v", iter, i-1, i, lo, hi)
			}
		}
	}
}

func pow10(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 10
	}
	return out
}

// slowEngine wraps a real engine and sleeps a deterministic per-pattern-op
// delay in UpdatePartials, simulating a backend with known throughput. It
// forwards pattern migration to the wrapped engine and tracks its own
// pattern count across migrations.
type slowEngine struct {
	engine.Engine
	patterns int
	perOp    time.Duration
}

func slowBuilder(perOp time.Duration) Builder {
	return func(sub engine.Config) (engine.Engine, error) {
		e, err := cpuimpl.New(sub, cpuimpl.Serial)
		if err != nil {
			return nil, err
		}
		return &slowEngine{Engine: e, patterns: sub.Dims.PatternCount, perOp: perOp}, nil
	}
}

func (s *slowEngine) UpdatePartials(ops []engine.Operation) error {
	time.Sleep(time.Duration(s.patterns*len(ops)) * s.perOp)
	return s.Engine.UpdatePartials(ops)
}

func (s *slowEngine) DetachPatterns(fromHigh bool, n int) (*engine.PatternBlock, error) {
	blk, err := s.Engine.(engine.PatternMigrator).DetachPatterns(fromHigh, n)
	if err == nil {
		s.patterns -= n
	}
	return blk, err
}

func (s *slowEngine) AttachPatterns(atHigh bool, blk *engine.PatternBlock) error {
	err := s.Engine.(engine.PatternMigrator).AttachPatterns(atHigh, blk)
	if err == nil {
		s.patterns += blk.Patterns
	}
	return err
}

// minBatchWall measures the fastest of k UpdatePartials batches — the
// minimum filters scheduler noise from the deterministic sleep floor.
func minBatchWall(t *testing.T, e engine.Engine, ops []engine.Operation, k int) time.Duration {
	t.Helper()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < k; i++ {
		t0 := time.Now()
		if err := e.UpdatePartials(ops); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// TestRebalanceConverges is the acceptance scenario: two fake backends, one
// deterministically 4× slower, starting from an even split. Within 10
// batches the rebalancer must have repartitioned, the measured batch wall
// time must come within 15% of an oracle static 4:1 split, and the results
// must stay bit-identical to a single-backend engine.
func TestRebalanceConverges(t *testing.T) {
	tr, m, rates, ps := problem(t, 10, 8, 200)
	cfg := multiConfig(tr, ps.PatternCount())
	const unit = 5 * time.Microsecond

	single, err := cpuimpl.New(cfg, cpuimpl.Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	evaluate(t, single, tr, m, rates, ps)
	wantSite, err := single.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}

	// Even initial split (shares 1:1) with the fast backend first.
	builders := []Builder{slowBuilder(unit), slowBuilder(4 * unit)}
	multi, err := NewBalanced(cfg, builders, []float64{1, 1},
		Options{Rebalance: true, Interval: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	evaluate(t, multi, tr, m, rates, ps) // batch 1

	sched := tr.FullSchedule()
	ops := make([]engine.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = engine.Operation{
			Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
			Child1: op.Child1, Child1Mat: op.Child1Mat,
			Child2: op.Child2, Child2Mat: op.Child2Mat,
		}
	}
	for b := 0; b < 9; b++ { // batches 2..10
		if err := multi.UpdatePartials(ops); err != nil {
			t.Fatal(err)
		}
	}

	stats, enabled := multi.RebalanceStats()
	if !enabled {
		t.Fatal("rebalancing not enabled")
	}
	if stats.Rebalances == 0 {
		t.Fatal("no rebalance within 10 batches")
	}
	lo, hi := multi.Ranges()
	if span0, span1 := hi[0]-lo[0], hi[1]-lo[1]; span0 <= 2*span1 {
		t.Fatalf("split %d:%d has not moved toward the 4:1 oracle (events %+v)",
			span0, span1, stats.Events)
	}

	// Results after migration stay bit-identical to the single engine.
	gotSite, err := multi.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantSite {
		if gotSite[i] != wantSite[i] {
			t.Fatalf("site %d log likelihood %v differs from single engine %v after rebalance",
				i, gotSite[i], wantSite[i])
		}
	}

	// Oracle: the same fake backends statically split 4:1.
	oracle, err := New(cfg, []Builder{slowBuilder(unit), slowBuilder(4 * unit)}, []float64{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	evaluate(t, oracle, tr, m, rates, ps)

	converged := minBatchWall(t, multi, ops, 5)
	oracleWall := minBatchWall(t, oracle, ops, 5)
	if limit := oracleWall + oracleWall*15/100; converged > limit {
		t.Fatalf("converged batch wall %v exceeds oracle %v by more than 15%%", converged, oracleWall)
	}
}

// TestRebalanceDisabledStatic pins the opt-in contract: without rebalancing
// the partition never moves and no rebalance telemetry is reported.
func TestRebalanceDisabledStatic(t *testing.T) {
	tr, m, rates, ps := problem(t, 11, 6, 150)
	cfg := multiConfig(tr, ps.PatternCount())
	multi, err := New(cfg, []Builder{slowBuilder(time.Microsecond), slowBuilder(8 * time.Microsecond)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	evaluate(t, multi, tr, m, rates, ps)
	lo0, hi0 := multi.Ranges()

	sched := tr.FullSchedule()
	ops := make([]engine.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = engine.Operation{
			Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
			Child1: op.Child1, Child1Mat: op.Child1Mat,
			Child2: op.Child2, Child2Mat: op.Child2Mat,
		}
	}
	for b := 0; b < 12; b++ {
		if err := multi.UpdatePartials(ops); err != nil {
			t.Fatal(err)
		}
	}
	lo1, hi1 := multi.Ranges()
	for i := range lo0 {
		if lo0[i] != lo1[i] || hi0[i] != hi1[i] {
			t.Fatalf("partition moved without FlagRebalance: %v %v -> %v %v", lo0, hi0, lo1, hi1)
		}
	}
	if _, enabled := multi.RebalanceStats(); enabled {
		t.Fatal("rebalance telemetry reported on a static engine")
	}
}

// TestRebalanceConcurrentBatches drives UpdatePartials batches from several
// goroutines through rebalances while another goroutine polls telemetry;
// run with -race this checks the engine's internal serialization.
func TestRebalanceConcurrentBatches(t *testing.T) {
	tr, m, rates, ps := problem(t, 12, 6, 120)
	cfg := multiConfig(tr, ps.PatternCount())
	multi, err := NewBalanced(cfg,
		[]Builder{slowBuilder(time.Microsecond), slowBuilder(4 * time.Microsecond)},
		nil, Options{Rebalance: true, Interval: 1, Threshold: 1.01})
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	evaluate(t, multi, tr, m, rates, ps)

	sched := tr.FullSchedule()
	ops := make([]engine.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = engine.Operation{
			Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
			Child1: op.Child1, Child1Mat: op.Child1Mat,
			Child2: op.Child2, Child2Mat: op.Child2Mat,
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < 8; b++ {
				if err := multi.UpdatePartials(ops); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			multi.RebalanceStats()
			multi.Ranges()
			if _, err := multi.SiteLogLikelihoods(tr.Root.Index, engine.None); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	// The computation must still be exact after concurrent rebalances.
	single, err := cpuimpl.New(cfg, cpuimpl.Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	evaluate(t, single, tr, m, rates, ps)
	want, err := single.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	got, err := multi.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("site %d diverged after concurrent rebalances", i)
		}
	}
}

// TestRebalanceRequiresMigrators pins the constructor check: a backend
// without pattern migration must be rejected when rebalancing is requested.
func TestRebalanceRequiresMigrators(t *testing.T) {
	tr, _, _, _ := problem(t, 13, 4, 60)
	cfg := multiConfig(tr, 40)
	rigid := func(sub engine.Config) (engine.Engine, error) {
		e, err := cpuimpl.New(sub, cpuimpl.Serial)
		if err != nil {
			return nil, err
		}
		return &noMigrateEngine{e}, nil
	}
	if _, err := NewBalanced(cfg, []Builder{cpuBuilder(cpuimpl.Serial), rigid}, nil,
		Options{Rebalance: true}); err == nil {
		t.Fatal("backend without PatternMigrator must be rejected")
	}
	// Without rebalancing the same backends are fine.
	multi, err := NewBalanced(cfg, []Builder{cpuBuilder(cpuimpl.Serial), rigid}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	multi.Close()
}

// noMigrateEngine hides the wrapped engine's promoted migration methods.
type noMigrateEngine struct{ inner engine.Engine }

func (n *noMigrateEngine) Name() string { return n.inner.Name() }
func (n *noMigrateEngine) SetTipStates(buf int, states []int) error {
	return n.inner.SetTipStates(buf, states)
}
func (n *noMigrateEngine) SetTipPartials(buf int, partials []float64) error {
	return n.inner.SetTipPartials(buf, partials)
}
func (n *noMigrateEngine) SetPartials(buf int, partials []float64) error {
	return n.inner.SetPartials(buf, partials)
}
func (n *noMigrateEngine) GetPartials(buf int) ([]float64, error) { return n.inner.GetPartials(buf) }
func (n *noMigrateEngine) SetEigenDecomposition(slot int, values, vectors, inverseVectors []float64) error {
	return n.inner.SetEigenDecomposition(slot, values, vectors, inverseVectors)
}
func (n *noMigrateEngine) SetCategoryRates(rates []float64) error {
	return n.inner.SetCategoryRates(rates)
}
func (n *noMigrateEngine) SetCategoryWeights(weights []float64) error {
	return n.inner.SetCategoryWeights(weights)
}
func (n *noMigrateEngine) SetStateFrequencies(freqs []float64) error {
	return n.inner.SetStateFrequencies(freqs)
}
func (n *noMigrateEngine) SetPatternWeights(weights []float64) error {
	return n.inner.SetPatternWeights(weights)
}
func (n *noMigrateEngine) SetTransitionMatrix(matrix int, values []float64) error {
	return n.inner.SetTransitionMatrix(matrix, values)
}
func (n *noMigrateEngine) GetTransitionMatrix(matrix int) ([]float64, error) {
	return n.inner.GetTransitionMatrix(matrix)
}
func (n *noMigrateEngine) UpdateTransitionMatrices(eigenSlot int, matrices []int, edgeLengths []float64) error {
	return n.inner.UpdateTransitionMatrices(eigenSlot, matrices, edgeLengths)
}
func (n *noMigrateEngine) UpdatePartials(ops []engine.Operation) error {
	return n.inner.UpdatePartials(ops)
}
func (n *noMigrateEngine) ResetScaleFactors(scaleBuf int) error {
	return n.inner.ResetScaleFactors(scaleBuf)
}
func (n *noMigrateEngine) AccumulateScaleFactors(scaleBufs []int, cumBuf int) error {
	return n.inner.AccumulateScaleFactors(scaleBufs, cumBuf)
}
func (n *noMigrateEngine) CalculateRootLogLikelihoods(rootBuf, cumScaleBuf int) (float64, error) {
	return n.inner.CalculateRootLogLikelihoods(rootBuf, cumScaleBuf)
}
func (n *noMigrateEngine) CalculateEdgeLogLikelihoods(parentBuf, childBuf, matrix, cumScaleBuf int) (float64, error) {
	return n.inner.CalculateEdgeLogLikelihoods(parentBuf, childBuf, matrix, cumScaleBuf)
}
func (n *noMigrateEngine) UpdateTransitionDerivatives(eigenSlot int, d1Matrices, d2Matrices []int, edgeLengths []float64) error {
	return n.inner.UpdateTransitionDerivatives(eigenSlot, d1Matrices, d2Matrices, edgeLengths)
}
func (n *noMigrateEngine) CalculateEdgeDerivatives(parentBuf, childBuf, matrix, d1Matrix, d2Matrix, cumScaleBuf int) (float64, float64, float64, error) {
	return n.inner.CalculateEdgeDerivatives(parentBuf, childBuf, matrix, d1Matrix, d2Matrix, cumScaleBuf)
}
func (n *noMigrateEngine) SiteLogLikelihoods(rootBuf, cumScaleBuf int) ([]float64, error) {
	return n.inner.SiteLogLikelihoods(rootBuf, cumScaleBuf)
}
func (n *noMigrateEngine) Close() error { return n.inner.Close() }

// failEngine fails Close and UpdatePartials with its own distinct error.
type failEngine struct {
	engine.Engine
	err error
}

func (f *failEngine) Close() error                                { return f.err }
func (f *failEngine) UpdatePartials(ops []engine.Operation) error { return f.err }

// TestCloseJoinsErrors pins the errors.Join bugfix: every backend's Close
// failure must be visible in the joined error, not just the first.
func TestCloseJoinsErrors(t *testing.T) {
	tr, _, _, _ := problem(t, 14, 4, 60)
	cfg := multiConfig(tr, 40)
	err1 := errors.New("backend 0 close failure")
	err2 := errors.New("backend 1 close failure")
	failing := func(e error) Builder {
		return func(sub engine.Config) (engine.Engine, error) {
			inner, err := cpuimpl.New(sub, cpuimpl.Serial)
			if err != nil {
				return nil, err
			}
			return &failEngine{Engine: inner, err: e}, nil
		}
	}
	multi, err := New(cfg, []Builder{failing(err1), failing(err2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// parallel joins too: both backends fail UpdatePartials.
	uerr := multi.UpdatePartials(nil)
	if !errors.Is(uerr, err1) || !errors.Is(uerr, err2) {
		t.Fatalf("UpdatePartials error %v does not join both backend errors", uerr)
	}
	cerr := multi.Close()
	if !errors.Is(cerr, err1) || !errors.Is(cerr, err2) {
		t.Fatalf("Close error %v does not join both backend errors", cerr)
	}
}

// TestObserveDoesNotAllocate is the runtime allocguard for the rebalancer's
// hot-path bookkeeping.
func TestObserveDoesNotAllocate(t *testing.T) {
	r := newRebalancer(3, Options{})
	if n := testing.AllocsPerRun(200, func() {
		r.Observe(0, 128, 0.001)
		r.Observe(1, 128, 0.004)
		r.Observe(2, 0, 0) // guarded no-op path
	}); n != 0 {
		t.Fatalf("Observe allocates %v per run", n)
	}
}
