package reuse

import "testing"

func TestNilTrackerIsDisabled(t *testing.T) {
	var tr *Tracker
	if tr.Enabled() {
		t.Fatal("nil tracker reports enabled")
	}
	if !tr.ShouldComputeOp(0, 1, 0, 2, 1, None, None) {
		t.Fatal("nil tracker must admit every op")
	}
	if !tr.ShouldComputeMatrix(0, 0, 0.1) {
		t.Fatal("nil tracker must admit every matrix")
	}
	tr.InvalidatePartials(0)
	tr.InvalidateMatrix(0)
	tr.InvalidateScale(0)
	tr.InvalidateModel()
	if s := tr.Stats(); s.Enabled {
		t.Fatal("nil tracker stats report enabled")
	}
}

func TestOpSkipAndCascade(t *testing.T) {
	tr := New(8, 8, 2)
	// First submission: everything computes.
	if !tr.ShouldComputeOp(4, 0, 0, 1, 1, None, None) {
		t.Fatal("cold op must compute")
	}
	if !tr.ShouldComputeOp(5, 4, 2, 2, 3, None, None) {
		t.Fatal("cold dependent op must compute")
	}
	// Identical resubmission: everything skips.
	if tr.ShouldComputeOp(4, 0, 0, 1, 1, None, None) {
		t.Fatal("unchanged op must skip")
	}
	if tr.ShouldComputeOp(5, 4, 2, 2, 3, None, None) {
		t.Fatal("unchanged dependent op must skip")
	}
	// Dirtying a leaf input recomputes the path, and only the path.
	tr.InvalidatePartials(0)
	if !tr.ShouldComputeOp(4, 0, 0, 1, 1, None, None) {
		t.Fatal("op over dirtied input must recompute")
	}
	if !tr.ShouldComputeOp(5, 4, 2, 2, 3, None, None) {
		t.Fatal("op over recomputed child must recompute")
	}
	s := tr.Stats()
	if s.OpHits != 2 || s.OpMisses != 4 {
		t.Fatalf("op hits/misses = %d/%d, want 2/4", s.OpHits, s.OpMisses)
	}
}

func TestOpSignatureMismatchRecomputes(t *testing.T) {
	tr := New(8, 8, 2)
	tr.ShouldComputeOp(4, 0, 0, 1, 1, None, None)
	// Same destination, different matrix: a changed operation shape.
	if !tr.ShouldComputeOp(4, 0, 0, 1, 2, None, None) {
		t.Fatal("changed signature must recompute")
	}
	// And back again: the stored signature is the *last* one, so the
	// original shape now misses too (the buffer holds different contents).
	if !tr.ShouldComputeOp(4, 0, 0, 1, 1, None, None) {
		t.Fatal("reverted signature must recompute (contents were overwritten)")
	}
}

func TestMatrixContentAddressing(t *testing.T) {
	tr := New(4, 4, 1)
	if !tr.ShouldComputeMatrix(0, 0, 0.25) {
		t.Fatal("cold matrix must compute")
	}
	if tr.ShouldComputeMatrix(0, 0, 0.25) {
		t.Fatal("unchanged matrix must skip")
	}
	if !tr.ShouldComputeMatrix(0, 0, 0.35) {
		t.Fatal("changed edge length must recompute")
	}
	// A matrix recompute bumps its version, cascading into op signatures.
	tr.ShouldComputeOp(2, 0, 0, 1, 1, None, None)
	if tr.ShouldComputeOp(2, 0, 0, 1, 1, None, None) {
		t.Fatal("unchanged op must skip")
	}
	tr.ShouldComputeMatrix(0, 0, 0.45)
	if !tr.ShouldComputeOp(2, 0, 0, 1, 1, None, None) {
		t.Fatal("op over recomputed matrix must recompute")
	}
	// Model invalidation dirties every matrix entry.
	tr.InvalidateModel()
	if !tr.ShouldComputeMatrix(0, 0, 0.45) {
		t.Fatal("matrix must recompute after model invalidation")
	}
	// Explicit matrix replacement clears the entry.
	tr.ShouldComputeMatrix(1, 0, 0.5)
	tr.InvalidateMatrix(1)
	if !tr.ShouldComputeMatrix(1, 0, 0.5) {
		t.Fatal("matrix must recompute after SetTransitionMatrix")
	}
}

func TestScaleSemantics(t *testing.T) {
	tr := New(8, 8, 4)
	// An op writing scale buffer 1 bumps its version.
	tr.ShouldComputeOp(4, 0, 0, 1, 1, 1, None)
	// A reader of that buffer captures the version...
	tr.ShouldComputeOp(5, 4, 2, 2, 3, None, 1)
	if tr.ShouldComputeOp(5, 4, 2, 2, 3, None, 1) {
		t.Fatal("unchanged scale-reading op must skip")
	}
	// ...and recomputes when the scale buffer is externally rewritten.
	tr.InvalidateScale(1)
	if !tr.ShouldComputeOp(5, 4, 2, 2, 3, None, 1) {
		t.Fatal("scale-reading op must recompute after scale invalidation")
	}
	// The writer itself skips on resubmission without bumping the scale
	// version (its stored contents are unchanged), so downstream readers
	// stay clean.
	if tr.ShouldComputeOp(4, 0, 0, 1, 1, 1, None) {
		t.Fatal("unchanged scale-writing op must skip")
	}
	if tr.ShouldComputeOp(5, 4, 2, 2, 3, None, 1) {
		t.Fatal("reader must stay clean after writer skip")
	}
}

func TestTipInvalidation(t *testing.T) {
	tr := New(8, 8, 0)
	tr.ShouldComputeOp(4, 0, 0, 1, 1, None, None)
	tr.InvalidatePartials(1) // SetTipStates on tip 1
	if !tr.ShouldComputeOp(4, 0, 0, 1, 1, None, None) {
		t.Fatal("op must recompute after tip replacement")
	}
	if s := tr.Stats(); s.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", s.Invalidations)
	}
}

func TestHitRates(t *testing.T) {
	var s Stats
	if s.OpHitRate() != 0 || s.MatrixHitRate() != 0 {
		t.Fatal("zero stats must report zero hit rates")
	}
	s = Stats{OpHits: 3, OpMisses: 1, MatrixHits: 1, MatrixMisses: 3}
	if got := s.OpHitRate(); got != 0.75 {
		t.Fatalf("OpHitRate = %v, want 0.75", got)
	}
	if got := s.MatrixHitRate(); got != 0.25 {
		t.Fatalf("MatrixHitRate = %v, want 0.25", got)
	}
}

// The decision path runs once per submitted operation of every batch — it
// must not allocate, in either the hit or the miss direction.
func TestDecisionPathDoesNotAllocate(t *testing.T) {
	tr := New(16, 16, 4)
	var sink bool
	if avg := testing.AllocsPerRun(200, func() {
		sink = tr.ShouldComputeOp(8, 0, 0, 1, 1, 1, None)
		sink = tr.ShouldComputeOp(8, 0, 0, 1, 1, 1, None) || sink
		sink = tr.ShouldComputeMatrix(3, 0, 0.5) || sink
		sink = tr.ShouldComputeMatrix(3, 0, 0.5) || sink
		tr.InvalidatePartials(0)
	}); avg != 0 {
		t.Fatalf("decision path allocates %v per run", avg)
	}
	_ = sink
}
