// Package reuse implements the dirty-flag dependency tracking that turns
// full-tree peel submissions into incremental re-evaluation. Proposal-driven
// inference (MCMC, SMC) invalidates only the path from a changed edge to the
// root, yet the natural client pattern — and the only portable one across
// BEAGLE implementations — is to resubmit the complete post-order operation
// list every iteration. A Tracker makes that cheap: it remembers, per
// destination buffer, the exact operation signature (children, matrices,
// scale indices) and version counters of every input the last time the
// buffer was computed, so an engine can skip operations whose inputs are
// bit-identical to the previous computation.
//
// The contract rests on kernel determinism: every engine in this library
// computes the same destination contents from the same input contents, so
// "inputs unchanged since the last identical computation" implies the stored
// destination is exactly what recomputing would produce. Version counters
// stand in for content hashes — they are bumped by every mutating entry
// point (tip/partials setters, matrix setters and updates, model-parameter
// setters) and by every executed operation, and never bumped by a skip.
//
// Transition matrices get content-addressed entries of their own: an
// UpdateTransitionMatrices request for matrix m is skippable when the
// (model version, eigen slot, edge length) triple matches the one that
// produced the current buffer contents. This is what makes full-schedule
// resubmission free — an MCMC step resubmits every branch's matrix, but only
// the proposed branch misses, and the partials cascade then recomputes only
// the path from that branch to the root.
//
// A Tracker is single-goroutine like the engine that owns it; only the
// statistics counters are atomic, so Stats() may be read while another
// goroutine drives a sibling instance. All methods are safe on a nil
// *Tracker, which behaves as permanently disabled (every query answers
// "compute").
package reuse

import "sync/atomic"

// None mirrors engine.None (-1): no scale buffer. Declared locally so the
// engine package can depend on reuse without a cycle.
const None = -1

// opSig records how a destination buffer was last computed: the operation
// shape plus the version of every input at execution time.
type opSig struct {
	valid              bool
	child1, child1Mat  int
	child2, child2Mat  int
	scaleWrite         int
	scaleRead          int
	child1Ver, mat1Ver uint64
	child2Ver, mat2Ver uint64
	scaleReadVer       uint64
}

// matEntry content-addresses a transition-matrix buffer: the model version,
// eigen slot and exact edge length that produced its current contents.
type matEntry struct {
	valid  bool
	model  uint64
	eigen  int
	length float64
}

// Tracker is the per-engine dirty-flag dependency DAG over partials, matrix
// and scale buffers.
type Tracker struct {
	partialsVer []uint64
	matrixVer   []uint64
	scaleVer    []uint64
	modelVer    uint64
	sigs        []opSig
	mats        []matEntry

	opHits        atomic.Uint64
	opMisses      atomic.Uint64
	matHits       atomic.Uint64
	matMisses     atomic.Uint64
	invalidations atomic.Uint64
}

// New creates a tracker sized for an engine's buffer counts.
func New(partialsBuffers, matrixBuffers, scaleBuffers int) *Tracker {
	return &Tracker{
		partialsVer: make([]uint64, partialsBuffers),
		matrixVer:   make([]uint64, matrixBuffers),
		scaleVer:    make([]uint64, scaleBuffers),
		sigs:        make([]opSig, partialsBuffers),
		mats:        make([]matEntry, matrixBuffers),
	}
}

// Enabled reports whether the tracker is live (non-nil).
func (t *Tracker) Enabled() bool { return t != nil }

// InvalidatePartials marks a partials (or tip) buffer's contents as
// externally replaced: SetTipStates, SetTipPartials, SetPartials.
func (t *Tracker) InvalidatePartials(buf int) {
	if t == nil || buf < 0 || buf >= len(t.partialsVer) {
		return
	}
	t.partialsVer[buf]++
	t.sigs[buf].valid = false
	t.invalidations.Add(1)
}

// InvalidateMatrix marks a matrix buffer's contents as externally replaced:
// SetTransitionMatrix, or a derivative update writing into it.
func (t *Tracker) InvalidateMatrix(m int) {
	if t == nil || m < 0 || m >= len(t.matrixVer) {
		return
	}
	t.matrixVer[m]++
	t.mats[m].valid = false
	t.invalidations.Add(1)
}

// InvalidateScale marks a scale buffer's contents as externally replaced:
// ResetScaleFactors, AccumulateScaleFactors.
func (t *Tracker) InvalidateScale(b int) {
	if t == nil || b < 0 || b >= len(t.scaleVer) {
		return
	}
	t.scaleVer[b]++
	t.invalidations.Add(1)
}

// InvalidateModel bumps the model version shared by every matrix entry:
// eigendecompositions, category rates/weights, state frequencies, pattern
// weights. Conservative — a weight change cannot alter a transition matrix —
// but these are setup-time calls, and one counter keeps every matrix entry's
// dependencies exact.
func (t *Tracker) InvalidateModel() {
	if t == nil {
		return
	}
	t.modelVer++
	t.invalidations.Add(1)
}

// ShouldComputeMatrix decides one matrix of an UpdateTransitionMatrices
// request. It returns false (skip) when matrix m already holds the result of
// the same (model version, eigen slot, edge length) computation; otherwise
// it records the new triple, bumps the matrix version, and returns true.
// Callers must invoke it in request order and compute exactly the matrices
// it admits.
//
//beagle:noalloc
func (t *Tracker) ShouldComputeMatrix(m, eigenSlot int, length float64) bool {
	if t == nil {
		return true
	}
	e := &t.mats[m]
	if e.valid && e.model == t.modelVer && e.eigen == eigenSlot && e.length == length {
		t.matHits.Add(1)
		return false
	}
	e.valid = true
	e.model = t.modelVer
	e.eigen = eigenSlot
	e.length = length
	t.matrixVer[m]++
	t.matMisses.Add(1)
	return true
}

// ShouldComputeOp decides one partials operation. It returns false (skip)
// when dest already holds the result of an identical operation over inputs
// whose versions are unchanged; otherwise it records the new signature,
// bumps the destination's partials version (and the written scale buffer's
// version, when scaleWrite is not None), and returns true.
//
// Callers must invoke it in dependency order — a child's executed update
// must bump its version before any dependent operation is decided — and
// must execute exactly the operations it admits.
//
//beagle:noalloc
func (t *Tracker) ShouldComputeOp(dest, child1, child1Mat, child2, child2Mat, scaleWrite, scaleRead int) bool {
	if t == nil {
		return true
	}
	var scaleReadVer uint64
	if scaleRead != None {
		scaleReadVer = t.scaleVer[scaleRead]
	}
	s := &t.sigs[dest]
	if s.valid &&
		s.child1 == child1 && s.child1Mat == child1Mat &&
		s.child2 == child2 && s.child2Mat == child2Mat &&
		s.scaleWrite == scaleWrite && s.scaleRead == scaleRead &&
		s.child1Ver == t.partialsVer[child1] && s.mat1Ver == t.matrixVer[child1Mat] &&
		s.child2Ver == t.partialsVer[child2] && s.mat2Ver == t.matrixVer[child2Mat] &&
		s.scaleReadVer == scaleReadVer {
		t.opHits.Add(1)
		return false
	}
	s.valid = true
	s.child1 = child1
	s.child1Mat = child1Mat
	s.child2 = child2
	s.child2Mat = child2Mat
	s.scaleWrite = scaleWrite
	s.scaleRead = scaleRead
	s.child1Ver = t.partialsVer[child1]
	s.mat1Ver = t.matrixVer[child1Mat]
	s.child2Ver = t.partialsVer[child2]
	s.mat2Ver = t.matrixVer[child2Mat]
	s.scaleReadVer = scaleReadVer
	t.partialsVer[dest]++
	if scaleWrite != None {
		t.scaleVer[scaleWrite]++
	}
	t.opMisses.Add(1)
	return true
}

// Stats is a point-in-time snapshot of a tracker's counters. Hits count
// skipped work; misses count admitted (executed) work; invalidations count
// external mutations that dirtied tracked state.
type Stats struct {
	// Enabled reports whether the instance tracks reuse at all; the zero
	// value (reuse off) has it false.
	Enabled bool `json:"enabled"`
	// OpHits and OpMisses count skipped and executed partials operations.
	OpHits   uint64 `json:"op_hits"`
	OpMisses uint64 `json:"op_misses"`
	// MatrixHits and MatrixMisses count skipped and executed transition-
	// matrix updates.
	MatrixHits   uint64 `json:"matrix_hits"`
	MatrixMisses uint64 `json:"matrix_misses"`
	// Invalidations counts setter-driven cache invalidations.
	Invalidations uint64 `json:"invalidations"`
}

// OpHitRate is the fraction of submitted partials operations that were
// skipped, or 0 before any submission.
func (s Stats) OpHitRate() float64 {
	total := s.OpHits + s.OpMisses
	if total == 0 {
		return 0
	}
	return float64(s.OpHits) / float64(total)
}

// MatrixHitRate is the fraction of requested matrix updates that were
// skipped, or 0 before any request.
func (s Stats) MatrixHitRate() float64 {
	total := s.MatrixHits + s.MatrixMisses
	if total == 0 {
		return 0
	}
	return float64(s.MatrixHits) / float64(total)
}

// Stats snapshots the counters; safe on nil (reports Enabled == false) and
// safe to call while another goroutine drives a sibling instance.
func (t *Tracker) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Enabled:       true,
		OpHits:        t.opHits.Load(),
		OpMisses:      t.opMisses.Load(),
		MatrixHits:    t.matHits.Load(),
		MatrixMisses:  t.matMisses.Load(),
		Invalidations: t.invalidations.Load(),
	}
}
