package remoteimpl

import (
	"context"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"gobeagle/internal/cpuimpl"
	"gobeagle/internal/engine"
	"gobeagle/internal/kernels"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/trace"
	"gobeagle/internal/tree"
)

// problem builds a small deterministic likelihood problem.
func problem(t *testing.T, seed int64, tips, sites int) (*tree.Tree, *substmodel.Model, *substmodel.SiteRates, *seqgen.PatternSet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr, err := tree.Random(rng, tips, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	m, err := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rates, err := substmodel.GammaRates(0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	align, err := seqgen.Simulate(rng, tr, m, rates, sites)
	if err != nil {
		t.Fatal(err)
	}
	return tr, m, rates, seqgen.CompressPatterns(align)
}

func testConfig(tr *tree.Tree, patterns int) engine.Config {
	return engine.Config{
		TipCount:        tr.TipCount,
		PartialsBuffers: tr.NodeCount(),
		MatrixBuffers:   tr.NodeCount(),
		EigenBuffers:    1,
		ScaleBuffers:    tr.NodeCount() + 1,
		Dims:            kernels.Dims{StateCount: 4, PatternCount: patterns, CategoryCount: 2},
	}
}

// evaluate drives a complete tree likelihood through any engine.
func evaluate(t *testing.T, e engine.Engine, tr *tree.Tree, m *substmodel.Model,
	rates *substmodel.SiteRates, ps *seqgen.PatternSet) float64 {
	t.Helper()
	ed, err := m.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	steps := []error{
		e.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		e.SetCategoryRates(rates.Rates),
		e.SetCategoryWeights(rates.Weights),
		e.SetStateFrequencies(m.Frequencies),
		e.SetPatternWeights(ps.Weights),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < tr.TipCount; i++ {
		if err := e.SetTipStates(i, ps.TipStates(i)); err != nil {
			t.Fatal(err)
		}
	}
	sched := tr.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	if err := e.UpdateTransitionMatrices(0, mats, lens); err != nil {
		t.Fatal(err)
	}
	ops := make([]engine.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = engine.Operation{
			Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
			Child1: op.Child1, Child1Mat: op.Child1Mat,
			Child2: op.Child2, Child2Mat: op.Child2Mat,
		}
	}
	if err := e.UpdatePartials(ops); err != nil {
		t.Fatal(err)
	}
	lnL, err := e.CalculateRootLogLikelihoods(sched.Root, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	return lnL
}

// startWorker boots an in-process worker on loopback. The returned stop
// function kills it and waits for Serve to return; it is safe to call twice.
func startWorker(t *testing.T) (addr string, w *Worker, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w, err = NewWorker(WorkerOptions{
		Builder: func(g Geometry, tr *trace.Tracer) (engine.Engine, error) {
			cfg := g.Config()
			cfg.Trace = tr
			return cpuimpl.New(cfg, cpuimpl.Serial)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Serve(ctx, ln)
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(stop)
	return ln.Addr().String(), w, stop
}

// proxy is a byte-forwarding TCP relay whose connections can be killed to
// simulate a network partition without killing the worker.
type proxy struct {
	ln     net.Listener
	target string
	mu     sync.Mutex
	conns  []net.Conn
	closed bool
	wg     sync.WaitGroup
}

func newProxy(t *testing.T, target string) *proxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &proxy{ln: ln, target: target}
	p.wg.Add(1)
	go p.serve()
	t.Cleanup(p.close)
	return p
}

func (p *proxy) addr() string { return p.ln.Addr().String() }

func (p *proxy) serve() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		d, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			d.Close()
			return
		}
		p.conns = append(p.conns, c, d)
		p.mu.Unlock()
		p.wg.Add(2)
		go func() {
			defer p.wg.Done()
			io.Copy(d, c)
			d.Close()
			c.Close()
		}()
		go func() {
			defer p.wg.Done()
			io.Copy(c, d)
			c.Close()
			d.Close()
		}()
	}
}

// killConns severs every live relayed connection.
func (p *proxy) killConns() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

func (p *proxy) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.killConns()
	p.wg.Wait()
}

func TestRemoteMatchesLocalBitIdentical(t *testing.T) {
	tr, m, rates, ps := problem(t, 1, 8, 400)
	cfg := testConfig(tr, ps.PatternCount())

	local, err := cpuimpl.New(cfg, cpuimpl.Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	wantLnL := evaluate(t, local, tr, m, rates, ps)
	wantSites, err := local.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}

	addr, _, _ := startWorker(t)
	remote, err := New(cfg, Options{Addr: addr, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	gotLnL := evaluate(t, remote, tr, m, rates, ps)
	if gotLnL != wantLnL {
		t.Fatalf("remote lnL %v, local %v (must be bit-identical)", gotLnL, wantLnL)
	}
	gotSites, err := remote.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantSites {
		if gotSites[i] != wantSites[i] {
			t.Fatalf("site %d: remote %v local %v", i, gotSites[i], wantSites[i])
		}
	}
	st := remote.Stats()
	if st.RPCs == 0 || st.BytesSent == 0 || st.BytesReceived == 0 {
		t.Fatalf("stats not accounted: %+v", st)
	}
	if st.FailedOver || st.Retries != 0 {
		t.Fatalf("clean run recorded failures: %+v", st)
	}
}

func TestRemoteMigrationRoundTrip(t *testing.T) {
	tr, m, rates, ps := problem(t, 2, 6, 300)
	cfg := testConfig(tr, ps.PatternCount())

	local, err := cpuimpl.New(cfg, cpuimpl.Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	evaluate(t, local, tr, m, rates, ps)
	want, err := local.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}

	addr, _, _ := startWorker(t)
	remote, err := New(cfg, Options{Addr: addr, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	evaluate(t, remote, tr, m, rates, ps)

	// A block detached over the wire and re-attached must restore state
	// exactly (this pins gob's nil-vs-empty slice handling for PatternBlock).
	blk, err := remote.DetachPatterns(true, 7)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Patterns != 7 {
		t.Fatalf("detached %d patterns, want 7", blk.Patterns)
	}
	if err := remote.AttachPatterns(true, blk); err != nil {
		t.Fatal(err)
	}
	got, err := remote.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pattern count %d after round trip, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("site %d after migration round trip: %v want %v", i, got[i], want[i])
		}
	}
}

func TestRemoteReadRetriesAcrossConnectionLoss(t *testing.T) {
	tr, m, rates, ps := problem(t, 3, 6, 200)
	cfg := testConfig(tr, ps.PatternCount())

	local, err := cpuimpl.New(cfg, cpuimpl.Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	evaluate(t, local, tr, m, rates, ps)
	want, err := local.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}

	addr, w, _ := startWorker(t)
	px := newProxy(t, addr)
	remote, err := New(cfg, Options{
		Addr: px.addr(), HealthInterval: -1, RetryBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	evaluate(t, remote, tr, m, rates, ps)

	// Sever the connection: the worker survives, so the next idempotent read
	// must redial, resume the session and succeed with identical values.
	px.killConns()
	got, err := remote.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("site %d after reconnect: %v want %v", i, got[i], want[i])
		}
	}
	st := remote.Stats()
	if st.Redials == 0 {
		t.Fatalf("expected at least one redial, stats %+v", st)
	}
	if st.FailedOver {
		t.Fatalf("connection loss with a live worker must not fail over: %+v", st)
	}
	if n := w.SessionCount(); n != 1 {
		t.Fatalf("worker has %d sessions after resume, want 1", n)
	}
}

func TestRemoteFailoverReplaysJournal(t *testing.T) {
	tr, m, rates, ps := problem(t, 4, 8, 250)
	cfg := testConfig(tr, ps.PatternCount())

	local, err := cpuimpl.New(cfg, cpuimpl.Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	wantLnL := evaluate(t, local, tr, m, rates, ps)
	wantSites, err := local.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}

	addr, _, stop := startWorker(t)
	remote, err := New(cfg, Options{
		Addr: addr, HealthInterval: -1,
		RetryBackoff: 2 * time.Millisecond, DialTimeout: 500 * time.Millisecond,
		Fallback: func(c engine.Config) (engine.Engine, error) {
			return cpuimpl.New(c, cpuimpl.Serial)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	evaluate(t, remote, tr, m, rates, ps)

	// Kill the worker process outright. The next call cannot be satisfied
	// remotely; the client must rebuild locally from its journal and produce
	// bit-identical results.
	stop()
	gotSites, err := remote.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantSites {
		if gotSites[i] != wantSites[i] {
			t.Fatalf("site %d after failover: %v want %v", i, gotSites[i], wantSites[i])
		}
	}
	gotLnL, err := remote.CalculateRootLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	if gotLnL != wantLnL {
		t.Fatalf("root lnL after failover %v, want %v", gotLnL, wantLnL)
	}
	st := remote.Stats()
	if !st.FailedOver || st.Failovers != 1 {
		t.Fatalf("expected exactly one failover, stats %+v", st)
	}
}

func TestRemoteMutationFailureFailsOverImmediately(t *testing.T) {
	tr, m, rates, ps := problem(t, 5, 6, 150)
	cfg := testConfig(tr, ps.PatternCount())

	local, err := cpuimpl.New(cfg, cpuimpl.Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	wantLnL := evaluate(t, local, tr, m, rates, ps)

	addr, _, stop := startWorker(t)
	remote, err := New(cfg, Options{
		Addr: addr, HealthInterval: -1,
		RetryBackoff: 2 * time.Millisecond, DialTimeout: 500 * time.Millisecond,
		Fallback: func(c engine.Config) (engine.Engine, error) {
			return cpuimpl.New(c, cpuimpl.Serial)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// Set up everything except the final UpdatePartials, then kill the
	// worker so the mutating call itself hits the dead connection.
	ed, err := m.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	steps := []error{
		remote.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		remote.SetCategoryRates(rates.Rates),
		remote.SetCategoryWeights(rates.Weights),
		remote.SetStateFrequencies(m.Frequencies),
		remote.SetPatternWeights(ps.Weights),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < tr.TipCount; i++ {
		if err := remote.SetTipStates(i, ps.TipStates(i)); err != nil {
			t.Fatal(err)
		}
	}
	sched := tr.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i], lens[i] = mu.Matrix, mu.Length
	}
	if err := remote.UpdateTransitionMatrices(0, mats, lens); err != nil {
		t.Fatal(err)
	}
	stop()
	ops := make([]engine.Operation, len(sched.Ops))
	for i, op := range sched.Ops {
		ops[i] = engine.Operation{
			Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
			Child1: op.Child1, Child1Mat: op.Child1Mat,
			Child2: op.Child2, Child2Mat: op.Child2Mat,
		}
	}
	if err := remote.UpdatePartials(ops); err != nil {
		t.Fatal(err)
	}
	gotLnL, err := remote.CalculateRootLogLikelihoods(sched.Root, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	if gotLnL != wantLnL {
		t.Fatalf("root lnL after mid-batch failover %v, want %v", gotLnL, wantLnL)
	}
	if !remote.FailedOver() {
		t.Fatal("client did not fail over")
	}
}

func TestRemoteNoFallbackSurfacesError(t *testing.T) {
	tr, _, _, _ := problem(t, 6, 4, 50)
	cfg := testConfig(tr, 50)
	addr, _, stop := startWorker(t)
	remote, err := New(cfg, Options{
		Addr: addr, HealthInterval: -1,
		RetryBackoff: 1 * time.Millisecond, DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	stop()
	if err := remote.SetCategoryRates([]float64{1, 1}); err == nil {
		t.Fatal("dead worker without fallback must surface an error")
	}
}

func TestProbeIsStateless(t *testing.T) {
	addr, w, _ := startWorker(t)
	info, err := Probe(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != protocolVersion || info.Cores < 1 {
		t.Fatalf("probe reply %+v", info)
	}
	if info.Resumed {
		t.Fatal("probe must not resume anything")
	}
	if n := w.SessionCount(); n != 0 {
		t.Fatalf("probe created %d sessions", n)
	}
}

func TestWorkerApplicationErrorsCrossTheWire(t *testing.T) {
	tr, _, _, _ := problem(t, 7, 4, 50)
	cfg := testConfig(tr, 50)
	addr, _, _ := startWorker(t)
	remote, err := New(cfg, Options{Addr: addr, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	// Out-of-range buffer: an engine-level error, not a transport failure.
	if err := remote.SetTipStates(10_000, []int{0}); err == nil {
		t.Fatal("invalid buffer index must error")
	}
	st := remote.Stats()
	if st.Retries != 0 || st.FailedOver {
		t.Fatalf("application error must not trigger transport recovery: %+v", st)
	}
}

func TestCloneRequestIsDeep(t *testing.T) {
	blk := &engine.PatternBlock{
		Patterns:  2,
		TipStates: [][]int32{{1, 2}, nil},
		Partials:  [][]float64{nil, {0.5, 0.25}},
		Weights:   []float64{1, 3},
		Scale:     [][]float64{{0, 0}},
	}
	req := &request{
		Op: opAttach, Ints: []int{1, 2}, Floats: []float64{1.5}, Block: blk,
		Ops: []engine.Operation{{Dest: 9}},
	}
	c := cloneRequest(req)
	req.Ints[0] = 99
	req.Floats[0] = 99
	req.Ops[0].Dest = 99
	blk.TipStates[0][0] = 99
	blk.Partials[1][0] = 99
	blk.Weights[0] = 99
	if c.Ints[0] != 1 || c.Floats[0] != 1.5 || c.Ops[0].Dest != 9 {
		t.Fatal("clone shares slice memory with the original")
	}
	if c.Block.TipStates[0][0] != 1 || c.Block.Partials[1][0] != 0.5 || c.Block.Weights[0] != 1 {
		t.Fatal("clone shares block memory with the original")
	}
	if c.Block.TipStates[1] != nil || c.Block.Partials[0] != nil {
		t.Fatal("clone must preserve nil-ness of unoccupied buffers")
	}
}

func TestMutatesClassification(t *testing.T) {
	muts := map[opCode]bool{
		opSetTipStates: true, opSetTipPartials: true, opSetPartials: true,
		opSetEigen: true, opSetCategoryRates: true, opSetCategoryWeights: true,
		opSetStateFrequencies: true, opSetPatternWeights: true,
		opSetTransitionMatrix: true, opUpdateMatrices: true,
		opUpdatePartials: true, opResetScale: true, opAccumulateScale: true,
		opUpdateDerivs: true, opDetach: true, opAttach: true,
	}
	for op := opHello; op <= opAttach; op++ {
		if got, want := op.mutates(), muts[op]; got != want {
			t.Fatalf("%v.mutates() = %v, want %v", op, got, want)
		}
	}
}
