package remoteimpl

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gobeagle/internal/engine"
	"gobeagle/internal/trace"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Builder constructs the engine hosted for one session. The tracer is
	// the session's span tracer: wire the engine's Config.Trace to it so
	// traced requests (request.Traced) record scheduler/kernel/storage spans
	// the coordinator can drain with opDrainSpans. It stays disabled (one
	// atomic load per record) until a traced frame arrives. Required.
	Builder func(Geometry, *trace.Tracer) (engine.Engine, error)
	// SessionTTL is how long a session with no attached connection survives
	// before its engine is reclaimed — the window within which a coordinator
	// may re-dial and resume after a connection drop. Default 10 minutes.
	SessionTTL time.Duration
	// DebugAddr, when non-empty, is the worker's debug/metrics HTTP address
	// advertised to coordinators in the hello reply for metrics federation.
	DebugAddr string
	// Logf, when non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// session is one hosted engine, durable across connection drops: the client
// names it on hello and may resume it from a fresh connection, which is what
// makes read retries after a broken connection possible at all.
type session struct {
	mu       sync.Mutex
	eng      engine.Engine
	tr       *trace.Tracer // session span tracer, shared with the engine
	conn     net.Conn      // current owner connection, nil when detached
	lastUsed time.Time
}

// Worker hosts engines behind the wire protocol: one session per
// coordinator backend, each serving a strictly serial request stream.
// cmd/beagleworker wraps it in a process.
type Worker struct {
	opts WorkerOptions

	mu       sync.Mutex
	sessions map[string]*session
	conns    map[net.Conn]bool
	closed   bool

	accepted atomic.Uint64 // sessions ever created
	requests atomic.Uint64 // engine requests dispatched

	wg sync.WaitGroup
}

// NewWorker builds a worker host.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Builder == nil {
		return nil, errors.New("remoteimpl: WorkerOptions.Builder is required")
	}
	if opts.SessionTTL <= 0 {
		opts.SessionTTL = 10 * time.Minute
	}
	return &Worker{
		opts:     opts,
		sessions: map[string]*session{},
		conns:    map[net.Conn]bool{},
	}, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// Serve accepts coordinator connections on ln until the context is
// cancelled or the listener fails, then closes every connection, joins all
// handlers and reclaims every session engine.
func (w *Worker) Serve(ctx context.Context, ln net.Listener) error {
	accepted := make(chan struct{})
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(w.opts.SessionTTL / 4)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				ln.Close()
				w.closeConns()
				return
			case <-accepted:
				return
			case <-t.C:
				w.sweep()
			}
		}
	}()
	var err error
	for {
		conn, aerr := ln.Accept()
		if aerr != nil {
			if ctx.Err() == nil {
				err = aerr
			}
			break
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.handle(conn)
		}()
	}
	close(accepted)
	w.wg.Wait()
	w.closeAll()
	return err
}

// closeConns closes every live connection so blocked handler reads unblock.
func (w *Worker) closeConns() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for c := range w.conns {
		c.Close()
	}
}

// closeAll reclaims every session engine; called once after all handlers
// joined.
func (w *Worker) closeAll() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	for id, s := range w.sessions {
		s.mu.Lock()
		if s.eng != nil {
			s.eng.Close()
			s.eng = nil
		}
		s.mu.Unlock()
		delete(w.sessions, id)
	}
}

// sweep reclaims sessions whose coordinator has been gone longer than the
// TTL: their engines hold pattern-slice state nobody can resume anymore.
func (w *Worker) sweep() {
	cutoff := time.Now().Add(-w.opts.SessionTTL)
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, s := range w.sessions {
		s.mu.Lock()
		dead := s.conn == nil && s.lastUsed.Before(cutoff)
		if dead && s.eng != nil {
			s.eng.Close()
			s.eng = nil
		}
		s.mu.Unlock()
		if dead {
			delete(w.sessions, id)
			w.logf("remoteimpl: reclaimed idle session %s", id)
		}
	}
}

// SessionCount reports the live sessions, for tests and diagnostics.
func (w *Worker) SessionCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sessions)
}

// AcceptedSessions reports how many sessions this worker ever created —
// the number beagleworker logs on drain.
func (w *Worker) AcceptedSessions() uint64 { return w.accepted.Load() }

// RequestCount reports the engine requests dispatched across all sessions.
func (w *Worker) RequestCount() uint64 { return w.requests.Load() }

// ConnCount reports the live coordinator connections.
func (w *Worker) ConnCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.conns)
}

// handle serves one connection: a hello handshake binding it to a session,
// then a strictly serial request/response stream against that session's
// engine.
func (w *Worker) handle(conn net.Conn) {
	defer conn.Close()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.conns[conn] = true
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()

	sess, err := w.handshake(conn)
	if err != nil {
		w.logf("remoteimpl: handshake from %s: %v", conn.RemoteAddr(), err)
		return
	}
	if sess == nil {
		return // probe hello: answered and done
	}
	defer func() {
		sess.mu.Lock()
		if sess.conn == conn {
			sess.conn = nil // detach; the TTL sweep reclaims if nobody resumes
			sess.lastUsed = time.Now()
		}
		sess.mu.Unlock()
	}()

	for {
		var req request
		if _, err := readMsg(conn, &req); err != nil {
			return
		}
		resp := w.dispatch(sess, conn, &req)
		if resp == nil {
			// Session closed by client. The map removal happens here, with no
			// session lock held: the global lock order is Worker.mu before
			// session.mu (closeAll, sweep), so dispatch must never acquire
			// Worker.mu while holding the session lock.
			w.removeSession(sess)
			return
		}
		if _, err := writeMsg(conn, resp); err != nil {
			return
		}
	}
}

// handshake reads the hello request and binds the connection to its session,
// taking the session over from a previous (stale) connection if necessary.
// A nil session with nil error is a probe hello.
func (w *Worker) handshake(conn net.Conn) (*session, error) {
	var req request
	if _, err := readMsg(conn, &req); err != nil {
		return nil, err
	}
	if req.Op != opHello {
		return nil, fmt.Errorf("first request is %v, want hello", req.Op)
	}
	info := &HelloInfo{Version: protocolVersion, Cores: runtime.NumCPU(), DebugAddr: w.opts.DebugAddr}
	if req.Session == "" {
		// Probe: report capabilities without creating state.
		_, err := writeMsg(conn, &response{Seq: req.Seq, Hello: info})
		return nil, err
	}
	w.mu.Lock()
	sess, ok := w.sessions[req.Session]
	if !ok {
		if req.Resume {
			w.mu.Unlock()
			writeMsg(conn, &response{Seq: req.Seq,
				Err: fmt.Sprintf("remoteimpl: unknown session %q (worker restarted?)", req.Session)})
			return nil, fmt.Errorf("resume of unknown session %q", req.Session)
		}
		sess = &session{tr: trace.New()}
		w.sessions[req.Session] = sess
		w.accepted.Add(1)
	}
	w.mu.Unlock()
	sess.mu.Lock()
	if old := sess.conn; old != nil && old != conn {
		// The coordinator re-dialed while the worker still considers the old
		// connection live (half-open TCP); the newest connection wins.
		old.Close()
	}
	sess.conn = conn
	sess.lastUsed = time.Now()
	info.Resumed = ok && sess.eng != nil
	sess.mu.Unlock()
	_, err := writeMsg(conn, &response{Seq: req.Seq, Hello: info})
	return sess, err
}

// removeSession drops a client-closed session from the map. Must be called
// with no session lock held (Worker.mu is acquired before session.mu
// everywhere else).
func (w *Worker) removeSession(sess *session) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, s := range w.sessions {
		if s == sess {
			delete(w.sessions, id)
		}
	}
}

// dispatch executes one request against the session. Returns nil when the
// client closed the session (connection teardown follows; the caller removes
// the session from the worker map).
func (w *Worker) dispatch(sess *session, conn net.Conn, req *request) *response {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.lastUsed = time.Now()
	w.requests.Add(1)
	switch req.Op {
	case opCreate:
		if sess.eng != nil {
			sess.eng.Close()
		}
		eng, err := w.opts.Builder(req.Geometry, sess.tr)
		if err != nil {
			sess.eng = nil
			return &response{Seq: req.Seq, Err: err.Error()}
		}
		sess.eng = eng
		return &response{Seq: req.Seq}
	case opCloseSession:
		if sess.eng != nil {
			sess.eng.Close()
			sess.eng = nil
		}
		writeMsg(conn, &response{Seq: req.Seq})
		return nil
	case opDrainSpans:
		// Hand the retained engine-side spans to the coordinator for trace
		// stitching, with the session clock's "now" so the client can rebase
		// them, then clear the rings for the next drain window.
		resp := &response{Seq: req.Seq, Spans: sess.tr.Snapshot(), NowNanos: sess.tr.Now()}
		sess.tr.Reset()
		return resp
	}
	if sess.eng == nil {
		return &response{Seq: req.Seq, Err: "remoteimpl: session has no engine (create first)"}
	}
	// Trace context (protocol v2): the coordinator's frame says whether its
	// tracer is recording; mirror that onto the session tracer so the
	// engine's layers record (or skip) spans for exactly the traced calls,
	// each stamped with the originating request identity.
	if req.Traced != sess.tr.Enabled() {
		sess.tr.SetEnabled(req.Traced)
	}
	if !req.Traced {
		return applyRequest(sess.eng, req)
	}
	sess.tr.SetRequest(req.TraceReq)
	t0 := sess.tr.Now()
	resp := applyRequest(sess.eng, req)
	sess.tr.Record(trace.Span{
		Kind: trace.KindRemoteApply, Lane: -1,
		Start: t0, Dur: sess.tr.Now() - t0,
		Arg0: int64(req.Op), Req: req.TraceReq,
	})
	sess.tr.SetRequest(0)
	return resp
}
