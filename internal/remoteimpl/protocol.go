// Package remoteimpl is the distributed backend: an engine.Engine whose
// computation runs in a separate worker process (cmd/beagleworker), reached
// over a length-prefixed gob wire protocol on TCP. It is the cluster-scale
// step of the paper's §IX load-balancing direction — the multi-device engine
// in internal/multiimpl treats a remote client exactly like a local backend,
// so site patterns shard across machines under the same partitioning and
// EWMA rebalancing that already shards them across devices, and
// engine.PatternMigrator blocks move bit-identically across the network.
//
// Because every kernel in this repository is deterministic, a remote backend
// is bit-identical to a local one: the wire carries float64 values unchanged
// (gob encodes them exactly), and the worker executes the very same engine
// code. The protocol is therefore a transport, not a numeric boundary.
//
// Robustness is part of the contract, not an afterthought:
//
//   - every call carries a deadline (Options.CallTimeout);
//   - idempotent reads retry with bounded exponential backoff, re-dialing
//     and resuming the worker-side session when the connection dropped;
//   - mutating calls never retry against the same worker (the worker may
//     have executed them before the connection died) — instead the client
//     journals every successful mutating call and, on an unrecoverable
//     failure, builds a local fallback engine, replays the journal, and
//     transparently routes all subsequent calls to it ("failover");
//   - a background health checker pings the worker between batches and
//     triggers the same failover early when the worker is gone, so a dead
//     worker's pattern blocks are recovered (the replayed fallback holds
//     them) and the next batch completes bit-identically.
package remoteimpl

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"gobeagle/internal/engine"
	"gobeagle/internal/kernels"
	"gobeagle/internal/trace"
)

// protocolVersion guards against coordinator/worker skew; bumped on any wire
// format change. Version 2 added trace-context propagation (request.Traced /
// request.TraceReq), the span-drain op and HelloInfo.DebugAddr — all pure
// additions that gob-decode as zero values on a version-1 peer, so any
// version in [minProtocolVersion, protocolVersion] interoperates: a v1
// worker ignores trace context and answers opDrainSpans with an unknown-op
// error the client treats as "no spans".
const protocolVersion = 2

// minProtocolVersion is the oldest peer version the client accepts.
const minProtocolVersion = 1

// maxFrame bounds one wire frame. Migration blocks are the largest payloads
// (all partials buffers for a pattern span); 1 GiB leaves headroom for any
// realistic problem while rejecting corrupt length prefixes early.
const maxFrame = 1 << 30

// opCode identifies one engine operation on the wire.
type opCode uint8

const (
	opHello opCode = iota
	opCreate
	opPing
	opCloseSession
	opName
	opSetTipStates
	opSetTipPartials
	opSetPartials
	opGetPartials
	opSetEigen
	opSetCategoryRates
	opSetCategoryWeights
	opSetStateFrequencies
	opSetPatternWeights
	opSetTransitionMatrix
	opGetTransitionMatrix
	opUpdateMatrices
	opUpdatePartials
	opResetScale
	opAccumulateScale
	opRoot
	opEdge
	opUpdateDerivs
	opEdgeDerivs
	opSiteLnLs
	opDetach
	opAttach
	opDrainSpans
)

// String names the op for diagnostics and trace args.
func (o opCode) String() string {
	names := [...]string{
		"hello", "create", "ping", "close-session", "name",
		"set-tip-states", "set-tip-partials", "set-partials", "get-partials",
		"set-eigen", "set-category-rates", "set-category-weights",
		"set-state-frequencies", "set-pattern-weights",
		"set-transition-matrix", "get-transition-matrix",
		"update-matrices", "update-partials",
		"reset-scale", "accumulate-scale",
		"root", "edge", "update-derivs", "edge-derivs", "site-lnls",
		"detach", "attach", "drain-spans",
	}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Geometry is the wire form of engine.Config: the plain creation-time fields
// without the host-only pointers (telemetry collector, tracer). The worker
// rebuilds an engine.Config from it with its own (nil) observability hooks.
type Geometry struct {
	TipCount        int
	PartialsBuffers int
	MatrixBuffers   int
	EigenBuffers    int
	ScaleBuffers    int
	StateCount      int
	PatternCount    int
	CategoryCount   int
	SinglePrecision bool
	Threads         int
	MinPatternsWork int
	WorkGroupSize   int
	DisableFMA      bool
	Reuse           bool
}

// geometryOf strips an engine.Config to its wire form.
func geometryOf(cfg engine.Config) Geometry {
	return Geometry{
		TipCount:        cfg.TipCount,
		PartialsBuffers: cfg.PartialsBuffers,
		MatrixBuffers:   cfg.MatrixBuffers,
		EigenBuffers:    cfg.EigenBuffers,
		ScaleBuffers:    cfg.ScaleBuffers,
		StateCount:      cfg.Dims.StateCount,
		PatternCount:    cfg.Dims.PatternCount,
		CategoryCount:   cfg.Dims.CategoryCount,
		SinglePrecision: cfg.SinglePrecision,
		Threads:         cfg.Threads,
		MinPatternsWork: cfg.MinPatternsWork,
		WorkGroupSize:   cfg.WorkGroupSize,
		DisableFMA:      cfg.DisableFMA,
		Reuse:           cfg.Reuse,
	}
}

// Config rebuilds the engine-side configuration (without observability
// hooks; the worker hosts headless engines).
func (g Geometry) Config() engine.Config {
	return engine.Config{
		TipCount:        g.TipCount,
		PartialsBuffers: g.PartialsBuffers,
		MatrixBuffers:   g.MatrixBuffers,
		EigenBuffers:    g.EigenBuffers,
		ScaleBuffers:    g.ScaleBuffers,
		Dims: kernels.Dims{
			StateCount:    g.StateCount,
			PatternCount:  g.PatternCount,
			CategoryCount: g.CategoryCount,
		},
		SinglePrecision: g.SinglePrecision,
		Threads:         g.Threads,
		MinPatternsWork: g.MinPatternsWork,
		WorkGroupSize:   g.WorkGroupSize,
		DisableFMA:      g.DisableFMA,
		Reuse:           g.Reuse,
	}
}

// request is the single wire request shape: a flat union keyed on Op, so one
// gob type covers the whole protocol. Unused fields encode to nothing (gob
// omits zero values), keeping small calls small.
type request struct {
	Op  opCode
	Seq uint64

	// Session identity (opHello). An empty Session is a probe: the worker
	// answers the hello without creating state.
	Session string
	Resume  bool

	// Engine creation (opCreate).
	Geometry Geometry

	// Buffer/index arguments, positional per op (see applyRequest).
	Buf, Buf2, Buf3, Buf4, Buf5, Buf6 int

	// Slice arguments.
	Ints    []int
	Ints2   []int
	Floats  []float64
	Floats2 []float64
	Floats3 []float64
	Ops     []engine.Operation

	// Pattern migration (opDetach/opAttach).
	FromHigh bool
	N        int
	Block    *engine.PatternBlock

	// Trace context (protocol v2). Traced tells the worker to record
	// engine-side spans for this call into its session tracer; TraceReq is
	// the originating served request's identity, stamped onto every span the
	// worker records while executing the call. Both gob-encode to nothing
	// when tracing is off, so the untraced wire format is unchanged.
	Traced   bool
	TraceReq uint64
}

// response is the single wire response shape. Err carries application-level
// engine errors as text; transport errors surface as connection failures.
type response struct {
	Seq    uint64
	Err    string
	F0     float64
	F1     float64
	F2     float64
	Floats []float64
	Name   string
	Block  *engine.PatternBlock
	Hello  *HelloInfo

	// Span drain (opDrainSpans, protocol v2): the worker-side session
	// tracer's retained spans on the worker's clock, plus that clock's "now"
	// at drain time so the client can rebase them into its own timeline.
	Spans    []trace.Span
	NowNanos int64
}

// HelloInfo is the worker's handshake reply: enough for the coordinator to
// derive a default load-balancing share before any measurement exists.
type HelloInfo struct {
	Version int
	// Cores is the worker host's logical CPU count.
	Cores int
	// Resumed reports whether the hello reattached an existing session (its
	// engine state survived the reconnect).
	Resumed bool
	// DebugAddr is the worker's debug/metrics HTTP address ("host:port"),
	// empty when the worker serves none. Coordinators use it to federate the
	// worker's /metrics into a cluster view.
	DebugAddr string
}

// writeMsg gob-encodes v and writes it as one length-prefixed frame,
// returning the total bytes written. A fresh encoder per frame trades a few
// bytes of per-frame type information for framing that can never desync.
func writeMsg(w io.Writer, v any) (int, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0, fmt.Errorf("remoteimpl: encode: %w", err)
	}
	b := buf.Bytes()
	if len(b)-4 > maxFrame {
		return 0, fmt.Errorf("remoteimpl: frame of %d bytes exceeds limit", len(b)-4)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	n, err := w.Write(b)
	return n, err
}

// readMsg reads one length-prefixed frame and gob-decodes it into v,
// returning the total bytes read.
func readMsg(r io.Reader, v any) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return 4, fmt.Errorf("remoteimpl: frame length %d exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 4, err
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
		return 4 + int(n), fmt.Errorf("remoteimpl: decode: %w", err)
	}
	return 4 + int(n), nil
}

// applyRequest executes one wire request against an engine and builds the
// response. It is the single dispatch table of the protocol, shared by the
// worker server (normal execution) and the client's failover path (journal
// replay into the local fallback engine), so replayed semantics are the
// worker's semantics by construction.
func applyRequest(eng engine.Engine, req *request) *response {
	resp := &response{Seq: req.Seq}
	var err error
	switch req.Op {
	case opPing:
		// Liveness only.
	case opName:
		resp.Name = eng.Name()
	case opSetTipStates:
		err = eng.SetTipStates(req.Buf, req.Ints)
	case opSetTipPartials:
		err = eng.SetTipPartials(req.Buf, req.Floats)
	case opSetPartials:
		err = eng.SetPartials(req.Buf, req.Floats)
	case opGetPartials:
		resp.Floats, err = eng.GetPartials(req.Buf)
	case opSetEigen:
		err = eng.SetEigenDecomposition(req.Buf, req.Floats, req.Floats2, req.Floats3)
	case opSetCategoryRates:
		err = eng.SetCategoryRates(req.Floats)
	case opSetCategoryWeights:
		err = eng.SetCategoryWeights(req.Floats)
	case opSetStateFrequencies:
		err = eng.SetStateFrequencies(req.Floats)
	case opSetPatternWeights:
		err = eng.SetPatternWeights(req.Floats)
	case opSetTransitionMatrix:
		err = eng.SetTransitionMatrix(req.Buf, req.Floats)
	case opGetTransitionMatrix:
		resp.Floats, err = eng.GetTransitionMatrix(req.Buf)
	case opUpdateMatrices:
		err = eng.UpdateTransitionMatrices(req.Buf, req.Ints, req.Floats)
	case opUpdatePartials:
		err = eng.UpdatePartials(req.Ops)
	case opResetScale:
		err = eng.ResetScaleFactors(req.Buf)
	case opAccumulateScale:
		err = eng.AccumulateScaleFactors(req.Ints, req.Buf)
	case opRoot:
		resp.F0, err = eng.CalculateRootLogLikelihoods(req.Buf, req.Buf2)
	case opEdge:
		resp.F0, err = eng.CalculateEdgeLogLikelihoods(req.Buf, req.Buf2, req.Buf3, req.Buf4)
	case opUpdateDerivs:
		err = eng.UpdateTransitionDerivatives(req.Buf, req.Ints, req.Ints2, req.Floats)
	case opEdgeDerivs:
		resp.F0, resp.F1, resp.F2, err = eng.CalculateEdgeDerivatives(
			req.Buf, req.Buf2, req.Buf3, req.Buf4, req.Buf5, req.Buf6)
	case opSiteLnLs:
		resp.Floats, err = eng.SiteLogLikelihoods(req.Buf, req.Buf2)
	case opDetach:
		m, ok := eng.(engine.PatternMigrator)
		if !ok {
			err = fmt.Errorf("remoteimpl: engine %s does not support pattern migration", eng.Name())
			break
		}
		resp.Block, err = m.DetachPatterns(req.FromHigh, req.N)
	case opAttach:
		m, ok := eng.(engine.PatternMigrator)
		if !ok {
			err = fmt.Errorf("remoteimpl: engine %s does not support pattern migration", eng.Name())
			break
		}
		err = m.AttachPatterns(req.FromHigh, req.Block)
	default:
		err = fmt.Errorf("remoteimpl: unknown op %d", req.Op)
	}
	if err != nil {
		resp.Err = err.Error()
	}
	return resp
}

// mutates reports whether an op changes worker-side engine state — the ops
// the client journals for failover replay and never retries in place.
func (o opCode) mutates() bool {
	switch o {
	case opSetTipStates, opSetTipPartials, opSetPartials, opSetEigen,
		opSetCategoryRates, opSetCategoryWeights, opSetStateFrequencies,
		opSetPatternWeights, opSetTransitionMatrix, opUpdateMatrices,
		opUpdatePartials, opResetScale, opAccumulateScale,
		opUpdateDerivs, opDetach, opAttach:
		return true
	}
	return false
}

// cloneRequest deep-copies a request for the journal: callers may reuse or
// mutate their argument slices after an engine call returns, so the journal
// must own its memory.
func cloneRequest(req *request) *request {
	c := *req
	c.Ints = append([]int(nil), req.Ints...)
	c.Ints2 = append([]int(nil), req.Ints2...)
	c.Floats = append([]float64(nil), req.Floats...)
	c.Floats2 = append([]float64(nil), req.Floats2...)
	c.Floats3 = append([]float64(nil), req.Floats3...)
	c.Ops = append([]engine.Operation(nil), req.Ops...)
	if req.Block != nil {
		blk := &engine.PatternBlock{
			Patterns:  req.Block.Patterns,
			TipStates: make([][]int32, len(req.Block.TipStates)),
			Partials:  make([][]float64, len(req.Block.Partials)),
			Weights:   append([]float64(nil), req.Block.Weights...),
			Scale:     make([][]float64, len(req.Block.Scale)),
		}
		for i, s := range req.Block.TipStates {
			if s != nil {
				blk.TipStates[i] = append([]int32(nil), s...)
			}
		}
		for i, s := range req.Block.Partials {
			if s != nil {
				blk.Partials[i] = append([]float64(nil), s...)
			}
		}
		for i, s := range req.Block.Scale {
			if s != nil {
				blk.Scale[i] = append([]float64(nil), s...)
			}
		}
		c.Block = blk
	}
	return &c
}

// approxWireBytes estimates the payload size of a request for bandwidth
// accounting and journal budgeting.
func approxWireBytes(req *request) int {
	n := 64
	n += 8 * (len(req.Ints) + len(req.Ints2))
	n += 8 * (len(req.Floats) + len(req.Floats2) + len(req.Floats3))
	n += 56 * len(req.Ops)
	if req.Block != nil {
		n += 8 * len(req.Block.Weights)
		for _, s := range req.Block.TipStates {
			n += 4 * len(s)
		}
		for _, s := range req.Block.Partials {
			n += 8 * len(s)
		}
		for _, s := range req.Block.Scale {
			n += 8 * len(s)
		}
	}
	return n
}
