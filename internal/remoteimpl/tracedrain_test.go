package remoteimpl

import (
	"testing"

	"gobeagle/internal/trace"
)

// TestDrainSpansStitchesWorkerSpans drives a traced evaluation through a
// real worker process boundary and drains the engine-side spans back: they
// must exist, carry the originating request id, be rebased into the client
// tracer's timeline, and be consumed by the drain (a second drain without
// new work returns no apply spans).
func TestDrainSpansStitchesWorkerSpans(t *testing.T) {
	tr, m, rates, ps := problem(t, 3, 8, 200)
	cfg := testConfig(tr, ps.PatternCount())
	tracer := trace.New()
	tracer.SetEnabled(true)
	cfg.Trace = tracer

	addr, _, _ := startWorker(t)
	remote, err := New(cfg, Options{Addr: addr, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	const reqID = 42
	tracer.SetRequest(reqID)
	evaluate(t, remote, tr, m, rates, ps)
	tracer.SetRequest(0)

	spans, err := remote.DrainSpans()
	if err != nil {
		t.Fatalf("DrainSpans: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("worker recorded no spans for a traced evaluation")
	}
	now := tracer.Now()
	applies, tagged := 0, 0
	for _, sp := range spans {
		if sp.Kind == trace.KindRemoteApply {
			applies++
			if sp.Req == reqID {
				tagged++
			}
			if sp.Start < 0 || sp.Start > now {
				t.Errorf("apply span start %d not rebased into client timeline [0, %d]", sp.Start, now)
			}
		}
	}
	if applies == 0 {
		t.Fatalf("no %v spans among %d drained spans", trace.KindRemoteApply, len(spans))
	}
	if tagged == 0 {
		t.Fatalf("none of %d apply spans carried request id %d", applies, reqID)
	}

	again, err := remote.DrainSpans()
	if err != nil {
		t.Fatalf("second DrainSpans: %v", err)
	}
	for _, sp := range again {
		if sp.Kind == trace.KindRemoteApply {
			t.Fatalf("apply span survived the first drain (drain must consume)")
		}
	}
}

// TestDrainSpansDisabledIsNil asserts the untraced fast path: no tracer, no
// wire traffic, nil result.
func TestDrainSpansDisabledIsNil(t *testing.T) {
	tr, m, rates, ps := problem(t, 4, 8, 100)
	cfg := testConfig(tr, ps.PatternCount())

	addr, _, _ := startWorker(t)
	remote, err := New(cfg, Options{Addr: addr, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	evaluate(t, remote, tr, m, rates, ps)

	before := remote.Stats().RPCs
	spans, err := remote.DrainSpans()
	if err != nil || spans != nil {
		t.Fatalf("untraced DrainSpans = (%v, %v), want (nil, nil)", spans, err)
	}
	if after := remote.Stats().RPCs; after != before {
		t.Fatalf("untraced DrainSpans issued %d RPCs", after-before)
	}
}
