package remoteimpl

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gobeagle/internal/engine"
	"gobeagle/internal/trace"
)

// Options configures a remote engine client.
type Options struct {
	// Addr is the worker's TCP address. Required.
	Addr string
	// DialTimeout bounds connection establishment. Default 5 s.
	DialTimeout time.Duration
	// CallTimeout is the per-call deadline covering write, worker execution
	// and response read. Default 60 s.
	CallTimeout time.Duration
	// MaxRetries bounds retry attempts for idempotent reads after a
	// transport failure; each attempt re-dials and resumes the worker-side
	// session. Mutating calls are never retried (see package doc). Default 3.
	MaxRetries int
	// RetryBackoff is the initial retry delay, doubled per attempt.
	// Default 50 ms.
	RetryBackoff time.Duration
	// HealthInterval is the period of the background liveness ping; zero
	// uses the 5 s default, negative disables health checking.
	HealthInterval time.Duration
	// Fallback, when non-nil, builds the local replacement engine used when
	// the worker is unrecoverable: the client replays its journal of
	// successful mutating calls into the fallback and routes all subsequent
	// calls there, bit-identically. Without a fallback, an unrecoverable
	// failure surfaces as an error.
	Fallback func(engine.Config) (engine.Engine, error)
	// JournalLimit caps the number of journaled mutating calls; past it the
	// journal is dropped and failover disabled (the client cannot replay).
	// Default 65536.
	JournalLimit int
	// Logf, when non-nil, receives retry/redial/failover lifecycle messages.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of the client's transport counters.
type Stats struct {
	RPCs            int64 // exchange attempts, including failed ones
	Retries         int64 // idempotent-read retry attempts
	Redials         int64 // successful reconnect+resume cycles
	Failovers       int64 // local-fallback activations (0 or 1)
	PingFailures    int64 // health-check pings that got no answer
	BytesSent       int64
	BytesReceived   int64
	LinkBandwidth   float64 // EWMA payload bandwidth, bytes/sec; 0 = unmeasured
	FailedOver      bool
	JournalLen      int
	JournalOverflow bool
}

// Engine is an engine.Engine whose computation runs in a beagleworker
// process. It also implements engine.PatternMigrator (blocks cross the wire)
// and reports measured link bandwidth for the hierarchical rebalancer's
// migration-cost model.
type Engine struct {
	cfg       engine.Config // original creation config, kept for failover
	opts      Options
	session   string
	name      string
	debugAddr string // worker's advertised debug/metrics HTTP address

	tr   *trace.Tracer
	lane int32

	mu        sync.Mutex
	conn      net.Conn
	local     engine.Engine // non-nil once failed over
	journal   []*request
	overflow  bool
	seq       uint64
	pingFails int

	stop chan struct{}
	wg   sync.WaitGroup

	rpcs         atomic.Int64
	retries      atomic.Int64
	redials      atomic.Int64
	failovers    atomic.Int64
	pingFailures atomic.Int64
	bytesSent    atomic.Int64
	bytesRecv    atomic.Int64
	failedOver   atomic.Bool
	bwBits       atomic.Uint64 // math.Float64bits of the bandwidth EWMA
}

var (
	_ engine.Engine          = (*Engine)(nil)
	_ engine.PatternMigrator = (*Engine)(nil)
)

// New dials the worker, creates the remote engine with cfg's geometry and
// returns the client. cfg's Telemetry/Trace hooks stay on this side of the
// wire: RPC spans are recorded into cfg.Trace on cfg.TraceLane.
func New(cfg engine.Config, opts Options) (*Engine, error) {
	if opts.Addr == "" {
		return nil, errors.New("remoteimpl: Options.Addr is required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = 60 * time.Second
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 3
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 50 * time.Millisecond
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = 5 * time.Second
	}
	if opts.JournalLimit <= 0 {
		opts.JournalLimit = 1 << 16
	}
	session, err := randomHex(16)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		opts:    opts,
		session: session,
		tr:      cfg.Trace,
		lane:    int32(cfg.TraceLane),
	}
	conn, hello, err := e.dial(false)
	if err != nil {
		return nil, err
	}
	e.conn = conn
	e.debugAddr = hello.DebugAddr
	resp, err := e.exchangeLocked(&request{Op: opCreate, Geometry: geometryOf(cfg)})
	if err == nil && resp.Err != "" {
		err = errors.New(resp.Err)
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("remoteimpl: create on %s: %w", opts.Addr, err)
	}
	resp, err = e.exchangeLocked(&request{Op: opName})
	if err == nil && resp.Err != "" {
		err = errors.New(resp.Err)
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("remoteimpl: name on %s: %w", opts.Addr, err)
	}
	e.name = "Remote[" + opts.Addr + "]-" + resp.Name
	if opts.HealthInterval > 0 {
		e.stop = make(chan struct{})
		e.wg.Add(1)
		go e.pinger()
	}
	return e, nil
}

// Probe dials addr, performs a stateless hello and reports the worker's
// capabilities — how a coordinator derives a default load share before any
// throughput measurement exists.
func Probe(addr string, timeout time.Duration) (*HelloInfo, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := writeMsg(conn, &request{Op: opHello}); err != nil {
		return nil, err
	}
	var resp response
	if _, err := readMsg(conn, &resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	if resp.Hello == nil {
		return nil, errors.New("remoteimpl: malformed hello reply")
	}
	if resp.Hello.Version < minProtocolVersion || resp.Hello.Version > protocolVersion {
		return nil, fmt.Errorf("remoteimpl: protocol version %d on %s, want %d..%d",
			resp.Hello.Version, addr, minProtocolVersion, protocolVersion)
	}
	return resp.Hello, nil
}

func randomHex(n int) (string, error) {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return "", fmt.Errorf("remoteimpl: session id: %w", err)
	}
	return hex.EncodeToString(b), nil
}

func (e *Engine) logf(format string, args ...any) {
	if e.opts.Logf != nil {
		e.opts.Logf(format, args...)
	}
}

// dial connects and performs the hello handshake binding (or resuming) the
// client's session.
func (e *Engine) dial(resume bool) (net.Conn, *HelloInfo, error) {
	d := net.Dialer{Timeout: e.opts.DialTimeout}
	conn, err := d.Dial("tcp", e.opts.Addr)
	if err != nil {
		return nil, nil, err
	}
	conn.SetDeadline(time.Now().Add(e.opts.CallTimeout))
	if _, err := writeMsg(conn, &request{Op: opHello, Session: e.session, Resume: resume}); err != nil {
		conn.Close()
		return nil, nil, err
	}
	var resp response
	if _, err := readMsg(conn, &resp); err != nil {
		conn.Close()
		return nil, nil, err
	}
	conn.SetDeadline(time.Time{})
	if resp.Err != "" {
		conn.Close()
		return nil, nil, errors.New(resp.Err)
	}
	if resp.Hello == nil {
		conn.Close()
		return nil, nil, errors.New("remoteimpl: malformed hello reply")
	}
	if resp.Hello.Version < minProtocolVersion || resp.Hello.Version > protocolVersion {
		conn.Close()
		return nil, nil, fmt.Errorf("remoteimpl: protocol version %d on %s, want %d..%d",
			resp.Hello.Version, e.opts.Addr, minProtocolVersion, protocolVersion)
	}
	return conn, resp.Hello, nil
}

// exchangeLocked performs one request/response round trip on the current
// connection under the per-call deadline, recording the RPC span, byte
// counters and — for payload-sized frames — the link-bandwidth EWMA. Any
// transport failure closes the connection (the stream may be desynced).
func (e *Engine) exchangeLocked(req *request) (*response, error) {
	if e.conn == nil {
		return nil, errors.New("remoteimpl: no connection")
	}
	e.rpcs.Add(1)
	e.seq++
	req.Seq = e.seq
	start := time.Now()
	var t0 int64
	traced := e.tr.Enabled()
	if traced {
		t0 = e.tr.Now()
		// Propagate trace context (protocol v2): the worker mirrors the
		// enabled bit onto its session tracer and stamps its engine-side
		// spans with the originating request identity. A v1 worker decodes
		// and ignores these fields.
		req.Traced = true
		req.TraceReq = e.tr.CurrentRequest()
	}
	e.conn.SetDeadline(start.Add(e.opts.CallTimeout))
	sent, err := writeMsg(e.conn, req)
	e.bytesSent.Add(int64(sent))
	if err != nil {
		e.conn.Close()
		e.conn = nil
		return nil, err
	}
	var resp response
	recvd, err := readMsg(e.conn, &resp)
	e.bytesRecv.Add(int64(recvd))
	if err != nil {
		e.conn.Close()
		e.conn = nil
		return nil, err
	}
	e.conn.SetDeadline(time.Time{})
	if resp.Seq != req.Seq {
		e.conn.Close()
		e.conn = nil
		return nil, fmt.Errorf("remoteimpl: response out of sequence (got %d, want %d)", resp.Seq, req.Seq)
	}
	total := sent + recvd
	// Only payload-sized frames measure bandwidth: tiny control frames are
	// dominated by round-trip latency, not link rate.
	if elapsed := time.Since(start); total > 4096 && elapsed > 0 {
		e.observeBandwidth(float64(total) / elapsed.Seconds())
	}
	if traced {
		e.tr.Record(trace.Span{
			Kind: trace.KindRPC, Lane: e.lane,
			Start: t0, Dur: e.tr.Now() - t0,
			Arg0: int64(req.Op), Arg1: int64(total),
		})
	}
	return &resp, nil
}

func (e *Engine) observeBandwidth(rate float64) {
	const alpha = 0.3
	for {
		old := e.bwBits.Load()
		cur := math.Float64frombits(old)
		next := rate
		if cur != 0 {
			next = alpha*rate + (1-alpha)*cur
		}
		if e.bwBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// LinkBandwidth reports the EWMA payload bandwidth to this worker in
// bytes/sec; 0 means no payload-sized frame has been measured yet. The
// hierarchical rebalancer charges cross-node migrations against this.
func (e *Engine) LinkBandwidth() float64 {
	return math.Float64frombits(e.bwBits.Load())
}

// redialLocked reconnects and resumes the worker-side session.
func (e *Engine) redialLocked() error {
	if e.conn != nil {
		e.conn.Close()
		e.conn = nil
	}
	conn, hello, err := e.dial(true)
	if err != nil {
		return err
	}
	if !hello.Resumed {
		conn.Close()
		return errors.New("remoteimpl: session resumed without engine state")
	}
	e.conn = conn
	e.pingFails = 0
	e.redials.Add(1)
	e.logf("remoteimpl: reconnected to %s, session resumed", e.opts.Addr)
	return nil
}

// journalLocked records a successful mutating call for failover replay.
func (e *Engine) journalLocked(req *request, resp *response) {
	if !req.Op.mutates() || resp.Err != "" || e.overflow || e.opts.Fallback == nil {
		return
	}
	e.journal = append(e.journal, cloneRequest(req))
	if len(e.journal) > e.opts.JournalLimit {
		e.journal = nil
		e.overflow = true
		e.logf("remoteimpl: journal exceeded %d entries; failover disabled for %s",
			e.opts.JournalLimit, e.opts.Addr)
	}
}

// failoverLocked builds the local fallback engine from the original creation
// config, replays the journal through the same dispatcher the worker uses,
// and routes all subsequent calls locally. Replaying into a fresh engine
// sidesteps the executed-or-not ambiguity of the failed call entirely: the
// fallback's state is exactly the state produced by every call the client
// saw succeed.
func (e *Engine) failoverLocked(cause error) error {
	if e.local != nil {
		return nil
	}
	if e.opts.Fallback == nil {
		return fmt.Errorf("remoteimpl: worker %s unreachable and no fallback configured: %w",
			e.opts.Addr, cause)
	}
	if e.overflow {
		return fmt.Errorf("remoteimpl: worker %s unreachable and journal overflowed (cannot replay): %w",
			e.opts.Addr, cause)
	}
	fb, err := e.opts.Fallback(e.cfg)
	if err != nil {
		return fmt.Errorf("remoteimpl: worker %s unreachable and fallback build failed: %v (cause: %w)",
			e.opts.Addr, err, cause)
	}
	for i, jr := range e.journal {
		if resp := applyRequest(fb, jr); resp.Err != "" {
			fb.Close()
			return fmt.Errorf("remoteimpl: journal replay failed at entry %d (%v): %s",
				i, jr.Op, resp.Err)
		}
	}
	if e.conn != nil {
		e.conn.Close()
		e.conn = nil
	}
	e.local = fb
	e.journal = nil
	e.failedOver.Store(true)
	e.failovers.Add(1)
	e.logf("remoteimpl: worker %s lost (%v); failed over to local %s after journal replay",
		e.opts.Addr, cause, fb.Name())
	return nil
}

// do routes one call: locally after failover, otherwise over the wire with
// the op-class-appropriate failure handling (see package doc).
func (e *Engine) do(req *request) (*response, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.doLocked(req)
}

func (e *Engine) doLocked(req *request) (*response, error) {
	if e.local != nil {
		return applyRequest(e.local, req), nil
	}
	resp, err := e.exchangeLocked(req)
	if err == nil {
		e.journalLocked(req, resp)
		return resp, nil
	}
	if req.Op.mutates() {
		// The worker may have executed the call before the connection died;
		// retrying could double-apply. Fail over to a replayed fresh engine
		// and apply the call there instead.
		e.logf("remoteimpl: %v to %s failed (%v); failing over", req.Op, e.opts.Addr, err)
		if ferr := e.failoverLocked(err); ferr != nil {
			return nil, ferr
		}
		return applyRequest(e.local, req), nil
	}
	// Idempotent read: bounded retries with exponential backoff, re-dialing
	// and resuming the session each attempt.
	backoff := e.opts.RetryBackoff
	for attempt := 0; attempt < e.opts.MaxRetries; attempt++ {
		e.retries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
		if rerr := e.redialLocked(); rerr != nil {
			err = rerr
			continue
		}
		resp, err = e.exchangeLocked(req)
		if err == nil {
			return resp, nil
		}
	}
	if ferr := e.failoverLocked(err); ferr != nil {
		return nil, ferr
	}
	return applyRequest(e.local, req), nil
}

// pinger is the background health checker: it skips ticks while a call is in
// flight (traffic is its own liveness proof), re-dials on a failed ping, and
// fails over after three consecutive unanswered pings so dead workers are
// detected between batches, not discovered mid-batch.
func (e *Engine) pinger() {
	defer e.wg.Done()
	t := time.NewTicker(e.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			if !e.mu.TryLock() {
				continue
			}
			e.pingLocked()
			e.mu.Unlock()
		}
	}
}

func (e *Engine) pingLocked() {
	if e.local != nil {
		return
	}
	if e.conn != nil {
		if _, err := e.exchangeLocked(&request{Op: opPing}); err == nil {
			e.pingFails = 0
			return
		}
	}
	e.pingFails++
	e.pingFailures.Add(1)
	if err := e.redialLocked(); err == nil {
		return
	} else if e.pingFails >= 3 {
		if ferr := e.failoverLocked(err); ferr != nil {
			e.logf("remoteimpl: health failover for %s failed: %v", e.opts.Addr, ferr)
		}
	}
}

// Stats snapshots the transport counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	jl, of := len(e.journal), e.overflow
	e.mu.Unlock()
	return Stats{
		RPCs:            e.rpcs.Load(),
		Retries:         e.retries.Load(),
		Redials:         e.redials.Load(),
		Failovers:       e.failovers.Load(),
		PingFailures:    e.pingFailures.Load(),
		BytesSent:       e.bytesSent.Load(),
		BytesReceived:   e.bytesRecv.Load(),
		LinkBandwidth:   e.LinkBandwidth(),
		FailedOver:      e.failedOver.Load(),
		JournalLen:      jl,
		JournalOverflow: of,
	}
}

// FailedOver reports whether the client has switched to its local fallback.
func (e *Engine) FailedOver() bool { return e.failedOver.Load() }

func respErr(resp *response) error {
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Name identifies the client with its worker address and remote engine name.
func (e *Engine) Name() string { return e.name }

// Addr reports the worker address the client was created against.
func (e *Engine) Addr() string { return e.opts.Addr }

// DebugAddr reports the worker's advertised debug/metrics HTTP address,
// empty when the worker serves none (or predates protocol v2).
func (e *Engine) DebugAddr() string { return e.debugAddr }

// DrainSpans fetches and clears the worker-side session tracer, returning
// the worker's engine spans rebased into this client's tracer timeline: the
// drain round trip brackets the worker's clock reading, so the midpoint of
// the RPC on the client clock estimates the instant of the worker's
// NowNanos, and the difference rebases every span. Host-layer spans move;
// modeled-device-clock spans (KindKernel/KindTransfer) keep their own
// timebase, as they do locally. Returns nil when tracing is off, after
// failover, or when the worker predates the drain op (a v1 worker answers
// with an unknown-op error).
func (e *Engine) DrainSpans() ([]trace.Span, error) {
	if !e.tr.Enabled() {
		return nil, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.local != nil || e.conn == nil {
		return nil, nil
	}
	t0 := e.tr.Now()
	resp, err := e.exchangeLocked(&request{Op: opDrainSpans})
	t1 := e.tr.Now()
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, nil // v1 worker: no spans to stitch
	}
	delta := (t0+t1)/2 - resp.NowNanos
	spans := resp.Spans
	for i := range spans {
		if l := spans[i].Kind.Layer(); l != trace.LayerDevice {
			spans[i].Start += delta
		}
	}
	return spans, nil
}

func (e *Engine) SetTipStates(buf int, states []int) error {
	resp, err := e.do(&request{Op: opSetTipStates, Buf: buf, Ints: states})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) SetTipPartials(buf int, partials []float64) error {
	resp, err := e.do(&request{Op: opSetTipPartials, Buf: buf, Floats: partials})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) SetPartials(buf int, partials []float64) error {
	resp, err := e.do(&request{Op: opSetPartials, Buf: buf, Floats: partials})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) GetPartials(buf int) ([]float64, error) {
	resp, err := e.do(&request{Op: opGetPartials, Buf: buf})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Floats, nil
}

func (e *Engine) SetEigenDecomposition(slot int, values, vectors, inverseVectors []float64) error {
	resp, err := e.do(&request{
		Op: opSetEigen, Buf: slot,
		Floats: values, Floats2: vectors, Floats3: inverseVectors,
	})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) SetCategoryRates(rates []float64) error {
	resp, err := e.do(&request{Op: opSetCategoryRates, Floats: rates})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) SetCategoryWeights(weights []float64) error {
	resp, err := e.do(&request{Op: opSetCategoryWeights, Floats: weights})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) SetStateFrequencies(freqs []float64) error {
	resp, err := e.do(&request{Op: opSetStateFrequencies, Floats: freqs})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) SetPatternWeights(weights []float64) error {
	resp, err := e.do(&request{Op: opSetPatternWeights, Floats: weights})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) SetTransitionMatrix(matrix int, values []float64) error {
	resp, err := e.do(&request{Op: opSetTransitionMatrix, Buf: matrix, Floats: values})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) GetTransitionMatrix(matrix int) ([]float64, error) {
	resp, err := e.do(&request{Op: opGetTransitionMatrix, Buf: matrix})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Floats, nil
}

func (e *Engine) UpdateTransitionMatrices(eigenSlot int, matrices []int, edgeLengths []float64) error {
	resp, err := e.do(&request{Op: opUpdateMatrices, Buf: eigenSlot, Ints: matrices, Floats: edgeLengths})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) UpdatePartials(ops []engine.Operation) error {
	resp, err := e.do(&request{Op: opUpdatePartials, Ops: ops})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) ResetScaleFactors(scaleBuf int) error {
	resp, err := e.do(&request{Op: opResetScale, Buf: scaleBuf})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) AccumulateScaleFactors(scaleBufs []int, cumBuf int) error {
	resp, err := e.do(&request{Op: opAccumulateScale, Ints: scaleBufs, Buf: cumBuf})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) CalculateRootLogLikelihoods(rootBuf, cumScaleBuf int) (float64, error) {
	resp, err := e.do(&request{Op: opRoot, Buf: rootBuf, Buf2: cumScaleBuf})
	if err != nil {
		return 0, err
	}
	if resp.Err != "" {
		return 0, errors.New(resp.Err)
	}
	return resp.F0, nil
}

func (e *Engine) CalculateEdgeLogLikelihoods(parentBuf, childBuf, matrix, cumScaleBuf int) (float64, error) {
	resp, err := e.do(&request{Op: opEdge, Buf: parentBuf, Buf2: childBuf, Buf3: matrix, Buf4: cumScaleBuf})
	if err != nil {
		return 0, err
	}
	if resp.Err != "" {
		return 0, errors.New(resp.Err)
	}
	return resp.F0, nil
}

func (e *Engine) UpdateTransitionDerivatives(eigenSlot int, d1Matrices, d2Matrices []int, edgeLengths []float64) error {
	resp, err := e.do(&request{
		Op: opUpdateDerivs, Buf: eigenSlot,
		Ints: d1Matrices, Ints2: d2Matrices, Floats: edgeLengths,
	})
	if err != nil {
		return err
	}
	return respErr(resp)
}

func (e *Engine) CalculateEdgeDerivatives(parentBuf, childBuf, matrix, d1Matrix, d2Matrix, cumScaleBuf int) (float64, float64, float64, error) {
	resp, err := e.do(&request{
		Op:  opEdgeDerivs,
		Buf: parentBuf, Buf2: childBuf, Buf3: matrix,
		Buf4: d1Matrix, Buf5: d2Matrix, Buf6: cumScaleBuf,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	if resp.Err != "" {
		return 0, 0, 0, errors.New(resp.Err)
	}
	return resp.F0, resp.F1, resp.F2, nil
}

func (e *Engine) SiteLogLikelihoods(rootBuf, cumScaleBuf int) ([]float64, error) {
	resp, err := e.do(&request{Op: opSiteLnLs, Buf: rootBuf, Buf2: cumScaleBuf})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Floats, nil
}

func (e *Engine) DetachPatterns(fromHigh bool, n int) (*engine.PatternBlock, error) {
	resp, err := e.do(&request{Op: opDetach, FromHigh: fromHigh, N: n})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Block, nil
}

func (e *Engine) AttachPatterns(atHigh bool, blk *engine.PatternBlock) error {
	resp, err := e.do(&request{Op: opAttach, FromHigh: atHigh, Block: blk})
	if err != nil {
		return err
	}
	return respErr(resp)
}

// Close stops the health checker, releases the worker-side session
// (best-effort) and closes the connection or the local fallback.
func (e *Engine) Close() error {
	if e.stop != nil {
		close(e.stop)
		e.wg.Wait()
		e.stop = nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conn != nil {
		e.seq++
		e.conn.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := writeMsg(e.conn, &request{Op: opCloseSession, Seq: e.seq}); err == nil {
			var resp response
			readMsg(e.conn, &resp)
		}
		e.conn.Close()
		e.conn = nil
	}
	if e.local != nil {
		err := e.local.Close()
		e.local = nil
		return err
	}
	return nil
}
