package mle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gobeagle/internal/mcmc"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func TestBrentMaximizeQuadratic(t *testing.T) {
	f := func(x float64) float64 { return -(x - 1.7) * (x - 1.7) }
	x, fx, err := BrentMaximize(f, 0, 10, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1.7) > 1e-7 {
		t.Fatalf("argmax %v want 1.7", x)
	}
	if math.Abs(fx) > 1e-12 {
		t.Fatalf("max value %v want 0", fx)
	}
}

func TestBrentMaximizeAsymmetric(t *testing.T) {
	// log-likelihood-like shape: x·e^{-x} has its max at x=1.
	f := func(x float64) float64 { return x * math.Exp(-x) }
	x, _, err := BrentMaximize(f, 1e-6, 50, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1) > 1e-6 {
		t.Fatalf("argmax %v want 1", x)
	}
}

func TestBrentMaximizeProperty(t *testing.T) {
	// For random concave parabolas with the vertex inside the bracket,
	// Brent must find it.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := rng.Float64()*8 + 1 // vertex in [1, 9]
		fn := func(x float64) float64 { return -(x - c) * (x - c) }
		x, _, err := BrentMaximize(fn, 0, 10, 1e-10)
		return err == nil && math.Abs(x-c) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBrentMaximizeErrors(t *testing.T) {
	if _, _, err := BrentMaximize(func(x float64) float64 { return x }, 5, 1, 1e-8); err == nil {
		t.Fatal("expected error for inverted bracket")
	}
}

func TestOptimizeBranchLengthsRecoversTruth(t *testing.T) {
	// Simulate a long alignment on a known tree, perturb the branch
	// lengths, optimize, and check the recovered lengths are close to the
	// truth and the likelihood at least matches the truth's.
	rng := rand.New(rand.NewSource(10))
	truth, err := tree.ParseNewick("((a:0.10,b:0.20):0.08,(c:0.15,d:0.05):0.12);")
	if err != nil {
		t.Fatal(err)
	}
	m := substmodel.NewJC69()
	rates := substmodel.SingleRate()
	align, err := seqgen.Simulate(rng, truth, m, rates, 20000)
	if err != nil {
		t.Fatal(err)
	}
	ps := seqgen.CompressPatterns(align)
	eng, err := mcmc.NewNativeEngine(m, rates, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eval := func(tr *tree.Tree) (float64, error) { return eng.LogLikelihood(tr) }

	truthLnL, err := eng.LogLikelihood(truth)
	if err != nil {
		t.Fatal(err)
	}
	work := truth.Clone()
	for _, n := range work.Nodes() {
		if n != work.Root {
			n.Length = 0.5
		}
	}
	optLnL, sweeps, err := OptimizeBranchLengths(work, eval, 1e-6, 5, 1e-7, 30)
	if err != nil {
		t.Fatal(err)
	}
	if sweeps < 1 {
		t.Fatal("no sweeps performed")
	}
	if optLnL < truthLnL-0.5 {
		t.Fatalf("optimized lnL %v below truth %v", optLnL, truthLnL)
	}
	// External branch lengths should be near the generating values. The
	// two root children are confounded (only their sum is identifiable),
	// so check tips only.
	want := map[string]float64{"a": 0.10, "b": 0.20, "c": 0.15, "d": 0.05}
	for _, tip := range work.Tips() {
		if math.Abs(tip.Length-want[tip.Name]) > 0.05 {
			t.Errorf("tip %s length %v want ≈%v", tip.Name, tip.Length, want[tip.Name])
		}
	}
}

func TestOptimizeBranchLengthsErrors(t *testing.T) {
	tr, _ := tree.ParseNewick("(a:0.1,b:0.1);")
	eval := func(*tree.Tree) (float64, error) { return 0, nil }
	if _, _, err := OptimizeBranchLengths(tr, eval, 0, 1, 1e-6, 5); err == nil {
		t.Fatal("expected error for zero min length")
	}
	if _, _, err := OptimizeBranchLengths(tr, eval, 0.1, 0.05, 1e-6, 5); err == nil {
		t.Fatal("expected error for inverted bounds")
	}
}
