// Package mle provides maximum-likelihood optimization utilities: Brent's
// derivative-free 1-D maximizer and a coordinate-ascent branch-length
// optimizer, the style of optimization GARLI-class maximum-likelihood
// programs layer on top of the likelihood library (§III-A).
package mle

import (
	"errors"
	"math"

	"gobeagle/internal/tree"
)

// BrentMaximize locates the maximum of f on [lo, hi] by Brent's method
// (golden-section with parabolic interpolation), returning the maximizing x
// and f(x). tol is the absolute x tolerance.
func BrentMaximize(f func(float64) float64, lo, hi, tol float64) (float64, float64, error) {
	if lo >= hi {
		return 0, 0, errors.New("mle: invalid bracket")
	}
	if tol <= 0 {
		tol = 1e-8
	}
	neg := func(x float64) float64 { return -f(x) }
	x, fx := brentMinimize(neg, lo, hi, tol)
	return x, -fx, nil
}

// brentMinimize is the classical Brent minimizer on [a, b].
func brentMinimize(f func(float64) float64, a, b, tol float64) (float64, float64) {
	const golden = 0.3819660112501051
	const eps = 1e-12
	x := a + golden*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	var d, e float64
	for iter := 0; iter < 200; iter++ {
		m := 0.5 * (a + b)
		tol1 := tol*math.Abs(x) + eps
		tol2 := 2 * tol1
		if math.Abs(x-m) <= tol2-0.5*(b-a) {
			break
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Parabolic fit through x, v, w.
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etmp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etmp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, m-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x < m {
				e = b - x
			} else {
				e = a - x
			}
			d = golden * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		if fu <= fx {
			if u < x {
				b = x
			} else {
				a = x
			}
			v, fv = w, fw
			w, fw = x, fx
			x, fx = u, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, fv = w, fw
				w, fw = u, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return x, fx
}

// NewtonMaximize maximizes a function with analytic first and second
// derivatives (as returned by the library's CalculateEdgeDerivatives) via
// safeguarded Newton iteration on [lo, hi]: steps that leave the bracket or
// hit non-concave regions fall back to bisection on the derivative sign.
// It returns the maximizing x and the function value there.
func NewtonMaximize(eval func(x float64) (f, d1, d2 float64, err error),
	x0, lo, hi, tol float64, maxIter int) (float64, float64, error) {
	if lo >= hi {
		return 0, 0, errors.New("mle: invalid bracket")
	}
	if x0 < lo || x0 > hi {
		x0 = (lo + hi) / 2
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	x := x0
	var f float64
	for i := 0; i < maxIter; i++ {
		var d1, d2 float64
		var err error
		f, d1, d2, err = eval(x)
		if err != nil {
			return 0, 0, err
		}
		if math.Abs(d1) < tol {
			return x, f, nil
		}
		// Shrink the bracket using the derivative sign (the target is a
		// maximum of a unimodal function on the bracket).
		if d1 > 0 {
			lo = x
		} else {
			hi = x
		}
		var next float64
		if d2 < 0 {
			next = x - d1/d2
		}
		if d2 >= 0 || next <= lo || next >= hi || math.IsNaN(next) {
			next = (lo + hi) / 2 // safeguard: bisection
		}
		if math.Abs(next-x) < tol*(1+math.Abs(x)) {
			return next, f, nil
		}
		x = next
	}
	return x, f, nil
}

// OptimizeBranchLengths maximizes the tree log likelihood over branch
// lengths by repeated single-branch Brent optimization (coordinate ascent),
// until a full sweep improves the log likelihood by less than tol or
// maxSweeps is reached. It returns the final log likelihood and the number
// of sweeps performed. eval must return the log likelihood of the tree in
// its current state.
func OptimizeBranchLengths(t *tree.Tree, eval func(*tree.Tree) (float64, error),
	minLen, maxLen, tol float64, maxSweeps int) (float64, int, error) {
	if minLen <= 0 || maxLen <= minLen {
		return 0, 0, errors.New("mle: invalid branch length bounds")
	}
	if maxSweeps <= 0 {
		maxSweeps = 20
	}
	if tol <= 0 {
		tol = 1e-6
	}
	current, err := eval(t)
	if err != nil {
		return 0, 0, err
	}
	sweeps := 0
	for ; sweeps < maxSweeps; sweeps++ {
		before := current
		for _, n := range t.Nodes() {
			if n == t.Root {
				continue
			}
			node := n
			var evalErr error
			obj := func(x float64) float64 {
				node.Length = x
				lnL, err := eval(t)
				if err != nil {
					evalErr = err
					return math.Inf(-1)
				}
				return lnL
			}
			best, bestLnL, err := BrentMaximize(obj, minLen, maxLen, 1e-7)
			if err != nil {
				return 0, sweeps, err
			}
			if evalErr != nil {
				return 0, sweeps, evalErr
			}
			node.Length = best
			current = bestLnL
		}
		if current-before < tol {
			sweeps++
			break
		}
	}
	return current, sweeps, nil
}
