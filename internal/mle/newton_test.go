package mle

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewtonMaximizeQuadratic(t *testing.T) {
	eval := func(x float64) (float64, float64, float64, error) {
		return -(x - 2.5) * (x - 2.5), -2 * (x - 2.5), -2, nil
	}
	x, f, err := NewtonMaximize(eval, 0.1, 0, 10, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2.5) > 1e-9 || math.Abs(f) > 1e-12 {
		t.Fatalf("x=%v f=%v", x, f)
	}
}

func TestNewtonMaximizeLogLikeShape(t *testing.T) {
	// f(x) = k·ln(x) − n·x has its maximum at x = k/n, like a Poisson
	// log likelihood.
	k, n := 7.0, 3.0
	eval := func(x float64) (float64, float64, float64, error) {
		return k*math.Log(x) - n*x, k/x - n, -k / (x * x), nil
	}
	x, _, err := NewtonMaximize(eval, 5, 1e-6, 50, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-k/n) > 1e-8 {
		t.Fatalf("argmax %v want %v", x, k/n)
	}
}

func TestNewtonMaximizeSafeguards(t *testing.T) {
	// Start outside the bracket: recentered automatically.
	eval := func(x float64) (float64, float64, float64, error) {
		return -(x - 1) * (x - 1), -2 * (x - 1), -2, nil
	}
	x, _, err := NewtonMaximize(eval, 99, 0, 4, 1e-10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1) > 1e-8 {
		t.Fatalf("argmax %v", x)
	}
	// Errors propagate.
	boom := errors.New("boom")
	if _, _, err := NewtonMaximize(func(float64) (float64, float64, float64, error) {
		return 0, 0, 0, boom
	}, 1, 0, 4, 1e-10, 10); err != boom {
		t.Fatalf("error not propagated: %v", err)
	}
	// Invalid bracket rejected.
	if _, _, err := NewtonMaximize(eval, 1, 4, 0, 1e-10, 10); err == nil {
		t.Fatal("inverted bracket must error")
	}
}

func TestNewtonMatchesBrentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 0.5 + rng.Float64()*8
		w := 0.5 + rng.Float64()*3
		fn := func(x float64) float64 { return -w * (x - c) * (x - c) }
		eval := func(x float64) (float64, float64, float64, error) {
			return fn(x), -2 * w * (x - c), -2 * w, nil
		}
		xb, _, err1 := BrentMaximize(fn, 0, 10, 1e-10)
		xn, _, err2 := NewtonMaximize(eval, 5, 0, 10, 1e-12, 100)
		return err1 == nil && err2 == nil && math.Abs(xb-xn) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
