package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// jacobiMaxSweeps bounds the number of Jacobi sweeps; 4-to-61-state matrices
// converge in well under 20 sweeps.
const jacobiMaxSweeps = 100

// SymmetricEigen computes the eigendecomposition of the symmetric matrix a:
// a = V·diag(values)·Vᵀ, using the cyclic Jacobi method. Eigenvalues are
// returned in ascending order with matching eigenvector columns. The input is
// not modified.
func SymmetricEigen(a *Matrix) (values []float64, vectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("linalg: eigendecomposition requires a square matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.Data[i*n+j] * w.Data[i*n+j]
			}
		}
		if off < 1e-30 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.Data[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.Data[p*n+p]
				aqq := w.Data[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				tau := s / (1 + c)

				w.Data[p*n+p] = app - t*apq
				w.Data[q*n+q] = aqq + t*apq
				w.Data[p*n+q] = 0
				w.Data[q*n+p] = 0
				for i := 0; i < n; i++ {
					if i != p && i != q {
						aip := w.Data[i*n+p]
						aiq := w.Data[i*n+q]
						w.Data[i*n+p] = aip - s*(aiq+tau*aip)
						w.Data[i*n+q] = aiq + s*(aip-tau*aiq)
						w.Data[p*n+i] = w.Data[i*n+p]
						w.Data[q*n+i] = w.Data[i*n+q]
					}
				}
				for i := 0; i < n; i++ {
					vip := v.Data[i*n+p]
					viq := v.Data[i*n+q]
					v.Data[i*n+p] = vip - s*(viq+tau*vip)
					v.Data[i*n+q] = viq + s*(vip-tau*viq)
				}
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.Data[i*n+i]
	}
	// Sort eigenvalues ascending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for i := 0; i < n; i++ {
			sortedVecs.Data[i*n+newCol] = v.Data[i*n+oldCol]
		}
	}
	return sortedVals, sortedVecs, nil
}

// EigenDecomposition holds the spectral decomposition of a rate matrix Q:
// Q = Vectors·diag(Values)·InverseVectors, so that the transition probability
// matrix for time t is P(t) = Vectors·diag(exp(Values·t))·InverseVectors.
type EigenDecomposition struct {
	StateCount     int
	Values         []float64 // eigenvalues, length StateCount
	Vectors        *Matrix   // right eigenvectors as columns
	InverseVectors *Matrix
}

// ReversibleEigen decomposes a time-reversible rate matrix Q with stationary
// distribution pi. Reversibility (pi_i·q_ij == pi_j·q_ji) means the
// similarity transform B = D^{1/2}·Q·D^{-1/2} with D = diag(pi) is symmetric,
// so the symmetric Jacobi solver applies and the inverse eigenvector matrix
// follows analytically from the orthogonality of B's eigenvectors.
func ReversibleEigen(q *Matrix, pi []float64) (*EigenDecomposition, error) {
	n := q.Rows
	if q.Cols != n {
		return nil, errors.New("linalg: rate matrix must be square")
	}
	if len(pi) != n {
		return nil, errors.New("linalg: stationary distribution length mismatch")
	}
	for _, p := range pi {
		if p <= 0 {
			return nil, errors.New("linalg: stationary frequencies must be positive")
		}
	}
	sqrtPi := make([]float64, n)
	invSqrtPi := make([]float64, n)
	for i, p := range pi {
		sqrtPi[i] = math.Sqrt(p)
		invSqrtPi[i] = 1 / sqrtPi[i]
	}
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Data[i*n+j] = sqrtPi[i] * q.Data[i*n+j] * invSqrtPi[j]
		}
	}
	// Force exact symmetry against floating-point asymmetry in Q.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := (b.Data[i*n+j] + b.Data[j*n+i]) / 2
			b.Data[i*n+j] = m
			b.Data[j*n+i] = m
		}
	}
	values, w, err := SymmetricEigen(b)
	if err != nil {
		return nil, err
	}
	// Q = D^{-1/2}·B·D^{1/2} = (D^{-1/2}·W)·Λ·(Wᵀ·D^{1/2}).
	vectors := NewMatrix(n, n)
	inverse := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			vectors.Data[i*n+j] = invSqrtPi[i] * w.Data[i*n+j]
			inverse.Data[i*n+j] = w.Data[j*n+i] * sqrtPi[j]
		}
	}
	return &EigenDecomposition{
		StateCount:     n,
		Values:         values,
		Vectors:        vectors,
		InverseVectors: inverse,
	}, nil
}

// GeneralEigen decomposes a general (possibly non-reversible) rate matrix by
// falling back to a reversible decomposition when Q is detectably reversible
// under pi, and otherwise returns an error. BEAGLE itself accepts arbitrary
// precomputed decompositions through its API; this helper covers the standard
// reversible model family used throughout the paper.
func GeneralEigen(q *Matrix, pi []float64) (*EigenDecomposition, error) {
	n := q.Rows
	const tol = 1e-9
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(pi[i]*q.Data[i*n+j]-pi[j]*q.Data[j*n+i]) > tol {
				return nil, errors.New("linalg: rate matrix is not time-reversible; supply an explicit decomposition")
			}
		}
	}
	return ReversibleEigen(q, pi)
}

// TransitionMatrix fills p (length StateCount²) with P(t) = V·exp(Λt)·V⁻¹,
// returning an error when the buffer length does not match. Small negative
// entries from round-off are clamped to zero.
func (e *EigenDecomposition) TransitionMatrix(t float64, p []float64) error {
	n := e.StateCount
	if len(p) != n*n {
		return fmt.Errorf("linalg: transition matrix buffer has length %d, want %d", len(p), n*n)
	}
	exp := make([]float64, n)
	for k, v := range e.Values {
		exp[k] = math.Exp(v * t)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += e.Vectors.Data[i*n+k] * exp[k] * e.InverseVectors.Data[k*n+j]
			}
			if s < 0 {
				s = 0
			}
			p[i*n+j] = s
		}
	}
	return nil
}
