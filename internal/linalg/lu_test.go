package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnown(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{
		2, 1, -1,
		-3, -1, 2,
		-2, 1, 2,
	})
	f, err := FactorizeLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{8, -11, -3})
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("Solve got %v want %v", x, want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := FactorizeLU(a); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorizeLU(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{3, 8, 4, 6})
	f, err := FactorizeLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-(-14)) > 1e-12 {
		t.Fatalf("Det got %v want -14", d)
	}
}

func TestInverseIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Make strongly diagonally dominant so it is well conditioned.
		for i := 0; i < n; i++ {
			a.Data[i*n+i] += float64(n) + 1
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return mustDiff(mustMul(a, inv), Identity(n)) < 1e-9 &&
			mustDiff(mustMul(inv, a), Identity(n)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolveMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += 10
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	f, err := FactorizeLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x1 := f.Solve(b)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	x2 := mustMulVec(inv, b)
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-10 {
			t.Fatalf("Solve and Inverse disagree: %v vs %v", x1, x2)
		}
	}
}
