package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymmetricEigenDiagonal(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{
		3, 0, 0,
		0, 1, 0,
		0, 0, 2,
	})
	vals, vecs, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("eigenvalues %v want %v", vals, want)
		}
	}
	// Reconstruct: V·Λ·Vᵀ == A.
	lam := NewMatrix(3, 3)
	for i, v := range vals {
		lam.Data[i*3+i] = v
	}
	recon := mustMul(mustMul(vecs, lam), vecs.Transpose())
	if mustDiff(recon, a) > 1e-10 {
		t.Fatalf("reconstruction error %v", mustDiff(recon, a))
	}
}

func TestSymmetricEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewMatrixFrom(2, 2, []float64{2, 1, 1, 2})
	vals, _, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("eigenvalues %v want [1 3]", vals)
	}
}

func TestSymmetricEigenReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Data[i*n+j] = v
				a.Data[j*n+i] = v
			}
		}
		vals, vecs, err := SymmetricEigen(a)
		if err != nil {
			return false
		}
		// Eigenvalues sorted ascending.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				return false
			}
		}
		lam := NewMatrix(n, n)
		for i, v := range vals {
			lam.Data[i*n+i] = v
		}
		recon := mustMul(mustMul(vecs, lam), vecs.Transpose())
		if mustDiff(recon, a) > 1e-8 {
			return false
		}
		// Orthonormal eigenvectors.
		return mustDiff(mustMul(vecs.Transpose(), vecs), Identity(n)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomReversibleQ builds a reversible rate matrix from random exchange
// rates and frequencies (a GTR-style construction).
func randomReversibleQ(rng *rand.Rand, n int) (*Matrix, []float64) {
	pi := make([]float64, n)
	var sum float64
	for i := range pi {
		pi[i] = 0.1 + rng.Float64()
		sum += pi[i]
	}
	for i := range pi {
		pi[i] /= sum
	}
	q := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r := 0.1 + rng.Float64()
			q.Data[i*n+j] = r * pi[j]
			q.Data[j*n+i] = r * pi[i]
		}
	}
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if j != i {
				rowSum += q.Data[i*n+j]
			}
		}
		q.Data[i*n+i] = -rowSum
	}
	return q, pi
}

func TestReversibleEigenReconstructsQ(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{4, 20, 61} {
		q, pi := randomReversibleQ(rng, n)
		ed, err := ReversibleEigen(q, pi)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		lam := NewMatrix(n, n)
		for i, v := range ed.Values {
			lam.Data[i*n+i] = v
		}
		recon := mustMul(mustMul(ed.Vectors, lam), ed.InverseVectors)
		if d := mustDiff(recon, q); d > 1e-8 {
			t.Fatalf("n=%d reconstruction error %v", n, d)
		}
		// V·V⁻¹ == I.
		if d := mustDiff(mustMul(ed.Vectors, ed.InverseVectors), Identity(n)); d > 1e-8 {
			t.Fatalf("n=%d inverse-vector error %v", n, d)
		}
	}
}

func TestTransitionMatrixProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q, pi := randomReversibleQ(rng, 4)
	ed, err := ReversibleEigen(q, pi)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 16)

	// P(0) == I.
	mustTransition(ed, 0, p)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(p[i*4+j]-want) > 1e-10 {
				t.Fatalf("P(0) not identity: %v", p)
			}
		}
	}

	// Rows of P(t) sum to 1 and entries are in [0,1].
	for _, tt := range []float64{0.01, 0.1, 1, 10} {
		mustTransition(ed, tt, p)
		for i := 0; i < 4; i++ {
			var row float64
			for j := 0; j < 4; j++ {
				v := p[i*4+j]
				if v < 0 || v > 1+1e-12 {
					t.Fatalf("P(%v)[%d,%d]=%v out of range", tt, i, j, v)
				}
				row += v
			}
			if math.Abs(row-1) > 1e-9 {
				t.Fatalf("P(%v) row %d sums to %v", tt, i, row)
			}
		}
	}

	// P(t) converges to the stationary distribution as t grows.
	mustTransition(ed, 500, p)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(p[i*4+j]-pi[j]) > 1e-6 {
				t.Fatalf("P(∞)[%d,%d]=%v want pi[%d]=%v", i, j, p[i*4+j], j, pi[j])
			}
		}
	}
}

func TestTransitionMatrixSemigroupProperty(t *testing.T) {
	// P(s+t) == P(s)·P(t): the Chapman–Kolmogorov property.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, pi := randomReversibleQ(rng, 4)
		ed, err := ReversibleEigen(q, pi)
		if err != nil {
			return false
		}
		s := 0.05 + rng.Float64()
		u := 0.05 + rng.Float64()
		ps := make([]float64, 16)
		pu := make([]float64, 16)
		psu := make([]float64, 16)
		mustTransition(ed, s, ps)
		mustTransition(ed, u, pu)
		mustTransition(ed, s+u, psu)
		prod := mustMul(NewMatrixFrom(4, 4, ps), NewMatrixFrom(4, 4, pu))
		return mustDiff(prod, NewMatrixFrom(4, 4, psu)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGeneralEigenRejectsNonReversible(t *testing.T) {
	q := NewMatrixFrom(3, 3, []float64{
		-1, 1, 0,
		0, -1, 1,
		1, 0, -1,
	})
	pi := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	if _, err := GeneralEigen(q, pi); err == nil {
		t.Fatal("expected error for non-reversible matrix")
	}
}

func TestGeneralEigenAcceptsReversible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q, pi := randomReversibleQ(rng, 4)
	if _, err := GeneralEigen(q, pi); err != nil {
		t.Fatal(err)
	}
}

func TestReversibleEigenErrors(t *testing.T) {
	q := NewMatrix(3, 4)
	if _, err := ReversibleEigen(q, []float64{0.5, 0.5, 0}); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
	q2, pi := randomReversibleQ(rand.New(rand.NewSource(1)), 4)
	if _, err := ReversibleEigen(q2, pi[:3]); err == nil {
		t.Fatal("expected error for pi length mismatch")
	}
	bad := []float64{0.5, 0.5, 0, 0}
	if _, err := ReversibleEigen(q2, bad); err == nil {
		t.Fatal("expected error for zero frequency")
	}
}
