package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dimension")
		}
	}()
	NewMatrix(0, 3)
}

func TestNewMatrixFromCopies(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	m := NewMatrixFrom(2, 2, data)
	data[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("NewMatrixFrom must copy its input")
	}
}

func TestIdentityMul(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := mustMul(Identity(2), a)
	if mustDiff(got, a) != 0 {
		t.Fatalf("I·A != A: %v", got.Data)
	}
	got = mustMul(a, Identity(3))
	if mustDiff(got, a) != 0 {
		t.Fatalf("A·I != A: %v", got.Data)
	}
}

func TestMulKnown(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{5, 6, 7, 8})
	got := mustMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("Mul mismatch at %d: got %v want %v", i, got.Data, want)
		}
	}
}

func TestMulDimensionMismatchError(t *testing.T) {
	if _, err := Mul(NewMatrix(2, 3), NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error on dimension mismatch")
	}
	if _, err := NewMatrix(2, 3).MulVec([]float64{1}); err == nil {
		t.Fatal("expected error on vector length mismatch")
	}
	if _, err := MaxAbsDiff(NewMatrix(2, 3), NewMatrix(3, 2)); err == nil {
		t.Fatal("expected error on shape mismatch")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 0, 2, -1, 3, 1})
	got := mustMulVec(m, []float64{3, -2, 1})
	want := []float64{5, -8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec got %v want %v", got, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("bad transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(6)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		return mustDiff(m.Transpose().Transpose(), m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleAndClone(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatalf("Scale failed: %v", m.Data)
	}
	if c.At(1, 1) != 4 {
		t.Fatal("Clone aliases original data")
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		mk := func() *Matrix {
			m := NewMatrix(n, n)
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64()
			}
			return m
		}
		a, b, c := mk(), mk(), mk()
		left := mustMul(mustMul(a, b), c)
		right := mustMul(a, mustMul(b, c))
		return mustDiff(left, right) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewMatrixFrom(1, 3, []float64{1, 2, 3})
	b := NewMatrixFrom(1, 3, []float64{1, 2.5, 2})
	if d := mustDiff(a, b); math.Abs(d-1) > 1e-15 {
		t.Fatalf("MaxAbsDiff got %v want 1", d)
	}
}
