package linalg

// Test-only wrappers over the error-returning API. Dimension mismatches in
// these tests are always construction bugs in the test itself, so the
// helpers panic, which the testing runtime reports with a full stack.

func mustMul(a, b *Matrix) *Matrix {
	m, err := Mul(a, b)
	if err != nil {
		panic(err)
	}
	return m
}

func mustMulVec(m *Matrix, v []float64) []float64 {
	out, err := m.MulVec(v)
	if err != nil {
		panic(err)
	}
	return out
}

func mustDiff(a, b *Matrix) float64 {
	d, err := MaxAbsDiff(a, b)
	if err != nil {
		panic(err)
	}
	return d
}

func mustTransition(e *EigenDecomposition, t float64, p []float64) {
	if err := e.TransitionMatrix(t, p); err != nil {
		panic(err)
	}
}
