// Package linalg provides the small dense linear-algebra routines that
// statistical phylogenetics needs: matrix products, LU factorization, and a
// Jacobi eigensolver used to decompose reversible substitution rate matrices
// so that transition probability matrices P(t) = U·exp(Λt)·U⁻¹ can be formed
// for arbitrary branch lengths.
//
// All matrices are dense, row-major, and sized at most a few hundred rows
// (4 for nucleotide models, 20 for amino-acid models, 61 for codon models),
// so simple O(n³) algorithms are appropriate and allocation-free inner loops
// matter more than asymptotics.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero matrix with the given dimensions. Dimensions are
// model state counts fixed at compile time by every caller (4, 20, 61), so
// a non-positive dimension is an unreachable programmer error, not a
// recoverable condition.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		//beagle:allow panic constructor invariant; every call site passes static positive model dimensions
		panic(fmt.Sprintf("linalg: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom returns a matrix wrapping a copy of data, which must have
// rows*cols elements.
func NewMatrixFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		//beagle:allow panic constructor invariant; callers pass literals or buffers sized from the same dimensions
		panic(fmt.Sprintf("linalg: data length %d does not match %dx%d", len(data), rows, cols))
	}
	m := NewMatrix(rows, cols)
	copy(m.Data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return NewMatrixFrom(m.Rows, m.Cols, m.Data)
}

// Mul returns the matrix product a·b, or an error on a dimension mismatch.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·v, or an error when the vector
// length does not match the matrix columns.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if len(v) != m.Cols {
		return nil, fmt.Errorf("linalg: vector length %d does not match matrix cols %d", len(v), m.Cols)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b, or an error when their dimensions differ.
func MaxAbsDiff(a, b *Matrix) (float64, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return 0, fmt.Errorf("linalg: dimension mismatch %dx%d vs %dx%d in MaxAbsDiff", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	var max float64
	for i, av := range a.Data {
		d := math.Abs(av - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max, nil
}
