package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a matrix factorization encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial pivoting: P·A = L·U, where L has
// a unit diagonal and is stored in the strictly lower triangle of lu and U in
// the upper triangle (including the diagonal).
type LU struct {
	n     int
	lu    []float64
	pivot []int
	sign  float64 // +1 or -1, determinant sign from row swaps
}

// FactorizeLU computes the LU factorization of the square matrix a with
// partial pivoting. The input is not modified.
func FactorizeLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: LU requires a square matrix")
	}
	n := a.Rows
	f := &LU{n: n, lu: make([]float64, n*n), pivot: make([]int, n), sign: 1}
	copy(f.lu, a.Data)
	for i := range f.pivot {
		f.pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Find the pivot row.
		p := k
		max := math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.lu[i*n+k]); v > max {
				max, p = v, i
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rowK := f.lu[k*n : (k+1)*n]
			rowP := f.lu[p*n : (p+1)*n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			f.pivot[k], f.pivot[p] = f.pivot[p], f.pivot[k]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= m * f.lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b for x.
func (f *LU) Solve(b []float64) []float64 {
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu[i*n+j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / f.lu[i*n+i]
	}
	return x
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// Inverse returns A⁻¹ for the square matrix a.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := FactorizeLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Data[i*n+j] = col[i]
		}
	}
	return inv, nil
}
