package metricsx

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintProm structurally checks a Prometheus text exposition document the way
// promlint would: metric and label names must be legal, every family needs a
// TYPE header before its first sample (with HELP, when present, preceding
// TYPE), families must be contiguous, label values must be properly quoted
// and escaped, and no series may appear twice. It returns one human-readable
// problem per violation; an empty slice means the document is clean. The
// exporter's own tests and the live-scrape test in internal/serve run every
// exposition surface through it, including the federated cluster view.
func LintProm(r io.Reader) []string {
	var problems []string
	addf := func(line int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type famState struct {
		hasHelp bool
		hasType bool
		samples int
		closed  bool
	}
	fams := map[string]*famState{}
	fam := func(name string) *famState {
		f, ok := fams[name]
		if !ok {
			f = &famState{}
			fams[name] = f
		}
		return f
	}
	seenSeries := map[string]bool{}
	cur := "" // family whose block is open

	enter := func(name string, line int) *famState {
		if name != cur {
			if cur != "" {
				fams[cur].closed = true
			}
			f := fam(name)
			if f.closed {
				addf(line, "family %q reappears after other families (interleaved ordering)", name)
				f.closed = false
			}
			cur = name
		}
		return fams[name]
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			name, _, ok := splitHeader(line[len("# HELP "):])
			if !ok || !validMetricName(name) {
				addf(lineNo, "malformed HELP header %q", line)
				continue
			}
			f := enter(name, lineNo)
			if f.hasHelp {
				addf(lineNo, "duplicate HELP for family %q", name)
			}
			if f.hasType {
				addf(lineNo, "HELP for %q after its TYPE (HELP must come first)", name)
			}
			if f.samples > 0 {
				addf(lineNo, "HELP for %q after its samples", name)
			}
			f.hasHelp = true
		case strings.HasPrefix(line, "# TYPE "):
			name, typ, ok := splitHeader(line[len("# TYPE "):])
			if !ok || !validMetricName(name) {
				addf(lineNo, "malformed TYPE header %q", line)
				continue
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				addf(lineNo, "family %q has invalid type %q", name, typ)
			}
			f := enter(name, lineNo)
			if f.hasType {
				addf(lineNo, "duplicate TYPE for family %q", name)
			}
			if f.samples > 0 {
				addf(lineNo, "TYPE for %q after its samples", name)
			}
			f.hasType = true
		case strings.HasPrefix(line, "#"):
			// Free-form comments are legal anywhere.
		default:
			name, series, err := parseSampleLine(line)
			if err != nil {
				addf(lineNo, "%v", err)
				continue
			}
			f := enter(name, lineNo)
			if !f.hasType {
				addf(lineNo, "sample of %q before any TYPE header", name)
				f.hasType = true // report once per family
			}
			if seenSeries[series] {
				addf(lineNo, "duplicate series %q", series)
			}
			seenSeries[series] = true
			f.samples++
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("read: %v", err))
	}
	return problems
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// parseSampleLine validates one sample line ("name{labels} value [ts]") and
// returns the metric name plus the series identity (name + label block).
func parseSampleLine(line string) (name, series string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name in sample %q", line)
	}
	rest := line[i:]
	series = name
	if strings.HasPrefix(rest, "{") {
		end, perr := parseLabelBlock(rest)
		if perr != nil {
			return "", "", fmt.Errorf("sample %q: %v", line, perr)
		}
		series += rest[:end]
		rest = rest[end:]
	}
	if !strings.HasPrefix(rest, " ") {
		return "", "", fmt.Errorf("sample %q: missing value separator", line)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return "", "", fmt.Errorf("sample %q: want value [timestamp], got %d fields", line, len(fields))
	}
	if _, perr := strconv.ParseFloat(fields[0], 64); perr != nil {
		return "", "", fmt.Errorf("sample %q: invalid value %q", line, fields[0])
	}
	if len(fields) == 2 {
		if _, perr := strconv.ParseInt(fields[1], 10, 64); perr != nil {
			return "", "", fmt.Errorf("sample %q: invalid timestamp %q", line, fields[1])
		}
	}
	return name, series, nil
}

// parseLabelBlock validates a {k="v",...} block starting at s[0] == '{' and
// returns the index just past the closing brace.
func parseLabelBlock(s string) (int, error) {
	i := 1
	if i < len(s) && s[i] == '}' {
		return i + 1, nil
	}
	for {
		start := i
		for i < len(s) && s[i] != '=' && s[i] != '}' && s[i] != ',' {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("label name without value at offset %d", start)
		}
		if !validLabelName(s[start:i]) {
			return 0, fmt.Errorf("invalid label name %q", s[start:i])
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value at offset %d", i)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape at offset %d", i)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("invalid escape \\%c", s[i+1])
				}
				i++
			} else if s[i] == '\n' {
				return 0, fmt.Errorf("raw newline in label value")
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		return 0, fmt.Errorf("expected ',' or '}' at offset %d", i)
	}
}
