package metricsx

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestInjectLabel(t *testing.T) {
	cases := []struct {
		line, want string
	}{
		{`up 1`, `up{worker="w0"} 1`},
		{`up{} 1`, `up{worker="w0"} 1`},
		{`req_total{code="200"} 5`, `req_total{worker="w0",code="200"} 5`},
		// A label value containing a brace or space must not confuse the
		// insertion point.
		{`req_total{key="s4/p64{x} y"} 5`, `req_total{worker="w0",key="s4/p64{x} y"} 5`},
		{`up 1 1700000000`, `up{worker="w0"} 1 1700000000`},
		{`malformed`, `malformed`},
	}
	for _, tc := range cases {
		if got := injectLabel(tc.line, "worker", "w0"); got != tc.want {
			t.Errorf("injectLabel(%q) = %q, want %q", tc.line, got, tc.want)
		}
	}
	// Label values needing escaping are escaped on injection.
	got := injectLabel(`up 1`, "worker", `a"b\c`)
	want := `up{worker="a\"b\\c"} 1`
	if got != want {
		t.Errorf("escaped injection = %q, want %q", got, want)
	}
}

// TestWriteClusterFederatesAndStaysLintClean federates local samples with a
// live fake worker and a dead target: shared families merge contiguously,
// every remote series gains the worker label, the up-gauge distinguishes the
// live target from the dead one, and the whole document passes the
// structural lint.
func TestWriteClusterFederatesAndStaysLintClean(t *testing.T) {
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(strings.Join([]string{
			"# HELP beagleworker_sessions Live sessions.",
			"# TYPE beagleworker_sessions gauge",
			"beagleworker_sessions 2",
			"# HELP shared_total Shared across processes.",
			"# TYPE shared_total counter",
			`shared_total{kind="a"} 7`,
			"",
		}, "\n")))
	}))
	defer worker.Close()

	self := []Sample{
		{Name: "beagled_requests_total", Help: "requests", Type: "counter", Value: 10},
		{Name: "shared_total", Help: "Shared across processes.", Type: "counter",
			Labels: map[string]string{"kind": "a"}, Value: 3},
	}
	targets := []Target{
		{Label: "w0", URL: worker.URL},
		{Label: "w-dead", URL: "http://127.0.0.1:1/metrics"},
	}
	var buf bytes.Buffer
	fed := &Federator{UpMetric: "cluster_scrape_up"}
	if err := fed.WriteCluster(&buf, self, "self", targets); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		`beagled_requests_total{worker="self"} 10`,
		`beagleworker_sessions{worker="w0"} 2`,
		`shared_total{kind="a",worker="self"} 3`,
		`shared_total{worker="w0",kind="a"} 7`,
		`cluster_scrape_up{worker="w0"} 1`,
		`cluster_scrape_up{worker="w-dead"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("federated output missing %q:\n%s", want, out)
		}
	}
	if problems := LintProm(strings.NewReader(out)); len(problems) > 0 {
		t.Fatalf("federated document fails lint:\n%s\n---\n%s", strings.Join(problems, "\n"), out)
	}
}

func TestSortTargets(t *testing.T) {
	targets := []Target{{Label: "b"}, {Label: "a"}, {Label: "c"}}
	SortTargets(targets)
	if targets[0].Label != "a" || targets[2].Label != "c" {
		t.Fatalf("SortTargets gave %v", targets)
	}
}
