package metricsx

import (
	"net/http"
	"net/http/pprof"
)

// registerPprof wires the net/http/pprof handlers onto a non-default mux.
// Importing net/http/pprof only registers on http.DefaultServeMux, which the
// debug servers deliberately do not use, so each handler is bound explicitly.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
