package metricsx

import (
	"strings"
	"testing"
)

func lint(t *testing.T, doc string) []string {
	t.Helper()
	return LintProm(strings.NewReader(doc))
}

func TestLintPromAcceptsCleanDocument(t *testing.T) {
	doc := strings.Join([]string{
		"# HELP a_total Things.",
		"# TYPE a_total counter",
		"a_total 1",
		`a_total{kind="x",other="y z"} 2`,
		"# TYPE b gauge",
		`b{esc="a\"b\\c\n"} 0.5`,
		"b 3 1700000000",
		"# a free-form comment",
		"",
	}, "\n")
	if problems := lint(t, doc); len(problems) > 0 {
		t.Fatalf("clean document flagged:\n%s", strings.Join(problems, "\n"))
	}
}

func TestLintPromFindsProblems(t *testing.T) {
	cases := []struct {
		name, doc, wantSub string
	}{
		{"sample before TYPE", "x_total 1\n", "before any TYPE"},
		{"HELP after TYPE", "# TYPE x gauge\n# HELP x h\nx 1\n", "HELP must come first"},
		{"duplicate TYPE", "# TYPE x gauge\n# TYPE x gauge\nx 1\n", "duplicate TYPE"},
		{"bad type", "# TYPE x sometype\nx 1\n", "invalid type"},
		{"interleaved families", "# TYPE a gauge\na 1\n# TYPE b gauge\nb 1\na 2\n", "reappears"},
		{"bad metric name", "# TYPE x gauge\nx 1\n9bad 1\n", "invalid metric name"},
		{"bad label name", "# TYPE x gauge\nx{9l=\"v\"} 1\n", "invalid label name"},
		{"unquoted label value", "# TYPE x gauge\nx{l=v} 1\n", "unquoted label value"},
		{"bad escape", `# TYPE x gauge` + "\n" + `x{l="a\q"} 1` + "\n", "invalid escape"},
		{"unterminated value", `# TYPE x gauge` + "\n" + `x{l="a 1` + "\n", "unterminated"},
		{"bad value", "# TYPE x gauge\nx notanumber\n", "invalid value"},
		{"bad timestamp", "# TYPE x gauge\nx 1 nope\n", "invalid timestamp"},
		{"duplicate series", "# TYPE x gauge\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n", "duplicate series"},
	}
	for _, tc := range cases {
		problems := lint(t, tc.doc)
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.wantSub) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: lint = %v, want a problem containing %q", tc.name, problems, tc.wantSub)
		}
	}
}

// TestLintPromOverWriteProm runs the package's own exposition writer through
// its own lint — the exporter must be clean by construction.
func TestLintPromOverWriteProm(t *testing.T) {
	samples := []Sample{
		{Name: "x_total", Help: "things", Type: "counter", Value: 1},
		{Name: "x_total", Type: "counter", Labels: map[string]string{"kind": "a b", "z": `q"w\e`}, Value: 2},
		{Name: "y", Help: "gauge", Type: "gauge", Value: 0.25},
	}
	var b strings.Builder
	WriteProm(&b, samples)
	if problems := lint(t, b.String()); len(problems) > 0 {
		t.Fatalf("WriteProm output fails lint:\n%s\n---\n%s", strings.Join(problems, "\n"), b.String())
	}
}
