package metricsx

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// This file is the metrics-federation writer: a coordinator scrapes each
// worker's /metrics endpoint, tags every sample with a worker label and
// merges the result with its own samples into one cluster-wide exposition
// document. The remote text is relabeled line by line — sample lines gain
// the label at their label-set boundary, HELP/TYPE headers are merged per
// family in first-appearance order — so the aggregated view is itself valid
// exposition text and families stay contiguous regardless of how many
// processes contributed to them.

// Target is one remote scrape target.
type Target struct {
	// Label is the worker label value samples from this target carry.
	Label string
	// URL is the full metrics URL, e.g. "http://10.0.0.7:9500/metrics".
	URL string
}

// Federator merges local samples with remote scrapes into one worker-
// labeled exposition document. The zero value is usable.
type Federator struct {
	// Client performs the scrapes; nil uses a 3-second-timeout default.
	Client *http.Client
	// LabelKey is the injected label name. Default "worker".
	LabelKey string
	// UpMetric, when non-empty, names a per-target gauge (1 = the last
	// scrape succeeded, 0 = it failed) appended to the document, e.g.
	// "beagled_cluster_scrape_up".
	UpMetric string
}

// family accumulates one metric family's header and rendered sample lines
// across all contributing processes.
type family struct {
	help  string
	typ   string
	lines []string
}

func (f *Federator) client() *http.Client {
	if f.Client != nil {
		return f.Client
	}
	return &http.Client{Timeout: 3 * time.Second}
}

// WriteCluster writes the federated exposition document: the local samples
// (labeled selfLabel) first, then each target's scrape in target order.
// Scrape failures do not fail the write — the target's samples are simply
// absent for this scrape and its UpMetric gauge reports 0. The returned
// error is reserved for write failures on w.
func (f *Federator) WriteCluster(w io.Writer, self []Sample, selfLabel string, targets []Target) error {
	key := f.LabelKey
	if key == "" {
		key = "worker"
	}
	var order []string
	fams := map[string]*family{}
	fam := func(name string) *family {
		fm, ok := fams[name]
		if !ok {
			fm = &family{}
			fams[name] = fm
			order = append(order, name)
		}
		return fm
	}
	addSample := func(s Sample, label string) {
		fm := fam(s.Name)
		if fm.help == "" {
			fm.help = s.Help
		}
		if fm.typ == "" {
			fm.typ = s.Type
		}
		labels := make(map[string]string, len(s.Labels)+1)
		for k, v := range s.Labels {
			labels[k] = v
		}
		labels[key] = label
		fm.lines = append(fm.lines, s.Name+formatLabels(labels)+" "+fmt.Sprintf("%g", s.Value))
	}

	for _, s := range self {
		addSample(s, selfLabel)
	}

	var ups []Sample
	for _, t := range targets {
		err := f.scrape(t, key, fam)
		up := 1.0
		if err != nil {
			up = 0
		}
		if f.UpMetric != "" {
			ups = append(ups, Sample{
				Name:   f.UpMetric,
				Help:   "Whether the last scrape of this worker's metrics endpoint succeeded.",
				Type:   "gauge",
				Labels: map[string]string{key: t.Label},
				Value:  up,
			})
		}
	}
	for _, s := range ups {
		fm := fam(s.Name)
		if fm.help == "" {
			fm.help = s.Help
		}
		if fm.typ == "" {
			fm.typ = s.Type
		}
		fm.lines = append(fm.lines, s.Name+formatLabels(s.Labels)+" "+fmt.Sprintf("%g", s.Value))
	}

	var b strings.Builder
	for _, name := range order {
		fm := fams[name]
		if fm.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, fm.help)
		}
		typ := fm.typ
		if typ == "" {
			typ = "untyped"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		for _, line := range fm.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// scrape fetches one target and merges its relabeled lines into the family
// table.
func (f *Federator) scrape(t Target, key string, fam func(string) *family) error {
	resp, err := f.client().Get(t.URL)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metricsx: scrape %s: status %s", t.URL, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimRight(line, "\r")
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			name, text, ok := splitHeader(line[len("# HELP "):])
			if ok {
				if fm := fam(name); fm.help == "" {
					fm.help = text
				}
			}
		case strings.HasPrefix(line, "# TYPE "):
			name, typ, ok := splitHeader(line[len("# TYPE "):])
			if ok {
				if fm := fam(name); fm.typ == "" {
					fm.typ = typ
				}
			}
		case strings.HasPrefix(line, "#"):
			// Other comments are dropped.
		default:
			name := sampleName(line)
			if name == "" {
				continue
			}
			fam(name).lines = append(fam(name).lines, injectLabel(line, key, t.Label))
		}
	}
	return nil
}

// splitHeader splits "name rest" of a HELP/TYPE header body.
func splitHeader(s string) (name, rest string, ok bool) {
	i := strings.IndexByte(s, ' ')
	if i <= 0 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

// sampleName extracts the metric name of a sample line: the prefix up to
// the label block or the value separator, whichever comes first.
func sampleName(line string) string {
	end := len(line)
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		end = i
	}
	return line[:end]
}

// injectLabel rewrites one sample line so its label set includes key=value.
// The insertion point is the label-set boundary — the opening brace when the
// line has labels, otherwise just before the value — so label VALUES (which
// may contain braces or spaces inside their quotes) are never parsed.
func injectLabel(line, key, value string) string {
	esc := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(value)
	pair := key + `="` + esc + `"`
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		if len(line) > brace+1 && line[brace+1] == '}' {
			return line[:brace+1] + pair + line[brace+1:]
		}
		return line[:brace+1] + pair + "," + line[brace+1:]
	}
	if space < 0 {
		return line // malformed; pass through untouched
	}
	return line[:space] + "{" + pair + "}" + line[space:]
}

// SortTargets orders targets by label for a stable federation layout.
func SortTargets(targets []Target) {
	sort.Slice(targets, func(i, j int) bool { return targets[i].Label < targets[j].Label })
}
