package metricsx

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type fakeSource struct{ samples []Sample }

func (f fakeSource) Metrics() []Sample { return f.samples }
func (f fakeSource) Vars() map[string]any {
	return map[string]any{"batches": 3, "implementation": "CPU-serial"}
}
func (f fakeSource) RebalanceEvents() any { return []int{1, 2} }
func (f fakeSource) TraceSummary() any    { return map[string]int{"scheduler": 7} }

func testSamples() []Sample {
	return []Sample{
		{Name: "gobeagle_batches_total", Help: "partials batches", Type: "counter", Value: 3},
		{Name: "gobeagle_kernel_ops_total", Help: "ops per kernel", Type: "counter",
			Labels: map[string]string{"kernel": "partials"}, Value: 42},
		{Name: "gobeagle_kernel_ops_total",
			Labels: map[string]string{"kernel": "root"}, Value: 2},
		{Name: "gobeagle_effective_gflops", Help: "throughput", Value: 1.5},
	}
}

func TestWritePromFormat(t *testing.T) {
	var b strings.Builder
	WriteProm(&b, testSamples())
	out := b.String()
	for _, want := range []string{
		"# HELP gobeagle_batches_total partials batches",
		"# TYPE gobeagle_batches_total counter",
		"gobeagle_batches_total 3",
		`gobeagle_kernel_ops_total{kernel="partials"} 42`,
		`gobeagle_kernel_ops_total{kernel="root"} 2`,
		"# TYPE gobeagle_effective_gflops gauge", // default type
		"gobeagle_effective_gflops 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family, even with several labeled samples.
	if n := strings.Count(out, "# TYPE gobeagle_kernel_ops_total"); n != 1 {
		t.Errorf("family header emitted %d times, want 1", n)
	}
}

func TestFormatLabelsEscaping(t *testing.T) {
	got := formatLabels(map[string]string{"b": `say "hi"`, "a": "x"})
	want := `{a="x",b="say \"hi\""}`
	if got != want {
		t.Errorf("formatLabels = %q, want %q", got, want)
	}
	if formatLabels(nil) != "" {
		t.Error("nil labels must render empty")
	}
}

func TestMuxEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewMux(fakeSource{samples: testSamples()}))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "gobeagle_batches_total 3") {
		t.Errorf("/metrics missing sample:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}

	body, ctype = get("/debug/vars")
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	if vars["implementation"] != "CPU-serial" {
		t.Errorf("/debug/vars = %v", vars)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/debug/vars content type %q", ctype)
	}

	body, _ = get("/debug/rebalance")
	var events []int
	if err := json.Unmarshal([]byte(body), &events); err != nil || len(events) != 2 {
		t.Errorf("/debug/rebalance = %q (err %v)", body, err)
	}

	body, _ = get("/debug/trace")
	var sum map[string]int
	if err := json.Unmarshal([]byte(body), &sum); err != nil || sum["scheduler"] != 7 {
		t.Errorf("/debug/trace = %q (err %v)", body, err)
	}

	body, _ = get("/")
	if !strings.Contains(body, "/metrics") {
		t.Errorf("index missing endpoint list:\n%s", body)
	}

	if resp, err := http.Get(srv.URL + "/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown path status %d, want 404", resp.StatusCode)
		}
	}
}

func TestWriteJSONNil(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, nil)
	if got := strings.TrimSpace(rec.Body.String()); got != "null" {
		t.Errorf("nil body = %q, want null", got)
	}
}
