package metricsx

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// nullSource is the minimal Source for mux tests.
type nullSource struct{}

func (nullSource) Metrics() []Sample    { return nil }
func (nullSource) Vars() map[string]any { return map[string]any{} }
func (nullSource) RebalanceEvents() any { return nil }
func (nullSource) TraceSummary() any    { return nil }

// TestPprofOptIn asserts the profiling endpoints exist only with WithPprof.
func TestPprofOptIn(t *testing.T) {
	plain := httptest.NewServer(NewMux(nullSource{}))
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("/debug/pprof/ served without WithPprof (status %d)", resp.StatusCode)
	}

	prof := httptest.NewServer(NewMux(nullSource{}, WithPprof()))
	defer prof.Close()
	resp, err = http.Get(prof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ index: status %d, want 200", resp.StatusCode)
	}
}

// TestPprofProfileIsParseable captures a 1-second CPU profile through the
// opt-in mux and checks the body really is a profile: a gzipped protobuf
// whose wire framing walks cleanly to EOF.
func TestPprofProfileIsParseable(t *testing.T) {
	if testing.Short() {
		t.Skip("1-second CPU profile capture")
	}
	srv := httptest.NewServer(NewMux(nullSource{}, WithPprof()))
	defer srv.Close()

	// Burn a little CPU during the capture window so the profile has samples.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		x := 0.0
		for {
			select {
			case <-stop:
				return
			default:
				for i := 0; i < 1000; i++ {
					x += float64(i) * 1.000001
				}
			}
		}
	}()
	defer func() { close(stop); <-done }()

	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(srv.URL + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("profile: status %d: %s", resp.StatusCode, body)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("profile body is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("decompress profile: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("empty profile")
	}
	if err := walkProto(raw); err != nil {
		t.Fatalf("profile is not valid protobuf wire format: %v", err)
	}
}

// walkProto validates protobuf wire framing without a generated decoder:
// every field must have a known wire type and its payload must fit.
func walkProto(b []byte) error {
	i := 0
	fields := 0
	for i < len(b) {
		key, n, err := readVarint(b[i:])
		if err != nil {
			return fmt.Errorf("field key at offset %d: %w", i, err)
		}
		i += n
		wire := key & 7
		switch wire {
		case 0: // varint
			_, n, err := readVarint(b[i:])
			if err != nil {
				return fmt.Errorf("varint at offset %d: %w", i, err)
			}
			i += n
		case 1: // fixed64
			if i+8 > len(b) {
				return fmt.Errorf("truncated fixed64 at offset %d", i)
			}
			i += 8
		case 2: // length-delimited
			l, n, err := readVarint(b[i:])
			if err != nil {
				return fmt.Errorf("length at offset %d: %w", i, err)
			}
			i += n
			if uint64(len(b)-i) < l {
				return fmt.Errorf("field at offset %d claims %d bytes, %d remain", i, l, len(b)-i)
			}
			i += int(l)
		case 5: // fixed32
			if i+4 > len(b) {
				return fmt.Errorf("truncated fixed32 at offset %d", i)
			}
			i += 4
		default:
			return fmt.Errorf("unknown wire type %d at offset %d", wire, i)
		}
		fields++
	}
	if fields == 0 {
		return fmt.Errorf("no fields")
	}
	return nil
}

func readVarint(b []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i]&0x80 == 0 {
			return v, i + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("truncated varint")
}
