// Package metricsx is the library's debug HTTP surface: a tiny, dependency-
// free exporter that renders live metric samples in the Prometheus text
// exposition format and serves expvar-style JSON endpoints. It knows nothing
// about phylogenetics — the public gobeagle package adapts an Instance's
// telemetry, rebalance state and trace summary through the Source interface,
// so this package stays import-cycle-free and independently testable.
package metricsx

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Sample is one live metric observation. Name must be a valid Prometheus
// metric name (the exporter does not rewrite it); Labels may be nil.
type Sample struct {
	Name   string
	Help   string
	Type   string // "counter" or "gauge"
	Labels map[string]string
	Value  float64
}

// Source provides the live views the debug server renders. Implementations
// must be safe for concurrent calls: the HTTP server invokes them from
// request goroutines while the instance is computing.
type Source interface {
	// Metrics returns the current samples for GET /metrics.
	Metrics() []Sample
	// Vars returns the expvar-style variable map for GET /debug/vars.
	Vars() map[string]any
	// RebalanceEvents returns the multi-device repartition history for
	// GET /debug/rebalance (nil or empty when rebalancing is off).
	RebalanceEvents() any
	// TraceSummary returns the per-layer span summary for GET /debug/trace.
	TraceSummary() any
}

// MuxOption customizes the debug mux built by NewMux.
type MuxOption func(*muxConfig)

type muxConfig struct {
	pprof bool
}

// WithPprof registers the net/http/pprof handlers (/debug/pprof/...) on the
// mux. Profiling is opt-in: the endpoints expose CPU and heap internals, so
// commands gate this behind an explicit flag.
func WithPprof() MuxOption {
	return func(c *muxConfig) { c.pprof = true }
}

// NewMux builds the debug server's routes:
//
//	/              endpoint index
//	/metrics       Prometheus text exposition
//	/debug/vars    expvar-style JSON variables
//	/debug/rebalance  multi-device repartition history (JSON)
//	/debug/trace   span-tracer summary per layer and kind (JSON)
//	/debug/pprof/  runtime profiling (only with WithPprof)
func NewMux(src Source, opts ...MuxOption) *http.ServeMux {
	var cfg muxConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "gobeagle debug server")
		fmt.Fprintln(w, "  /metrics          Prometheus text metrics")
		fmt.Fprintln(w, "  /debug/vars       expvar-style JSON variables")
		fmt.Fprintln(w, "  /debug/rebalance  multi-device repartition history")
		fmt.Fprintln(w, "  /debug/trace      span-tracer summary")
		if cfg.pprof {
			fmt.Fprintln(w, "  /debug/pprof/     runtime profiling")
		}
	})
	if cfg.pprof {
		registerPprof(mux)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, src.Metrics())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, src.Vars())
	})
	mux.HandleFunc("/debug/rebalance", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, src.RebalanceEvents())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, src.TraceSummary())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if v == nil {
		fmt.Fprintln(w, "null")
		return
	}
	enc.Encode(v)
}

// WriteProm renders samples in the Prometheus text exposition format,
// emitting one HELP/TYPE header per metric family in order of first
// appearance and keeping samples of a family together.
func WriteProm(w io.Writer, samples []Sample) {
	byName := map[string][]Sample{}
	var order []string
	for _, s := range samples {
		if _, seen := byName[s.Name]; !seen {
			order = append(order, s.Name)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	var b strings.Builder
	for _, name := range order {
		fam := byName[name]
		if fam[0].Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, fam[0].Help)
		}
		typ := fam[0].Type
		if typ == "" {
			typ = "gauge"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		for _, s := range fam {
			b.WriteString(name)
			b.WriteString(formatLabels(s.Labels))
			fmt.Fprintf(&b, " %g\n", s.Value)
		}
	}
	w.Write([]byte(b.String()))
}

// formatLabels renders a sorted {k="v",...} label set, escaping values per
// the exposition format.
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := labels[k]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		fmt.Fprintf(&b, `%s="%s"`, k, v)
	}
	b.WriteByte('}')
	return b.String()
}
