package kernels

// Four-state specialized kernels: the analogue of BEAGLE's SSE code path,
// which vectorizes across the 4 nucleotide character states (§IV-D). The
// fully unrolled bodies expose the same 4-wide instruction-level parallelism
// to the compiler that the SSE intrinsics express explicitly.

// PartialsPartials4 is PartialsPartials specialized and unrolled for
// StateCount == 4.
//
//beagle:noalloc
func PartialsPartials4[T Real](dest, p1, m1, p2, m2 []T, d Dims, lo, hi int) {
	for c := 0; c < d.CategoryCount; c++ {
		m := m1[c*16 : c*16+16]
		n := m2[c*16 : c*16+16]
		for p := lo; p < hi; p++ {
			o := (c*d.PatternCount + p) * 4
			a0, a1, a2, a3 := p1[o], p1[o+1], p1[o+2], p1[o+3]
			b0, b1, b2, b3 := p2[o], p2[o+1], p2[o+2], p2[o+3]
			dest[o] = (m[0]*a0 + m[1]*a1 + m[2]*a2 + m[3]*a3) *
				(n[0]*b0 + n[1]*b1 + n[2]*b2 + n[3]*b3)
			dest[o+1] = (m[4]*a0 + m[5]*a1 + m[6]*a2 + m[7]*a3) *
				(n[4]*b0 + n[5]*b1 + n[6]*b2 + n[7]*b3)
			dest[o+2] = (m[8]*a0 + m[9]*a1 + m[10]*a2 + m[11]*a3) *
				(n[8]*b0 + n[9]*b1 + n[10]*b2 + n[11]*b3)
			dest[o+3] = (m[12]*a0 + m[13]*a1 + m[14]*a2 + m[15]*a3) *
				(n[12]*b0 + n[13]*b1 + n[14]*b2 + n[15]*b3)
		}
	}
}

// StatesPartials4 is StatesPartials specialized and unrolled for
// StateCount == 4.
//
//beagle:noalloc
func StatesPartials4[T Real](dest []T, s1 []int32, m1 []T, p2, m2 []T, d Dims, lo, hi int) {
	for c := 0; c < d.CategoryCount; c++ {
		m := m1[c*16 : c*16+16]
		n := m2[c*16 : c*16+16]
		for p := lo; p < hi; p++ {
			o := (c*d.PatternCount + p) * 4
			b0, b1, b2, b3 := p2[o], p2[o+1], p2[o+2], p2[o+3]
			t0 := n[0]*b0 + n[1]*b1 + n[2]*b2 + n[3]*b3
			t1 := n[4]*b0 + n[5]*b1 + n[6]*b2 + n[7]*b3
			t2 := n[8]*b0 + n[9]*b1 + n[10]*b2 + n[11]*b3
			t3 := n[12]*b0 + n[13]*b1 + n[14]*b2 + n[15]*b3
			st := int(s1[p])
			if st < 4 {
				dest[o] = m[st] * t0
				dest[o+1] = m[4+st] * t1
				dest[o+2] = m[8+st] * t2
				dest[o+3] = m[12+st] * t3
			} else {
				dest[o] = t0
				dest[o+1] = t1
				dest[o+2] = t2
				dest[o+3] = t3
			}
		}
	}
}

// StatesStates4 is StatesStates specialized and unrolled for
// StateCount == 4.
//
//beagle:noalloc
func StatesStates4[T Real](dest []T, s1 []int32, m1 []T, s2 []int32, m2 []T, d Dims, lo, hi int) {
	for c := 0; c < d.CategoryCount; c++ {
		m := m1[c*16 : c*16+16]
		n := m2[c*16 : c*16+16]
		for p := lo; p < hi; p++ {
			o := (c*d.PatternCount + p) * 4
			sa := int(s1[p])
			sb := int(s2[p])
			var f0, f1, f2, f3 T = 1, 1, 1, 1
			if sa < 4 {
				f0, f1, f2, f3 = m[sa], m[4+sa], m[8+sa], m[12+sa]
			}
			var g0, g1, g2, g3 T = 1, 1, 1, 1
			if sb < 4 {
				g0, g1, g2, g3 = n[sb], n[4+sb], n[8+sb], n[12+sb]
			}
			dest[o] = f0 * g0
			dest[o+1] = f1 * g1
			dest[o+2] = f2 * g2
			dest[o+3] = f3 * g3
		}
	}
}
