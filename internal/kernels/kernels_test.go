package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomProblem builds random partials, tip states and stochastic-like
// matrices for the given geometry.
type problem[T Real] struct {
	d              Dims
	p1, p2, m1, m2 []T
	s1, s2         []int32
}

func newProblem[T Real](rng *rand.Rand, s, pat, cat int) *problem[T] {
	d := Dims{StateCount: s, PatternCount: pat, CategoryCount: cat}
	pr := &problem[T]{d: d}
	mk := func(n int) []T {
		v := make([]T, n)
		for i := range v {
			v[i] = T(rng.Float64())
		}
		return v
	}
	pr.p1 = mk(d.PartialsLen())
	pr.p2 = mk(d.PartialsLen())
	pr.m1 = mk(d.MatrixLen())
	pr.m2 = mk(d.MatrixLen())
	pr.s1 = make([]int32, pat)
	pr.s2 = make([]int32, pat)
	for i := 0; i < pat; i++ {
		pr.s1[i] = int32(rng.Intn(s + 1)) // occasionally ambiguous
		pr.s2[i] = int32(rng.Intn(s + 1))
	}
	return pr
}

// statesAsPartials expands compact states into the equivalent partials
// representation.
func statesAsPartials[T Real](states []int32, d Dims) []T {
	out := make([]T, d.PartialsLen())
	for c := 0; c < d.CategoryCount; c++ {
		for p := 0; p < d.PatternCount; p++ {
			off := (c*d.PatternCount + p) * d.StateCount
			st := int(states[p])
			if st >= d.StateCount {
				for i := 0; i < d.StateCount; i++ {
					out[off+i] = 1
				}
			} else {
				out[off+st] = 1
			}
		}
	}
	return out
}

func maxDiff[T Real](a, b []T) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestPartialsPartialsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range []int{4, 20, 61} {
		pr := newProblem[float64](rng, s, 17, 3)
		got := make([]float64, pr.d.PartialsLen())
		PartialsPartials(got, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, 0, 17)
		// Naive reference.
		want := make([]float64, pr.d.PartialsLen())
		for c := 0; c < 3; c++ {
			for p := 0; p < 17; p++ {
				for i := 0; i < s; i++ {
					var a, b float64
					for j := 0; j < s; j++ {
						a += pr.m1[(c*s+i)*s+j] * pr.p1[(c*17+p)*s+j]
						b += pr.m2[(c*s+i)*s+j] * pr.p2[(c*17+p)*s+j]
					}
					want[(c*17+p)*s+i] = a * b
				}
			}
		}
		if d := maxDiff(got, want); d > 1e-12 {
			t.Fatalf("s=%d: PartialsPartials differs from naive by %v", s, d)
		}
	}
}

func TestEntryKernelsMatchLoopKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range []int{4, 20, 61} {
		pr := newProblem[float64](rng, s, 11, 2)
		n := pr.d.PartialsLen()

		loop := make([]float64, n)
		entry := make([]float64, n)
		PartialsPartials(loop, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, 0, 11)
		for w := 0; w < n; w++ {
			PartialsPartialsEntry(entry, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, w)
		}
		if d := maxDiff(loop, entry); d > 1e-13 {
			t.Fatalf("s=%d: entry kernel differs by %v", s, d)
		}

		loopSP := make([]float64, n)
		entrySP := make([]float64, n)
		StatesPartials(loopSP, pr.s1, pr.m1, pr.p2, pr.m2, pr.d, 0, 11)
		for w := 0; w < n; w++ {
			StatesPartialsEntry(entrySP, pr.s1, pr.m1, pr.p2, pr.m2, pr.d, w)
		}
		if d := maxDiff(loopSP, entrySP); d > 1e-13 {
			t.Fatalf("s=%d: states-partials entry kernel differs by %v", s, d)
		}

		loopSS := make([]float64, n)
		entrySS := make([]float64, n)
		StatesStates(loopSS, pr.s1, pr.m1, pr.s2, pr.m2, pr.d, 0, 11)
		for w := 0; w < n; w++ {
			StatesStatesEntry(entrySS, pr.s1, pr.m1, pr.s2, pr.m2, pr.d, w)
		}
		if d := maxDiff(loopSS, entrySS); d > 1e-13 {
			t.Fatalf("s=%d: states-states entry kernel differs by %v", s, d)
		}
	}
}

// normalizeRows rescales each matrix row to sum to 1, making the matrices
// stochastic; the compact-state kernels' gap-state shortcut (factor 1.0)
// assumes probability matrices, whose rows always sum to 1.
func normalizeRows(m []float64, s, cats int) {
	for c := 0; c < cats; c++ {
		for i := 0; i < s; i++ {
			row := m[(c*s+i)*s : (c*s+i+1)*s]
			var sum float64
			for _, v := range row {
				sum += v
			}
			for j := range row {
				row[j] /= sum
			}
		}
	}
}

func TestStatesKernelsMatchExpandedPartials(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range []int{4, 20} {
		pr := newProblem[float64](rng, s, 13, 2)
		normalizeRows(pr.m1, s, 2)
		normalizeRows(pr.m2, s, 2)
		x1 := statesAsPartials[float64](pr.s1, pr.d)
		x2 := statesAsPartials[float64](pr.s2, pr.d)
		n := pr.d.PartialsLen()

		viaStates := make([]float64, n)
		viaPartials := make([]float64, n)
		StatesPartials(viaStates, pr.s1, pr.m1, pr.p2, pr.m2, pr.d, 0, 13)
		PartialsPartials(viaPartials, x1, pr.m1, pr.p2, pr.m2, pr.d, 0, 13)
		if d := maxDiff(viaStates, viaPartials); d > 1e-12 {
			t.Fatalf("s=%d: StatesPartials differs from expanded by %v", s, d)
		}

		viaStates2 := make([]float64, n)
		viaPartials2 := make([]float64, n)
		StatesStates(viaStates2, pr.s1, pr.m1, pr.s2, pr.m2, pr.d, 0, 13)
		PartialsPartials(viaPartials2, x1, pr.m1, x2, pr.m2, pr.d, 0, 13)
		if d := maxDiff(viaStates2, viaPartials2); d > 1e-12 {
			t.Fatalf("s=%d: StatesStates differs from expanded by %v", s, d)
		}
	}
}

func TestFourStateKernelsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pr := newProblem[float64](rng, 4, 23, 4)
	n := pr.d.PartialsLen()

	gen := make([]float64, n)
	sse := make([]float64, n)
	PartialsPartials(gen, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, 0, 23)
	PartialsPartials4(sse, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, 0, 23)
	if d := maxDiff(gen, sse); d > 1e-13 {
		t.Fatalf("PartialsPartials4 differs by %v", d)
	}

	genSP := make([]float64, n)
	sseSP := make([]float64, n)
	StatesPartials(genSP, pr.s1, pr.m1, pr.p2, pr.m2, pr.d, 0, 23)
	StatesPartials4(sseSP, pr.s1, pr.m1, pr.p2, pr.m2, pr.d, 0, 23)
	if d := maxDiff(genSP, sseSP); d > 1e-13 {
		t.Fatalf("StatesPartials4 differs by %v", d)
	}

	genSS := make([]float64, n)
	sseSS := make([]float64, n)
	StatesStates(genSS, pr.s1, pr.m1, pr.s2, pr.m2, pr.d, 0, 23)
	StatesStates4(sseSS, pr.s1, pr.m1, pr.s2, pr.m2, pr.d, 0, 23)
	if d := maxDiff(genSS, sseSS); d > 1e-13 {
		t.Fatalf("StatesStates4 differs by %v", d)
	}
}

func TestFMAKernelsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, s := range []int{4, 61} {
		pr := newProblem[float64](rng, s, 9, 2)
		n := pr.d.PartialsLen()
		gen := make([]float64, n)
		fmaOut := make([]float64, n)
		PartialsPartials(gen, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, 0, 9)
		PartialsPartialsFMA(fmaOut, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, 0, 9)
		// FMA changes rounding, not values: agreement to high precision.
		if d := maxDiff(gen, fmaOut); d > 1e-12 {
			t.Fatalf("s=%d: FMA kernel differs by %v", s, d)
		}
		genSP := make([]float64, n)
		fmaSP := make([]float64, n)
		StatesPartials(genSP, pr.s1, pr.m1, pr.p2, pr.m2, pr.d, 0, 9)
		StatesPartialsFMA(fmaSP, pr.s1, pr.m1, pr.p2, pr.m2, pr.d, 0, 9)
		if d := maxDiff(genSP, fmaSP); d > 1e-12 {
			t.Fatalf("s=%d: FMA states-partials differs by %v", s, d)
		}
	}
}

func TestSinglePrecisionKernelsTrackDouble(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pr64 := newProblem[float64](rng, 4, 15, 2)
	pr32 := &problem[float32]{d: pr64.d, s1: pr64.s1, s2: pr64.s2}
	conv := func(v []float64) []float32 {
		out := make([]float32, len(v))
		for i, x := range v {
			out[i] = float32(x)
		}
		return out
	}
	pr32.p1, pr32.p2 = conv(pr64.p1), conv(pr64.p2)
	pr32.m1, pr32.m2 = conv(pr64.m1), conv(pr64.m2)

	out64 := make([]float64, pr64.d.PartialsLen())
	out32 := make([]float32, pr64.d.PartialsLen())
	PartialsPartials(out64, pr64.p1, pr64.m1, pr64.p2, pr64.m2, pr64.d, 0, 15)
	PartialsPartials(out32, pr32.p1, pr32.m1, pr32.p2, pr32.m2, pr32.d, 0, 15)
	for i := range out64 {
		if math.Abs(out64[i]-float64(out32[i])) > 1e-5 {
			t.Fatalf("precision divergence at %d: %v vs %v", i, out64[i], out32[i])
		}
	}
}

func TestPartitionedExecutionEqualsWhole(t *testing.T) {
	// Computing patterns in chunks (as every threading layer does) must give
	// identical results to one full-range call.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pat := 1 + rng.Intn(64)
		pr := newProblem[float64](rng, 4, pat, 1+rng.Intn(3))
		whole := make([]float64, pr.d.PartialsLen())
		chunked := make([]float64, pr.d.PartialsLen())
		PartialsPartials(whole, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, 0, pat)
		for lo := 0; lo < pat; {
			hi := lo + 1 + rng.Intn(8)
			if hi > pat {
				hi = pat
			}
			PartialsPartials(chunked, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, lo, hi)
			lo = hi
		}
		return maxDiff(whole, chunked) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUpdateTransitionMatrixIdentityAtZero(t *testing.T) {
	// With branch length 0, P must be the identity for every category.
	e := jcEigen()
	out := make([]float64, 2*16)
	UpdateTransitionMatrix(out, e, 0, []float64{0.5, 2})
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(out[c*16+i*4+j]-want) > 1e-12 {
					t.Fatalf("P(0) not identity at c=%d i=%d j=%d: %v", c, i, j, out[c*16+i*4+j])
				}
			}
		}
	}
}

// jcEigen returns the analytic eigendecomposition of the JC69 rate matrix,
// which has eigenvalues {0, -4/3, -4/3, -4/3}.
func jcEigen() *Eigen {
	// Q = (1/3)·(J − 4I)/... normalized JC: q_ij = 1/3 off-diagonal, -1 diag.
	// Eigenvectors: the all-ones vector (λ=0) and any basis of its complement
	// (λ=-4/3). Use a simple explicit basis.
	v := []float64{
		1, 1, 1, 1,
		1, -1, 0, 0,
		1, 0, -1, 0,
		1, 0, 0, -1,
	}
	// v above is row-major with eigenvectors as columns? Build properly:
	// columns: [1,1,1,1], [1,-1,0,0], [1,0,-1,0], [1,0,0,-1].
	vectors := make([]float64, 16)
	cols := [][]float64{
		{1, 1, 1, 1},
		{1, -1, 0, 0},
		{1, 0, -1, 0},
		{1, 0, 0, -1},
	}
	for j, col := range cols {
		for i := 0; i < 4; i++ {
			vectors[i*4+j] = col[i]
		}
	}
	_ = v
	// Inverse computed analytically.
	inverse := []float64{
		0.25, 0.25, 0.25, 0.25,
		0.25, -0.75, 0.25, 0.25,
		0.25, 0.25, -0.75, 0.25,
		0.25, 0.25, 0.25, -0.75,
	}
	return &Eigen{
		StateCount:     4,
		Values:         []float64{0, -4.0 / 3, -4.0 / 3, -4.0 / 3},
		Vectors:        vectors,
		InverseVectors: inverse,
	}
}

func TestUpdateTransitionMatrixJCClosedForm(t *testing.T) {
	e := jcEigen()
	rates := []float64{0.25, 1, 3}
	out := make([]float64, 3*16)
	bt := 0.4
	UpdateTransitionMatrix(out, e, bt, rates)
	for c, r := range rates {
		same := 0.25 + 0.75*math.Exp(-4*bt*r/3)
		diff := 0.25 - 0.25*math.Exp(-4*bt*r/3)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := diff
				if i == j {
					want = same
				}
				if math.Abs(out[c*16+i*4+j]-want) > 1e-12 {
					t.Fatalf("c=%d P[%d,%d]=%v want %v", c, i, j, out[c*16+i*4+j], want)
				}
			}
		}
	}
}

func TestSiteLikelihoodsAndRootLogLikelihood(t *testing.T) {
	// One category, one pattern, hand-computed.
	d := Dims{StateCount: 2, PatternCount: 1, CategoryCount: 1}
	root := []float64{0.2, 0.6}
	freqs := []float64{0.3, 0.7}
	site := make([]float64, 1)
	SiteLikelihoods(site, root, []float64{1}, freqs, d, 0, 1)
	want := 0.3*0.2 + 0.7*0.6
	if math.Abs(site[0]-want) > 1e-15 {
		t.Fatalf("site likelihood %v want %v", site[0], want)
	}
	lnL := RootLogLikelihood(site, []float64{3}, nil, 0, 1)
	if math.Abs(lnL-3*math.Log(want)) > 1e-15 {
		t.Fatalf("lnL %v want %v", lnL, 3*math.Log(want))
	}
	// With a scale factor the result shifts by patternWeight·scale.
	lnLs := RootLogLikelihood(site, []float64{3}, []float64{0.5}, 0, 1)
	if math.Abs(lnLs-(3*math.Log(want)+1.5)) > 1e-12 {
		t.Fatalf("scaled lnL %v", lnLs)
	}
}

func TestSiteLikelihoodsCategoryMixture(t *testing.T) {
	d := Dims{StateCount: 2, PatternCount: 1, CategoryCount: 2}
	// category 0 partials: [1, 0], category 1: [0, 1]
	root := []float64{1, 0, 0, 1}
	freqs := []float64{0.5, 0.5}
	site := make([]float64, 1)
	SiteLikelihoods(site, root, []float64{0.25, 0.75}, freqs, d, 0, 1)
	want := 0.25*0.5 + 0.75*0.5
	if math.Abs(site[0]-want) > 1e-15 {
		t.Fatalf("mixture site likelihood %v want %v", site[0], want)
	}
}

func TestRescaleInvariance(t *testing.T) {
	// Rescaling partials then adding back the log factors must not change
	// site log likelihoods.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Dims{StateCount: 4, PatternCount: 1 + rng.Intn(20), CategoryCount: 1 + rng.Intn(3)}
		root := make([]float64, d.PartialsLen())
		for i := range root {
			root[i] = rng.Float64() * math.Pow(10, float64(rng.Intn(8)-4))
		}
		freqs := []float64{0.25, 0.25, 0.25, 0.25}
		wts := make([]float64, d.CategoryCount)
		for i := range wts {
			wts[i] = 1 / float64(d.CategoryCount)
		}
		patW := make([]float64, d.PatternCount)
		for i := range patW {
			patW[i] = 1
		}

		site := make([]float64, d.PatternCount)
		SiteLikelihoods(site, root, wts, freqs, d, 0, d.PatternCount)
		before := RootLogLikelihood(site, patW, nil, 0, d.PatternCount)

		scale := make([]float64, d.PatternCount)
		RescalePartials(root, scale, d, 0, d.PatternCount)
		SiteLikelihoods(site, root, wts, freqs, d, 0, d.PatternCount)
		after := RootLogLikelihood(site, patW, scale, 0, d.PatternCount)

		return math.Abs(before-after) < 1e-9*(1+math.Abs(before))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRescaleZeroPattern(t *testing.T) {
	d := Dims{StateCount: 2, PatternCount: 1, CategoryCount: 1}
	partials := []float64{0, 0}
	scale := make([]float64, 1)
	RescalePartials(partials, scale, d, 0, 1)
	if scale[0] != 0 || partials[0] != 0 {
		t.Fatalf("zero pattern mishandled: scale=%v partials=%v", scale, partials)
	}
}

func TestAccumulateScaleFactors(t *testing.T) {
	cum := make([]float64, 3)
	AccumulateScaleFactors(cum, [][]float64{
		{1, 2, 3},
		{10, 20, 30},
	}, 0, 3)
	want := []float64{11, 22, 33}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cum %v want %v", cum, want)
		}
	}
}

func TestEdgeSiteLikelihoodsMatchesComposition(t *testing.T) {
	// Edge likelihood across matrix m equals rooting at a node whose
	// partials are parent[i] · (m·child)[i].
	rng := rand.New(rand.NewSource(8))
	for _, s := range []int{4, 20} {
		d := Dims{StateCount: s, PatternCount: 7, CategoryCount: 2}
		pr := newProblem[float64](rng, s, 7, 2)
		freqs := make([]float64, s)
		for i := range freqs {
			freqs[i] = 1 / float64(s)
		}
		wts := []float64{0.5, 0.5}

		edge := make([]float64, 7)
		EdgeSiteLikelihoods(edge, pr.p1, pr.p2, pr.m2, wts, freqs, d, 0, 7)

		// Compose: dest = (I·parent) ⊙ (m2·child), then integrate.
		ident := make([]float64, d.MatrixLen())
		for c := 0; c < 2; c++ {
			for i := 0; i < s; i++ {
				ident[(c*s+i)*s+i] = 1
			}
		}
		dest := make([]float64, d.PartialsLen())
		PartialsPartials(dest, pr.p1, ident, pr.p2, pr.m2, d, 0, 7)
		composed := make([]float64, 7)
		SiteLikelihoods(composed, dest, wts, freqs, d, 0, 7)

		for p := 0; p < 7; p++ {
			if math.Abs(edge[p]-composed[p]) > 1e-12 {
				t.Fatalf("s=%d pattern %d: edge %v composed %v", s, p, edge[p], composed[p])
			}
		}
	}
}

func TestDimsHelpers(t *testing.T) {
	d := Dims{StateCount: 4, PatternCount: 10, CategoryCount: 3}
	if d.PartialsLen() != 120 {
		t.Fatalf("PartialsLen %d", d.PartialsLen())
	}
	if d.MatrixLen() != 48 {
		t.Fatalf("MatrixLen %d", d.MatrixLen())
	}
}
