package kernels

import "math"

// Fused-multiply-add kernel variants, selected when a device advertises fast
// FMA support — the analogue of compiling the OpenCL kernels with
// FP_FAST_FMA / FP_FAST_FMAF defined (§VII-B1, Table IV). Accumulations run
// through math.FMA, performing the multiply and add in a single correctly
// rounded operation.

// fma is a generic fused multiply-add: round(a·b + c) in one step.
//
//beagle:noalloc
func fma[T Real](a, b, c T) T {
	return T(math.FMA(float64(a), float64(b), float64(c)))
}

// PartialsPartialsFMA is PartialsPartials with FMA accumulation.
//
//beagle:noalloc
func PartialsPartialsFMA[T Real](dest, p1, m1, p2, m2 []T, d Dims, lo, hi int) {
	s := d.StateCount
	for c := 0; c < d.CategoryCount; c++ {
		mOff := c * s * s
		for p := lo; p < hi; p++ {
			pOff := (c*d.PatternCount + p) * s
			v1 := p1[pOff : pOff+s]
			v2 := p2[pOff : pOff+s]
			out := dest[pOff : pOff+s]
			for i := 0; i < s; i++ {
				row1 := m1[mOff+i*s : mOff+(i+1)*s]
				row2 := m2[mOff+i*s : mOff+(i+1)*s]
				var sum1, sum2 T
				for j := 0; j < s; j++ {
					sum1 = fma(row1[j], v1[j], sum1)
					sum2 = fma(row2[j], v2[j], sum2)
				}
				out[i] = sum1 * sum2
			}
		}
	}
}

// PartialsPartialsEntryFMA is the GPU-style single-entry kernel with FMA
// accumulation.
//
//beagle:noalloc
func PartialsPartialsEntryFMA[T Real](dest, p1, m1, p2, m2 []T, d Dims, workItem int) {
	s := d.StateCount
	i := workItem % s
	cp := workItem / s
	c := cp / d.PatternCount
	mOff := c * s * s
	pOff := cp * s
	row1 := m1[mOff+i*s : mOff+(i+1)*s]
	row2 := m2[mOff+i*s : mOff+(i+1)*s]
	v1 := p1[pOff : pOff+s]
	v2 := p2[pOff : pOff+s]
	var sum1, sum2 T
	for j := 0; j < s; j++ {
		sum1 = fma(row1[j], v1[j], sum1)
		sum2 = fma(row2[j], v2[j], sum2)
	}
	dest[pOff+i] = sum1 * sum2
}

// StatesPartialsEntryFMA is the GPU-style single-entry states×partials
// kernel with FMA accumulation.
//
//beagle:noalloc
func StatesPartialsEntryFMA[T Real](dest []T, s1 []int32, m1 []T, p2, m2 []T, d Dims, workItem int) {
	s := d.StateCount
	i := workItem % s
	cp := workItem / s
	c := cp / d.PatternCount
	p := cp % d.PatternCount
	mOff := c * s * s
	pOff := cp * s
	state1 := int(s1[p])
	var f1 T = 1
	if state1 < s {
		f1 = m1[mOff+i*s+state1]
	}
	row2 := m2[mOff+i*s : mOff+(i+1)*s]
	v2 := p2[pOff : pOff+s]
	var sum2 T
	for j := 0; j < s; j++ {
		sum2 = fma(row2[j], v2[j], sum2)
	}
	dest[pOff+i] = f1 * sum2
}

// StatesPartialsFMA is StatesPartials with FMA accumulation.
//
//beagle:noalloc
func StatesPartialsFMA[T Real](dest []T, s1 []int32, m1 []T, p2, m2 []T, d Dims, lo, hi int) {
	s := d.StateCount
	for c := 0; c < d.CategoryCount; c++ {
		mOff := c * s * s
		for p := lo; p < hi; p++ {
			pOff := (c*d.PatternCount + p) * s
			state1 := int(s1[p])
			v2 := p2[pOff : pOff+s]
			out := dest[pOff : pOff+s]
			for i := 0; i < s; i++ {
				var f1 T = 1
				if state1 < s {
					f1 = m1[mOff+i*s+state1]
				}
				row2 := m2[mOff+i*s : mOff+(i+1)*s]
				var sum2 T
				for j := 0; j < s; j++ {
					sum2 = fma(row2[j], v2[j], sum2)
				}
				out[i] = f1 * sum2
			}
		}
	}
}
