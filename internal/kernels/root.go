package kernels

import "math"

// SiteLikelihoods computes the per-pattern site likelihoods at the root for
// patterns [lo, hi): site_p = Σ_c w_c · Σ_s π_s · L_root[c,p,s]. Results are
// accumulated in double precision regardless of kernel precision, as BEAGLE's
// integration kernels do.
//
//beagle:noalloc
func SiteLikelihoods[T Real](out []float64, root []T, catWeights, freqs []float64, d Dims, lo, hi int) {
	s := d.StateCount
	for p := lo; p < hi; p++ {
		var site float64
		for c := 0; c < d.CategoryCount; c++ {
			pOff := (c*d.PatternCount + p) * s
			v := root[pOff : pOff+s]
			var cat float64
			for i := 0; i < s; i++ {
				cat += freqs[i] * float64(v[i])
			}
			site += catWeights[c] * cat
		}
		out[p] = site
	}
}

// RootLogLikelihood reduces site likelihoods to the total log likelihood:
// Σ_p patternWeight_p · (log(site_p) + scale_p). cumScale may be nil when no
// rescaling is active; otherwise it holds the accumulated per-pattern log
// scale factors.
//
//beagle:noalloc
func RootLogLikelihood(siteLik []float64, patternWeights, cumScale []float64, lo, hi int) float64 {
	var lnL float64
	for p := lo; p < hi; p++ {
		l := math.Log(siteLik[p])
		if cumScale != nil {
			l += cumScale[p]
		}
		lnL += patternWeights[p] * l
	}
	return lnL
}

// EdgeSiteLikelihoods computes per-pattern site likelihoods across a single
// branch with transition matrix m between parent-side partials and
// child-side partials:
// site_p = Σ_c w_c · Σ_i π_i · parent[c,p,i] · Σ_j m[c,i,j]·child[c,p,j].
// This is the kernel behind CalculateEdgeLogLikelihoods.
//
//beagle:noalloc
func EdgeSiteLikelihoods[T Real](out []float64, parent, child, m []T, catWeights, freqs []float64, d Dims, lo, hi int) {
	s := d.StateCount
	for p := lo; p < hi; p++ {
		var site float64
		for c := 0; c < d.CategoryCount; c++ {
			pOff := (c*d.PatternCount + p) * s
			mOff := c * s * s
			pv := parent[pOff : pOff+s]
			cv := child[pOff : pOff+s]
			var cat float64
			for i := 0; i < s; i++ {
				row := m[mOff+i*s : mOff+(i+1)*s]
				var inner T
				for j := 0; j < s; j++ {
					inner += row[j] * cv[j]
				}
				cat += freqs[i] * float64(pv[i]) * float64(inner)
			}
			site += catWeights[c] * cat
		}
		out[p] = site
	}
}

// RescalePartials rescales partials for patterns [lo, hi) by each pattern's
// maximum entry across states and categories, storing the log of the factor
// in scale[p]. Patterns whose maximum is zero are left unscaled with a zero
// scale factor (their likelihood is genuinely zero). Rescaling keeps partials
// within floating-point range on large trees, especially in single precision.
//
//beagle:noalloc
func RescalePartials[T Real](partials []T, scale []float64, d Dims, lo, hi int) {
	s := d.StateCount
	for p := lo; p < hi; p++ {
		var max T
		for c := 0; c < d.CategoryCount; c++ {
			pOff := (c*d.PatternCount + p) * s
			for i := 0; i < s; i++ {
				if v := partials[pOff+i]; v > max {
					max = v
				}
			}
		}
		if max <= 0 {
			scale[p] = 0
			continue
		}
		inv := 1 / max
		for c := 0; c < d.CategoryCount; c++ {
			pOff := (c*d.PatternCount + p) * s
			for i := 0; i < s; i++ {
				partials[pOff+i] *= inv
			}
		}
		scale[p] = math.Log(float64(max))
	}
}

// ApplyReadScale applies previously written per-pattern log scale factors to
// freshly computed partials for patterns [lo, hi): every state and category
// entry of pattern p is divided by exp(scale[p]) — BEAGLE's fixed-scaling
// mode, where an operation reuses factors captured by an earlier rescale
// instead of computing new ones. The factors themselves are unchanged; the
// caller integrates them through the cumulative scale buffer as usual.
//
//beagle:noalloc
func ApplyReadScale[T Real](partials []T, scale []float64, d Dims, lo, hi int) {
	s := d.StateCount
	for p := lo; p < hi; p++ {
		if scale[p] == 0 {
			continue
		}
		factor := T(math.Exp(-scale[p]))
		for c := 0; c < d.CategoryCount; c++ {
			pOff := (c*d.PatternCount + p) * s
			for i := 0; i < s; i++ {
				partials[pOff+i] *= factor
			}
		}
	}
}

// AccumulateScaleFactors sums the given per-pattern log scale factor buffers
// into cum for patterns [lo, hi) — the kernel behind
// AccumulateScaleFactors in the API.
//
//beagle:noalloc
func AccumulateScaleFactors(cum []float64, factors [][]float64, lo, hi int) {
	for p := lo; p < hi; p++ {
		var sum float64
		for _, f := range factors {
			sum += f[p]
		}
		cum[p] = sum
	}
}
