package kernels

import (
	"math/rand"
	"testing"
)

// Ablation micro-benchmarks for the kernel-variant design choices DESIGN.md
// calls out: generic loop kernels vs the 4-state unrolled (SSE-style) path,
// FMA vs plain accumulation, and the x86 loop style vs the GPU per-entry
// style on a CPU.

func benchProblem(s, pat, cat int) *problem[float64] {
	return newProblem[float64](rand.New(rand.NewSource(1)), s, pat, cat)
}

func BenchmarkPartialsPartialsGeneric4State(b *testing.B) {
	pr := benchProblem(4, 4096, 4)
	dest := make([]float64, pr.d.PartialsLen())
	b.SetBytes(int64(3 * pr.d.PartialsLen() * 8))
	for i := 0; i < b.N; i++ {
		PartialsPartials(dest, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, 0, 4096)
	}
}

func BenchmarkPartialsPartialsUnrolled4State(b *testing.B) {
	pr := benchProblem(4, 4096, 4)
	dest := make([]float64, pr.d.PartialsLen())
	b.SetBytes(int64(3 * pr.d.PartialsLen() * 8))
	for i := 0; i < b.N; i++ {
		PartialsPartials4(dest, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, 0, 4096)
	}
}

func BenchmarkPartialsPartialsFMA4State(b *testing.B) {
	pr := benchProblem(4, 4096, 4)
	dest := make([]float64, pr.d.PartialsLen())
	for i := 0; i < b.N; i++ {
		PartialsPartialsFMA(dest, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, 0, 4096)
	}
}

func BenchmarkPartialsPartialsEntryStyle4State(b *testing.B) {
	// The GPU-style per-entry kernel driven item by item on a CPU: the
	// configuration Table V's reference row shows to be several-fold slower
	// than the loop kernels.
	pr := benchProblem(4, 4096, 4)
	dest := make([]float64, pr.d.PartialsLen())
	n := pr.d.PartialsLen()
	for i := 0; i < b.N; i++ {
		for w := 0; w < n; w++ {
			PartialsPartialsEntry(dest, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, w)
		}
	}
}

func BenchmarkPartialsPartialsAmino(b *testing.B) {
	pr := benchProblem(20, 512, 4)
	dest := make([]float64, pr.d.PartialsLen())
	for i := 0; i < b.N; i++ {
		PartialsPartials(dest, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, 0, 512)
	}
}

func BenchmarkPartialsPartialsCodon(b *testing.B) {
	pr := benchProblem(61, 128, 1)
	dest := make([]float64, pr.d.PartialsLen())
	for i := 0; i < b.N; i++ {
		PartialsPartials(dest, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, 0, 128)
	}
}

func BenchmarkStatesPartials4State(b *testing.B) {
	pr := benchProblem(4, 4096, 4)
	dest := make([]float64, pr.d.PartialsLen())
	for i := 0; i < b.N; i++ {
		StatesPartials4(dest, pr.s1, pr.m1, pr.p2, pr.m2, pr.d, 0, 4096)
	}
}

func BenchmarkUpdateTransitionMatrixCodon(b *testing.B) {
	e := &Eigen{StateCount: 61}
	rng := rand.New(rand.NewSource(2))
	e.Values = make([]float64, 61)
	e.Vectors = make([]float64, 61*61)
	e.InverseVectors = make([]float64, 61*61)
	for i := range e.Values {
		e.Values[i] = -rng.Float64()
	}
	for i := range e.Vectors {
		e.Vectors[i] = rng.NormFloat64()
		e.InverseVectors[i] = rng.NormFloat64()
	}
	out := make([]float64, 61*61)
	for i := 0; i < b.N; i++ {
		UpdateTransitionMatrix(out, e, 0.1, []float64{1})
	}
}

func BenchmarkRescalePartials(b *testing.B) {
	pr := benchProblem(4, 4096, 4)
	scale := make([]float64, 4096)
	for i := 0; i < b.N; i++ {
		RescalePartials(pr.p1, scale, pr.d, 0, 4096)
	}
}

func BenchmarkSiteLikelihoods(b *testing.B) {
	pr := benchProblem(4, 4096, 4)
	out := make([]float64, 4096)
	wts := []float64{0.25, 0.25, 0.25, 0.25}
	freqs := []float64{0.25, 0.25, 0.25, 0.25}
	for i := 0; i < b.N; i++ {
		SiteLikelihoods(out, pr.p1, wts, freqs, pr.d, 0, 4096)
	}
}
