package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// randomEigen builds a well-conditioned reversible-like decomposition for
// kernel tests: V orthogonal-ish via random diagonal scaling would be
// complex, so use a diagonal system with known inverse.
func diagEigen(n int, rng *rand.Rand) *Eigen {
	e := &Eigen{StateCount: n}
	e.Values = make([]float64, n)
	e.Vectors = make([]float64, n*n)
	e.InverseVectors = make([]float64, n*n)
	for i := 0; i < n; i++ {
		e.Values[i] = -rng.Float64() * 2
		e.Vectors[i*n+i] = 1
		e.InverseVectors[i*n+i] = 1
	}
	return e
}

func TestTransitionMatrixRowMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := diagEigen(4, rng)
	rates := []float64{0.5, 1.5}
	full := make([]float64, 2*16)
	rows := make([]float64, 2*16)
	UpdateTransitionMatrix(full, e, 0.3, rates)
	for item := 0; item < 2*4; item++ {
		TransitionMatrixRow(rows, e, 0.3, rates, item)
	}
	for i := range full {
		if math.Abs(full[i]-rows[i]) > 1e-14 {
			t.Fatalf("row kernel differs at %d: %v vs %v", i, rows[i], full[i])
		}
	}
	// Out-of-range work items are ignored.
	TransitionMatrixRow(rows, e, 0.3, rates, 99)
}

func TestUpdateTransitionDerivativesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := diagEigen(4, rng)
	rates := []float64{0.5, 2.0}
	const bt, h = 0.4, 1e-6
	d1 := make([]float64, 2*16)
	d2 := make([]float64, 2*16)
	UpdateTransitionDerivatives(d1, d2, e, bt, rates)

	pPlus := make([]float64, 2*16)
	pMinus := make([]float64, 2*16)
	p0 := make([]float64, 2*16)
	UpdateTransitionMatrix(pPlus, e, bt+h, rates)
	UpdateTransitionMatrix(pMinus, e, bt-h, rates)
	UpdateTransitionMatrix(p0, e, bt, rates)
	for i := range d1 {
		num1 := (pPlus[i] - pMinus[i]) / (2 * h)
		num2 := (pPlus[i] - 2*p0[i] + pMinus[i]) / (h * h)
		if math.Abs(d1[i]-num1) > 1e-7 {
			t.Fatalf("dP/dt mismatch at %d: %v vs %v", i, d1[i], num1)
		}
		if math.Abs(d2[i]-num2) > 1e-3 {
			t.Fatalf("d²P/dt² mismatch at %d: %v vs %v", i, d2[i], num2)
		}
	}
	// nil second-derivative output is allowed.
	UpdateTransitionDerivatives(d1, nil, e, bt, rates)
}

func TestEdgeSiteDerivativesMatchNumericLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := Dims{StateCount: 4, PatternCount: 9, CategoryCount: 2}
	pr := newProblem[float64](rng, 4, 9, 2)
	e := diagEigen(4, rng)
	freqs := []float64{0.25, 0.25, 0.25, 0.25}
	wts := []float64{0.5, 0.5}
	rates := []float64{0.7, 1.3}
	const bt, h = 0.35, 1e-6

	m := make([]float64, d.MatrixLen())
	m1 := make([]float64, d.MatrixLen())
	m2 := make([]float64, d.MatrixLen())
	UpdateTransitionMatrix(m, e, bt, rates)
	UpdateTransitionDerivatives(m1, m2, e, bt, rates)

	siteL := make([]float64, 9)
	siteD1 := make([]float64, 9)
	siteD2 := make([]float64, 9)
	EdgeSiteDerivatives(siteL, siteD1, siteD2, pr.p1, pr.p2, m, m1, m2, wts, freqs, d, 0, 9)

	// Numeric per-pattern derivatives from EdgeSiteLikelihoods at bt ± h.
	mP := make([]float64, d.MatrixLen())
	mM := make([]float64, d.MatrixLen())
	UpdateTransitionMatrix(mP, e, bt+h, rates)
	UpdateTransitionMatrix(mM, e, bt-h, rates)
	lP := make([]float64, 9)
	lM := make([]float64, 9)
	l0 := make([]float64, 9)
	EdgeSiteLikelihoods(lP, pr.p1, pr.p2, mP, wts, freqs, d, 0, 9)
	EdgeSiteLikelihoods(lM, pr.p1, pr.p2, mM, wts, freqs, d, 0, 9)
	EdgeSiteLikelihoods(l0, pr.p1, pr.p2, m, wts, freqs, d, 0, 9)

	for p := 0; p < 9; p++ {
		if math.Abs(siteL[p]-l0[p]) > 1e-12 {
			t.Fatalf("site likelihood mismatch at %d", p)
		}
		num1 := (lP[p] - lM[p]) / (2 * h)
		if math.Abs(siteD1[p]-num1) > 1e-6*(1+math.Abs(num1)) {
			t.Fatalf("site d1 mismatch at %d: %v vs %v", p, siteD1[p], num1)
		}
	}

	// Reduction identities.
	patW := make([]float64, 9)
	for i := range patW {
		patW[i] = 1 + float64(i%3)
	}
	d1, d2 := ReduceEdgeDerivatives(siteL, siteD1, siteD2, patW, 0, 9)
	var wantD1 float64
	for p := 0; p < 9; p++ {
		wantD1 += patW[p] * siteD1[p] / siteL[p]
	}
	if math.Abs(d1-wantD1) > 1e-12 {
		t.Fatalf("ReduceEdgeDerivatives d1 %v want %v", d1, wantD1)
	}
	if math.IsNaN(d2) {
		t.Fatal("d2 is NaN")
	}
	// First-derivative-only reduction.
	d1b, d2b := ReduceEdgeDerivatives(siteL, siteD1, nil, patW, 0, 9)
	if d1b != d1 || d2b != 0 {
		t.Fatalf("nil-d2 reduction gave %v %v", d1b, d2b)
	}
}

func TestFMAEntryKernelsMatchPlainEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, s := range []int{4, 20} {
		pr := newProblem[float64](rng, s, 7, 2)
		n := pr.d.PartialsLen()
		plain := make([]float64, n)
		fmaOut := make([]float64, n)
		for w := 0; w < n; w++ {
			PartialsPartialsEntry(plain, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, w)
			PartialsPartialsEntryFMA(fmaOut, pr.p1, pr.m1, pr.p2, pr.m2, pr.d, w)
		}
		if d := maxDiff(plain, fmaOut); d > 1e-12 {
			t.Fatalf("s=%d: FMA entry kernel differs by %v", s, d)
		}
		plainSP := make([]float64, n)
		fmaSP := make([]float64, n)
		for w := 0; w < n; w++ {
			StatesPartialsEntry(plainSP, pr.s1, pr.m1, pr.p2, pr.m2, pr.d, w)
			StatesPartialsEntryFMA(fmaSP, pr.s1, pr.m1, pr.p2, pr.m2, pr.d, w)
		}
		if d := maxDiff(plainSP, fmaSP); d > 1e-12 {
			t.Fatalf("s=%d: FMA states-partials entry kernel differs by %v", s, d)
		}
	}
}
