// Package kernels is the single shared kernel code base of the library — the
// Go analogue of the paper's one set of CUDA/OpenCL kernels with framework
// keywords resolved at the preprocessor stage. Every implementation (CPU
// serial, CPU threaded, and the simulated CUDA and OpenCL devices) executes
// these kernel bodies; what differs between implementations is only how work
// is partitioned and dispatched, exactly as in BEAGLE.
//
// Kernels are generic over the floating-point format (float32/float64),
// mirroring BEAGLE's per-precision kernel generation, and exist in the
// variants the paper describes:
//
//   - generic state-count kernels with an inner loop over states, the
//     OpenCL-x86 style where each work-item does more work (§VII-B2);
//   - work-item kernels computing a single (pattern, state) entry, the GPU
//     style with one thread per partials entry (Fig. 2);
//   - fused-multiply-add variants used when a device advertises fast FMA
//     (§VII-B1, Table IV);
//   - 4-state unrolled kernels, the analogue of the SSE code path.
//
// Buffer layouts (identical everywhere):
//
//	partials:  [category][pattern][state]   idx = (c·P + p)·S + s
//	matrices:  [category][parent][child]    idx = (c·S + i)·S + j
//	tipStates: [pattern] int32; a value ≥ S denotes full ambiguity (gap)
package kernels

// Real is the set of floating-point formats a kernel can be instantiated
// for, the analogue of BEAGLE's single/double precision kernel builds.
type Real interface {
	~float32 | ~float64
}

// Dims carries the problem geometry shared by all kernels.
type Dims struct {
	StateCount    int // S: 4 nucleotide, 20 amino acid, 61 codon
	PatternCount  int // P: unique site patterns
	CategoryCount int // C: rate categories
}

// PartialsLen returns the length of a partials buffer for these dimensions.
func (d Dims) PartialsLen() int { return d.CategoryCount * d.PatternCount * d.StateCount }

// MatrixLen returns the length of a transition-matrix buffer (all
// categories) for these dimensions.
func (d Dims) MatrixLen() int { return d.CategoryCount * d.StateCount * d.StateCount }
