package kernels

// PartialsPartials computes destination partials for patterns [lo, hi) from
// two child partials buffers and their transition matrices. This is the
// x86-style kernel: each (category, pattern) iteration loops over the full
// state space (§VII-B2).
//
//beagle:noalloc
func PartialsPartials[T Real](dest, p1, m1, p2, m2 []T, d Dims, lo, hi int) {
	s := d.StateCount
	for c := 0; c < d.CategoryCount; c++ {
		mOff := c * s * s
		for p := lo; p < hi; p++ {
			pOff := (c*d.PatternCount + p) * s
			v1 := p1[pOff : pOff+s]
			v2 := p2[pOff : pOff+s]
			out := dest[pOff : pOff+s]
			for i := 0; i < s; i++ {
				row1 := m1[mOff+i*s : mOff+(i+1)*s]
				row2 := m2[mOff+i*s : mOff+(i+1)*s]
				var sum1, sum2 T
				for j := 0; j < s; j++ {
					sum1 += row1[j] * v1[j]
					sum2 += row2[j] * v2[j]
				}
				out[i] = sum1 * sum2
			}
		}
	}
}

// StatesPartials computes destination partials when the first child is a
// compact-state tip and the second holds partials.
//
//beagle:noalloc
func StatesPartials[T Real](dest []T, s1 []int32, m1 []T, p2, m2 []T, d Dims, lo, hi int) {
	s := d.StateCount
	for c := 0; c < d.CategoryCount; c++ {
		mOff := c * s * s
		for p := lo; p < hi; p++ {
			pOff := (c*d.PatternCount + p) * s
			state1 := int(s1[p])
			v2 := p2[pOff : pOff+s]
			out := dest[pOff : pOff+s]
			for i := 0; i < s; i++ {
				var f1 T = 1
				if state1 < s {
					f1 = m1[mOff+i*s+state1]
				}
				row2 := m2[mOff+i*s : mOff+(i+1)*s]
				var sum2 T
				for j := 0; j < s; j++ {
					sum2 += row2[j] * v2[j]
				}
				out[i] = f1 * sum2
			}
		}
	}
}

// StatesStates computes destination partials when both children are
// compact-state tips.
//
//beagle:noalloc
func StatesStates[T Real](dest []T, s1 []int32, m1 []T, s2 []int32, m2 []T, d Dims, lo, hi int) {
	s := d.StateCount
	for c := 0; c < d.CategoryCount; c++ {
		mOff := c * s * s
		for p := lo; p < hi; p++ {
			pOff := (c*d.PatternCount + p) * s
			state1 := int(s1[p])
			state2 := int(s2[p])
			out := dest[pOff : pOff+s]
			for i := 0; i < s; i++ {
				var f1, f2 T = 1, 1
				if state1 < s {
					f1 = m1[mOff+i*s+state1]
				}
				if state2 < s {
					f2 = m2[mOff+i*s+state2]
				}
				out[i] = f1 * f2
			}
		}
	}
}

// PartialsPartialsEntry computes the single destination entry identified by
// workItem = ((c·P)+p)·S + i. This is the GPU-style kernel with one logical
// thread per partials entry (Fig. 2); the device framework launches it over
// a global work size of C·P·S.
//
//beagle:noalloc
func PartialsPartialsEntry[T Real](dest, p1, m1, p2, m2 []T, d Dims, workItem int) {
	s := d.StateCount
	i := workItem % s
	cp := workItem / s // c·P + p
	c := cp / d.PatternCount
	mOff := c * s * s
	pOff := cp * s
	row1 := m1[mOff+i*s : mOff+(i+1)*s]
	row2 := m2[mOff+i*s : mOff+(i+1)*s]
	v1 := p1[pOff : pOff+s]
	v2 := p2[pOff : pOff+s]
	var sum1, sum2 T
	for j := 0; j < s; j++ {
		sum1 += row1[j] * v1[j]
		sum2 += row2[j] * v2[j]
	}
	dest[pOff+i] = sum1 * sum2
}

// StatesPartialsEntry is the GPU-style single-entry variant of
// StatesPartials.
//
//beagle:noalloc
func StatesPartialsEntry[T Real](dest []T, s1 []int32, m1 []T, p2, m2 []T, d Dims, workItem int) {
	s := d.StateCount
	i := workItem % s
	cp := workItem / s
	c := cp / d.PatternCount
	p := cp % d.PatternCount
	mOff := c * s * s
	pOff := cp * s
	state1 := int(s1[p])
	var f1 T = 1
	if state1 < s {
		f1 = m1[mOff+i*s+state1]
	}
	row2 := m2[mOff+i*s : mOff+(i+1)*s]
	v2 := p2[pOff : pOff+s]
	var sum2 T
	for j := 0; j < s; j++ {
		sum2 += row2[j] * v2[j]
	}
	dest[pOff+i] = f1 * sum2
}

// StatesStatesEntry is the GPU-style single-entry variant of StatesStates.
//
//beagle:noalloc
func StatesStatesEntry[T Real](dest []T, s1 []int32, m1 []T, s2 []int32, m2 []T, d Dims, workItem int) {
	s := d.StateCount
	i := workItem % s
	cp := workItem / s
	c := cp / d.PatternCount
	p := cp % d.PatternCount
	mOff := c * s * s
	state1 := int(s1[p])
	state2 := int(s2[p])
	var f1, f2 T = 1, 1
	if state1 < s {
		f1 = m1[mOff+i*s+state1]
	}
	if state2 < s {
		f2 = m2[mOff+i*s+state2]
	}
	dest[cp*s+i] = f1 * f2
}
