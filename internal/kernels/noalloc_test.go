package kernels

import (
	"math/rand"
	"testing"
)

// TestKernelsAllocateNothing pins the //beagle:noalloc contract at runtime
// for every exported annotated kernel. The noalloc analyzer proves the
// absence of allocating syntax; this guard catches what escape analysis
// decides behind the syntax (a spilled slice header, a devirtualization
// regression). The allocguard analyzer fails the build if a kernel loses its
// entry here.
func TestKernelsAllocateNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pr := newProblem[float64](rng, 4, 16, 2)
	d := pr.d
	dest := make([]float64, d.PartialsLen())
	site := make([]float64, d.PatternCount)
	scale := make([]float64, d.PatternCount)
	cum := make([]float64, d.PatternCount)
	factors := [][]float64{scale}
	weights := []float64{0.5, 0.5}
	freqs := []float64{0.25, 0.25, 0.25, 0.25}
	patternWeights := make([]float64, d.PatternCount)
	for i := range patternWeights {
		patternWeights[i] = 1
	}

	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		PartialsPartials(dest, pr.p1, pr.m1, pr.p2, pr.m2, d, 0, d.PatternCount)
		StatesPartials(dest, pr.s1, pr.m1, pr.p2, pr.m2, d, 0, d.PatternCount)
		StatesStates(dest, pr.s1, pr.m1, pr.s2, pr.m2, d, 0, d.PatternCount)
		PartialsPartialsEntry(dest, pr.p1, pr.m1, pr.p2, pr.m2, d, 5)
		StatesPartialsEntry(dest, pr.s1, pr.m1, pr.p2, pr.m2, d, 5)
		StatesStatesEntry(dest, pr.s1, pr.m1, pr.s2, pr.m2, d, 5)
		PartialsPartials4(dest, pr.p1, pr.m1, pr.p2, pr.m2, d, 0, d.PatternCount)
		StatesPartials4(dest, pr.s1, pr.m1, pr.p2, pr.m2, d, 0, d.PatternCount)
		StatesStates4(dest, pr.s1, pr.m1, pr.s2, pr.m2, d, 0, d.PatternCount)
		PartialsPartialsFMA(dest, pr.p1, pr.m1, pr.p2, pr.m2, d, 0, d.PatternCount)
		StatesPartialsFMA(dest, pr.s1, pr.m1, pr.p2, pr.m2, d, 0, d.PatternCount)
		PartialsPartialsEntryFMA(dest, pr.p1, pr.m1, pr.p2, pr.m2, d, 5)
		StatesPartialsEntryFMA(dest, pr.s1, pr.m1, pr.p2, pr.m2, d, 5)
		SiteLikelihoods(site, dest, weights, freqs, d, 0, d.PatternCount)
		EdgeSiteLikelihoods(site, pr.p1, pr.p2, pr.m1, weights, freqs, d, 0, d.PatternCount)
		RescalePartials(dest, scale, d, 0, d.PatternCount)
		ApplyReadScale(dest, scale, d, 0, d.PatternCount)
		AccumulateScaleFactors(cum, factors, 0, d.PatternCount)
		sink = RootLogLikelihood(site, patternWeights, cum, 0, d.PatternCount)
	})
	if allocs != 0 {
		t.Errorf("kernel sweep allocates %.1f times per run, want 0", allocs)
	}
	_ = sink
}
