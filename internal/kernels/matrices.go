package kernels

import "math"

// Eigen is the flattened spectral decomposition of a rate matrix, in the
// form accepted by the library's SetEigenDecomposition: Q = V·diag(λ)·V⁻¹.
// Decompositions are always held in double precision regardless of the
// kernel precision, as BEAGLE does.
type Eigen struct {
	StateCount     int
	Values         []float64 // λ, length S
	Vectors        []float64 // V, row-major S×S
	InverseVectors []float64 // V⁻¹, row-major S×S
}

// UpdateTransitionDerivatives fills d1 and (when non-nil) d2 with the first
// and second derivatives of the transition probability matrices with respect
// to the edge length, for every rate category:
// dP/dt = V·(rΛ)·exp(Λrt)·V⁻¹ and d²P/dt² = V·(rΛ)²·exp(Λrt)·V⁻¹.
// These feed CalculateEdgeLogLikelihoods' derivative outputs, which
// maximum-likelihood programs use for Newton-style branch optimization.
func UpdateTransitionDerivatives[T Real](d1, d2 []T, e *Eigen, edgeLength float64, catRates []float64) {
	s := e.StateCount
	exp := make([]float64, s)
	for c, r := range catRates {
		t := edgeLength * r
		for k, v := range e.Values {
			exp[k] = math.Exp(v * t)
		}
		base := c * s * s
		for i := 0; i < s; i++ {
			vi := e.Vectors[i*s : (i+1)*s]
			for j := 0; j < s; j++ {
				var sum1, sum2 float64
				for k := 0; k < s; k++ {
					lam := e.Values[k] * r
					w := vi[k] * exp[k] * e.InverseVectors[k*s+j]
					sum1 += lam * w
					sum2 += lam * lam * w
				}
				d1[base+i*s+j] = T(sum1)
				if d2 != nil {
					d2[base+i*s+j] = T(sum2)
				}
			}
		}
	}
}

// EdgeSiteDerivatives computes, for patterns [lo, hi), the per-pattern site
// likelihood and its first and second derivatives with respect to the branch
// length, given the branch's transition matrix and its derivatives. out
// slices may alias each other only if identical; outD2/md2 may be nil when
// second derivatives are not requested.
func EdgeSiteDerivatives[T Real](outL, outD1, outD2 []float64, parent, child, m, md1, md2 []T,
	catWeights, freqs []float64, d Dims, lo, hi int) {
	s := d.StateCount
	for p := lo; p < hi; p++ {
		var siteL, siteD1, siteD2 float64
		for c := 0; c < d.CategoryCount; c++ {
			pOff := (c*d.PatternCount + p) * s
			mOff := c * s * s
			pv := parent[pOff : pOff+s]
			cv := child[pOff : pOff+s]
			var catL, catD1, catD2 float64
			for i := 0; i < s; i++ {
				row := m[mOff+i*s : mOff+(i+1)*s]
				row1 := md1[mOff+i*s : mOff+(i+1)*s]
				var inner, inner1, inner2 T
				for j := 0; j < s; j++ {
					inner += row[j] * cv[j]
					inner1 += row1[j] * cv[j]
				}
				if md2 != nil {
					row2 := md2[mOff+i*s : mOff+(i+1)*s]
					for j := 0; j < s; j++ {
						inner2 += row2[j] * cv[j]
					}
				}
				w := freqs[i] * float64(pv[i])
				catL += w * float64(inner)
				catD1 += w * float64(inner1)
				catD2 += w * float64(inner2)
			}
			siteL += catWeights[c] * catL
			siteD1 += catWeights[c] * catD1
			siteD2 += catWeights[c] * catD2
		}
		outL[p] = siteL
		outD1[p] = siteD1
		if outD2 != nil {
			outD2[p] = siteD2
		}
	}
}

// ReduceEdgeDerivatives folds per-pattern site likelihoods and derivatives
// into the total log-likelihood derivatives:
// d lnL/dt = Σ w_p·L'_p/L_p and d² lnL/dt² = Σ w_p·(L”_p/L_p − (L'_p/L_p)²).
func ReduceEdgeDerivatives(siteL, siteD1, siteD2, patternWeights []float64, lo, hi int) (d1, d2 float64) {
	for p := lo; p < hi; p++ {
		r := siteD1[p] / siteL[p]
		d1 += patternWeights[p] * r
		if siteD2 != nil {
			d2 += patternWeights[p] * (siteD2[p]/siteL[p] - r*r)
		}
	}
	return d1, d2
}

// TransitionMatrixRow computes one row of one category's transition matrix;
// workItem = c·S + i. This is the device-side variant, letting transition
// matrices be computed on the accelerator so branch-length changes move no
// data across the host↔device boundary (§IV-F). The per-item exponentials
// are recomputed redundantly, as a GPU kernel would.
func TransitionMatrixRow[T Real](out []T, e *Eigen, edgeLength float64, catRates []float64, workItem int) {
	s := e.StateCount
	c := workItem / s
	i := workItem % s
	if c >= len(catRates) {
		return
	}
	t := edgeLength * catRates[c]
	base := c * s * s
	vi := e.Vectors[i*s : (i+1)*s]
	// Per-item exponential staging (each work-item computes its own copy,
	// as a GPU kernel would into registers or local memory).
	expv := make([]float64, s)
	for k := 0; k < s; k++ {
		expv[k] = math.Exp(e.Values[k] * t)
	}
	for j := 0; j < s; j++ {
		var sum float64
		for k := 0; k < s; k++ {
			sum += vi[k] * expv[k] * e.InverseVectors[k*s+j]
		}
		if sum < 0 {
			sum = 0
		}
		out[base+i*s+j] = T(sum)
	}
}

// UpdateTransitionMatrix fills out (length C·S·S) with the transition
// probability matrices P(rate_c · edgeLength) for every rate category — the
// kernel behind the library's UpdateTransitionMatrices, which the paper
// notes also runs on the accelerator to minimize host↔device transfers.
// Small negative entries arising from round-off are clamped to zero.
func UpdateTransitionMatrix[T Real](out []T, e *Eigen, edgeLength float64, catRates []float64) {
	s := e.StateCount
	tmp := make([]float64, s) // exp(λ_k·t·r) scratch
	for c, r := range catRates {
		t := edgeLength * r
		for k, v := range e.Values {
			tmp[k] = math.Exp(v * t)
		}
		base := c * s * s
		for i := 0; i < s; i++ {
			vi := e.Vectors[i*s : (i+1)*s]
			for j := 0; j < s; j++ {
				var sum float64
				for k := 0; k < s; k++ {
					sum += vi[k] * tmp[k] * e.InverseVectors[k*s+j]
				}
				if sum < 0 {
					sum = 0
				}
				out[base+i*s+j] = T(sum)
			}
		}
	}
}
