package substmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gobeagle/internal/linalg"
)

// checkRateMatrixInvariants verifies the structural invariants any normalized
// reversible rate matrix must satisfy.
func checkRateMatrixInvariants(t *testing.T, m *Model) {
	t.Helper()
	n := m.StateCount
	if m.Q.Rows != n || m.Q.Cols != n {
		t.Fatalf("Q shape %dx%d for %d states", m.Q.Rows, m.Q.Cols, n)
	}
	// Rows sum to zero.
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			v := m.Q.At(i, j)
			if i != j && v < 0 {
				t.Fatalf("negative off-diagonal rate q[%d,%d]=%v", i, j, v)
			}
			s += v
		}
		if math.Abs(s) > 1e-10 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
	// Detailed balance: π_i q_ij == π_j q_ji.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			lhs := m.Frequencies[i] * m.Q.At(i, j)
			rhs := m.Frequencies[j] * m.Q.At(j, i)
			if math.Abs(lhs-rhs) > 1e-12 {
				t.Fatalf("detailed balance violated at %d,%d: %v vs %v", i, j, lhs, rhs)
			}
		}
	}
	// Normalization: −Σ π_i q_ii == 1.
	var mean float64
	for i := 0; i < n; i++ {
		mean -= m.Frequencies[i] * m.Q.At(i, i)
	}
	if math.Abs(mean-1) > 1e-10 {
		t.Fatalf("mean rate %v, want 1", mean)
	}
}

func TestJC69(t *testing.T) {
	m := NewJC69()
	checkRateMatrixInvariants(t, m)
	// All off-diagonal rates equal 1/3 after normalization.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && math.Abs(m.Q.At(i, j)-1.0/3) > 1e-12 {
				t.Fatalf("JC69 rate q[%d,%d]=%v want 1/3", i, j, m.Q.At(i, j))
			}
		}
	}
}

func TestJC69TransitionProbabilityClosedForm(t *testing.T) {
	// JC69 has the closed form p_same = 1/4 + 3/4·exp(-4t/3).
	m := NewJC69()
	ed, err := m.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 16)
	for _, bt := range []float64{0.05, 0.2, 1.0, 3.0} {
		if err := ed.TransitionMatrix(bt, p); err != nil {
			t.Fatal(err)
		}
		same := 0.25 + 0.75*math.Exp(-4*bt/3)
		diff := 0.25 - 0.25*math.Exp(-4*bt/3)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := diff
				if i == j {
					want = same
				}
				if math.Abs(p[i*4+j]-want) > 1e-10 {
					t.Fatalf("t=%v P[%d,%d]=%v want %v", bt, i, j, p[i*4+j], want)
				}
			}
		}
	}
}

func TestK80(t *testing.T) {
	m, err := NewK80(2.5)
	if err != nil {
		t.Fatal(err)
	}
	checkRateMatrixInvariants(t, m)
	// Transitions (A↔G, C↔T) are kappa times transversions.
	ratio := m.Q.At(BaseA, BaseG) / m.Q.At(BaseA, BaseC)
	if math.Abs(ratio-2.5) > 1e-12 {
		t.Fatalf("transition/transversion ratio %v want 2.5", ratio)
	}
	if _, err := NewK80(0); err == nil {
		t.Fatal("expected error for kappa=0")
	}
}

func TestHKY85(t *testing.T) {
	freqs := []float64{0.35, 0.15, 0.2, 0.3}
	m, err := NewHKY85(3, freqs)
	if err != nil {
		t.Fatal(err)
	}
	checkRateMatrixInvariants(t, m)
	// q_AG / π_G should equal kappa times q_AC / π_C.
	r1 := m.Q.At(BaseA, BaseG) / freqs[BaseG]
	r2 := m.Q.At(BaseA, BaseC) / freqs[BaseC]
	if math.Abs(r1/r2-3) > 1e-12 {
		t.Fatalf("kappa recovered as %v want 3", r1/r2)
	}
	if _, err := NewHKY85(2, []float64{0.5, 0.5}); err == nil {
		t.Fatal("expected error for wrong frequency count")
	}
	if _, err := NewHKY85(-1, freqs); err == nil {
		t.Fatal("expected error for negative kappa")
	}
}

func TestGTRReducesToJC(t *testing.T) {
	m, err := NewGTR([]float64{1, 1, 1, 1, 1, 1}, []float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	jc := NewJC69()
	d, err := linalg.MaxAbsDiff(m.Q, jc.Q)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Fatalf("uniform GTR differs from JC69 by %v", d)
	}
}

func TestGTRInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rates := make([]float64, 6)
		for i := range rates {
			rates[i] = 0.1 + rng.Float64()*5
		}
		freqs := randomFreqs(rng, 4)
		m, err := NewGTR(rates, freqs)
		if err != nil {
			return false
		}
		// Detailed balance and normalization.
		var mean float64
		for i := 0; i < 4; i++ {
			mean -= m.Frequencies[i] * m.Q.At(i, i)
			for j := i + 1; j < 4; j++ {
				if math.Abs(m.Frequencies[i]*m.Q.At(i, j)-m.Frequencies[j]*m.Q.At(j, i)) > 1e-12 {
					return false
				}
			}
		}
		return math.Abs(mean-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGTRErrors(t *testing.T) {
	if _, err := NewGTR([]float64{1, 2, 3}, []float64{0.25, 0.25, 0.25, 0.25}); err == nil {
		t.Fatal("expected error for wrong rate count")
	}
	if _, err := NewGTR([]float64{1, 1, 1, 1, 1, 1}, []float64{0.3, 0.3, 0.3, 0.3}); err == nil {
		t.Fatal("expected error for frequencies not summing to 1")
	}
	if _, err := NewGTR([]float64{1, 1, -1, 1, 1, 1}, []float64{0.25, 0.25, 0.25, 0.25}); err == nil {
		t.Fatal("expected error for negative exchangeability")
	}
}

func randomFreqs(rng *rand.Rand, n int) []float64 {
	f := make([]float64, n)
	var sum float64
	for i := range f {
		f[i] = 0.05 + rng.Float64()
		sum += f[i]
	}
	for i := range f {
		f[i] /= sum
	}
	return f
}

func TestPoissonAA(t *testing.T) {
	m, err := NewPoissonAA(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.StateCount != 20 {
		t.Fatalf("state count %d", m.StateCount)
	}
	checkRateMatrixInvariants(t, m)
	if _, err := NewPoissonAA(make([]float64, 5)); err == nil {
		t.Fatal("expected error for wrong frequency count")
	}
}

func TestGTRAA(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rates := make([]float64, 190)
	for i := range rates {
		rates[i] = 0.1 + rng.Float64()
	}
	m, err := NewGTRAA(rates, randomFreqs(rng, 20))
	if err != nil {
		t.Fatal(err)
	}
	checkRateMatrixInvariants(t, m)
	// Eigendecomposition must reconstruct Q.
	ed, err := m.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	lam := linalg.NewMatrix(20, 20)
	for i, v := range ed.Values {
		lam.Data[i*20+i] = v
	}
	vl, err := linalg.Mul(ed.Vectors, lam)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := linalg.Mul(vl, ed.InverseVectors)
	if err != nil {
		t.Fatal(err)
	}
	d, err := linalg.MaxAbsDiff(recon, m.Q)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-8 {
		t.Fatalf("eigen reconstruction error %v", d)
	}
}

func TestSiteRates(t *testing.T) {
	sr := SingleRate()
	if len(sr.Rates) != 1 || sr.Rates[0] != 1 || sr.Weights[0] != 1 {
		t.Fatalf("SingleRate: %+v", sr)
	}
	g, err := GammaRates(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rates) != 4 || len(g.Weights) != 4 {
		t.Fatalf("GammaRates lengths: %+v", g)
	}
	var mean float64
	for i := range g.Rates {
		mean += g.Rates[i] * g.Weights[i]
	}
	if math.Abs(mean-1) > 1e-9 {
		t.Fatalf("gamma rates mean %v", mean)
	}
	if _, err := GammaRates(-1, 4); err == nil {
		t.Fatal("expected error for negative alpha")
	}
}

func TestNewGeneralReversibleErrors(t *testing.T) {
	if _, err := NewGeneralReversible("x", nil, []float64{1}); err == nil {
		t.Fatal("expected error for single state")
	}
	if _, err := NewGeneralReversible("x", []float64{1}, []float64{0.5, 0.25, 0.25}); err == nil {
		t.Fatal("expected error for wrong rate count")
	}
	if _, err := NewGeneralReversible("x", []float64{1}, []float64{0.5, -0.5}); err == nil {
		t.Fatal("expected error for negative frequency")
	}
}
