package substmodel

import (
	"errors"
	"fmt"

	"gobeagle/internal/linalg"
)

// CodonStates is the number of sense codons under the standard genetic code
// (64 triplets minus the three stop codons TAA, TAG, TGA), the state count of
// the paper's "codon model" benchmarks.
const CodonStates = 61

// geneticCode maps each of the 64 codons (index 16·b1 + 4·b2 + b3 with bases
// ordered A=0, C=1, G=2, T=3) to its amino acid one-letter code, with '*' for
// stop codons, under the standard genetic code.
const geneticCode = "KNKNTTTTRSRSIIMI" + // AAx ACx AGx ATx
	"QHQHPPPPRRRRLLLL" + // CAx CCx CGx CTx
	"EDEDAAAAGGGGVVVV" + // GAx GCx GGx GTx
	"*Y*YSSSS*CWCLFLF" //   TAx TCx TGx TTx

// senseCodons lists the 61 codon indices (0..63) that are not stop codons, in
// ascending order; this is the state ordering of the codon model.
var senseCodons = buildSenseCodons()

func buildSenseCodons() []int {
	s := make([]int, 0, CodonStates)
	for c := 0; c < 64; c++ {
		if geneticCode[c] != '*' {
			s = append(s, c)
		}
	}
	return s
}

// CodonString returns the triplet for sense-codon state i (0..60), e.g. "ATG".
func CodonString(i int) string {
	c := senseCodons[i]
	const bases = "ACGT"
	return string([]byte{bases[c>>4&3], bases[c>>2&3], bases[c&3]})
}

// CodonAminoAcid returns the one-letter amino-acid code for sense-codon
// state i.
func CodonAminoAcid(i int) byte { return geneticCode[senseCodons[i]] }

// codonDiff classifies the difference between two codons. It returns the
// number of differing positions; when exactly one position differs it also
// reports the two differing bases.
func codonDiff(a, b int) (ndiff int, baseA, baseB int) {
	for shift := 4; shift >= 0; shift -= 2 {
		x := a >> shift & 3
		y := b >> shift & 3
		if x != y {
			ndiff++
			baseA, baseB = x, y
		}
	}
	return ndiff, baseA, baseB
}

// NewGY94 returns a Goldman–Yang (1994)–style codon model with
// transition/transversion ratio kappa, nonsynonymous/synonymous ratio omega,
// and stationary codon frequencies over the 61 sense codons (nil for
// uniform). Substitutions changing more than one codon position have rate 0.
func NewGY94(kappa, omega float64, freqs []float64) (*Model, error) {
	if kappa <= 0 {
		return nil, errors.New("substmodel: kappa must be positive")
	}
	if omega <= 0 {
		return nil, errors.New("substmodel: omega must be positive")
	}
	if freqs == nil {
		freqs = make([]float64, CodonStates)
		for i := range freqs {
			freqs[i] = 1.0 / CodonStates
		}
	}
	if len(freqs) != CodonStates {
		return nil, fmt.Errorf("substmodel: codon model needs %d frequencies, got %d", CodonStates, len(freqs))
	}
	if err := checkFrequencies(freqs); err != nil {
		return nil, err
	}
	n := CodonStates
	q := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		ci := senseCodons[i]
		for j := i + 1; j < n; j++ {
			cj := senseCodons[j]
			nd, x, y := codonDiff(ci, cj)
			if nd != 1 {
				continue
			}
			rate := 1.0
			if isTransition(x, y) {
				rate = kappa
			}
			if geneticCode[ci] != geneticCode[cj] {
				rate *= omega
			}
			q.Data[i*n+j] = rate * freqs[j]
			q.Data[j*n+i] = rate * freqs[i]
		}
	}
	normalizeQ(q, freqs)
	f := make([]float64, n)
	copy(f, freqs)
	return &Model{Name: "GY94", StateCount: n, Frequencies: f, Q: q}, nil
}
