package substmodel

import "fmt"

// AminoAcidStates is the number of states in a protein model, ordered
// alphabetically by one-letter code: A C D E F G H I K L M N P Q R S T V W Y.
const AminoAcidStates = 20

// AminoAcidAlphabet lists the one-letter codes in state order.
const AminoAcidAlphabet = "ACDEFGHIKLMNPQRSTVWY"

// NewPoissonAA returns the Poisson amino-acid model (equal exchangeabilities;
// the protein analogue of JC69) with the given stationary frequencies, or
// uniform frequencies when freqs is nil.
func NewPoissonAA(freqs []float64) (*Model, error) {
	if freqs == nil {
		freqs = make([]float64, AminoAcidStates)
		for i := range freqs {
			freqs[i] = 1.0 / AminoAcidStates
		}
	}
	if len(freqs) != AminoAcidStates {
		return nil, fmt.Errorf("substmodel: amino-acid model needs 20 frequencies, got %d", len(freqs))
	}
	rates := make([]float64, AminoAcidStates*(AminoAcidStates-1)/2)
	for i := range rates {
		rates[i] = 1
	}
	m, err := NewGeneralReversible("Poisson", rates, freqs)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// NewGTRAA returns a general time-reversible amino-acid model from 190
// exchangeabilities (upper triangle, row-major over the state order above)
// and 20 frequencies. Empirical matrices such as WAG or LG can be loaded
// through this constructor.
func NewGTRAA(rates, freqs []float64) (*Model, error) {
	if len(freqs) != AminoAcidStates {
		return nil, fmt.Errorf("substmodel: amino-acid model needs 20 frequencies, got %d", len(freqs))
	}
	m, err := NewGeneralReversible("GTR20", rates, freqs)
	if err != nil {
		return nil, err
	}
	return m, nil
}
