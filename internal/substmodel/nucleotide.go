package substmodel

import (
	"errors"
	"fmt"
)

// NucleotideStates is the number of states in a DNA model, ordered A, C, G, T.
const NucleotideStates = 4

// Nucleotide state indices.
const (
	BaseA = 0
	BaseC = 1
	BaseG = 2
	BaseT = 3
)

// isTransition reports whether a substitution between two nucleotide states
// is a transition (purine↔purine or pyrimidine↔pyrimidine).
func isTransition(i, j int) bool {
	return (i == BaseA && j == BaseG) || (i == BaseG && j == BaseA) ||
		(i == BaseC && j == BaseT) || (i == BaseT && j == BaseC)
}

// NewJC69 returns the Jukes–Cantor (1969) model: equal frequencies and equal
// exchangeabilities.
func NewJC69() *Model {
	m, err := NewGeneralReversible("JC69",
		[]float64{1, 1, 1, 1, 1, 1},
		[]float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		//beagle:allow panic literal JC69 rates and frequencies are valid by construction; NewGeneralReversible cannot reject them
		panic(err)
	}
	return m
}

// NewK80 returns the Kimura (1980) two-parameter model with
// transition/transversion ratio kappa and equal frequencies.
func NewK80(kappa float64) (*Model, error) {
	if kappa <= 0 {
		return nil, errors.New("substmodel: kappa must be positive")
	}
	// Upper-triangle order: AC, AG, AT, CG, CT, GT.
	rates := []float64{1, kappa, 1, 1, kappa, 1}
	m, err := NewGeneralReversible("K80", rates, []float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// NewHKY85 returns the Hasegawa–Kishino–Yano (1985) model with
// transition/transversion ratio kappa and arbitrary base frequencies
// (A, C, G, T order).
func NewHKY85(kappa float64, freqs []float64) (*Model, error) {
	if kappa <= 0 {
		return nil, errors.New("substmodel: kappa must be positive")
	}
	if len(freqs) != NucleotideStates {
		return nil, fmt.Errorf("substmodel: HKY85 needs 4 frequencies, got %d", len(freqs))
	}
	rates := []float64{1, kappa, 1, 1, kappa, 1}
	m, err := NewGeneralReversible("HKY85", rates, freqs)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// NewGTR returns the general time-reversible nucleotide model. The six
// exchangeabilities are in upper-triangle order AC, AG, AT, CG, CT, GT, and
// frequencies in A, C, G, T order.
func NewGTR(rates, freqs []float64) (*Model, error) {
	if len(rates) != 6 {
		return nil, fmt.Errorf("substmodel: GTR needs 6 exchangeabilities, got %d", len(rates))
	}
	if len(freqs) != NucleotideStates {
		return nil, fmt.Errorf("substmodel: GTR needs 4 frequencies, got %d", len(freqs))
	}
	m, err := NewGeneralReversible("GTR", rates, freqs)
	if err != nil {
		return nil, err
	}
	return m, nil
}
