// Package substmodel builds the continuous-time Markov substitution models
// used by statistical phylogenetics: the nucleotide family (JC69, K80,
// HKY85, GTR; 4 states), amino-acid models (Poisson, general time-reversible;
// 20 states), and Goldman–Yang-style codon models (61 states), together with
// discrete-gamma among-site rate variation. A model yields a normalized rate
// matrix Q (one expected substitution per unit branch length), stationary
// frequencies, and an eigendecomposition, which is exactly the form that the
// BEAGLE API's SetEigenDecomposition call accepts.
package substmodel

import (
	"errors"
	"fmt"

	"gobeagle/internal/linalg"
	"gobeagle/internal/phystats"
)

// Model is a time-reversible substitution model over StateCount states.
type Model struct {
	Name        string
	StateCount  int
	Frequencies []float64      // stationary distribution π, sums to 1
	Q           *linalg.Matrix // rate matrix normalized to mean rate 1
}

// NewGeneralReversible builds a reversible model from symmetric
// exchangeabilities (upper triangle, row-major: r01, r02, ..., r(n-2)(n-1))
// and stationary frequencies: q_ij = r_ij·π_j for i≠j. The matrix is
// normalized so −Σᵢ πᵢ·qᵢᵢ = 1.
func NewGeneralReversible(name string, rates, freqs []float64) (*Model, error) {
	n := len(freqs)
	if n < 2 {
		return nil, errors.New("substmodel: need at least two states")
	}
	if want := n * (n - 1) / 2; len(rates) != want {
		return nil, fmt.Errorf("substmodel: %d states need %d exchangeabilities, got %d", n, want, len(rates))
	}
	if err := checkFrequencies(freqs); err != nil {
		return nil, err
	}
	for _, r := range rates {
		if r < 0 {
			return nil, errors.New("substmodel: exchangeabilities must be non-negative")
		}
	}
	q := linalg.NewMatrix(n, n)
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			q.Data[i*n+j] = rates[k] * freqs[j]
			q.Data[j*n+i] = rates[k] * freqs[i]
			k++
		}
	}
	normalizeQ(q, freqs)
	f := make([]float64, n)
	copy(f, freqs)
	return &Model{Name: name, StateCount: n, Frequencies: f, Q: q}, nil
}

// normalizeQ sets the diagonal to minus the off-diagonal row sums and then
// rescales so the mean substitution rate −Σ πᵢ qᵢᵢ equals 1.
func normalizeQ(q *linalg.Matrix, freqs []float64) {
	n := q.Rows
	var mean float64
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if j != i {
				rowSum += q.Data[i*n+j]
			}
		}
		q.Data[i*n+i] = -rowSum
		mean += freqs[i] * rowSum
	}
	if mean > 0 {
		q.Scale(1 / mean)
	}
}

func checkFrequencies(freqs []float64) error {
	var sum float64
	for _, f := range freqs {
		if f <= 0 {
			return errors.New("substmodel: frequencies must be positive")
		}
		sum += f
	}
	if sum < 1-1e-6 || sum > 1+1e-6 {
		return fmt.Errorf("substmodel: frequencies sum to %v, want 1", sum)
	}
	return nil
}

// Eigen returns the spectral decomposition of the model's rate matrix.
func (m *Model) Eigen() (*linalg.EigenDecomposition, error) {
	return linalg.ReversibleEigen(m.Q, m.Frequencies)
}

// SiteRates describes discrete among-site rate variation: category rates and
// the probability weight of each category.
type SiteRates struct {
	Rates   []float64
	Weights []float64
}

// SingleRate returns the trivial one-category rate model.
func SingleRate() *SiteRates {
	return &SiteRates{Rates: []float64{1}, Weights: []float64{1}}
}

// GammaRates returns a k-category discrete-gamma rate model with shape alpha
// (mean-based discretization, equal weights), the standard "+G" setup.
func GammaRates(alpha float64, k int) (*SiteRates, error) {
	rates, err := phystats.DiscreteGammaRates(alpha, k, false)
	if err != nil {
		return nil, err
	}
	return &SiteRates{Rates: rates, Weights: phystats.UniformCategoryWeights(k)}, nil
}
