package substmodel

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSenseCodonCount(t *testing.T) {
	if len(senseCodons) != CodonStates {
		t.Fatalf("sense codon count %d, want %d", len(senseCodons), CodonStates)
	}
	// Exactly three stops in the standard code.
	stops := strings.Count(geneticCode, "*")
	if stops != 3 {
		t.Fatalf("stop codon count %d, want 3", stops)
	}
}

func TestGeneticCodeKnownCodons(t *testing.T) {
	// Find states by triplet and check translation.
	byTriplet := map[string]byte{}
	for i := 0; i < CodonStates; i++ {
		byTriplet[CodonString(i)] = CodonAminoAcid(i)
	}
	cases := map[string]byte{
		"ATG": 'M', // start
		"TGG": 'W',
		"AAA": 'K',
		"TTT": 'F',
		"GGG": 'G',
		"TCA": 'S',
		"AGA": 'R',
		"CAT": 'H',
	}
	for codon, aa := range cases {
		if got, ok := byTriplet[codon]; !ok || got != aa {
			t.Errorf("codon %s translates to %c, want %c", codon, got, aa)
		}
	}
	// Stop codons must not be states.
	for _, stop := range []string{"TAA", "TAG", "TGA"} {
		if _, ok := byTriplet[stop]; ok {
			t.Errorf("stop codon %s must not be a model state", stop)
		}
	}
}

func TestCodonDiff(t *testing.T) {
	// AAA (0) vs AAG (2): one difference at third position, A→G.
	nd, x, y := codonDiff(0, 2)
	if nd != 1 || x != BaseA || y != BaseG {
		t.Fatalf("codonDiff(AAA,AAG) = %d,%d,%d", nd, x, y)
	}
	// AAA vs CCC: three differences.
	if nd, _, _ := codonDiff(0, 21); nd != 3 {
		t.Fatalf("codonDiff(AAA,CCC) = %d diffs", nd)
	}
	if nd, _, _ := codonDiff(5, 5); nd != 0 {
		t.Fatalf("identical codons reported %d diffs", nd)
	}
}

func TestGY94Invariants(t *testing.T) {
	m, err := NewGY94(2, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.StateCount != 61 {
		t.Fatalf("state count %d", m.StateCount)
	}
	checkRateMatrixInvariants(t, m)
}

func TestGY94MultiStepRatesZero(t *testing.T) {
	m, err := NewGY94(2, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < CodonStates; i++ {
		for j := 0; j < CodonStates; j++ {
			if i == j {
				continue
			}
			nd, _, _ := codonDiff(senseCodons[i], senseCodons[j])
			if nd > 1 && m.Q.At(i, j) != 0 {
				t.Fatalf("multi-nucleotide change %s→%s has rate %v",
					CodonString(i), CodonString(j), m.Q.At(i, j))
			}
			if nd == 1 && m.Q.At(i, j) <= 0 {
				t.Fatalf("single-nucleotide change %s→%s has rate %v",
					CodonString(i), CodonString(j), m.Q.At(i, j))
			}
		}
	}
}

func TestGY94KappaOmegaStructure(t *testing.T) {
	kappa, omega := 3.0, 0.2
	m, err := NewGY94(kappa, omega, nil)
	if err != nil {
		t.Fatal(err)
	}
	find := func(triplet string) int {
		for i := 0; i < CodonStates; i++ {
			if CodonString(i) == triplet {
				return i
			}
		}
		t.Fatalf("codon %s not found", triplet)
		return -1
	}
	// Synonymous transversion: GGA→GGC (both Gly, G↔C transversion).
	sTv := m.Q.At(find("GGA"), find("GGC"))
	// Synonymous transition: GGA→GGG (both Gly, A↔G transition).
	sTs := m.Q.At(find("GGA"), find("GGG"))
	// Nonsynonymous transversion: AAA(K)→ACA(T) is A↔C at pos 2.
	nTv := m.Q.At(find("AAA"), find("ACA"))
	// Nonsynonymous transition: AAA(K)→AGA(R) is A↔G at pos 2.
	nTs := m.Q.At(find("AAA"), find("AGA"))

	if math.Abs(sTs/sTv-kappa) > 1e-9 {
		t.Errorf("synonymous ts/tv ratio %v want %v", sTs/sTv, kappa)
	}
	if math.Abs(nTv/sTv-omega) > 1e-9 {
		t.Errorf("omega recovered as %v want %v", nTv/sTv, omega)
	}
	if math.Abs(nTs/sTv-kappa*omega) > 1e-9 {
		t.Errorf("nonsyn transition ratio %v want %v", nTs/sTv, kappa*omega)
	}
}

func TestGY94TransitionMatrixRowsSumToOne(t *testing.T) {
	m, err := NewGY94(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := m.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 61*61)
	if err := ed.TransitionMatrix(0.3, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 61; i++ {
		var row float64
		for j := 0; j < 61; j++ {
			row += p[i*61+j]
		}
		if math.Abs(row-1) > 1e-8 {
			t.Fatalf("row %d sums to %v", i, row)
		}
	}
}

func TestGY94DetailedBalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kappa := 0.5 + rng.Float64()*5
		omega := 0.05 + rng.Float64()*2
		freqs := randomFreqs(rng, CodonStates)
		m, err := NewGY94(kappa, omega, freqs)
		if err != nil {
			return false
		}
		for i := 0; i < CodonStates; i++ {
			for j := i + 1; j < CodonStates; j++ {
				if math.Abs(freqs[i]*m.Q.At(i, j)-freqs[j]*m.Q.At(j, i)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestGY94Errors(t *testing.T) {
	if _, err := NewGY94(0, 1, nil); err == nil {
		t.Fatal("expected error for kappa=0")
	}
	if _, err := NewGY94(1, 0, nil); err == nil {
		t.Fatal("expected error for omega=0")
	}
	if _, err := NewGY94(1, 1, make([]float64, 10)); err == nil {
		t.Fatal("expected error for wrong frequency count")
	}
}
