package cpuimpl

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
)

// workerPool is a fixed set of persistent worker goroutines fed through a
// channel — the C++ thread-pool of §VI-C. Tasks are closures receiving the
// executing worker's index (so the span tracer can attribute tasks to worker
// lanes); callers coordinate completion themselves (typically with a
// WaitGroup), so one pool serves both partials operations and root-likelihood
// integration.
type workerPool struct {
	jobs chan func(worker int)
	done sync.WaitGroup
}

// newWorkerPool starts the workers. Each worker goroutine carries pprof
// labels (implementation name and worker index) so CPU profiles attribute
// kernel time to the owning pool instead of an anonymous goroutine.
func newWorkerPool(workers int, impl string) *workerPool {
	p := &workerPool{jobs: make(chan func(int), workers*4)}
	p.done.Add(workers)
	for i := 0; i < workers; i++ {
		labels := pprof.Labels("beagle_impl", impl, "beagle_worker", strconv.Itoa(i))
		go pprof.Do(context.Background(), labels, func(context.Context) {
			defer p.done.Done()
			for job := range p.jobs {
				job(i)
			}
		})
	}
	return p
}

// submit enqueues a task; it blocks only when the queue is full.
//
//beagle:noalloc
func (p *workerPool) submit(job func(worker int)) { p.jobs <- job }

// close stops the workers after draining queued tasks.
func (p *workerPool) close() {
	close(p.jobs)
	p.done.Wait()
}
