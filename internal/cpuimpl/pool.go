package cpuimpl

import "sync"

// workerPool is a fixed set of persistent worker goroutines fed through a
// channel — the C++ thread-pool of §VI-C. Tasks are arbitrary closures;
// callers coordinate completion themselves (typically with a WaitGroup), so
// one pool serves both partials operations and root-likelihood integration.
type workerPool struct {
	jobs chan func()
	done sync.WaitGroup
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{jobs: make(chan func(), workers*4)}
	p.done.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.done.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// submit enqueues a task; it blocks only when the queue is full.
func (p *workerPool) submit(job func()) { p.jobs <- job }

// close stops the workers after draining queued tasks.
func (p *workerPool) close() {
	close(p.jobs)
	p.done.Wait()
}
