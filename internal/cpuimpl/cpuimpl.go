// Package cpuimpl provides the host CPU implementations of the library,
// reproducing the paper's CPU lineage (§IV-D, §VI):
//
//   - Serial: the original single-threaded implementation, the baseline of
//     every speedup figure in the paper;
//   - SSE: the serial implementation with the 4-state unrolled kernels, the
//     analogue of the SSE intrinsics path (falls back to the generic kernels
//     for non-nucleotide state counts, as BEAGLE's SSE path does);
//   - Futures: concurrency across independent operations in the tree
//     (§VI-A) — operations are grouped into dependency levels and each
//     operation of a level runs as its own asynchronous task;
//   - ThreadCreate: per-call goroutine creation partitioning the site
//     patterns into equal chunks, with a minimum pattern count below which
//     execution stays serial (§VI-B);
//   - ThreadPool: a persistent worker pool used for both the
//     partial-likelihoods operations and the root likelihood integration
//     (§VI-C), the design that won in Table III;
//   - ThreadPoolHybrid: the fusion of the futures and thread-pool designs —
//     every (operation, pattern-chunk) pair of a dependency level is
//     dispatched onto the same persistent pool, so wide trees with small
//     pattern counts (where pure pattern chunking degrades to serial) still
//     saturate the workers through operation-level concurrency.
package cpuimpl

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"gobeagle/internal/engine"
	"gobeagle/internal/flops"
	"gobeagle/internal/kernels"
	"gobeagle/internal/reuse"
	"gobeagle/internal/telemetry"
	"gobeagle/internal/trace"
)

// Mode selects the CPU execution strategy.
type Mode int

// CPU execution strategies, in the order the paper develops them.
const (
	Serial Mode = iota
	SSE
	Futures
	ThreadCreate
	ThreadPool
	ThreadPoolHybrid
)

// String returns the implementation name used in resource listings.
func (m Mode) String() string {
	switch m {
	case Serial:
		return "CPU-serial"
	case SSE:
		return "CPU-SSE"
	case Futures:
		return "CPU-futures"
	case ThreadCreate:
		return "CPU-threadcreate"
	case ThreadPool:
		return "CPU-threadpool"
	case ThreadPoolHybrid:
		return "CPU-threadpool-hybrid"
	default:
		return fmt.Sprintf("CPU-unknown(%d)", int(m))
	}
}

// DefaultMinPatterns is the minimum pattern count for pattern-level
// threading, preventing small problems from running slower threaded than
// serial (the paper uses 512).
const DefaultMinPatterns = 512

// HybridMinChunk is the smallest pattern span the hybrid scheduler will cut
// an operation into. Unlike DefaultMinPatterns it bounds the chunk, not the
// whole problem: a 128-pattern level of 8 independent operations still
// yields 16 concurrent tasks instead of degrading to serial execution.
const HybridMinChunk = 64

// ErrClosed is returned by computation methods invoked after Close.
var ErrClosed = errors.New("cpuimpl: engine is closed")

// New creates a CPU engine with the given mode, instantiated for the
// precision requested in the configuration.
func New(cfg engine.Config, mode Mode) (engine.Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch mode {
	case Serial, SSE, Futures, ThreadCreate, ThreadPool, ThreadPoolHybrid:
	default:
		return nil, fmt.Errorf("cpuimpl: unknown mode %d", int(mode))
	}
	if cfg.SinglePrecision {
		return newEngine[float32](cfg, mode), nil
	}
	return newEngine[float64](cfg, mode), nil
}

// Engine is a CPU implementation of engine.Engine, generic in precision.
type Engine[T kernels.Real] struct {
	*engine.Storage[T]
	mode        Mode
	threads     int
	minPatterns int
	pool        *workerPool
	tel         *telemetry.Collector
	tr          *trace.Tracer
	lane        int32
	closed      bool
	// scratch holds the reuse-filtered operation list between batches so
	// the skip path of a full-schedule resubmission allocates nothing once
	// warmed up.
	scratch []engine.Operation
}

func newEngine[T kernels.Real](cfg engine.Config, mode Mode) *Engine[T] {
	threads := cfg.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	minPat := cfg.MinPatternsWork
	if minPat <= 0 {
		minPat = DefaultMinPatterns
	}
	e := &Engine[T]{
		Storage:     engine.NewStorage[T](cfg),
		mode:        mode,
		threads:     threads,
		minPatterns: minPat,
		tel:         cfg.Telemetry,
		tr:          cfg.Trace,
		lane:        int32(cfg.TraceLane),
	}
	if mode == ThreadPool || mode == ThreadPoolHybrid {
		e.pool = newWorkerPool(threads, mode.String())
	}
	return e
}

// Name identifies the implementation.
func (e *Engine[T]) Name() string { return e.mode.String() }

// Close shuts down the worker pool, if any. Close is idempotent; computation
// methods called after Close return ErrClosed instead of panicking on the
// torn-down pool.
func (e *Engine[T]) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
	return nil
}

// runOp executes one partial-likelihoods operation for patterns [lo, hi),
// selecting the kernel by operand kinds and mode.
func (e *Engine[T]) runOp(op engine.Operation, lo, hi int) error {
	d := e.Cfg.Dims
	dest, err := e.DestPartials(op.Dest)
	if err != nil {
		return err
	}
	m1, m2, err := e.OpMatrices(op)
	if err != nil {
		return err
	}
	k1, s1, p1, err := e.ChildOperand(op.Child1)
	if err != nil {
		return err
	}
	k2, s2, p2, err := e.ChildOperand(op.Child2)
	if err != nil {
		return err
	}
	// Normalize so a compact-states operand, if any, comes first.
	if k1 == engine.OperandPartials && k2 == engine.OperandStates {
		k1, k2 = k2, k1
		s1, s2 = s2, s1
		p1, p2 = p2, p1
		m1, m2 = m2, m1
	}
	useSSE := e.mode == SSE && d.StateCount == 4
	switch {
	case k1 == engine.OperandStates && k2 == engine.OperandStates:
		if useSSE {
			kernels.StatesStates4(dest, s1, m1, s2, m2, d, lo, hi)
		} else {
			kernels.StatesStates(dest, s1, m1, s2, m2, d, lo, hi)
		}
	case k1 == engine.OperandStates:
		if useSSE {
			kernels.StatesPartials4(dest, s1, m1, p2, m2, d, lo, hi)
		} else {
			kernels.StatesPartials(dest, s1, m1, p2, m2, d, lo, hi)
		}
	default:
		if useSSE {
			kernels.PartialsPartials4(dest, p1, m1, p2, m2, d, lo, hi)
		} else {
			kernels.PartialsPartials(dest, p1, m1, p2, m2, d, lo, hi)
		}
	}
	// Fixed scaling first: previously written factors are applied to the
	// fresh partials, then an optional rescale captures the residual.
	if op.DestScaleRead != engine.None {
		scale, err := e.CumulativeScale(op.DestScaleRead)
		if err != nil {
			return err
		}
		kernels.ApplyReadScale(dest, scale, d, lo, hi)
	}
	if op.DestScaleWrite != engine.None {
		scale, err := e.ScaleWriteTarget(op.DestScaleWrite)
		if err != nil {
			return err
		}
		kernels.RescalePartials(dest, scale, d, lo, hi)
	}
	return nil
}

// validateOps pre-checks every operation so threaded execution cannot fail
// mid-flight.
func (e *Engine[T]) validateOps(ops []engine.Operation) error {
	for _, op := range ops {
		if _, err := e.DestPartials(op.Dest); err != nil {
			return err
		}
		if _, _, err := e.OpMatrices(op); err != nil {
			return err
		}
		if _, _, _, err := e.ChildOperand(op.Child1); err != nil {
			// The child may be the destination of an earlier op in this
			// batch; DestPartials above has already allocated those.
			return err
		}
		if _, _, _, err := e.ChildOperand(op.Child2); err != nil {
			return err
		}
		if op.DestScaleWrite != engine.None {
			if _, err := e.ScaleWriteTarget(op.DestScaleWrite); err != nil {
				return err
			}
		}
		if op.DestScaleRead != engine.None {
			// The read buffer must exist before the batch: either written by
			// an earlier batch, or allocated above by an earlier listed
			// operation's DestScaleWrite.
			if _, err := e.CumulativeScale(op.DestScaleRead); err != nil {
				return err
			}
		}
	}
	return nil
}

// UpdatePartials executes the operation list with the engine's strategy.
func (e *Engine[T]) UpdatePartials(ops []engine.Operation) error {
	if e.closed {
		return ErrClosed
	}
	// Allocate destinations in order first so later validation of children
	// that are earlier destinations succeeds.
	for _, op := range ops {
		if _, err := e.DestPartials(op.Dest); err != nil {
			return err
		}
	}
	if err := e.validateOps(ops); err != nil {
		return err
	}
	// Incremental re-evaluation: drop operations whose destination already
	// holds the result of an identical computation over unchanged inputs.
	// Decisions run in submission order — the documented dependency order —
	// so an admitted ancestor dirties its dependents before they are
	// decided. Validation above covered the full list, so skipping cannot
	// hide an invalid operation.
	var skipped int
	if e.Reuse.Enabled() {
		kept := e.scratch[:0]
		for _, op := range ops {
			if e.Reuse.ShouldComputeOp(op.Dest, op.Child1, op.Child1Mat,
				op.Child2, op.Child2Mat, op.DestScaleWrite, op.DestScaleRead) {
				kept = append(kept, op)
			}
		}
		e.scratch = kept
		skipped = len(ops) - len(kept)
		ops = kept
	}
	// Telemetry/trace fast paths: one atomic load each when disabled, no
	// timestamps taken.
	var start time.Time
	var batch uint64
	if e.tel.Enabled() {
		batch = e.tel.NextBatch()
		start = time.Now()
	}
	var tstart int64
	var tbatch uint64
	traceOn := e.tr.Enabled()
	if traceOn {
		tbatch = e.tr.NextBatch()
		tstart = e.tr.Now()
	}
	p := e.Cfg.Dims.PatternCount
	var err error
	switch e.mode {
	case Serial, SSE:
		for _, op := range ops {
			if err = e.runOp(op, 0, p); err != nil {
				break
			}
		}
	case Futures:
		err = e.runFutures(ops, batch, tbatch)
	case ThreadCreate:
		for _, op := range ops {
			if err = e.runThreadCreate(op); err != nil {
				break
			}
		}
	case ThreadPool:
		for _, op := range ops {
			if err = e.runThreadPool(op, tbatch); err != nil {
				break
			}
		}
	case ThreadPoolHybrid:
		err = e.runHybrid(ops, batch, tbatch)
	}
	if err != nil {
		return err
	}
	if !start.IsZero() {
		e.tel.Record(telemetry.KernelPartials, len(ops), time.Since(start))
		e.tel.AddFlops(flops.PartialsOp(e.Cfg.Dims) * float64(len(ops)))
	}
	if traceOn {
		e.tr.Record(trace.Span{Kind: trace.KindBatch, Lane: e.lane, Batch: tbatch,
			Start: tstart, Dur: e.tr.Now() - tstart, Arg0: int64(len(ops)), Arg1: int64(skipped)})
	}
	return nil
}

// ReuseStats snapshots the incremental re-evaluation counters; the zero
// value (Enabled false) when the engine was built without Config.Reuse.
func (e *Engine[T]) ReuseStats() reuse.Stats { return e.Reuse.Stats() }

// runFutures executes operations level by level; operations within a level
// are independent in the tree topology and run concurrently, each as one
// asynchronous task computing its full pattern range (§VI-A).
func (e *Engine[T]) runFutures(ops []engine.Operation, batch, tbatch uint64) error {
	levels := opLevels(ops)
	errs := make([]error, len(ops))
	idx := 0
	traceOn := e.tr.Enabled()
	for li, level := range levels {
		var lstart time.Time
		if e.tel.Enabled() {
			lstart = time.Now()
		}
		var ltstart int64
		if traceOn {
			ltstart = e.tr.Now()
		}
		var wg sync.WaitGroup
		for _, op := range level {
			wg.Add(1)
			go func(op engine.Operation, slot int) {
				defer wg.Done()
				errs[slot] = e.runOp(op, 0, e.Cfg.Dims.PatternCount)
			}(op, idx)
			idx++
		}
		wg.Wait()
		if !lstart.IsZero() {
			e.tel.TraceLevel(batch, li, len(level), len(level), time.Since(lstart))
		}
		if traceOn {
			e.tr.Record(trace.Span{Kind: trace.KindLevel, Lane: e.lane, Batch: tbatch,
				Start: ltstart, Dur: e.tr.Now() - ltstart, Arg0: int64(li), Arg1: int64(len(level))})
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runThreadCreate spawns fresh goroutines for one operation, partitioning
// the patterns into equal chunks (§VI-B). Below the minimum pattern count it
// stays serial.
func (e *Engine[T]) runThreadCreate(op engine.Operation) error {
	p := e.Cfg.Dims.PatternCount
	if p < e.minPatterns || e.threads < 2 {
		return e.runOp(op, 0, p)
	}
	n := e.threads
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		lo := w * p / n
		hi := (w + 1) * p / n
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = e.runOp(op, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runThreadPool dispatches one operation's pattern chunks onto the
// persistent worker pool (§VI-C).
func (e *Engine[T]) runThreadPool(op engine.Operation, tbatch uint64) error {
	p := e.Cfg.Dims.PatternCount
	if p < e.minPatterns || e.threads < 2 {
		return e.runOp(op, 0, p)
	}
	n := e.threads
	errs := make([]error, n)
	traceOn := e.tr.Enabled()
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		lo := w * p / n
		hi := (w + 1) * p / n
		if lo == hi {
			continue
		}
		wg.Add(1)
		e.pool.submit(func(worker int) {
			defer wg.Done()
			if traceOn {
				ts := e.tr.Now()
				errs[w] = e.runOp(op, lo, hi)
				e.tr.Record(trace.Span{Kind: trace.KindTask, Lane: int32(worker), Batch: tbatch,
					Start: ts, Dur: e.tr.Now() - ts, Arg0: int64(hi - lo)})
				return
			}
			errs[w] = e.runOp(op, lo, hi)
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runHybrid executes operations level by level like runFutures, but instead
// of one task per operation it dispatches every (operation, pattern-chunk)
// pair of a level onto the persistent worker pool. The chunk count adapts to
// the level width: wide levels run one chunk per operation (pure op-level
// concurrency), narrow levels split patterns until the pool is saturated,
// and no chunk is cut below HybridMinChunk patterns — so small-pattern
// problems with independent operations no longer fall back to serial.
func (e *Engine[T]) runHybrid(ops []engine.Operation, batch, tbatch uint64) error {
	p := e.Cfg.Dims.PatternCount
	if e.threads < 2 {
		if !e.tel.Enabled() && !e.tr.Enabled() {
			for _, op := range ops {
				if err := e.runOp(op, 0, p); err != nil {
					return err
				}
			}
			return nil
		}
		// Single-threaded fallback: still report the dependency leveling so
		// the batch tracer stays meaningful on one-core hosts.
		traceOn := e.tr.Enabled()
		for li, level := range opLevels(ops) {
			lstart := time.Now()
			var ltstart int64
			if traceOn {
				ltstart = e.tr.Now()
			}
			for _, op := range level {
				if err := e.runOp(op, 0, p); err != nil {
					return err
				}
			}
			e.tel.TraceLevel(batch, li, len(level), len(level), time.Since(lstart))
			if traceOn {
				e.tr.Record(trace.Span{Kind: trace.KindLevel, Lane: e.lane, Batch: tbatch,
					Start: ltstart, Dur: e.tr.Now() - ltstart, Arg0: int64(li), Arg1: int64(len(level))})
			}
		}
		return nil
	}
	for li, level := range opLevels(ops) {
		if err := e.runHybridLevel(level, batch, tbatch, li); err != nil {
			return err
		}
	}
	return nil
}

// HybridChunks returns how many pattern chunks each operation of a level is
// split into: enough tasks to cover the worker count, bounded so that no
// chunk spans fewer than HybridMinChunk patterns (and always at least one).
// Exported so the analytic CPU performance model shares the exact policy.
func HybridChunks(levelWidth, patterns, threads int) int {
	chunks := (threads + levelWidth - 1) / levelWidth
	if maxChunks := (patterns + HybridMinChunk - 1) / HybridMinChunk; chunks > maxChunks {
		chunks = maxChunks
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// runHybridLevel dispatches one dependency level's (operation, chunk) tasks
// and waits for the barrier at the end of the level.
func (e *Engine[T]) runHybridLevel(level []engine.Operation, batch, tbatch uint64, levelIdx int) error {
	p := e.Cfg.Dims.PatternCount
	var lstart time.Time
	if e.tel.Enabled() {
		lstart = time.Now()
	}
	traceOn := e.tr.Enabled()
	var ltstart int64
	if traceOn {
		ltstart = e.tr.Now()
	}
	if len(level) == 1 && p < e.minPatterns {
		// A single small operation gains nothing from chunking; stay serial,
		// exactly as the plain thread-pool strategy does.
		err := e.runOp(level[0], 0, p)
		if err == nil {
			if !lstart.IsZero() {
				e.tel.TraceLevel(batch, levelIdx, 1, 1, time.Since(lstart))
			}
			if traceOn {
				e.tr.Record(trace.Span{Kind: trace.KindLevel, Lane: e.lane, Batch: tbatch,
					Start: ltstart, Dur: e.tr.Now() - ltstart, Arg0: int64(levelIdx), Arg1: 1})
			}
		}
		return err
	}
	chunks := HybridChunks(len(level), p, e.threads)
	errs := make([]error, len(level)*chunks)
	tasks := 0
	var wg sync.WaitGroup
	for i, op := range level {
		for c := 0; c < chunks; c++ {
			lo := c * p / chunks
			hi := (c + 1) * p / chunks
			if lo == hi {
				continue
			}
			slot := i*chunks + c
			tasks++
			wg.Add(1)
			e.pool.submit(func(worker int) {
				defer wg.Done()
				if traceOn {
					ts := e.tr.Now()
					errs[slot] = e.runOp(op, lo, hi)
					e.tr.Record(trace.Span{Kind: trace.KindTask, Lane: int32(worker), Batch: tbatch,
						Start: ts, Dur: e.tr.Now() - ts, Arg0: int64(hi - lo)})
					return
				}
				errs[slot] = e.runOp(op, lo, hi)
			})
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if !lstart.IsZero() {
		e.tel.TraceLevel(batch, levelIdx, len(level), tasks, time.Since(lstart))
	}
	if traceOn {
		e.tr.Record(trace.Span{Kind: trace.KindLevel, Lane: e.lane, Batch: tbatch,
			Start: ltstart, Dur: e.tr.Now() - ltstart, Arg0: int64(levelIdx), Arg1: int64(len(level))})
	}
	return nil
}

// opLevels groups operations into dependency levels so that all operations
// within a level can run concurrently without data races. An operation is
// pushed to a later level by any hazard on the buffers it touches:
//
//   - read-after-write: a child buffer is the destination of an earlier
//     operation (the tree-topology dependency);
//   - write-after-write: two operations share a Dest, or rescale into the
//     same DestScaleWrite buffer;
//   - write-after-read: the destination overwrites a buffer an earlier
//     operation still reads as a child (serial semantics let the earlier
//     operation see the old contents).
//
// Partials and scale buffers are distinct index spaces and are tracked
// separately. This is the single dependency analyzer used by both the
// Futures and the ThreadPoolHybrid strategies.
func opLevels(ops []engine.Operation) [][]engine.Operation {
	partialsWriter := make(map[int]int) // partials buffer -> level of last writer
	partialsReader := make(map[int]int) // partials buffer -> highest reading level
	scaleWriter := make(map[int]int)    // scale buffer -> level of last writer
	scaleReader := make(map[int]int)    // scale buffer -> highest reading level
	after := func(l int, m map[int]int, buf int) int {
		if dl, ok := m[buf]; ok && dl+1 > l {
			return dl + 1
		}
		return l
	}
	markRead := func(m map[int]int, buf, l int) {
		if rl, ok := m[buf]; !ok || l > rl {
			m[buf] = l
		}
	}
	var out [][]engine.Operation
	for _, op := range ops {
		l := 0
		l = after(l, partialsWriter, op.Child1) // RAW
		l = after(l, partialsWriter, op.Child2) // RAW
		l = after(l, partialsWriter, op.Dest)   // WAW
		l = after(l, partialsReader, op.Dest)   // WAR
		if op.DestScaleWrite != engine.None {
			l = after(l, scaleWriter, op.DestScaleWrite) // WAW (scale)
			l = after(l, scaleReader, op.DestScaleWrite) // WAR (scale)
		}
		if op.DestScaleRead != engine.None {
			l = after(l, scaleWriter, op.DestScaleRead) // RAW (scale)
		}
		partialsWriter[op.Dest] = l
		markRead(partialsReader, op.Child1, l)
		markRead(partialsReader, op.Child2, l)
		if op.DestScaleWrite != engine.None {
			scaleWriter[op.DestScaleWrite] = l
		}
		if op.DestScaleRead != engine.None {
			markRead(scaleReader, op.DestScaleRead, l)
		}
		for len(out) <= l {
			out = append(out, nil)
		}
		out[l] = append(out[l], op)
	}
	return out
}

// SiteLogLikelihoods returns per-pattern root log likelihoods
// (log site likelihood plus accumulated scale factors).
func (e *Engine[T]) SiteLogLikelihoods(rootBuf, cumScaleBuf int) ([]float64, error) {
	site, scale, err := e.siteLikelihoods(rootBuf, cumScaleBuf)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(site))
	for p, s := range site {
		l := math.Log(s)
		if scale != nil {
			l += scale[p]
		}
		out[p] = l
	}
	return out, nil
}

// CalculateRootLogLikelihoods integrates the root partials into the total
// log likelihood. In the pool-backed modes (ThreadPool, ThreadPoolHybrid)
// the per-pattern site likelihoods are computed on the worker pool, as
// §VI-C describes.
func (e *Engine[T]) CalculateRootLogLikelihoods(rootBuf, cumScaleBuf int) (float64, error) {
	var start time.Time
	if e.tel.Enabled() {
		start = time.Now()
	}
	var tstart int64
	traceOn := e.tr.Enabled()
	if traceOn {
		tstart = e.tr.Now()
	}
	site, scale, err := e.siteLikelihoods(rootBuf, cumScaleBuf)
	if err != nil {
		return 0, err
	}
	lnL := kernels.RootLogLikelihood(site, e.PatWts, scale, 0, len(site))
	if !start.IsZero() {
		e.tel.Record(telemetry.KernelRoot, 1, time.Since(start))
	}
	if traceOn {
		e.tr.Record(trace.Span{Kind: trace.KindRoot, Lane: e.lane,
			Start: tstart, Dur: e.tr.Now() - tstart, Arg0: int64(len(site))})
	}
	return lnL, nil
}

func (e *Engine[T]) siteLikelihoods(rootBuf, cumScaleBuf int) (site, scale []float64, err error) {
	if e.closed {
		return nil, nil, ErrClosed
	}
	kind, _, root, err := e.ChildOperand(rootBuf)
	if err != nil {
		return nil, nil, err
	}
	if kind != engine.OperandPartials {
		return nil, nil, fmt.Errorf("cpuimpl: root buffer %d holds compact states", rootBuf)
	}
	scale, err = e.CumulativeScale(cumScaleBuf)
	if err != nil {
		return nil, nil, err
	}
	d := e.Cfg.Dims
	site = make([]float64, d.PatternCount)
	if (e.mode == ThreadPool || e.mode == ThreadPoolHybrid) && d.PatternCount >= e.minPatterns && e.threads > 1 {
		n := e.threads
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			lo := w * d.PatternCount / n
			hi := (w + 1) * d.PatternCount / n
			if lo == hi {
				continue
			}
			wg.Add(1)
			e.pool.submit(func(int) {
				defer wg.Done()
				kernels.SiteLikelihoods(site, root, e.CatWts, e.Freqs, d, lo, hi)
			})
		}
		wg.Wait()
	} else {
		kernels.SiteLikelihoods(site, root, e.CatWts, e.Freqs, d, 0, d.PatternCount)
	}
	return site, scale, nil
}

// CalculateEdgeLogLikelihoods integrates across a single branch between the
// parent-side and child-side partials buffers.
func (e *Engine[T]) CalculateEdgeLogLikelihoods(parentBuf, childBuf, matrix, cumScaleBuf int) (float64, error) {
	if e.closed {
		return 0, ErrClosed
	}
	pk, _, parent, err := e.ChildOperand(parentBuf)
	if err != nil {
		return 0, err
	}
	ck, _, child, err := e.ChildOperand(childBuf)
	if err != nil {
		return 0, err
	}
	if pk != engine.OperandPartials || ck != engine.OperandPartials {
		return 0, fmt.Errorf("cpuimpl: edge likelihood requires partials buffers (use SetTipPartials for tips)")
	}
	if matrix < 0 || matrix >= len(e.Matrices) || e.Matrices[matrix] == nil {
		return 0, fmt.Errorf("cpuimpl: matrix buffer %d not available", matrix)
	}
	scale, err := e.CumulativeScale(cumScaleBuf)
	if err != nil {
		return 0, err
	}
	var start time.Time
	if e.tel.Enabled() {
		start = time.Now()
	}
	d := e.Cfg.Dims
	site := make([]float64, d.PatternCount)
	kernels.EdgeSiteLikelihoods(site, parent, child, e.Matrices[matrix], e.CatWts, e.Freqs, d, 0, d.PatternCount)
	lnL := kernels.RootLogLikelihood(site, e.PatWts, scale, 0, d.PatternCount)
	if !start.IsZero() {
		e.tel.Record(telemetry.KernelEdge, 1, time.Since(start))
	}
	return lnL, nil
}

// CalculateEdgeDerivatives integrates across a single branch and returns
// the log likelihood and its first and second derivatives with respect to
// the branch length. matrix, d1Matrix (and d2Matrix unless None) must have
// been computed by UpdateTransitionMatrices / UpdateTransitionDerivatives.
func (e *Engine[T]) CalculateEdgeDerivatives(parentBuf, childBuf, matrix, d1Matrix, d2Matrix, cumScaleBuf int) (float64, float64, float64, error) {
	if e.closed {
		return 0, 0, 0, ErrClosed
	}
	pk, _, parent, err := e.ChildOperand(parentBuf)
	if err != nil {
		return 0, 0, 0, err
	}
	ck, _, child, err := e.ChildOperand(childBuf)
	if err != nil {
		return 0, 0, 0, err
	}
	if pk != engine.OperandPartials || ck != engine.OperandPartials {
		return 0, 0, 0, fmt.Errorf("cpuimpl: edge derivatives require partials buffers")
	}
	getMat := func(idx int) ([]T, error) {
		if idx < 0 || idx >= len(e.Matrices) || e.Matrices[idx] == nil {
			return nil, fmt.Errorf("cpuimpl: matrix buffer %d not available", idx)
		}
		return e.Matrices[idx], nil
	}
	m, err := getMat(matrix)
	if err != nil {
		return 0, 0, 0, err
	}
	m1, err := getMat(d1Matrix)
	if err != nil {
		return 0, 0, 0, err
	}
	var m2 []T
	if d2Matrix != engine.None {
		if m2, err = getMat(d2Matrix); err != nil {
			return 0, 0, 0, err
		}
	}
	scale, err := e.CumulativeScale(cumScaleBuf)
	if err != nil {
		return 0, 0, 0, err
	}
	var start time.Time
	if e.tel.Enabled() {
		start = time.Now()
	}
	d := e.Cfg.Dims
	siteL := make([]float64, d.PatternCount)
	siteD1 := make([]float64, d.PatternCount)
	var siteD2 []float64
	if m2 != nil {
		siteD2 = make([]float64, d.PatternCount)
	}
	kernels.EdgeSiteDerivatives(siteL, siteD1, siteD2, parent, child, m, m1, m2,
		e.CatWts, e.Freqs, d, 0, d.PatternCount)
	lnL := kernels.RootLogLikelihood(siteL, e.PatWts, scale, 0, d.PatternCount)
	d1, d2 := kernels.ReduceEdgeDerivatives(siteL, siteD1, siteD2, e.PatWts, 0, d.PatternCount)
	if !start.IsZero() {
		e.tel.Record(telemetry.KernelEdge, 1, time.Since(start))
	}
	return lnL, d1, d2, nil
}

// Modes returns all CPU modes in presentation order.
func Modes() []Mode {
	m := []Mode{Serial, SSE, Futures, ThreadCreate, ThreadPool, ThreadPoolHybrid}
	sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
	return m
}
