package cpuimpl

// Regression tests for the dependency analyzer and the hybrid scheduler:
// aliased-buffer operation batches that race (and miscompute) when opLevels
// tracks only read-after-write hazards, plus use-after-Close behaviour.
// These batches reuse destination buffers the way proposal-rejection cycles
// in MCMC samplers do, so they must execute with serial semantics under
// every threading strategy.

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gobeagle/internal/engine"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// levelOf returns the level index opLevels assigned to the operation with
// the given destination, requiring it to appear exactly once.
func levelOf(t *testing.T, levels [][]engine.Operation, dest int) int {
	t.Helper()
	found := -1
	for l, level := range levels {
		for _, op := range level {
			if op.Dest == dest {
				if found >= 0 {
					t.Fatalf("dest %d appears in levels %d and %d", dest, found, l)
				}
				found = l
			}
		}
	}
	if found < 0 {
		t.Fatalf("dest %d not assigned to any level", dest)
	}
	return found
}

func TestOpLevelsHazards(t *testing.T) {
	op := func(dest, c1, c2, scaleWrite int) engine.Operation {
		return engine.Operation{
			Dest: dest, DestScaleWrite: scaleWrite, DestScaleRead: engine.None,
			Child1: c1, Child1Mat: c1, Child2: c2, Child2Mat: c2,
		}
	}

	t.Run("raw", func(t *testing.T) {
		levels := opLevels([]engine.Operation{
			op(4, 0, 1, engine.None),
			op(5, 4, 2, engine.None), // reads 4 → after its writer
			op(6, 2, 3, engine.None), // independent → level 0
		})
		if got := levelOf(t, levels, 4); got != 0 {
			t.Errorf("writer of 4 at level %d, want 0", got)
		}
		if got := levelOf(t, levels, 5); got != 1 {
			t.Errorf("RAW reader at level %d, want 1", got)
		}
		if got := levelOf(t, levels, 6); got != 0 {
			t.Errorf("independent op at level %d, want 0", got)
		}
	})

	t.Run("waw-and-war", func(t *testing.T) {
		levels := opLevels([]engine.Operation{
			op(4, 0, 1, engine.None), // writes 4
			op(5, 4, 2, engine.None), // reads 4
			op(4, 2, 3, engine.None), // rewrites 4: WAW with op 0, WAR with op 1
		})
		if got := levelOf(t, levels, 5); got != 1 {
			t.Fatalf("reader at level %d, want 1", got)
		}
		// The rewrite has tip children only; a RAW-only analyzer puts it at
		// level 0, racing with both the first write and the read.
		rewrite := -1
		for l, level := range levels {
			for _, o := range level {
				if o.Dest == 4 && o.Child1 == 2 {
					rewrite = l
				}
			}
		}
		if rewrite != 2 {
			t.Errorf("rewrite of 4 at level %d, want 2 (after its reader)", rewrite)
		}
	})

	t.Run("war-without-waw", func(t *testing.T) {
		levels := opLevels([]engine.Operation{
			op(5, 4, 2, engine.None), // reads 4 (never written in this batch)
			op(4, 2, 3, engine.None), // overwrites 4: pure WAR
		})
		if got := levelOf(t, levels, 5); got != 0 {
			t.Fatalf("reader at level %d, want 0", got)
		}
		if got := levelOf(t, levels, 4); got != 1 {
			t.Errorf("overwriter at level %d, want 1 (WAR hazard)", got)
		}
	})

	t.Run("scale-waw", func(t *testing.T) {
		levels := opLevels([]engine.Operation{
			op(4, 0, 1, 0), // rescales into scale buffer 0
			op(5, 2, 3, 0), // different dest, same scale buffer: WAW
		})
		if got := levelOf(t, levels, 4); got != 0 {
			t.Fatalf("first scaler at level %d, want 0", got)
		}
		if got := levelOf(t, levels, 5); got != 1 {
			t.Errorf("second scaler at level %d, want 1 (shared DestScaleWrite)", got)
		}
	})

	t.Run("scale-buffers-are-not-partials", func(t *testing.T) {
		// Scale buffer 5 must not alias partials buffer 5: distinct spaces.
		levels := opLevels([]engine.Operation{
			op(4, 0, 1, 5),           // writes scale buffer 5
			op(5, 2, 3, engine.None), // writes partials buffer 5
		})
		if got := levelOf(t, levels, 5); got != 0 {
			t.Errorf("partials-5 writer at level %d, want 0 (no cross-space hazard)", got)
		}
	})

	t.Run("levels-partition-ops", func(t *testing.T) {
		ops := []engine.Operation{
			op(4, 0, 1, engine.None),
			op(5, 4, 2, engine.None),
			op(4, 2, 3, engine.None),
			op(6, 4, 5, engine.None),
		}
		total := 0
		for _, level := range opLevels(ops) {
			total += len(level)
		}
		if total != len(ops) {
			t.Fatalf("levels hold %d ops, want %d", total, len(ops))
		}
	})
}

// aliasedEngine builds an engine of the given mode over a 4-tip geometry and
// runs an aliased operation batch: buffer 4 is written, read, rewritten and
// read again, and two operations rescale into the same scale buffer.
func aliasedEngine(t *testing.T, tr *tree.Tree, mode Mode, patterns int) engine.Engine {
	t.Helper()
	cfg := testConfig(tr, 4, patterns, 2, false)
	e, err := New(cfg, mode)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// runAliasedBatch loads deterministic tips/matrices, executes the hazard-rich
// batch, and returns the final contents of every written partials buffer.
func runAliasedBatch(t *testing.T, e engine.Engine, tr *tree.Tree, patterns int) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	const cats = 2
	for i := 0; i < tr.TipCount; i++ {
		p := make([]float64, patterns*4)
		for j := range p {
			p[j] = 0.05 + rng.Float64()
		}
		if err := e.SetTipPartials(i, p); err != nil {
			t.Fatal(err)
		}
	}
	mrng := rand.New(rand.NewSource(7))
	for m := 0; m < tr.NodeCount(); m++ {
		mat := make([]float64, cats*16)
		for r := 0; r < cats*4; r++ {
			var sum float64
			row := mat[r*4 : r*4+4]
			for c := range row {
				row[c] = 0.1 + mrng.Float64()
				sum += row[c]
			}
			for c := range row {
				row[c] /= sum
			}
		}
		if err := e.SetTransitionMatrix(m, mat); err != nil {
			t.Fatal(err)
		}
	}
	op := func(dest, c1, c2, scaleWrite int) engine.Operation {
		return engine.Operation{
			Dest: dest, DestScaleWrite: scaleWrite, DestScaleRead: engine.None,
			Child1: c1, Child1Mat: c1, Child2: c2, Child2Mat: c2,
		}
	}
	// The batch: RAW (op2 reads 4), WAW+WAR (op3 rewrites 4 after op2's
	// read), a second RAW chain into 6, and a shared scale buffer between
	// the two rescaling operations.
	ops := []engine.Operation{
		op(4, 0, 1, 0),
		op(5, 4, 2, 0), // same DestScaleWrite as op1
		op(4, 2, 3, engine.None),
		op(6, 4, 5, engine.None),
	}
	if err := e.UpdatePartials(ops); err != nil {
		t.Fatal(err)
	}
	var out [][]float64
	for _, buf := range []int{4, 5, 6} {
		p, err := e.GetPartials(buf)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// TestAliasedBatchesMatchSerial is the regression test for the RAW-only
// dependency analyzer: under `go test -race` the seed code races on the
// rewritten buffer and the shared scale buffer in Futures mode, and the
// results diverge from serial execution. Every strategy must produce
// bitwise-identical partials (the kernels are deterministic per pattern).
func TestAliasedBatchesMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, err := tree.Random(rng, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	const patterns = 96 // below DefaultMinPatterns: exercises hybrid chunking
	ref := aliasedEngine(t, tr, Serial, patterns)
	want := runAliasedBatch(t, ref, tr, patterns)
	ref.Close()
	for _, mode := range []Mode{Futures, ThreadCreate, ThreadPool, ThreadPoolHybrid} {
		for rep := 0; rep < 5; rep++ { // repeated runs make races likely to fire
			e := aliasedEngine(t, tr, mode, patterns)
			got := runAliasedBatch(t, e, tr, patterns)
			e.Close()
			for b := range want {
				for i := range want[b] {
					if want[b][i] != got[b][i] {
						t.Fatalf("%v rep %d: buffer %d diverges from serial at %d: %v != %v",
							mode, rep, []int{4, 5, 6}[b], i, got[b][i], want[b][i])
					}
				}
			}
		}
	}
}

// TestHybridMatchesSerialOnRandomTrees drives full tree schedules through
// the hybrid scheduler across pattern counts spanning the chunking regimes.
func TestHybridMatchesSerialOnRandomTrees(t *testing.T) {
	for _, patterns := range []int{1, 37, 128, 600} {
		rng := rand.New(rand.NewSource(int64(patterns)))
		tr, err := tree.Random(rng, 16, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := seqgen.RandomPatterns(rng, tr.TipCount, 4, patterns)
		if err != nil {
			t.Fatal(err)
		}
		m := substmodel.NewJC69()
		rates := substmodel.SingleRate()
		eS, err := New(testConfig(tr, 4, patterns, 1, false), Serial)
		if err != nil {
			t.Fatal(err)
		}
		want := driveEngine(t, eS, tr, m, rates, ps, true, false)
		eS.Close()
		eH, err := New(testConfig(tr, 4, patterns, 1, false), ThreadPoolHybrid)
		if err != nil {
			t.Fatal(err)
		}
		got := driveEngine(t, eH, tr, m, rates, ps, true, false)
		eH.Close()
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Errorf("patterns=%d: hybrid lnL %v, serial %v", patterns, got, want)
		}
	}
}

func TestHybridChunksPolicy(t *testing.T) {
	cases := []struct {
		width, patterns, threads, want int
	}{
		{8, 10000, 56, 7},  // wide level, plenty of patterns: saturate pool
		{1, 10000, 56, 56}, // single op: pure pattern chunking
		{8, 128, 56, 2},    // small patterns: chunk bounded by HybridMinChunk
		{16, 128, 8, 1},    // level already wider than the pool
		{1, 1, 8, 1},       // degenerate: never below one chunk
	}
	for _, c := range cases {
		if got := HybridChunks(c.width, c.patterns, c.threads); got != c.want {
			t.Errorf("HybridChunks(%d, %d, %d) = %d, want %d",
				c.width, c.patterns, c.threads, got, c.want)
		}
	}
}

// TestUseAfterClose is the regression test for the nil-pool crash: Close must
// be idempotent and computation after Close must fail with ErrClosed instead
// of panicking on the torn-down worker pool.
func TestUseAfterClose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr, err := tree.Random(rng, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range Modes() {
		e, err := New(testConfig(tr, 4, 40, 1, false), mode)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatalf("%v: first Close: %v", mode, err)
		}
		if err := e.Close(); err != nil {
			t.Fatalf("%v: second Close not idempotent: %v", mode, err)
		}
		err = e.UpdatePartials([]engine.Operation{{
			Dest: 4, DestScaleWrite: engine.None, DestScaleRead: engine.None,
			Child1: 0, Child1Mat: 0, Child2: 1, Child2Mat: 1,
		}})
		if !errors.Is(err, ErrClosed) {
			t.Errorf("%v: UpdatePartials after Close = %v, want ErrClosed", mode, err)
		}
		if _, err := e.CalculateRootLogLikelihoods(0, engine.None); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: CalculateRootLogLikelihoods after Close = %v, want ErrClosed", mode, err)
		}
		if _, err := e.SiteLogLikelihoods(0, engine.None); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: SiteLogLikelihoods after Close = %v, want ErrClosed", mode, err)
		}
		if _, err := e.CalculateEdgeLogLikelihoods(0, 1, 0, engine.None); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: CalculateEdgeLogLikelihoods after Close = %v, want ErrClosed", mode, err)
		}
		if _, _, _, err := e.CalculateEdgeDerivatives(0, 1, 0, 1, engine.None, engine.None); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: CalculateEdgeDerivatives after Close = %v, want ErrClosed", mode, err)
		}
	}
}
