package cpuimpl

import (
	"math"
	"math/rand"
	"testing"

	"gobeagle/internal/engine"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// edgeSetup prepares a two-tip problem for derivative evaluation and
// returns the engine plus the evaluation closure lnL(t) across the joined
// branch.
func edgeSetup(t *testing.T) (engine.Engine, func(bt float64) (lnL, d1, d2 float64)) {
	t.Helper()
	rng := rand.New(rand.NewSource(33))
	tr, err := tree.ParseNewick("(a:0.2,b:0.3);")
	if err != nil {
		t.Fatal(err)
	}
	m, err := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rates, err := substmodel.GammaRates(0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Simulated data carries real signal, so the likelihood has an interior
	// optimum in the branch length (random patterns would not).
	align, err := seqgen.Simulate(rng, tr, m, rates, 800)
	if err != nil {
		t.Fatal(err)
	}
	ps := seqgen.CompressPatterns(align)
	cfg := testConfig(tr, 4, ps.PatternCount(), 3, false)
	cfg.MatrixBuffers = 6
	e, err := New(cfg, Serial)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })

	ed, err := m.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	steps := []error{
		e.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data),
		e.SetCategoryRates(rates.Rates),
		e.SetCategoryWeights(rates.Weights),
		e.SetStateFrequencies(m.Frequencies),
		e.SetPatternWeights(ps.Weights),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := e.SetTipPartials(i, ps.TipPartials(i)); err != nil {
			t.Fatal(err)
		}
	}
	eval := func(bt float64) (float64, float64, float64) {
		if err := e.UpdateTransitionMatrices(0, []int{3}, []float64{bt}); err != nil {
			t.Fatal(err)
		}
		if err := e.UpdateTransitionDerivatives(0, []int{4}, []int{5}, []float64{bt}); err != nil {
			t.Fatal(err)
		}
		lnL, d1, d2, err := e.CalculateEdgeDerivatives(0, 1, 3, 4, 5, engine.None)
		if err != nil {
			t.Fatal(err)
		}
		return lnL, d1, d2
	}
	return e, eval
}

func TestEdgeDerivativesMatchFiniteDifferences(t *testing.T) {
	_, eval := edgeSetup(t)
	const h = 1e-5
	for _, bt := range []float64{0.05, 0.2, 0.8} {
		lnL, d1, d2 := eval(bt)
		lp, _, _ := eval(bt + h)
		lm, _, _ := eval(bt - h)
		numD1 := (lp - lm) / (2 * h)
		numD2 := (lp - 2*lnL + lm) / (h * h)
		if math.Abs(d1-numD1) > 1e-5*(1+math.Abs(numD1)) {
			t.Errorf("t=%v: analytic d1 %v vs numeric %v", bt, d1, numD1)
		}
		if math.Abs(d2-numD2) > 1e-3*(1+math.Abs(numD2)) {
			t.Errorf("t=%v: analytic d2 %v vs numeric %v", bt, d2, numD2)
		}
	}
}

func TestEdgeDerivativeZeroAtOptimum(t *testing.T) {
	// Find the branch length where d1 crosses zero by bisection and check
	// d2 is negative there (a maximum) and d1 flips sign around it.
	_, eval := edgeSetup(t)
	lo, hi := 0.01, 5.0
	_, dLo, _ := eval(lo)
	_, dHi, _ := eval(hi)
	if dLo <= 0 || dHi >= 0 {
		t.Skipf("optimum not bracketed: d(%v)=%v d(%v)=%v", lo, dLo, hi, dHi)
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		_, d1, _ := eval(mid)
		if d1 > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	opt := (lo + hi) / 2
	lnOpt, d1, d2 := eval(opt)
	if math.Abs(d1) > 1e-5 {
		t.Fatalf("derivative at optimum %v is %v", opt, d1)
	}
	if d2 >= 0 {
		t.Fatalf("second derivative at optimum is %v, want negative", d2)
	}
	// The optimum must beat nearby points.
	lnLeft, _, _ := eval(opt * 0.8)
	lnRight, _, _ := eval(opt * 1.25)
	if lnOpt < lnLeft || lnOpt < lnRight {
		t.Fatalf("lnL at optimum %v not maximal (%v, %v)", lnOpt, lnLeft, lnRight)
	}
}

func TestEdgeDerivativesWithoutSecond(t *testing.T) {
	e, eval := edgeSetup(t)
	lnL, d1, _ := eval(0.3)
	// Request only the first derivative.
	lnL2, d1b, d2b, err := e.(*Engine[float64]).CalculateEdgeDerivatives(0, 1, 3, 4, engine.None, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	if lnL2 != lnL || d1b != d1 {
		t.Fatalf("first-derivative-only call disagrees: %v/%v vs %v/%v", lnL2, d1b, lnL, d1)
	}
	if d2b != 0 {
		t.Fatalf("skipped second derivative should be 0, got %v", d2b)
	}
}

func TestEdgeDerivativeErrors(t *testing.T) {
	e, _ := edgeSetup(t)
	eng := e.(*Engine[float64])
	if _, _, _, err := eng.CalculateEdgeDerivatives(0, 1, 99, 4, 5, engine.None); err == nil {
		t.Error("bad matrix index must error")
	}
	if _, _, _, err := eng.CalculateEdgeDerivatives(0, 1, 3, 4, 5, engine.None); err == nil {
		t.Error("uncomputed matrices must error")
	}
	if err := eng.UpdateTransitionDerivatives(0, []int{1}, nil, []float64{0.1, 0.2}); err == nil {
		t.Error("length mismatch must error")
	}
	if err := eng.UpdateTransitionDerivatives(0, []int{1, 2}, []int{3}, []float64{0.1, 0.2}); err == nil {
		t.Error("second-derivative count mismatch must error")
	}
	if err := eng.UpdateTransitionDerivatives(1, []int{1}, nil, []float64{0.1}); err == nil {
		t.Error("empty eigen slot must error")
	}
}
