package cpuimpl

import (
	"math"
	"math/rand"
	"testing"

	"gobeagle/internal/engine"
	"gobeagle/internal/kernels"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// naiveLogLikelihood computes the tree log likelihood by direct Felsenstein
// pruning in float64, independently of any kernel code, as the correctness
// reference.
func naiveLogLikelihood(t *tree.Tree, m *substmodel.Model, rates *substmodel.SiteRates, ps *seqgen.PatternSet) float64 {
	ed, err := m.Eigen()
	if err != nil {
		panic(err)
	}
	s := m.StateCount
	nc := len(rates.Rates)
	// Per-node, per-category transition matrices.
	probs := make(map[int][][]float64)
	for _, n := range t.Nodes() {
		if n == t.Root {
			continue
		}
		per := make([][]float64, nc)
		for c, r := range rates.Rates {
			p := make([]float64, s*s)
			if err := ed.TransitionMatrix(n.Length*r, p); err != nil {
				panic(err)
			}
			per[c] = p
		}
		probs[n.Index] = per
	}
	var lnL float64
	for pi, pat := range ps.Patterns {
		var site float64
		for c := 0; c < nc; c++ {
			var rec func(n *tree.Node) []float64
			rec = func(n *tree.Node) []float64 {
				l := make([]float64, s)
				if n.IsTip() {
					st := pat[n.Index]
					if st >= s {
						for i := range l {
							l[i] = 1
						}
					} else {
						l[st] = 1
					}
					return l
				}
				ll := rec(n.Left)
				lr := rec(n.Right)
				pl := probs[n.Left.Index][c]
				pr := probs[n.Right.Index][c]
				for i := 0; i < s; i++ {
					var a, b float64
					for j := 0; j < s; j++ {
						a += pl[i*s+j] * ll[j]
						b += pr[i*s+j] * lr[j]
					}
					l[i] = a * b
				}
				return l
			}
			root := rec(t.Root)
			var cat float64
			for i := 0; i < s; i++ {
				cat += m.Frequencies[i] * root[i]
			}
			site += rates.Weights[c] * cat
		}
		lnL += ps.Weights[pi] * math.Log(site)
	}
	return lnL
}

// driveEngine loads a tree/model/data problem into an engine and returns the
// root log likelihood. When scaled is true every operation rescales and the
// accumulated factors are used at the root.
func driveEngine(t *testing.T, e engine.Engine, tr *tree.Tree, m *substmodel.Model,
	rates *substmodel.SiteRates, ps *seqgen.PatternSet, compactTips, scaled bool) float64 {
	t.Helper()
	ed, err := m.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetEigenDecomposition(0, ed.Values, ed.Vectors.Data, ed.InverseVectors.Data); err != nil {
		t.Fatal(err)
	}
	if err := e.SetCategoryRates(rates.Rates); err != nil {
		t.Fatal(err)
	}
	if err := e.SetCategoryWeights(rates.Weights); err != nil {
		t.Fatal(err)
	}
	if err := e.SetStateFrequencies(m.Frequencies); err != nil {
		t.Fatal(err)
	}
	if err := e.SetPatternWeights(ps.Weights); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.TipCount; i++ {
		if compactTips {
			if err := e.SetTipStates(i, ps.TipStates(i)); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := e.SetTipPartials(i, ps.TipPartials(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sched := tr.FullSchedule()
	mats := make([]int, len(sched.Matrices))
	lens := make([]float64, len(sched.Matrices))
	for i, mu := range sched.Matrices {
		mats[i] = mu.Matrix
		lens[i] = mu.Length
	}
	if err := e.UpdateTransitionMatrices(0, mats, lens); err != nil {
		t.Fatal(err)
	}
	ops := make([]engine.Operation, len(sched.Ops))
	scaleBufs := make([]int, 0, len(sched.Ops))
	for i, op := range sched.Ops {
		sw := engine.None
		if scaled {
			sw = i // one scale buffer per internal node operation
			scaleBufs = append(scaleBufs, i)
		}
		ops[i] = engine.Operation{
			Dest:           op.Dest,
			DestScaleWrite: sw,
			DestScaleRead:  engine.None,
			Child1:         op.Child1,
			Child1Mat:      op.Child1Mat,
			Child2:         op.Child2,
			Child2Mat:      op.Child2Mat,
		}
	}
	if err := e.UpdatePartials(ops); err != nil {
		t.Fatal(err)
	}
	cum := engine.None
	if scaled {
		cum = len(sched.Ops) // cumulative buffer
		if err := e.ResetScaleFactors(cum); err != nil {
			t.Fatal(err)
		}
		if err := e.AccumulateScaleFactors(scaleBufs, cum); err != nil {
			t.Fatal(err)
		}
	}
	lnL, err := e.CalculateRootLogLikelihoods(sched.Root, cum)
	if err != nil {
		t.Fatal(err)
	}
	return lnL
}

func testConfig(tr *tree.Tree, stateCount, patterns, cats int, single bool) engine.Config {
	return engine.Config{
		TipCount:        tr.TipCount,
		PartialsBuffers: tr.NodeCount(),
		MatrixBuffers:   tr.NodeCount(),
		EigenBuffers:    1,
		ScaleBuffers:    tr.NodeCount() + 1,
		Dims: kernels.Dims{
			StateCount:    stateCount,
			PatternCount:  patterns,
			CategoryCount: cats,
		},
		SinglePrecision: single,
		MinPatternsWork: 1, // force threading paths in tests
		Threads:         4, // exercise parallel chunking even on 1-core hosts
	}
}

func TestAllModesMatchNaiveNucleotide(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr, err := tree.Random(rng, 8, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	m, err := substmodel.NewHKY85(2.5, []float64{0.3, 0.2, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rates, err := substmodel.GammaRates(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	align, err := seqgen.Simulate(rng, tr, m, rates, 300)
	if err != nil {
		t.Fatal(err)
	}
	ps := seqgen.CompressPatterns(align)
	want := naiveLogLikelihood(tr, m, rates, ps)
	if math.IsNaN(want) || want >= 0 {
		t.Fatalf("suspicious reference lnL %v", want)
	}
	for _, mode := range Modes() {
		for _, compact := range []bool{true, false} {
			e, err := New(testConfig(tr, 4, ps.PatternCount(), 4, false), mode)
			if err != nil {
				t.Fatal(err)
			}
			got := driveEngine(t, e, tr, m, rates, ps, compact, false)
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-8*math.Abs(want) {
				t.Errorf("%v compact=%v: lnL %v want %v", mode, compact, got, want)
			}
		}
	}
}

func TestAllModesMatchNaiveCodon(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr, err := tree.Random(rng, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := substmodel.NewGY94(2, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rates := substmodel.SingleRate()
	ps, err := seqgen.RandomPatterns(rng, tr.TipCount, 61, 40)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveLogLikelihood(tr, m, rates, ps)
	for _, mode := range []Mode{Serial, SSE, ThreadPool} {
		e, err := New(testConfig(tr, 61, ps.PatternCount(), 1, false), mode)
		if err != nil {
			t.Fatal(err)
		}
		got := driveEngine(t, e, tr, m, rates, ps, true, false)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-8*math.Abs(want) {
			t.Errorf("%v codon: lnL %v want %v", mode, got, want)
		}
	}
}

func TestSinglePrecisionTracksDouble(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr, _ := tree.Random(rng, 10, 0.1)
	m := substmodel.NewJC69()
	rates := substmodel.SingleRate()
	align, _ := seqgen.Simulate(rng, tr, m, rates, 200)
	ps := seqgen.CompressPatterns(align)

	eD, err := New(testConfig(tr, 4, ps.PatternCount(), 1, false), Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer eD.Close()
	eS, err := New(testConfig(tr, 4, ps.PatternCount(), 1, true), Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer eS.Close()
	lnLD := driveEngine(t, eD, tr, m, rates, ps, true, false)
	lnLS := driveEngine(t, eS, tr, m, rates, ps, true, false)
	if rel := math.Abs(lnLD-lnLS) / math.Abs(lnLD); rel > 1e-4 {
		t.Fatalf("precision divergence: double %v single %v (rel %v)", lnLD, lnLS, rel)
	}
}

func TestScalingInvariance(t *testing.T) {
	// Rescaled and unscaled evaluations must agree; rescaling is required on
	// large trees in single precision, where raw partials underflow.
	rng := rand.New(rand.NewSource(13))
	tr, _ := tree.Random(rng, 24, 0.4)
	m := substmodel.NewJC69()
	rates := substmodel.SingleRate()
	align, _ := seqgen.Simulate(rng, tr, m, rates, 100)
	ps := seqgen.CompressPatterns(align)

	for _, mode := range []Mode{Serial, ThreadPool} {
		e1, err := New(testConfig(tr, 4, ps.PatternCount(), 1, false), mode)
		if err != nil {
			t.Fatal(err)
		}
		plain := driveEngine(t, e1, tr, m, rates, ps, true, false)
		e1.Close()
		e2, err := New(testConfig(tr, 4, ps.PatternCount(), 1, false), mode)
		if err != nil {
			t.Fatal(err)
		}
		scaled := driveEngine(t, e2, tr, m, rates, ps, true, true)
		e2.Close()
		if math.Abs(plain-scaled) > 1e-8*math.Abs(plain) {
			t.Errorf("%v: scaled %v plain %v", mode, scaled, plain)
		}
	}
}

func TestEdgeLogLikelihoodPulleyPrinciple(t *testing.T) {
	// For a reversible model, integrating at the root equals integrating
	// across the root's two child branches joined into one edge
	// (Felsenstein's pulley principle).
	rng := rand.New(rand.NewSource(17))
	tr, err := tree.ParseNewick("(a:0.2,b:0.35);")
	if err != nil {
		t.Fatal(err)
	}
	m, err := substmodel.NewHKY85(2, []float64{0.3, 0.2, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rates, _ := substmodel.GammaRates(1.0, 2)
	ps, err := seqgen.RandomPatterns(rng, 2, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(tr, 4, ps.PatternCount(), 2, false)
	cfg.MatrixBuffers = 4 // room for the joined-branch matrix
	e, err := New(cfg, Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rootLnL := driveEngine(t, e, tr, m, rates, ps, false, false)

	// Joined branch: length(a) + length(b).
	joined := tr.Tips()[0].Length + tr.Tips()[1].Length
	if err := e.UpdateTransitionMatrices(0, []int{3}, []float64{joined}); err != nil {
		t.Fatal(err)
	}
	edgeLnL, err := e.CalculateEdgeLogLikelihoods(0, 1, 3, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rootLnL-edgeLnL) > 1e-9*math.Abs(rootLnL) {
		t.Fatalf("pulley principle violated: root %v edge %v", rootLnL, edgeLnL)
	}
}

func TestSiteLogLikelihoodsSumToTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tr, _ := tree.Random(rng, 6, 0.2)
	m := substmodel.NewJC69()
	rates := substmodel.SingleRate()
	align, _ := seqgen.Simulate(rng, tr, m, rates, 120)
	ps := seqgen.CompressPatterns(align)
	e, err := New(testConfig(tr, 4, ps.PatternCount(), 1, false), Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	total := driveEngine(t, e, tr, m, rates, ps, true, false)
	site, err := e.SiteLogLikelihoods(tr.Root.Index, engine.None)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for p, l := range site {
		sum += ps.Weights[p] * l
	}
	if math.Abs(sum-total) > 1e-9*math.Abs(total) {
		t.Fatalf("site sum %v != total %v", sum, total)
	}
}

func TestThreadCreateThresholdStaysSerial(t *testing.T) {
	// Below the pattern threshold, threaded modes must behave exactly like
	// serial (bitwise identical results).
	rng := rand.New(rand.NewSource(23))
	tr, _ := tree.Random(rng, 8, 0.1)
	m := substmodel.NewJC69()
	rates := substmodel.SingleRate()
	ps, _ := seqgen.RandomPatterns(rng, 8, 4, 64)

	cfgSerial := testConfig(tr, 4, 64, 1, false)
	cfgSerial.MinPatternsWork = DefaultMinPatterns
	eS, err := New(cfgSerial, Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer eS.Close()
	cfgTC := testConfig(tr, 4, 64, 1, false)
	cfgTC.MinPatternsWork = DefaultMinPatterns // 64 < 512 → serial path
	eT, err := New(cfgTC, ThreadCreate)
	if err != nil {
		t.Fatal(err)
	}
	defer eT.Close()
	a := driveEngine(t, eS, tr, m, rates, ps, true, false)
	b := driveEngine(t, eT, tr, m, rates, ps, true, false)
	if a != b {
		t.Fatalf("threshold not honored: serial %v threadcreate %v", a, b)
	}
}

func TestEngineErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tr, _ := tree.Random(rng, 4, 0.1)
	cfg := testConfig(tr, 4, 10, 1, false)
	e, err := New(cfg, Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if err := e.SetTipStates(99, make([]int, 10)); err == nil {
		t.Error("expected error for bad tip index")
	}
	if err := e.SetTipStates(0, make([]int, 5)); err == nil {
		t.Error("expected error for wrong states length")
	}
	if err := e.SetTipPartials(0, make([]float64, 7)); err == nil {
		t.Error("expected error for wrong partials length")
	}
	if err := e.SetCategoryRates([]float64{1, 2}); err == nil {
		t.Error("expected error for wrong rate count")
	}
	if err := e.SetStateFrequencies([]float64{1}); err == nil {
		t.Error("expected error for wrong frequency count")
	}
	if err := e.SetPatternWeights([]float64{1}); err == nil {
		t.Error("expected error for wrong pattern weight count")
	}
	if err := e.SetEigenDecomposition(5, nil, nil, nil); err == nil {
		t.Error("expected error for bad eigen slot")
	}
	if err := e.UpdateTransitionMatrices(0, []int{0}, []float64{0.1}); err == nil {
		t.Error("expected error for empty eigen slot")
	}
	if _, err := e.GetPartials(0); err == nil {
		t.Error("expected error for unset partials")
	}
	if _, err := e.GetTransitionMatrix(0); err == nil {
		t.Error("expected error for unset matrix")
	}
	if _, err := e.CalculateRootLogLikelihoods(99, engine.None); err == nil {
		t.Error("expected error for bad root buffer")
	}
	// Operation using uncomputed matrices.
	err = e.UpdatePartials([]engine.Operation{{
		Dest: 5, DestScaleWrite: engine.None, DestScaleRead: engine.None,
		Child1: 0, Child1Mat: 0, Child2: 1, Child2Mat: 1,
	}})
	if err == nil {
		t.Error("expected error for operation with missing matrices")
	}
}

func TestNewErrors(t *testing.T) {
	var cfg engine.Config
	if _, err := New(cfg, Serial); err == nil {
		t.Fatal("expected error for zero config")
	}
	rng := rand.New(rand.NewSource(1))
	tr, _ := tree.Random(rng, 4, 0.1)
	if _, err := New(testConfig(tr, 4, 10, 1, false), Mode(99)); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}

func TestGetPartialsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr, _ := tree.Random(rng, 4, 0.1)
	e, err := New(testConfig(tr, 4, 5, 2, false), Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	in := make([]float64, 2*5*4)
	for i := range in {
		in[i] = rng.Float64()
	}
	if err := e.SetPartials(3, in); err != nil {
		t.Fatal(err)
	}
	out, err := e.GetPartials(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestSetTransitionMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tr, _ := tree.Random(rng, 4, 0.1)
	e, err := New(testConfig(tr, 4, 5, 2, false), Serial)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	in := make([]float64, 2*16)
	for i := range in {
		in[i] = rng.Float64()
	}
	if err := e.SetTransitionMatrix(1, in); err != nil {
		t.Fatal(err)
	}
	out, err := e.GetTransitionMatrix(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		Serial:           "CPU-serial",
		SSE:              "CPU-SSE",
		Futures:          "CPU-futures",
		ThreadCreate:     "CPU-threadcreate",
		ThreadPool:       "CPU-threadpool",
		ThreadPoolHybrid: "CPU-threadpool-hybrid",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q want %q", int(m), m.String(), want)
		}
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode must still render")
	}
}

func TestAllModesMatchNaiveAminoAcid(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tr, err := tree.Random(rng, 6, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	m, err := substmodel.NewPoissonAA(nil)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := substmodel.GammaRates(0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	align, err := seqgen.Simulate(rng, tr, m, rates, 150)
	if err != nil {
		t.Fatal(err)
	}
	ps := seqgen.CompressPatterns(align)
	want := naiveLogLikelihood(tr, m, rates, ps)
	for _, mode := range []Mode{Serial, SSE, ThreadPool} {
		e, err := New(testConfig(tr, 20, ps.PatternCount(), 2, false), mode)
		if err != nil {
			t.Fatal(err)
		}
		got := driveEngine(t, e, tr, m, rates, ps, true, false)
		e.Close()
		if math.Abs(got-want) > 1e-8*math.Abs(want) {
			t.Errorf("%v amino acid: lnL %v want %v", mode, got, want)
		}
	}
}
