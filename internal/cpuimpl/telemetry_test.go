package cpuimpl

import (
	"math/rand"
	"testing"
	"time"

	"gobeagle/internal/engine"
	"gobeagle/internal/seqgen"
	"gobeagle/internal/substmodel"
	"gobeagle/internal/telemetry"
	"gobeagle/internal/tree"
)

// telemetryProblem builds a shared small problem for the telemetry tests.
func telemetryProblem(t *testing.T) (*tree.Tree, *substmodel.Model, *substmodel.SiteRates, *seqgen.PatternSet) {
	t.Helper()
	rng := rand.New(rand.NewSource(19))
	tr, err := tree.Random(rng, 12, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	m, err := substmodel.NewHKY85(2.0, []float64{0.3, 0.2, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rates, err := substmodel.GammaRates(0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	align, err := seqgen.Simulate(rng, tr, m, rates, 200)
	if err != nil {
		t.Fatal(err)
	}
	return tr, m, rates, seqgen.CompressPatterns(align)
}

func TestTelemetryRecordsKernelsInEveryMode(t *testing.T) {
	tr, m, rates, ps := telemetryProblem(t)
	for _, mode := range Modes() {
		tel := telemetry.New()
		tel.SetEnabled(true)
		cfg := testConfig(tr, 4, ps.PatternCount(), 4, false)
		cfg.Telemetry = tel
		e, err := New(cfg, mode)
		if err != nil {
			t.Fatal(err)
		}
		driveEngine(t, e, tr, m, rates, ps, true, false)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		snap := tel.Snapshot()
		p := snap.Kernel(telemetry.KernelPartials)
		if p.Calls == 0 || p.Ops != uint64(tr.TipCount-1) {
			t.Errorf("%v: partials ops/calls = %d/%d, want %d ops", mode, p.Ops, p.Calls, tr.TipCount-1)
		}
		if snap.Kernel(telemetry.KernelRoot).Calls == 0 {
			t.Errorf("%v: root kernel not recorded", mode)
		}
		if mats := snap.Kernel(telemetry.KernelMatrices); mats.Ops == 0 {
			t.Errorf("%v: matrices kernel not recorded", mode)
		}
		if snap.TotalFlops <= 0 {
			t.Errorf("%v: no effective flops accumulated", mode)
		}
		if snap.Batches == 0 {
			t.Errorf("%v: batch counter untouched", mode)
		}
	}
}

// TestTelemetryLevelTraces checks the leveled strategies (futures and
// thread-pool-hybrid) report their dependency leveling through the batch
// tracer, with the per-level op counts summing to the batch's operations.
func TestTelemetryLevelTraces(t *testing.T) {
	tr, m, rates, ps := telemetryProblem(t)
	for _, mode := range []Mode{Futures, ThreadPoolHybrid} {
		tel := telemetry.New()
		tel.SetEnabled(true)
		cfg := testConfig(tr, 4, ps.PatternCount(), 4, false)
		cfg.Telemetry = tel
		e, err := New(cfg, mode)
		if err != nil {
			t.Fatal(err)
		}
		driveEngine(t, e, tr, m, rates, ps, true, false)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		levels := tel.Snapshot().Levels
		if len(levels) == 0 {
			t.Errorf("%v: no dependency levels traced", mode)
			continue
		}
		byBatch := map[uint64]int{}
		lastLevel := map[uint64]int{}
		for _, lt := range levels {
			if lt.Batch == 0 {
				t.Errorf("%v: level trace with zero batch id", mode)
			}
			if lt.Tasks < 1 || lt.Ops < 1 {
				t.Errorf("%v: degenerate level trace %+v", mode, lt)
			}
			if prev, ok := lastLevel[lt.Batch]; ok && lt.Level != prev+1 {
				t.Errorf("%v: batch %d levels not consecutive: %d after %d", mode, lt.Batch, lt.Level, prev)
			}
			lastLevel[lt.Batch] = lt.Level
			byBatch[lt.Batch] += lt.Ops
		}
		for batch, ops := range byBatch {
			if ops != tr.TipCount-1 {
				t.Errorf("%v: batch %d level ops sum to %d, want %d", mode, batch, ops, tr.TipCount-1)
			}
		}
	}
}

func TestTelemetryDisabledAndNilRecordNothing(t *testing.T) {
	tr, m, rates, ps := telemetryProblem(t)
	disabled := telemetry.New() // never enabled
	for _, tel := range []*telemetry.Collector{disabled, nil} {
		cfg := testConfig(tr, 4, ps.PatternCount(), 4, false)
		cfg.Telemetry = tel
		e, err := New(cfg, ThreadPoolHybrid)
		if err != nil {
			t.Fatal(err)
		}
		driveEngine(t, e, tr, m, rates, ps, true, false)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
	snap := disabled.Snapshot()
	if len(snap.Kernels) != 0 || snap.Batches != 0 || len(snap.Levels) != 0 {
		t.Fatalf("disabled collector recorded: %+v", snap)
	}
}

// TestTelemetryDisabledOverhead is the regression guard for the <2%
// disabled-overhead budget: a disabled collector's UpdatePartials must stay
// close to an engine with no collector at all. The threshold is deliberately
// loose (50%) so scheduler noise on shared CI runners cannot flake it; the
// real budget is pinned by BenchmarkDisabledGuard in internal/telemetry and
// the untouched internal/kernels micro-benchmarks.
func TestTelemetryDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	tr, m, rates, ps := telemetryProblem(t)

	eval := func(tel *telemetry.Collector) time.Duration {
		cfg := testConfig(tr, 4, ps.PatternCount(), 4, false)
		cfg.Telemetry = tel
		e, err := New(cfg, Serial)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		sched := tr.FullSchedule()
		ops := make([]engine.Operation, len(sched.Ops))
		for i, op := range sched.Ops {
			ops[i] = engine.Operation{
				Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
				Child1: op.Child1, Child1Mat: op.Child1Mat,
				Child2: op.Child2, Child2Mat: op.Child2Mat,
			}
		}
		driveEngine(t, e, tr, m, rates, ps, true, false)
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 30; rep++ {
			start := time.Now()
			if err := e.UpdatePartials(ops); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	baseline := eval(nil)
	disabled := eval(telemetry.New())
	if baseline <= 0 {
		t.Skip("timer resolution too coarse for comparison")
	}
	if ratio := float64(disabled) / float64(baseline); ratio > 1.5 {
		t.Errorf("disabled telemetry overhead %.1f%% (baseline %v, disabled %v)",
			100*(ratio-1), baseline, disabled)
	}
}
