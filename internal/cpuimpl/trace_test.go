package cpuimpl

import (
	"testing"
	"time"

	"gobeagle/internal/engine"
	"gobeagle/internal/trace"
)

// TestTraceSpansInEveryMode checks every CPU scheduling strategy emits a
// batch span per UpdatePartials and a root span per likelihood integration,
// and that the leveled strategies additionally emit level spans whose op
// counts sum to the batch's operations.
func TestTraceSpansInEveryMode(t *testing.T) {
	tr, m, rates, ps := telemetryProblem(t)
	for _, mode := range Modes() {
		tc := trace.New()
		tc.SetEnabled(true)
		cfg := testConfig(tr, 4, ps.PatternCount(), 4, false)
		cfg.Trace = tc
		e, err := New(cfg, mode)
		if err != nil {
			t.Fatal(err)
		}
		driveEngine(t, e, tr, m, rates, ps, true, false)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		spans := tc.Snapshot()
		byKind := map[trace.Kind][]trace.Span{}
		for _, s := range spans {
			byKind[s.Kind] = append(byKind[s.Kind], s)
			if s.Dur < 0 || s.Start < 0 {
				t.Errorf("%v: span with negative time: %+v", mode, s)
			}
		}
		if len(byKind[trace.KindBatch]) == 0 {
			t.Errorf("%v: no batch span", mode)
		}
		if len(byKind[trace.KindRoot]) == 0 {
			t.Errorf("%v: no root span", mode)
		}
		if len(byKind[trace.KindMatrices]) == 0 {
			t.Errorf("%v: no matrices span", mode)
		}
		if mode == Futures || mode == ThreadPoolHybrid {
			var ops int64
			for _, s := range byKind[trace.KindLevel] {
				ops += s.Arg1
			}
			if ops != int64(tr.TipCount-1) {
				t.Errorf("%v: level span ops sum to %d, want %d", mode, ops, tr.TipCount-1)
			}
		}
		if mode == ThreadPool || mode == ThreadPoolHybrid {
			if len(byKind[trace.KindTask]) == 0 {
				t.Errorf("%v: pool strategy emitted no worker task spans", mode)
			}
			for _, s := range byKind[trace.KindTask] {
				if s.Lane < 0 {
					t.Errorf("%v: task span without worker lane: %+v", mode, s)
				}
			}
		}
	}
}

// TestTraceDisabledAndNilRecordNothing mirrors the telemetry contract: a
// disabled or absent tracer must leave no spans behind.
func TestTraceDisabledAndNilRecordNothing(t *testing.T) {
	tr, m, rates, ps := telemetryProblem(t)
	disabled := trace.New()
	for _, tc := range []*trace.Tracer{disabled, nil} {
		cfg := testConfig(tr, 4, ps.PatternCount(), 4, false)
		cfg.Trace = tc
		e, err := New(cfg, ThreadPoolHybrid)
		if err != nil {
			t.Fatal(err)
		}
		driveEngine(t, e, tr, m, rates, ps, true, false)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if spans := disabled.Snapshot(); len(spans) != 0 {
		t.Fatalf("disabled tracer recorded %d spans", len(spans))
	}
}

// TestTraceDisabledOverhead is the tracer's counterpart of
// TestTelemetryDisabledOverhead: an engine carrying a disabled tracer must
// run UpdatePartials within noise of an engine with no tracer at all. The
// threshold matches the telemetry test's deliberately loose 50% so shared-CI
// scheduler noise cannot flake it; the per-call budget is pinned by
// BenchmarkDisabledGuard in internal/trace.
func TestTraceDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	tr, m, rates, ps := telemetryProblem(t)

	eval := func(tc *trace.Tracer) time.Duration {
		cfg := testConfig(tr, 4, ps.PatternCount(), 4, false)
		cfg.Trace = tc
		e, err := New(cfg, Serial)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		sched := tr.FullSchedule()
		ops := make([]engine.Operation, len(sched.Ops))
		for i, op := range sched.Ops {
			ops[i] = engine.Operation{
				Dest: op.Dest, DestScaleWrite: engine.None, DestScaleRead: engine.None,
				Child1: op.Child1, Child1Mat: op.Child1Mat,
				Child2: op.Child2, Child2Mat: op.Child2Mat,
			}
		}
		driveEngine(t, e, tr, m, rates, ps, true, false)
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 30; rep++ {
			start := time.Now()
			if err := e.UpdatePartials(ops); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	baseline := eval(nil)
	disabled := eval(trace.New())
	if baseline <= 0 {
		t.Skip("timer resolution too coarse for comparison")
	}
	if ratio := float64(disabled) / float64(baseline); ratio > 1.5 {
		t.Errorf("disabled tracer overhead %.1f%% (baseline %v, disabled %v)",
			100*(ratio-1), baseline, disabled)
	}
}
