package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestDisabledAndNilRecordNothing(t *testing.T) {
	var nilT *Tracer
	off := New()
	for name, tr := range map[string]*Tracer{"nil": nilT, "disabled": off} {
		if tr.Enabled() {
			t.Fatalf("%s tracer reports enabled", name)
		}
		tr.Record(Span{Kind: KindBatch})
		if got := tr.Snapshot(); got != nil {
			t.Fatalf("%s tracer retained %d spans, want none", name, len(got))
		}
		if tr.NextBatch() != 0 && name == "nil" {
			t.Fatalf("nil tracer handed out a batch id")
		}
		if tr.Now() != 0 && name == "nil" {
			t.Fatalf("nil tracer returned a timestamp")
		}
	}
}

func TestRecordSnapshotRoundTrip(t *testing.T) {
	tr := New()
	tr.SetEnabled(true)
	b := tr.NextBatch()
	if b != 1 {
		t.Fatalf("first batch id = %d, want 1", b)
	}
	const n = 100
	for i := 0; i < n; i++ {
		tr.Record(Span{Kind: KindTask, Lane: int32(i % 4), Batch: b, Start: int64(i), Dur: 10, Arg0: int64(i)})
	}
	spans := tr.Snapshot()
	if len(spans) != n {
		t.Fatalf("snapshot has %d spans, want %d", len(spans), n)
	}
	for i, s := range spans {
		if s.Seq != uint64(i) {
			t.Fatalf("span %d has seq %d; snapshot not in record order", i, s.Seq)
		}
		if s.Arg0 != int64(i) {
			t.Fatalf("span %d carries Arg0 %d, want %d", i, s.Arg0, i)
		}
	}
	tr.Reset()
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("retained %d spans after Reset", len(got))
	}
	if !tr.Enabled() {
		t.Fatal("Reset disabled the tracer")
	}
}

func TestRingRetainsMostRecent(t *testing.T) {
	tr := New()
	tr.SetEnabled(true)
	total := TraceCapacity + 500
	for i := 0; i < total; i++ {
		tr.Record(Span{Kind: KindKernel, Arg0: int64(i)})
	}
	spans := tr.Snapshot()
	if len(spans) != TraceCapacity {
		t.Fatalf("retained %d spans, want capacity %d", len(spans), TraceCapacity)
	}
	// The oldest retained span must be exactly total - TraceCapacity.
	if spans[0].Seq != uint64(total-TraceCapacity) {
		t.Fatalf("oldest retained seq = %d, want %d", spans[0].Seq, total-TraceCapacity)
	}
	if spans[len(spans)-1].Seq != uint64(total-1) {
		t.Fatalf("newest retained seq = %d, want %d", spans[len(spans)-1].Seq, total-1)
	}
}

// TestConcurrentRecordSnapshot exercises the sharded ring under -race:
// writers from many goroutines against concurrent snapshots and resets.
func TestConcurrentRecordSnapshot(t *testing.T) {
	tr := New()
	tr.SetEnabled(true)
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Record(Span{Kind: KindTask, Lane: int32(w), Start: int64(i), Dur: 1})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			spans := tr.Snapshot()
			for j := 1; j < len(spans); j++ {
				if spans[j-1].Seq >= spans[j].Seq {
					t.Errorf("snapshot out of order at %d: %d >= %d", j, spans[j-1].Seq, spans[j].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	spans := tr.Snapshot()
	want := writers * perWriter
	if want > TraceCapacity {
		want = TraceCapacity
	}
	if len(spans) != want {
		t.Fatalf("retained %d spans, want %d", len(spans), want)
	}
}

// TestRecordPathAllocatesNothing is the AllocsPerRun guard for the exported
// //beagle:noalloc surface: Enabled, NextBatch, Record, SetRequest and
// CurrentRequest on both the enabled and the disabled path.
func TestRecordPathAllocatesNothing(t *testing.T) {
	on := New()
	on.SetEnabled(true)
	off := New()
	span := Span{Kind: KindKernel, Lane: 1, Batch: 3, Start: 100, Dur: 50, Arg0: 4096}
	for name, tr := range map[string]*Tracer{"enabled": on, "disabled": off} {
		allocs := testing.AllocsPerRun(1000, func() {
			tr.SetRequest(42)
			if tr.Enabled() {
				tr.Record(span)
			}
			tr.Record(span)
			tr.NextBatch()
			tr.SetRequest(tr.CurrentRequest() - tr.CurrentRequest())
		})
		if allocs != 0 {
			t.Errorf("%s record path allocates %.1f per run, want 0", name, allocs)
		}
	}
}

func BenchmarkDisabledGuard(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Record(Span{Kind: KindBatch})
		}
	}
}

func BenchmarkEnabledRecord(b *testing.B) {
	tr := New()
	tr.SetEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(Span{Kind: KindTask, Lane: 2, Start: int64(i), Dur: 10})
	}
}

func TestKindLayersAndNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		if k.Layer() >= numLayers {
			t.Errorf("kind %d maps to out-of-range layer", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
	for l := Layer(0); l < numLayers; l++ {
		if l.String() == "unknown" {
			t.Errorf("layer %d has no name", l)
		}
	}
}

// TestWriteJSONShape validates the trace-event document structure: the
// traceEvents array, complete events with microsecond timestamps, and the
// metadata naming every used layer.
func TestWriteJSONShape(t *testing.T) {
	tr := New()
	tr.SetEnabled(true)
	b := tr.NextBatch()
	tr.Record(Span{Kind: KindBatch, Batch: b, Start: 1000, Dur: 5000, Arg0: 7})
	tr.Record(Span{Kind: KindLevel, Batch: b, Start: 1200, Dur: 800, Arg0: 0, Arg1: 3})
	tr.Record(Span{Kind: KindTask, Lane: 2, Batch: b, Start: 1300, Dur: 400, Arg0: 128})
	tr.Record(Span{Kind: KindKernel, Lane: 0, Batch: b, Start: 0, Dur: 2500, Arg0: 4096})
	tr.Record(Span{Kind: KindBarrier, Lane: -1, Batch: b, Start: 900, Dur: 6000, Arg0: 2})

	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	layers := map[string]bool{}
	var complete int
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			if ev["name"] == "process_name" {
				args := ev["args"].(map[string]any)
				layers[args["name"].(string)] = true
			}
		case "X":
			complete++
			for _, field := range []string{"name", "ts", "pid", "tid"} {
				if _, ok := ev[field]; !ok {
					t.Fatalf("complete event missing %q: %v", field, ev)
				}
			}
		default:
			t.Fatalf("unexpected event phase %q", ph)
		}
	}
	if complete != 5 {
		t.Fatalf("%d complete events, want 5", complete)
	}
	for _, want := range []string{"scheduler", "workers", "device (modeled clock)", "multi-device"} {
		if !layers[want] {
			t.Errorf("missing process_name metadata for layer %q (got %v)", want, layers)
		}
	}
	// Timestamp unit: Span.Start 1000ns must render as 1µs.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == "partials batch" {
			if ts := ev["ts"].(float64); ts != 1.0 {
				t.Fatalf("batch span ts = %v µs, want 1", ts)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("batch span missing from trace output")
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
}
