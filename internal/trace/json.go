package trace

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// This file renders snapshots as Chrome trace-event JSON (the "JSON Array
// Format" with an object wrapper), loadable in Perfetto and chrome://tracing.
// Layers become processes, lanes become threads, and every span is one
// complete event (ph "X"). Host layers share the tracer's epoch timeline;
// the device layer runs on the modeled device clock, which starts at zero —
// its process is named "device (modeled clock)" to make the distinct
// timebase explicit.

// event is one trace-event object. Timestamps and durations are microseconds
// (the trace-event unit); fractional values keep nanosecond resolution.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level trace-event JSON object.
type traceFile struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// spanArgs renders the kind-specific magnitudes under meaningful names.
func spanArgs(s Span) map[string]any {
	args := map[string]any{}
	if s.Batch != 0 {
		args["batch"] = s.Batch
	}
	switch s.Kind {
	case KindBatch, KindBackend:
		args["ops"] = s.Arg0
	case KindLevel:
		args["level"] = s.Arg0
		args["ops"] = s.Arg1
	case KindTask:
		args["patterns"] = s.Arg0
	case KindKernel:
		args["work_items"] = s.Arg0
	case KindTransfer:
		args["bytes"] = s.Arg0
	case KindBarrier:
		args["backends"] = s.Arg0
	case KindRebalance:
		args["patterns_moved"] = s.Arg0
		// The rebalance decision rides its predicted speedup ×1000 in Arg1.
		args["predicted_speedup"] = float64(s.Arg1) / 1000
	case KindMigrate:
		args["patterns_moved"] = s.Arg0
	case KindMatrices, KindDerivatives:
		args["matrices"] = s.Arg0
	case KindRPC:
		args["op"] = s.Arg0
		args["bytes"] = s.Arg1
	case KindServeRequest:
		args["status"] = s.Arg0
		args["batched"] = s.Arg1
	case KindServeCompile:
		args["patterns"] = s.Arg0
	case KindRemoteApply:
		args["op"] = s.Arg0
	}
	if s.Req != 0 {
		args["req"] = s.Req
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// Process is one remote process's contribution to a stitched trace: the
// spans a worker recorded on its own tracer, already rebased into the local
// timeline by whoever drained them (see remoteimpl's span drain). Name is
// the process track label, e.g. "remote worker 0 (10.0.0.7:9400)".
type Process struct {
	Name  string
	Spans []Span
}

// remotePidBase keeps remote process ids clear of the local layer pids
// (1..numLayers) with room for future layers.
const remotePidBase = 100

// WriteJSON writes the spans as a Chrome trace-event JSON document. Spans
// should come from Tracer.Snapshot; an empty slice yields a valid trace with
// only metadata.
func WriteJSON(w io.Writer, spans []Span) error {
	return WriteStitched(w, spans, nil)
}

// WriteStitched writes one Chrome trace-event JSON document combining the
// local spans (rendered as one process per layer, exactly like WriteJSON)
// with per-remote-process tracks: each Process becomes its own pid whose
// threads are the worker's layer/lane pairs. Processes with the same Name
// (the same worker drained through several pooled instances) are merged
// into one track. Request identities survive stitching — every span's
// args.req carries the served request id across process boundaries, so a
// viewer (or cmd/beagletrace) can follow one request from the serve layer
// through the client RPC span into the worker's scheduler and kernels, with
// the wire-time gap visible between them.
func WriteStitched(w io.Writer, local []Span, procs []Process) error {
	type laneKey struct {
		layer Layer
		lane  int
	}
	usedLayers := map[Layer]bool{}
	usedLanes := map[laneKey]bool{}

	var events []event
	for _, s := range local {
		layer := s.Kind.Layer()
		lane := int(s.Lane)
		if lane < 0 {
			lane = 0
		}
		usedLayers[layer] = true
		usedLanes[laneKey{layer, lane}] = true
		events = append(events, event{
			Name: s.Kind.String(),
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  int(layer) + 1, // pid 0 renders poorly in some viewers
			Tid:  lane,
			Cat:  layer.String(),
			Args: spanArgs(s),
		})
	}

	// Metadata events name the processes (layers) and threads (lanes) so the
	// viewer shows "scheduler", "workers", ... instead of bare pids.
	lanes := make([]laneKey, 0, len(usedLanes))
	for k := range usedLanes {
		lanes = append(lanes, k)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].layer != lanes[j].layer {
			return lanes[i].layer < lanes[j].layer
		}
		return lanes[i].lane < lanes[j].lane
	})
	var meta []event
	for layer := Layer(0); layer < numLayers; layer++ {
		if !usedLayers[layer] {
			continue
		}
		meta = append(meta, event{
			Name: "process_name", Ph: "M", Pid: int(layer) + 1,
			Args: map[string]any{"name": layer.String()},
		})
		meta = append(meta, event{
			Name: "process_sort_index", Ph: "M", Pid: int(layer) + 1,
			Args: map[string]any{"sort_index": int(layer)},
		})
	}
	for _, k := range lanes {
		meta = append(meta, event{
			Name: "thread_name", Ph: "M", Pid: int(k.layer) + 1, Tid: k.lane,
			Args: map[string]any{"name": laneName(k.layer, k.lane)},
		})
	}

	// Remote process tracks. Spans keep their own layer/lane identity as
	// threads within the worker's process: tid packs (layer, lane).
	pidByName := map[string]int{}
	var procOrder []string
	for _, p := range procs {
		if _, ok := pidByName[p.Name]; !ok {
			pidByName[p.Name] = remotePidBase + len(procOrder)
			procOrder = append(procOrder, p.Name)
		}
	}
	usedProcLanes := map[string]map[laneKey]bool{}
	for _, p := range procs {
		pid := pidByName[p.Name]
		for _, s := range p.Spans {
			layer := s.Kind.Layer()
			lane := int(s.Lane)
			if lane < 0 {
				lane = 0
			}
			if usedProcLanes[p.Name] == nil {
				usedProcLanes[p.Name] = map[laneKey]bool{}
			}
			usedProcLanes[p.Name][laneKey{layer, lane}] = true
			events = append(events, event{
				Name: s.Kind.String(),
				Ph:   "X",
				Ts:   float64(s.Start) / 1e3,
				Dur:  float64(s.Dur) / 1e3,
				Pid:  pid,
				Tid:  int(layer)*1024 + lane,
				Cat:  layer.String(),
				Args: spanArgs(s),
			})
		}
	}
	for i, name := range procOrder {
		pid := pidByName[name]
		meta = append(meta, event{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
		meta = append(meta, event{
			Name: "process_sort_index", Ph: "M", Pid: pid,
			Args: map[string]any{"sort_index": int(numLayers) + i},
		})
		pl := make([]laneKey, 0, len(usedProcLanes[name]))
		for k := range usedProcLanes[name] {
			pl = append(pl, k)
		}
		sort.Slice(pl, func(i, j int) bool {
			if pl[i].layer != pl[j].layer {
				return pl[i].layer < pl[j].layer
			}
			return pl[i].lane < pl[j].lane
		})
		for _, k := range pl {
			meta = append(meta, event{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: int(k.layer)*1024 + k.lane,
				Args: map[string]any{"name": k.layer.String() + " " + laneName(k.layer, k.lane)},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: append(meta, events...), DisplayTimeUnit: "ns"})
}

// laneName labels one thread track within a layer.
func laneName(layer Layer, lane int) string {
	switch layer {
	case LayerWorker:
		return "worker " + strconv.Itoa(lane)
	case LayerDevice:
		return "queue " + strconv.Itoa(lane)
	case LayerMulti:
		return "backend " + strconv.Itoa(lane)
	case LayerNet:
		return "link " + strconv.Itoa(lane)
	default:
		return "lane " + strconv.Itoa(lane)
	}
}
