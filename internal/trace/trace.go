// Package trace is the library's span tracer: the timeline counterpart of
// the aggregate counters in internal/telemetry. Where telemetry answers "how
// much time did each kernel family take", the tracer answers "what did the
// scheduler, the workers, the modeled devices and the multi-device engine
// actually do, and when" — the view the paper's evaluation (Fig. 4–6,
// Tables III–V) needs to explain crossover points and multi-device splits.
//
// A Tracer is attached to one engine instance through engine.Config.Trace
// and shared by every layer of that instance (scheduler, worker pool, device
// queues, multi-device barriers). Spans are fixed-size values written into
// sharded ring buffers; the record path allocates nothing and the disabled
// fast path is a single atomic load, exactly like the telemetry collector.
// Ring memory is only allocated when tracing is first enabled, so the tracer
// every instance carries costs a few words while off.
//
// Snapshots merge the shards into one sequence-ordered span list, and
// WriteJSON renders that list as Chrome trace-event JSON loadable in
// Perfetto or chrome://tracing. All methods are safe on a nil *Tracer, which
// behaves as permanently disabled.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies what a span represents; it determines the layer (process
// track) the span is rendered into.
type Kind uint8

// Span kinds, grouped by layer.
const (
	// KindBatch is one UpdatePartials batch on one engine (Arg0 = executed
	// ops, Arg1 = ops skipped by incremental re-evaluation; a fully clean
	// resubmission appears as a skip span with Arg0 = 0).
	KindBatch Kind = iota
	// KindLevel is one scheduler dependency level of a leveled CPU strategy
	// (Arg0 = level index, Arg1 = ops in the level).
	KindLevel
	// KindRoot is one root-likelihood integration.
	KindRoot
	// KindTask is one (operation, pattern-chunk) task on a pool worker
	// (Lane = worker index, Arg0 = pattern span).
	KindTask
	// KindKernel is one device kernel launch on the modeled device clock
	// (Arg0 = global work-items).
	KindKernel
	// KindTransfer is one host↔device copy on the modeled device clock
	// (Arg0 = bytes moved).
	KindTransfer
	// KindBarrier is the multi-device end-of-batch barrier spanning all
	// backends (Arg0 = backend count).
	KindBarrier
	// KindBackend is one backend's share of a multi-device batch
	// (Lane = backend index, Arg0 = patterns in the backend's slice).
	KindBackend
	// KindRebalance is one adaptive-rebalance decision that repartitioned
	// the patterns (Arg0 = patterns migrated).
	KindRebalance
	// KindMigrate is one boundary pattern-span migration between neighboring
	// backends (Lane = left backend of the boundary, Arg0 = patterns moved).
	KindMigrate
	// KindMatrices is one transition-matrix update batch (Arg0 = matrices).
	KindMatrices
	// KindDerivatives is one derivative-matrix update batch (Arg0 = matrices).
	KindDerivatives
	// KindServeBatch is one micro-batch executed by the serving layer's
	// warm-instance calculator (Arg0 = requests coalesced, Arg1 = slots in
	// use after the batch).
	KindServeBatch
	// KindServeWait is the queueing delay of one served request from
	// admission to the start of its batch (Lane = slot index).
	KindServeWait
	// KindRPC is one remote-engine call round trip on the wire: request
	// serialization, network transfer both ways and the worker-side
	// execution (Lane = the remote backend's trace lane, Arg0 = the wire
	// operation code, Arg1 = bytes moved in both directions).
	KindRPC
	// KindServeRequest is the full lifetime of one served request from
	// admission to response (Arg0 = HTTP status, Arg1 = requests coalesced
	// into its batch; Batch links it to the serve batch it merged into).
	KindServeRequest
	// KindServeCompile is the request-compilation phase: JSON → validated
	// tree, compressed patterns and instance geometry (Arg0 = site patterns
	// after compression).
	KindServeCompile
	// KindRemoteApply is one request executed on a worker process, recorded
	// by the worker's own session tracer; the gap between the client's
	// KindRPC span edges and this span is the wire + codec time
	// (Arg0 = the wire operation code).
	KindRemoteApply
	numKinds
)

// String returns the span name used in trace exports.
func (k Kind) String() string {
	switch k {
	case KindBatch:
		return "partials batch"
	case KindLevel:
		return "dependency level"
	case KindRoot:
		return "root likelihood"
	case KindTask:
		return "worker task"
	case KindKernel:
		return "kernel launch"
	case KindTransfer:
		return "transfer"
	case KindBarrier:
		return "batch barrier"
	case KindBackend:
		return "backend batch"
	case KindRebalance:
		return "rebalance"
	case KindMigrate:
		return "migrate patterns"
	case KindMatrices:
		return "transition matrices"
	case KindDerivatives:
		return "derivative matrices"
	case KindServeBatch:
		return "serve batch"
	case KindServeWait:
		return "serve wait"
	case KindRPC:
		return "rpc"
	case KindServeRequest:
		return "serve request"
	case KindServeCompile:
		return "serve compile"
	case KindRemoteApply:
		return "worker apply"
	default:
		return "unknown"
	}
}

// Layer is the process track a span is rendered into.
type Layer uint8

// Layers, in rendering order.
const (
	LayerScheduler Layer = iota
	LayerWorker
	LayerDevice
	LayerMulti
	LayerStorage
	LayerServe
	LayerNet
	numLayers
)

// String names the layer; these are the process names trace consumers (and
// cmd/beagletrace -require-layers) see.
func (l Layer) String() string {
	switch l {
	case LayerScheduler:
		return "scheduler"
	case LayerWorker:
		return "workers"
	case LayerDevice:
		return "device (modeled clock)"
	case LayerMulti:
		return "multi-device"
	case LayerStorage:
		return "storage"
	case LayerServe:
		return "serve"
	case LayerNet:
		return "network"
	default:
		return "unknown"
	}
}

// Layer maps a span kind to its process track.
func (k Kind) Layer() Layer {
	switch k {
	case KindBatch, KindLevel, KindRoot:
		return LayerScheduler
	case KindTask:
		return LayerWorker
	case KindKernel, KindTransfer:
		return LayerDevice
	case KindBarrier, KindBackend, KindRebalance, KindMigrate:
		return LayerMulti
	case KindServeBatch, KindServeWait, KindServeRequest, KindServeCompile:
		return LayerServe
	case KindRPC, KindRemoteApply:
		return LayerNet
	default:
		return LayerStorage
	}
}

// Span is one recorded interval. Start and Dur are nanoseconds; for host
// spans Start is measured from the tracer's epoch (creation time), for
// device spans (KindKernel, KindTransfer) it is the modeled device clock,
// which starts at zero and advances by modeled kernel and transfer charges.
// Lane disambiguates parallel tracks within a layer: the worker index for
// tasks, the backend index for multi-device spans and device queues, -1 when
// inapplicable. Arg0/Arg1 carry kind-specific magnitudes (see the Kind
// constants). Req is the served request the span belongs to (0 when outside
// any request); Record fills it from the tracer's current request when the
// caller leaves it zero, which is how engine-internal layers inherit the
// request identity the serve layer set without being passed it explicitly.
// Seq is the global record order, assigned by the tracer.
type Span struct {
	Kind  Kind
	Lane  int32
	Batch uint64
	Start int64
	Dur   int64
	Arg0  int64
	Arg1  int64
	Req   uint64
	Seq   uint64
}

// Ring geometry: spans are striped across shards by sequence number, so
// concurrent writers (pool workers, multi-device backends) rarely contend on
// one mutex, and each shard keeps its most recent spanCap spans.
const (
	shardCount = 8    // power of two
	spanCap    = 2048 // retained spans per shard
)

// TraceCapacity is the total number of most-recent spans a tracer retains.
const TraceCapacity = shardCount * spanCap

// shard is one stripe of the ring. The mutex only guards the few stores of
// one record; Lock/Unlock do not allocate, keeping the record path zero-
// allocation (verified by the AllocsPerRun guard in this package's tests).
type shard struct {
	mu    sync.Mutex
	count uint64 // spans ever written to this shard
	slots [spanCap]Span
}

// rings is the lazily allocated span storage (~1 MiB); it is published once
// behind an atomic pointer when tracing is first enabled.
type rings struct {
	shards [shardCount]shard
}

// Tracer records spans for one instance. The zero value is usable and
// disabled; a nil *Tracer is valid everywhere and permanently disabled.
type Tracer struct {
	enabled atomic.Bool
	seq     atomic.Uint64
	batches atomic.Uint64
	req     atomic.Uint64
	rings   atomic.Pointer[rings]
	epoch   time.Time
}

// New creates a disabled tracer. Ring memory is not allocated until
// SetEnabled(true).
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// SetEnabled switches recording on or off, allocating the span rings on
// first enable. Implementations must treat a false value as "record nothing
// and take no timestamps".
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	if on && t.rings.Load() == nil {
		t.rings.CompareAndSwap(nil, &rings{})
	}
	t.enabled.Store(on)
}

// Enabled reports whether the tracer is recording: the guard on every
// instrumented hot path — one atomic load, no allocation.
//
//beagle:noalloc
func (t *Tracer) Enabled() bool {
	return t != nil && t.enabled.Load()
}

// Now returns the current host timestamp in nanoseconds since the tracer's
// epoch. Callers take timestamps only after an Enabled() check, so the
// disabled path never reads the clock; Now itself is therefore not part of
// the //beagle:noalloc surface (time.Now is banned there).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// EpochNanos returns the wall-clock instant (UnixNano) the tracer's Start
// timeline is measured from. Exports that merge spans from tracers with
// different epochs (the serve layer's tracer and each pooled instance's
// tracer, or a drained worker snapshot) rebase Start by the epoch delta so
// all spans share one timeline.
func (t *Tracer) EpochNanos() int64 {
	if t == nil {
		return 0
	}
	return t.epoch.UnixNano()
}

// SetRequest sets the request identity that Record stamps onto spans whose
// Req field the caller left zero. The serve layer sets it around an engine
// submission (and a worker session sets it from the wire frame) so every
// scheduler, kernel and storage span records which served request it worked
// for. Zero clears the context. Nil-safe, one atomic store.
//
//beagle:noalloc
func (t *Tracer) SetRequest(id uint64) {
	if t == nil {
		return
	}
	t.req.Store(id)
}

// CurrentRequest returns the request identity set by SetRequest, 0 if none.
//
//beagle:noalloc
func (t *Tracer) CurrentRequest() uint64 {
	if t == nil {
		return 0
	}
	return t.req.Load()
}

// NextBatch returns a fresh 1-based batch identifier for span grouping.
//
//beagle:noalloc
func (t *Tracer) NextBatch() uint64 {
	if t == nil {
		return 0
	}
	return t.batches.Add(1)
}

// Record appends one span. Safe for concurrent use from any goroutine; the
// hot path performs no allocation and no time queries — callers supply
// Start/Dur from Now() or from the modeled device clock.
//
//beagle:noalloc
func (t *Tracer) Record(s Span) {
	if t == nil || !t.enabled.Load() {
		return
	}
	r := t.rings.Load()
	if r == nil {
		return
	}
	if s.Req == 0 {
		s.Req = t.req.Load()
	}
	seq := t.seq.Add(1) - 1
	sh := &r.shards[seq&(shardCount-1)]
	sh.mu.Lock()
	s.Seq = seq
	sh.slots[sh.count%spanCap] = s
	sh.count++
	sh.mu.Unlock()
}

// Snapshot returns the retained spans in record order (ascending Seq). Safe
// to call concurrently with recording; each shard is locked briefly in turn,
// so a snapshot taken mid-batch sees a consistent prefix per shard.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	r := t.rings.Load()
	if r == nil {
		return nil
	}
	var out []Span
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n := sh.count
		if n > spanCap {
			n = spanCap
		}
		out = append(out, sh.slots[:n]...)
		sh.mu.Unlock()
	}
	sortSpans(out)
	return out
}

// sortSpans orders by sequence number; the shards stripe sequences round-
// robin, so the concatenation is far from sorted and needs a real sort.
func sortSpans(s []Span) {
	sort.Slice(s, func(i, j int) bool { return s[i].Seq < s[j].Seq })
}

// Reset discards all retained spans and restarts the sequence and batch
// counters; the enabled switch and epoch are unchanged.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	r := t.rings.Load()
	if r != nil {
		for i := range r.shards {
			sh := &r.shards[i]
			sh.mu.Lock()
			sh.count = 0
			sh.mu.Unlock()
		}
	}
	t.seq.Store(0)
	t.batches.Store(0)
}
