package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteStitchedRendersProcessTracks asserts the stitched export: local
// spans stay on the layer processes, each remote process gets its own pid
// with process_name metadata, same-named processes merge, and request-tagged
// spans carry args.req on both sides so a request can be followed across the
// process boundary.
func TestWriteStitchedRendersProcessTracks(t *testing.T) {
	local := []Span{
		{Kind: KindServeRequest, Lane: -1, Start: 100, Dur: 9000, Arg0: 200, Arg1: 2, Req: 77},
		{Kind: KindRPC, Lane: 0, Start: 2000, Dur: 3000, Arg0: 1, Req: 77},
	}
	procs := []Process{
		{Name: "remote worker 0 (127.0.0.1:9)", Spans: []Span{
			{Kind: KindRemoteApply, Lane: -1, Start: 2500, Dur: 1800, Arg0: 7, Req: 77},
		}},
		{Name: "remote worker 0 (127.0.0.1:9)", Spans: []Span{
			{Kind: KindBatch, Start: 2600, Dur: 1500, Arg0: 3},
		}},
		{Name: "remote worker 1 (127.0.0.1:10)", Spans: []Span{
			{Kind: KindRemoteApply, Lane: -1, Start: 2700, Dur: 1000, Arg0: 7, Req: 78},
		}},
	}

	var buf bytes.Buffer
	if err := WriteStitched(&buf, local, procs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("stitched output is not valid JSON: %v", err)
	}

	procNames := map[string]int{} // name -> pid
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			args := ev["args"].(map[string]any)
			procNames[args["name"].(string)] = int(ev["pid"].(float64))
		}
	}
	pid0, ok := procNames["remote worker 0 (127.0.0.1:9)"]
	if !ok {
		t.Fatalf("no process_name metadata for worker 0; have %v", procNames)
	}
	pid1, ok := procNames["remote worker 1 (127.0.0.1:10)"]
	if !ok {
		t.Fatalf("no process_name metadata for worker 1; have %v", procNames)
	}
	if pid0 == pid1 {
		t.Fatalf("distinct workers share pid %d", pid0)
	}
	if _, ok := procNames[LayerServe.String()]; !ok {
		t.Fatalf("local serve layer lost its process track; have %v", procNames)
	}

	// Request 77 must appear in a local span and a worker-0 span.
	pidsForReq := map[int]bool{}
	worker0Spans := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			continue
		}
		pid := int(ev["pid"].(float64))
		if pid == pid0 {
			worker0Spans++
		}
		if args, ok := ev["args"].(map[string]any); ok {
			if req, ok := args["req"].(float64); ok && req == 77 {
				pidsForReq[pid] = true
			}
		}
	}
	if worker0Spans != 2 {
		t.Fatalf("worker 0 (merged from two drains) has %d spans, want 2", worker0Spans)
	}
	if len(pidsForReq) < 2 {
		t.Fatalf("request 77 seen in %d processes, want >= 2 (stitching broken)", len(pidsForReq))
	}
}

// TestWriteStitchedNilProcsMatchesWriteJSON asserts WriteJSON is exactly the
// stitched export with no remote processes.
func TestWriteStitchedNilProcsMatchesWriteJSON(t *testing.T) {
	spans := []Span{
		{Kind: KindBatch, Start: 10, Dur: 50, Arg0: 1},
		{Kind: KindServeCompile, Lane: -1, Start: 5, Dur: 20, Req: 9},
	}
	var a, b bytes.Buffer
	if err := WriteJSON(&a, spans); err != nil {
		t.Fatal(err)
	}
	if err := WriteStitched(&b, spans, nil); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("WriteJSON and WriteStitched(nil procs) diverge:\n%s\nvs\n%s", a.String(), b.String())
	}
}
