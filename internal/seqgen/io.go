package seqgen

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Character-to-state encodings. Unrecognized or ambiguity characters map to
// the gap state (StateCount), which the library treats as fully ambiguous.

// nucleotideIndex maps a nucleotide character to its state (A C G T order),
// returning 4 for gaps and ambiguity codes.
func nucleotideIndex(c byte) int {
	switch c {
	case 'A', 'a':
		return 0
	case 'C', 'c':
		return 1
	case 'G', 'g':
		return 2
	case 'T', 't', 'U', 'u':
		return 3
	default:
		return 4
	}
}

// aminoAcidIndex maps a one-letter amino-acid code to its state
// (alphabetical order, as in substmodel.AminoAcidAlphabet), returning 20 for
// gaps and unknowns.
func aminoAcidIndex(c byte) int {
	const alpha = "ACDEFGHIKLMNPQRSTVWY"
	if c >= 'a' && c <= 'z' {
		c -= 'a' - 'A'
	}
	if i := strings.IndexByte(alpha, c); i >= 0 {
		return i
	}
	return 20
}

// IUPACPartials returns the 4-state observation vector (A, C, G, T order)
// for an IUPAC nucleotide code: 1.0 for every base the code is compatible
// with. This is the partially ambiguous representation that the library's
// SetTipPartials exists for; compact states can only express "known" or
// "fully unknown". Unrecognized characters decode as fully ambiguous.
func IUPACPartials(c byte) [4]float64 {
	if c >= 'a' && c <= 'z' {
		c -= 'a' - 'A'
	}
	switch c {
	case 'A':
		return [4]float64{1, 0, 0, 0}
	case 'C':
		return [4]float64{0, 1, 0, 0}
	case 'G':
		return [4]float64{0, 0, 1, 0}
	case 'T', 'U':
		return [4]float64{0, 0, 0, 1}
	case 'R': // purine
		return [4]float64{1, 0, 1, 0}
	case 'Y': // pyrimidine
		return [4]float64{0, 1, 0, 1}
	case 'S':
		return [4]float64{0, 1, 1, 0}
	case 'W':
		return [4]float64{1, 0, 0, 1}
	case 'K':
		return [4]float64{0, 0, 1, 1}
	case 'M':
		return [4]float64{1, 1, 0, 0}
	case 'B': // not A
		return [4]float64{0, 1, 1, 1}
	case 'D': // not C
		return [4]float64{1, 0, 1, 1}
	case 'H': // not G
		return [4]float64{1, 1, 0, 1}
	case 'V': // not T
		return [4]float64{1, 1, 1, 0}
	default: // N, gaps, unknowns
		return [4]float64{1, 1, 1, 1}
	}
}

// TipPartialsFromIUPAC converts a nucleotide character sequence (one
// character per pattern) into the per-pattern tip-partials layout consumed
// by SetTipPartials, preserving IUPAC partial-ambiguity codes.
func TipPartialsFromIUPAC(seq string) []float64 {
	out := make([]float64, len(seq)*4)
	for i := 0; i < len(seq); i++ {
		p := IUPACPartials(seq[i])
		copy(out[i*4:], p[:])
	}
	return out
}

// charIndexFor returns the character decoder for a state count (4 or 20).
func charIndexFor(stateCount int) (func(byte) int, error) {
	switch stateCount {
	case 4:
		return nucleotideIndex, nil
	case 20:
		return aminoAcidIndex, nil
	default:
		return nil, fmt.Errorf("seqgen: no character encoding for %d states (use 4 or 20)", stateCount)
	}
}

// DecodeSequence maps one aligned character string to state indices under
// the given state count (4 = IUPAC nucleotide, 20 = amino acid). Gaps,
// ambiguity codes and unrecognized characters become the fully ambiguous
// state (stateCount), matching ReadFASTA's encoding.
func DecodeSequence(chars string, stateCount int) ([]int, error) {
	decode, err := charIndexFor(stateCount)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(chars))
	for i := 0; i < len(chars); i++ {
		out[i] = decode(chars[i])
	}
	return out, nil
}

// stateChar renders a state back to its character.
func stateChar(stateCount, s int) byte {
	if stateCount == 4 {
		if s >= 0 && s < 4 {
			return "ACGT"[s]
		}
		return '-'
	}
	if s >= 0 && s < 20 {
		return "ACDEFGHIKLMNPQRSTVWY"[s]
	}
	return '-'
}

// ReadFASTA parses a FASTA alignment into state indices under the given
// state count (4 = nucleotide, 20 = amino acid). All sequences must have
// equal length; gaps and ambiguity codes become the fully ambiguous state.
func ReadFASTA(r io.Reader, stateCount int) (*Alignment, error) {
	decode, err := charIndexFor(stateCount)
	if err != nil {
		return nil, err
	}
	a := &Alignment{StateCount: stateCount}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var current []int
	flush := func() {
		if current != nil {
			a.Sequences = append(a.Sequences, current)
			current = nil
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '>' {
			flush()
			a.TipNames = append(a.TipNames, strings.Fields(line[1:])[0])
			current = []int{}
			continue
		}
		if current == nil {
			return nil, fmt.Errorf("seqgen: FASTA sequence data before any header")
		}
		for i := 0; i < len(line); i++ {
			current = append(current, decode(line[i]))
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(a.Sequences) < 2 {
		return nil, fmt.Errorf("seqgen: FASTA alignment needs at least 2 sequences, got %d", len(a.Sequences))
	}
	n := len(a.Sequences[0])
	for i, s := range a.Sequences {
		if len(s) != n {
			return nil, fmt.Errorf("seqgen: sequence %q has length %d, want %d", a.TipNames[i], len(s), n)
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("seqgen: empty alignment")
	}
	return a, nil
}

// WriteFASTA renders the alignment in FASTA format, 70 characters per line.
func WriteFASTA(w io.Writer, a *Alignment) error {
	bw := bufio.NewWriter(w)
	for i, name := range a.TipNames {
		if _, err := fmt.Fprintf(bw, ">%s\n", name); err != nil {
			return err
		}
		seq := a.Sequences[i]
		for off := 0; off < len(seq); off += 70 {
			end := off + 70
			if end > len(seq) {
				end = len(seq)
			}
			for _, s := range seq[off:end] {
				if err := bw.WriteByte(stateChar(a.StateCount, s)); err != nil {
					return err
				}
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadPHYLIP parses a relaxed sequential PHYLIP alignment: a header line
// with the sequence and site counts, then one "name sequence" record per
// taxon (whitespace-separated, sequence possibly wrapped is NOT supported —
// sequential relaxed format only).
func ReadPHYLIP(r io.Reader, stateCount int) (*Alignment, error) {
	decode, err := charIndexFor(stateCount)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("seqgen: empty PHYLIP input")
	}
	var nTaxa, nSites int
	if _, err := fmt.Sscan(sc.Text(), &nTaxa, &nSites); err != nil {
		return nil, fmt.Errorf("seqgen: bad PHYLIP header %q: %v", sc.Text(), err)
	}
	if nTaxa < 2 || nSites < 1 {
		return nil, fmt.Errorf("seqgen: bad PHYLIP dimensions %d x %d", nTaxa, nSites)
	}
	a := &Alignment{StateCount: stateCount}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("seqgen: bad PHYLIP record %q", line)
		}
		name := fields[0]
		joined := strings.Join(fields[1:], "")
		if len(joined) != nSites {
			return nil, fmt.Errorf("seqgen: sequence %q has %d sites, header says %d", name, len(joined), nSites)
		}
		seq := make([]int, nSites)
		for i := 0; i < nSites; i++ {
			seq[i] = decode(joined[i])
		}
		a.TipNames = append(a.TipNames, name)
		a.Sequences = append(a.Sequences, seq)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(a.Sequences) != nTaxa {
		return nil, fmt.Errorf("seqgen: PHYLIP header promises %d taxa, found %d", nTaxa, len(a.Sequences))
	}
	return a, nil
}

// WritePHYLIP renders the alignment in relaxed sequential PHYLIP format.
func WritePHYLIP(w io.Writer, a *Alignment) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", len(a.Sequences), a.SiteCount()); err != nil {
		return err
	}
	for i, name := range a.TipNames {
		if _, err := fmt.Fprintf(bw, "%-12s ", name); err != nil {
			return err
		}
		for _, s := range a.Sequences[i] {
			if err := bw.WriteByte(stateChar(a.StateCount, s)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
