package seqgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

func TestRandomAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, err := RandomAlignment(rng, 5, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sequences) != 5 || a.SiteCount() != 100 {
		t.Fatalf("shape %dx%d", len(a.Sequences), a.SiteCount())
	}
	for _, seq := range a.Sequences {
		for _, s := range seq {
			if s < 0 || s >= 4 {
				t.Fatalf("state %d out of range", s)
			}
		}
	}
	if _, err := RandomAlignment(rng, 1, 4, 10); err == nil {
		t.Fatal("expected error for 1 tip")
	}
	if _, err := RandomAlignment(rng, 4, 4, 0); err == nil {
		t.Fatal("expected error for 0 sites")
	}
}

func TestSimulateShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, _ := tree.Random(rng, 6, 0.1)
	m := substmodel.NewJC69()
	a, err := Simulate(rng, tr, m, substmodel.SingleRate(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sequences) != 6 || a.SiteCount() != 500 {
		t.Fatalf("shape %dx%d", len(a.Sequences), a.SiteCount())
	}
	if a.StateCount != 4 {
		t.Fatalf("state count %d", a.StateCount)
	}
	for i, tip := range tr.Tips() {
		if a.TipNames[i] != tip.Name {
			t.Fatalf("tip name mismatch at %d", i)
		}
	}
}

func TestSimulateShortBranchesNearIdentical(t *testing.T) {
	// With tiny branch lengths, tip sequences should be nearly identical.
	rng := rand.New(rand.NewSource(3))
	tr, _ := tree.Random(rng, 4, 1e-6)
	m := substmodel.NewJC69()
	a, err := Simulate(rng, tr, m, substmodel.SingleRate(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for s := 0; s < a.SiteCount(); s++ {
		for tip := 1; tip < len(a.Sequences); tip++ {
			if a.Sequences[tip][s] != a.Sequences[0][s] {
				diffs++
			}
		}
	}
	if diffs > 5 {
		t.Fatalf("too many differences (%d) for near-zero branches", diffs)
	}
}

func TestSimulateLongBranchesUniform(t *testing.T) {
	// With very long branches states should approach the stationary
	// distribution (uniform for JC): roughly 25% each.
	rng := rand.New(rand.NewSource(4))
	tr, _ := tree.Random(rng, 2, 50)
	m := substmodel.NewJC69()
	a, err := Simulate(rng, tr, m, substmodel.SingleRate(), 8000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, s := range a.Sequences[0] {
		counts[s]++
	}
	for s, c := range counts {
		frac := float64(c) / 8000
		if math.Abs(frac-0.25) > 0.03 {
			t.Fatalf("state %d frequency %v, want ≈0.25", s, frac)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr, _ := tree.Random(rng, 4, 0.1)
	if _, err := Simulate(rng, tr, substmodel.NewJC69(), substmodel.SingleRate(), 0); err == nil {
		t.Fatal("expected error for zero sites")
	}
}

func TestCompressPatternsWeightsSumToSites(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tips := 2 + rng.Intn(6)
		sites := 1 + rng.Intn(200)
		a, err := RandomAlignment(rng, tips, 4, sites)
		if err != nil {
			return false
		}
		ps := CompressPatterns(a)
		var sum float64
		for _, w := range ps.Weights {
			if w < 1 {
				return false
			}
			sum += w
		}
		return sum == float64(sites) && ps.PatternCount() <= sites
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCompressPatternsDeduplicates(t *testing.T) {
	a := &Alignment{
		TipNames:   []string{"a", "b"},
		StateCount: 4,
		Sequences: [][]int{
			{0, 1, 0, 2, 0},
			{3, 1, 3, 2, 3},
		},
	}
	ps := CompressPatterns(a)
	if ps.PatternCount() != 3 {
		t.Fatalf("pattern count %d want 3", ps.PatternCount())
	}
	// Pattern (0,3) occurs three times.
	found := false
	for i, pat := range ps.Patterns {
		if pat[0] == 0 && pat[1] == 3 {
			found = true
			if ps.Weights[i] != 3 {
				t.Fatalf("weight %v want 3", ps.Weights[i])
			}
		}
	}
	if !found {
		t.Fatal("pattern (0,3) missing")
	}
}

func TestCompressPatternsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, _ := RandomAlignment(rng, 4, 4, 50)
	p1 := CompressPatterns(a)
	p2 := CompressPatterns(a)
	if p1.PatternCount() != p2.PatternCount() {
		t.Fatal("non-deterministic pattern count")
	}
	for i := range p1.Patterns {
		for j := range p1.Patterns[i] {
			if p1.Patterns[i][j] != p2.Patterns[i][j] {
				t.Fatal("non-deterministic pattern order")
			}
		}
	}
}

func TestRandomPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ps, err := RandomPatterns(rng, 8, 61, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ps.PatternCount() != 1000 || ps.TipCount != 8 || ps.StateCount != 61 {
		t.Fatalf("unexpected shape %+v", ps)
	}
	for _, w := range ps.Weights {
		if w != 1 {
			t.Fatalf("weight %v want 1", w)
		}
	}
	if _, err := RandomPatterns(rng, 8, 61, 0); err == nil {
		t.Fatal("expected error for zero patterns")
	}
}

func TestTipStatesAndPartialsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps, _ := RandomPatterns(rng, 4, 4, 20)
	for tip := 0; tip < 4; tip++ {
		states := ps.TipStates(tip)
		partials := ps.TipPartials(tip)
		for i, s := range states {
			for k := 0; k < 4; k++ {
				want := 0.0
				if k == s {
					want = 1
				}
				if partials[i*4+k] != want {
					t.Fatalf("tip %d pattern %d state %d: partial %v want %v",
						tip, i, k, partials[i*4+k], want)
				}
			}
		}
	}
}

func TestTipPartialsAmbiguity(t *testing.T) {
	ps := &PatternSet{
		StateCount: 4,
		TipCount:   1,
		Patterns:   [][]int{{4}}, // ≥ StateCount means fully ambiguous
		Weights:    []float64{1},
	}
	p := ps.TipPartials(0)
	for k := 0; k < 4; k++ {
		if p[k] != 1 {
			t.Fatalf("ambiguous tip partials %v", p)
		}
	}
}

func TestSimulateWithGammaRates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr, _ := tree.Random(rng, 5, 0.2)
	rates, err := substmodel.GammaRates(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Simulate(rng, tr, substmodel.NewJC69(), rates, 200)
	if err != nil {
		t.Fatal(err)
	}
	if a.SiteCount() != 200 {
		t.Fatalf("site count %d", a.SiteCount())
	}
}
