package seqgen

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadFASTAKnown(t *testing.T) {
	in := `>human some description
ACGT-N
ACGT
>chimp
acgtua
cgtt
`
	a, err := ReadFASTA(strings.NewReader(in), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sequences) != 2 || a.SiteCount() != 10 {
		t.Fatalf("shape %dx%d", len(a.Sequences), a.SiteCount())
	}
	if a.TipNames[0] != "human" || a.TipNames[1] != "chimp" {
		t.Fatalf("names %v", a.TipNames)
	}
	want := []int{0, 1, 2, 3, 4, 4, 0, 1, 2, 3}
	for i, s := range a.Sequences[0] {
		if s != want[i] {
			t.Fatalf("human states %v want %v", a.Sequences[0], want)
		}
	}
	// U maps to T; lowercase accepted.
	if a.Sequences[1][4] != 3 {
		t.Fatalf("U must decode to T state, got %d", a.Sequences[1][4])
	}
}

func TestReadFASTAErrors(t *testing.T) {
	cases := []string{
		"ACGT\n",              // data before header
		">only\nACGT\n",       // single sequence
		">a\nACGT\n>b\nACG\n", // ragged
		">a\n\n>b\n",          // empty alignment
	}
	for _, in := range cases {
		if _, err := ReadFASTA(strings.NewReader(in), 4); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
	if _, err := ReadFASTA(strings.NewReader(">a\nAA\n>b\nAA\n"), 61); err == nil {
		t.Error("codon alignments have no character encoding")
	}
}

func TestFASTARoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tips := 2 + rng.Intn(6)
		sites := 1 + rng.Intn(200)
		a, err := RandomAlignment(rng, tips, 4, sites)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, a); err != nil {
			return false
		}
		back, err := ReadFASTA(&buf, 4)
		if err != nil {
			return false
		}
		if len(back.Sequences) != tips || back.SiteCount() != sites {
			return false
		}
		for i := range a.Sequences {
			if back.TipNames[i] != a.TipNames[i] {
				return false
			}
			for j := range a.Sequences[i] {
				if back.Sequences[i][j] != a.Sequences[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAminoAcidFASTARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, err := RandomAlignment(rng, 3, 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sequences {
		for j := range a.Sequences[i] {
			if back.Sequences[i][j] != a.Sequences[i][j] {
				t.Fatalf("mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestPHYLIPRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, err := RandomAlignment(rng, 5, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePHYLIP(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPHYLIP(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sequences) != 5 || back.SiteCount() != 80 {
		t.Fatalf("shape %dx%d", len(back.Sequences), back.SiteCount())
	}
	for i := range a.Sequences {
		if back.TipNames[i] != a.TipNames[i] {
			t.Fatalf("name %q want %q", back.TipNames[i], a.TipNames[i])
		}
		for j := range a.Sequences[i] {
			if back.Sequences[i][j] != a.Sequences[i][j] {
				t.Fatalf("mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestReadPHYLIPErrors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"junk\n",               // bad header
		"1 4\na ACGT\n",        // too few taxa
		"2 4\na ACGT\n",        // missing record
		"2 4\na ACGT\nb ACG\n", // short sequence
		"2 4\na\nb ACGT\n",     // record without sequence
	}
	for _, in := range cases {
		if _, err := ReadPHYLIP(strings.NewReader(in), 4); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestIOGapHandlingFeedsAmbiguity(t *testing.T) {
	// Gap characters decode to the gap state, which TipPartials expands to
	// all ones — the fully ambiguous observation.
	a, err := ReadFASTA(strings.NewReader(">a\nA-\n>b\nAC\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	ps := CompressPatterns(a)
	for i, pat := range ps.Patterns {
		if pat[0] == 4 { // the gap column
			p := ps.TipPartials(0)
			for k := 0; k < 4; k++ {
				if p[i*4+k] != 1 {
					t.Fatalf("gap column partials %v", p[i*4:i*4+4])
				}
			}
			return
		}
	}
	t.Fatal("gap column missing after compression")
}

func TestIUPACPartials(t *testing.T) {
	cases := map[byte][4]float64{
		'A': {1, 0, 0, 0},
		'c': {0, 1, 0, 0},
		'G': {0, 0, 1, 0},
		'u': {0, 0, 0, 1},
		'R': {1, 0, 1, 0},
		'y': {0, 1, 0, 1},
		'S': {0, 1, 1, 0},
		'W': {1, 0, 0, 1},
		'K': {0, 0, 1, 1},
		'M': {1, 1, 0, 0},
		'B': {0, 1, 1, 1},
		'D': {1, 0, 1, 1},
		'H': {1, 1, 0, 1},
		'V': {1, 1, 1, 0},
		'N': {1, 1, 1, 1},
		'-': {1, 1, 1, 1},
		'?': {1, 1, 1, 1},
	}
	for c, want := range cases {
		if got := IUPACPartials(c); got != want {
			t.Errorf("IUPACPartials(%c) = %v want %v", c, got, want)
		}
	}
}

func TestTipPartialsFromIUPAC(t *testing.T) {
	p := TipPartialsFromIUPAC("AR-")
	want := []float64{
		1, 0, 0, 0, // A
		1, 0, 1, 0, // R
		1, 1, 1, 1, // gap
	}
	if len(p) != len(want) {
		t.Fatalf("length %d", len(p))
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("partials %v want %v", p, want)
		}
	}
}

func TestIUPACConsistentWithUnambiguousStates(t *testing.T) {
	// For unambiguous characters the IUPAC partials equal the indicator
	// vector of the compact state.
	for _, c := range []byte{'A', 'C', 'G', 'T'} {
		st := nucleotideIndex(c)
		p := IUPACPartials(c)
		for k := 0; k < 4; k++ {
			want := 0.0
			if k == st {
				want = 1
			}
			if p[k] != want {
				t.Fatalf("IUPAC/%c inconsistent with compact state %d", c, st)
			}
		}
	}
}
