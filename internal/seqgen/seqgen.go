// Package seqgen generates the molecular sequence data that drives tests and
// benchmarks: alignments simulated down a phylogenetic tree under a
// substitution model (giving data with realistic signal), genomictest-style
// random synthetic patterns of arbitrary size, and site-pattern compression,
// which converts an alignment's columns into the unique patterns plus weights
// that the likelihood library consumes.
package seqgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"gobeagle/internal/substmodel"
	"gobeagle/internal/tree"
)

// Alignment is a set of aligned sequences over an arbitrary state alphabet,
// one sequence per tree tip, stored as state indices.
type Alignment struct {
	TipNames   []string
	StateCount int
	Sequences  [][]int // [tip][site]
}

// SiteCount returns the number of alignment columns.
func (a *Alignment) SiteCount() int {
	if len(a.Sequences) == 0 {
		return 0
	}
	return len(a.Sequences[0])
}

// Simulate evolves an alignment of nSites sites down the tree under the given
// substitution model and among-site rate variation. Each site draws a rate
// category from rates.Weights, the root state from the model's stationary
// distribution, and each branch applies P(rate·length).
func Simulate(rng *rand.Rand, t *tree.Tree, m *substmodel.Model, rates *substmodel.SiteRates, nSites int) (*Alignment, error) {
	if nSites <= 0 {
		return nil, errors.New("seqgen: site count must be positive")
	}
	ed, err := m.Eigen()
	if err != nil {
		return nil, err
	}
	n := m.StateCount

	// Precompute a transition matrix per (node, category).
	nc := len(rates.Rates)
	probs := make(map[int][][]float64, t.NodeCount())
	for _, node := range t.Nodes() {
		if node == t.Root {
			continue
		}
		per := make([][]float64, nc)
		for c, r := range rates.Rates {
			p := make([]float64, n*n)
			if err := ed.TransitionMatrix(node.Length*r, p); err != nil {
				return nil, err
			}
			per[c] = p
		}
		probs[node.Index] = per
	}

	a := &Alignment{
		TipNames:   make([]string, t.TipCount),
		StateCount: n,
		Sequences:  make([][]int, t.TipCount),
	}
	for i, tip := range t.Tips() {
		a.TipNames[i] = tip.Name
		a.Sequences[i] = make([]int, nSites)
	}

	states := make([]int, t.NodeCount())
	for site := 0; site < nSites; site++ {
		cat := sampleIndex(rng, rates.Weights)
		states[t.Root.Index] = sampleIndex(rng, m.Frequencies)
		// Pre-order: parent state determines child state.
		var walk func(node *tree.Node)
		walk = func(node *tree.Node) {
			if node != t.Root {
				p := probs[node.Index][cat]
				row := p[states[node.Parent.Index]*n : (states[node.Parent.Index]+1)*n]
				states[node.Index] = sampleIndex(rng, row)
			}
			if node.IsTip() {
				a.Sequences[node.Index][site] = states[node.Index]
				return
			}
			walk(node.Left)
			walk(node.Right)
		}
		walk(t.Root)
	}
	return a, nil
}

// sampleIndex draws an index proportional to the (not necessarily
// normalized) weights.
func sampleIndex(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// RandomAlignment returns an alignment of uniformly random states, matching
// the genomictest program's "random synthetic datasets of arbitrary sizes".
func RandomAlignment(rng *rand.Rand, tipCount, stateCount, nSites int) (*Alignment, error) {
	if tipCount < 2 || stateCount < 2 || nSites <= 0 {
		return nil, errors.New("seqgen: need ≥2 tips, ≥2 states, ≥1 site")
	}
	a := &Alignment{
		TipNames:   make([]string, tipCount),
		StateCount: stateCount,
		Sequences:  make([][]int, tipCount),
	}
	for i := range a.Sequences {
		a.TipNames[i] = fmt.Sprintf("t%d", i)
		seq := make([]int, nSites)
		for s := range seq {
			seq[s] = rng.Intn(stateCount)
		}
		a.Sequences[i] = seq
	}
	return a, nil
}

// PatternSet holds the unique site patterns of an alignment with their
// multiplicities — the working representation for likelihood computation.
type PatternSet struct {
	StateCount int
	TipCount   int
	Patterns   [][]int   // [pattern][tip] state index
	Weights    []float64 // pattern multiplicities
}

// PatternCount returns the number of unique patterns.
func (p *PatternSet) PatternCount() int { return len(p.Patterns) }

// CompressPatterns collapses identical alignment columns into unique
// patterns with weights, sorted lexicographically for determinism.
func CompressPatterns(a *Alignment) *PatternSet {
	nTips := len(a.Sequences)
	counts := make(map[string]int)
	repr := make(map[string][]int)
	var keys []string
	col := make([]int, nTips)
	var sb strings.Builder
	for site := 0; site < a.SiteCount(); site++ {
		sb.Reset()
		for tip := 0; tip < nTips; tip++ {
			col[tip] = a.Sequences[tip][site]
			fmt.Fprintf(&sb, "%d,", col[tip])
		}
		k := sb.String()
		if _, seen := counts[k]; !seen {
			keys = append(keys, k)
			repr[k] = append([]int(nil), col...)
		}
		counts[k]++
	}
	sort.Strings(keys)
	ps := &PatternSet{
		StateCount: a.StateCount,
		TipCount:   nTips,
		Patterns:   make([][]int, len(keys)),
		Weights:    make([]float64, len(keys)),
	}
	for i, k := range keys {
		ps.Patterns[i] = repr[k]
		ps.Weights[i] = float64(counts[k])
	}
	return ps
}

// RandomPatterns returns nPatterns random unique-weight-1 site patterns,
// bypassing compression; this is the configuration used by the paper's
// kernel throughput benchmarks, where the pattern count is the independent
// variable.
func RandomPatterns(rng *rand.Rand, tipCount, stateCount, nPatterns int) (*PatternSet, error) {
	if tipCount < 2 || stateCount < 2 || nPatterns <= 0 {
		return nil, errors.New("seqgen: need ≥2 tips, ≥2 states, ≥1 pattern")
	}
	ps := &PatternSet{
		StateCount: stateCount,
		TipCount:   tipCount,
		Patterns:   make([][]int, nPatterns),
		Weights:    make([]float64, nPatterns),
	}
	for i := range ps.Patterns {
		pat := make([]int, tipCount)
		for j := range pat {
			pat[j] = rng.Intn(stateCount)
		}
		ps.Patterns[i] = pat
		ps.Weights[i] = 1
	}
	return ps, nil
}

// TipStates returns the compact state sequence for one tip across patterns,
// the form consumed by the library's SetTipStates.
func (p *PatternSet) TipStates(tip int) []int {
	out := make([]int, p.PatternCount())
	for i, pat := range p.Patterns {
		out[i] = pat[tip]
	}
	return out
}

// TipPartials returns the expanded partial-likelihood representation of one
// tip (1.0 at the observed state per pattern), the form consumed by
// SetTipPartials. A state index ≥ StateCount denotes full ambiguity (all
// ones, like a gap).
func (p *PatternSet) TipPartials(tip int) []float64 {
	out := make([]float64, p.PatternCount()*p.StateCount)
	for i, pat := range p.Patterns {
		s := pat[tip]
		if s >= p.StateCount {
			for k := 0; k < p.StateCount; k++ {
				out[i*p.StateCount+k] = 1
			}
			continue
		}
		out[i*p.StateCount+s] = 1
	}
	return out
}
