// Package phystats provides the special functions required by phylogenetic
// substitution models: the log-gamma function, the regularized incomplete
// gamma function and its inverse, normal and chi-square quantiles, and the
// discrete-gamma approximation of among-site rate variation (Yang 1994) used
// by every "+G" model in the paper's benchmarks.
package phystats

import (
	"errors"
	"math"
)

// LnGamma returns the natural logarithm of the gamma function for x > 0,
// using the Lanczos approximation (g=7, n=9 coefficients).
func LnGamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	// Lanczos coefficients for g=7.
	var lanczos = [...]float64{
		0.99999999999980993,
		676.5203681218851,
		-1259.1392167224028,
		771.32342877765313,
		-176.61502916214059,
		12.507343278686905,
		-0.13857109526572012,
		9.9843695780195716e-6,
		1.5056327351493116e-7,
	}
	if x < 0.5 {
		// Reflection formula.
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - LnGamma(1-x)
	}
	x--
	a := lanczos[0]
	t := x + 7.5
	for i := 1; i < len(lanczos); i++ {
		a += lanczos[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a), for a > 0 and x ≥ 0.
func GammaP(a, x float64) float64 {
	if a <= 0 || x < 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a,x) via its power series (valid for x < a+1).
func gammaPSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-15
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-LnGamma(a))
}

// gammaQContinuedFraction evaluates Q(a,x)=1-P(a,x) via the Lentz continued
// fraction (valid for x ≥ a+1).
func gammaQContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-15
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-LnGamma(a)) * h
}

// NormalQuantile returns the p-th quantile of the standard normal
// distribution using the Beasley–Springer–Moro rational approximation
// refined by one Halley step against erfc.
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Acklam's rational approximation.
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// ChiSquareQuantile returns the p-th quantile of the chi-square distribution
// with v degrees of freedom, via the Wilson–Hilferty starting point and
// Newton iterations on the incomplete gamma function (following Best &
// Roberts 1975, as used in PAML's PointChi2).
func ChiSquareQuantile(p, v float64) (float64, error) {
	if p <= 0 || p >= 1 || v <= 0 {
		return 0, errors.New("phystats: chi-square quantile needs 0<p<1 and v>0")
	}
	// Wilson–Hilferty approximation as the starting value.
	z := NormalQuantile(p)
	t := 2.0 / (9 * v)
	x := v * math.Pow(1-t+z*math.Sqrt(t), 3)
	if x <= 0 {
		x = 1e-10
	}
	a := v / 2
	// Newton's method on F(x) = GammaP(a, x/2) - p.
	for i := 0; i < 100; i++ {
		f := GammaP(a, x/2) - p
		// Density of chi-square_v at x.
		logPdf := (a-1)*math.Log(x/2) - x/2 - LnGamma(a) - math.Ln2
		pdf := math.Exp(logPdf)
		if pdf <= 0 {
			break
		}
		step := f / pdf
		nx := x - step
		if nx <= 0 {
			nx = x / 2
		}
		if math.Abs(nx-x) < 1e-12*(1+x) {
			x = nx
			break
		}
		x = nx
	}
	return x, nil
}

// GammaQuantile returns the p-th quantile of the Gamma(shape, rate)
// distribution.
func GammaQuantile(p, shape, rate float64) (float64, error) {
	x, err := ChiSquareQuantile(p, 2*shape)
	if err != nil {
		return 0, err
	}
	return x / (2 * rate), nil
}
