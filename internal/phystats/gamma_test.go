package phystats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLnGammaKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{5, math.Log(24)},
		{0.5, 0.5 * math.Log(math.Pi)},
		{10, math.Log(362880)},
	}
	for _, c := range cases {
		if got := LnGamma(c.x); math.Abs(got-c.want) > 1e-12*(1+math.Abs(c.want)) {
			t.Errorf("LnGamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLnGammaRecurrenceProperty(t *testing.T) {
	// ln Γ(x+1) = ln Γ(x) + ln x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := 0.1 + rng.Float64()*50
		lhs := LnGamma(x + 1)
		rhs := LnGamma(x) + math.Log(x)
		return math.Abs(lhs-rhs) < 1e-10*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLnGammaInvalid(t *testing.T) {
	if !math.IsNaN(LnGamma(0)) || !math.IsNaN(LnGamma(-2)) {
		t.Fatal("LnGamma must be NaN for non-positive arguments")
	}
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("GammaP(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.2, 1, 3} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaP(0.5, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("GammaP(0.5,%v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPBounds(t *testing.T) {
	if GammaP(2, 0) != 0 {
		t.Fatal("P(a,0) must be 0")
	}
	if got := GammaP(3, 1e6); math.Abs(got-1) > 1e-12 {
		t.Fatalf("P(a,∞) should be 1, got %v", got)
	}
	if !math.IsNaN(GammaP(-1, 1)) || !math.IsNaN(GammaP(1, -1)) {
		t.Fatal("invalid arguments must give NaN")
	}
}

func TestGammaPMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.1 + rng.Float64()*20
		x1 := rng.Float64() * 20
		x2 := x1 + rng.Float64()*5
		p1, p2 := GammaP(a, x1), GammaP(a, x2)
		return p1 >= 0 && p2 <= 1+1e-15 && p2 >= p1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileKnown(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.8413447460685429, 1}, // Φ(1)
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-8 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileEdge(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("quantiles at 0/1 must be ∓∞")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Fatal("quantiles outside [0,1] must be NaN")
	}
}

func TestNormalQuantileRoundTripProperty(t *testing.T) {
	cdf := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 0.001 + rng.Float64()*0.998
		return math.Abs(cdf(NormalQuantile(p))-p) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquareQuantileKnown(t *testing.T) {
	// Well-known chi-square critical values.
	cases := []struct{ p, v, want float64 }{
		{0.95, 1, 3.841458820694124},
		{0.95, 2, 5.991464547107979},
		{0.99, 5, 15.08627246938899},
		{0.5, 2, 1.3862943611198906}, // median of Exp(1/2) = 2·ln2
	}
	for _, c := range cases {
		got, err := ChiSquareQuantile(c.p, c.v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("ChiSquareQuantile(%v,%v) = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

func TestChiSquareQuantileErrors(t *testing.T) {
	for _, c := range []struct{ p, v float64 }{{0, 1}, {1, 1}, {0.5, 0}, {-1, 2}} {
		if _, err := ChiSquareQuantile(c.p, c.v); err == nil {
			t.Errorf("expected error for p=%v v=%v", c.p, c.v)
		}
	}
}

func TestGammaQuantileRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := 0.2 + rng.Float64()*10
		rate := 0.2 + rng.Float64()*5
		p := 0.01 + rng.Float64()*0.98
		x, err := GammaQuantile(p, shape, rate)
		if err != nil {
			return false
		}
		return math.Abs(GammaP(shape, rate*x)-p) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
