package phystats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDiscreteGammaRatesSingleCategory(t *testing.T) {
	r, err := DiscreteGammaRates(0.5, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || r[0] != 1 {
		t.Fatalf("single category must be rate 1, got %v", r)
	}
}

func TestDiscreteGammaRatesMeanOne(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.5, 1, 2, 10} {
		for _, k := range []int{2, 4, 8} {
			for _, median := range []bool{false, true} {
				r, err := DiscreteGammaRates(alpha, k, median)
				if err != nil {
					t.Fatal(err)
				}
				var sum float64
				for _, v := range r {
					if v < 0 {
						t.Fatalf("negative rate in %v", r)
					}
					sum += v
				}
				if math.Abs(sum/float64(k)-1) > 1e-9 {
					t.Errorf("alpha=%v k=%d median=%v: mean %v != 1", alpha, k, median, sum/float64(k))
				}
			}
		}
	}
}

func TestDiscreteGammaRatesIncreasing(t *testing.T) {
	r, err := DiscreteGammaRates(0.5, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r); i++ {
		if r[i] <= r[i-1] {
			t.Fatalf("rates must be strictly increasing: %v", r)
		}
	}
}

func TestDiscreteGammaKnownPAMLValues(t *testing.T) {
	// Reference values for alpha=0.5, k=4, mean discretization, widely
	// reproduced from Yang (1994) / PAML documentation.
	want := []float64{0.033388, 0.251916, 0.820268, 2.894428}
	got, err := DiscreteGammaRates(0.5, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 2e-4 {
			t.Fatalf("alpha=0.5 k=4: got %v want %v", got, want)
		}
	}
}

func TestDiscreteGammaHighAlphaNearUniform(t *testing.T) {
	// As alpha → ∞ the distribution degenerates to a point mass at 1.
	r, err := DiscreteGammaRates(1000, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r {
		if math.Abs(v-1) > 0.1 {
			t.Fatalf("large alpha should give rates near 1, got %v", r)
		}
	}
}

func TestDiscreteGammaErrors(t *testing.T) {
	if _, err := DiscreteGammaRates(0, 4, false); err == nil {
		t.Fatal("expected error for alpha=0")
	}
	if _, err := DiscreteGammaRates(1, 0, false); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestDiscreteGammaMeanOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := 0.05 + rng.Float64()*20
		k := 1 + rng.Intn(12)
		r, err := DiscreteGammaRates(alpha, k, rng.Intn(2) == 0)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range r {
			sum += v
		}
		return math.Abs(sum/float64(k)-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUniformCategoryWeights(t *testing.T) {
	w := UniformCategoryWeights(4)
	if len(w) != 4 {
		t.Fatalf("got %d weights", len(w))
	}
	var sum float64
	for _, v := range w {
		if v != 0.25 {
			t.Fatalf("weights %v", w)
		}
		sum += v
	}
	if sum != 1 {
		t.Fatalf("weights sum to %v", sum)
	}
}
