package phystats

import (
	"errors"
	"math"
)

// DiscreteGammaRates returns k category rates approximating a Gamma(alpha,
// alpha) distribution of relative among-site rates (mean 1), following Yang
// (1994). With useMedian the category rates are the quantile medians rescaled
// to mean 1; otherwise they are the category means computed from incomplete
// gamma differences (the standard "+G" discretization, and what BEAGLE's
// clients pass via SetCategoryRates).
func DiscreteGammaRates(alpha float64, k int, useMedian bool) ([]float64, error) {
	if k <= 0 {
		return nil, errors.New("phystats: category count must be positive")
	}
	if alpha <= 0 {
		return nil, errors.New("phystats: gamma shape must be positive")
	}
	rates := make([]float64, k)
	if k == 1 {
		rates[0] = 1
		return rates, nil
	}
	beta := alpha // rate parameter equals shape so the mean is 1

	if useMedian {
		var sum float64
		for i := 0; i < k; i++ {
			p := (2*float64(i) + 1) / (2 * float64(k))
			r, err := GammaQuantile(p, alpha, beta)
			if err != nil {
				return nil, err
			}
			rates[i] = r
			sum += r
		}
		for i := range rates {
			rates[i] *= float64(k) / sum
		}
		return rates, nil
	}

	// Mean of each equal-probability category:
	// E[X | q_{i} < X < q_{i+1}] · k, via the identity
	// ∫ x·gamma(x; a, b) dx = (a/b)·GammaP(a+1, b·x).
	cut := make([]float64, k+1)
	cut[0] = 0
	cut[k] = math.Inf(1)
	for i := 1; i < k; i++ {
		q, err := GammaQuantile(float64(i)/float64(k), alpha, beta)
		if err != nil {
			return nil, err
		}
		cut[i] = q
	}
	lower := 0.0 // GammaP(alpha+1, beta*cut[0]) == 0
	for i := 0; i < k; i++ {
		var upper float64
		if i == k-1 {
			upper = 1
		} else {
			upper = GammaP(alpha+1, beta*cut[i+1])
		}
		rates[i] = (upper - lower) * (alpha / beta) * float64(k)
		lower = upper
	}
	return rates, nil
}

// UniformCategoryWeights returns k equal category weights summing to 1.
func UniformCategoryWeights(k int) []float64 {
	w := make([]float64, k)
	for i := range w {
		w[i] = 1 / float64(k)
	}
	return w
}
