// Package engine defines the internal contract every library implementation
// fulfils — the Go analogue of BEAGLE's implementation base-code layer
// (Fig. 1/Fig. 3 of the paper). The public API package selects and drives an
// Engine; the cpuimpl package provides the serial, SSE-style and threaded
// models, and the accelimpl package provides the accelerator model running on
// the simulated CUDA/OpenCL device framework.
//
// As in the BEAGLE C API, all values cross this boundary as float64; an
// implementation built for single precision converts at the edge.
package engine

import (
	"errors"
	"fmt"

	"gobeagle/internal/kernels"
	"gobeagle/internal/telemetry"
	"gobeagle/internal/trace"
)

// None marks an unused index field in an Operation (no rescaling, for
// example), matching BEAGLE's BEAGLE_OP_NONE.
const None = -1

// Operation describes a single partial-likelihoods update in buffer indices,
// mirroring the BEAGLE operation structure: destination partials, optional
// scale buffer to write (rescale) or read, and the two child buffers with
// their transition matrices. Child buffers smaller than the instance's
// compact-tip count refer to compact state buffers when those were set.
//
// Scaling fields follow BEAGLE's dynamic- and fixed-scaling modes.
// DestScaleWrite rescales the freshly computed destination: each pattern's
// partials are divided by their maximum and the log of that factor is
// written to the named scale buffer. DestScaleRead applies previously
// written factors instead of computing new ones: after the combine kernel,
// each pattern's partials are divided by exp(scale[p]) read from the named
// buffer, which must have been written (by an earlier operation's
// DestScaleWrite or by AccumulateScaleFactors) before this batch. When both
// are set, the read factors are applied first and the rescale then captures
// the residual magnitude.
type Operation struct {
	Dest           int
	DestScaleWrite int // scale buffer to rescale into, or None
	DestScaleRead  int // previously written scale buffer applied to the fresh destination, or None
	Child1         int
	Child1Mat      int
	Child2         int
	Child2Mat      int
}

// Config fixes the geometry of an instance at creation time, following
// beagleCreateInstance.
type Config struct {
	TipCount        int // number of tips (compact or partials buffers 0..TipCount-1)
	PartialsBuffers int // total partials buffers (tips + internals + extras)
	MatrixBuffers   int // transition matrix buffers
	EigenBuffers    int // eigendecomposition slots
	ScaleBuffers    int // per-pattern log-scale-factor buffers
	Dims            kernels.Dims
	SinglePrecision bool
	Threads         int  // worker threads for threaded implementations; 0 = GOMAXPROCS
	MinPatternsWork int  // threading threshold; 0 = implementation default
	WorkGroupSize   int  // accelerator work-group size in patterns; 0 = device default
	DisableFMA      bool // build kernels without fused multiply–add (Table IV ablation)
	// Reuse enables incremental re-evaluation: the implementation tracks
	// input versions per destination buffer and skips UpdatePartials
	// operations and UpdateTransitionMatrices entries whose inputs are
	// unchanged since the last identical request (see internal/reuse).
	Reuse bool
	// Telemetry, when non-nil, receives per-kernel counters, effective-flop
	// accounting and scheduler level traces from the implementation. A nil
	// collector (or a disabled one) must cost nothing on the hot paths.
	Telemetry *telemetry.Collector
	// Trace, when non-nil, receives timeline spans (scheduler batches and
	// levels, worker tasks, device kernel launches and transfers, multi-
	// device barriers and migrations). Unlike Telemetry, a parent engine
	// shares its tracer with its sub-engines — spans carry lanes, so
	// concurrent backends do not double count, they interleave. A nil or
	// disabled tracer must cost nothing on the hot paths.
	Trace *trace.Tracer
	// TraceLane attributes this engine's spans to one lane (thread track)
	// of the trace: multi-device parents assign each backend its index.
	TraceLane int
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	d := c.Dims
	switch {
	case c.TipCount < 2:
		return errors.New("engine: need at least two tips")
	case c.PartialsBuffers < c.TipCount:
		return fmt.Errorf("engine: %d partials buffers cannot hold %d tips", c.PartialsBuffers, c.TipCount)
	case c.MatrixBuffers < 1:
		return errors.New("engine: need at least one matrix buffer")
	case c.EigenBuffers < 1:
		return errors.New("engine: need at least one eigen buffer")
	case d.StateCount < 2:
		return errors.New("engine: need at least two states")
	case d.PatternCount < 1:
		return errors.New("engine: need at least one pattern")
	case d.CategoryCount < 1:
		return errors.New("engine: need at least one rate category")
	case c.ScaleBuffers < 0:
		return errors.New("engine: negative scale buffer count")
	case c.Threads < 0:
		return errors.New("engine: negative thread count")
	}
	return nil
}

// Engine is the implementation contract. Buffer indices follow BEAGLE
// conventions: partials buffers 0..PartialsBuffers-1 (indices below TipCount
// may instead hold compact tip states), matrices 0..MatrixBuffers-1, eigen
// slots 0..EigenBuffers-1, scale buffers 0..ScaleBuffers-1.
type Engine interface {
	// Name identifies the implementation, e.g. "CPU-threadpool" or
	// "OpenCL-x86".
	Name() string

	// SetTipStates stores compact states for a tip buffer (index <
	// TipCount). A state value ≥ StateCount denotes full ambiguity.
	SetTipStates(buf int, states []int) error
	// SetTipPartials stores expanded per-pattern partials for a tip.
	SetTipPartials(buf int, partials []float64) error
	// SetPartials stores a full partials buffer ([category][pattern][state]).
	SetPartials(buf int, partials []float64) error
	// GetPartials retrieves a partials buffer.
	GetPartials(buf int) ([]float64, error)

	// SetEigenDecomposition stores a spectral decomposition in an eigen slot.
	SetEigenDecomposition(slot int, values, vectors, inverseVectors []float64) error
	// SetCategoryRates sets the relative rate of each category.
	SetCategoryRates(rates []float64) error
	// SetCategoryWeights sets the mixture weight of each category.
	SetCategoryWeights(weights []float64) error
	// SetStateFrequencies sets the stationary frequencies π.
	SetStateFrequencies(freqs []float64) error
	// SetPatternWeights sets per-pattern multiplicities.
	SetPatternWeights(weights []float64) error

	// SetTransitionMatrix stores an explicit matrix (all categories).
	SetTransitionMatrix(matrix int, values []float64) error
	// GetTransitionMatrix retrieves a matrix buffer.
	GetTransitionMatrix(matrix int) ([]float64, error)
	// UpdateTransitionMatrices computes P(rate_c·edgeLength) for each listed
	// matrix from the eigendecomposition in the given slot.
	UpdateTransitionMatrices(eigenSlot int, matrices []int, edgeLengths []float64) error

	// UpdatePartials executes a list of partial-likelihoods operations in
	// order (data dependencies between listed operations are honored).
	UpdatePartials(ops []Operation) error

	// ResetScaleFactors zeroes a scale buffer.
	ResetScaleFactors(scaleBuf int) error
	// AccumulateScaleFactors sums the listed scale buffers into cumBuf.
	AccumulateScaleFactors(scaleBufs []int, cumBuf int) error

	// CalculateRootLogLikelihoods integrates the root partials buffer over
	// categories, states and patterns; cumScaleBuf is a scale buffer index
	// or None.
	CalculateRootLogLikelihoods(rootBuf, cumScaleBuf int) (float64, error)
	// CalculateEdgeLogLikelihoods integrates across one branch between a
	// parent-side and child-side partials buffer.
	CalculateEdgeLogLikelihoods(parentBuf, childBuf, matrix, cumScaleBuf int) (float64, error)
	// UpdateTransitionDerivatives computes first-derivative matrices
	// (dP/dt) into d1Matrices and, when d2Matrices is non-nil,
	// second-derivative matrices into d2Matrices, for the given branch
	// lengths, as beagleUpdateTransitionMatrices' derivative outputs do.
	UpdateTransitionDerivatives(eigenSlot int, d1Matrices, d2Matrices []int, edgeLengths []float64) error
	// CalculateEdgeDerivatives integrates across one branch and returns the
	// log likelihood together with its first and second derivatives with
	// respect to the branch length; d2Matrix may be None to skip the second
	// derivative.
	CalculateEdgeDerivatives(parentBuf, childBuf, matrix, d1Matrix, d2Matrix, cumScaleBuf int) (lnL, d1, d2 float64, err error)
	// SiteLogLikelihoods returns per-pattern log likelihoods at the root.
	SiteLogLikelihoods(rootBuf, cumScaleBuf int) ([]float64, error)

	// Close releases implementation resources (worker pools, device
	// buffers). The engine must not be used afterwards.
	Close() error
}
