package engine

import (
	"fmt"
	"time"

	"gobeagle/internal/kernels"
	"gobeagle/internal/reuse"
	"gobeagle/internal/telemetry"
	"gobeagle/internal/trace"
)

// Storage is the flexibly indexed buffer store shared by host-side
// implementations: partials, compact tip states, transition matrices,
// eigendecompositions, rate/weight/frequency vectors and scale buffers. It
// provides the full setter half of the Engine interface with validation, so
// concrete engines only implement execution strategy. All public setters take
// float64 and convert to the engine precision T at this boundary, exactly as
// the BEAGLE C API does.
type Storage[T kernels.Real] struct {
	Cfg       Config
	Partials  [][]T
	TipStates [][]int32
	Matrices  [][]T
	Eigens    []*kernels.Eigen
	CatRates  []float64
	CatWts    []float64
	Freqs     []float64
	PatWts    []float64
	Scale     [][]float64
	// Reuse is the incremental re-evaluation tracker, nil unless
	// Cfg.Reuse. Every mutating setter below reports its invalidation to
	// it (all tracker methods are no-ops on nil), and implementations
	// consult it to skip unchanged work.
	Reuse *reuse.Tracker
}

// NewStorage allocates a buffer store for the given configuration; the
// configuration must already be validated.
func NewStorage[T kernels.Real](cfg Config) *Storage[T] {
	s := &Storage[T]{
		Cfg:       cfg,
		Partials:  make([][]T, cfg.PartialsBuffers),
		TipStates: make([][]int32, cfg.TipCount),
		Matrices:  make([][]T, cfg.MatrixBuffers),
		Eigens:    make([]*kernels.Eigen, cfg.EigenBuffers),
		CatRates:  make([]float64, cfg.Dims.CategoryCount),
		CatWts:    make([]float64, cfg.Dims.CategoryCount),
		Freqs:     make([]float64, cfg.Dims.StateCount),
		PatWts:    make([]float64, cfg.Dims.PatternCount),
		Scale:     make([][]float64, cfg.ScaleBuffers),
	}
	// Sensible defaults: unit rates, uniform weights and frequencies,
	// weight-1 patterns.
	for i := range s.CatRates {
		s.CatRates[i] = 1
		s.CatWts[i] = 1 / float64(cfg.Dims.CategoryCount)
	}
	for i := range s.Freqs {
		s.Freqs[i] = 1 / float64(cfg.Dims.StateCount)
	}
	for i := range s.PatWts {
		s.PatWts[i] = 1
	}
	if cfg.Reuse {
		s.Reuse = reuse.New(cfg.PartialsBuffers, cfg.MatrixBuffers, cfg.ScaleBuffers)
	}
	return s
}

func (s *Storage[T]) checkPartialsIndex(buf int) error {
	if buf < 0 || buf >= len(s.Partials) {
		return fmt.Errorf("engine: partials buffer %d out of range [0,%d)", buf, len(s.Partials))
	}
	return nil
}

func (s *Storage[T]) checkMatrixIndex(m int) error {
	if m < 0 || m >= len(s.Matrices) {
		return fmt.Errorf("engine: matrix buffer %d out of range [0,%d)", m, len(s.Matrices))
	}
	return nil
}

func (s *Storage[T]) checkScaleIndex(b int) error {
	if b < 0 || b >= len(s.Scale) {
		return fmt.Errorf("engine: scale buffer %d out of range [0,%d)", b, len(s.Scale))
	}
	return nil
}

// SetTipStates stores compact states for tip buffer buf.
func (s *Storage[T]) SetTipStates(buf int, states []int) error {
	if buf < 0 || buf >= s.Cfg.TipCount {
		return fmt.Errorf("engine: tip buffer %d out of range [0,%d)", buf, s.Cfg.TipCount)
	}
	if len(states) != s.Cfg.Dims.PatternCount {
		return fmt.Errorf("engine: tip states length %d, want %d", len(states), s.Cfg.Dims.PatternCount)
	}
	out := make([]int32, len(states))
	for i, st := range states {
		if st < 0 {
			return fmt.Errorf("engine: negative state %d at pattern %d", st, i)
		}
		// Any value ≥ StateCount is normalized to the gap code StateCount.
		if st > s.Cfg.Dims.StateCount {
			st = s.Cfg.Dims.StateCount
		}
		out[i] = int32(st)
	}
	s.TipStates[buf] = out
	s.Reuse.InvalidatePartials(buf)
	return nil
}

// SetTipPartials stores per-pattern partials for a tip, replicating across
// categories.
func (s *Storage[T]) SetTipPartials(buf int, partials []float64) error {
	if buf < 0 || buf >= s.Cfg.TipCount {
		return fmt.Errorf("engine: tip buffer %d out of range [0,%d)", buf, s.Cfg.TipCount)
	}
	d := s.Cfg.Dims
	if len(partials) != d.PatternCount*d.StateCount {
		return fmt.Errorf("engine: tip partials length %d, want %d", len(partials), d.PatternCount*d.StateCount)
	}
	full := make([]T, d.PartialsLen())
	for c := 0; c < d.CategoryCount; c++ {
		off := c * d.PatternCount * d.StateCount
		for i, v := range partials {
			full[off+i] = T(v)
		}
	}
	s.Partials[buf] = full
	s.TipStates[buf] = nil // expanded representation wins
	s.Reuse.InvalidatePartials(buf)
	return nil
}

// SetPartials stores a full partials buffer.
func (s *Storage[T]) SetPartials(buf int, partials []float64) error {
	if err := s.checkPartialsIndex(buf); err != nil {
		return err
	}
	d := s.Cfg.Dims
	if len(partials) != d.PartialsLen() {
		return fmt.Errorf("engine: partials length %d, want %d", len(partials), d.PartialsLen())
	}
	full := make([]T, len(partials))
	for i, v := range partials {
		full[i] = T(v)
	}
	s.Partials[buf] = full
	if buf < s.Cfg.TipCount {
		s.TipStates[buf] = nil
	}
	s.Reuse.InvalidatePartials(buf)
	return nil
}

// GetPartials retrieves a partials buffer as float64.
func (s *Storage[T]) GetPartials(buf int) ([]float64, error) {
	if err := s.checkPartialsIndex(buf); err != nil {
		return nil, err
	}
	p := s.Partials[buf]
	if p == nil {
		return nil, fmt.Errorf("engine: partials buffer %d has not been computed or set", buf)
	}
	out := make([]float64, len(p))
	for i, v := range p {
		out[i] = float64(v)
	}
	return out, nil
}

// SetEigenDecomposition stores a decomposition in an eigen slot.
func (s *Storage[T]) SetEigenDecomposition(slot int, values, vectors, inverseVectors []float64) error {
	if slot < 0 || slot >= len(s.Eigens) {
		return fmt.Errorf("engine: eigen slot %d out of range [0,%d)", slot, len(s.Eigens))
	}
	n := s.Cfg.Dims.StateCount
	if len(values) != n || len(vectors) != n*n || len(inverseVectors) != n*n {
		return fmt.Errorf("engine: eigen decomposition sizes %d/%d/%d, want %d/%d/%d",
			len(values), len(vectors), len(inverseVectors), n, n*n, n*n)
	}
	s.Eigens[slot] = &kernels.Eigen{
		StateCount:     n,
		Values:         append([]float64(nil), values...),
		Vectors:        append([]float64(nil), vectors...),
		InverseVectors: append([]float64(nil), inverseVectors...),
	}
	s.Reuse.InvalidateModel()
	return nil
}

// SetCategoryRates sets per-category relative rates.
func (s *Storage[T]) SetCategoryRates(rates []float64) error {
	if len(rates) != s.Cfg.Dims.CategoryCount {
		return fmt.Errorf("engine: %d category rates, want %d", len(rates), s.Cfg.Dims.CategoryCount)
	}
	copy(s.CatRates, rates)
	s.Reuse.InvalidateModel()
	return nil
}

// SetCategoryWeights sets per-category mixture weights.
func (s *Storage[T]) SetCategoryWeights(weights []float64) error {
	if len(weights) != s.Cfg.Dims.CategoryCount {
		return fmt.Errorf("engine: %d category weights, want %d", len(weights), s.Cfg.Dims.CategoryCount)
	}
	copy(s.CatWts, weights)
	s.Reuse.InvalidateModel()
	return nil
}

// SetStateFrequencies sets the stationary distribution π.
func (s *Storage[T]) SetStateFrequencies(freqs []float64) error {
	if len(freqs) != s.Cfg.Dims.StateCount {
		return fmt.Errorf("engine: %d frequencies, want %d", len(freqs), s.Cfg.Dims.StateCount)
	}
	copy(s.Freqs, freqs)
	s.Reuse.InvalidateModel()
	return nil
}

// SetPatternWeights sets per-pattern multiplicities.
func (s *Storage[T]) SetPatternWeights(weights []float64) error {
	if len(weights) != s.Cfg.Dims.PatternCount {
		return fmt.Errorf("engine: %d pattern weights, want %d", len(weights), s.Cfg.Dims.PatternCount)
	}
	copy(s.PatWts, weights)
	s.Reuse.InvalidateModel()
	return nil
}

// SetTransitionMatrix stores an explicit transition matrix buffer.
func (s *Storage[T]) SetTransitionMatrix(matrix int, values []float64) error {
	if err := s.checkMatrixIndex(matrix); err != nil {
		return err
	}
	if len(values) != s.Cfg.Dims.MatrixLen() {
		return fmt.Errorf("engine: matrix length %d, want %d", len(values), s.Cfg.Dims.MatrixLen())
	}
	m := make([]T, len(values))
	for i, v := range values {
		m[i] = T(v)
	}
	s.Matrices[matrix] = m
	s.Reuse.InvalidateMatrix(matrix)
	return nil
}

// GetTransitionMatrix retrieves a matrix buffer as float64.
func (s *Storage[T]) GetTransitionMatrix(matrix int) ([]float64, error) {
	if err := s.checkMatrixIndex(matrix); err != nil {
		return nil, err
	}
	m := s.Matrices[matrix]
	if m == nil {
		return nil, fmt.Errorf("engine: matrix buffer %d has not been computed or set", matrix)
	}
	out := make([]float64, len(m))
	for i, v := range m {
		out[i] = float64(v)
	}
	return out, nil
}

// UpdateTransitionMatrices computes the listed matrices from an eigen slot.
func (s *Storage[T]) UpdateTransitionMatrices(eigenSlot int, matrices []int, edgeLengths []float64) error {
	if eigenSlot < 0 || eigenSlot >= len(s.Eigens) {
		return fmt.Errorf("engine: eigen slot %d out of range [0,%d)", eigenSlot, len(s.Eigens))
	}
	e := s.Eigens[eigenSlot]
	if e == nil {
		return fmt.Errorf("engine: eigen slot %d is empty", eigenSlot)
	}
	if len(matrices) != len(edgeLengths) {
		return fmt.Errorf("engine: %d matrices but %d edge lengths", len(matrices), len(edgeLengths))
	}
	for i, m := range matrices {
		if err := s.checkMatrixIndex(m); err != nil {
			return err
		}
		if edgeLengths[i] < 0 {
			return fmt.Errorf("engine: negative edge length %v", edgeLengths[i])
		}
	}
	var start time.Time
	if s.Cfg.Telemetry.Enabled() {
		start = time.Now()
	}
	var tstart int64
	traceOn := s.Cfg.Trace.Enabled()
	if traceOn {
		tstart = s.Cfg.Trace.Now()
	}
	computed := 0
	for i, m := range matrices {
		// Content-addressed reuse: the matrix already holds the result of
		// this exact (model, eigen slot, edge length) computation.
		if !s.Reuse.ShouldComputeMatrix(m, eigenSlot, edgeLengths[i]) {
			continue
		}
		if s.Matrices[m] == nil {
			s.Matrices[m] = make([]T, s.Cfg.Dims.MatrixLen())
		}
		kernels.UpdateTransitionMatrix(s.Matrices[m], e, edgeLengths[i], s.CatRates)
		computed++
	}
	if !start.IsZero() && computed > 0 {
		s.Cfg.Telemetry.Record(telemetry.KernelMatrices, computed, time.Since(start))
	}
	if traceOn {
		s.Cfg.Trace.Record(trace.Span{Kind: trace.KindMatrices, Lane: int32(s.Cfg.TraceLane),
			Start: tstart, Dur: s.Cfg.Trace.Now() - tstart, Arg0: int64(computed)})
	}
	return nil
}

// UpdateTransitionDerivatives computes derivative matrices from an eigen
// slot into ordinary matrix buffers, as BEAGLE's derivative indices do.
func (s *Storage[T]) UpdateTransitionDerivatives(eigenSlot int, d1Matrices, d2Matrices []int, edgeLengths []float64) error {
	if eigenSlot < 0 || eigenSlot >= len(s.Eigens) {
		return fmt.Errorf("engine: eigen slot %d out of range [0,%d)", eigenSlot, len(s.Eigens))
	}
	e := s.Eigens[eigenSlot]
	if e == nil {
		return fmt.Errorf("engine: eigen slot %d is empty", eigenSlot)
	}
	if len(d1Matrices) != len(edgeLengths) {
		return fmt.Errorf("engine: %d derivative matrices but %d edge lengths", len(d1Matrices), len(edgeLengths))
	}
	if d2Matrices != nil && len(d2Matrices) != len(d1Matrices) {
		return fmt.Errorf("engine: %d second-derivative matrices for %d first", len(d2Matrices), len(d1Matrices))
	}
	for i, m := range d1Matrices {
		if err := s.checkMatrixIndex(m); err != nil {
			return err
		}
		if d2Matrices != nil {
			if err := s.checkMatrixIndex(d2Matrices[i]); err != nil {
				return err
			}
		}
		if edgeLengths[i] < 0 {
			return fmt.Errorf("engine: negative edge length %v", edgeLengths[i])
		}
	}
	var start time.Time
	if s.Cfg.Telemetry.Enabled() {
		start = time.Now()
	}
	var tstart int64
	traceOn := s.Cfg.Trace.Enabled()
	if traceOn {
		tstart = s.Cfg.Trace.Now()
	}
	for i, m := range d1Matrices {
		if s.Matrices[m] == nil {
			s.Matrices[m] = make([]T, s.Cfg.Dims.MatrixLen())
		}
		var d2 []T
		if d2Matrices != nil {
			if s.Matrices[d2Matrices[i]] == nil {
				s.Matrices[d2Matrices[i]] = make([]T, s.Cfg.Dims.MatrixLen())
			}
			d2 = s.Matrices[d2Matrices[i]]
		}
		kernels.UpdateTransitionDerivatives(s.Matrices[m], d2, e, edgeLengths[i], s.CatRates)
		// Derivative kernels overwrite ordinary matrix buffers, so any
		// content-addressed transition-matrix entry for them is stale.
		s.Reuse.InvalidateMatrix(m)
		if d2Matrices != nil {
			s.Reuse.InvalidateMatrix(d2Matrices[i])
		}
	}
	if !start.IsZero() {
		s.Cfg.Telemetry.Record(telemetry.KernelDerivatives, len(d1Matrices), time.Since(start))
	}
	if traceOn {
		s.Cfg.Trace.Record(trace.Span{Kind: trace.KindDerivatives, Lane: int32(s.Cfg.TraceLane),
			Start: tstart, Dur: s.Cfg.Trace.Now() - tstart, Arg0: int64(len(d1Matrices))})
	}
	return nil
}

// ResetScaleFactors zeroes (and allocates if needed) a scale buffer.
func (s *Storage[T]) ResetScaleFactors(scaleBuf int) error {
	if err := s.checkScaleIndex(scaleBuf); err != nil {
		return err
	}
	s.Reuse.InvalidateScale(scaleBuf)
	if s.Scale[scaleBuf] == nil {
		s.Scale[scaleBuf] = make([]float64, s.Cfg.Dims.PatternCount)
		return nil
	}
	for i := range s.Scale[scaleBuf] {
		s.Scale[scaleBuf][i] = 0
	}
	return nil
}

// AccumulateScaleFactors sums the listed scale buffers into cumBuf.
func (s *Storage[T]) AccumulateScaleFactors(scaleBufs []int, cumBuf int) error {
	if err := s.checkScaleIndex(cumBuf); err != nil {
		return err
	}
	factors := make([][]float64, 0, len(scaleBufs))
	for _, b := range scaleBufs {
		if err := s.checkScaleIndex(b); err != nil {
			return err
		}
		if s.Scale[b] == nil {
			return fmt.Errorf("engine: scale buffer %d has not been written", b)
		}
		factors = append(factors, s.Scale[b])
	}
	if s.Scale[cumBuf] == nil {
		s.Scale[cumBuf] = make([]float64, s.Cfg.Dims.PatternCount)
	}
	kernels.AccumulateScaleFactors(s.Scale[cumBuf], factors, 0, s.Cfg.Dims.PatternCount)
	s.Reuse.InvalidateScale(cumBuf)
	return nil
}

// ScaleWriteTarget returns (allocating if needed) the scale buffer an
// operation rescales into.
func (s *Storage[T]) ScaleWriteTarget(scaleBuf int) ([]float64, error) {
	if err := s.checkScaleIndex(scaleBuf); err != nil {
		return nil, err
	}
	if s.Scale[scaleBuf] == nil {
		s.Scale[scaleBuf] = make([]float64, s.Cfg.Dims.PatternCount)
	}
	return s.Scale[scaleBuf], nil
}

// CumulativeScale returns the scale buffer for likelihood integration, or
// nil when cumScaleBuf is None.
func (s *Storage[T]) CumulativeScale(cumScaleBuf int) ([]float64, error) {
	if cumScaleBuf == None {
		return nil, nil
	}
	if err := s.checkScaleIndex(cumScaleBuf); err != nil {
		return nil, err
	}
	if s.Scale[cumScaleBuf] == nil {
		return nil, fmt.Errorf("engine: scale buffer %d has not been written", cumScaleBuf)
	}
	return s.Scale[cumScaleBuf], nil
}

// OperandKind classifies an operation child as compact states or partials.
type OperandKind int

// Operand kinds.
const (
	OperandPartials OperandKind = iota
	OperandStates
)

// ChildOperand resolves an operation child buffer: compact tip states when
// they were set, otherwise the partials buffer. It validates that the buffer
// holds data.
func (s *Storage[T]) ChildOperand(buf int) (OperandKind, []int32, []T, error) {
	if err := s.checkPartialsIndex(buf); err != nil {
		return 0, nil, nil, err
	}
	if buf < s.Cfg.TipCount && s.TipStates[buf] != nil {
		return OperandStates, s.TipStates[buf], nil, nil
	}
	if s.Partials[buf] == nil {
		return 0, nil, nil, fmt.Errorf("engine: operand buffer %d holds no data", buf)
	}
	return OperandPartials, nil, s.Partials[buf], nil
}

// DestPartials returns (allocating if needed) a destination partials buffer.
func (s *Storage[T]) DestPartials(buf int) ([]T, error) {
	if err := s.checkPartialsIndex(buf); err != nil {
		return nil, err
	}
	if buf < s.Cfg.TipCount && s.TipStates[buf] != nil {
		return nil, fmt.Errorf("engine: buffer %d holds compact tip states and cannot be a destination", buf)
	}
	if s.Partials[buf] == nil {
		s.Partials[buf] = make([]T, s.Cfg.Dims.PartialsLen())
	}
	return s.Partials[buf], nil
}

// OpMatrices validates and returns the two matrices of an operation.
func (s *Storage[T]) OpMatrices(op Operation) (m1, m2 []T, err error) {
	if err := s.checkMatrixIndex(op.Child1Mat); err != nil {
		return nil, nil, err
	}
	if err := s.checkMatrixIndex(op.Child2Mat); err != nil {
		return nil, nil, err
	}
	m1 = s.Matrices[op.Child1Mat]
	m2 = s.Matrices[op.Child2Mat]
	if m1 == nil || m2 == nil {
		return nil, nil, fmt.Errorf("engine: operation uses uncomputed matrices %d/%d", op.Child1Mat, op.Child2Mat)
	}
	return m1, m2, nil
}
