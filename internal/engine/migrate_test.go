package engine

import (
	"math/rand"
	"testing"

	"gobeagle/internal/kernels"
)

func migrateConfig(patterns int) Config {
	return Config{
		TipCount:        3,
		PartialsBuffers: 5,
		MatrixBuffers:   4,
		EigenBuffers:    1,
		ScaleBuffers:    3,
		Dims:            kernels.Dims{StateCount: 4, PatternCount: patterns, CategoryCount: 2},
	}
}

// populatedStorage builds a storage with every kind of per-pattern state set:
// compact tip states, expanded tip partials, an internal partials buffer,
// non-uniform pattern weights and two written scale buffers (one left nil).
func populatedStorage(t *testing.T, rng *rand.Rand, patterns int) *Storage[float64] {
	t.Helper()
	cfg := migrateConfig(patterns)
	s := NewStorage[float64](cfg)
	d := cfg.Dims

	states := make([]int, patterns)
	for i := range states {
		states[i] = rng.Intn(d.StateCount + 1)
	}
	if err := s.SetTipStates(0, states); err != nil {
		t.Fatalf("SetTipStates: %v", err)
	}
	tip := make([]float64, patterns*d.StateCount)
	for i := range tip {
		tip[i] = rng.Float64()
	}
	if err := s.SetTipPartials(1, tip); err != nil {
		t.Fatalf("SetTipPartials: %v", err)
	}
	full := make([]float64, d.PartialsLen())
	for i := range full {
		full[i] = rng.Float64()
	}
	if err := s.SetPartials(3, full); err != nil {
		t.Fatalf("SetPartials: %v", err)
	}
	wts := make([]float64, patterns)
	for i := range wts {
		wts[i] = float64(1 + rng.Intn(5))
	}
	if err := s.SetPatternWeights(wts); err != nil {
		t.Fatalf("SetPatternWeights: %v", err)
	}
	for _, b := range []int{0, 2} {
		sc, err := s.ScaleWriteTarget(b)
		if err != nil {
			t.Fatalf("ScaleWriteTarget(%d): %v", b, err)
		}
		for i := range sc {
			sc[i] = rng.NormFloat64()
		}
	}
	return s
}

// snapshot captures the per-pattern state of a storage for later comparison.
type storageSnapshot struct {
	patterns  int
	tipStates [][]int32
	partials  [][]float64
	patWts    []float64
	scale     [][]float64
}

func snapshotStorage(s *Storage[float64]) storageSnapshot {
	snap := storageSnapshot{
		patterns:  s.Cfg.Dims.PatternCount,
		tipStates: make([][]int32, len(s.TipStates)),
		partials:  make([][]float64, len(s.Partials)),
		patWts:    append([]float64(nil), s.PatWts...),
		scale:     make([][]float64, len(s.Scale)),
	}
	for i, v := range s.TipStates {
		if v != nil {
			snap.tipStates[i] = append([]int32(nil), v...)
		}
	}
	for i, v := range s.Partials {
		if v != nil {
			snap.partials[i] = append([]float64(nil), v...)
		}
	}
	for i, v := range s.Scale {
		if v != nil {
			snap.scale[i] = append([]float64(nil), v...)
		}
	}
	return snap
}

func checkSnapshot(t *testing.T, s *Storage[float64], want storageSnapshot) {
	t.Helper()
	if got := s.Cfg.Dims.PatternCount; got != want.patterns {
		t.Fatalf("pattern count %d, want %d", got, want.patterns)
	}
	for i, v := range want.tipStates {
		if (v == nil) != (s.TipStates[i] == nil) {
			t.Fatalf("tip-state buffer %d occupancy changed", i)
		}
		for j, x := range v {
			if s.TipStates[i][j] != x {
				t.Fatalf("tip-state buffer %d pattern %d = %d, want %d", i, j, s.TipStates[i][j], x)
			}
		}
	}
	for i, v := range want.partials {
		if (v == nil) != (s.Partials[i] == nil) {
			t.Fatalf("partials buffer %d occupancy changed", i)
		}
		for j, x := range v {
			if s.Partials[i][j] != x {
				t.Fatalf("partials buffer %d element %d = %v, want %v", i, j, s.Partials[i][j], x)
			}
		}
	}
	for j, x := range want.patWts {
		if s.PatWts[j] != x {
			t.Fatalf("pattern weight %d = %v, want %v", j, s.PatWts[j], x)
		}
	}
	for i, v := range want.scale {
		if (v == nil) != (s.Scale[i] == nil) {
			t.Fatalf("scale buffer %d occupancy changed", i)
		}
		for j, x := range v {
			if s.Scale[i][j] != x {
				t.Fatalf("scale buffer %d pattern %d = %v, want %v", i, j, s.Scale[i][j], x)
			}
		}
	}
}

// TestStorageMigrateRoundTrip detaches a span from each end and re-attaches
// it: the storage must be bit-identical to where it started.
func TestStorageMigrateRoundTrip(t *testing.T) {
	for _, fromHigh := range []bool{true, false} {
		rng := rand.New(rand.NewSource(11))
		s := populatedStorage(t, rng, 9)
		want := snapshotStorage(s)

		blk, err := s.DetachPatterns(fromHigh, 4)
		if err != nil {
			t.Fatalf("DetachPatterns(fromHigh=%v): %v", fromHigh, err)
		}
		if blk.Patterns != 4 {
			t.Fatalf("block spans %d patterns, want 4", blk.Patterns)
		}
		if got := s.Cfg.Dims.PatternCount; got != 5 {
			t.Fatalf("after detach pattern count %d, want 5", got)
		}
		if err := s.AttachPatterns(fromHigh, blk); err != nil {
			t.Fatalf("AttachPatterns(atHigh=%v): %v", fromHigh, err)
		}
		checkSnapshot(t, s, want)
	}
}

// TestStorageMigrateBetweenStorages moves a boundary span from one storage to
// a neighbor, the way the multi-device rebalancer does, and checks both sides
// hold exactly the state of a reference storage split at the new boundary.
func TestStorageMigrateBetweenStorages(t *testing.T) {
	const p, move = 12, 3
	rng := rand.New(rand.NewSource(23))
	ref := populatedStorage(t, rng, p)

	// left takes patterns [0,7), right takes [7,12); build them by
	// detaching from a clone of ref.
	rng = rand.New(rand.NewSource(23))
	left := populatedStorage(t, rng, p)
	rightBlk, err := left.DetachPatterns(true, 5)
	if err != nil {
		t.Fatalf("initial split: %v", err)
	}
	rng = rand.New(rand.NewSource(23))
	right := populatedStorage(t, rng, p)
	if _, err := right.DetachPatterns(false, 7); err != nil {
		t.Fatalf("initial split: %v", err)
	}
	_ = rightBlk

	// Move the boundary left by `move` patterns: detach from left's high
	// end, attach at right's low end.
	blk, err := left.DetachPatterns(true, move)
	if err != nil {
		t.Fatalf("DetachPatterns: %v", err)
	}
	if err := right.AttachPatterns(false, blk); err != nil {
		t.Fatalf("AttachPatterns: %v", err)
	}

	if got := left.Cfg.Dims.PatternCount; got != 4 {
		t.Fatalf("left has %d patterns, want 4", got)
	}
	if got := right.Cfg.Dims.PatternCount; got != 8 {
		t.Fatalf("right has %d patterns, want 8", got)
	}

	// Every per-pattern value must match ref at the shifted offsets.
	d := ref.Cfg.Dims
	for i := 0; i < 4; i++ {
		if left.TipStates[0][i] != ref.TipStates[0][i] {
			t.Fatalf("left tip state %d diverged", i)
		}
	}
	for i := 0; i < 8; i++ {
		if right.TipStates[0][i] != ref.TipStates[0][i+4] {
			t.Fatalf("right tip state %d diverged", i)
		}
	}
	for c := 0; c < d.CategoryCount; c++ {
		for i := 0; i < 4*d.StateCount; i++ {
			if left.Partials[3][c*4*d.StateCount+i] != ref.Partials[3][(c*p)*d.StateCount+i] {
				t.Fatalf("left partials diverged at category %d element %d", c, i)
			}
		}
		for i := 0; i < 8*d.StateCount; i++ {
			if right.Partials[3][c*8*d.StateCount+i] != ref.Partials[3][(c*p+4)*d.StateCount+i] {
				t.Fatalf("right partials diverged at category %d element %d", c, i)
			}
		}
	}
	for i := 0; i < 4; i++ {
		if left.PatWts[i] != ref.PatWts[i] || left.Scale[0][i] != ref.Scale[0][i] {
			t.Fatalf("left weight/scale %d diverged", i)
		}
	}
	for i := 0; i < 8; i++ {
		if right.PatWts[i] != ref.PatWts[i+4] || right.Scale[2][i] != ref.Scale[2][i+4] {
			t.Fatalf("right weight/scale %d diverged", i)
		}
	}
}

func TestStorageMigrateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := populatedStorage(t, rng, 6)

	if _, err := s.DetachPatterns(true, 0); err == nil {
		t.Fatal("DetachPatterns accepted n=0")
	}
	if _, err := s.DetachPatterns(true, 6); err == nil {
		t.Fatal("DetachPatterns drained the storage")
	}
	if err := s.AttachPatterns(true, nil); err == nil {
		t.Fatal("AttachPatterns accepted a nil block")
	}
	blk, err := s.DetachPatterns(true, 2)
	if err != nil {
		t.Fatalf("DetachPatterns: %v", err)
	}
	blk.Weights = blk.Weights[:1]
	if err := s.AttachPatterns(true, blk); err == nil {
		t.Fatal("AttachPatterns accepted mismatched weights")
	}
	blk.Weights = append(blk.Weights, 1)
	// Occupancy mismatch: block carries tip states the target lacks.
	other := NewStorage[float64](migrateConfig(4))
	if err := other.AttachPatterns(true, blk); err == nil {
		t.Fatal("AttachPatterns accepted occupancy mismatch")
	}
	// Geometry mismatch: different buffer counts.
	cfg := migrateConfig(4)
	cfg.ScaleBuffers = 1
	narrow := NewStorage[float64](cfg)
	if err := narrow.AttachPatterns(true, blk); err == nil {
		t.Fatal("AttachPatterns accepted geometry mismatch")
	}
}
