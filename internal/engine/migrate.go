package engine

import "fmt"

// PatternBlock is the interchange format for migrating a contiguous range of
// site patterns between engines: every piece of per-pattern state an engine
// holds, extracted for one pattern span. Values cross this boundary as
// float64, exactly as the rest of the engine interface does, so blocks move
// losslessly between same-precision backends of different implementations
// (host CPU ↔ accelerator).
//
// Buffers that are unset on the source engine stay nil in the block;
// replicated state (transition matrices, eigendecompositions, category rates
// and weights, state frequencies) is not per-pattern and never migrates.
type PatternBlock struct {
	// Patterns is the span of the block.
	Patterns int
	// TipStates holds compact tip states per tip buffer (nil for tips set
	// as expanded partials or never set).
	TipStates [][]int32
	// Partials holds partials per buffer in [category][pattern][state]
	// layout with PatternCount == Patterns (nil for unset buffers).
	Partials [][]float64
	// Weights holds the per-pattern multiplicities.
	Weights []float64
	// Scale holds per-pattern log scale factors per scale buffer, including
	// cumulative buffers (nil for unwritten buffers).
	Scale [][]float64
}

// PatternMigrator is the optional engine capability behind multi-device
// rebalancing: an engine that can shrink or grow its pattern range at either
// end, handing the affected per-pattern state over as a PatternBlock. The
// multi-device engine moves partition boundaries between neighboring
// sub-engines by detaching a boundary region from one and attaching it to
// the other.
//
// Both operations change the engine's pattern count; all per-pattern inputs
// set afterwards must use the new count. An engine must always retain at
// least one pattern.
type PatternMigrator interface {
	// DetachPatterns removes n patterns from the high end (fromHigh) or the
	// low end of the engine's pattern range and returns their state.
	DetachPatterns(fromHigh bool, n int) (*PatternBlock, error)
	// AttachPatterns inserts a block at the high end (atHigh) or the low
	// end of the engine's pattern range.
	AttachPatterns(atHigh bool, blk *PatternBlock) error
}

// blockRange returns the [lo,hi) local pattern range a detach of n patterns
// covers.
func blockRange(patterns int, fromHigh bool, n int) (lo, hi int) {
	if fromHigh {
		return patterns - n, patterns
	}
	return 0, n
}

// DetachPatterns removes n patterns from one end of the storage, returning
// their tip states, partials, weights and scale factors. The storage keeps
// at least one pattern.
func (s *Storage[T]) DetachPatterns(fromHigh bool, n int) (*PatternBlock, error) {
	p := s.Cfg.Dims.PatternCount
	if n <= 0 || n >= p {
		return nil, fmt.Errorf("engine: cannot detach %d of %d patterns", n, p)
	}
	lo, hi := blockRange(p, fromHigh, n)
	keepLo, keepHi := 0, lo
	if !fromHigh {
		keepLo, keepHi = hi, p
	}
	d := s.Cfg.Dims
	blk := &PatternBlock{
		Patterns:  n,
		TipStates: make([][]int32, len(s.TipStates)),
		Partials:  make([][]float64, len(s.Partials)),
		Weights:   append([]float64(nil), s.PatWts[lo:hi]...),
		Scale:     make([][]float64, len(s.Scale)),
	}
	for t, st := range s.TipStates {
		if st == nil {
			continue
		}
		blk.TipStates[t] = append([]int32(nil), st[lo:hi]...)
		s.TipStates[t] = append([]int32(nil), st[keepLo:keepHi]...)
	}
	for b, part := range s.Partials {
		if part == nil {
			continue
		}
		out := make([]float64, d.CategoryCount*n*d.StateCount)
		keep := make([]T, d.CategoryCount*(keepHi-keepLo)*d.StateCount)
		for c := 0; c < d.CategoryCount; c++ {
			src := part[(c*d.PatternCount+lo)*d.StateCount : (c*d.PatternCount+hi)*d.StateCount]
			for i, v := range src {
				out[c*n*d.StateCount+i] = float64(v)
			}
			copy(keep[c*(keepHi-keepLo)*d.StateCount:], part[(c*d.PatternCount+keepLo)*d.StateCount:(c*d.PatternCount+keepHi)*d.StateCount])
		}
		blk.Partials[b] = out
		s.Partials[b] = keep
	}
	for b, sc := range s.Scale {
		if sc == nil {
			continue
		}
		blk.Scale[b] = append([]float64(nil), sc[lo:hi]...)
		s.Scale[b] = append([]float64(nil), sc[keepLo:keepHi]...)
	}
	s.PatWts = append([]float64(nil), s.PatWts[keepLo:keepHi]...)
	s.Cfg.Dims.PatternCount = p - n
	return blk, nil
}

// AttachPatterns inserts a detached block at one end of the storage. The
// block's buffer occupancy must match the storage's: a block carrying data
// for a buffer the storage has never seen (or vice versa) indicates the two
// engines diverged and is an error.
func (s *Storage[T]) AttachPatterns(atHigh bool, blk *PatternBlock) error {
	if blk == nil || blk.Patterns <= 0 {
		return fmt.Errorf("engine: cannot attach an empty pattern block")
	}
	if len(blk.TipStates) != len(s.TipStates) || len(blk.Partials) != len(s.Partials) || len(blk.Scale) != len(s.Scale) {
		return fmt.Errorf("engine: pattern block geometry (%d/%d/%d buffers) does not match storage (%d/%d/%d)",
			len(blk.TipStates), len(blk.Partials), len(blk.Scale),
			len(s.TipStates), len(s.Partials), len(s.Scale))
	}
	d := s.Cfg.Dims
	p, n := d.PatternCount, blk.Patterns
	for t := range s.TipStates {
		if (s.TipStates[t] == nil) != (blk.TipStates[t] == nil) {
			return fmt.Errorf("engine: tip-state buffer %d occupancy mismatch in pattern block", t)
		}
	}
	for b := range s.Partials {
		if (s.Partials[b] == nil) != (blk.Partials[b] == nil) {
			return fmt.Errorf("engine: partials buffer %d occupancy mismatch in pattern block", b)
		}
	}
	for b := range s.Scale {
		if (s.Scale[b] == nil) != (blk.Scale[b] == nil) {
			return fmt.Errorf("engine: scale buffer %d occupancy mismatch in pattern block", b)
		}
	}
	if len(blk.Weights) != n {
		return fmt.Errorf("engine: pattern block carries %d weights for %d patterns", len(blk.Weights), n)
	}
	for t, st := range s.TipStates {
		if st == nil {
			continue
		}
		s.TipStates[t] = spliceInt32(st, blk.TipStates[t], atHigh)
	}
	for b, part := range s.Partials {
		if part == nil {
			continue
		}
		merged := make([]T, d.CategoryCount*(p+n)*d.StateCount)
		for c := 0; c < d.CategoryCount; c++ {
			dst := merged[c*(p+n)*d.StateCount : (c+1)*(p+n)*d.StateCount]
			old := part[c*p*d.StateCount : (c+1)*p*d.StateCount]
			add := blk.Partials[b][c*n*d.StateCount : (c+1)*n*d.StateCount]
			if atHigh {
				copy(dst, old)
				for i, v := range add {
					dst[len(old)+i] = T(v)
				}
			} else {
				for i, v := range add {
					dst[i] = T(v)
				}
				copy(dst[len(add):], old)
			}
		}
		s.Partials[b] = merged
	}
	for b, sc := range s.Scale {
		if sc == nil {
			continue
		}
		s.Scale[b] = spliceFloat64(sc, blk.Scale[b], atHigh)
	}
	s.PatWts = spliceFloat64(s.PatWts, blk.Weights, atHigh)
	s.Cfg.Dims.PatternCount = p + n
	return nil
}

func spliceInt32(old, add []int32, atHigh bool) []int32 {
	out := make([]int32, 0, len(old)+len(add))
	if atHigh {
		return append(append(out, old...), add...)
	}
	return append(append(out, add...), old...)
}

func spliceFloat64(old, add []float64, atHigh bool) []float64 {
	out := make([]float64, 0, len(old)+len(add))
	if atHigh {
		return append(append(out, old...), add...)
	}
	return append(append(out, add...), old...)
}
