package engine

import (
	"math"
	"testing"

	"gobeagle/internal/kernels"
)

func validConfig() Config {
	return Config{
		TipCount:        4,
		PartialsBuffers: 7,
		MatrixBuffers:   7,
		EigenBuffers:    2,
		ScaleBuffers:    3,
		Dims:            kernels.Dims{StateCount: 4, PatternCount: 5, CategoryCount: 2},
	}
}

func TestConfigValidate(t *testing.T) {
	good := validConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"tips", func(c *Config) { c.TipCount = 1 }},
		{"partials<tips", func(c *Config) { c.PartialsBuffers = 2 }},
		{"matrices", func(c *Config) { c.MatrixBuffers = 0 }},
		{"eigen", func(c *Config) { c.EigenBuffers = 0 }},
		{"states", func(c *Config) { c.Dims.StateCount = 1 }},
		{"patterns", func(c *Config) { c.Dims.PatternCount = 0 }},
		{"categories", func(c *Config) { c.Dims.CategoryCount = 0 }},
		{"scale", func(c *Config) { c.ScaleBuffers = -1 }},
		{"threads", func(c *Config) { c.Threads = -1 }},
	}
	for _, m := range mutations {
		c := validConfig()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestStorageDefaults(t *testing.T) {
	s := NewStorage[float64](validConfig())
	// Uniform defaults so an instance is usable immediately.
	for _, r := range s.CatRates {
		if r != 1 {
			t.Fatal("default category rates must be 1")
		}
	}
	var wsum, fsum float64
	for _, w := range s.CatWts {
		wsum += w
	}
	for _, f := range s.Freqs {
		fsum += f
	}
	if math.Abs(wsum-1) > 1e-15 || math.Abs(fsum-1) > 1e-15 {
		t.Fatalf("default weights/frequencies not normalized: %v %v", wsum, fsum)
	}
	for _, w := range s.PatWts {
		if w != 1 {
			t.Fatal("default pattern weights must be 1")
		}
	}
}

func TestStorageTipStatesNormalizesGaps(t *testing.T) {
	s := NewStorage[float64](validConfig())
	if err := s.SetTipStates(0, []int{0, 1, 2, 3, 99}); err != nil {
		t.Fatal(err)
	}
	// State 99 (≥ StateCount) is normalized to the gap code 4.
	if s.TipStates[0][4] != 4 {
		t.Fatalf("gap state stored as %d", s.TipStates[0][4])
	}
	if err := s.SetTipStates(0, []int{0, -1, 2, 3, 1}); err == nil {
		t.Fatal("negative state must be rejected")
	}
}

func TestStorageTipPartialsReplicatesCategories(t *testing.T) {
	s := NewStorage[float32](validConfig())
	in := make([]float64, 5*4)
	for i := range in {
		in[i] = float64(i) / 10
	}
	if err := s.SetTipPartials(1, in); err != nil {
		t.Fatal(err)
	}
	p := s.Partials[1]
	if len(p) != 2*5*4 {
		t.Fatalf("partials length %d", len(p))
	}
	for i := range in {
		if p[i] != p[5*4+i] {
			t.Fatal("categories not replicated")
		}
		if math.Abs(float64(p[i])-in[i]) > 1e-7 {
			t.Fatal("conversion error")
		}
	}
}

func TestStorageTipPartialsOverridesStates(t *testing.T) {
	s := NewStorage[float64](validConfig())
	if err := s.SetTipStates(0, []int{0, 1, 2, 3, 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTipPartials(0, make([]float64, 20)); err != nil {
		t.Fatal(err)
	}
	kind, _, _, err := s.ChildOperand(0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != OperandPartials {
		t.Fatal("expanded representation must win")
	}
}

func TestStorageChildOperand(t *testing.T) {
	s := NewStorage[float64](validConfig())
	if _, _, _, err := s.ChildOperand(0); err == nil {
		t.Fatal("empty buffer must error")
	}
	if err := s.SetTipStates(0, []int{0, 1, 2, 3, 0}); err != nil {
		t.Fatal(err)
	}
	kind, states, _, err := s.ChildOperand(0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != OperandStates || states == nil {
		t.Fatal("compact states not resolved")
	}
	if _, _, _, err := s.ChildOperand(50); err == nil {
		t.Fatal("out-of-range buffer must error")
	}
}

func TestStorageDestPartials(t *testing.T) {
	s := NewStorage[float64](validConfig())
	d, err := s.DestPartials(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != s.Cfg.Dims.PartialsLen() {
		t.Fatalf("allocated length %d", len(d))
	}
	// Tip buffer holding compact states cannot be a destination.
	if err := s.SetTipStates(1, []int{0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DestPartials(1); err == nil {
		t.Fatal("states tip must be rejected as a destination")
	}
}

func TestStorageScaleBuffers(t *testing.T) {
	s := NewStorage[float64](validConfig())
	if err := s.ResetScaleFactors(0); err != nil {
		t.Fatal(err)
	}
	buf, err := s.ScaleWriteTarget(1)
	if err != nil {
		t.Fatal(err)
	}
	buf[2] = 7
	if err := s.AccumulateScaleFactors([]int{0, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if s.Scale[2][2] != 7 {
		t.Fatalf("accumulated %v", s.Scale[2])
	}
	// CumulativeScale: None means nil, unwritten errors.
	if sc, err := s.CumulativeScale(None); err != nil || sc != nil {
		t.Fatal("None must resolve to nil scale")
	}
	if _, err := s.CumulativeScale(2); err != nil {
		t.Fatal(err)
	}
	s2 := NewStorage[float64](validConfig())
	if _, err := s2.CumulativeScale(0); err == nil {
		t.Fatal("unwritten scale buffer must error")
	}
	if err := s.AccumulateScaleFactors([]int{9}, 0); err == nil {
		t.Fatal("bad scale index must error")
	}
}

func TestStorageEigenAndMatrices(t *testing.T) {
	s := NewStorage[float64](validConfig())
	vals := []float64{0, -1, -1, -1}
	vecs := make([]float64, 16)
	inv := make([]float64, 16)
	for i := 0; i < 4; i++ {
		vecs[i*4+i] = 1
		inv[i*4+i] = 1
	}
	if err := s.SetEigenDecomposition(0, vals, vecs, inv); err != nil {
		t.Fatal(err)
	}
	if err := s.SetEigenDecomposition(0, vals[:2], vecs, inv); err == nil {
		t.Fatal("short values must error")
	}
	if err := s.UpdateTransitionMatrices(0, []int{0, 1}, []float64{0.1, 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateTransitionMatrices(0, []int{0}, []float64{0.1, 0.2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if err := s.UpdateTransitionMatrices(0, []int{0}, []float64{-1}); err == nil {
		t.Fatal("negative length must error")
	}
	if err := s.UpdateTransitionMatrices(1, []int{0}, []float64{0.1}); err == nil {
		t.Fatal("empty slot must error")
	}
	m, err := s.GetTransitionMatrix(0)
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal eigen system with λ0=0: P(t) rows are exp(λ t) diagonal.
	if math.Abs(m[0]-1) > 1e-12 {
		t.Fatalf("P[0,0]=%v", m[0])
	}
}

func TestStorageOpMatrices(t *testing.T) {
	s := NewStorage[float64](validConfig())
	op := Operation{Child1Mat: 0, Child2Mat: 1}
	if _, _, err := s.OpMatrices(op); err == nil {
		t.Fatal("uncomputed matrices must error")
	}
	if err := s.SetTransitionMatrix(0, make([]float64, 32)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTransitionMatrix(1, make([]float64, 32)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.OpMatrices(op); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.OpMatrices(Operation{Child1Mat: -1}); err == nil {
		t.Fatal("bad index must error")
	}
}

func TestStorageRoundTripsAndErrors(t *testing.T) {
	s := NewStorage[float64](validConfig())
	if err := s.SetPartials(3, make([]float64, 40)); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetPartials(3)
	if err != nil || len(got) != 40 {
		t.Fatalf("round trip failed: %v %d", err, len(got))
	}
	if err := s.SetPartials(3, make([]float64, 39)); err == nil {
		t.Fatal("wrong length must error")
	}
	if _, err := s.GetPartials(4); err == nil {
		t.Fatal("unset buffer must error")
	}
	if err := s.SetCategoryRates([]float64{1}); err == nil {
		t.Fatal("wrong rate count must error")
	}
	if err := s.SetCategoryWeights([]float64{1}); err == nil {
		t.Fatal("wrong weight count must error")
	}
	if err := s.SetStateFrequencies([]float64{1}); err == nil {
		t.Fatal("wrong frequency count must error")
	}
	if err := s.SetPatternWeights([]float64{1}); err == nil {
		t.Fatal("wrong pattern weight count must error")
	}
	if err := s.SetTransitionMatrix(0, make([]float64, 5)); err == nil {
		t.Fatal("wrong matrix length must error")
	}
}

func TestStorageUpdateTransitionDerivatives(t *testing.T) {
	s := NewStorage[float64](validConfig())
	vals := []float64{0, -1, -2, -3}
	vecs := make([]float64, 16)
	inv := make([]float64, 16)
	for i := 0; i < 4; i++ {
		vecs[i*4+i] = 1
		inv[i*4+i] = 1
	}
	if err := s.SetEigenDecomposition(0, vals, vecs, inv); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateTransitionDerivatives(0, []int{0}, []int{1}, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	// Diagonal system: dP/dt diagonal entries are λ·exp(λt) per category
	// (rates default to 1).
	d1, err := s.GetTransitionMatrix(0)
	if err != nil {
		t.Fatal(err)
	}
	want := -1 * math.Exp(-0.5)
	if math.Abs(d1[1*4+1]-want) > 1e-12 {
		t.Fatalf("dP/dt[1,1]=%v want %v", d1[5], want)
	}
	d2, err := s.GetTransitionMatrix(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2[1*4+1]-math.Exp(-0.5)) > 1e-12 {
		t.Fatalf("d2P/dt2[1,1]=%v", d2[5])
	}
	// Error paths.
	if err := s.UpdateTransitionDerivatives(0, []int{0}, nil, []float64{0.1, 0.2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if err := s.UpdateTransitionDerivatives(0, []int{0, 1}, []int{2}, []float64{0.1, 0.2}); err == nil {
		t.Fatal("d2 count mismatch must error")
	}
	if err := s.UpdateTransitionDerivatives(0, []int{0}, nil, []float64{-1}); err == nil {
		t.Fatal("negative length must error")
	}
	if err := s.UpdateTransitionDerivatives(1, []int{0}, nil, []float64{0.1}); err == nil {
		t.Fatal("empty slot must error")
	}
	if err := s.UpdateTransitionDerivatives(9, []int{0}, nil, []float64{0.1}); err == nil {
		t.Fatal("bad slot must error")
	}
	if err := s.UpdateTransitionDerivatives(0, []int{99}, nil, []float64{0.1}); err == nil {
		t.Fatal("bad matrix index must error")
	}
}

func TestStorageSetterSuccessPaths(t *testing.T) {
	s := NewStorage[float64](validConfig())
	if err := s.SetCategoryRates([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetCategoryWeights([]float64{0.3, 0.7}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetStateFrequencies([]float64{0.1, 0.2, 0.3, 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPatternWeights([]float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if s.CatRates[1] != 2 || s.CatWts[1] != 0.7 || s.Freqs[3] != 0.4 || s.PatWts[4] != 5 {
		t.Fatal("setters did not store values")
	}
	// ResetScaleFactors zeroes an existing buffer too.
	buf, _ := s.ScaleWriteTarget(0)
	buf[1] = 9
	if err := s.ResetScaleFactors(0); err != nil {
		t.Fatal(err)
	}
	if s.Scale[0][1] != 0 {
		t.Fatal("reset did not zero")
	}
	if err := s.ResetScaleFactors(99); err == nil {
		t.Fatal("bad scale index must error")
	}
	if _, err := s.GetTransitionMatrix(99); err == nil {
		t.Fatal("bad matrix index must error")
	}
}
