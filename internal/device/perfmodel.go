package device

import "time"

// The roofline performance model. Kernel execution on this machine is real
// (host goroutines), but GPU-speed timing obviously is not, so each launch
// is also charged to a modeled clock:
//
//	rate  = min(peak·eff·occ, bandwidth·AI·occ)
//	time  = launchOverhead + groupOverhead·groups + flops_padded / rate
//
// with occupancy rising toward 1 as the global work size exceeds the
// device's saturation point (cores × wavesToSaturate). This reproduces the
// qualitative behaviour of Fig. 4: launch overhead dominating small pattern
// counts, memory-bound saturation for nucleotide models, and near-peak
// compute-bound throughput for codon models.

const (
	// wavesToSaturateGPU is how many resident work-items per core a GPU
	// needs before latency is hidden.
	wavesToSaturateGPU = 24
	// wavesToSaturateCPU is the same for CPU-class devices, which saturate
	// with far less oversubscription.
	wavesToSaturateCPU = 4
	// groupOverheadGPUNs models hardware work-group scheduling cost, which
	// is deeply pipelined on GPUs.
	groupOverheadGPUNs = 1
	// groupOverheadCPUNs models software work-group dispatch cost on
	// CPU-class OpenCL devices.
	groupOverheadCPUNs = 60
	// openCLOnNVIDIAEfficiency captures the framework overhead the paper
	// observes for OpenCL relative to CUDA on the same NVIDIA hardware
	// (Fig. 4, CUDA vs OpenCL-GPU on the Quadro P5000).
	openCLOnNVIDIAEfficiency = 0.88
	// transferLatencyUs is the fixed host↔device transfer latency.
	transferLatencyUs = 5
)

// modelKernel returns the modeled duration of one kernel launch. Padded
// work-items are charged at the same per-item cost as useful ones.
func (q *Queue) modelKernel(c Cost, paddedItems, usefulItems int) time.Duration {
	d := &q.dev.Desc
	if usefulItems <= 0 || c.Flops <= 0 {
		return time.Duration(d.LaunchOverhead * float64(time.Microsecond))
	}
	padRatio := float64(paddedItems) / float64(usefulItems)
	flops := c.Flops * padRatio
	bytes := c.Bytes * padRatio

	peak := d.PeakGFLOPS(q.single)
	eff := c.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	if q.dev.Framework == OpenCL && d.Vendor == "NVIDIA" {
		eff *= openCLOnNVIDIAEfficiency
	}

	waves := wavesToSaturateGPU
	groupOverheadNs := float64(groupOverheadGPUNs)
	if d.Kind != KindGPU {
		waves = wavesToSaturateCPU
		groupOverheadNs = groupOverheadCPUNs
	}
	saturation := float64(d.Cores * waves)
	occ := float64(paddedItems) / (float64(paddedItems) + saturation)

	computeRate := peak * 1e9 * eff * occ // FLOP/s
	rate := computeRate
	if bytes > 0 {
		// The kernel efficiency scales the achievable bandwidth as well:
		// instruction overhead (e.g. separate multiply and add without FMA)
		// throttles issue rate even for memory-bound kernels, which is why
		// Table IV still shows a small FMA gain in the bandwidth-bound
		// single-precision cases.
		memRate := d.BandwidthGBs * 1e9 * eff * occ * (flops / bytes)
		if memRate < rate {
			rate = memRate
		}
	}
	groups := paddedItems
	if c.GroupSize > 0 {
		groups = (paddedItems + c.GroupSize - 1) / c.GroupSize
	}
	ns := d.LaunchOverhead*1e3 + groupOverheadNs*float64(groups) + flops/rate*1e9
	return time.Duration(ns)
}

// modelTransfer returns the modeled duration of a host↔device copy.
func (q *Queue) modelTransfer(bytes float64) time.Duration {
	d := &q.dev.Desc
	ns := transferLatencyUs*1e3 + bytes/(d.TransferGBs*1e9)*1e9
	return time.Duration(ns)
}
